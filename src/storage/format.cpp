#include "storage/format.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "engine/error.h"
#include "nal/fault_injection.h"

namespace nalq::storage {

namespace {

using engine::Error;
using engine::ErrorCode;
using nal::FaultInjector;
using nal::FaultSite;
using nal::codec::ByteReader;
using nal::codec::PutU32;

[[noreturn]] void ThrowIo(const char* what, const std::string& path, int err,
                          FaultSite site) {
  throw Error(ErrorCode::kStoreIo, what, err, path, nal::FaultSiteName(site));
}

[[noreturn]] void ThrowCorrupt(const std::string& what,
                               const std::string& path) {
  throw Error(ErrorCode::kStoreCorrupt, what, 0, path, "storage.page");
}

/// fsyncs the directory containing `path` so a just-committed rename in it
/// is durable. Returns 0 on success, the errno otherwise. No-op success on
/// platforms without directory fsync.
int SyncDirContaining(const std::string& path) {
#ifndef _WIN32
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return errno != 0 ? errno : EIO;
  int rc = ::fsync(fd);
  int err = errno;
  ::close(fd);
  if (rc != 0) return err != 0 ? err : EIO;
#else
  (void)path;
#endif
  return 0;
}

}  // namespace

int FlushToDisk(std::FILE* f) {
  if (std::fflush(f) != 0) return errno != 0 ? errno : EIO;
#ifndef _WIN32
  if (::fsync(::fileno(f)) != 0) return errno != 0 ? errno : EIO;
#endif
  return 0;
}

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  // Table-driven CRC-32 (IEEE reflected polynomial 0xEDB88320), the same
  // checksum zlib computes; built once on first use.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

PageFileWriter::PageFileWriter(std::string path, FileKind kind)
    : path_(std::move(path)) {
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreOpenWrite);
      err != 0) {
    ThrowIo("persistent-store file open failed", path_, err,
            FaultSite::kStoreOpenWrite);
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    ThrowIo("persistent-store file open failed", path_, errno,
            FaultSite::kStoreOpenWrite);
  }
  std::string header(kFileMagic, sizeof(kFileMagic));
  PutU32(&header, kFormatVersion);
  PutU32(&header, static_cast<uint32_t>(kind));
  PutU32(&header, Crc32(header.data(), header.size()));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    int err = errno;
    std::fclose(file_);
    file_ = nullptr;
    ThrowIo("persistent-store header write failed", path_, err,
            FaultSite::kStoreWrite);
  }
}

PageFileWriter::~PageFileWriter() {
  // Best-effort cleanup on the unwound-error path; Close() already ran on
  // the success path.
  if (file_ != nullptr) std::fclose(file_);
}

void PageFileWriter::WritePage(PageType type, uint32_t item_count,
                               uint32_t first_item, std::string_view payload) {
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreWrite);
      err != 0) {
    ThrowIo("persistent-store page write failed", path_, err,
            FaultSite::kStoreWrite);
  }
  std::string header;
  header.reserve(28);
  PutU32(&header, kPageMagic);
  PutU32(&header, static_cast<uint32_t>(type));
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU32(&header, item_count);
  PutU32(&header, first_item);
  PutU32(&header, Crc32(payload.data(), payload.size()));
  PutU32(&header, Crc32(header.data(), header.size()));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    ThrowIo("persistent-store page write failed", path_, errno,
            FaultSite::kStoreWrite);
  }
}

void PageFileWriter::Close() {
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreClose);
      err != 0) {
    std::fclose(file_);
    file_ = nullptr;
    ThrowIo("persistent-store file close failed", path_, err,
            FaultSite::kStoreClose);
  }
  // Durability: the pages must be on stable storage before the manifest
  // rename can name this file — otherwise a power loss after the rename
  // leaves a committed manifest pointing at never-written data.
  if (int err = FlushToDisk(file_); err != 0) {
    std::fclose(file_);
    file_ = nullptr;
    ThrowIo("persistent-store file sync failed", path_, err,
            FaultSite::kStoreClose);
  }
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    ThrowIo("persistent-store file close failed", path_, errno,
            FaultSite::kStoreClose);
  }
}

PageFileReader::PageFileReader(std::string path, FileKind expected_kind)
    : path_(std::move(path)) {
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreOpenRead);
      err != 0) {
    ThrowIo("persistent-store file open failed", path_, err,
            FaultSite::kStoreOpenRead);
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    ThrowIo("persistent-store file open failed", path_, errno,
            FaultSite::kStoreOpenRead);
  }
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreRead);
      err != 0) {
    std::fclose(f);
    ThrowIo("persistent-store file read failed", path_, err,
            FaultSite::kStoreRead);
  }
  // Whole-file slurp: documents page in at file granularity (one store file
  // per document), so "read the file" IS the page-in unit and a streaming
  // read buys nothing. The layout stays seekable for a future mmap pager.
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buffer_.append(chunk, n);
  }
  bool read_error = std::ferror(f) != 0;
  int read_errno = errno;
  std::fclose(f);
  if (read_error) {
    ThrowIo("persistent-store file read failed", path_, read_errno,
            FaultSite::kStoreRead);
  }
  // File header: magic, then version BEFORE the checksum (see format.h).
  const auto* base = reinterpret_cast<const uint8_t*>(buffer_.data());
  ByteReader r{base, base + buffer_.size()};
  const uint8_t* magic = nullptr;
  uint32_t version = 0;
  uint32_t kind = 0;
  uint32_t header_crc = 0;
  if (!r.Bytes(sizeof(kFileMagic), &magic) || !r.U32(&version) ||
      !r.U32(&kind) || !r.U32(&header_crc)) {
    ThrowCorrupt("persistent-store file too short for its header", path_);
  }
  if (std::memcmp(magic, kFileMagic, sizeof(kFileMagic)) != 0) {
    ThrowCorrupt("persistent-store file magic mismatch", path_);
  }
  if (version != kFormatVersion) {
    throw Error(ErrorCode::kStoreVersionMismatch,
                "persistent-store format version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kFormatVersion) + ")",
                0, path_, "storage.page");
  }
  if (Crc32(buffer_.data(), 16) != header_crc) {
    ThrowCorrupt("persistent-store file header checksum mismatch", path_);
  }
  if (kind != static_cast<uint32_t>(expected_kind)) {
    ThrowCorrupt("persistent-store file kind mismatch", path_);
  }
  reader_ = r;
}

bool PageFileReader::Next(PageInfo* out) {
  if (reader_.remaining() == 0) return false;
  uint32_t magic = 0;
  uint32_t type = 0;
  uint32_t payload_bytes = 0;
  uint32_t item_count = 0;
  uint32_t first_item = 0;
  uint32_t payload_crc = 0;
  uint32_t header_crc = 0;
  const uint8_t* header_start = reader_.p;
  if (!reader_.U32(&magic) || !reader_.U32(&type) ||
      !reader_.U32(&payload_bytes) || !reader_.U32(&item_count) ||
      !reader_.U32(&first_item) || !reader_.U32(&payload_crc) ||
      !reader_.U32(&header_crc)) {
    ThrowCorrupt("persistent-store page header truncated", path_);
  }
  if (Crc32(header_start, 24) != header_crc) {
    ThrowCorrupt("persistent-store page header checksum mismatch", path_);
  }
  if (magic != kPageMagic) {
    ThrowCorrupt("persistent-store page magic mismatch", path_);
  }
  const uint8_t* payload = nullptr;
  if (!reader_.Bytes(payload_bytes, &payload)) {
    ThrowCorrupt("persistent-store page payload truncated", path_);
  }
  if (Crc32(payload, payload_bytes) != payload_crc) {
    ThrowCorrupt("persistent-store page payload checksum mismatch", path_);
  }
  out->type = static_cast<PageType>(type);
  out->item_count = item_count;
  out->first_item = first_item;
  out->payload =
      std::string_view(reinterpret_cast<const char*>(payload), payload_bytes);
  return true;
}

void ValidateFileHeader(const std::string& path, FileKind expected_kind) {
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreOpenRead);
      err != 0) {
    ThrowIo("persistent-store file open failed", path, err,
            FaultSite::kStoreOpenRead);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ThrowIo("persistent-store file open failed", path, errno,
            FaultSite::kStoreOpenRead);
  }
  uint8_t header[20];
  size_t n = std::fread(header, 1, sizeof(header), f);
  std::fclose(f);
  if (n != sizeof(header)) {
    ThrowCorrupt("persistent-store file too short for its header", path);
  }
  if (std::memcmp(header, kFileMagic, sizeof(kFileMagic)) != 0) {
    ThrowCorrupt("persistent-store file magic mismatch", path);
  }
  uint32_t version;
  uint32_t kind;
  uint32_t header_crc;
  std::memcpy(&version, header + 8, 4);
  std::memcpy(&kind, header + 12, 4);
  std::memcpy(&header_crc, header + 16, 4);
  if (version != kFormatVersion) {
    throw Error(ErrorCode::kStoreVersionMismatch,
                "persistent-store format version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kFormatVersion) + ")",
                0, path, "storage.page");
  }
  if (Crc32(header, 16) != header_crc) {
    ThrowCorrupt("persistent-store file header checksum mismatch", path);
  }
  if (kind != static_cast<uint32_t>(expected_kind)) {
    ThrowCorrupt("persistent-store file kind mismatch", path);
  }
}

void CommitRename(const std::string& from, const std::string& to) {
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreClose);
      err != 0) {
    ThrowIo("persistent-store manifest commit failed", to, err,
            FaultSite::kStoreClose);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    ThrowIo("persistent-store manifest commit failed", to, errno,
            FaultSite::kStoreClose);
  }
  // The rename is in the directory's in-memory state; fsync the directory
  // so it is on disk too before RemoveStaleEpochs deletes the previous
  // epoch. A failure here means the commit may not be durable — report it
  // (the rename itself already happened, so the store stays openable
  // either way; the caller just must not delete the old epoch).
  if (int err = SyncDirContaining(to); err != 0) {
    ThrowIo("persistent-store directory sync failed", to, err,
            FaultSite::kStoreClose);
  }
}

}  // namespace nalq::storage
