// On-disk page format of the persistent document store.
//
// A persisted store is a directory of flat files, every one built from the
// same two framing layers:
//
//   file   := FileHeader page*
//   page   := PageHeader payload
//
// FileHeader (20 bytes): 8-byte magic "NALQSTR1", format version (u32),
// file kind (u32, FileKind), and a CRC32 over the preceding 16 bytes. The
// version is validated BEFORE the header checksum so a store written by a
// different format generation reports kStoreVersionMismatch — the
// actionable error — rather than a generic corruption.
//
// PageHeader (28 bytes): page magic "NPAG" (u32), page type (u32,
// PageType), payload byte count (u32), item count (u32), first item id
// (u32 — the first node id / string id / blob chunk index the page
// carries, making the format seekable for an mmap-based pager), CRC32 of
// the payload (u32), CRC32 of the preceding 24 header bytes (u32). A file
// ends exactly at a page boundary; anything else — a short header, a
// payload cut off by truncation, a checksum mismatch — fails closed with
// engine::Error(kStoreCorrupt) naming the file.
//
// Integers use the host's native byte order via the shared spool framing
// primitives (nal/codec.h); the manifest records an endianness tag and
// refuses a store written by a foreign-endian host (kStoreVersionMismatch,
// since rewriting the store is the remedy either way).
//
// PageFileWriter/PageFileReader are the only code that touches store files,
// and both consult the deterministic fault injector
// (nal/fault_injection.h, store.* sites) before every OS call, so the
// torn-write and unreadable-store paths run under the fault-injection CI
// matrix like the spool layer's do.
#ifndef NALQ_STORAGE_FORMAT_H_
#define NALQ_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "nal/codec.h"

namespace nalq::storage {

/// Bumped whenever the page or manifest layout changes incompatibly. A
/// store written under any other version fails to open with
/// kStoreVersionMismatch.
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr char kFileMagic[8] = {'N', 'A', 'L', 'Q', 'S', 'T', 'R', '1'};
inline constexpr char kManifestMagic[8] = {'N', 'A', 'L', 'Q', 'M', 'A',
                                           'N', '1'};
inline constexpr uint32_t kPageMagic = 0x4741504Eu;  // "NPAG" in LE order

/// Written into the manifest; a mismatch on open means the store was
/// persisted by a foreign-endian host and cannot be mapped natively.
inline constexpr uint32_t kEndianTag = 0x01020304u;

/// Target payload size a writer chunks at. Readers accept any size the
/// header declares (bounded by the file itself).
inline constexpr size_t kPagePayloadTarget = 64 * 1024;

enum class FileKind : uint32_t {
  kNodes = 1,  ///< name table + preorder node record pages
  kIndex = 2,  ///< serialized DocumentIndex blob pages
  kStats = 3,  ///< serialized DocumentStats blob pages
};

enum class PageType : uint32_t {
  kNameTable = 1,    ///< length-prefixed interner strings, id order
  kNodeRecords = 2,  ///< fixed-shape preorder node records
  kBlob = 3,         ///< opaque chunk of a larger encoded value
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) — self-contained so the
/// store has no dependency the container may lack.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// One decoded page; `payload` aliases the reader's buffer.
struct PageInfo {
  PageType type = PageType::kBlob;
  uint32_t item_count = 0;
  uint32_t first_item = 0;
  std::string_view payload;
};

/// Buffered page-at-a-time writer. Every I/O failure (and every injected
/// fault) throws engine::Error(kStoreIo) carrying errno and the path.
class PageFileWriter {
 public:
  PageFileWriter(std::string path, FileKind kind);
  ~PageFileWriter();
  PageFileWriter(const PageFileWriter&) = delete;
  PageFileWriter& operator=(const PageFileWriter&) = delete;

  /// Appends one checksummed page.
  void WritePage(PageType type, uint32_t item_count, uint32_t first_item,
                 std::string_view payload);

  /// Flushes and closes; the file is not durable until this returns.
  void Close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Whole-file reader: validates the file header on construction (version
/// before checksum — see the file comment) and hands out pages
/// sequentially, validating each one. Construction failures throw
/// kStoreIo (unopenable) or kStoreVersionMismatch / kStoreCorrupt
/// (unreadable); Next throws kStoreCorrupt on any malformed page.
class PageFileReader {
 public:
  PageFileReader(std::string path, FileKind expected_kind);

  /// Fills `out` with the next page; false at a clean end-of-file.
  bool Next(PageInfo* out);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string buffer_;
  nal::codec::ByteReader reader_{nullptr, nullptr};
};

/// Validates just the 20-byte file header of `path` (cheap warm-attach
/// check: catches a missing, truncated, foreign-version or wrong-kind file
/// without slurping its pages). Throws like the PageFileReader constructor.
void ValidateFileHeader(const std::string& path, FileKind expected_kind);

/// fflush + fsync of `f`, so the stream's bytes are on stable storage
/// before the caller fcloses it. Returns 0 on success, the errno
/// otherwise. The rename-based commit protocol is only crash-safe against
/// power loss when data and manifest bytes reach disk BEFORE the rename
/// does — a journal can persist the rename first, leaving a committed
/// manifest naming files whose contents never landed.
int FlushToDisk(std::FILE* f);

/// Atomically renames `from` onto `to` — the manifest commit point — and
/// fsyncs the containing directory so the rename itself survives power
/// loss (without it, reopening after a crash could still see the old
/// manifest even though RemoveStaleEpochs already ran against the new
/// one). Throws kStoreIo (site store.close) on failure.
void CommitRename(const std::string& from, const std::string& to);

}  // namespace nalq::storage

#endif  // NALQ_STORAGE_FORMAT_H_
