#include "storage/persistent_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "engine/error.h"
#include "nal/fault_injection.h"

namespace nalq::storage {

namespace {

using engine::Error;
using engine::ErrorCode;
using nal::FaultInjector;
using nal::FaultSite;
using nal::codec::ByteReader;
using nal::codec::PutBytes;
using nal::codec::PutU32;
using nal::codec::PutU64;

constexpr const char* kManifestName = "MANIFEST.nalq";
constexpr const char* kManifestTmpName = "MANIFEST.nalq.tmp";

[[noreturn]] void ThrowCorrupt(const std::string& what,
                               const std::string& path) {
  throw Error(ErrorCode::kStoreCorrupt, what, 0, path, "storage.manifest");
}

std::string JoinPath(const std::string& dir, const std::string& file) {
  return (std::filesystem::path(dir) / file).string();
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::string EncodeManifest(const Manifest& m) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(m.docs.size()));
  for (const ManifestDoc& d : m.docs) {
    PutBytes(&payload, d.name);
    PutBytes(&payload, d.dtd);
    PutU64(&payload, d.node_count);
    PutU64(&payload, d.approx_bytes);
    PutBytes(&payload, d.doc_file);
    PutBytes(&payload, d.idx_file);
    PutBytes(&payload, d.sts_file);
  }
  std::string out(kManifestMagic, sizeof(kManifestMagic));
  PutU32(&out, kFormatVersion);
  PutU32(&out, kEndianTag);
  PutU64(&out, m.epoch);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  PutU32(&out, Crc32(payload.data(), payload.size()));
  return out;
}

/// Writes the manifest bytes to the temp name and renames it into place —
/// the commit point of a Persist.
void CommitManifest(const std::string& dir, const Manifest& m) {
  const std::string tmp = JoinPath(dir, kManifestTmpName);
  const std::string final_path = JoinPath(dir, kManifestName);
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreOpenWrite);
      err != 0) {
    throw Error(ErrorCode::kStoreIo, "persistent-store manifest open failed",
                err, tmp, "store.open_write");
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw Error(ErrorCode::kStoreIo, "persistent-store manifest open failed",
                errno, tmp, "store.open_write");
  }
  const std::string bytes = EncodeManifest(m);
  int inject_write = FaultInjector::Current().MaybeFail(FaultSite::kStoreWrite);
  if (inject_write != 0 ||
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    int err = inject_write != 0 ? inject_write : errno;
    std::fclose(f);
    std::remove(tmp.c_str());
    throw Error(ErrorCode::kStoreIo, "persistent-store manifest write failed",
                err, tmp, "store.write");
  }
  // The manifest bytes must hit stable storage before the rename commits
  // them: a journal may persist the rename first, and a power loss then
  // would leave a committed manifest that is empty or torn.
  if (int err = FlushToDisk(f); err != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    throw Error(ErrorCode::kStoreIo, "persistent-store manifest sync failed",
                err, tmp, "store.close");
  }
  if (std::fclose(f) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    throw Error(ErrorCode::kStoreIo, "persistent-store manifest close failed",
                err, tmp, "store.close");
  }
  CommitRename(tmp, final_path);
}

Manifest ReadManifest(const std::string& dir) {
  const std::string path = JoinPath(dir, kManifestName);
  if (int err = FaultInjector::Current().MaybeFail(FaultSite::kStoreOpenRead);
      err != 0) {
    throw Error(ErrorCode::kStoreIo, "persistent-store manifest open failed",
                err, path, "store.open_read");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw Error(ErrorCode::kStoreIo,
                "persistent-store manifest missing or unreadable", errno,
                path, "store.open_read");
  }
  std::string buffer;
  char chunk[1 << 14];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buffer.append(chunk, n);
  }
  bool read_error = std::ferror(f) != 0;
  int read_errno = errno;
  std::fclose(f);
  if (read_error) {
    throw Error(ErrorCode::kStoreIo, "persistent-store manifest read failed",
                read_errno, path, "store.read");
  }
  const auto* base = reinterpret_cast<const uint8_t*>(buffer.data());
  ByteReader r{base, base + buffer.size()};
  const uint8_t* magic = nullptr;
  uint32_t version = 0;
  uint32_t endian = 0;
  uint64_t epoch = 0;
  uint32_t payload_bytes = 0;
  if (!r.Bytes(sizeof(kManifestMagic), &magic) || !r.U32(&version) ||
      !r.U32(&endian) || !r.U64(&epoch) || !r.U32(&payload_bytes)) {
    ThrowCorrupt("persistent-store manifest too short for its header", path);
  }
  if (std::memcmp(magic, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    ThrowCorrupt("persistent-store manifest magic mismatch", path);
  }
  // Version (then endianness) before any checksum: a store written by a
  // different format generation or a foreign-endian host must say so.
  if (version != kFormatVersion) {
    throw Error(ErrorCode::kStoreVersionMismatch,
                "persistent-store format version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kFormatVersion) + ")",
                0, path, "storage.manifest");
  }
  if (endian != kEndianTag) {
    throw Error(ErrorCode::kStoreVersionMismatch,
                "persistent-store written by a foreign-endian host", 0, path,
                "storage.manifest");
  }
  const uint8_t* payload = nullptr;
  uint32_t crc = 0;
  if (!r.Bytes(payload_bytes, &payload) || !r.U32(&crc)) {
    ThrowCorrupt("persistent-store manifest payload truncated", path);
  }
  if (Crc32(payload, payload_bytes) != crc) {
    ThrowCorrupt("persistent-store manifest checksum mismatch", path);
  }
  ByteReader pr{payload, payload + payload_bytes};
  Manifest m;
  m.epoch = epoch;
  uint32_t doc_count = 0;
  if (!pr.U32(&doc_count)) {
    ThrowCorrupt("persistent-store manifest payload malformed", path);
  }
  for (uint32_t i = 0; i < doc_count; ++i) {
    ManifestDoc d;
    std::string_view name, dtd, doc_file, idx_file, sts_file;
    if (!pr.LengthPrefixed(&name) || !pr.LengthPrefixed(&dtd) ||
        !pr.U64(&d.node_count) || !pr.U64(&d.approx_bytes) ||
        !pr.LengthPrefixed(&doc_file) || !pr.LengthPrefixed(&idx_file) ||
        !pr.LengthPrefixed(&sts_file)) {
      ThrowCorrupt("persistent-store manifest payload malformed", path);
    }
    d.name = std::string(name);
    d.dtd = std::string(dtd);
    d.doc_file = std::string(doc_file);
    d.idx_file = std::string(idx_file);
    d.sts_file = std::string(sts_file);
    m.docs.push_back(std::move(d));
  }
  if (pr.remaining() != 0) {
    ThrowCorrupt("persistent-store manifest payload has trailing bytes", path);
  }
  return m;
}

/// Epoch the next Persist should write: one past anything present in the
/// directory, derived from the file names themselves so even a corrupt or
/// missing manifest cannot make a new epoch collide with old files.
uint64_t NextEpoch(const std::string& dir) {
  uint64_t max_epoch = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 2 || name[0] != 'e') continue;
    char* end = nullptr;
    uint64_t e = std::strtoull(name.c_str() + 1, &end, 10);
    if (end != name.c_str() + 1 && *end == '_' && e > max_epoch) {
      max_epoch = e;
    }
  }
  return max_epoch + 1;
}

/// Deletes data files of epochs other than `live_epoch` (and a stray temp
/// manifest). Runs only after the new manifest committed; failures are
/// ignored — stale files waste space but never affect correctness, since
/// only the manifest names live files.
void RemoveStaleEpochs(const std::string& dir, uint64_t live_epoch) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == kManifestTmpName) {
      std::filesystem::remove(entry.path(), ec);
      continue;
    }
    if (name.size() < 2 || name[0] != 'e') continue;
    char* end = nullptr;
    uint64_t e = std::strtoull(name.c_str() + 1, &end, 10);
    if (end != name.c_str() + 1 && *end == '_' && e != live_epoch) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

// ---------------------------------------------------------------------------
// Map codec helpers (sorted for deterministic bytes)
// ---------------------------------------------------------------------------

void PutIdVector(std::string* out, const std::vector<xml::NodeId>& ids) {
  PutU32(out, static_cast<uint32_t>(ids.size()));
  for (xml::NodeId id : ids) PutU32(out, id);
}

bool ReadIdVector(ByteReader* r, std::vector<xml::NodeId>* out) {
  uint32_t n = 0;
  if (!r->U32(&n)) return false;
  // The count is untrusted input: a crafted file (CRCs recomputed to
  // match) could otherwise drive a multi-GB reserve and surface as
  // bad_alloc/OOM instead of the structured kStoreCorrupt contract. Every
  // encoded id is at least 4 bytes, so a count that cannot fit in the
  // remaining buffer is corrupt by construction.
  if (n > r->remaining() / 4) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    if (!r->U32(&id)) return false;
    out->push_back(id);
  }
  return true;
}

void PutIdListMap(
    std::string* out,
    const std::unordered_map<uint32_t, std::vector<xml::NodeId>>& m) {
  std::map<uint32_t, const std::vector<xml::NodeId>*> sorted;
  for (const auto& [key, ids] : m) sorted.emplace(key, &ids);
  PutU32(out, static_cast<uint32_t>(sorted.size()));
  for (const auto& [key, ids] : sorted) {
    PutU32(out, key);
    PutIdVector(out, *ids);
  }
}

bool ReadIdListMap(ByteReader* r,
                   std::unordered_map<uint32_t, std::vector<xml::NodeId>>* m) {
  uint32_t n = 0;
  if (!r->U32(&n)) return false;
  // Untrusted count (see ReadIdVector): each entry is at least a 4-byte
  // key plus a 4-byte list count.
  if (n > r->remaining() / 8) return false;
  m->clear();
  m->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t key = 0;
    if (!r->U32(&key)) return false;
    if (!ReadIdVector(r, &(*m)[key])) return false;
  }
  return true;
}

template <typename Key>
void PutCountMap(std::string* out,
                 const std::unordered_map<Key, uint64_t>& m) {
  std::map<Key, uint64_t> sorted(m.begin(), m.end());
  PutU32(out, static_cast<uint32_t>(sorted.size()));
  for (const auto& [key, v] : sorted) {
    if constexpr (sizeof(Key) == 4) {
      PutU32(out, key);
    } else {
      PutU64(out, key);
    }
    PutU64(out, v);
  }
}

template <typename Key>
bool ReadCountMap(ByteReader* r, std::unordered_map<Key, uint64_t>* m) {
  uint32_t n = 0;
  if (!r->U32(&n)) return false;
  // Untrusted count (see ReadIdVector): each entry is a key (4 or 8
  // bytes) plus an 8-byte value.
  constexpr size_t kMinEntry = (sizeof(Key) == 4 ? 4 : 8) + 8;
  if (n > r->remaining() / kMinEntry) return false;
  m->clear();
  m->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Key key{};
    bool ok;
    if constexpr (sizeof(Key) == 4) {
      uint32_t k = 0;
      ok = r->U32(&k);
      key = k;
    } else {
      uint64_t k = 0;
      ok = r->U64(&k);
      key = k;
    }
    uint64_t v = 0;
    if (!ok || !r->U64(&v)) return false;
    (*m)[key] = v;
  }
  return true;
}

/// Splits one encoded value into kBlob pages of the target payload size.
void WriteBlobPages(PageFileWriter* out, const std::string& blob) {
  uint32_t chunk_index = 0;
  size_t off = 0;
  do {
    size_t len = std::min(kPagePayloadTarget, blob.size() - off);
    out->WritePage(PageType::kBlob, static_cast<uint32_t>(len), chunk_index,
                   std::string_view(blob).substr(off, len));
    off += len;
    ++chunk_index;
  } while (off < blob.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// StoreCodec
// ---------------------------------------------------------------------------

uint64_t StoreCodec::ApproxResidentBytes(const xml::Document& doc) {
  uint64_t bytes = doc.node_count() * (sizeof(xml::Node) + 24);
  for (xml::NodeId i = 0; i < doc.node_count(); ++i) {
    xml::NodeKind kind = doc.kind(i);
    if (kind == xml::NodeKind::kText || kind == xml::NodeKind::kAttribute) {
      bytes += doc.raw_text(i).size();
    }
  }
  for (uint32_t i = 0; i < doc.names().size(); ++i) {
    bytes += doc.names().Get(i).size();
  }
  return bytes;
}

void StoreCodec::EncodeDocument(const xml::Document& doc,
                                PageFileWriter* out) {
  // Section 1: the interner's full string table in id order. Pre-interning
  // it on decode pins every name id before replay, so ids survive even if
  // the table holds strings no node references (a component may intern
  // probe strings through the non-const names() accessor).
  const xml::StringInterner& names = doc.names();
  std::string payload;
  uint32_t first = 0;
  uint32_t count = 0;
  for (uint32_t i = 0; i < names.size(); ++i) {
    PutBytes(&payload, names.Get(i));
    ++count;
    if (payload.size() >= kPagePayloadTarget) {
      out->WritePage(PageType::kNameTable, count, first, payload);
      first += count;
      count = 0;
      payload.clear();
    }
  }
  if (count > 0 || names.size() == 0) {
    out->WritePage(PageType::kNameTable, count, first, payload);
  }
  // Section 2: one record per node in preorder — the [pre, pre+size)
  // numbering makes the node id implicit in the record's position, and the
  // persisted subtree_end doubles as the structural validation target on
  // decode.
  payload.clear();
  first = 0;
  count = 0;
  for (xml::NodeId i = 0; i < doc.node_count(); ++i) {
    const xml::Node& n = doc.node(i);
    payload.push_back(static_cast<char>(n.kind));
    PutU32(&payload, n.parent);
    PutU32(&payload, n.name);
    PutU32(&payload, n.subtree_end);
    bool has_text = n.kind == xml::NodeKind::kText ||
                    n.kind == xml::NodeKind::kAttribute;
    PutBytes(&payload, has_text ? doc.raw_text(i) : std::string_view());
    ++count;
    if (payload.size() >= kPagePayloadTarget) {
      out->WritePage(PageType::kNodeRecords, count, first, payload);
      first += count;
      count = 0;
      payload.clear();
    }
  }
  if (count > 0) {
    out->WritePage(PageType::kNodeRecords, count, first, payload);
  }
}

xml::Document StoreCodec::DecodeDocument(const ManifestDoc& meta,
                                         const std::string& path) {
  PageFileReader reader(path, FileKind::kNodes);
  struct Rec {
    uint8_t kind;
    uint32_t parent;
    uint32_t name;
    uint32_t subtree_end;
    std::string text;
  };
  std::vector<std::string> names;
  std::vector<Rec> recs;
  PageInfo page;
  auto corrupt = [&path](const std::string& what) -> void {
    throw Error(ErrorCode::kStoreCorrupt, what, 0, path, "storage.document");
  };
  while (reader.Next(&page)) {
    const auto* base = reinterpret_cast<const uint8_t*>(page.payload.data());
    ByteReader r{base, base + page.payload.size()};
    if (page.type == PageType::kNameTable) {
      if (page.first_item != names.size() || !recs.empty()) {
        corrupt("persistent-store document pages out of order");
      }
      for (uint32_t i = 0; i < page.item_count; ++i) {
        std::string_view s;
        if (!r.LengthPrefixed(&s)) {
          corrupt("persistent-store name-table page malformed");
        }
        names.emplace_back(s);
      }
    } else if (page.type == PageType::kNodeRecords) {
      if (page.first_item != recs.size()) {
        corrupt("persistent-store document pages out of order");
      }
      for (uint32_t i = 0; i < page.item_count; ++i) {
        Rec rec;
        std::string_view text;
        if (!r.U8(&rec.kind) || !r.U32(&rec.parent) || !r.U32(&rec.name) ||
            !r.U32(&rec.subtree_end) || !r.LengthPrefixed(&text)) {
          corrupt("persistent-store node-record page malformed");
        }
        rec.text = std::string(text);
        recs.push_back(std::move(rec));
      }
    } else {
      corrupt("persistent-store document file has an unexpected page type");
    }
    if (r.remaining() != 0) {
      corrupt("persistent-store document page has trailing bytes");
    }
  }
  if (recs.size() != meta.node_count) {
    corrupt("persistent-store document node count does not match manifest");
  }
  if (recs.empty() || names.empty()) {
    corrupt("persistent-store document file is empty");
  }
  // Reconstruct by replay (see the file comment in persistent_store.h).
  xml::Document doc(meta.name);
  doc.set_dtd_text(meta.dtd);
  if (!names[0].empty()) {
    corrupt("persistent-store name table does not start with the empty id");
  }
  for (uint32_t i = 0; i < names.size(); ++i) {
    if (doc.names().Intern(names[i]) != i) {
      corrupt("persistent-store name table holds a duplicate string");
    }
  }
  const Rec& root = recs[0];
  if (static_cast<xml::NodeKind>(root.kind) != xml::NodeKind::kDocument ||
      root.parent != xml::kNoNode) {
    corrupt("persistent-store document record 0 is not a document node");
  }
  for (uint32_t i = 1; i < recs.size(); ++i) {
    const Rec& rec = recs[i];
    // Structural pre-validation, mirroring the depth-first construction
    // invariant Document::NewNode asserts: the parent must be an earlier
    // node whose subtree extent currently ends exactly here. Checking it
    // before the call turns corrupt structure into a thrown error instead
    // of an assert/abort (Debug) or silent extent corruption (Release).
    if (rec.parent >= i || doc.subtree_end(rec.parent) != i ||
        rec.name >= names.size()) {
      corrupt("persistent-store node record violates preorder structure");
    }
    xml::NodeKind kind = static_cast<xml::NodeKind>(rec.kind);
    xml::NodeId id = xml::kNoNode;
    switch (kind) {
      case xml::NodeKind::kElement:
        id = doc.AddElement(rec.parent, doc.names().Get(rec.name));
        break;
      case xml::NodeKind::kText:
        id = doc.AddText(rec.parent, rec.text);
        break;
      case xml::NodeKind::kAttribute:
        if (doc.kind(rec.parent) != xml::NodeKind::kElement) {
          corrupt("persistent-store attribute record off a non-element");
        }
        id = doc.AddAttribute(rec.parent, doc.names().Get(rec.name),
                              rec.text);
        break;
      default:
        corrupt("persistent-store node record has an unknown kind");
    }
    if (id != i) {
      corrupt("persistent-store replay produced a divergent node id");
    }
  }
  // Full-field validation: the replayed tree must match the persisted
  // records exactly — any divergence (an interner collision, a wrong
  // extent) means the file does not describe a document this code could
  // have written, so fail closed.
  if (doc.node_count() != recs.size()) {
    corrupt("persistent-store replay produced a divergent node count");
  }
  for (uint32_t i = 0; i < recs.size(); ++i) {
    const xml::Node& n = doc.node(i);
    const Rec& rec = recs[i];
    if (static_cast<uint8_t>(n.kind) != rec.kind || n.parent != rec.parent ||
        n.name != rec.name || n.subtree_end != rec.subtree_end) {
      corrupt("persistent-store replay diverged from the persisted records");
    }
  }
  return doc;
}

std::string StoreCodec::EncodeIndex(const xml::DocumentIndex& index) {
  std::string out;
  PutU64(&out, index.built_node_count_);
  PutIdVector(&out, index.all_elements_);
  PutIdVector(&out, index.text_nodes_);
  PutIdListMap(&out, index.elements_);
  PutIdListMap(&out, index.attributes_);
  return out;
}

std::unique_ptr<xml::DocumentIndex> StoreCodec::DecodeIndex(
    std::string_view blob) {
  const auto* base = reinterpret_cast<const uint8_t*>(blob.data());
  ByteReader r{base, base + blob.size()};
  std::unique_ptr<xml::DocumentIndex> index(new xml::DocumentIndex());
  uint64_t built = 0;
  if (!r.U64(&built) || !ReadIdVector(&r, &index->all_elements_) ||
      !ReadIdVector(&r, &index->text_nodes_) ||
      !ReadIdListMap(&r, &index->elements_) ||
      !ReadIdListMap(&r, &index->attributes_) || r.remaining() != 0) {
    return nullptr;
  }
  index->built_node_count_ = built;
  return index;
}

std::string StoreCodec::EncodeStats(const xml::DocumentStats& stats) {
  std::string out;
  PutU64(&out, stats.built_node_count_);
  PutU64(&out, stats.element_count_);
  PutU64(&out, stats.attribute_count_);
  PutU64(&out, stats.text_node_count_);
  PutCountMap(&out, stats.elements_);
  PutCountMap(&out, stats.attributes_);
  PutCountMap(&out, stats.child_edges_);
  PutCountMap(&out, stats.parents_with_child_);
  PutCountMap(&out, stats.desc_edges_);
  PutCountMap(&out, stats.attr_edges_);
  PutCountMap(&out, stats.distinct_element_values_);
  PutCountMap(&out, stats.distinct_attr_values_);
  return out;
}

std::unique_ptr<xml::DocumentStats> StoreCodec::DecodeStats(
    std::string_view blob) {
  const auto* base = reinterpret_cast<const uint8_t*>(blob.data());
  ByteReader r{base, base + blob.size()};
  std::unique_ptr<xml::DocumentStats> stats(new xml::DocumentStats());
  uint64_t built = 0;
  if (!r.U64(&built) || !r.U64(&stats->element_count_) ||
      !r.U64(&stats->attribute_count_) || !r.U64(&stats->text_node_count_) ||
      !ReadCountMap(&r, &stats->elements_) ||
      !ReadCountMap(&r, &stats->attributes_) ||
      !ReadCountMap(&r, &stats->child_edges_) ||
      !ReadCountMap(&r, &stats->parents_with_child_) ||
      !ReadCountMap(&r, &stats->desc_edges_) ||
      !ReadCountMap(&r, &stats->attr_edges_) ||
      !ReadCountMap(&r, &stats->distinct_element_values_) ||
      !ReadCountMap(&r, &stats->distinct_attr_values_) ||
      r.remaining() != 0) {
    return nullptr;
  }
  stats->built_node_count_ = built;
  return stats;
}

// ---------------------------------------------------------------------------
// Persist
// ---------------------------------------------------------------------------

void Persist(const xml::Store& store, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw Error(ErrorCode::kStoreIo,
                "persistent-store directory creation failed", ec.value(), dir,
                "store.open_write");
  }
  // Persisting over the store's own attached source (warm attach →
  // re-persist with one NALQ_STORE_DIR) must not delete the epoch that
  // source's in-memory manifest still references: the live attachment
  // would keep serving until the first eviction+refault, then fail with
  // kStoreIo on the vanished files. Detect it (inode-level where possible,
  // canonical-path fallback) and keep the superseded epoch; the next
  // Persist from an unattached store reclaims it.
  bool onto_attached_source = false;
  if (const xml::DocumentSource* src = store.source();
      src != nullptr && !src->location().empty()) {
    std::error_code eq_ec;
    onto_attached_source =
        std::filesystem::equivalent(src->location(), dir, eq_ec);
    if (eq_ec) {
      onto_attached_source =
          std::filesystem::weakly_canonical(src->location(), eq_ec) ==
          std::filesystem::weakly_canonical(dir, eq_ec);
    }
  }
  const uint64_t epoch = NextEpoch(dir);
  Manifest manifest;
  manifest.epoch = epoch;
  // Reading documents (and building their indexes and statistics) makes
  // Persist a reader under the single-writer contract.
  xml::StoreReadLease lease(store);
  for (xml::DocId id = 0; id < store.size(); ++id) {
    const xml::Document& doc = store.document(id);
    const xml::DocumentIndex& index = store.index(id);
    const xml::DocumentStats& stats = store.stats(id);
    ManifestDoc entry;
    entry.name = store.document_name(id);
    entry.dtd = doc.dtd_text();
    entry.node_count = doc.node_count();
    entry.approx_bytes = StoreCodec::ApproxResidentBytes(doc);
    const std::string tag = "e" + std::to_string(epoch) + "_";
    entry.doc_file = tag + "doc_" + std::to_string(id) + ".nalq";
    entry.idx_file = tag + "idx_" + std::to_string(id) + ".nalq";
    entry.sts_file = tag + "sts_" + std::to_string(id) + ".nalq";
    {
      PageFileWriter w(JoinPath(dir, entry.doc_file), FileKind::kNodes);
      StoreCodec::EncodeDocument(doc, &w);
      w.Close();
    }
    {
      PageFileWriter w(JoinPath(dir, entry.idx_file), FileKind::kIndex);
      WriteBlobPages(&w, StoreCodec::EncodeIndex(index));
      w.Close();
    }
    {
      PageFileWriter w(JoinPath(dir, entry.sts_file), FileKind::kStats);
      WriteBlobPages(&w, StoreCodec::EncodeStats(stats));
      w.Close();
    }
    manifest.docs.push_back(std::move(entry));
  }
  CommitManifest(dir, manifest);
  // Only after the commit: the old epoch's files stop being reachable the
  // instant the rename lands, so deleting them can never un-commit a store
  // — unless the old epoch is exactly what the attached source still reads
  // (see above), in which case it is left in place.
  if (!onto_attached_source) RemoveStaleEpochs(dir, epoch);
}

// ---------------------------------------------------------------------------
// PersistentStore
// ---------------------------------------------------------------------------

PersistentStore::PersistentStore(std::string dir, Manifest manifest,
                                 const Options& opts)
    : dir_(std::move(dir)),
      manifest_(std::move(manifest)),
      budget_(opts.cache_limit_bytes),
      charged_(manifest_.docs.size(), 0) {}

std::unique_ptr<PersistentStore> PersistentStore::Open(const std::string& dir,
                                                       const Options& opts) {
  Manifest manifest = ReadManifest(dir);
  uint64_t persisted = 0;
  for (const ManifestDoc& d : manifest.docs) {
    // Cold-start fail-closed: every referenced file must exist with a
    // valid header before any query can touch the store. Page payloads
    // are validated lazily at fault-in.
    ValidateFileHeader(JoinPath(dir, d.doc_file), FileKind::kNodes);
    ValidateFileHeader(JoinPath(dir, d.idx_file), FileKind::kIndex);
    ValidateFileHeader(JoinPath(dir, d.sts_file), FileKind::kStats);
    std::error_code ec;
    persisted += std::filesystem::file_size(
        std::filesystem::path(dir) / d.doc_file, ec);
    persisted += std::filesystem::file_size(
        std::filesystem::path(dir) / d.idx_file, ec);
    persisted += std::filesystem::file_size(
        std::filesystem::path(dir) / d.sts_file, ec);
  }
  auto store = std::unique_ptr<PersistentStore>(
      new PersistentStore(dir, std::move(manifest), opts));
  store->persisted_bytes_ = persisted;
  return store;
}

xml::Document PersistentStore::LoadDocument(size_t i) {
  const ManifestDoc& meta = manifest_.docs[i];
  xml::Document doc =
      StoreCodec::DecodeDocument(meta, JoinPath(dir_, meta.doc_file));
  // Residency accounting: TryCharge, then the progress guarantee — the
  // faulting evaluation must proceed even when the cache is full; the
  // owning Store evicts back under the limit at the next lease boundary.
  if (!budget_.TryCharge(meta.approx_bytes)) {
    budget_.ChargeUnchecked(meta.approx_bytes);
  }
  resident_bytes_.fetch_add(meta.approx_bytes, std::memory_order_relaxed);
  charged_[i] = meta.approx_bytes;
  return doc;
}

void PersistentStore::UnloadDocument(size_t i) {
  budget_.Release(charged_[i]);
  resident_bytes_.fetch_sub(charged_[i], std::memory_order_relaxed);
  charged_[i] = 0;
}

std::string PersistentStore::ReadBlobFile(const std::string& file,
                                          FileKind kind) const {
  const std::string path = JoinPath(dir_, file);
  PageFileReader reader(path, kind);
  std::string blob;
  PageInfo page;
  uint32_t next_chunk = 0;
  while (reader.Next(&page)) {
    if (page.type != PageType::kBlob || page.first_item != next_chunk) {
      throw Error(ErrorCode::kStoreCorrupt,
                  "persistent-store blob pages out of order", 0, path,
                  "storage.page");
    }
    blob.append(page.payload);
    ++next_chunk;
  }
  return blob;
}

std::unique_ptr<xml::DocumentIndex> PersistentStore::LoadIndex(
    size_t i, const xml::Document& doc) {
  const ManifestDoc& meta = manifest_.docs[i];
  std::unique_ptr<xml::DocumentIndex> index =
      StoreCodec::DecodeIndex(ReadBlobFile(meta.idx_file, FileKind::kIndex));
  if (index == nullptr || index->built_node_count() != doc.node_count()) {
    throw Error(ErrorCode::kStoreCorrupt,
                "persistent-store index does not match its document", 0,
                JoinPath(dir_, meta.idx_file), "storage.index");
  }
  return index;
}

std::unique_ptr<xml::DocumentStats> PersistentStore::LoadStats(
    size_t i, const xml::Document& doc) {
  const ManifestDoc& meta = manifest_.docs[i];
  std::unique_ptr<xml::DocumentStats> stats =
      StoreCodec::DecodeStats(ReadBlobFile(meta.sts_file, FileKind::kStats));
  if (stats == nullptr || stats->built_node_count() != doc.node_count()) {
    throw Error(ErrorCode::kStoreCorrupt,
                "persistent-store statistics do not match their document", 0,
                JoinPath(dir_, meta.sts_file), "storage.stats");
  }
  return stats;
}

}  // namespace nalq::storage
