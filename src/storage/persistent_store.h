// Persistent on-disk document store: Persist() serializes a Store's
// documents, structural indexes and cardinality statistics into a
// directory; PersistentStore::Open attaches that directory back to a Store
// as a lazy DocumentSource (xml/document_source.h) so documents page in on
// first access instead of being re-parsed from text.
//
// Directory layout (all files in the page format of storage/format.h):
//
//   MANIFEST.nalq        commit point — names every live file
//   e<E>_doc_<i>.nalq    document i: name-table + preorder node pages
//   e<E>_idx_<i>.nalq    document i: serialized DocumentIndex (blob pages)
//   e<E>_sts_<i>.nalq    document i: serialized DocumentStats (blob pages)
//
// Atomicity (single-writer contract — one Persist at a time, never
// concurrent with readers of the same directory): every Persist writes a
// fresh epoch's data files alongside the old ones, then atomically renames
// a complete new manifest over MANIFEST.nalq. A crash or injected fault
// anywhere before the rename leaves the old manifest and the old epoch's
// files untouched — the store reopens at its previous contents; only after
// the rename are stale epochs deleted (tests/storage_test.cpp drives the
// torn-write paths through the store.* fault sites). The ordering holds
// across power loss too, not just process crashes: every data file is
// fsynced before Close returns, the temp manifest is fsynced before the
// rename, and the directory is fsynced after it — so the rename can never
// reach disk ahead of the bytes it names, and stale-epoch deletion only
// runs once the commit is durable.
//
// Persisting into the directory a store's own attached source was opened
// from (warm attach → re-persist, e.g. Engine::AttachStore then
// Engine::PersistStore with one NALQ_STORE_DIR) is supported: Persist
// detects it via DocumentSource::location() and skips stale-epoch removal
// so the files the live attachment's manifest still references survive —
// eviction and refault keep working, and the next open picks up the new
// epoch. The superseded epoch's files are reclaimed by the next Persist
// into that directory from a store not attached to it.
//
// Reconstruction determinism (what makes lazy eviction safe, see
// document_source.h): a document is persisted as its interner's string
// table plus one record per node in preorder — exactly the depth-first
// construction order — and decoded by replaying those records through
// Document::AddElement/AddText/AddAttribute after pre-interning the string
// table. Replay therefore reproduces the original node vector and interned
// name ids field for field; DecodeDocument validates every reconstructed
// node against its persisted record (kind, parent, name id, subtree extent)
// and fails closed with kStoreCorrupt on any mismatch.
#ifndef NALQ_STORAGE_PERSISTENT_STORE_H_
#define NALQ_STORAGE_PERSISTENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nal/spool.h"
#include "storage/format.h"
#include "xml/document_source.h"
#include "xml/index.h"
#include "xml/node.h"
#include "xml/stats.h"
#include "xml/store.h"

namespace nalq::storage {

/// One document's manifest entry.
struct ManifestDoc {
  std::string name;
  std::string dtd;           ///< DOCTYPE internal subset, may be empty
  uint64_t node_count = 0;   ///< validates the decoded document
  uint64_t approx_bytes = 0; ///< in-memory footprint charged when resident
  std::string doc_file;
  std::string idx_file;
  std::string sts_file;
};

struct Manifest {
  uint64_t epoch = 0;
  std::vector<ManifestDoc> docs;
};

/// Codec between the xml layer's in-memory structures and store pages.
/// Befriended by DocumentIndex and DocumentStats so their count maps
/// serialize directly instead of being rebuilt from the document.
class StoreCodec {
 public:
  /// Writes `doc` as name-table + node-record pages into `out`.
  static void EncodeDocument(const xml::Document& doc, PageFileWriter* out);

  /// Reads, replays and validates a document file. Throws kStoreIo /
  /// kStoreCorrupt / kStoreVersionMismatch.
  static xml::Document DecodeDocument(const ManifestDoc& meta,
                                      const std::string& path);

  static std::string EncodeIndex(const xml::DocumentIndex& index);
  /// Null on malformed input (the caller attaches path context).
  static std::unique_ptr<xml::DocumentIndex> DecodeIndex(
      std::string_view blob);

  static std::string EncodeStats(const xml::DocumentStats& stats);
  static std::unique_ptr<xml::DocumentStats> DecodeStats(
      std::string_view blob);

  /// Footprint estimate charged against the residency budget while the
  /// document is materialized: node vector + texts + interner strings +
  /// string-value memo slots.
  static uint64_t ApproxResidentBytes(const xml::Document& doc);
};

/// Serializes every document of `store` (faulting lazily attached ones in
/// as needed), its structural index and its statistics into `dir`,
/// creating the directory if needed. Reads `store` under a StoreReadLease;
/// the caller must not mutate the store concurrently. Throws engine::Error
/// on any I/O failure, leaving the directory's previous contents openable.
/// When `dir` is the directory the store's own attached source was opened
/// from, the superseded epoch's files are kept (not deleted) so the live
/// attachment keeps working — see the file comment.
void Persist(const xml::Store& store, const std::string& dir);

/// An opened persisted store directory: validates the manifest and every
/// referenced file header up front (cold-start fail-closed), then serves
/// documents, indexes and statistics on demand as a DocumentSource.
class PersistentStore : public xml::DocumentSource {
 public:
  struct Options {
    /// Residency target the owning Store evicts down to at lease
    /// boundaries; 0 = keep everything resident once faulted.
    uint64_t cache_limit_bytes = 0;
  };

  /// Throws kStoreIo (missing/unreadable files), kStoreVersionMismatch
  /// (foreign format generation or endianness) or kStoreCorrupt (failed
  /// validation).
  static std::unique_ptr<PersistentStore> Open(const std::string& dir,
                                               const Options& opts);
  static std::unique_ptr<PersistentStore> Open(const std::string& dir) {
    return Open(dir, Options{});
  }

  const std::string& dir() const { return dir_; }
  uint64_t epoch() const { return manifest_.epoch; }

  /// Total persisted payload bytes across all store files (bench metric).
  uint64_t persisted_bytes() const { return persisted_bytes_; }

  // -- DocumentSource -------------------------------------------------------
  size_t document_count() const override { return manifest_.docs.size(); }
  const std::string& document_name(size_t i) const override {
    return manifest_.docs[i].name;
  }
  const std::string& document_dtd(size_t i) const override {
    return manifest_.docs[i].dtd;
  }
  xml::Document LoadDocument(size_t i) override;
  void UnloadDocument(size_t i) override;
  std::unique_ptr<xml::DocumentIndex> LoadIndex(
      size_t i, const xml::Document& doc) override;
  std::unique_ptr<xml::DocumentStats> LoadStats(
      size_t i, const xml::Document& doc) override;
  uint64_t resident_bytes() const override {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t cache_limit_bytes() const override {
    return budget_.limit_bytes();
  }
  std::string location() const override { return dir_; }

 private:
  PersistentStore(std::string dir, Manifest manifest, const Options& opts);

  /// Concatenated blob-page payload of `file` (kIndex/kStats files).
  std::string ReadBlobFile(const std::string& file, FileKind kind) const;

  std::string dir_;
  Manifest manifest_;
  uint64_t persisted_bytes_ = 0;
  /// Residency accountant (nal/spool.h): LoadDocument charges each
  /// document's approx_bytes — TryCharge first, ChargeUnchecked as the
  /// progress guarantee when the cache is already full (the faulting
  /// evaluation must be able to proceed; the owning Store evicts back
  /// under the limit at the next reader-free lease boundary).
  nal::MemoryBudget budget_;
  /// Residency bytes tracked independently of the budget: an unlimited
  /// MemoryBudget (limit 0) deliberately skips its accounting, but
  /// resident_bytes() must still report what lazy page-in materialized
  /// (eviction decisions and the bench's page-in metric both read it).
  std::atomic<uint64_t> resident_bytes_{0};
  std::vector<uint64_t> charged_;
};

}  // namespace nalq::storage

#endif  // NALQ_STORAGE_PERSISTENT_STORE_H_
