// Cost model for the plan chooser (opt/chooser.h).
//
// Costs are abstract units, roughly "one tuple moved through one operator".
// The model charges per-operator CPU from the cardinality estimates
// (opt/cardinality.h) plus spill I/O whenever a pipeline breaker's estimated
// resident footprint exceeds the active memory budget — the same budget the
// spool layer (nal/spool.h) enforces at execution time, so a plan whose hash
// build side would grace-partition is charged for writing and re-reading it.
//
// Absolute values are meaningless; only ratios between alternatives matter,
// and ties fall back to the paper's rule-priority ranking (the "most
// restrictive equivalence" policy of Sec. 4), which keeps the chooser
// well-behaved on empty stores where every estimate is a default.
#ifndef NALQ_OPT_COST_H_
#define NALQ_OPT_COST_H_

#include <cstdint>

namespace nalq::opt {

/// One plan's bottom-up estimate, produced by CardinalityEstimator and
/// consumed by the chooser, CompiledQuery and the benchmark harness.
struct PlanEstimate {
  double rows = 0;      ///< estimated root output rows
  double cpu_cost = 0;  ///< per-operator CPU units over the whole plan
  double io_cost = 0;   ///< spill I/O units under the active memory budget
  /// Largest single breaker footprint (bytes) the plan is estimated to keep
  /// resident — what the budget comparison ran against.
  double peak_breaker_bytes = 0;

  double total_cost() const { return cpu_cost + io_cost; }
};

/// Per-operator cost constants plus the budget-aware spill charge. One
/// instance per estimation run; copying is fine.
class CostModel {
 public:
  /// `memory_budget_bytes` mirrors Engine::Run's knob: 0 = unlimited (no
  /// spill I/O is ever charged).
  explicit CostModel(uint64_t memory_budget_bytes = 0)
      : budget_(memory_budget_bytes) {}

  uint64_t budget_bytes() const { return budget_; }

  // ---- CPU constants (units per event) ----------------------------------
  static constexpr double kTuple = 1.0;        ///< tuple through an operator
  static constexpr double kPredicate = 0.5;    ///< predicate evaluation
  static constexpr double kPathStep = 0.3;     ///< path step per context
  static constexpr double kPathResult = 0.2;   ///< node emitted by a path
  static constexpr double kHashBuild = 2.0;    ///< build-side tuple hashed
  static constexpr double kHashProbe = 1.0;    ///< probe-side lookup
  static constexpr double kGroupBuild = 2.0;   ///< Γ input tuple bucketed
  static constexpr double kDistinct = 1.5;     ///< ΠD key hashed + deduped
  static constexpr double kRender = 2.0;       ///< Ξ output tuple rendered
  static constexpr double kSortCoef = 0.4;     ///< × n log2 n

  /// Sort cost for `n` estimated input rows.
  double SortCost(double n) const;

  /// Spill I/O charge for one pipeline breaker keeping an estimated
  /// `resident_bytes` footprint: zero while it fits the budget, otherwise
  /// one write plus one read of the whole footprint (grace partitioning and
  /// external run formation both move everything to disk and back once at
  /// fan-outs derived from the budget; deeper re-partitions are second-order
  /// and ignored).
  double SpillIo(double resident_bytes) const;

  /// Bytes-per-unit weight of SpillIo, exposed for tests.
  static constexpr double kIoPerByte = 0.01;

 private:
  uint64_t budget_;
};

}  // namespace nalq::opt

#endif  // NALQ_OPT_COST_H_
