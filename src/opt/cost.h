// Cost model for the plan chooser (opt/chooser.h) and the parallel
// placement chooser (opt/parallel.h).
//
// Costs are abstract units, roughly "one tuple moved through one operator".
// The model charges per-operator CPU from the cardinality estimates
// (opt/cardinality.h) plus spill I/O whenever a pipeline breaker's estimated
// resident footprint exceeds the active memory budget — the same budget the
// spool layer (nal/spool.h) enforces at execution time, so a plan whose hash
// build side would grace-partition is charged for writing and re-reading it.
//
// Absolute values are meaningless; only ratios between alternatives matter,
// and ties fall back to the paper's rule-priority ranking (the "most
// restrictive equivalence" policy of Sec. 4), which keeps the chooser
// well-behaved on empty stores where every estimate is a default.
//
// The per-event constants live in a CostConstants value the model carries.
// The defaults below are the hand-seeded ratios the model shipped with;
// the default-constructed CostModel instead loads the measurement-calibrated
// set from the generated header opt/cost_constants.h (regenerate with
// tools/calibrate_costs — see src/opt/README.md for the workflow).
#ifndef NALQ_OPT_COST_H_
#define NALQ_OPT_COST_H_

#include <cstdint>

namespace nalq::opt {

/// One plan's bottom-up estimate, produced by CardinalityEstimator and
/// consumed by the chooser, CompiledQuery and the benchmark harness.
struct PlanEstimate {
  double rows = 0;      ///< estimated root output rows
  double cpu_cost = 0;  ///< per-operator CPU units over the whole plan
  double io_cost = 0;   ///< spill I/O units under the active memory budget
  /// Largest single breaker footprint (bytes) the plan is estimated to keep
  /// resident — what the budget comparison ran against.
  double peak_breaker_bytes = 0;

  double total_cost() const { return cpu_cost + io_cost; }
};

/// Per-event cost constants, in units of "one tuple through one streaming
/// operator" (tuple is the numeraire; calibration normalizes it to 1). The
/// member initializers are the hand-seeded ratios — the uncalibrated
/// fallback and the values calibration starts from for event classes the
/// micro-benches cannot isolate (see tools/calibrate_costs.cpp).
struct CostConstants {
  double tuple = 1.0;        ///< tuple through an operator
  double predicate = 0.5;    ///< predicate evaluation
  double path_step = 0.3;    ///< path step per context node
  double path_result = 0.2;  ///< node emitted by a path
  double hash_build = 2.0;   ///< build-side tuple hashed
  double hash_probe = 1.0;   ///< probe-side lookup
  double group_build = 2.0;  ///< Γ input tuple bucketed
  double distinct = 1.5;     ///< ΠD key hashed + deduped
  double render = 2.0;       ///< Ξ output tuple rendered
  double sort_coef = 0.4;    ///< × n log2 n
  double io_per_byte = 0.01; ///< spill write+read, per byte

  // Exchange-parallelism terms (opt/parallel.h): what a parallel placement
  // pays that a serial run does not.
  double exchange_tuple = 0.2;   ///< source tuple chunked through an exchange
  double worker_setup = 2000.0;  ///< per worker pipeline (clone + dispatch)
};

/// Cost constants plus the budget-aware spill charge. One instance per
/// estimation run; copying is fine.
class CostModel {
 public:
  /// `memory_budget_bytes` mirrors Engine::Run's knob: 0 = unlimited (no
  /// spill I/O is ever charged). The default-constructed model carries the
  /// calibrated constants (opt/cost_constants.h).
  explicit CostModel(uint64_t memory_budget_bytes = 0);
  CostModel(uint64_t memory_budget_bytes, const CostConstants& constants)
      : budget_(memory_budget_bytes), k_(constants) {}

  uint64_t budget_bytes() const { return budget_; }
  const CostConstants& constants() const { return k_; }

  // ---- per-event charges (units per event) ------------------------------
  double tuple() const { return k_.tuple; }
  double predicate() const { return k_.predicate; }
  double path_step() const { return k_.path_step; }
  double path_result() const { return k_.path_result; }
  double hash_build() const { return k_.hash_build; }
  double hash_probe() const { return k_.hash_probe; }
  double group_build() const { return k_.group_build; }
  double distinct() const { return k_.distinct; }
  double render() const { return k_.render; }

  /// Sort cost for `n` estimated input rows.
  double SortCost(double n) const;

  /// Spill I/O charge for one pipeline breaker keeping an estimated
  /// `resident_bytes` footprint: zero while it fits the budget, otherwise
  /// one write plus one read of the whole footprint (grace partitioning and
  /// external run formation both move everything to disk and back once at
  /// fan-outs derived from the budget; deeper re-partitions are second-order
  /// and ignored).
  double SpillIo(double resident_bytes) const;

 private:
  uint64_t budget_;
  CostConstants k_;
};

}  // namespace nalq::opt

#endif  // NALQ_OPT_COST_H_
