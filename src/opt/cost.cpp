#include "opt/cost.h"

#include <cmath>

#include "opt/cost_constants.h"

namespace nalq::opt {

CostModel::CostModel(uint64_t memory_budget_bytes)
    : budget_(memory_budget_bytes), k_(kCalibratedCosts) {}

double CostModel::SortCost(double n) const {
  if (n <= 1) return k_.tuple;
  return k_.sort_coef * n * std::log2(n + 1);
}

double CostModel::SpillIo(double resident_bytes) const {
  if (budget_ == 0) return 0;
  if (resident_bytes <= static_cast<double>(budget_)) return 0;
  return k_.io_per_byte * 2.0 * resident_bytes;  // write once, read once
}

}  // namespace nalq::opt
