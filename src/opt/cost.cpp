#include "opt/cost.h"

#include <cmath>

namespace nalq::opt {

double CostModel::SortCost(double n) const {
  if (n <= 1) return kTuple;
  return kSortCoef * n * std::log2(n + 1);
}

double CostModel::SpillIo(double resident_bytes) const {
  if (budget_ == 0) return 0;
  if (resident_bytes <= static_cast<double>(budget_)) return 0;
  return kIoPerByte * 2.0 * resident_bytes;  // write once, read once
}

}  // namespace nalq::opt
