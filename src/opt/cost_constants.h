// Measurement-calibrated cost constants — GENERATED FILE, do not edit.
//
// Regenerate:  calibrate_costs --emit src/opt/cost_constants.h
// Verify:      calibrate_costs --check src/opt/cost_constants.h
//
// Units: one streaming per-tuple operator event == 1.000 (the numeraire).
// Constants the micro-benches cannot isolate keep their seeded ratio and
// are marked "(seeded)" by the calibration run.
#ifndef NALQ_OPT_COST_CONSTANTS_H_
#define NALQ_OPT_COST_CONSTANTS_H_

#include "opt/cost.h"

namespace nalq::opt {

inline constexpr CostConstants kCalibratedCosts = {
    /*tuple=*/1.000,
    /*predicate=*/2.149,
    /*path_step=*/0.300,
    /*path_result=*/0.200,
    /*hash_build=*/17.295,
    /*hash_probe=*/5.803,
    /*group_build=*/2.294,
    /*distinct=*/2.215,
    /*render=*/0.304,
    /*sort_coef=*/0.180,
    /*io_per_byte=*/0.010,
    /*exchange_tuple=*/0.200,
    /*worker_setup=*/2000.000,
};

}  // namespace nalq::opt

#endif  // NALQ_OPT_COST_CONSTANTS_H_
