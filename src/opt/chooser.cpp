#include "opt/chooser.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rewrite/unnester.h"

namespace nalq::opt {

Choice ChoosePlan(const xml::Store& store,
                  const std::vector<rewrite::Alternative>& alternatives,
                  const ChooseOptions& options) {
  if (alternatives.empty()) {
    throw std::invalid_argument("ChoosePlan: no alternatives");
  }
  CostModel model(options.memory_budget_bytes);
  Choice out;
  out.estimates.reserve(alternatives.size());
  for (const rewrite::Alternative& alt : alternatives) {
    CardinalityEstimator estimator(store, model);
    out.estimates.push_back(estimator.EstimatePlan(*alt.plan));
  }
  // Two estimates within this relative margin of the cheapest are "the
  // same cost": the model's constants are not calibrated finer than this,
  // and the rule-priority tie-break keeps the choice deterministic and
  // paper-faithful when the model cannot tell plans apart. The margin is
  // anchored to the global minimum (not compared pairwise), so near-ties
  // cannot chain into a pick arbitrarily far from the cheapest plan.
  constexpr double kTieMargin = 0.02;
  // No documents means no statistics: every estimate is built from the
  // estimator's fixed defaults, and with calibrated constants those
  // defaults produce cost differences that reflect the 10-row placeholder
  // cardinalities, not the data. Degrade to the rule-priority policy
  // outright — cost-based choice needs representative statistics.
  if (store.size() == 0) {
    out.index = 0;
    for (size_t i = 1; i < alternatives.size(); ++i) {
      if (rewrite::RulePriority(alternatives[i].rule) <
          rewrite::RulePriority(alternatives[out.index].rule)) {
        out.index = i;
      }
    }
    return out;
  }
  size_t cheapest = 0;
  for (size_t i = 1; i < alternatives.size(); ++i) {
    if (out.estimates[i].total_cost() <
        out.estimates[cheapest].total_cost()) {
      cheapest = i;
    }
  }
  double floor = out.estimates[cheapest].total_cost();
  double margin = kTieMargin * std::max(floor, 1.0);
  out.index = cheapest;
  for (size_t i = 0; i < alternatives.size(); ++i) {
    if (out.estimates[i].total_cost() <= floor + margin &&
        rewrite::RulePriority(alternatives[i].rule) <
            rewrite::RulePriority(alternatives[out.index].rule)) {
      out.index = i;
    }
  }
  return out;
}

}  // namespace nalq::opt
