// Cardinality estimation over NAL algebra plans.
//
// Propagates row estimates bottom-up through every operator of the algebra
// (Ξ, Γ, joins/semijoins/antijoins, Sort, σ/χ/Υ/μ/Π) and charges the cost
// model (opt/cost.h) along the way, so one walk yields a PlanEstimate for a
// whole plan. Sources of truth, in order of preference:
//
//   * exact counts from the per-document statistics (xml/stats.h) for
//     index-resolvable path steps — //name from a document root is the
//     name's occurrence count, child/attribute/descendant steps from a
//     known element name use the fan-out edge counts, and distinct-values()
//     over a path uses the collected distinct-value counts;
//   * per-attribute profiles threaded through the operators: which element
//     name an attribute's nodes carry, the distinct-value count of its
//     domain, and the expected size of nested sequence values (Γ groups,
//     let-bound sequences);
//   * selectivity defaults for everything else (equality 1/distinct or 0.1,
//     ordered comparisons 1/3, quantifiers 0.5).
//
// Nested algebraic expressions in subscripts are estimated once and charged
// per evaluation — input rows × subscript cost — which is exactly the
// quadratic term that makes the paper's nested plans lose, so the chooser
// (opt/chooser.h) needs no special casing to prefer unnested alternatives.
#ifndef NALQ_OPT_CARDINALITY_H_
#define NALQ_OPT_CARDINALITY_H_

#include <map>

#include "nal/algebra.h"
#include "opt/cost.h"
#include "xml/store.h"

namespace nalq::opt {

/// What the estimator knows about one attribute of the tuples flowing
/// through an operator.
struct AttrProfile {
  /// Node provenance: the document and element/attribute name the values
  /// point at, when statically known (path results, doc() roots).
  bool is_node = false;
  bool is_doc_root = false;
  bool name_is_attribute = false;  ///< nodes are attribute nodes
  xml::DocId doc = 0;
  uint32_t name_id = UINT32_MAX;  ///< interned in `doc`'s name table

  /// Distinct atomized values in the attribute's domain (0 = unknown).
  double distinct = 0;
  /// Expected length of sequence values bound here (0 = scalar/node).
  double seq_rows = 0;
};

using Scope = std::map<nal::Symbol, AttrProfile>;

/// One subtree's estimate: output rows, that subtree's cumulative cost and
/// the output attribute profiles.
struct OpEstimate {
  double rows = 1;
  double cpu = 0;
  double io = 0;
  double peak_breaker_bytes = 0;
  Scope scope;
};

/// One expression's estimate, per evaluation.
struct ExprEstimate {
  double cost = 0;     ///< CPU units for one evaluation
  double fanout = 1;   ///< expected items when the result is flattened
  AttrProfile profile; ///< profile of one result item
};

class CardinalityEstimator {
 public:
  CardinalityEstimator(const xml::Store& store, const CostModel& model)
      : store_(store), model_(model) {}

  /// Full-plan estimate: rows + cost of `root` evaluated with no outer
  /// bindings. Safe on any plan; unknown shapes fall back to defaults.
  PlanEstimate EstimatePlan(const nal::AlgebraOp& root);

  /// Subtree estimate under outer bindings `outer` (exposed for tests).
  OpEstimate EstimateOp(const nal::AlgebraOp& op, const Scope& outer);

  /// Optional per-node recording: every EstimateOp return is mirrored into
  /// `*rec` keyed by plan node, so callers that need intermediate
  /// cardinalities — the parallel placement chooser's breaker pricing and
  /// the spool layer's grace-admission row hints (opt/parallel.h) — get
  /// them from the same walk that prices the plan. A node estimated more
  /// than once (subscript re-entry) keeps the last estimate. Borrowed; must
  /// outlive the estimation calls.
  void set_node_recorder(std::map<const nal::AlgebraOp*, OpEstimate>* rec) {
    recorder_ = rec;
  }

  // ---- defaults (documented knobs, exposed for tests) --------------------
  static constexpr double kDefaultRows = 10;        ///< unknown leaf fan-out
  static constexpr double kDefaultEqSelectivity = 0.1;
  static constexpr double kDefaultCmpSelectivity = 1.0 / 3;
  static constexpr double kDefaultQuantSelectivity = 0.5;
  static constexpr double kDefaultStepFanout = 3;   ///< unknown path step

 private:
  ExprEstimate EstimateExpr(const nal::Expr& e, const Scope& scope);
  /// Probability that `pred` holds for one tuple of `scope`.
  double Selectivity(const nal::Expr& pred, const Scope& scope);
  /// Estimated distinct combinations of `attrs` over `rows` input rows.
  double DistinctRows(const std::vector<nal::Symbol>& attrs,
                      const Scope& scope, double rows) const;
  /// Expected resident bytes of one tuple shaped like `scope`.
  static double TupleBytes(const Scope& scope);
  /// Per-context fan-out and result profile of one path step from nodes
  /// profiled as `from`.
  double StepFanout(const AttrProfile& from, const xml::Step& step,
                    AttrProfile* result) const;

  const AttrProfile* Find(const Scope& scope, nal::Symbol a) const {
    auto it = scope.find(a);
    return it == scope.end() ? nullptr : &it->second;
  }

  const xml::Store& store_;
  const CostModel& model_;
  /// Common subexpressions (rewrite::ShareCommonSubexpressions) are
  /// evaluated once per run; later occurrences cost only a re-read.
  std::map<int, OpEstimate> cse_cache_;
  /// e[a'] inner-item profiles keyed by the BindTuples expression node,
  /// carried from EstimateExpr to the enclosing χ.
  std::map<const nal::Expr*, AttrProfile> bind_inner_;
  /// χ-bound nested attributes: attribute → (inner attribute, its profile),
  /// restored into scope when μ unnests the attribute.
  std::map<nal::Symbol, std::pair<nal::Symbol, AttrProfile>> bound_inner_;
  std::map<const nal::AlgebraOp*, OpEstimate>* recorder_ = nullptr;
};

}  // namespace nalq::opt

#endif  // NALQ_OPT_CARDINALITY_H_
