#include "opt/cardinality.h"

#include <algorithm>
#include <cmath>

#include "nal/analysis.h"
#include "nal/physical.h"

namespace nalq::opt {

namespace {

using nal::AlgebraOp;
using nal::Expr;
using nal::ExprKind;
using nal::OpKind;
using nal::Symbol;

/// Outer bindings merged under the child's own attributes (subscript
/// expressions see both; the child wins on collisions).
Scope Merged(const Scope& child, const Scope& outer) {
  if (outer.empty()) return child;
  Scope out = outer;
  for (const auto& [a, p] : child) out[a] = p;
  return out;
}

AttrProfile UnknownNode() {
  AttrProfile p;
  p.is_node = true;
  return p;
}

double Clamp01(double s) { return std::clamp(s, 0.0, 1.0); }

}  // namespace

double CardinalityEstimator::TupleBytes(const Scope& scope) {
  double b = 48;
  for (const auto& [a, p] : scope) {
    (void)a;
    b += 40;
    if (p.seq_rows > 0) b += p.seq_rows * 72;
  }
  return b;
}

double CardinalityEstimator::DistinctRows(const std::vector<Symbol>& attrs,
                                          const Scope& scope,
                                          double rows) const {
  if (rows <= 1 || attrs.empty()) return std::max(rows, 0.0);
  double known = 1;
  bool any_unknown = false;
  for (Symbol a : attrs) {
    const AttrProfile* p = Find(scope, a);
    if (p != nullptr && p->distinct > 0) {
      known *= p->distinct;
    } else {
      any_unknown = true;
    }
  }
  if (any_unknown) known = std::max(known, rows * 0.5);
  return std::min(rows, std::max(known, 1.0));
}

double CardinalityEstimator::StepFanout(const AttrProfile& from,
                                        const xml::Step& step,
                                        AttrProfile* result) const {
  *result = UnknownNode();
  if (!from.is_node || from.doc >= store_.size()) {
    return kDefaultStepFanout;
  }
  const xml::Document& doc = store_.document(from.doc);
  const xml::DocumentStats& stats = store_.stats(from.doc);
  result->doc = from.doc;
  uint32_t name = step.wildcard() || step.axis == xml::Axis::kText
                      ? UINT32_MAX
                      : doc.names().Find(step.name);
  result->name_id = name;
  result->name_is_attribute = step.axis == xml::Axis::kAttribute;
  if (step.axis == xml::Axis::kAttribute) {
    result->distinct = static_cast<double>(stats.DistinctAttrValues(name));
  } else if (!step.wildcard() && step.axis != xml::Axis::kText) {
    result->distinct = static_cast<double>(stats.DistinctElementValues(name));
  }
  // A name that never occurs resolves to the empty result everywhere.
  if (name == UINT32_MAX && !step.wildcard() &&
      step.axis != xml::Axis::kText) {
    return 0;
  }

  if (from.is_doc_root) {
    switch (step.axis) {
      case xml::Axis::kDescendant:
        return step.wildcard()
                   ? static_cast<double>(stats.element_count())
                   : static_cast<double>(stats.ElementCount(name));
      case xml::Axis::kChild: {
        // The document node has exactly one element child: the root.
        xml::NodeId root_elem = doc.first_child(doc.root());
        if (root_elem == xml::kNoNode) return 0;
        if (step.wildcard() || doc.name_id(root_elem) == name) {
          result->name_id = doc.name_id(root_elem);
          result->distinct = 0;
          return 1;
        }
        return 0;
      }
      case xml::Axis::kAttribute:
        return step.wildcard()
                   ? static_cast<double>(stats.attribute_count())
                   : static_cast<double>(stats.AttributeCount(name));
      case xml::Axis::kText:
        return static_cast<double>(stats.text_node_count());
    }
    return kDefaultStepFanout;
  }

  if (from.name_id == UINT32_MAX || from.name_is_attribute) {
    return kDefaultStepFanout;
  }
  double contexts =
      std::max<double>(1, static_cast<double>(stats.ElementCount(from.name_id)));
  switch (step.axis) {
    case xml::Axis::kChild:
      if (step.wildcard()) return kDefaultStepFanout;
      return static_cast<double>(stats.ChildEdges(from.name_id, name)) /
             contexts;
    case xml::Axis::kDescendant:
      if (step.wildcard()) return kDefaultStepFanout;
      return static_cast<double>(stats.DescendantEdges(from.name_id, name)) /
             contexts;
    case xml::Axis::kAttribute:
      if (step.wildcard()) return kDefaultStepFanout;
      return static_cast<double>(stats.AttrEdges(from.name_id, name)) /
             contexts;
    case xml::Axis::kText:
      return 1;
  }
  return kDefaultStepFanout;
}

ExprEstimate CardinalityEstimator::EstimateExpr(const Expr& e,
                                                const Scope& scope) {
  ExprEstimate out;
  switch (e.kind) {
    case ExprKind::kConst:
      out.cost = 0.05;
      return out;
    case ExprKind::kAttrRef: {
      out.cost = 0.05;
      const AttrProfile* p = Find(scope, e.attr);
      if (p != nullptr) {
        out.profile = *p;
        if (p->seq_rows > 0) out.fanout = p->seq_rows;
      }
      return out;
    }
    case ExprKind::kPath: {
      ExprEstimate ctx = EstimateExpr(*e.children[0], scope);
      out.cost = ctx.cost;
      AttrProfile cur = ctx.profile;
      double per_context = 1;
      if (e.path.absolute() && cur.is_node) {
        cur.is_doc_root = true;
        cur.name_id = UINT32_MAX;
      }
      for (const xml::Step& step : e.path.steps()) {
        AttrProfile next;
        per_context *= StepFanout(cur, step, &next);
        cur = next;
        out.cost += model_.path_step();
      }
      out.fanout = ctx.fanout * per_context;
      out.cost += out.fanout * model_.path_result();
      out.profile = cur;
      return out;
    }
    case ExprKind::kFnCall: {
      double children_cost = 0;
      for (const nal::ExprPtr& c : e.children) {
        children_cost += EstimateExpr(*c, scope).cost;
      }
      if ((e.fn == "doc" || e.fn == "document") && e.children.size() == 1 &&
          e.children[0]->kind == ExprKind::kConst) {
        out.cost = 0.2;
        std::optional<xml::DocId> id =
            store_.Find(e.children[0]->literal.AsString());
        if (id.has_value()) {
          out.profile.is_node = true;
          out.profile.is_doc_root = true;
          out.profile.doc = *id;
        } else {
          out.profile = UnknownNode();
        }
        return out;
      }
      if (e.fn == "distinct-values" && e.children.size() == 1) {
        ExprEstimate in = EstimateExpr(*e.children[0], scope);
        out.cost = in.cost + in.fanout * 0.2;
        out.profile = in.profile;
        out.profile.is_node = false;  // atomized strings
        out.fanout = in.profile.distinct > 0
                         ? std::min(in.fanout, in.profile.distinct)
                         : in.fanout;
        return out;
      }
      if (e.fn == "count" || e.fn == "min" || e.fn == "max" ||
          e.fn == "sum" || e.fn == "avg" || e.fn == "exists" ||
          e.fn == "empty") {
        ExprEstimate in = e.children.empty()
                              ? ExprEstimate{}
                              : EstimateExpr(*e.children[0], scope);
        out.cost = in.cost + in.fanout * 0.1;
        return out;
      }
      out.cost = 0.2 + children_cost;
      return out;
    }
    case ExprKind::kNestedAlg: {
      OpEstimate est = EstimateOp(*e.alg, scope);
      out.cost = est.cpu + est.io;  // charged once per evaluation
      out.fanout = est.rows;
      out.profile.seq_rows = est.rows;
      return out;
    }
    case ExprKind::kBindTuples: {
      ExprEstimate items = EstimateExpr(*e.children[0], scope);
      out.cost = items.cost + items.fanout * 0.1;
      out.profile.seq_rows = items.fanout;
      // Remember the inner item profile so μ can restore it (AttrProfile
      // carries only scalars, so park it in the estimator-local map).
      bind_inner_[&e] = items.profile;
      return out;
    }
    case ExprKind::kQuant: {
      OpEstimate range = EstimateOp(*e.alg, scope);
      double pred_cost =
          e.children.empty() ? 0 : EstimateExpr(*e.children[0], scope).cost;
      // Short-circuit: on average half the range is visited.
      out.cost = range.cpu + range.io +
                 0.5 * range.rows * (model_.predicate() + pred_cost);
      return out;
    }
    case ExprKind::kAgg: {
      ExprEstimate in = EstimateExpr(*e.children[0], scope);
      double n = std::max(in.fanout, in.profile.seq_rows);
      out.cost = in.cost + n * 0.1;
      if (e.agg.has_filter()) out.cost += n * model_.predicate();
      switch (e.agg.kind) {
        case nal::AggSpec::Kind::kId:
          out.profile.seq_rows = n;
          break;
        case nal::AggSpec::Kind::kProjectItems:
          out.fanout = n;
          break;
        default:
          break;  // scalar aggregate
      }
      return out;
    }
    case ExprKind::kCmp:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
    case ExprKind::kArith:
    case ExprKind::kCond: {
      out.cost = 0.1;
      for (const nal::ExprPtr& c : e.children) {
        out.cost += EstimateExpr(*c, scope).cost;
      }
      return out;
    }
  }
  out.cost = 0.2;
  return out;
}

double CardinalityEstimator::Selectivity(const Expr& pred,
                                         const Scope& scope) {
  switch (pred.kind) {
    case ExprKind::kConst:
      if (pred.literal.kind() == nal::ValueKind::kBool) {
        return pred.literal.AsBool() ? 1.0 : 0.0;
      }
      return 1.0;
    case ExprKind::kCmp: {
      if (pred.cmp == nal::CmpOp::kLt || pred.cmp == nal::CmpOp::kLe ||
          pred.cmp == nal::CmpOp::kGt || pred.cmp == nal::CmpOp::kGe) {
        return kDefaultCmpSelectivity;
      }
      double d = 0;
      for (const nal::ExprPtr& side : pred.children) {
        const AttrProfile* p = side->kind == ExprKind::kAttrRef
                                   ? Find(scope, side->attr)
                                   : nullptr;
        if (p != nullptr && p->distinct > 0) d = std::max(d, p->distinct);
      }
      double eq = d > 0 ? 1.0 / d : kDefaultEqSelectivity;
      return pred.cmp == nal::CmpOp::kNe ? Clamp01(1.0 - eq) : eq;
    }
    case ExprKind::kAnd:
      return Selectivity(*pred.children[0], scope) *
             Selectivity(*pred.children[1], scope);
    case ExprKind::kOr: {
      double a = Selectivity(*pred.children[0], scope);
      double b = Selectivity(*pred.children[1], scope);
      return Clamp01(a + b - a * b);
    }
    case ExprKind::kNot:
      return Clamp01(1.0 - Selectivity(*pred.children[0], scope));
    case ExprKind::kQuant:
      return kDefaultQuantSelectivity;
    case ExprKind::kFnCall:
      if (pred.fn == "contains" || pred.fn == "starts-with") return 0.25;
      if (pred.fn == "true") return 1.0;
      if (pred.fn == "false") return 0.0;
      return 0.5;
    default:
      return 0.5;
  }
}

OpEstimate CardinalityEstimator::EstimateOp(const AlgebraOp& op,
                                            const Scope& outer) {
  // A shared subexpression is evaluated once per run; later occurrences pay
  // only a re-read of the cached sequence.
  if (op.cse_id >= 0) {
    auto it = cse_cache_.find(op.cse_id);
    if (it != cse_cache_.end()) {
      OpEstimate reread = it->second;
      reread.cpu = reread.rows * 0.2;
      reread.io = 0;
      reread.peak_breaker_bytes = 0;
      if (recorder_ != nullptr) (*recorder_)[&op] = reread;
      return reread;
    }
  }

  OpEstimate out;
  std::vector<OpEstimate> kids;
  kids.reserve(op.children.size());
  for (const nal::AlgebraPtr& c : op.children) {
    kids.push_back(EstimateOp(*c, outer));
    out.cpu += kids.back().cpu;
    out.io += kids.back().io;
    out.peak_breaker_bytes =
        std::max(out.peak_breaker_bytes, kids.back().peak_breaker_bytes);
  }
  /// Charges one pipeline-breaker footprint against the budget.
  auto charge_breaker = [&](double rows, const Scope& scope) {
    double bytes = std::max(rows, 0.0) * TupleBytes(scope);
    out.io += model_.SpillIo(bytes);
    out.peak_breaker_bytes = std::max(out.peak_breaker_bytes, bytes);
  };

  switch (op.kind) {
    case OpKind::kSingleton:
      out.rows = 1;
      break;

    case OpKind::kSelect: {
      const OpEstimate& in = kids[0];
      Scope merged = Merged(in.scope, outer);
      ExprEstimate pe = EstimateExpr(*op.pred, merged);
      out.cpu += in.rows * (model_.predicate() + pe.cost);
      out.rows = in.rows * Selectivity(*op.pred, merged);
      out.scope = in.scope;
      break;
    }

    case OpKind::kProject: {
      const OpEstimate& in = kids[0];
      out.rows = in.rows;
      out.scope = in.scope;
      if (!op.renames.empty()) {
        for (const auto& [to, from] : op.renames) {
          auto it = out.scope.find(from);
          if (it != out.scope.end()) {
            out.scope[to] = it->second;
            out.scope.erase(from);
          }
        }
        out.cpu += in.rows * 0.2;
        break;
      }
      switch (op.pmode) {
        case nal::ProjectMode::kKeep: {
          Scope kept;
          for (Symbol a : op.attrs) {
            auto it = out.scope.find(a);
            if (it != out.scope.end()) kept[a] = it->second;
          }
          out.scope = std::move(kept);
          out.cpu += in.rows * 0.2;
          break;
        }
        case nal::ProjectMode::kDrop:
          for (Symbol a : op.attrs) out.scope.erase(a);
          out.cpu += in.rows * 0.2;
          break;
        case nal::ProjectMode::kDistinct: {
          Scope merged = Merged(in.scope, outer);
          out.rows = DistinctRows(op.attrs, merged, in.rows);
          out.cpu += in.rows * model_.distinct();
          Scope kept;
          for (Symbol a : op.attrs) {
            auto it = out.scope.find(a);
            if (it != out.scope.end()) kept[a] = it->second;
          }
          out.scope = std::move(kept);
          break;
        }
      }
      break;
    }

    case OpKind::kMap: {
      const OpEstimate& in = kids[0];
      Scope merged = Merged(in.scope, outer);
      ExprEstimate ee = EstimateExpr(*op.expr, merged);
      out.rows = in.rows;
      out.cpu += in.rows * ee.cost;
      out.scope = in.scope;
      AttrProfile p = ee.profile;
      // A multi-item value is bound whole (an item sequence), not unnested.
      if (ee.fanout > 1 && p.seq_rows == 0) p.seq_rows = ee.fanout;
      if (op.expr->kind == ExprKind::kBindTuples) {
        auto it = bind_inner_.find(op.expr.get());
        if (it != bind_inner_.end()) {
          bound_inner_[op.attr] = {op.expr->attr, it->second};
        }
      }
      out.scope[op.attr] = p;
      break;
    }

    case OpKind::kUnnestMap: {
      const OpEstimate& in = kids[0];
      Scope merged = Merged(in.scope, outer);
      ExprEstimate ee = EstimateExpr(*op.expr, merged);
      out.rows = in.rows * ee.fanout;
      out.cpu += in.rows * ee.cost + out.rows * model_.tuple();
      out.scope = in.scope;
      AttrProfile p = ee.profile;
      p.seq_rows = 0;  // items bound one per output tuple
      out.scope[op.attr] = p;
      break;
    }

    case OpKind::kUnnest: {
      const OpEstimate& in = kids[0];
      Scope merged = Merged(in.scope, outer);
      const AttrProfile* g = Find(merged, op.attr);
      double fan = g != nullptr && g->seq_rows > 0 ? g->seq_rows : 5;
      out.rows = in.rows * (op.outer ? std::max(fan, 1.0) : fan);
      out.cpu += out.rows * model_.tuple();
      if (op.distinct) out.cpu += out.rows * model_.distinct();
      out.scope = in.scope;
      out.scope.erase(op.attr);
      auto it = bound_inner_.find(op.attr);
      if (it != bound_inner_.end()) {
        out.scope[it->second.first] = it->second.second;
      }
      break;
    }

    case OpKind::kCross:
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
    case OpKind::kGroupBinary: {
      const OpEstimate& l = kids[0];
      const OpEstimate& r = kids[1];
      charge_breaker(r.rows, r.scope);
      Scope merged = Merged(Merged(r.scope, l.scope), outer);

      // Key detection mirrors the executors (physical.h / spool.cpp).
      std::optional<nal::EquiPredicate> equi;
      if (op.kind == OpKind::kGroupBinary) {
        if (op.theta == nal::CmpOp::kEq) {
          equi.emplace();
          equi->left_attrs = op.left_attrs;
          equi->right_attrs = op.right_attrs;
        }
      } else if (op.pred != nullptr) {
        equi = nal::ExtractEquiPredicate(
            op.pred, nal::OutputAttrs(*op.child(0)).attrs,
            nal::OutputAttrs(*op.child(1)).attrs);
      }
      double d_l = 0, d_r = 0;
      if (equi.has_value()) {
        d_l = DistinctRows(equi->left_attrs, Merged(l.scope, outer), l.rows);
        d_r = DistinctRows(equi->right_attrs, Merged(r.scope, outer), r.rows);
        out.cpu += r.rows * model_.hash_build() +
                   l.rows * model_.hash_probe();
      } else if (op.kind != OpKind::kCross) {
        out.cpu += l.rows * r.rows * model_.predicate();
      } else {
        out.cpu += r.rows * model_.tuple();
      }
      double residual_sel =
          equi.has_value() && equi->residual != nullptr
              ? Selectivity(*equi->residual, merged)
              : 1.0;
      double d = std::max({d_l, d_r, 1.0});
      // Fraction of left rows with ≥1 equi match (uniform-domain model).
      double match_sel =
          equi.has_value()
              ? (d_l > 0 && d_r > 0 ? std::min(1.0, d_r / std::max(d_l, 1.0))
                                    : 0.5) *
                    residual_sel
              : (op.pred != nullptr ? Selectivity(*op.pred, merged) : 1.0);

      switch (op.kind) {
        case OpKind::kCross:
          out.rows = l.rows * r.rows;
          break;
        case OpKind::kJoin:
          out.rows = equi.has_value()
                         ? l.rows * r.rows / d * residual_sel
                         : l.rows * r.rows * match_sel;
          break;
        case OpKind::kSemiJoin:
          out.rows = l.rows * Clamp01(match_sel);
          break;
        case OpKind::kAntiJoin:
          out.rows = l.rows * Clamp01(1.0 - match_sel);
          break;
        case OpKind::kOuterJoin:
          out.rows = std::max(l.rows,
                              equi.has_value() ? l.rows * r.rows / d
                                               : l.rows * r.rows * match_sel);
          break;
        case OpKind::kGroupBinary:
          out.rows = l.rows;
          break;
        default:
          break;
      }
      out.cpu += out.rows * model_.tuple();

      // Output scope per operator shape.
      if (op.kind == OpKind::kSemiJoin || op.kind == OpKind::kAntiJoin) {
        out.scope = l.scope;
      } else if (op.kind == OpKind::kGroupBinary) {
        out.scope = l.scope;
        AttrProfile g;
        g.seq_rows = equi.has_value()
                         ? r.rows / std::max(d, 1.0)
                         : r.rows * kDefaultCmpSelectivity;
        if (op.agg.kind != nal::AggSpec::Kind::kId) g.seq_rows = 0;
        out.scope[op.attr] = g;
      } else {
        out.scope = l.scope;
        for (const auto& [a, p] : r.scope) out.scope[a] = p;
      }
      break;
    }

    case OpKind::kGroupUnary: {
      const OpEstimate& in = kids[0];
      charge_breaker(in.rows, in.scope);
      Scope merged = Merged(in.scope, outer);
      double groups = DistinctRows(op.left_attrs, merged, in.rows);
      out.rows = groups;
      out.cpu += in.rows * model_.group_build() + groups * model_.tuple();
      if (op.theta != nal::CmpOp::kEq) {
        out.cpu += groups * in.rows * model_.predicate();
      }
      for (Symbol a : op.left_attrs) {
        auto it = in.scope.find(a);
        AttrProfile p = it != in.scope.end() ? it->second : AttrProfile{};
        p.distinct = groups;
        out.scope[a] = p;
      }
      AttrProfile g;
      g.seq_rows = op.theta == nal::CmpOp::kEq
                       ? in.rows / std::max(groups, 1.0)
                       : in.rows * kDefaultCmpSelectivity;
      if (op.agg.kind != nal::AggSpec::Kind::kId &&
          op.agg.kind != nal::AggSpec::Kind::kProjectItems) {
        g.seq_rows = 0;
      }
      out.scope[op.attr] = g;
      break;
    }

    case OpKind::kSort: {
      const OpEstimate& in = kids[0];
      out.rows = in.rows;
      out.cpu += model_.SortCost(in.rows);
      charge_breaker(in.rows, in.scope);
      out.scope = in.scope;
      break;
    }

    case OpKind::kXiSimple:
    case OpKind::kXiGroup: {
      const OpEstimate& in = kids[0];
      out.rows = in.rows;
      out.scope = in.scope;
      Scope merged = Merged(in.scope, outer);
      double per_row = model_.render();
      for (const nal::XiProgram* program : {&op.s1, &op.s2, &op.s3}) {
        for (const nal::XiCommand& c : *program) {
          per_row += c.is_literal ? 0.05 : EstimateExpr(*c.expr, merged).cost;
        }
      }
      if (op.kind == OpKind::kXiGroup) {
        per_row += model_.predicate();  // group-change detection
      }
      out.cpu += in.rows * per_row;
      break;
    }
  }

  if (op.cse_id >= 0) cse_cache_[op.cse_id] = out;
  if (recorder_ != nullptr) (*recorder_)[&op] = out;
  return out;
}

PlanEstimate CardinalityEstimator::EstimatePlan(const AlgebraOp& root) {
  cse_cache_.clear();
  bind_inner_.clear();
  bound_inner_.clear();
  OpEstimate est = EstimateOp(root, Scope());
  PlanEstimate out;
  out.rows = est.rows;
  out.cpu_cost = est.cpu;
  out.io_cost = est.io;
  out.peak_breaker_bytes = est.peak_breaker_bytes;
  return out;
}

}  // namespace nalq::opt
