#include "opt/parallel.h"

#include <algorithm>
#include <vector>

#include "nal/analysis.h"
#include "nal/physical.h"

namespace nalq::opt {

namespace {

using nal::AlgebraOp;
using nal::OpKind;
using nal::PartitionPoint;

bool IsJoinFamily(OpKind k) {
  return k == OpKind::kCross || k == OpKind::kJoin ||
         k == OpKind::kSemiJoin || k == OpKind::kAntiJoin ||
         k == OpKind::kOuterJoin || k == OpKind::kGroupBinary;
}

/// Build-side rows for every breaker that can grace-partition at run time
/// (nal/spool.h): the right operand of the join family, the input of unary
/// Γ. Keyed by the breaker node itself — the key the spill cursors pass to
/// SpoolContext::RowHint.
void CollectBreakerRows(const AlgebraOp& op,
                        const std::map<const AlgebraOp*, OpEstimate>& rec,
                        std::map<const AlgebraOp*, double>* out) {
  const AlgebraOp* side = nullptr;
  if (IsJoinFamily(op.kind) && op.children.size() >= 2) {
    side = op.child(1).get();
  } else if (op.kind == OpKind::kGroupUnary && !op.children.empty()) {
    side = op.child(0).get();
  }
  if (side != nullptr) {
    auto it = rec.find(side);
    if (it != rec.end() && it->second.rows > 0) {
      (*out)[&op] = it->second.rows;
    }
  }
  for (const nal::AlgebraPtr& c : op.children) {
    CollectBreakerRows(*c, rec, out);
  }
}

double RowsOf(const std::map<const AlgebraOp*, OpEstimate>& rec,
              const AlgebraOp* op) {
  auto it = rec.find(op);
  return it == rec.end() ? 0.0 : it->second.rows;
}

double CpuOf(const std::map<const AlgebraOp*, OpEstimate>& rec,
             const AlgebraOp* op) {
  auto it = rec.find(op);
  return it == rec.end() ? 0.0 : it->second.cpu;
}

/// CPU the consumer thread keeps even inside the parallel section: the
/// build sides of the segment's probe breakers (subtree + the build's own
/// hashing/materialization) and the Γ merge-and-emit tail.
double SerialWithinSection(const PartitionPoint& point,
                           const std::map<const AlgebraOp*, OpEstimate>& rec,
                           const CostConstants& k) {
  double serial = 0;
  for (const AlgebraOp* seg : point.segment) {
    if (!IsJoinFamily(seg->kind) || seg->children.size() < 2) continue;
    const AlgebraOp* build = seg->child(1).get();
    serial += CpuOf(rec, build);
    double build_rows = RowsOf(rec, build);
    if (seg->kind == OpKind::kCross) {
      serial += build_rows * k.tuple;
    } else if (seg->kind == OpKind::kGroupBinary) {
      serial += build_rows * k.hash_build;
    } else if (seg->pred != nullptr) {
      auto equi = nal::ExtractEquiPredicate(
          seg->pred, nal::OutputAttrs(*seg->child(0)).attrs,
          nal::OutputAttrs(*seg->child(1)).attrs);
      if (equi.has_value()) serial += build_rows * k.hash_build;
    }
  }
  if (point.gamma != nullptr) {
    // The merge re-emits one tuple per group on the consumer.
    serial += RowsOf(rec, point.gamma) * k.tuple;
  }
  return serial;
}

}  // namespace

ParallelPlacement ChooseParallelPlacement(const xml::Store& store,
                                          const nal::AlgebraOp& root,
                                          unsigned max_threads,
                                          uint64_t memory_budget_bytes) {
  CostModel model(memory_budget_bytes);
  CardinalityEstimator estimator(store, model);
  std::map<const AlgebraOp*, OpEstimate> rec;
  estimator.set_node_recorder(&rec);
  PlanEstimate total = estimator.EstimatePlan(root);

  ParallelPlacement out;
  out.est_serial_cost = total.total_cost();
  out.est_parallel_cost = out.est_serial_cost;
  CollectBreakerRows(root, rec, &out.breaker_build_rows);

  unsigned max_dop =
      nal::ResolveParallelThreads(max_threads, memory_budget_bytes);
  if (max_dop <= 1) return out;  // serial by construction

  // Candidate cuts mirror the exchange's own budget gating: the extended
  // breakers (shared builds, routed Γ partitions) buffer in RAM, so finite
  // budgets price only the legacy per-tuple cut.
  std::vector<PartitionPoint> candidates;
  if (memory_budget_bytes == 0) {
    candidates = nal::EnumeratePartitionPoints(root);
  } else {
    std::optional<PartitionPoint> legacy = nal::FindPartitionPoint(root);
    if (legacy.has_value()) candidates.push_back(*legacy);
  }

  const CostConstants& k = model.constants();
  for (const PartitionPoint& cand : candidates) {
    const AlgebraOp* inj = cand.injection();
    if (inj == nullptr || cand.source == nullptr) continue;
    double section = CpuOf(rec, inj) - CpuOf(rec, cand.source);
    double parallel_cpu =
        std::max(section - SerialWithinSection(cand, rec, k), 0.0);
    double serial_cpu = total.cpu_cost - parallel_cpu;
    double exchange = RowsOf(rec, cand.source) * k.exchange_tuple;
    for (unsigned dop = 2; dop <= max_dop; ++dop) {
      double cost = serial_cpu + parallel_cpu / dop + exchange +
                    dop * k.worker_setup + total.io_cost;
      if (cost < out.est_parallel_cost) {
        out.est_parallel_cost = cost;
        out.point = cand;
        out.dop = dop;
      }
    }
  }
  return out;
}

}  // namespace nalq::opt
