// Cost-based choice among the unnesting alternatives of one query.
//
// The paper's Sec. 4 policy — "whenever there are alternative applications,
// the most efficient plan should be chosen" — is realized here: every
// alternative the rewriter produced is estimated bottom-up
// (opt/cardinality.h) under the active memory budget (opt/cost.h) and the
// cheapest one wins. Estimates that tie within a small relative margin fall
// back to the rule-priority ranking (rewrite/unnester.h), which encodes the
// paper's "most restrictive equivalence" heuristic — so on an empty store,
// where every estimate is built from defaults, the chooser degrades to
// exactly the old static behavior.
#ifndef NALQ_OPT_CHOOSER_H_
#define NALQ_OPT_CHOOSER_H_

#include <cstddef>
#include <vector>

#include "opt/cardinality.h"
#include "rewrite/equivalences.h"

namespace nalq::opt {

struct ChooseOptions {
  /// Mirrors Engine::Run's memory_budget_bytes: plans whose breakers exceed
  /// it are charged spill I/O, so a tight budget can flip the choice toward
  /// a plan with smaller build sides. 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
};

struct Choice {
  /// Index of the winning alternative (into the vector passed to Choose).
  size_t index = 0;
  /// One estimate per alternative, same order.
  std::vector<PlanEstimate> estimates;
};

/// Estimates every alternative against `store`'s statistics and returns the
/// cheapest (ties broken by rule priority, then by input order). The
/// alternatives vector must be non-empty.
Choice ChoosePlan(const xml::Store& store,
                  const std::vector<rewrite::Alternative>& alternatives,
                  const ChooseOptions& options = {});

}  // namespace nalq::opt

#endif  // NALQ_OPT_CHOOSER_H_
