// Cost-driven parallel placement: where to cut a plan for the exchange,
// and at what degree of parallelism.
//
// The exchange layer (nal/exchange.h) can cut a plan at several points —
// the legacy per-tuple segment, the probe-extended segment whose join
// breakers share one consumer-built hash table, and their Γ-pre-aggregation
// variants. Before this chooser the executor always took the deepest
// eligible cut; here every candidate is priced with the cardinality
// estimates (opt/cardinality.h) and the calibrated cost constants
// (opt/cost_constants.h):
//
//   cost(point, dop) = serial_cpu + parallel_cpu / dop
//                    + source_rows × exchange_tuple
//                    + dop × worker_setup + spill_io
//
// where parallel_cpu is the work between the source and the injection node
// that workers actually share (probe loops, per-tuple operators, Γ
// bucketing), and serial_cpu is everything else — the source subtree, the
// consumer-built build sides, the Γ merge, and the plan above the exchange.
// The cheapest (point, dop) wins; if no parallel placement beats the serial
// cost (small inputs cannot amortize worker_setup), the placement is
// "resolved serial" and the run streams on one thread.
//
// The same estimation walk yields per-breaker build-side row estimates,
// handed to the spool layer (SpoolContext::set_row_hints) so grace
// partition counts are sized from expected build volume instead of the
// static budget/32KB rule.
#ifndef NALQ_OPT_PARALLEL_H_
#define NALQ_OPT_PARALLEL_H_

#include <cstdint>
#include <map>
#include <optional>

#include "nal/exchange.h"
#include "opt/cardinality.h"

namespace nalq::opt {

/// The chooser's output. `point` holds borrowed pointers into the plan the
/// chooser saw — the plan must stay alive through the run. An empty `point`
/// means "serial streaming beats every parallel placement"; pass it with
/// ParallelOptions::point_resolved = true so the exchange does not rescan.
struct ParallelPlacement {
  std::optional<nal::PartitionPoint> point;
  unsigned dop = 1;
  double est_serial_cost = 0;    ///< whole-plan serial cost (comparison base)
  double est_parallel_cost = 0;  ///< cost of the chosen placement at `dop`
  /// Estimated build/input rows per breaker node, for
  /// SpoolContext::set_row_hints (grace-partition admission).
  std::map<const nal::AlgebraOp*, double> breaker_build_rows;
};

/// Prices every candidate partition point of `root` under
/// `memory_budget_bytes` (0 = unlimited; finite budgets restrict candidates
/// to the legacy per-tuple cut, matching the exchange's own gating) and a
/// dop grid up to ResolveParallelThreads(max_threads, budget). Never
/// throws on odd plans — no candidates simply yields a serial placement.
ParallelPlacement ChooseParallelPlacement(const xml::Store& store,
                                          const nal::AlgebraOp& root,
                                          unsigned max_threads,
                                          uint64_t memory_budget_bytes);

}  // namespace nalq::opt

#endif  // NALQ_OPT_PARALLEL_H_
