// Structured error taxonomy for the query lifecycle.
//
// Every failure an executor can surface — user cancellation, a deadline
// expiring, spool-file I/O, budget exhaustion, a plan the physical layer
// cannot run — is thrown as one engine::Error carrying a machine-readable
// code plus the context a service layer needs to log or retry sensibly:
// the saved errno, the temp-file path (for I/O faults) and the operator /
// call-site that raised it. The what() string folds all of it into one
// line, so callers that only know std::exception still get the full story.
//
// This header is deliberately dependency-free (standard library only): the
// nal layer throws engine::Error without the engine façade leaking back
// into it.
#ifndef NALQ_ENGINE_ERROR_H_
#define NALQ_ENGINE_ERROR_H_

#include <stdexcept>
#include <string>

namespace nalq::engine {

/// What failed, coarsely — the dispatch key for a caller's retry/abort
/// policy (src/nal/README.md, "Query lifecycle & failure semantics").
enum class ErrorCode {
  kCancelled,          ///< QueryControl::RequestCancel observed
  kDeadlineExceeded,   ///< the run outlived its monotonic deadline
  kSpoolIo,            ///< spool temp-file open/read/write/close/decode failed
  kBudgetExhausted,    ///< a resource limit (spool frame, worker thread) hit
  kPlanError,          ///< the physical layer cannot execute this plan shape
  kAdmissionRejected,  ///< the query service shed the submission (queue full
                       ///< or queue deadline) before it ever ran
  kStoreIo,            ///< persistent-store file open/read/write/rename failed
  kStoreCorrupt,       ///< persistent-store page/manifest failed validation
                       ///< (checksum, truncation, structural replay mismatch)
  kStoreVersionMismatch,  ///< persisted format version this build can't read
};

/// Stable identifier string ("kCancelled", ...) for logs and tests.
const char* ErrorCodeName(ErrorCode code);

class Error : public std::runtime_error {
 public:
  /// `sys_errno` 0 means no OS error; `path` names the spool file for I/O
  /// faults; `context` is the raising site ("spool.write", "Sort", ...).
  Error(ErrorCode code, std::string message, int sys_errno = 0,
        std::string path = {}, std::string context = {});

  ErrorCode code() const noexcept { return code_; }
  int sys_errno() const noexcept { return sys_errno_; }
  const std::string& message() const noexcept { return message_; }
  const std::string& path() const noexcept { return path_; }
  const std::string& context() const noexcept { return context_; }
  const std::string& op() const noexcept { return op_; }

  const char* what() const noexcept override { return what_.c_str(); }

  /// Annotates a propagating error with the operator that was running when
  /// it surfaced ("Sort", "Join", ...) — the spill cursors call this while
  /// rethrowing, so a low-level "spool.write" fault also reports which
  /// breaker it broke. First annotation wins (the innermost operator).
  void set_op_if_empty(const std::string& op);

  /// Like set_op_if_empty for the raising-site context ("spool.write").
  void set_context_if_empty(const std::string& context);

 private:
  void RebuildWhat();

  ErrorCode code_;
  std::string message_;
  int sys_errno_;
  std::string path_;
  std::string context_;
  std::string op_;
  std::string what_;
};

}  // namespace nalq::engine

#endif  // NALQ_ENGINE_ERROR_H_
