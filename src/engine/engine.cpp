#include "engine/engine.h"

#include <filesystem>
#include <map>
#include <optional>

#include "nal/cursor.h"
#include "nal/env_knobs.h"
#include "nal/exchange.h"
#include "nal/spool.h"
#include "storage/persistent_store.h"
#include "opt/cardinality.h"
#include "opt/chooser.h"
#include "opt/parallel.h"
#include "xml/parser.h"
#include "xquery/normalize.h"
#include "xquery/parser.h"
#include "xquery/translate.h"

namespace nalq::engine {

const rewrite::Alternative* CompiledQuery::Find(
    std::string_view rule_substring) const {
  for (const rewrite::Alternative& alt : alternatives) {
    if (alt.rule.find(rule_substring) != std::string::npos) return &alt;
  }
  return nullptr;
}

void Engine::AddDocument(const std::string& name, std::string_view xml_text) {
  xml::Document doc = xml::ParseDocument(name, xml_text);
  if (!doc.dtd_text().empty()) {
    dtds_.Register(name, xml::Dtd::Parse(doc.dtd_text()));
  }
  store_.AddDocument(std::move(doc));
}

void Engine::RegisterDtd(const std::string& name, std::string_view dtd_text) {
  dtds_.Register(name, xml::Dtd::Parse(dtd_text));
  // A persisted store carries each document's DTD as internal-subset text
  // (storage::ManifestDoc::dtd) — an out-of-band registration must land on
  // the stored document too, or Persist would silently drop it and a warm
  // attach would translate without it.
  if (std::optional<xml::DocId> id = store_.Find(name)) {
    store_.document(*id).set_dtd_text(std::string(dtd_text));
  }
  // DTDs feed translation (attribute typing), so compiled plans keyed on
  // the store version (the service's plan cache) must go stale too.
  store_.BumpVersion();
}

void Engine::AttachStore(const std::string& dir) {
  storage::PersistentStore::Options opts;
  opts.cache_limit_bytes = nal::EnvKnobU64("NALQ_STORE_CACHE_BYTES");
  std::unique_ptr<storage::PersistentStore> source =
      storage::PersistentStore::Open(dir, opts);
  // Register persisted DTDs before attaching: translation needs them and
  // must not fault whole documents in just to find their internal subsets.
  for (size_t i = 0; i < source->document_count(); ++i) {
    const std::string& dtd = source->document_dtd(i);
    if (!dtd.empty()) {
      dtds_.Register(source->document_name(i), xml::Dtd::Parse(dtd));
    }
  }
  store_.AttachSource(std::move(source));  // bumps the store version
}

void Engine::PersistStore(const std::string& dir) const {
  storage::Persist(store_, dir);
}

std::string Engine::EnvStoreDir() {
  return nal::EnvKnobString("NALQ_STORE_DIR");
}

CompiledQuery Engine::Compile(std::string_view query_text, PlanChoice choice,
                              uint64_t memory_budget_bytes) const {
  CompiledQuery out;
  out.choice = choice;
  out.ast = xquery::ParseQuery(query_text);
  out.normalized = xquery::Normalize(out.ast);
  out.nested_plan = xquery::Translate(out.normalized, &dtds_);
  rewrite::Unnester unnester(&dtds_);
  out.alternatives = unnester.AllAlternatives(out.nested_plan);
  opt::ChooseOptions copts;
  copts.memory_budget_bytes = memory_budget_bytes;
  opt::Choice chosen;
  {
    // Estimation reads (and lazily builds) the store's index and
    // statistics, so Compile participates in the single-writer contract
    // exactly like an evaluation: loading documents concurrently with a
    // compile is a misuse the lease makes detectable (xml/store.h).
    xml::StoreReadLease lease(store_);
    chosen = opt::ChoosePlan(store_, out.alternatives, copts);
  }
  out.estimates = std::move(chosen.estimates);
  out.cost_choice = chosen.index;
  switch (choice) {
    case PlanChoice::kCost:
      out.best = out.alternatives[out.cost_choice];
      break;
    case PlanChoice::kRulePriority:
      out.best = unnester.Best(out.nested_plan);
      break;
    case PlanChoice::kManual:
      out.best = out.alternatives.front();
      break;
  }
  return out;
}

RunResult Engine::Run(const nal::AlgebraPtr& plan, ExecMode mode,
                      PathMode path_mode, unsigned threads,
                      uint64_t memory_budget_bytes, uint64_t deadline_ms,
                      nal::QueryControl* control,
                      const RunInstrumentation* instr) const {
  nal::Evaluator evaluator(store_);
  evaluator.set_path_mode(path_mode == PathMode::kIndexed
                              ? xml::PathEvalMode::kIndexed
                              : xml::PathEvalMode::kScan);
  // Observability wiring (src/obs/): an explicit instrumentation request
  // wins; the environment knobs fill in what the caller left off, so
  // NALQ_PROFILE=1 / NALQ_TRACE_DIR work on any existing call site. Both
  // paths are validated before the run starts — a malformed knob is a
  // kPlanError, never a silently un-profiled run.
  const bool profiling = (instr != nullptr && instr->profile) ||
                         nal::EnvKnobBool("NALQ_PROFILE");
  obs::TraceLog* trace = instr != nullptr ? instr->trace : nullptr;
  std::optional<obs::TraceLog> own_trace;
  std::string trace_dir;
  if (trace == nullptr) {
    trace_dir = nal::EnvKnobString("NALQ_TRACE_DIR");
    if (!trace_dir.empty()) {
      if (!std::filesystem::is_directory(trace_dir)) {
        throw Error(ErrorCode::kPlanError,
                    "malformed environment knob NALQ_TRACE_DIR=\"" +
                        trace_dir + "\" (not a usable directory)",
                    0, trace_dir, "engine");
      }
      own_trace.emplace();
      trace = &*own_trace;
    }
  }
  evaluator.set_trace(trace);
  std::optional<obs::ProfileCollector> collector;
  std::map<const nal::AlgebraOp*, opt::OpEstimate> node_estimates;
  if (profiling) {
    collector.emplace(*plan);
    evaluator.set_profile(&*collector);
    // Per-node optimizer row estimates from the same estimator the plan
    // chooser ran — rows are budget-independent, so the root estimate
    // equals the chosen alternative's PlanEstimate::rows. The walk is
    // plan-sized (cheap) and reads store statistics, hence the lease.
    xml::StoreReadLease lease(store_);
    opt::CostModel model(memory_budget_bytes);
    opt::CardinalityEstimator estimator(store_, model);
    estimator.set_node_recorder(&node_estimates);
    estimator.EstimatePlan(*plan);
  }
  // Lifecycle wiring: an explicit deadline wins, the NALQ_DEADLINE_MS
  // environment default applies otherwise (mirroring the budget knob) — but
  // never to a caller token that already carries a deadline: the query
  // service arms its tokens at submission so one deadline spans queue wait
  // plus run, and re-arming here would silently refund the queue time. A
  // deadline without a caller token gets a run-local one; the token is
  // shared by pointer with every executor thread (see nal/query_control.h).
  nal::QueryControl local_control;
  uint64_t effective_deadline = deadline_ms;
  if (effective_deadline == 0 &&
      (control == nullptr || !control->has_deadline())) {
    effective_deadline = nal::QueryControl::EnvDeadlineMs();
  }
  if (control == nullptr && effective_deadline != 0) {
    control = &local_control;
  }
  if (control != nullptr && effective_deadline != 0) {
    control->SetDeadlineMs(effective_deadline);
  }
  evaluator.set_control(control);
  RunResult result;
  {
    obs::TraceLog::Span execute_span(trace, "execute");
    switch (mode) {
    case ExecMode::kStreaming: {
      if (memory_budget_bytes != 0) {
        nal::SpoolContext spool(memory_budget_bytes);
        // Grace-admission row hints (opt/parallel.h): the estimation walk
        // is cheap (plan-sized), and sizing partition counts from expected
        // build volume instead of the static budget/32KB rule needs it.
        // max_threads=1 skips the placement search; only the hints matter.
        xml::StoreReadLease lease(store_);
        opt::ParallelPlacement hints = opt::ChooseParallelPlacement(
            store_, *plan, /*max_threads=*/1, memory_budget_bytes);
        spool.set_row_hints(&hints.breaker_build_rows);
        result.root_tuples =
            nal::DrainStreaming(evaluator, *plan, &result.exec, &spool);
      } else {
        // env default budget may apply inside
        result.root_tuples =
            nal::DrainStreaming(evaluator, *plan, &result.exec);
      }
      break;
    }
    case ExecMode::kParallel: {
      nal::ParallelOptions options;
      options.threads = threads;
      options.memory_budget_bytes = memory_budget_bytes;
      // Cost-driven placement (opt/parallel.h): pick the partition point
      // and dop by price instead of the hard-coded deepest-segment rule.
      // The chooser sees the budget the executors will run under; its
      // placement points into `plan`, which outlives the run.
      uint64_t effective_budget = memory_budget_bytes != 0
                                      ? memory_budget_bytes
                                      : nal::SpoolContext::EnvBudgetBytes();
      xml::StoreReadLease lease(store_);
      opt::ParallelPlacement place = opt::ChooseParallelPlacement(
          store_, *plan, threads, effective_budget);
      options.point = place.point;
      options.point_resolved = true;
      if (place.point.has_value()) options.threads = place.dop;
      options.breaker_row_hints = &place.breaker_build_rows;
      result.root_tuples =
          nal::DrainParallel(evaluator, *plan, options, &result.exec);
      break;
    }
    case ExecMode::kMaterializing:
      result.root_tuples = evaluator.Eval(*plan).size();
      break;
    }
  }
  result.output = evaluator.output();
  result.stats = evaluator.stats();
  if (profiling) {
    std::map<const nal::AlgebraOp*, double> est_rows;
    for (const auto& [op, e] : node_estimates) est_rows[op] = e.rows;
    result.profile = obs::BuildQueryProfile(*plan, *collector, &est_rows);
  }
  if (own_trace.has_value()) {
    // Engine-owned trace: write it out here (the directory was validated
    // above; a write failure is reported as an empty path by WriteFile and
    // deliberately does not fail the query).
    own_trace->WriteFile(trace_dir, "nalq-trace");
  }
  return result;
}

RunResult Engine::RunQuery(std::string_view query_text, ExecMode mode,
                           PathMode path_mode, unsigned threads,
                           uint64_t memory_budget_bytes, PlanChoice choice,
                           uint64_t deadline_ms, nal::QueryControl* control,
                           const RunInstrumentation* instr) const {
  // Resolve the budget the executors will actually run under so the plan
  // choice sees it too (a build side that spills at run time should be
  // charged for it at choice time).
  uint64_t effective_budget = memory_budget_bytes != 0
                                  ? memory_budget_bytes
                                  : nal::SpoolContext::EnvBudgetBytes();
  CompiledQuery q = Compile(query_text, choice, effective_budget);
  return Run(q.best.plan, mode, path_mode, threads, memory_budget_bytes,
             deadline_ms, control, instr);
}

}  // namespace nalq::engine
