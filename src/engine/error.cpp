#include "engine/error.h"

#include <cstring>

namespace nalq::engine {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kCancelled:
      return "kCancelled";
    case ErrorCode::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case ErrorCode::kSpoolIo:
      return "kSpoolIo";
    case ErrorCode::kBudgetExhausted:
      return "kBudgetExhausted";
    case ErrorCode::kPlanError:
      return "kPlanError";
    case ErrorCode::kAdmissionRejected:
      return "kAdmissionRejected";
    case ErrorCode::kStoreIo:
      return "kStoreIo";
    case ErrorCode::kStoreCorrupt:
      return "kStoreCorrupt";
    case ErrorCode::kStoreVersionMismatch:
      return "kStoreVersionMismatch";
  }
  return "kUnknown";
}

Error::Error(ErrorCode code, std::string message, int sys_errno,
             std::string path, std::string context)
    : std::runtime_error(message),
      code_(code),
      message_(std::move(message)),
      sys_errno_(sys_errno),
      path_(std::move(path)),
      context_(std::move(context)) {
  RebuildWhat();
}

void Error::set_context_if_empty(const std::string& context) {
  if (!context_.empty()) return;
  context_ = context;
  RebuildWhat();
}

void Error::set_op_if_empty(const std::string& op) {
  if (!op_.empty()) return;
  op_ = op;
  RebuildWhat();
}

void Error::RebuildWhat() {
  what_ = "[";
  what_ += ErrorCodeName(code_);
  what_ += "] ";
  what_ += message_;
  if (sys_errno_ != 0) {
    what_ += ": ";
    what_ += std::strerror(sys_errno_);
    what_ += " (errno ";
    what_ += std::to_string(sys_errno_);
    what_ += ")";
  }
  if (!path_.empty()) {
    what_ += " [path=";
    what_ += path_;
    what_ += "]";
  }
  if (!context_.empty()) {
    what_ += " [in ";
    what_ += context_;
    what_ += "]";
  }
  if (!op_.empty()) {
    what_ += " [op=";
    what_ += op_;
    what_ += "]";
  }
}

}  // namespace nalq::engine
