// Engine façade: document store + DTD registry + the full pipeline
// parse → normalize → translate → unnest → evaluate.
#ifndef NALQ_ENGINE_ENGINE_H_
#define NALQ_ENGINE_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "engine/error.h"
#include "nal/cursor.h"
#include "nal/eval.h"
#include "nal/query_control.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "opt/cost.h"
#include "rewrite/unnester.h"
#include "xml/dtd.h"
#include "xml/store.h"
#include "xquery/ast.h"

namespace nalq::engine {

/// How Compile picks CompiledQuery::best among the unnesting alternatives.
enum class PlanChoice {
  /// Cost-based: every alternative is estimated against the store's
  /// document statistics (opt/chooser.h) under the active memory budget and
  /// the cheapest wins; ties fall back to the rule-priority ranking. The
  /// default — the paper's "the most efficient plan should be chosen".
  kCost,
  /// The pre-optimizer static policy: the most restrictive applicable
  /// equivalence by rule name (rewrite::RulePriority), iterated over all
  /// nested blocks. Kept as the differential reference and for stores
  /// without representative statistics.
  kRulePriority,
  /// No choice: best = the original nested plan; callers pick from
  /// `alternatives` themselves (benchmarks, plan exploration).
  kManual,
};

/// Compilation artifact: every stage's output plus all plan alternatives.
struct CompiledQuery {
  xquery::AstPtr ast;
  xquery::AstPtr normalized;
  nal::AlgebraPtr nested_plan;
  /// All alternatives — the closure over every rewrite site
  /// (Unnester::AllAlternatives), [0] = {"nested", nested_plan}.
  std::vector<rewrite::Alternative> alternatives;
  /// The plan Run/RunQuery would execute, per the requested PlanChoice.
  rewrite::Alternative best;

  /// Optimizer estimate per alternative (same order as `alternatives`),
  /// computed against the store statistics and the budget Compile saw.
  std::vector<opt::PlanEstimate> estimates;
  /// Index into `alternatives` of the cost-based winner (even when `best`
  /// was selected by another policy — benchmarks compare the two).
  size_t cost_choice = 0;
  /// The policy that selected `best`.
  PlanChoice choice = PlanChoice::kCost;

  /// Alternative whose rule name contains `rule_substring`, or nullptr.
  const rewrite::Alternative* Find(std::string_view rule_substring) const;
};

/// Opt-in observability for one run (src/obs/). Both members default to
/// "off"; the NALQ_PROFILE / NALQ_TRACE_DIR environment knobs provide the
/// same switches without touching call sites (Run ORs them in).
struct RunInstrumentation {
  /// Collect a per-operator QueryProfile (RunResult::profile). Never
  /// changes the run's output or EvalStats.
  bool profile = false;
  /// Caller-owned span sink for lifecycle tracing, or null. When null but
  /// NALQ_TRACE_DIR names a directory, Run uses a run-local log and writes
  /// it there itself; a caller-provided log is never written by Run (the
  /// caller — e.g. the query service, which owns spans for the whole
  /// submit→merge lifecycle — decides where it goes).
  obs::TraceLog* trace = nullptr;
};

/// One query execution's outcome.
struct RunResult {
  std::string output;
  nal::EvalStats stats;
  /// Executor-private streaming bookkeeping (nal/cursor.h): breaker
  /// buffering plus the parallel-breaker counters (shared-probe builds, Γ
  /// partitions, widest exchange dop). Unlike `stats`, NOT part of the
  /// byte-identical cross-executor contract; all zero under kMaterializing.
  nal::StreamStats exec;
  /// Root tuples the run produced — the "actual rows" the benchmark
  /// harness compares against the optimizer's row estimate.
  uint64_t root_tuples = 0;
  /// Per-operator profile (enabled == false unless the run asked for one
  /// via RunInstrumentation::profile or NALQ_PROFILE=1). Per-operator
  /// `rows` partition stats.tuples_produced and are identical across
  /// executors and thread counts; est_rows carries the optimizer's
  /// node-level row estimates for drift analysis
  /// (tools/compare_estimates.py).
  obs::QueryProfile profile;
};

/// Which executor evaluates a plan. All three produce byte-identical output
/// and identical EvalStats (asserted by tests/streaming_exec_test.cpp and
/// tests/exchange_exec_test.cpp); the streaming executor pipelines tuples
/// and only materializes at true pipeline breakers (see src/nal/cursor.h),
/// and the parallel executor additionally runs the plan's per-tuple operator
/// segment across worker threads via an order-preserving exchange
/// (src/nal/exchange.h), falling back to serial streaming on plans without
/// a partitionable segment.
enum class ExecMode {
  kStreaming,      ///< Volcano-style pull executor (default)
  kMaterializing,  ///< operator-at-a-time Evaluator::Eval
  kParallel,       ///< exchange-parallel streaming (threads knob on Run)
};

/// Which XPath evaluation strategy the evaluators use, mirroring ExecMode.
/// Both produce identical results on every path and plan (asserted by
/// tests/xpath_index_test.cpp); indexed resolves path steps against the
/// per-document structural index (xml/index.h) instead of walking subtrees,
/// so only the XPathStats counters differ.
enum class PathMode {
  kIndexed,  ///< occurrence-list range scans (default)
  kScan,     ///< chain-walk of the subtree per step
};

class Engine {
 public:
  Engine() = default;

  xml::Store& store() { return store_; }
  const xml::Store& store() const { return store_; }
  const xml::DtdRegistry& dtds() const { return dtds_; }

  /// Parses and stores a document. If the text carries a DOCTYPE internal
  /// subset, its DTD is registered automatically.
  void AddDocument(const std::string& name, std::string_view xml_text);

  /// Registers (or overrides) the DTD for `name`.
  void RegisterDtd(const std::string& name, std::string_view dtd_text);

  /// Warm-attach: opens the persisted store at `dir`
  /// (storage::PersistentStore) and attaches it to this engine's store as
  /// a lazy document source — documents page in on first access instead of
  /// being re-parsed from text, and persisted DTDs are registered up front
  /// so translation works before any document is resident. The residency
  /// cache limit comes from NALQ_STORE_CACHE_BYTES (0/unset = keep
  /// everything resident once faulted). Throws engine::Error with a
  /// structured store code (kStoreIo / kStoreCorrupt /
  /// kStoreVersionMismatch) on a missing, corrupt or foreign-version
  /// store.
  void AttachStore(const std::string& dir);

  /// Serializes the store's documents, indexes and statistics into `dir`
  /// with an atomic manifest commit (storage::Persist): a crash or I/O
  /// failure mid-persist leaves the directory's previous contents
  /// openable.
  void PersistStore(const std::string& dir) const;

  /// The NALQ_STORE_DIR environment knob (validated via nal/env_knobs.h),
  /// or empty when unset — the directory the query service warm-attaches
  /// at construction.
  static std::string EnvStoreDir();

  /// Full compilation pipeline. Throws on parse/translate errors.
  ///
  /// Estimation reads the store's index and statistics, so Compile counts
  /// as a reader under the single-writer contract (xml/store.h): do not
  /// load or mutate documents concurrently with a compile.
  ///
  /// `choice` selects how CompiledQuery::best is picked (see PlanChoice);
  /// `memory_budget_bytes` feeds the cost model so plan choice is
  /// budget-aware — a plan whose hash build side would spill under the
  /// budget is charged that I/O (0 = unlimited; the NALQ_MEMORY_BUDGET_BYTES
  /// environment default is applied by RunQuery, not here). Estimates for
  /// every alternative are recorded regardless of the policy.
  CompiledQuery Compile(std::string_view query_text,
                        PlanChoice choice = PlanChoice::kCost,
                        uint64_t memory_budget_bytes = 0) const;

  /// Evaluates a plan, returning the constructed result and statistics.
  /// `threads` is the degree of parallelism under ExecMode::kParallel
  /// (0 = one worker per hardware core) and ignored by the serial modes;
  /// output and stats are independent of the worker count.
  ///
  /// `memory_budget_bytes` bounds what the executor's pipeline breakers
  /// keep resident (nal/spool.h): hash build sides grace-partition to temp
  /// files and Sort/Γ fall back to external merge sort once the budget is
  /// exhausted, with byte-identical output and identical non-spill stats at
  /// any budget (EvalStats::spill reports the spilling itself). 0 means
  /// unlimited unless the NALQ_MEMORY_BUDGET_BYTES environment variable
  /// supplies a default. The budget applies to the streaming and parallel
  /// executors; the materializing evaluator (a differential reference)
  /// ignores it, as do the RAM-resident exceptions documented in
  /// src/nal/README.md (CSE caches, XiGroup group construction, and ΠD's
  /// distinct-key set). Under kParallel one shared accountant bounds the
  /// consumer and all workers, and the worker count is clamped so
  /// uncharged per-worker state cannot over-commit it (nal/exchange.h).
  ///
  /// Lifecycle knobs (src/nal/README.md, "Query lifecycle & failure
  /// semantics"): `deadline_ms` bounds the run on the monotonic clock — on
  /// expiry the run unwinds with engine::Error(kDeadlineExceeded), all temp
  /// files deleted and every budget byte released. 0 means no deadline
  /// unless the NALQ_DEADLINE_MS environment variable supplies a default.
  /// `control` shares a caller-owned cancellation token with the run
  /// (RequestCancel from any thread aborts it with kCancelled); when null
  /// but a deadline is active, Run wires an internal token. The token must
  /// outlive the call; a deadline_ms is armed on whichever token is used.
  ///
  /// `instr` opts into per-operator profiling and lifecycle tracing (see
  /// RunInstrumentation); the NALQ_PROFILE / NALQ_TRACE_DIR environment
  /// knobs apply when it is null or leaves a switch off. Neither ever
  /// changes the run's output bytes or EvalStats.
  RunResult Run(const nal::AlgebraPtr& plan,
                ExecMode mode = ExecMode::kStreaming,
                PathMode path_mode = PathMode::kIndexed,
                unsigned threads = 0,
                uint64_t memory_budget_bytes = 0,
                uint64_t deadline_ms = 0,
                nal::QueryControl* control = nullptr,
                const RunInstrumentation* instr = nullptr) const;

  /// Convenience: compile with unnesting and run the best plan. Plan choice
  /// is cost-based (see PlanChoice::kCost) and budget-aware: the effective
  /// budget — the argument, or the NALQ_MEMORY_BUDGET_BYTES environment
  /// default when 0 — feeds the cost model before it gates the executor.
  /// `deadline_ms`/`control` govern the execution phase exactly as on Run
  /// (compilation is not deadline-bounded; it does no I/O and is orders of
  /// magnitude shorter than any run worth cancelling).
  RunResult RunQuery(std::string_view query_text,
                     ExecMode mode = ExecMode::kStreaming,
                     PathMode path_mode = PathMode::kIndexed,
                     unsigned threads = 0,
                     uint64_t memory_budget_bytes = 0,
                     PlanChoice choice = PlanChoice::kCost,
                     uint64_t deadline_ms = 0,
                     nal::QueryControl* control = nullptr,
                     const RunInstrumentation* instr = nullptr) const;

 private:
  xml::Store store_;
  xml::DtdRegistry dtds_;
};

}  // namespace nalq::engine

#endif  // NALQ_ENGINE_ENGINE_H_
