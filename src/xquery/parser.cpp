#include "xquery/parser.h"

#include <cctype>

#include "xquery/lexer.h"

namespace nalq::xquery {

namespace {

bool IsWhitespaceOnly(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::string_view input) : lex_(input) {}

  AstPtr Parse() {
    AstPtr e = ParseExprSingle();
    if (lex_.Peek().kind != TokKind::kEof) {
      Fail("trailing input after query");
    }
    return e;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) {
    throw ParseError(message + " (at offset " +
                     std::to_string(lex_.Peek().begin) + ")");
  }

  Token Expect(TokKind kind, const char* what) {
    if (lex_.Peek().kind != kind) Fail(std::string("expected ") + what);
    return lex_.Next();
  }

  bool Accept(TokKind kind) {
    if (lex_.Peek().kind == kind) {
      lex_.Next();
      return true;
    }
    return false;
  }

  AstPtr ParseExprSingle() {
    if (lex_.PeekIsName("for") || lex_.PeekIsName("let")) return ParseFlwr();
    if (lex_.PeekIsName("some") || lex_.PeekIsName("every")) {
      return ParseQuantified();
    }
    if (lex_.PeekIsName("if")) return ParseConditional();
    return ParseOr();
  }

  AstPtr ParseConditional() {
    lex_.Next();  // 'if'
    Expect(TokKind::kLParen, "'(' after if");
    AstPtr cond = ParseExprSingle();
    Expect(TokKind::kRParen, "')'");
    if (!lex_.PeekIsName("then")) Fail("expected 'then'");
    lex_.Next();
    AstPtr then_e = ParseExprSingle();
    if (!lex_.PeekIsName("else")) Fail("expected 'else'");
    lex_.Next();
    AstPtr else_e = ParseExprSingle();
    auto out = std::make_shared<Ast>();
    out->kind = AstKind::kCond;
    out->children = {std::move(cond), std::move(then_e), std::move(else_e)};
    return out;
  }

  AstPtr ParseFlwr() {
    auto flwr = std::make_shared<Ast>();
    flwr->kind = AstKind::kFlwr;
    for (;;) {
      if (lex_.PeekIsName("for")) {
        lex_.Next();
        for (;;) {
          Token var = Expect(TokKind::kVar, "variable after 'for'");
          if (!lex_.PeekIsName("in")) Fail("expected 'in'");
          lex_.Next();
          Clause c;
          c.kind = Clause::Kind::kFor;
          c.var = var.text;
          c.expr = ParseExprSingle();
          flwr->clauses.push_back(std::move(c));
          if (!Accept(TokKind::kComma)) break;
        }
        continue;
      }
      if (lex_.PeekIsName("let")) {
        lex_.Next();
        for (;;) {
          Token var = Expect(TokKind::kVar, "variable after 'let'");
          Expect(TokKind::kAssign, "':='");
          Clause c;
          c.kind = Clause::Kind::kLet;
          c.var = var.text;
          c.expr = ParseExprSingle();
          flwr->clauses.push_back(std::move(c));
          if (!Accept(TokKind::kComma)) break;
        }
        continue;
      }
      if (lex_.PeekIsName("where")) {
        lex_.Next();
        Clause c;
        c.kind = Clause::Kind::kWhere;
        c.expr = ParseExprSingle();
        flwr->clauses.push_back(std::move(c));
        continue;
      }
      break;
    }
    // Optional (stable) order by — compiled to the Sort operator.
    if (lex_.PeekIsName("stable")) {
      lex_.Next();
      if (!lex_.PeekIsName("order")) Fail("expected 'order' after 'stable'");
    }
    if (lex_.PeekIsName("order")) {
      lex_.Next();
      if (!lex_.PeekIsName("by")) Fail("expected 'by' after 'order'");
      lex_.Next();
      for (;;) {
        AstPtr key = ParseExprSingle();
        bool descending = false;
        if (lex_.PeekIsName("descending")) {
          descending = true;
          lex_.Next();
        } else if (lex_.PeekIsName("ascending")) {
          lex_.Next();
        }
        flwr->order_by.emplace_back(std::move(key), descending);
        if (!Accept(TokKind::kComma)) break;
      }
    }
    if (!lex_.PeekIsName("return")) Fail("expected 'return'");
    lex_.Next();
    flwr->ret = ParseExprSingle();
    return flwr;
  }

  AstPtr ParseQuantified() {
    auto q = std::make_shared<Ast>();
    q->kind = AstKind::kQuantified;
    Token kw = lex_.Next();
    q->quant = kw.text == "some" ? nal::QuantKind::kSome
                                 : nal::QuantKind::kEvery;
    Token var = Expect(TokKind::kVar, "variable after quantifier");
    q->qvar = var.text;
    if (!lex_.PeekIsName("in")) Fail("expected 'in'");
    lex_.Next();
    q->range = ParseExprSingle();
    if (!lex_.PeekIsName("satisfies")) Fail("expected 'satisfies'");
    lex_.Next();
    q->satisfies = ParseExprSingle();
    return q;
  }

  AstPtr ParseOr() {
    AstPtr lhs = ParseAnd();
    while (lex_.PeekIsName("or")) {
      lex_.Next();
      lhs = MakeOrAst(std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  AstPtr ParseAnd() {
    AstPtr lhs = ParseComparison();
    while (lex_.PeekIsName("and")) {
      lex_.Next();
      lhs = MakeAndAst(std::move(lhs), ParseComparison());
    }
    return lhs;
  }

  AstPtr MakeArithAst(const char* op, AstPtr lhs, AstPtr rhs) {
    auto out = std::make_shared<Ast>();
    out->kind = AstKind::kArith;
    out->name = op;
    out->children = {std::move(lhs), std::move(rhs)};
    return out;
  }

  AstPtr ParseAdditive() {
    AstPtr lhs = ParseMultiplicative();
    for (;;) {
      if (Accept(TokKind::kPlus)) {
        lhs = MakeArithAst("+", std::move(lhs), ParseMultiplicative());
      } else if (Accept(TokKind::kMinus)) {
        lhs = MakeArithAst("-", std::move(lhs), ParseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  AstPtr ParseMultiplicative() {
    AstPtr lhs = ParsePathExpr();
    for (;;) {
      if (Accept(TokKind::kStar)) {
        lhs = MakeArithAst("*", std::move(lhs), ParsePathExpr());
      } else if (lex_.PeekIsName("div")) {
        lex_.Next();
        lhs = MakeArithAst("div", std::move(lhs), ParsePathExpr());
      } else if (lex_.PeekIsName("mod")) {
        lex_.Next();
        lhs = MakeArithAst("mod", std::move(lhs), ParsePathExpr());
      } else {
        return lhs;
      }
    }
  }

  AstPtr ParseComparison() {
    AstPtr lhs = ParseAdditive();
    nal::CmpOp op;
    switch (lex_.Peek().kind) {
      case TokKind::kEq:
        op = nal::CmpOp::kEq;
        break;
      case TokKind::kNe:
        op = nal::CmpOp::kNe;
        break;
      case TokKind::kLt:
        op = nal::CmpOp::kLt;
        break;
      case TokKind::kLe:
        op = nal::CmpOp::kLe;
        break;
      case TokKind::kGt:
        op = nal::CmpOp::kGt;
        break;
      case TokKind::kGe:
        op = nal::CmpOp::kGe;
        break;
      default: {
        // Word comparison operators eq/ne/lt/le/gt/ge.
        const Token& t = lex_.Peek();
        if (t.kind == TokKind::kName) {
          if (t.text == "eq") {
            op = nal::CmpOp::kEq;
          } else if (t.text == "ne") {
            op = nal::CmpOp::kNe;
          } else if (t.text == "lt") {
            op = nal::CmpOp::kLt;
          } else if (t.text == "le") {
            op = nal::CmpOp::kLe;
          } else if (t.text == "gt") {
            op = nal::CmpOp::kGt;
          } else if (t.text == "ge") {
            op = nal::CmpOp::kGe;
          } else {
            return lhs;
          }
          lex_.Next();
          return MakeCmpAst(op, std::move(lhs), ParseAdditive());
        }
        return lhs;
      }
    }
    lex_.Next();
    return MakeCmpAst(op, std::move(lhs), ParseAdditive());
  }

  /// PathExpr := ('/' | '//')? Primary (('/' | '//') Step)* | relative step
  AstPtr ParsePathExpr() {
    // Leading '/' or '//' → path from the context item (inside predicates).
    if (lex_.Peek().kind == TokKind::kSlash ||
        lex_.Peek().kind == TokKind::kSlashSlash) {
      return ParseSteps(MakeContextRef());
    }
    AstPtr base = ParsePrimary();
    if (lex_.Peek().kind == TokKind::kSlash ||
        lex_.Peek().kind == TokKind::kSlashSlash) {
      return ParseSteps(std::move(base));
    }
    return base;
  }

  AstPtr ParseSteps(AstPtr base) {
    std::vector<PathStepAst> steps;
    // If `base` is already a relative path (context step), extend it.
    if (base->kind == AstKind::kPathExpr) {
      steps = base->steps;
      base = base->children[0];
    }
    while (lex_.Peek().kind == TokKind::kSlash ||
           lex_.Peek().kind == TokKind::kSlashSlash) {
      bool descendant = lex_.Next().kind == TokKind::kSlashSlash;
      steps.push_back(ParseOneStep(descendant));
    }
    return MakePathAst(std::move(base), std::move(steps));
  }

  PathStepAst ParseOneStep(bool descendant) {
    PathStepAst step;
    step.axis = descendant ? xml::Axis::kDescendant : xml::Axis::kChild;
    if (Accept(TokKind::kAt)) {
      if (descendant) Fail("//@attribute is not supported");
      step.axis = xml::Axis::kAttribute;
    }
    if (Accept(TokKind::kStar)) {
      step.name = "*";
    } else {
      Token name = Expect(TokKind::kName, "step name");
      step.name = name.text;
      if (step.name == "text" && Accept(TokKind::kLParen)) {
        Expect(TokKind::kRParen, "')'");
        step.axis = xml::Axis::kText;
      }
    }
    if (Accept(TokKind::kLBracket)) {
      step.predicate = ParseExprSingle();
      Expect(TokKind::kRBracket, "']'");
    }
    return step;
  }

  AstPtr ParsePrimary() {
    const Token& t = lex_.Peek();
    switch (t.kind) {
      case TokKind::kVar: {
        Token var = lex_.Next();
        return MakeVarRef(var.text);
      }
      case TokKind::kString: {
        Token s = lex_.Next();
        return MakeLiteral(nal::Value(s.text));
      }
      case TokKind::kNumber: {
        Token n = lex_.Next();
        return MakeLiteral(n.is_integer
                               ? nal::Value(static_cast<int64_t>(n.number))
                               : nal::Value(n.number));
      }
      case TokKind::kLParen: {
        lex_.Next();
        if (Accept(TokKind::kRParen)) {
          // Empty sequence ().
          return MakeLiteral(nal::Value::FromItems({}));
        }
        AstPtr inner = ParseExprSingle();
        Expect(TokKind::kRParen, "')'");
        return inner;
      }
      case TokKind::kMinus: {
        // Unary minus: 0 - operand.
        lex_.Next();
        return MakeArithAst("-", MakeLiteral(nal::Value(int64_t{0})),
                            ParsePathExpr());
      }
      case TokKind::kDot:
        lex_.Next();
        return MakeContextRef();
      case TokKind::kLt:
        return ParseElementCtor();
      case TokKind::kName: {
        Token name = lex_.Next();
        if (Accept(TokKind::kLParen)) {
          std::vector<AstPtr> args;
          if (lex_.Peek().kind != TokKind::kRParen) {
            for (;;) {
              args.push_back(ParseExprSingle());
              if (!Accept(TokKind::kComma)) break;
            }
          }
          Expect(TokKind::kRParen, "')'");
          return MakeFnCallAst(name.text, std::move(args));
        }
        // A bare name in expression position is a context-relative child
        // step (legal inside path predicates: book[author = $a]).
        std::vector<PathStepAst> steps;
        PathStepAst step;
        step.axis = xml::Axis::kChild;
        step.name = name.text;
        steps.push_back(std::move(step));
        AstPtr path = MakePathAst(MakeContextRef(), std::move(steps));
        return path;
      }
      case TokKind::kAt: {
        lex_.Next();
        Token name = Expect(TokKind::kName, "attribute name after '@'");
        std::vector<PathStepAst> steps;
        PathStepAst step;
        step.axis = xml::Axis::kAttribute;
        step.name = name.text;
        steps.push_back(std::move(step));
        return MakePathAst(MakeContextRef(), std::move(steps));
      }
      default:
        Fail("expected expression");
    }
  }

  // ---- direct element constructors (raw character mode) ----------------

  AstPtr ParseElementCtor() {
    size_t start = lex_.PeekBegin();
    std::string_view in = lex_.input();
    size_t pos = start;
    AstPtr ctor = ParseCtorAt(in, &pos);
    lex_.ResetTo(pos);
    return ctor;
  }

  [[noreturn]] void FailRaw(const std::string& message, size_t pos) {
    throw ParseError(message + " (at offset " + std::to_string(pos) + ")");
  }

  void SkipRawWs(std::string_view in, size_t* pos) {
    while (*pos < in.size() &&
           std::isspace(static_cast<unsigned char>(in[*pos]))) {
      ++*pos;
    }
  }

  std::string ReadRawName(std::string_view in, size_t* pos) {
    size_t start = *pos;
    while (*pos < in.size() &&
           (std::isalnum(static_cast<unsigned char>(in[*pos])) ||
            in[*pos] == '_' || in[*pos] == '-' || in[*pos] == '.' ||
            in[*pos] == ':')) {
      ++*pos;
    }
    if (*pos == start) FailRaw("expected name in constructor", *pos);
    return std::string(in.substr(start, *pos - start));
  }

  /// Parses an enclosed expression starting at '{'; returns the AST and
  /// leaves *pos after the matching '}'.
  AstPtr ParseEnclosed(std::string_view in, size_t* pos) {
    ++*pos;  // consume '{'
    Parser subparser(in);
    subparser.lex_.ResetTo(*pos);
    AstPtr e = subparser.ParseExprSingle();
    if (subparser.lex_.Peek().kind != TokKind::kRBrace) {
      FailRaw("expected '}' after enclosed expression",
              subparser.lex_.Peek().begin);
    }
    *pos = subparser.lex_.Peek().end;
    return e;
  }

  AstPtr ParseCtorAt(std::string_view in, size_t* pos) {
    if (in[*pos] != '<') FailRaw("expected '<'", *pos);
    ++*pos;
    auto ctor = std::make_shared<Ast>();
    ctor->kind = AstKind::kElementCtor;
    ctor->tag = ReadRawName(in, pos);
    // Attributes.
    for (;;) {
      SkipRawWs(in, pos);
      if (*pos >= in.size()) FailRaw("unterminated start tag", *pos);
      if (in[*pos] == '>') {
        ++*pos;
        break;
      }
      if (in[*pos] == '/' && *pos + 1 < in.size() && in[*pos + 1] == '>') {
        *pos += 2;
        return ctor;  // empty element
      }
      std::string attr_name = ReadRawName(in, pos);
      SkipRawWs(in, pos);
      if (*pos >= in.size() || in[*pos] != '=') {
        FailRaw("expected '=' in attribute", *pos);
      }
      ++*pos;
      SkipRawWs(in, pos);
      char quote = in[*pos];
      if (quote != '"' && quote != '\'') {
        FailRaw("expected quoted attribute value", *pos);
      }
      ++*pos;
      std::vector<CtorPart> parts;
      std::string literal;
      while (*pos < in.size() && in[*pos] != quote) {
        if (in[*pos] == '{') {
          if (!literal.empty()) {
            CtorPart p;
            p.is_literal = true;
            p.text = literal;
            parts.push_back(std::move(p));
            literal.clear();
          }
          CtorPart p;
          p.is_literal = false;
          p.expr = ParseEnclosed(in, pos);
          parts.push_back(std::move(p));
        } else {
          literal += in[(*pos)++];
        }
      }
      if (*pos >= in.size()) FailRaw("unterminated attribute value", *pos);
      ++*pos;
      if (!literal.empty()) {
        CtorPart p;
        p.is_literal = true;
        p.text = std::move(literal);
        parts.push_back(std::move(p));
      }
      ctor->attributes.emplace_back(attr_name, std::move(parts));
    }
    // Content.
    std::string literal;
    auto flush_literal = [&]() {
      if (literal.empty()) return;
      if (!IsWhitespaceOnly(literal)) {
        CtorPart p;
        p.is_literal = true;
        p.text = literal;
        ctor->content.push_back(std::move(p));
      }
      literal.clear();
    };
    for (;;) {
      if (*pos >= in.size()) FailRaw("unterminated element constructor", *pos);
      char c = in[*pos];
      if (c == '<') {
        if (*pos + 1 < in.size() && in[*pos + 1] == '/') {
          flush_literal();
          *pos += 2;
          std::string close = ReadRawName(in, pos);
          if (close != ctor->tag) {
            FailRaw("mismatched constructor end tag </" + close + ">", *pos);
          }
          SkipRawWs(in, pos);
          if (*pos >= in.size() || in[*pos] != '>') {
            FailRaw("expected '>'", *pos);
          }
          ++*pos;
          return ctor;
        }
        // Nested constructor: parse recursively and splice it in as an
        // expression part (translation renders it via its own commands).
        flush_literal();
        CtorPart p;
        p.is_literal = false;
        p.expr = ParseCtorAt(in, pos);
        ctor->content.push_back(std::move(p));
        continue;
      }
      if (c == '{') {
        flush_literal();
        CtorPart p;
        p.is_literal = false;
        p.expr = ParseEnclosed(in, pos);
        ctor->content.push_back(std::move(p));
        continue;
      }
      literal += c;
      ++*pos;
    }
  }

  Lexer lex_;
};

}  // namespace

AstPtr ParseQuery(std::string_view text) { return Parser(text).Parse(); }

}  // namespace nalq::xquery
