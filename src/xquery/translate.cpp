#include "xquery/translate.h"

#include <map>
#include <optional>

#include "nal/analysis.h"
#include "xquery/normalize.h"

namespace nalq::xquery {

namespace {

using nal::AggSpec;
using nal::AlgebraPtr;
using nal::ExprPtr;
using nal::Symbol;

/// What the translator knows about a variable: which document/path its
/// values come from (for singleton decisions) — the same facts the rewriter
/// later re-derives from the plan itself.
struct VarInfo {
  bool known = false;
  std::string doc;
  xml::Path path;       // absolute path of the variable's values
  bool distinct = false;
  bool singleton = false;
};

class Translator {
 public:
  explicit Translator(const xml::DtdRegistry* dtds) : dtds_(dtds) {}

  AlgebraPtr TranslateQuery(const AstPtr& query) {
    if (query->kind != AstKind::kFlwr) {
      throw TranslateError("top-level query must be a FLWR expression");
    }
    AlgebraPtr alg = TranslateClauses(*query);
    alg = ApplyOrderBy(*query, std::move(alg));
    if (query->ret == nullptr) {
      throw TranslateError("missing return clause");
    }
    nal::XiProgram program;
    EmitReturn(*query->ret, &program);
    return nal::XiSimple(std::move(program), std::move(alg));
  }

 private:
  [[noreturn]] static void Fail(const std::string& message) {
    throw TranslateError(message);
  }

  // ---- variable bookkeeping ---------------------------------------------

  const VarInfo* Lookup(const std::string& var) const {
    auto it = vars_.find(var);
    return it == vars_.end() ? nullptr : &it->second;
  }

  /// Converts AST steps to an xml::Path (predicates must be gone after
  /// normalization; if any remain the provenance is treated as unknown).
  static std::optional<xml::Path> StepsToPath(
      const std::vector<PathStepAst>& steps) {
    std::vector<xml::Step> out;
    for (const PathStepAst& s : steps) {
      if (s.predicate != nullptr) return std::nullopt;
      xml::Step step;
      step.axis = s.axis;
      step.name = s.name;
      out.push_back(std::move(step));
    }
    return xml::Path(false, std::move(out));
  }

  /// Provenance of a path expression rooted at a known variable.
  VarInfo PathInfo(const Ast& path_ast) const {
    VarInfo info;
    if (path_ast.kind != AstKind::kPathExpr) return info;
    const AstPtr& base = path_ast.children[0];
    VarInfo base_info;
    if (base->kind == AstKind::kVarRef) {
      const VarInfo* known = Lookup(base->name);
      if (known == nullptr || !known->known) return info;
      base_info = *known;
    } else if (base->kind == AstKind::kFnCall &&
               (base->name == "doc" || base->name == "document") &&
               base->children.size() == 1 &&
               base->children[0]->kind == AstKind::kLiteral) {
      base_info.known = true;
      base_info.doc =
          base->children[0]->literal.AsString();
      base_info.path = xml::Path(true, {});
    } else {
      return info;
    }
    std::optional<xml::Path> rel = StepsToPath(path_ast.steps);
    if (!rel.has_value()) return info;
    info.known = true;
    info.doc = base_info.doc;
    info.path = base_info.path.Concat(*rel);
    return info;
  }

  /// DTD-backed singleton check for a path (used to skip the e[a'] binding,
  /// paper Sec. 3: "in case the result of some ei is a singleton").
  bool IsSingletonPath(const VarInfo& base, const Ast& path_ast) const {
    if (!base.known || dtds_ == nullptr) return false;
    const xml::Dtd* dtd = dtds_->Find(base.doc);
    if (dtd == nullptr) return false;
    // Walk steps: each must be a child/attribute step with cardinality one
    // from a known parent element.
    std::string parent;
    if (!base.path.empty()) {
      parent = base.path.steps().back().name;
    } else {
      // Document root context: first step must select the root element.
      if (path_ast.steps.empty()) return true;
    }
    for (size_t i = 0; i < path_ast.steps.size(); ++i) {
      const PathStepAst& s = path_ast.steps[i];
      if (s.predicate != nullptr) return false;
      if (s.axis == xml::Axis::kAttribute) {
        return i + 1 == path_ast.steps.size() && !parent.empty() &&
               dtd->HasAttribute(parent, s.name);
      }
      if (s.axis != xml::Axis::kChild) return false;
      if (parent.empty()) {
        if (s.name != dtd->root()) return false;
      } else if (!dtd->ExactlyOneChild(parent, s.name)) {
        return false;
      }
      parent = s.name;
    }
    return true;
  }

  // ---- FLWR translation (the binary T function) -------------------------

  AlgebraPtr TranslateClauses(const Ast& flwr) {
    AlgebraPtr alg = nal::Singleton();
    for (const Clause& c : flwr.clauses) {
      switch (c.kind) {
        case Clause::Kind::kLet:
          alg = TranslateLet(c, std::move(alg));
          break;
        case Clause::Kind::kFor:
          alg = TranslateFor(c, std::move(alg));
          break;
        case Clause::Kind::kWhere:
          alg = nal::Select(TranslateScalar(*c.expr), std::move(alg));
          break;
      }
    }
    return alg;
  }

  /// order by (extension): sort keys become fresh χ attributes, the Sort
  /// operator (stable) orders by them, and the keys are projected away.
  AlgebraPtr ApplyOrderBy(const Ast& flwr, AlgebraPtr alg) {
    if (flwr.order_by.empty()) return alg;
    std::vector<Symbol> keys;
    std::vector<uint8_t> desc;
    for (const auto& [key_expr, descending] : flwr.order_by) {
      Symbol key = Symbol::Fresh("sortkey");
      alg = nal::Map(key, TranslateScalar(*key_expr), std::move(alg));
      keys.push_back(key);
      desc.push_back(descending ? 1 : 0);
    }
    alg = nal::SortByDir(keys, std::move(desc), std::move(alg));
    return nal::ProjectDrop(std::move(keys), std::move(alg));
  }

  AlgebraPtr TranslateLet(const Clause& c, AlgebraPtr alg) {
    Symbol var(c.var);
    const Ast& e = *c.expr;
    VarInfo info;
    ExprPtr value;
    if (e.kind == AstKind::kFnCall &&
        (e.name == "doc" || e.name == "document")) {
      value = TranslateScalar(e);
      if (e.children.size() == 1 &&
          e.children[0]->kind == AstKind::kLiteral) {
        info.known = true;
        info.doc = e.children[0]->literal.AsString();
        info.path = xml::Path(true, {});
        info.singleton = true;
      }
    } else if (e.kind == AstKind::kFlwr) {
      auto [nested, result_attr] = TranslateNestedFlwr(e);
      value = nal::MakeAgg(nal::AggProjectItems(result_attr),
                           nal::MakeNestedAlg(std::move(nested)));
    } else if (e.kind == AstKind::kFnCall && IsAggregate(e.name) &&
               e.children.size() == 1 &&
               e.children[0]->kind == AstKind::kFlwr) {
      auto [nested, result_attr] = TranslateNestedFlwr(*e.children[0]);
      value = nal::MakeAgg(AggForFn(e.name, result_attr),
                           nal::MakeNestedAlg(std::move(nested)));
    } else if (e.kind == AstKind::kPathExpr) {
      info = PathInfo(e);
      VarInfo base_info;
      if (e.children[0]->kind == AstKind::kVarRef) {
        const VarInfo* b = Lookup(e.children[0]->name);
        if (b != nullptr) base_info = *b;
      }
      ExprPtr path_expr = TranslateScalar(e);
      if (IsSingletonPath(base_info, e)) {
        info.singleton = true;
        value = std::move(path_expr);
      } else {
        // The paper's e[a'] construction: bind the item sequence as a
        // nested tuple sequence with a fresh inner attribute a'.
        Symbol inner(c.var + "'");
        value = nal::MakeBindTuples(std::move(path_expr), inner);
      }
    } else {
      value = TranslateScalar(e);
    }
    vars_[c.var] = info;
    return nal::Map(var, std::move(value), std::move(alg));
  }

  AlgebraPtr TranslateFor(const Clause& c, AlgebraPtr alg) {
    Symbol var(c.var);
    const Ast& e = *c.expr;
    VarInfo info;
    ExprPtr items;
    if (e.kind == AstKind::kPathExpr) {
      info = PathInfo(e);
      items = TranslateScalar(e);
    } else if (e.kind == AstKind::kFnCall && e.name == "distinct-values" &&
               e.children.size() == 1) {
      if (e.children[0]->kind == AstKind::kPathExpr) {
        info = PathInfo(*e.children[0]);
        info.distinct = true;
      }
      items = TranslateScalar(e);
    } else if (e.kind == AstKind::kFlwr) {
      auto [nested, result_attr] = TranslateNestedFlwr(e);
      items = nal::MakeAgg(nal::AggProjectItems(result_attr),
                           nal::MakeNestedAlg(std::move(nested)));
    } else {
      items = TranslateScalar(e);
    }
    vars_[c.var] = info;
    return nal::UnnestMap(var, std::move(items), std::move(alg));
  }

  /// Translates a nested FLWR (no result construction): returns the algebra
  /// and the attribute holding the return values.
  std::pair<AlgebraPtr, Symbol> TranslateNestedFlwr(const Ast& flwr) {
    if (flwr.kind != AstKind::kFlwr) Fail("expected nested FLWR");
    AlgebraPtr alg = TranslateClauses(flwr);
    if (flwr.ret == nullptr || flwr.ret->kind != AstKind::kVarRef) {
      Fail(
          "nested query blocks must return a variable after normalization; "
          "got: " +
          (flwr.ret != nullptr ? flwr.ret->ToString() : "()"));
    }
    return {std::move(alg), Symbol(flwr.ret->name)};
  }

  // ---- scalar translation (the unary T function) -------------------------

  static bool IsAggregate(const std::string& name) {
    return name == "count" || name == "min" || name == "max" ||
           name == "sum" || name == "avg";
  }

  static AggSpec AggForFn(const std::string& name, Symbol input) {
    if (name == "count") return nal::AggCount();
    if (name == "min") return nal::AggOf(AggSpec::Kind::kMin, input);
    if (name == "max") return nal::AggOf(AggSpec::Kind::kMax, input);
    if (name == "sum") return nal::AggOf(AggSpec::Kind::kSum, input);
    return nal::AggOf(AggSpec::Kind::kAvg, input);
  }

  ExprPtr TranslateScalar(const Ast& e) {
    switch (e.kind) {
      case AstKind::kLiteral:
        return nal::MakeConst(e.literal);
      case AstKind::kVarRef:
        return nal::MakeAttrRef(Symbol(e.name));
      case AstKind::kContextRef:
        Fail("unresolved context item ('.') — normalization incomplete");
      case AstKind::kCmp:
        return nal::MakeCmp(e.cmp, TranslateScalar(*e.children[0]),
                            TranslateScalar(*e.children[1]));
      case AstKind::kAnd:
        return nal::MakeAnd(TranslateScalar(*e.children[0]),
                            TranslateScalar(*e.children[1]));
      case AstKind::kOr:
        return nal::MakeOr(TranslateScalar(*e.children[0]),
                           TranslateScalar(*e.children[1]));
      case AstKind::kArith: {
        nal::ArithOp op = e.name == "+"     ? nal::ArithOp::kAdd
                          : e.name == "-"   ? nal::ArithOp::kSub
                          : e.name == "*"   ? nal::ArithOp::kMul
                          : e.name == "div" ? nal::ArithOp::kDiv
                                            : nal::ArithOp::kMod;
        return nal::MakeArith(op, TranslateScalar(*e.children[0]),
                              TranslateScalar(*e.children[1]));
      }
      case AstKind::kCond:
        return nal::MakeCond(TranslateScalar(*e.children[0]),
                             TranslateScalar(*e.children[1]),
                             TranslateScalar(*e.children[2]));
      case AstKind::kPathExpr: {
        std::optional<xml::Path> rel = StepsToPath(e.steps);
        if (!rel.has_value()) {
          Fail("path predicates must be normalized away before translation: " +
               e.ToString());
        }
        return nal::MakePath(TranslateScalar(*e.children[0]), *rel);
      }
      case AstKind::kFnCall: {
        // Aggregates / existence tests over nested query blocks become
        // nested algebraic expressions.
        if (e.children.size() == 1 &&
            e.children[0]->kind == AstKind::kFlwr) {
          auto [nested, result_attr] = TranslateNestedFlwr(*e.children[0]);
          if (IsAggregate(e.name)) {
            return nal::MakeAgg(AggForFn(e.name, result_attr),
                                nal::MakeNestedAlg(std::move(nested)));
          }
          if (e.name == "exists") {
            AlgebraPtr range = nal::ProjectKeep({result_attr}, nested);
            return nal::MakeQuant(nal::QuantKind::kSome,
                                  Symbol::Fresh("ex"), std::move(range),
                                  nal::MakeConst(nal::Value(true)));
          }
          if (e.name == "empty") {
            AlgebraPtr range = nal::ProjectKeep({result_attr}, nested);
            return nal::MakeQuant(nal::QuantKind::kEvery,
                                  Symbol::Fresh("em"), std::move(range),
                                  nal::MakeConst(nal::Value(false)));
          }
          if (e.name == "distinct-values") {
            return nal::MakeFnCall(
                "distinct-values",
                {nal::MakeAgg(nal::AggProjectItems(result_attr),
                              nal::MakeNestedAlg(std::move(nested)))});
          }
          Fail("unsupported function over nested FLWR: " + e.name);
        }
        std::vector<ExprPtr> args;
        args.reserve(e.children.size());
        for (const AstPtr& c : e.children) args.push_back(TranslateScalar(*c));
        return nal::MakeFnCall(e.name, std::move(args));
      }
      case AstKind::kQuantified:
        return TranslateQuantifier(e);
      case AstKind::kFlwr:
        Fail("nested FLWR in scalar position — normalization incomplete: " +
             e.ToString());
      case AstKind::kElementCtor:
        Fail("element constructors are only supported in return clauses");
    }
    Fail("unhandled AST node");
  }

  ExprPtr TranslateQuantifier(const Ast& q) {
    if (q.range == nullptr || q.range->kind != AstKind::kFlwr) {
      Fail("quantifier range must be a FLWR after normalization");
    }
    auto [nested, result_attr] = TranslateNestedFlwr(*q.range);
    Symbol var(q.qvar);
    ExprPtr pred = TranslateScalar(*q.satisfies);
    // Move correlated satisfies-conjuncts into the range (paper Sec. 5.3:
    // "We can move the correlation predicate into the range expression").
    nal::SymbolSet range_attrs = nal::OutputAttrs(*nested).attrs;
    std::vector<ExprPtr> conjuncts;
    std::vector<ExprPtr> keep;
    FlattenAnd(pred, &conjuncts);
    AlgebraPtr range = nested;
    for (ExprPtr& conj : conjuncts) {
      std::vector<Symbol> refs;
      nal::CollectFreeAttrs(*conj, &refs);
      bool mentions_var = false;
      bool mentions_outer = false;
      for (Symbol s : refs) {
        if (s == var) {
          mentions_var = true;
        } else if (range_attrs.count(s) == 0) {
          mentions_outer = true;
        }
      }
      if (mentions_var && mentions_outer) {
        range = nal::Select(nal::SubstituteAttr(conj, var, result_attr),
                            std::move(range));
      } else {
        keep.push_back(conj);
      }
    }
    ExprPtr remaining;
    for (ExprPtr& k : keep) {
      remaining = remaining == nullptr ? k : nal::MakeAnd(remaining, k);
    }
    if (remaining == nullptr) remaining = nal::MakeConst(nal::Value(true));
    range = nal::ProjectKeep({result_attr}, std::move(range));
    return nal::MakeQuant(q.quant, var, std::move(range),
                          std::move(remaining));
  }

  static void FlattenAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
    if (e->kind == nal::ExprKind::kAnd) {
      FlattenAnd(e->children[0], out);
      FlattenAnd(e->children[1], out);
    } else {
      out->push_back(e);
    }
  }

  // ---- result construction (the C function) ------------------------------

  void EmitReturn(const Ast& ret, nal::XiProgram* program) {
    switch (ret.kind) {
      case AstKind::kVarRef:
        program->push_back(nal::XiCommand::Var(Symbol(ret.name)));
        return;
      case AstKind::kElementCtor: {
        std::string open = "<" + ret.tag;
        for (const auto& [attr_name, parts] : ret.attributes) {
          open += " " + attr_name + "=\"";
          for (const CtorPart& p : parts) {
            if (p.is_literal) {
              open += p.text;
            } else {
              program->push_back(nal::XiCommand::Literal(open));
              open.clear();
              program->push_back(
                  nal::XiCommand::Eval(TranslateScalar(*p.expr)));
            }
          }
          open += "\"";
        }
        open += ">";
        program->push_back(nal::XiCommand::Literal(open));
        for (const CtorPart& p : ret.content) {
          if (p.is_literal) {
            program->push_back(nal::XiCommand::Literal(p.text));
          } else if (p.expr->kind == AstKind::kElementCtor) {
            EmitReturn(*p.expr, program);
          } else if (p.expr->kind == AstKind::kVarRef) {
            program->push_back(nal::XiCommand::Var(Symbol(p.expr->name)));
          } else {
            program->push_back(nal::XiCommand::Eval(TranslateScalar(*p.expr)));
          }
        }
        program->push_back(nal::XiCommand::Literal("</" + ret.tag + ">"));
        return;
      }
      default:
        program->push_back(nal::XiCommand::Eval(TranslateScalar(ret)));
        return;
    }
  }

  const xml::DtdRegistry* dtds_;
  std::map<std::string, VarInfo> vars_;
};

}  // namespace

nal::AlgebraPtr Translate(const AstPtr& normalized_query,
                          const xml::DtdRegistry* dtds) {
  return Translator(dtds).TranslateQuery(normalized_query);
}

}  // namespace nalq::xquery
