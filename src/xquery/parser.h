// Recursive-descent parser for the XQuery subset used in the paper's
// evaluation (Sec. 5): FLWR expressions, quantifiers, path expressions with
// predicates, comparisons, boolean connectives, function calls and direct
// element constructors with enclosed expressions.
#ifndef NALQ_XQUERY_PARSER_H_
#define NALQ_XQUERY_PARSER_H_

#include <stdexcept>
#include <string_view>

#include "xquery/ast.h"

namespace nalq::xquery {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a complete query expression. Throws ParseError / LexError.
AstPtr ParseQuery(std::string_view text);

}  // namespace nalq::xquery

#endif  // NALQ_XQUERY_PARSER_H_
