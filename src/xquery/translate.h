// Translation of normalized XQuery ASTs into NAL algebra (paper Fig. 3).
//
// The mutually recursive binary/unary T functions become TranslateFlwr /
// TranslateScalar. Nested query blocks turn into nested algebraic
// expressions inside χ subscripts (let) and quantifier ranges (where) —
// exactly the shapes the unnesting equivalences of Sec. 4 consume.
//
// Like the paper, the translator uses the DTD to decide whether a let-bound
// path is a singleton (then no e[a'] tuple construction is needed, Sec. 3)
// and whether `=` must be given existential (∈) semantics.
#ifndef NALQ_XQUERY_TRANSLATE_H_
#define NALQ_XQUERY_TRANSLATE_H_

#include <stdexcept>
#include <string>

#include "nal/algebra.h"
#include "xml/dtd.h"
#include "xquery/ast.h"

namespace nalq::xquery {

class TranslateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Translates a normalized top-level query (a FLWR whose return clause
/// constructs the result). Returns the complete plan ending in a Ξ operator.
/// `dtds` may be null (then every path is treated as potentially
/// multi-valued).
nal::AlgebraPtr Translate(const AstPtr& normalized_query,
                          const xml::DtdRegistry* dtds);

}  // namespace nalq::xquery

#endif  // NALQ_XQUERY_TRANSLATE_H_
