#include "xquery/normalize.h"

#include <atomic>
#include <functional>

namespace nalq::xquery {

namespace {

/// Applies `fn` to every sub-AST bottom-up and returns the rebuilt tree.
AstPtr Transform(const AstPtr& node,
                 const std::function<AstPtr(const AstPtr&)>& fn) {
  AstPtr copy = std::make_shared<Ast>(*node);
  copy->children.clear();
  for (const AstPtr& c : node->children) {
    copy->children.push_back(Transform(c, fn));
  }
  copy->steps.clear();
  for (const PathStepAst& s : node->steps) {
    PathStepAst step = s;
    if (s.predicate != nullptr) step.predicate = Transform(s.predicate, fn);
    copy->steps.push_back(std::move(step));
  }
  copy->clauses.clear();
  for (const Clause& c : node->clauses) {
    Clause clause = c;
    if (c.expr != nullptr) clause.expr = Transform(c.expr, fn);
    copy->clauses.push_back(std::move(clause));
  }
  if (node->ret != nullptr) copy->ret = Transform(node->ret, fn);
  copy->order_by.clear();
  for (const auto& [key, desc] : node->order_by) {
    copy->order_by.emplace_back(Transform(key, fn), desc);
  }
  if (node->range != nullptr) copy->range = Transform(node->range, fn);
  if (node->satisfies != nullptr) {
    copy->satisfies = Transform(node->satisfies, fn);
  }
  copy->attributes.clear();
  for (const auto& [name, parts] : node->attributes) {
    std::vector<CtorPart> out_parts;
    for (const CtorPart& p : parts) {
      CtorPart part = p;
      if (p.expr != nullptr) part.expr = Transform(p.expr, fn);
      out_parts.push_back(std::move(part));
    }
    copy->attributes.emplace_back(name, std::move(out_parts));
  }
  copy->content.clear();
  for (const CtorPart& p : node->content) {
    CtorPart part = p;
    if (p.expr != nullptr) part.expr = Transform(p.expr, fn);
    copy->content.push_back(std::move(part));
  }
  return fn(copy);
}

bool IsAggregateFn(const std::string& name) {
  return name == "count" || name == "min" || name == "max" || name == "sum" ||
         name == "avg";
}

bool ContainsFlwrOrPredicatePath(const AstPtr& e) {
  if (e->kind == AstKind::kFlwr) return true;
  if (e->kind == AstKind::kPathExpr) {
    for (const PathStepAst& s : e->steps) {
      if (s.predicate != nullptr) return true;
    }
  }
  for (const AstPtr& c : e->children) {
    if (ContainsFlwrOrPredicatePath(c)) return true;
  }
  return false;
}

/// Splits a conjunction into conjuncts.
void SplitConjuncts(const AstPtr& e, std::vector<AstPtr>* out) {
  if (e->kind == AstKind::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
  } else {
    out->push_back(e);
  }
}

AstPtr JoinConjuncts(const std::vector<AstPtr>& conjuncts) {
  AstPtr out;
  for (const AstPtr& c : conjuncts) {
    out = out == nullptr ? c : MakeAndAst(out, c);
  }
  return out;
}

/// Does `e` reference variable `var` (not counting rebinding — the subset
/// has no shadowing in practice)?
bool ReferencesVar(const AstPtr& e, const std::string& var) {
  if (e->kind == AstKind::kVarRef && e->name == var) return true;
  for (const AstPtr& c : e->children) {
    if (ReferencesVar(c, var)) return true;
  }
  for (const PathStepAst& s : e->steps) {
    if (s.predicate != nullptr && ReferencesVar(s.predicate, var)) return true;
  }
  for (const Clause& c : e->clauses) {
    if (c.expr != nullptr && ReferencesVar(c.expr, var)) return true;
  }
  if (e->ret != nullptr && ReferencesVar(e->ret, var)) return true;
  if (e->range != nullptr && ReferencesVar(e->range, var)) return true;
  if (e->satisfies != nullptr && ReferencesVar(e->satisfies, var)) return true;
  for (const auto& [name, parts] : e->attributes) {
    for (const CtorPart& p : parts) {
      if (p.expr != nullptr && ReferencesVar(p.expr, var)) return true;
    }
  }
  for (const CtorPart& p : e->content) {
    if (p.expr != nullptr && ReferencesVar(p.expr, var)) return true;
  }
  return false;
}

}  // namespace

std::string FreshVar(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  return prefix + "_n" + std::to_string(counter.fetch_add(1));
}

namespace {

/// Substitutes every reference to $var with (a clone of) `replacement`.
AstPtr SubstituteVar(const AstPtr& e, const std::string& var,
                     const AstPtr& replacement) {
  return Transform(e, [&](const AstPtr& node) -> AstPtr {
    if (node->kind == AstKind::kVarRef && node->name == var) {
      return replacement->Clone();
    }
    return node;
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 0: inline doc()/document() lets.
//
// The paper replicates the χ_{d:doc(..)} operator into each nested query
// block (e.g. Sec. 5.4's e2 re-binds d1), which keeps nested blocks free of
// outer variables (condition F(e2) ∩ A(e1) = ∅). Inlining the doc variable
// achieves the same decoupling.
// ---------------------------------------------------------------------------

AstPtr InlineDocLets(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kFlwr) return node;
    AstPtr flwr = std::make_shared<Ast>(*node);
    for (size_t i = 0; i < flwr->clauses.size();) {
      const Clause& c = flwr->clauses[i];
      bool is_doc_let =
          c.kind == Clause::Kind::kLet && c.expr != nullptr &&
          c.expr->kind == AstKind::kFnCall &&
          (c.expr->name == "doc" || c.expr->name == "document") &&
          c.expr->children.size() == 1 &&
          c.expr->children[0]->kind == AstKind::kLiteral;
      if (!is_doc_let) {
        ++i;
        continue;
      }
      std::string var = c.var;
      AstPtr replacement = c.expr;
      flwr->clauses.erase(flwr->clauses.begin() + static_cast<long>(i));
      for (size_t j = i; j < flwr->clauses.size(); ++j) {
        if (flwr->clauses[j].expr != nullptr) {
          flwr->clauses[j].expr =
              SubstituteVar(flwr->clauses[j].expr, var, replacement);
        }
      }
      if (flwr->ret != nullptr) {
        flwr->ret = SubstituteVar(flwr->ret, var, replacement);
      }
    }
    return flwr;
  });
}

// ---------------------------------------------------------------------------
// Pass 2b: bind relative-path comparison operands in where clauses
// (the paper's "let $a2 := $b2/author" of Sec. 5.1's normalization).
// ---------------------------------------------------------------------------

AstPtr BindWherePaths(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kFlwr) return node;
    AstPtr flwr = std::make_shared<Ast>(*node);
    std::vector<Clause> out;
    for (const Clause& c : flwr->clauses) {
      if (c.kind != Clause::Kind::kWhere) {
        out.push_back(c);
        continue;
      }
      std::vector<AstPtr> conjuncts;
      SplitConjuncts(c.expr, &conjuncts);
      std::vector<AstPtr> rewritten;
      for (AstPtr conj : conjuncts) {
        if (conj->kind != AstKind::kCmp) {
          rewritten.push_back(conj);
          continue;
        }
        for (int side = 0; side < 2; ++side) {
          const AstPtr& operand = conj->children[side];
          if (operand->kind == AstKind::kPathExpr &&
              operand->children[0]->kind == AstKind::kVarRef) {
            std::string fresh = FreshVar(
                operand->steps.empty() ? std::string("p")
                                       : operand->steps.back().name);
            Clause let;
            let.kind = Clause::Kind::kLet;
            let.var = fresh;
            let.expr = operand;
            out.push_back(std::move(let));
            AstPtr copy = std::make_shared<Ast>(*conj);
            copy->children[side] = MakeVarRef(fresh);
            conj = copy;
          }
        }
        rewritten.push_back(conj);
      }
      Clause where;
      where.kind = Clause::Kind::kWhere;
      where.expr = JoinConjuncts(rewritten);
      out.push_back(std::move(where));
    }
    flwr->clauses = std::move(out);
    return flwr;
  });
}

AstPtr RebaseContext(const AstPtr& e, const std::string& var) {
  return Transform(e, [&](const AstPtr& node) -> AstPtr {
    if (node->kind == AstKind::kContextRef) return MakeVarRef(var);
    if (node->kind == AstKind::kPathExpr &&
        node->children[0]->kind == AstKind::kContextRef) {
      AstPtr copy = std::make_shared<Ast>(*node);
      copy->children[0] = MakeVarRef(var);
      return copy;
    }
    return node;
  });
}

// ---------------------------------------------------------------------------
// Pass 1: for $x in P[pred]  →  for $x in P where pred[. := $x]
// ---------------------------------------------------------------------------

AstPtr HoistPathPredicates(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kFlwr) return node;
    AstPtr flwr = std::make_shared<Ast>(*node);
    std::vector<Clause> out;
    for (const Clause& c : flwr->clauses) {
      if (c.kind != Clause::Kind::kFor || c.expr == nullptr ||
          c.expr->kind != AstKind::kPathExpr) {
        out.push_back(c);
        continue;
      }
      // Strip predicates from the trailing step(s); earlier-step predicates
      // would change which subtrees are visited and are hoisted per-step via
      // fresh for variables only when they are on the final step — the
      // queries in scope only use final-step predicates.
      AstPtr range = c.expr->Clone();
      std::vector<AstPtr> hoisted;
      if (!range->steps.empty() && range->steps.back().predicate != nullptr) {
        AstPtr pred = range->steps.back().predicate;
        range->steps.back().predicate = nullptr;
        hoisted.push_back(RebaseContext(pred, c.var));
      }
      Clause for_clause = c;
      for_clause.expr = range;
      out.push_back(std::move(for_clause));
      for (const AstPtr& pred : hoisted) {
        Clause where;
        where.kind = Clause::Kind::kWhere;
        where.expr = pred;
        out.push_back(std::move(where));
      }
    }
    flwr->clauses = std::move(out);
    return flwr;
  });
}

// ---------------------------------------------------------------------------
// Pass 2: quantifier normalization (paper steps 1/2; the Q5 rewrites)
// ---------------------------------------------------------------------------

namespace {

/// Rewrites comparisons in the range FLWR's where clauses whose operand is a
/// relative path from a for-variable into an explicit author-style unnest:
///   where $a1 = $b3/author  →  for $a3 in $b3/author where $a1 = $a3
void UnnestWherePaths(Ast* flwr) {
  std::vector<Clause> out;
  for (Clause& c : flwr->clauses) {
    if (c.kind != Clause::Kind::kWhere) {
      out.push_back(std::move(c));
      continue;
    }
    std::vector<AstPtr> conjuncts;
    SplitConjuncts(c.expr, &conjuncts);
    std::vector<AstPtr> rewritten;
    for (AstPtr& conj : conjuncts) {
      if (conj->kind != AstKind::kCmp) {
        rewritten.push_back(conj);
        continue;
      }
      for (int side = 0; side < 2; ++side) {
        AstPtr operand = conj->children[side];
        if (operand->kind == AstKind::kPathExpr &&
            operand->children[0]->kind == AstKind::kVarRef &&
            !operand->steps.empty() &&
            operand->steps.back().axis != xml::Axis::kAttribute) {
          std::string fresh = FreshVar(operand->steps.back().name);
          Clause unnest;
          unnest.kind = Clause::Kind::kFor;
          unnest.var = fresh;
          unnest.expr = operand;
          out.push_back(std::move(unnest));
          AstPtr copy = std::make_shared<Ast>(*conj);
          copy->children[side] = MakeVarRef(fresh);
          conj = copy;
        }
      }
      rewritten.push_back(conj);
    }
    Clause where;
    where.kind = Clause::Kind::kWhere;
    where.expr = JoinConjuncts(rewritten);
    out.push_back(std::move(where));
  }
  flwr->clauses = std::move(out);
}

/// Collects the distinct paths through which `pred` references $var; returns
/// false if $var is also referenced directly.
bool CollectVarPaths(const AstPtr& pred, const std::string& var,
                     std::vector<AstPtr>* paths) {
  if (pred->kind == AstKind::kVarRef && pred->name == var) return false;
  if (pred->kind == AstKind::kPathExpr &&
      pred->children[0]->kind == AstKind::kVarRef &&
      pred->children[0]->name == var) {
    for (const AstPtr& seen : *paths) {
      if (seen->ToString() == pred->ToString()) return true;
    }
    paths->push_back(pred);
    return true;
  }
  for (const AstPtr& c : pred->children) {
    if (!CollectVarPaths(c, var, paths)) return false;
  }
  return true;
}

AstPtr ReplacePath(const AstPtr& e, const AstPtr& path,
                   const std::string& var) {
  std::string needle = path->ToString();
  return Transform(e, [&](const AstPtr& node) -> AstPtr {
    if (node->kind == AstKind::kPathExpr && node->ToString() == needle) {
      return MakeVarRef(var);
    }
    return node;
  });
}

}  // namespace

AstPtr NormalizeQuantifiers(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kQuantified) return node;
    AstPtr q = std::make_shared<Ast>(*node);
    // (a) Embed the range into a FLWR.
    AstPtr range = q->range;
    AstPtr flwr;
    if (range->kind == AstKind::kFlwr) {
      flwr = range->Clone();
    } else {
      flwr = std::make_shared<Ast>();
      flwr->kind = AstKind::kFlwr;
      Clause for_clause;
      for_clause.kind = Clause::Kind::kFor;
      for_clause.var = q->qvar;
      for_clause.expr = range;
      flwr->clauses.push_back(std::move(for_clause));
      flwr->ret = MakeVarRef(q->qvar);
    }
    // (b) Hoist range-path predicates (the for-clause may carry [..]).
    flwr = HoistPathPredicates(flwr);
    // (c) Unnest relative paths in the range's where clauses.
    UnnestWherePaths(flwr.get());
    // (d) Change the range variable when the satisfies clause accesses the
    //     bound variable through exactly one path (Q5: $b2/@year).
    std::vector<AstPtr> paths;
    bool only_paths = CollectVarPaths(q->satisfies, q->qvar, &paths);
    if (only_paths && paths.size() == 1 && flwr->ret != nullptr &&
        flwr->ret->kind == AstKind::kVarRef) {
      const std::string range_var = flwr->ret->name;
      // The path is rooted at the quantifier variable; re-root it at the
      // range's return variable.
      AstPtr rebased = paths[0]->Clone();
      rebased->children[0] = MakeVarRef(range_var);
      std::string fresh = FreshVar("q");
      Clause value_clause;
      value_clause.kind = Clause::Kind::kFor;
      value_clause.var = fresh;
      value_clause.expr = rebased;
      flwr->clauses.push_back(std::move(value_clause));
      flwr->ret = MakeVarRef(fresh);
      q->satisfies = ReplacePath(q->satisfies, paths[0], q->qvar);
    }
    q->range = flwr;
    return q;
  });
}

namespace {

/// Converts a (possibly predicated) path argument into an equivalent FLWR:
///   $d//bidtuple[itemno = $i]  →
///   for $f in $d//bidtuple where $f/itemno = $i return $f
AstPtr PathArgToFlwr(const AstPtr& arg) {
  auto sub = std::make_shared<Ast>();
  sub->kind = AstKind::kFlwr;
  std::string fresh = FreshVar(
      arg->steps.empty() ? std::string("f") : arg->steps.back().name);
  Clause for_clause;
  for_clause.kind = Clause::Kind::kFor;
  for_clause.var = fresh;
  for_clause.expr = arg;
  sub->clauses.push_back(std::move(for_clause));
  sub->ret = MakeVarRef(fresh);
  AstPtr hoisted = HoistPathPredicates(sub);
  UnnestWherePaths(hoisted.get());
  return hoisted;
}

bool PathHasPredicate(const AstPtr& e) {
  if (e->kind != AstKind::kPathExpr) return false;
  for (const PathStepAst& s : e->steps) {
    if (s.predicate != nullptr) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 2c: aggregate arguments that are predicated paths become FLWRs,
// wherever they occur (let clauses, where clauses, return parts).
// ---------------------------------------------------------------------------

AstPtr NormalizeAggregateArgs(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kFnCall || !IsAggregateFn(node->name) ||
        node->children.size() != 1) {
      return node;
    }
    if (!PathHasPredicate(node->children[0])) return node;
    AstPtr call = std::make_shared<Ast>(*node);
    call->children[0] = PathArgToFlwr(call->children[0]);
    return call;
  });
}

// ---------------------------------------------------------------------------
// Pass 3: aggregates in where clauses → let (the Q6 rewrite)
// ---------------------------------------------------------------------------

AstPtr HoistWhereAggregates(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kFlwr) return node;
    AstPtr flwr = std::make_shared<Ast>(*node);
    std::vector<Clause> out;
    for (const Clause& c : flwr->clauses) {
      if (c.kind != Clause::Kind::kWhere) {
        out.push_back(c);
        continue;
      }
      // Hoist aggregate calls whose argument is itself a query block.
      std::vector<Clause> lets;
      AstPtr pred = Transform(c.expr, [&](const AstPtr& e) -> AstPtr {
        if (e->kind != AstKind::kFnCall || !IsAggregateFn(e->name) ||
            e->children.size() != 1) {
          return e;
        }
        if (!ContainsFlwrOrPredicatePath(e->children[0])) return e;
        AstPtr call = std::make_shared<Ast>(*e);
        // Path arguments become FLWRs first:
        // count($d//bidtuple[itemno = $i1]) →
        // count(for $f in $d//bidtuple where $f/itemno = $i1 return $f).
        if (call->children[0]->kind == AstKind::kPathExpr) {
          call->children[0] = PathArgToFlwr(call->children[0]);
        }
        std::string var = FreshVar("agg");
        Clause let;
        let.kind = Clause::Kind::kLet;
        let.var = var;
        let.expr = call;
        lets.push_back(std::move(let));
        return MakeVarRef(var);
      });
      for (Clause& let : lets) out.push_back(std::move(let));
      Clause where;
      where.kind = Clause::Kind::kWhere;
      where.expr = pred;
      out.push_back(std::move(where));
    }
    flwr->clauses = std::move(out);
    return flwr;
  });
}

// ---------------------------------------------------------------------------
// Pass 4: nested FLWRs in return clauses → let (the Q1 rewrite)
// ---------------------------------------------------------------------------

AstPtr HoistFromReturn(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kFlwr || node->ret == nullptr) return node;
    AstPtr flwr = std::make_shared<Ast>(*node);
    std::vector<Clause> lets;
    // Recursive: nested constructors inside the return clause are walked
    // too, so <r><min>{ FLWR }</min></r> hoists the inner block.
    std::function<void(CtorPart&)> hoist_part = [&](CtorPart& part) {
      if (part.is_literal || part.expr == nullptr) return;
      if (part.expr->kind == AstKind::kElementCtor) {
        AstPtr ctor = part.expr->Clone();
        for (auto& [name, parts] : ctor->attributes) {
          for (CtorPart& p : parts) hoist_part(p);
        }
        for (CtorPart& p : ctor->content) hoist_part(p);
        part.expr = ctor;
        return;
      }
      bool needs_hoist =
          part.expr->kind == AstKind::kFlwr ||
          (part.expr->kind == AstKind::kFnCall &&
           IsAggregateFn(part.expr->name) &&
           ContainsFlwrOrPredicatePath(part.expr));
      if (!needs_hoist) return;
      std::string var = FreshVar("t");
      Clause let;
      let.kind = Clause::Kind::kLet;
      let.var = var;
      let.expr = part.expr;
      lets.push_back(std::move(let));
      part.expr = MakeVarRef(var);
    };
    if (flwr->ret->kind == AstKind::kElementCtor) {
      AstPtr ctor = flwr->ret->Clone();
      for (auto& [name, parts] : ctor->attributes) {
        for (CtorPart& p : parts) hoist_part(p);
      }
      for (CtorPart& p : ctor->content) hoist_part(p);
      flwr->ret = ctor;
    }
    if (!lets.empty()) {
      for (Clause& let : lets) flwr->clauses.push_back(std::move(let));
    }
    return flwr;
  });
}

// ---------------------------------------------------------------------------
// Pass 5: let $v := FLWR … agg($v) (single use) → let $v := agg(FLWR)
// ---------------------------------------------------------------------------

AstPtr FoldLetAggregates(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kFlwr) return node;
    AstPtr flwr = std::make_shared<Ast>(*node);
    for (size_t i = 0; i < flwr->clauses.size(); ++i) {
      Clause& let = flwr->clauses[i];
      if (let.kind != Clause::Kind::kLet || let.expr == nullptr ||
          let.expr->kind != AstKind::kFlwr) {
        continue;
      }
      // Count uses of the let variable; find the single aggregate use.
      size_t uses = 0;
      AstPtr* agg_site = nullptr;
      std::function<void(AstPtr&)> scan = [&](AstPtr& e) {
        if (e == nullptr) return;
        if (e->kind == AstKind::kVarRef && e->name == let.var) {
          ++uses;
          return;
        }
        if (e->kind == AstKind::kFnCall && IsAggregateFn(e->name) &&
            e->children.size() == 1 &&
            e->children[0]->kind == AstKind::kVarRef &&
            e->children[0]->name == let.var) {
          ++uses;
          agg_site = &e;
          return;
        }
        for (AstPtr& c : e->children) scan(c);
        for (PathStepAst& s : e->steps) scan(s.predicate);
        for (Clause& c : e->clauses) scan(c.expr);
        scan(e->ret);
        scan(e->range);
        scan(e->satisfies);
        for (auto& [name, parts] : e->attributes) {
          for (CtorPart& p : parts) scan(p.expr);
        }
        for (CtorPart& p : e->content) scan(p.expr);
      };
      for (size_t j = i + 1; j < flwr->clauses.size(); ++j) {
        scan(flwr->clauses[j].expr);
      }
      scan(flwr->ret);
      if (uses == 1 && agg_site != nullptr) {
        AstPtr call = std::make_shared<Ast>(**agg_site);
        call->children[0] = let.expr;
        let.expr = call;
        *agg_site = MakeVarRef(let.var);
      }
    }
    return flwr;
  });
}

AstPtr NormalizeFlwrReturns(const AstPtr& query) {
  return Transform(query, [](const AstPtr& node) -> AstPtr {
    if (node->kind != AstKind::kFlwr || node->ret == nullptr) return node;
    if (node->ret->kind == AstKind::kVarRef ||
        node->ret->kind == AstKind::kElementCtor) {
      return node;
    }
    // The paper's Q1 normalization: `return $b2/title` becomes
    // `let $t2 := $b2/title ... return $t2`.
    AstPtr flwr = std::make_shared<Ast>(*node);
    std::string var = FreshVar("r");
    Clause let;
    let.kind = Clause::Kind::kLet;
    let.var = var;
    let.expr = flwr->ret;
    flwr->clauses.push_back(std::move(let));
    flwr->ret = MakeVarRef(var);
    return flwr;
  });
}

AstPtr Normalize(const AstPtr& query) {
  AstPtr out = InlineDocLets(query);
  out = HoistPathPredicates(out);
  out = NormalizeQuantifiers(out);
  out = NormalizeAggregateArgs(out);
  out = HoistWhereAggregates(out);
  out = BindWherePaths(out);
  out = HoistFromReturn(out);
  out = FoldLetAggregates(out);
  out = NormalizeFlwrReturns(out);
  return out;
}

}  // namespace nalq::xquery
