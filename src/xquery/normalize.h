// Source-level normalization (paper Sec. 3).
//
// Before translation the query is normalized so that every nested query
// block sits in its own `let` clause and correlation predicates live in
// `where` clauses:
//
//   1. trailing XPath predicates of for-ranges move into where clauses
//      (step 4 of the paper's list),
//   2. quantifier range expressions are embedded into new FLWR expressions
//      and the range variable is changed so the range returns the values the
//      satisfies clause actually tests (steps 1/2; the Q5 rewrite),
//   3. aggregate / exists / empty calls in where clauses are hoisted into
//      new `let` variables (step 2; the Q6 rewrite),
//   4. nested FLWRs (and aggregates over them) in return clauses are hoisted
//      into new `let` variables (step 2; the Q1/Q2 rewrite),
//   5. `let $v := FLWR ... agg($v)` with a single use folds to
//      `let $v := agg(FLWR)` so translation yields χ_{v:agg(σ...)} directly.
//
// All rewrites are pure AST→AST functions; `Normalize` composes them.
#ifndef NALQ_XQUERY_NORMALIZE_H_
#define NALQ_XQUERY_NORMALIZE_H_

#include "xquery/ast.h"

namespace nalq::xquery {

/// Full normalization pipeline. The input AST is not modified.
AstPtr Normalize(const AstPtr& query);

// Individual passes (exposed for testing).
AstPtr InlineDocLets(const AstPtr& query);
AstPtr BindWherePaths(const AstPtr& query);
AstPtr HoistPathPredicates(const AstPtr& query);
AstPtr NormalizeQuantifiers(const AstPtr& query);
AstPtr NormalizeAggregateArgs(const AstPtr& query);
AstPtr HoistWhereAggregates(const AstPtr& query);
AstPtr HoistFromReturn(const AstPtr& query);
AstPtr FoldLetAggregates(const AstPtr& query);
AstPtr NormalizeFlwrReturns(const AstPtr& query);

/// Replaces the context item (kContextRef) with a reference to `var`.
AstPtr RebaseContext(const AstPtr& e, const std::string& var);

/// Generates a fresh variable name with the given prefix, unique within this
/// process.
std::string FreshVar(const std::string& prefix);

}  // namespace nalq::xquery

#endif  // NALQ_XQUERY_NORMALIZE_H_
