#include "xquery/lexer.h"

#include <cctype>

namespace nalq::xquery {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

}  // namespace

const Token& Lexer::Peek() {
  if (!has_current_) Lex();
  return current_;
}

Token Lexer::Next() {
  if (!has_current_) Lex();
  has_current_ = false;
  return current_;
}

bool Lexer::PeekIsName(std::string_view keyword) {
  const Token& t = Peek();
  return t.kind == TokKind::kName && t.text == keyword;
}

size_t Lexer::PeekBegin() { return Peek().begin; }

void Lexer::ResetTo(size_t pos) {
  pos_ = pos;
  has_current_ = false;
}

void Lexer::SkipWsAndComments() {
  for (;;) {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    if (in_.substr(pos_, 2) == "(:") {
      size_t end = in_.find(":)", pos_ + 2);
      if (end == std::string_view::npos) {
        throw LexError("unterminated comment", pos_);
      }
      pos_ = end + 2;
      continue;
    }
    return;
  }
}

void Lexer::Lex() {
  SkipWsAndComments();
  current_ = Token();
  current_.begin = pos_;
  has_current_ = true;
  if (pos_ >= in_.size()) {
    current_.kind = TokKind::kEof;
    current_.end = pos_;
    return;
  }
  char c = in_[pos_];
  auto single = [&](TokKind kind) {
    current_.kind = kind;
    ++pos_;
    current_.end = pos_;
  };
  switch (c) {
    case '(':
      single(TokKind::kLParen);
      return;
    case ')':
      single(TokKind::kRParen);
      return;
    case ',':
      single(TokKind::kComma);
      return;
    case '{':
      single(TokKind::kLBrace);
      return;
    case '}':
      single(TokKind::kRBrace);
      return;
    case '[':
      single(TokKind::kLBracket);
      return;
    case ']':
      single(TokKind::kRBracket);
      return;
    case '@':
      single(TokKind::kAt);
      return;
    case '*':
      single(TokKind::kStar);
      return;
    case '+':
      single(TokKind::kPlus);
      return;
    case '-':
      single(TokKind::kMinus);
      return;
    case '.':
      single(TokKind::kDot);
      return;
    case '=':
      single(TokKind::kEq);
      return;
    case '/':
      if (in_.substr(pos_, 2) == "//") {
        current_.kind = TokKind::kSlashSlash;
        pos_ += 2;
      } else {
        current_.kind = TokKind::kSlash;
        ++pos_;
      }
      current_.end = pos_;
      return;
    case ':':
      if (in_.substr(pos_, 2) == ":=") {
        current_.kind = TokKind::kAssign;
        pos_ += 2;
        current_.end = pos_;
        return;
      }
      throw LexError("unexpected ':'", pos_);
    case '!':
      if (in_.substr(pos_, 2) == "!=") {
        current_.kind = TokKind::kNe;
        pos_ += 2;
        current_.end = pos_;
        return;
      }
      throw LexError("unexpected '!'", pos_);
    case '<':
      if (in_.substr(pos_, 2) == "<=") {
        current_.kind = TokKind::kLe;
        pos_ += 2;
      } else {
        current_.kind = TokKind::kLt;
        ++pos_;
      }
      current_.end = pos_;
      return;
    case '>':
      if (in_.substr(pos_, 2) == ">=") {
        current_.kind = TokKind::kGe;
        pos_ += 2;
      } else {
        current_.kind = TokKind::kGt;
        ++pos_;
      }
      current_.end = pos_;
      return;
    case '$': {
      ++pos_;
      if (pos_ >= in_.size() || !IsNameStart(in_[pos_])) {
        throw LexError("expected variable name after '$'", pos_);
      }
      size_t start = pos_;
      while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
      current_.kind = TokKind::kVar;
      current_.text = std::string(in_.substr(start, pos_ - start));
      current_.end = pos_;
      return;
    }
    case '"':
    case '\'': {
      char quote = c;
      ++pos_;
      std::string text;
      while (pos_ < in_.size() && in_[pos_] != quote) {
        text += in_[pos_++];
      }
      if (pos_ >= in_.size()) {
        throw LexError("unterminated string literal", current_.begin);
      }
      ++pos_;
      current_.kind = TokKind::kString;
      current_.text = std::move(text);
      current_.end = pos_;
      return;
    }
    default:
      break;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    size_t start = pos_;
    bool is_integer = true;
    while (pos_ < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    if (pos_ < in_.size() && in_[pos_] == '.' && pos_ + 1 < in_.size() &&
        std::isdigit(static_cast<unsigned char>(in_[pos_ + 1]))) {
      is_integer = false;
      ++pos_;
      while (pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
    }
    current_.kind = TokKind::kNumber;
    current_.is_integer = is_integer;
    current_.number = std::stod(std::string(in_.substr(start, pos_ - start)));
    current_.end = pos_;
    return;
  }
  if (IsNameStart(c)) {
    size_t start = pos_;
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) ++pos_;
    current_.kind = TokKind::kName;
    current_.text = std::string(in_.substr(start, pos_ - start));
    current_.end = pos_;
    return;
  }
  throw LexError(std::string("unexpected character '") + c + "'", pos_);
}

}  // namespace nalq::xquery
