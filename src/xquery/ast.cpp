#include "xquery/ast.h"

namespace nalq::xquery {

namespace {

CtorPart ClonePart(const CtorPart& p) {
  CtorPart out = p;
  if (p.expr != nullptr) out.expr = p.expr->Clone();
  return out;
}

}  // namespace

AstPtr Ast::Clone() const {
  auto out = std::make_shared<Ast>();
  out->kind = kind;
  out->literal = literal;
  out->name = name;
  out->cmp = cmp;
  out->steps.reserve(steps.size());
  for (const PathStepAst& s : steps) {
    PathStepAst copy = s;
    if (s.predicate != nullptr) copy.predicate = s.predicate->Clone();
    out->steps.push_back(std::move(copy));
  }
  out->clauses.reserve(clauses.size());
  for (const Clause& c : clauses) {
    Clause copy = c;
    if (c.expr != nullptr) copy.expr = c.expr->Clone();
    out->clauses.push_back(std::move(copy));
  }
  if (ret != nullptr) out->ret = ret->Clone();
  out->order_by.reserve(order_by.size());
  for (const auto& [key, desc] : order_by) {
    out->order_by.emplace_back(key->Clone(), desc);
  }
  out->quant = quant;
  out->qvar = qvar;
  if (range != nullptr) out->range = range->Clone();
  if (satisfies != nullptr) out->satisfies = satisfies->Clone();
  out->tag = tag;
  out->attributes.reserve(attributes.size());
  for (const auto& [name_, parts] : attributes) {
    std::vector<CtorPart> copied;
    copied.reserve(parts.size());
    for (const CtorPart& p : parts) copied.push_back(ClonePart(p));
    out->attributes.emplace_back(name_, std::move(copied));
  }
  out->content.reserve(content.size());
  for (const CtorPart& p : content) out->content.push_back(ClonePart(p));
  out->children.reserve(children.size());
  for (const AstPtr& c : children) out->children.push_back(c->Clone());
  return out;
}

std::string Ast::ToString() const {
  switch (kind) {
    case AstKind::kLiteral:
      return literal.DebugString();
    case AstKind::kVarRef:
      return "$" + name;
    case AstKind::kContextRef:
      return ".";
    case AstKind::kCmp:
      return children[0]->ToString() + " " +
             std::string(nal::CmpOpName(cmp)) + " " + children[1]->ToString();
    case AstKind::kAnd:
      return "(" + children[0]->ToString() + " and " +
             children[1]->ToString() + ")";
    case AstKind::kOr:
      return "(" + children[0]->ToString() + " or " + children[1]->ToString() +
             ")";
    case AstKind::kFnCall: {
      std::string out = name + "(";
      bool first = true;
      for (const AstPtr& c : children) {
        if (!first) out += ", ";
        out += c->ToString();
        first = false;
      }
      return out + ")";
    }
    case AstKind::kPathExpr: {
      std::string out = children[0]->kind == AstKind::kContextRef
                            ? ""
                            : children[0]->ToString();
      for (const PathStepAst& s : steps) {
        out += s.axis == xml::Axis::kDescendant ? "//" : "/";
        if (s.axis == xml::Axis::kAttribute) out += "@";
        out += s.name;
        if (s.predicate != nullptr) out += "[" + s.predicate->ToString() + "]";
      }
      return out;
    }
    case AstKind::kQuantified:
      return std::string(quant == nal::QuantKind::kSome ? "some" : "every") +
             " $" + qvar + " in " + range->ToString() + " satisfies " +
             satisfies->ToString();
    case AstKind::kArith:
      return "(" + children[0]->ToString() + " " + name + " " +
             children[1]->ToString() + ")";
    case AstKind::kCond:
      return "if (" + children[0]->ToString() + ") then " +
             children[1]->ToString() + " else " + children[2]->ToString();
    case AstKind::kFlwr: {
      std::string out;
      for (const Clause& c : clauses) {
        switch (c.kind) {
          case Clause::Kind::kFor:
            out += "for $" + c.var + " in " + c.expr->ToString() + " ";
            break;
          case Clause::Kind::kLet:
            out += "let $" + c.var + " := " + c.expr->ToString() + " ";
            break;
          case Clause::Kind::kWhere:
            out += "where " + c.expr->ToString() + " ";
            break;
        }
      }
      if (!order_by.empty()) {
        out += "order by ";
        bool first = true;
        for (const auto& [key, desc] : order_by) {
          if (!first) out += ", ";
          out += key->ToString();
          if (desc) out += " descending";
          first = false;
        }
        out += " ";
      }
      out += "return " + (ret != nullptr ? ret->ToString() : "()");
      return out;
    }
    case AstKind::kElementCtor: {
      std::string out = "<" + tag;
      for (const auto& [attr_name, parts] : attributes) {
        out += " " + attr_name + "=\"";
        for (const CtorPart& p : parts) {
          out += p.is_literal ? p.text : "{" + p.expr->ToString() + "}";
        }
        out += "\"";
      }
      out += ">";
      for (const CtorPart& p : content) {
        out += p.is_literal ? p.text : "{ " + p.expr->ToString() + " }";
      }
      return out + "</" + tag + ">";
    }
  }
  return "?";
}

AstPtr MakeVarRef(std::string name) {
  auto out = std::make_shared<Ast>();
  out->kind = AstKind::kVarRef;
  out->name = std::move(name);
  return out;
}

AstPtr MakeLiteral(nal::Value v) {
  auto out = std::make_shared<Ast>();
  out->kind = AstKind::kLiteral;
  out->literal = std::move(v);
  return out;
}

AstPtr MakeContextRef() {
  auto out = std::make_shared<Ast>();
  out->kind = AstKind::kContextRef;
  return out;
}

AstPtr MakeCmpAst(nal::CmpOp op, AstPtr lhs, AstPtr rhs) {
  auto out = std::make_shared<Ast>();
  out->kind = AstKind::kCmp;
  out->cmp = op;
  out->children = {std::move(lhs), std::move(rhs)};
  return out;
}

AstPtr MakeAndAst(AstPtr lhs, AstPtr rhs) {
  auto out = std::make_shared<Ast>();
  out->kind = AstKind::kAnd;
  out->children = {std::move(lhs), std::move(rhs)};
  return out;
}

AstPtr MakeOrAst(AstPtr lhs, AstPtr rhs) {
  auto out = std::make_shared<Ast>();
  out->kind = AstKind::kOr;
  out->children = {std::move(lhs), std::move(rhs)};
  return out;
}

AstPtr MakeFnCallAst(std::string name, std::vector<AstPtr> args) {
  auto out = std::make_shared<Ast>();
  out->kind = AstKind::kFnCall;
  out->name = std::move(name);
  out->children = std::move(args);
  return out;
}

AstPtr MakePathAst(AstPtr base, std::vector<PathStepAst> steps) {
  auto out = std::make_shared<Ast>();
  out->kind = AstKind::kPathExpr;
  out->children = {std::move(base)};
  out->steps = std::move(steps);
  return out;
}

}  // namespace nalq::xquery
