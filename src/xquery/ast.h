// Abstract syntax for the XQuery subset of the paper:
// FLWR expressions (for/let/where/return), quantifiers (some/every),
// path expressions with predicates, comparisons, boolean connectives,
// function calls and direct element constructors with enclosed expressions.
#ifndef NALQ_XQUERY_AST_H_
#define NALQ_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "nal/expr.h"
#include "xml/xpath.h"

namespace nalq::xquery {

struct Ast;
using AstPtr = std::shared_ptr<Ast>;

enum class AstKind : uint8_t {
  kFlwr,        ///< clauses + return expression
  kVarRef,      ///< $x
  kLiteral,     ///< string or numeric literal
  kPathExpr,    ///< base expression + steps (each step may carry a predicate)
  kContextRef,  ///< the implicit context item inside a path predicate
  kCmp,
  kAnd,
  kOr,
  kArith,       ///< + - * div mod (operator text in `name`)
  kCond,        ///< if (c) then e1 else e2
  kFnCall,
  kQuantified,  ///< some/every $v in range satisfies pred
  kElementCtor,
};

/// One path step; `predicate` (if any) is an expression whose relative paths
/// are rooted at kContextRef nodes (e.g. book[author = $a1]).
struct PathStepAst {
  xml::Axis axis = xml::Axis::kChild;
  std::string name;
  AstPtr predicate;
};

/// A fragment of element-constructor content: literal text or an enclosed
/// expression { e }.
struct CtorPart {
  bool is_literal = true;
  std::string text;
  AstPtr expr;
};

/// One FLWR clause.
struct Clause {
  enum class Kind : uint8_t { kFor, kLet, kWhere } kind = Kind::kFor;
  std::string var;  // without '$'; empty for where
  AstPtr expr;
};

struct Ast {
  AstKind kind = AstKind::kLiteral;

  // kLiteral
  nal::Value literal;
  // kVarRef / kFnCall name
  std::string name;
  // kCmp
  nal::CmpOp cmp = nal::CmpOp::kEq;
  // kPathExpr: children[0] = base (kVarRef/kFnCall/kContextRef)
  std::vector<PathStepAst> steps;
  // kFlwr
  std::vector<Clause> clauses;
  AstPtr ret;
  /// order by keys (expression, descending?) — evaluated after the where
  /// clauses, before return (an extension beyond the paper, which "does not
  /// treat the order by clause"; it compiles to the Sort operator).
  std::vector<std::pair<AstPtr, bool>> order_by;
  // kQuantified
  nal::QuantKind quant = nal::QuantKind::kSome;
  std::string qvar;
  AstPtr range;
  AstPtr satisfies;
  // kElementCtor
  std::string tag;
  std::vector<std::pair<std::string, std::vector<CtorPart>>> attributes;
  std::vector<CtorPart> content;

  // kCmp/kAnd/kOr operands, kFnCall arguments, kPathExpr base.
  std::vector<AstPtr> children;

  AstPtr Clone() const;
  /// Source-like rendering (used in tests and error messages).
  std::string ToString() const;
};

AstPtr MakeVarRef(std::string name);
AstPtr MakeLiteral(nal::Value v);
AstPtr MakeContextRef();
AstPtr MakeCmpAst(nal::CmpOp op, AstPtr lhs, AstPtr rhs);
AstPtr MakeAndAst(AstPtr lhs, AstPtr rhs);
AstPtr MakeOrAst(AstPtr lhs, AstPtr rhs);
AstPtr MakeFnCallAst(std::string name, std::vector<AstPtr> args);
AstPtr MakePathAst(AstPtr base, std::vector<PathStepAst> steps);

}  // namespace nalq::xquery

#endif  // NALQ_XQUERY_AST_H_
