// Tokenizer for the XQuery subset. Direct element constructors are
// context-dependent ('<' can open a tag or be a comparison), so the lexer
// exposes raw character access; the parser switches into raw mode when a
// constructor can start.
#ifndef NALQ_XQUERY_LEXER_H_
#define NALQ_XQUERY_LEXER_H_

#include <stdexcept>
#include <string>
#include <string_view>

namespace nalq::xquery {

enum class TokKind : uint8_t {
  kEof,
  kVar,       // $name
  kName,      // QName (includes keywords; the parser disambiguates)
  kString,
  kNumber,
  kLParen,
  kRParen,
  kComma,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSlash,
  kSlashSlash,
  kAt,
  kStar,
  kPlus,
  kMinus,
  kDot,
  kAssign,  // :=
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;   // var/name/string content
  double number = 0;  // kNumber
  bool is_integer = false;
  size_t begin = 0;
  size_t end = 0;
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)) {}
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : in_(input) {}

  /// Current token (lexed lazily).
  const Token& Peek();
  /// Consumes and returns the current token.
  Token Next();
  /// True iff the current token is a name with exactly this text.
  bool PeekIsName(std::string_view keyword);

  /// Raw-mode support for element constructors: byte offset of the current
  /// token's first character.
  size_t PeekBegin();
  /// Restarts lexing from byte offset `pos`.
  void ResetTo(size_t pos);
  std::string_view input() const { return in_; }

 private:
  void Lex();
  void SkipWsAndComments();

  std::string_view in_;
  size_t pos_ = 0;
  Token current_;
  bool has_current_ = false;
};

}  // namespace nalq::xquery

#endif  // NALQ_XQUERY_LEXER_H_
