// Synthetic document generator — the ToXgene substitute (paper Sec. 5).
//
// Generates the six XQuery use-case documents against the DTDs of Fig. 5
// with the paper's size parameters (100/1000/10000 elements, 2/5/10 authors
// per book, |items| = |bids|/5, 1–10 users per bid), plus a DBLP-like
// bibliography in which authors occur under several publication kinds —
// the document shape that invalidates Eqv. 5's side condition (Sec. 5.1).
#ifndef NALQ_DATAGEN_DATAGEN_H_
#define NALQ_DATAGEN_DATAGEN_H_

#include <cstddef>
#include <string>

namespace nalq::datagen {

// DTDs from the paper's Fig. 5 (internal-subset form, parseable by
// xml::Dtd::Parse).
extern const char kBibDtd[];
extern const char kReviewsDtd[];
extern const char kPricesDtd[];
extern const char kUsersDtd[];
extern const char kItemsDtd[];
extern const char kBidsDtd[];
extern const char kDblpDtd[];

struct BibOptions {
  size_t books = 100;
  int authors_per_book = 2;
  /// Size of the author pool; 0 → same as `books` (the paper's setting:
  /// "100, 1000, or 10000 books and authors").
  size_t author_pool = 0;
  /// Every `suciu_every`-th author gets the last name "Suciu<i>" so the
  /// Sec. 5.4 query selects a stable fraction; 0 disables.
  size_t suciu_every = 20;
  unsigned seed = 42;
};

/// bib.xml: books with title, authors, publisher, price and a year
/// attribute between 1990 and 2003.
std::string GenerateBib(const BibOptions& options);

/// prices.xml: `entries` book elements; roughly two price entries (sources)
/// per distinct title.
std::string GeneratePrices(size_t entries, unsigned seed = 42);

/// reviews.xml: `entries` review entries whose titles overlap ~50% with the
/// bib titles of the same index space.
std::string GenerateReviews(size_t entries, unsigned seed = 42);

struct AuctionOptions {
  size_t bids = 100;
  /// 0 → bids / 5 (the paper: "the number of items equals 1/5 times the
  /// number of bids").
  size_t items = 0;
  /// 0 → derived: between 1 and 10 users per bid (paper Fig. 6 text).
  size_t users = 0;
  unsigned seed = 42;
};

std::string GenerateUsers(const AuctionOptions& options);
std::string GenerateItems(const AuctionOptions& options);
std::string GenerateBids(const AuctionOptions& options);

struct DblpOptions {
  size_t publications = 1000;
  /// Fraction (percent) of publications that are books; the rest are
  /// articles and theses, so many authors never write a book.
  int book_percent = 20;
  unsigned seed = 42;
};

/// DBLP-like bibliography (publications of mixed kinds).
std::string GenerateDblp(const DblpOptions& options);

}  // namespace nalq::datagen

#endif  // NALQ_DATAGEN_DATAGEN_H_
