#include "datagen/datagen.h"

#include <random>

namespace nalq::datagen {

const char kBibDtd[] = R"(
<!ELEMENT bib (book*)>
<!ELEMENT book (title, (author+ | editor+), publisher, price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT author (last, first)>
<!ELEMENT editor (last, first, affiliation)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
)";

const char kReviewsDtd[] = R"(
<!ELEMENT reviews (entry*)>
<!ELEMENT entry (title, price, review)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT review (#PCDATA)>
)";

const char kPricesDtd[] = R"(
<!ELEMENT prices (book*)>
<!ELEMENT book (title, source, price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT price (#PCDATA)>
)";

const char kUsersDtd[] = R"(
<!ELEMENT users (usertuple*)>
<!ELEMENT usertuple (userid, name, rating?)>
<!ELEMENT userid (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT rating (#PCDATA)>
)";

const char kItemsDtd[] = R"(
<!ELEMENT items (itemtuple*)>
<!ELEMENT itemtuple (itemno, description, offered_by, startdate?, enddate?,
                     reserveprice?)>
<!ELEMENT itemno (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT offered_by (#PCDATA)>
<!ELEMENT startdate (#PCDATA)>
<!ELEMENT enddate (#PCDATA)>
<!ELEMENT reserveprice (#PCDATA)>
)";

const char kBidsDtd[] = R"(
<!ELEMENT bids (bidtuple*)>
<!ELEMENT bidtuple (userid, itemno, bid, biddate)>
<!ELEMENT userid (#PCDATA)>
<!ELEMENT itemno (#PCDATA)>
<!ELEMENT bid (#PCDATA)>
<!ELEMENT biddate (#PCDATA)>
)";

const char kDblpDtd[] = R"(
<!ELEMENT dblp ((book | article | phdthesis)*)>
<!ELEMENT book (author+, title, publisher, price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT article (author+, title, journal)>
<!ELEMENT phdthesis (author, title, school)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT school (#PCDATA)>
)";

namespace {

void AppendElement(std::string* out, const char* tag,
                   const std::string& text) {
  *out += '<';
  *out += tag;
  *out += '>';
  *out += text;
  *out += "</";
  *out += tag;
  *out += ">\n";
}

std::string AuthorLast(size_t i, size_t suciu_every) {
  if (suciu_every != 0 && i % suciu_every == suciu_every - 1) {
    return "Suciu" + std::to_string(i);
  }
  return "Last" + std::to_string(i);
}

}  // namespace

std::string GenerateBib(const BibOptions& options) {
  std::mt19937 rng(options.seed);
  size_t pool = options.author_pool == 0 ? options.books : options.author_pool;
  std::uniform_int_distribution<int> year(1990, 2003);
  std::string out = "<bib>\n";
  out.reserve(options.books * 200);
  for (size_t b = 0; b < options.books; ++b) {
    out += "<book year=\"" + std::to_string(year(rng)) + "\">\n";
    AppendElement(&out, "title", "Title" + std::to_string(b));
    // Authors are assigned round-robin with stride so every pool author
    // appears and each author accumulates ~authors_per_book books.
    for (int j = 0; j < options.authors_per_book; ++j) {
      size_t a = (b + j * (pool / options.authors_per_book + 1)) % pool;
      out += "<author>\n";
      AppendElement(&out, "last", AuthorLast(a, options.suciu_every));
      AppendElement(&out, "first", "First" + std::to_string(a));
      out += "</author>\n";
    }
    AppendElement(&out, "publisher",
                  "Publisher" + std::to_string(b % 17));
    AppendElement(&out, "price",
                  std::to_string(20 + static_cast<int>(b % 80)) + "." +
                      std::to_string(b % 10) + "0");
    out += "</book>\n";
  }
  out += "</bib>\n";
  return out;
}

std::string GeneratePrices(size_t entries, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> cents(0, 99);
  size_t titles = entries == 0 ? 0 : (entries + 1) / 2;
  std::string out = "<prices>\n";
  out.reserve(entries * 120);
  for (size_t i = 0; i < entries; ++i) {
    out += "<book>\n";
    AppendElement(&out, "title", "Title" + std::to_string(i % titles));
    AppendElement(&out, "source", "source" + std::to_string(i % 7));
    int c = cents(rng);
    AppendElement(&out, "price",
                  std::to_string(10 + static_cast<int>(i % 90)) + "." +
                      (c < 10 ? "0" : "") + std::to_string(c));
    out += "</book>\n";
  }
  out += "</prices>\n";
  return out;
}

std::string GenerateReviews(size_t entries, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> cents(0, 99);
  std::string out = "<reviews>\n";
  out.reserve(entries * 140);
  for (size_t i = 0; i < entries; ++i) {
    out += "<entry>\n";
    // Even indices match bib titles; odd ones review unknown books, so about
    // half the bib books have a review.
    AppendElement(&out, "title",
                  i % 2 == 0 ? "Title" + std::to_string(i)
                             : "Unlisted" + std::to_string(i));
    int c = cents(rng);
    AppendElement(&out, "price",
                  std::to_string(10 + static_cast<int>(i % 90)) + "." +
                      (c < 10 ? "0" : "") + std::to_string(c));
    AppendElement(&out, "review",
                  "A thorough review of volume " + std::to_string(i) +
                      " with detailed commentary.");
    out += "</entry>\n";
  }
  out += "</reviews>\n";
  return out;
}

std::string GenerateUsers(const AuctionOptions& options) {
  size_t users = options.users != 0 ? options.users
                                    : std::max<size_t>(1, options.bids / 3);
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<int> rating(1, 10);
  std::string out = "<users>\n";
  for (size_t u = 0; u < users; ++u) {
    out += "<usertuple>\n";
    AppendElement(&out, "userid", "U" + std::to_string(u));
    AppendElement(&out, "name", "User Name " + std::to_string(u));
    if (u % 3 != 0) {
      AppendElement(&out, "rating", std::to_string(rating(rng)));
    }
    out += "</usertuple>\n";
  }
  out += "</users>\n";
  return out;
}

std::string GenerateItems(const AuctionOptions& options) {
  size_t items = options.items != 0 ? options.items
                                    : std::max<size_t>(1, options.bids / 5);
  size_t users = options.users != 0 ? options.users
                                    : std::max<size_t>(1, options.bids / 3);
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<int> reserve(50, 500);
  std::string out = "<items>\n";
  for (size_t i = 0; i < items; ++i) {
    out += "<itemtuple>\n";
    AppendElement(&out, "itemno", "I" + std::to_string(i));
    AppendElement(&out, "description", "Item number " + std::to_string(i));
    AppendElement(&out, "offered_by", "U" + std::to_string(i % users));
    if (i % 2 == 0) AppendElement(&out, "startdate", "2003-01-15");
    if (i % 2 == 0) AppendElement(&out, "enddate", "2003-02-15");
    if (i % 4 == 0) {
      AppendElement(&out, "reserveprice", std::to_string(reserve(rng)));
    }
    out += "</itemtuple>\n";
  }
  out += "</items>\n";
  return out;
}

std::string GenerateBids(const AuctionOptions& options) {
  size_t items = options.items != 0 ? options.items
                                    : std::max<size_t>(1, options.bids / 5);
  size_t users = options.users != 0 ? options.users
                                    : std::max<size_t>(1, options.bids / 3);
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<size_t> item(0, items - 1);
  std::uniform_int_distribution<size_t> user(0, users - 1);
  std::uniform_int_distribution<int> amount(10, 999);
  std::string out = "<bids>\n";
  out.reserve(options.bids * 130);
  for (size_t b = 0; b < options.bids; ++b) {
    out += "<bidtuple>\n";
    AppendElement(&out, "userid", "U" + std::to_string(user(rng)));
    AppendElement(&out, "itemno", "I" + std::to_string(item(rng)));
    AppendElement(&out, "bid", std::to_string(amount(rng)));
    AppendElement(&out, "biddate",
                  "2003-0" + std::to_string(1 + b % 9) + "-" +
                      (b % 28 + 1 < 10 ? "0" : "") +
                      std::to_string(b % 28 + 1));
    out += "</bidtuple>\n";
  }
  out += "</bids>\n";
  return out;
}

std::string GenerateDblp(const DblpOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<int> year(1990, 2003);
  std::uniform_int_distribution<int> percent(0, 99);
  size_t authors = std::max<size_t>(1, options.publications / 2);
  std::string out = "<dblp>\n";
  out.reserve(options.publications * 160);
  for (size_t p = 0; p < options.publications; ++p) {
    int kind = percent(rng);
    size_t a1 = (p * 7) % authors;
    size_t a2 = (p * 13 + 1) % authors;
    if (kind < options.book_percent) {
      out += "<book year=\"" + std::to_string(year(rng)) + "\">\n";
      AppendElement(&out, "author", "Author " + std::to_string(a1));
      AppendElement(&out, "author", "Author " + std::to_string(a2));
      AppendElement(&out, "title", "Book Title " + std::to_string(p));
      AppendElement(&out, "publisher", "Pub" + std::to_string(p % 11));
      AppendElement(&out, "price",
                    std::to_string(25 + static_cast<int>(p % 60)) + ".00");
      out += "</book>\n";
    } else if (kind < 85) {
      out += "<article>\n";
      AppendElement(&out, "author", "Author " + std::to_string(a1));
      AppendElement(&out, "author", "Author " + std::to_string(a2));
      AppendElement(&out, "title", "Article Title " + std::to_string(p));
      AppendElement(&out, "journal", "Journal " + std::to_string(p % 23));
      out += "</article>\n";
    } else {
      out += "<phdthesis>\n";
      AppendElement(&out, "author", "Author " + std::to_string(a1));
      AppendElement(&out, "title", "Thesis Title " + std::to_string(p));
      AppendElement(&out, "school", "University " + std::to_string(p % 13));
      out += "</phdthesis>\n";
    }
  }
  out += "</dblp>\n";
  return out;
}

}  // namespace nalq::datagen
