#include "rewrite/provenance.h"

namespace nalq::rewrite {

namespace {

using nal::AlgebraOp;
using nal::Expr;
using nal::ExprKind;
using nal::OpKind;
using nal::Symbol;

/// Provenance of a scalar expression given the provenance of the attributes
/// it references.
AttrProvenance ExprProvenance(const Expr& e, const ProvenanceMap& env) {
  AttrProvenance out;
  switch (e.kind) {
    case ExprKind::kAttrRef: {
      auto it = env.find(e.attr);
      if (it != env.end()) return it->second;
      return out;
    }
    case ExprKind::kFnCall: {
      if ((e.fn == "doc" || e.fn == "document") && e.children.size() == 1 &&
          e.children[0]->kind == ExprKind::kConst &&
          e.children[0]->literal.kind() == nal::ValueKind::kString) {
        out.known = true;
        out.doc = e.children[0]->literal.AsString();
        out.path = xml::Path(true, {});
        return out;
      }
      if (e.fn == "distinct-values" && e.children.size() == 1) {
        AttrProvenance inner = ExprProvenance(*e.children[0], env);
        if (inner.known) {
          inner.distinct = true;
          return inner;
        }
      }
      return out;
    }
    case ExprKind::kPath: {
      AttrProvenance base = ExprProvenance(*e.children[0], env);
      if (!base.known) return out;
      out = base;
      out.distinct = false;
      out.path = base.path.Concat(e.path);
      return out;
    }
    case ExprKind::kBindTuples: {
      AttrProvenance inner = ExprProvenance(*e.children[0], env);
      if (!inner.known) return out;
      out = inner;
      out.is_nested = true;
      out.nested_item = e.attr;
      return out;
    }
    default:
      return out;
  }
}

void MarkAllIncomplete(ProvenanceMap* map) {
  for (auto& [attr, prov] : *map) prov.complete = false;
}

}  // namespace

ProvenanceMap DeriveProvenance(const nal::AlgebraOp& op) {
  switch (op.kind) {
    case OpKind::kSingleton:
      return {};
    case OpKind::kMap:
    case OpKind::kUnnestMap: {
      ProvenanceMap map = DeriveProvenance(*op.child(0));
      AttrProvenance prov = ExprProvenance(*op.expr, map);
      // χ/Υ keep the child's completeness; the new attribute enumerates all
      // path results per input tuple. If the input enumerated its own source
      // completely, the composition is complete too — captured by the
      // base provenance's `complete` flag already folded in.
      map[op.attr] = prov;
      return map;
    }
    case OpKind::kSelect: {
      // A filter breaks completeness (values may be missing afterwards).
      ProvenanceMap map = DeriveProvenance(*op.child(0));
      MarkAllIncomplete(&map);
      return map;
    }
    case OpKind::kProject: {
      ProvenanceMap map = DeriveProvenance(*op.child(0));
      ProvenanceMap out;
      // Renames first.
      for (const auto& [to, from] : op.renames) {
        auto it = map.find(from);
        if (it != map.end()) {
          map[to] = it->second;
          map.erase(from);
        }
      }
      if (op.pmode == nal::ProjectMode::kDrop) {
        for (Symbol a : op.attrs) map.erase(a);
        return map;
      }
      if (!op.attrs.empty()) {
        for (Symbol a : op.attrs) {
          auto it = map.find(a);
          if (it != map.end()) out[a] = it->second;
        }
      } else {
        out = std::move(map);
      }
      if (op.pmode == nal::ProjectMode::kDistinct && op.attrs.size() == 1) {
        auto it = out.find(op.attrs[0]);
        if (it != out.end()) it->second.distinct = true;
      }
      return out;
    }
    case OpKind::kUnnest: {
      ProvenanceMap map = DeriveProvenance(*op.child(0));
      auto it = map.find(op.attr);
      if (it != map.end() && it->second.is_nested) {
        AttrProvenance item = it->second;
        Symbol inner = item.nested_item;
        item.is_nested = false;
        item.nested_item = Symbol();
        map.erase(op.attr);
        map[inner] = item;
      } else {
        map.erase(op.attr);
      }
      return map;
    }
    case OpKind::kCross:
    case OpKind::kJoin:
    case OpKind::kOuterJoin: {
      ProvenanceMap left = DeriveProvenance(*op.child(0));
      ProvenanceMap right = DeriveProvenance(*op.child(1));
      left.insert(right.begin(), right.end());
      if (op.kind != OpKind::kCross) MarkAllIncomplete(&left);
      return left;
    }
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin: {
      ProvenanceMap map = DeriveProvenance(*op.child(0));
      MarkAllIncomplete(&map);
      return map;
    }
    case OpKind::kGroupUnary: {
      ProvenanceMap map = DeriveProvenance(*op.child(0));
      ProvenanceMap out;
      for (Symbol a : op.left_attrs) {
        auto it = map.find(a);
        if (it != map.end()) {
          AttrProvenance prov = it->second;
          prov.distinct = true;  // unary Γ dedups its grouping attributes
          out[a] = prov;
        }
      }
      return out;
    }
    case OpKind::kGroupBinary: {
      // Left side passes through unchanged.
      return DeriveProvenance(*op.child(0));
    }
    case OpKind::kSort:
    case OpKind::kXiSimple:
      return DeriveProvenance(*op.child(0));
    case OpKind::kXiGroup:
      return {};
  }
  return {};
}

}  // namespace nalq::rewrite
