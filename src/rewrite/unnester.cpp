#include "rewrite/unnester.h"

#include <atomic>
#include <map>
#include <set>

#include "nal/printer.h"

namespace nalq::rewrite {

namespace {

using nal::AlgebraOp;
using nal::AlgebraPtr;
using nal::ExprKind;
using nal::OpKind;
using nal::Symbol;
using nal::SymbolSet;

/// Attributes referenced by an operator's own subscripts (predicates, map
/// expressions, aggregate filters, Ξ programs).
SymbolSet SubscriptRefs(const AlgebraOp& op) {
  SymbolSet out;
  auto add = [&](const nal::ExprPtr& e) {
    if (e == nullptr) return;
    std::vector<Symbol> refs;
    nal::CollectFreeAttrs(*e, &refs);
    out.insert(refs.begin(), refs.end());
  };
  add(op.pred);
  add(op.expr);
  add(op.agg.filter);
  for (const nal::XiProgram* program : {&op.s1, &op.s2, &op.s3}) {
    for (const nal::XiCommand& c : *program) {
      if (!c.is_literal) add(c.expr);
    }
  }
  for (Symbol s : op.attrs) out.insert(s);
  for (const auto& [to, from] : op.renames) out.insert(from);
  for (Symbol s : op.left_attrs) out.insert(s);
  for (Symbol s : op.right_attrs) out.insert(s);
  if (!op.agg.project.empty()) out.insert(op.agg.project);
  return out;
}

AlgebraPtr ReplaceChild(const AlgebraOp& op, size_t index, AlgebraPtr child) {
  AlgebraPtr copy = op.Clone();
  copy->children[index] = std::move(child);
  return copy;
}

/// DFS for a semi/antijoin where the counting rewrite (Eqv. 8/9) fires.
std::optional<Alternative> ApplyCountingRec(const AlgebraPtr& op,
                                            const SymbolSet& required,
                                            const ConditionChecker& checker) {
  std::optional<Alternative> here = CountingRewrite(*op, required, checker);
  if (here.has_value()) return here;
  SymbolSet child_required = nal::Union(required, SubscriptRefs(*op));
  for (size_t i = 0; i < op->children.size(); ++i) {
    std::optional<Alternative> sub =
        ApplyCountingRec(op->children[i], child_required, checker);
    if (sub.has_value()) {
      return Alternative{sub->rule, ReplaceChild(*op, i, sub->plan)};
    }
  }
  return std::nullopt;
}

}  // namespace

nal::AlgebraPtr Unnester::SplitSelects(const nal::AlgebraPtr& plan) {
  AlgebraPtr copy = plan->Clone();
  // Bottom-up rewrite.
  std::vector<AlgebraPtr*> stack = {&copy};
  std::vector<AlgebraPtr*> order;
  while (!stack.empty()) {
    AlgebraPtr* cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    for (AlgebraPtr& c : (*cur)->children) stack.push_back(&c);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    AlgebraPtr& node = **it;
    while (node->kind == OpKind::kSelect &&
           node->pred->kind == ExprKind::kAnd) {
      nal::ExprPtr p = node->pred->children[0];
      nal::ExprPtr q = node->pred->children[1];
      node = nal::Select(p, nal::Select(q, node->child(0)));
    }
  }
  return copy;
}

std::vector<Alternative> Unnester::RewriteSubtree(const AlgebraPtr& op,
                                                  const SymbolSet& required) {
  // Site rewrites at this node.
  if (op->kind == OpKind::kMap) {
    std::vector<Alternative> alts = UnnestMapNode(*op, required, checker_);
    if (!alts.empty()) return alts;
  }
  if (op->kind == OpKind::kSelect && op->pred->kind == ExprKind::kQuant) {
    std::vector<Alternative> alts = UnnestQuantNode(*op, required, checker_);
    if (!alts.empty()) return alts;
  }
  // Recurse: first child with alternatives wins (translated plans contain
  // one unnesting site per query block; deeper blocks are reached after the
  // outer site was rewritten and Alternatives() is called again).
  // Attributes this operator *defines* (rather than reads from its child)
  // are not required from below.
  SymbolSet child_required = nal::Union(required, SubscriptRefs(*op));
  switch (op->kind) {
    case OpKind::kMap:
    case OpKind::kUnnestMap:
    case OpKind::kOuterJoin:
    case OpKind::kGroupUnary:
    case OpKind::kGroupBinary:
      child_required.erase(op->attr);
      break;
    default:
      break;
  }
  for (size_t i = 0; i < op->children.size(); ++i) {
    // Attributes provided by sibling subtrees are not required from this
    // child (e.g. the grouped side of an outer join supplies the join
    // attribute, not the probe side).
    SymbolSet this_child_required = child_required;
    for (size_t j = 0; j < op->children.size(); ++j) {
      if (j == i) continue;
      for (Symbol a : nal::OutputAttrs(*op->children[j]).attrs) {
        this_child_required.erase(a);
      }
    }
    std::vector<Alternative> sub =
        RewriteSubtree(op->children[i], this_child_required);
    if (!sub.empty()) {
      std::vector<Alternative> out;
      out.reserve(sub.size());
      for (Alternative& alt : sub) {
        out.push_back({alt.rule, ReplaceChild(*op, i, alt.plan)});
      }
      return out;
    }
  }
  return {};
}

std::vector<Alternative> Unnester::Alternatives(const nal::AlgebraPtr& plan) {
  std::vector<Alternative> out;
  out.push_back({"nested", plan});
  AlgebraPtr prepared = SplitSelects(plan);
  std::vector<Alternative> base = RewriteSubtree(prepared, {});
  for (Alternative& alt : base) {
    // Chained rewrites on top of each base alternative.
    std::optional<Alternative> counting =
        ApplyCountingRec(alt.plan, {}, checker_);
    std::optional<Alternative> group_xi = GroupXiRewrite(*alt.plan);
    out.push_back(alt);
    if (counting.has_value()) {
      out.push_back({alt.rule + "+" + counting->rule, counting->plan});
    }
    if (group_xi.has_value()) {
      out.push_back({alt.rule + "+" + group_xi->rule, group_xi->plan});
    }
  }
  return out;
}

std::vector<Alternative> Unnester::AllAlternatives(const nal::AlgebraPtr& plan,
                                                   size_t max_plans) {
  std::vector<Alternative> out;
  out.push_back({"nested", plan});
  std::set<std::string> seen = {nal::PrintPlan(*plan)};
  // Breadth-first worklist of indexes into `out` still to expand.
  for (size_t next = 0; next < out.size() && out.size() < max_plans; ++next) {
    const Alternative current = out[next];  // copy: out grows below
    std::vector<Alternative> alts = Alternatives(current.plan);
    for (size_t i = 1; i < alts.size() && out.size() < max_plans; ++i) {
      std::string printed = nal::PrintPlan(*alts[i].plan);
      if (!seen.insert(std::move(printed)).second) continue;
      std::string rule = current.rule == "nested"
                             ? alts[i].rule
                             : current.rule + "," + alts[i].rule;
      out.push_back({std::move(rule), alts[i].plan});
    }
  }
  return out;
}

int RulePriority(const std::string& rule) {
  auto contains = [&](const char* s) {
    return rule.find(s) != std::string::npos;
  };
  if (contains("group-xi")) return 0;
  if (contains("eqv5") || contains("eqv3")) return 1;
  if (contains("eqv8") || contains("eqv9")) return 2;
  if (contains("eqv4") || contains("eqv2")) return 3;
  if (contains("eqv1")) return 4;
  if (contains("eqv6") || contains("eqv7")) return 5;
  return 9;  // nested
}

Alternative Unnester::Best(const nal::AlgebraPtr& plan) {
  // Iterate: each round enumerates alternatives for the current plan, picks
  // the best-ranked one, and repeats — so a query with several nested
  // blocks unnests them all (each rewrite consumes its site).
  Alternative current{"nested", plan};
  for (int round = 0; round < 8; ++round) {
    std::vector<Alternative> alts = Alternatives(current.plan);
    Alternative best = alts.front();
    int best_priority = RulePriority(best.rule);
    for (const Alternative& alt : alts) {
      int priority = RulePriority(alt.rule);
      if (priority < best_priority) {
        best = alt;
        best_priority = priority;
      }
    }
    if (best_priority >= RulePriority("nested")) break;  // nothing applied
    current.plan = best.plan;
    current.rule = current.rule == "nested" ? best.rule
                                            : current.rule + "," + best.rule;
  }
  return current;
}

nal::AlgebraPtr ShareCommonSubexpressions(const nal::AlgebraPtr& plan) {
  AlgebraPtr copy = plan->Clone();
  // Group subtrees by their printed form (a canonical rendering: two nodes
  // print identically iff kinds, subscripts and children coincide).
  std::map<std::string, std::vector<AlgebraOp*>> groups;
  std::vector<AlgebraOp*> stack = {copy.get()};
  while (!stack.empty()) {
    AlgebraOp* cur = stack.back();
    stack.pop_back();
    bool has_scan = false;
    std::vector<const AlgebraOp*> probe = {cur};
    while (!probe.empty()) {
      const AlgebraOp* p = probe.back();
      probe.pop_back();
      if (p->kind == OpKind::kUnnestMap) has_scan = true;
      for (const AlgebraPtr& c : p->children) probe.push_back(c.get());
    }
    if (has_scan && nal::FreeVars(*cur).empty()) {
      groups[nal::PrintPlan(*cur)].push_back(cur);
    }
    for (const AlgebraPtr& c : cur->children) stack.push_back(c.get());
  }
  static std::atomic<int> next_id{1000};
  for (auto& [text, nodes] : groups) {
    if (nodes.size() < 2) continue;
    // Skip nodes nested inside an already-shared group member (their parent
    // cache entry covers them).
    bool already = false;
    for (AlgebraOp* node : nodes) {
      if (node->cse_id >= 0) already = true;
    }
    if (already) continue;
    int id = next_id.fetch_add(1);
    for (AlgebraOp* node : nodes) node->cse_id = id;
  }
  return copy;
}

}  // namespace nalq::rewrite
