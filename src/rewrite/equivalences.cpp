#include "rewrite/equivalences.h"

#include <algorithm>

namespace nalq::rewrite {

namespace {

using nal::AggSpec;
using nal::AlgebraOp;
using nal::AlgebraPtr;
using nal::CmpOp;
using nal::Expr;
using nal::ExprKind;
using nal::ExprPtr;
using nal::OpKind;
using nal::Symbol;
using nal::SymbolSet;

void FlattenAnd(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kAnd) {
    FlattenAnd(e->children[0], out);
    FlattenAnd(e->children[1], out);
  } else {
    out->push_back(e);
  }
}

ExprPtr JoinAnd(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    out = out == nullptr ? c : nal::MakeAnd(out, c);
  }
  return out;
}

/// f(ε): the value an aggregate assigns to the empty group — the outer-join
/// default of Eqv. 2/4.
nal::Value AggEmpty(const AggSpec& agg) {
  switch (agg.kind) {
    case AggSpec::Kind::kId:
      return nal::Value::FromTuples(nal::Sequence());
    case AggSpec::Kind::kProjectItems:
      return nal::Value::FromItems(nal::ItemSeq());
    case AggSpec::Kind::kCount:
      return nal::Value(static_cast<int64_t>(0));
    default:
      return nal::Value::Null();
  }
}

/// Result of pulling correlated conjuncts out of a nested χ/Υ/σ chain.
struct Extraction {
  std::vector<ExprPtr> moved;  ///< conjuncts referencing outer attributes
  AlgebraPtr rebuilt;          ///< the chain without those conjuncts
};

/// Removes every conjunct that references attributes of `outer` from the σ
/// operators of the chain under `op`. Selections commute with the χ/Υ
/// operators above them (which only add attributes), so pulling a conjunct
/// out of the chain is sound as long as its non-outer references are
/// produced *below* its position — which is checked per conjunct. Returns
/// nullopt when a correlated conjunct cannot be extracted safely.
std::optional<Extraction> ExtractOuterConjuncts(const AlgebraPtr& op,
                                                const SymbolSet& outer) {
  switch (op->kind) {
    case OpKind::kSelect: {
      SymbolSet below = nal::OutputAttrs(*op->child(0)).attrs;
      std::vector<ExprPtr> conjuncts;
      FlattenAnd(op->pred, &conjuncts);
      std::vector<ExprPtr> moved;
      std::vector<ExprPtr> kept;
      for (const ExprPtr& c : conjuncts) {
        std::vector<Symbol> refs;
        nal::CollectFreeAttrs(*c, &refs);
        bool mentions_outer = false;
        bool inner_ok = true;
        for (Symbol s : refs) {
          if (outer.count(s) != 0) {
            mentions_outer = true;
          } else if (below.count(s) == 0) {
            inner_ok = false;
          }
        }
        if (mentions_outer) {
          if (!inner_ok) return std::nullopt;
          moved.push_back(c);
        } else {
          kept.push_back(c);
        }
      }
      std::optional<Extraction> sub = ExtractOuterConjuncts(op->child(0), outer);
      if (!sub.has_value()) return std::nullopt;
      Extraction out;
      out.moved = std::move(sub->moved);
      out.moved.insert(out.moved.end(), moved.begin(), moved.end());
      out.rebuilt = kept.empty() ? sub->rebuilt
                                 : nal::Select(JoinAnd(kept), sub->rebuilt);
      return out;
    }
    case OpKind::kMap:
    case OpKind::kUnnestMap:
    case OpKind::kUnnest:
    case OpKind::kProject: {
      std::optional<Extraction> sub = ExtractOuterConjuncts(op->child(0), outer);
      if (!sub.has_value()) return std::nullopt;
      Extraction out;
      out.moved = std::move(sub->moved);
      AlgebraPtr copy = op->Clone();
      copy->children[0] = sub->rebuilt;
      out.rebuilt = std::move(copy);
      return out;
    }
    default: {
      Extraction out;
      out.rebuilt = op->Clone();
      return out;
    }
  }
}

/// A correlation conjunct A1 θ A2 with A1 from the outer and A2 from the
/// inner expression.
struct Correlation {
  Symbol a1;
  Symbol a2;
  CmpOp theta = CmpOp::kEq;
};

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

std::optional<Correlation> AsCorrelation(const Expr& c,
                                         const SymbolSet& outer_attrs,
                                         const SymbolSet& inner_attrs) {
  if (c.kind != ExprKind::kCmp) return std::nullopt;
  if (c.children[0]->kind != ExprKind::kAttrRef ||
      c.children[1]->kind != ExprKind::kAttrRef) {
    return std::nullopt;
  }
  Symbol x = c.children[0]->attr;
  Symbol y = c.children[1]->attr;
  Correlation corr;
  if (outer_attrs.count(x) != 0 && inner_attrs.count(x) == 0 &&
      inner_attrs.count(y) != 0) {
    corr.a1 = x;
    corr.a2 = y;
    corr.theta = c.cmp;
    return corr;
  }
  if (outer_attrs.count(y) != 0 && inner_attrs.count(y) == 0 &&
      inner_attrs.count(x) != 0) {
    corr.a1 = y;
    corr.a2 = x;
    corr.theta = FlipCmp(c.cmp);
    return corr;
  }
  return std::nullopt;
}

}  // namespace

std::vector<Alternative> UnnestMapNode(const AlgebraOp& map_op,
                                       const SymbolSet& required_above,
                                       const ConditionChecker& checker) {
  std::vector<Alternative> out;
  if (map_op.kind != OpKind::kMap || map_op.expr == nullptr) return out;
  // χ-subscript shape f(...): aggregate spec over a nested algebra chain.
  AggSpec f;
  AlgebraPtr chain;
  const Expr& expr = *map_op.expr;
  if (expr.kind == ExprKind::kAgg &&
      expr.children[0]->kind == ExprKind::kNestedAlg) {
    f = expr.agg.CloneSpec();
    chain = expr.children[0]->alg;
  } else if (expr.kind == ExprKind::kNestedAlg) {
    f = nal::AggId();
    chain = expr.alg;
  } else {
    return out;
  }
  const AlgebraPtr& e1 = map_op.child(0);
  Symbol g = map_op.attr;
  nal::AttrInfo e1_info = nal::OutputAttrs(*e1);

  std::optional<Extraction> ext = ExtractOuterConjuncts(chain, e1_info.attrs);
  if (!ext.has_value() || ext->moved.size() != 1) return out;
  AlgebraPtr e2 = ext->rebuilt;
  nal::AttrInfo e2_info = nal::OutputAttrs(*e2);
  // Condition g ∉ A(e1) ∪ A(e2).
  if (e1_info.Has(g) || e2_info.Has(g)) return out;
  std::optional<Correlation> corr =
      AsCorrelation(*ext->moved[0], e1_info.attrs, e2_info.attrs);
  if (!corr.has_value()) return out;
  // Condition F(e2) ∩ A(e1) = ∅.
  if (!ConditionChecker::FreeOfOuter(*e2, *e1)) return out;

  ExprPtr f_empty = nal::MakeConst(AggEmpty(f));
  ProvenanceMap e2_prov = DeriveProvenance(*e2);
  bool nested = false;
  Symbol item_attr;
  {
    auto it = e2_prov.find(corr->a2);
    if (it != e2_prov.end() && it->second.is_nested) {
      nested = true;
      item_attr = it->second.nested_item;
    } else {
      auto nit = e2_info.nested.find(corr->a2);
      if (nit != e2_info.nested.end() && nit->second.size() == 1) {
        nested = true;
        item_attr = *nit->second.begin();
      }
    }
  }

  auto required_ok = [&](const AlgebraOp& plan) {
    nal::SymbolSet provided = nal::OutputAttrs(plan).attrs;
    for (Symbol s : required_above) {
      if (provided.count(s) == 0) return false;
    }
    return true;
  };

  if (nested && corr->theta == CmpOp::kEq) {
    // A1 ∈ a2 (the value of a2 is an e[a'] sequence). Condition for 4/5:
    // f may not depend on a2 or its items.
    if (!f.DependsOn(corr->a2) && !f.DependsOn(item_attr)) {
      AlgebraPtr mu = nal::Unnest(corr->a2, e2->Clone(), /*distinct=*/true,
                                  /*outer=*/false);
      // Eqv. 5 (condition: e1 = ΠD_{A1:A2}(Π_{A2}(μ_{a2}(e2)))).
      if (checker.DistinctSourceMatchesNested(*e1, corr->a1, *e2, corr->a2)) {
        AlgebraPtr plan = nal::ProjectRename(
            {{corr->a1, item_attr}},
            nal::GroupUnary(g, CmpOp::kEq, {item_attr}, f.CloneSpec(),
                            mu->Clone()));
        if (required_ok(*plan)) {
          out.push_back({"eqv5-grouping", std::move(plan)});
        }
      }
      // Eqv. 4 (always applicable).
      {
        AlgebraPtr grouped = nal::GroupUnary(g, CmpOp::kEq, {item_attr},
                                             f.CloneSpec(), mu->Clone());
        AlgebraPtr oj = nal::OuterJoin(
            nal::MakeCmp(CmpOp::kEq, nal::MakeAttrRef(corr->a1),
                         nal::MakeAttrRef(item_attr)),
            g, f_empty->Clone(), e1->Clone(), std::move(grouped));
        AlgebraPtr plan = nal::ProjectDrop({item_attr}, std::move(oj));
        if (required_ok(*plan)) {
          out.push_back({"eqv4-outerjoin", std::move(plan)});
        }
      }
    }
    // Nest-join over the membership predicate (Eqv. 1 generalized to ∈; the
    // hash grouping expands sequence-valued keys).
    {
      AlgebraPtr plan =
          nal::GroupBinary(g, {corr->a1}, CmpOp::kEq, {corr->a2},
                           f.CloneSpec(), e1->Clone(), e2->Clone());
      if (required_ok(*plan)) {
        out.push_back({"eqv1-nestjoin", std::move(plan)});
      }
    }
    return out;
  }

  // Atomic A1 θ A2.
  // Eqv. 3 (condition: e1 = ΠD_{A1:A2}(Π_{A2}(e2))).
  if (checker.DistinctSourceMatches(*e1, corr->a1, *e2, corr->a2)) {
    AlgebraPtr plan = nal::ProjectRename(
        {{corr->a1, corr->a2}},
        nal::GroupUnary(g, corr->theta, {corr->a2}, f.CloneSpec(),
                        e2->Clone()));
    if (required_ok(*plan)) {
      out.push_back({"eqv3-grouping", std::move(plan)});
    }
  }
  // Eqv. 2 (θ must be '=').
  if (corr->theta == CmpOp::kEq) {
    AlgebraPtr grouped = nal::GroupUnary(g, CmpOp::kEq, {corr->a2},
                                         f.CloneSpec(), e2->Clone());
    AlgebraPtr oj = nal::OuterJoin(
        nal::MakeCmp(CmpOp::kEq, nal::MakeAttrRef(corr->a1),
                     nal::MakeAttrRef(corr->a2)),
        g, f_empty->Clone(), e1->Clone(), std::move(grouped));
    AlgebraPtr plan = nal::ProjectDrop({corr->a2}, std::move(oj));
    if (required_ok(*plan)) {
      out.push_back({"eqv2-outerjoin", std::move(plan)});
    }
  }
  // Eqv. 1 (any θ).
  {
    AlgebraPtr plan =
        nal::GroupBinary(g, {corr->a1}, corr->theta, {corr->a2}, f.CloneSpec(),
                         e1->Clone(), e2->Clone());
    if (required_ok(*plan)) {
      out.push_back({"eqv1-nestjoin", std::move(plan)});
    }
  }
  return out;
}

std::vector<Alternative> UnnestQuantNode(const AlgebraOp& select_op,
                                         const SymbolSet& required_above,
                                         const ConditionChecker& checker) {
  (void)required_above;  // semi/antijoins keep A(e1): nothing can go missing
  (void)checker;
  std::vector<Alternative> out;
  if (select_op.kind != OpKind::kSelect ||
      select_op.pred->kind != ExprKind::kQuant) {
    return out;
  }
  const Expr& quant = *select_op.pred;
  const AlgebraPtr& e1 = select_op.child(0);
  nal::AttrInfo e1_info = nal::OutputAttrs(*e1);

  // Peel the range: Π_{x'}(...).
  AlgebraPtr range = quant.alg;
  Symbol x_prime;
  if (range->kind == OpKind::kProject &&
      range->pmode == nal::ProjectMode::kKeep && range->attrs.size() == 1 &&
      range->renames.empty()) {
    x_prime = range->attrs[0];
    range = range->child(0);
  } else {
    return out;
  }
  std::optional<Extraction> ext = ExtractOuterConjuncts(range, e1_info.attrs);
  if (!ext.has_value() || ext->moved.empty()) return out;
  AlgebraPtr e2 = ext->rebuilt;
  if (!ConditionChecker::FreeOfOuter(*e2, *e1)) return out;

  // p' = p with the quantifier variable replaced by x'.
  ExprPtr p = quant.children[0];
  bool p_trivial =
      p->kind == ExprKind::kConst && p->literal.kind() == nal::ValueKind::kBool;
  bool p_true = p_trivial && p->literal.AsBool();
  std::vector<ExprPtr> pred_parts = ext->moved;
  if (quant.quant == nal::QuantKind::kSome) {
    if (!p_true) {
      pred_parts.push_back(nal::SubstituteAttr(p, quant.quant_var, x_prime));
    }
    ExprPtr pred = JoinAnd(pred_parts);
    out.push_back(
        {"eqv6-semijoin", nal::SemiJoin(pred, e1->Clone(), e2->Clone())});
  } else {
    ExprPtr p_sub = nal::SubstituteAttr(p, quant.quant_var, x_prime);
    ExprPtr negated = p_sub->kind == ExprKind::kCmp
                          ? nal::MakeCmp(nal::NegateCmp(p_sub->cmp),
                                         p_sub->children[0], p_sub->children[1])
                          : nal::MakeNot(p_sub);
    pred_parts.push_back(std::move(negated));
    ExprPtr pred = JoinAnd(pred_parts);
    out.push_back(
        {"eqv7-antijoin", nal::AntiJoin(pred, e1->Clone(), e2->Clone())});
  }
  return out;
}

std::optional<Alternative> CountingRewrite(const AlgebraOp& join_op,
                                           const SymbolSet& required_above,
                                           const ConditionChecker& checker) {
  if (join_op.kind != OpKind::kSemiJoin && join_op.kind != OpKind::kAntiJoin) {
    return std::nullopt;
  }
  const AlgebraPtr& e1 = join_op.child(0);
  const AlgebraPtr& e2 = join_op.child(1);
  nal::AttrInfo e1_info = nal::OutputAttrs(*e1);
  nal::AttrInfo e2_info = nal::OutputAttrs(*e2);
  std::vector<ExprPtr> conjuncts;
  FlattenAnd(join_op.pred, &conjuncts);
  std::optional<Correlation> corr;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    std::optional<Correlation> candidate =
        AsCorrelation(*c, e1_info.attrs, e2_info.attrs);
    if (candidate.has_value() && !corr.has_value() &&
        candidate->theta == CmpOp::kEq) {
      corr = candidate;
      continue;
    }
    // Residual conjuncts must be local to e2.
    std::vector<Symbol> refs;
    nal::CollectFreeAttrs(*c, &refs);
    for (Symbol s : refs) {
      if (e2_info.attrs.count(s) == 0) return std::nullopt;
    }
    residual.push_back(c);
  }
  if (!corr.has_value()) return std::nullopt;
  // Ancestors may reference only A1 — the counting plan drops everything
  // else of e1.
  for (Symbol s : required_above) {
    if (s != corr->a1 && e1_info.attrs.count(s) != 0) return std::nullopt;
  }
  // ΠD(e1) = e1 and ΠD(e1) = ΠD_{A1:A2}(Π_{A2}(e2)).
  if (!checker.IsDuplicateFree(*e1, corr->a1)) return std::nullopt;
  if (!checker.DistinctSourceMatches(*e1, corr->a1, *e2, corr->a2)) {
    return std::nullopt;
  }
  AggSpec count = nal::AggCount();
  if (!residual.empty()) count.filter = JoinAnd(residual);
  Symbol c = Symbol::Fresh("c");
  AlgebraPtr grouped =
      nal::GroupUnary(c, CmpOp::kEq, {corr->a2}, std::move(count), e2->Clone());
  AlgebraPtr renamed =
      nal::ProjectRename({{corr->a1, corr->a2}}, std::move(grouped));
  bool anti = join_op.kind == OpKind::kAntiJoin;
  ExprPtr pred = nal::MakeCmp(anti ? CmpOp::kEq : CmpOp::kGt,
                              nal::MakeAttrRef(c),
                              nal::MakeConst(nal::Value(int64_t{0})));
  return Alternative{anti ? "eqv9-counting" : "eqv8-counting",
                     nal::Select(std::move(pred), std::move(renamed))};
}

std::optional<Alternative> GroupXiRewrite(const AlgebraOp& xi_op) {
  if (xi_op.kind != OpKind::kXiSimple) return std::nullopt;
  const AlgebraPtr& below = xi_op.child(0);
  // Expect Π_{A1:A2} (rename-only) over Γ_{g;=A2;Π_t}.
  Symbol a1;
  Symbol a2;
  AlgebraPtr gamma = below;
  if (below->kind == OpKind::kProject &&
      below->pmode == nal::ProjectMode::kKeep && below->attrs.empty() &&
      below->renames.size() == 1) {
    a1 = below->renames[0].first;
    a2 = below->renames[0].second;
    gamma = below->child(0);
  }
  if (gamma->kind != OpKind::kGroupUnary || gamma->theta != CmpOp::kEq ||
      gamma->left_attrs.size() != 1 ||
      gamma->agg.kind != AggSpec::Kind::kProjectItems) {
    return std::nullopt;
  }
  if (a2.empty()) {
    a1 = a2 = gamma->left_attrs[0];
  } else if (gamma->left_attrs[0] != a2) {
    return std::nullopt;
  }
  Symbol g = gamma->attr;
  Symbol t = gamma->agg.project;
  // Split the command list around the single reference to g.
  nal::XiProgram s1;
  nal::XiProgram s3;
  bool seen_g = false;
  for (const nal::XiCommand& cmd : xi_op.s1) {
    if (!cmd.is_literal && cmd.expr->kind == ExprKind::kAttrRef &&
        cmd.expr->attr == g) {
      if (seen_g) return std::nullopt;
      seen_g = true;
      continue;
    }
    nal::XiCommand rewritten = cmd;
    if (!cmd.is_literal) {
      std::vector<Symbol> refs;
      nal::CollectFreeAttrs(*cmd.expr, &refs);
      for (Symbol s : refs) {
        if (s == g) return std::nullopt;  // complex use of g: bail out
      }
      rewritten.expr = nal::SubstituteAttr(cmd.expr, a1, a2);
    }
    (seen_g ? s3 : s1).push_back(std::move(rewritten));
  }
  if (!seen_g) return std::nullopt;
  nal::XiProgram s2 = {nal::XiCommand::Var(t)};
  return Alternative{"group-xi",
                     nal::XiGroup(std::move(s1), {a2}, std::move(s2),
                                  std::move(s3), gamma->child(0)->Clone())};
}

}  // namespace nalq::rewrite
