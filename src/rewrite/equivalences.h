// The unnesting equivalences of paper Fig. 4 as checked plan rewrites.
//
//  Eqv. 1  χ_{g:f(σ_{A1θA2}(e2))}(e1)        = e1 Γ_{g;A1θA2;f} e2
//  Eqv. 2  χ_{g:f(σ_{A1=A2}(e2))}(e1)        = Π̄_{A2}(e1 ⟕^{g:f()}_{A1=A2}
//                                               Γ_{g;=A2;f}(e2))
//  Eqv. 3  χ_{g:f(σ_{A1θA2}(e2))}(e1)        = Π_{A1:A2}(Γ_{g;θA2;f}(e2))
//                                               if e1 = ΠD_{A1:A2}(Π_{A2}(e2))
//  Eqv. 4  χ_{g:f(σ_{A1∈a2}(e2))}(e1)        = Π̄_{A2}(e1 ⟕^{g:f()}_{A1=A2}
//                                               Γ_{g;=A2;f}(μD_{a2}(e2)))
//  Eqv. 5  χ_{g:f(σ_{A1∈a2}(e2))}(e1)        = Π_{A1:A2}(Γ_{g;=A2;f}(μD_{a2}(e2)))
//                                               if e1 = ΠD_{A1:A2}(Π_{A2}(μ_{a2}(e2)))
//  Eqv. 6  σ_{∃x∈(Π_{x'}(σ_{A1=A2}(e2))) p}(e1) = e1 ⋉_{A1=A2 ∧ p'} e2
//  Eqv. 7  σ_{∀x∈(Π_{x'}(σ_{A1=A2}(e2))) p}(e1) = e1 ▷_{A1=A2 ∧ ¬p'} e2
//  Eqv. 8  ΠD(e1) ⋉_{A1=A2} σp(e2)           = σ_{c>0}(Π_{A1:A2}(Γ_{c;=A2;count∘σp}(e2)))
//  Eqv. 9  ΠD(e1) ▷_{A1=A2} σp(e2)           = σ_{c=0}(…)
//
// plus the group-detecting Ξ introduction of Sec. 2/5.1. Every rewrite
// verifies its side conditions via ConditionChecker before firing.
#ifndef NALQ_REWRITE_EQUIVALENCES_H_
#define NALQ_REWRITE_EQUIVALENCES_H_

#include <optional>
#include <string>
#include <vector>

#include "rewrite/conditions.h"

namespace nalq::rewrite {

/// One rewritten plan with the rule(s) that produced it.
struct Alternative {
  std::string rule;  ///< e.g. "eqv3-grouping", "eqv6-semijoin"
  nal::AlgebraPtr plan;
};

/// Tries the χ-unnesting equivalences (1–5) on a Map node. `required_above`
/// is the set of attributes referenced by the node's ancestors; rewrites
/// that no longer provide them are discarded (the paper's "project unneeded
/// attributes away" step in reverse). Returns every applicable alternative,
/// most specific rules first.
std::vector<Alternative> UnnestMapNode(const nal::AlgebraOp& map_op,
                                       const nal::SymbolSet& required_above,
                                       const ConditionChecker& checker);

/// Tries Eqv. 6/7 on a Select node whose predicate is a quantifier.
std::vector<Alternative> UnnestQuantNode(const nal::AlgebraOp& select_op,
                                         const nal::SymbolSet& required_above,
                                         const ConditionChecker& checker);

/// Tries Eqv. 8/9 on a semi/antijoin node (rewriting it into a counting Γ,
/// saving one document scan).
std::optional<Alternative> CountingRewrite(const nal::AlgebraOp& join_op,
                                           const nal::SymbolSet& required_above,
                                           const ConditionChecker& checker);

/// Introduces the group-detecting Ξ (Sec. 5.1 "group Ξ" plan):
///   Ξ_{s}(Π_{A1:A2}(Γ_{g;=A2;Π_t}(X)))  →  s1 Ξ^{s3}_{A2;t}(X).
std::optional<Alternative> GroupXiRewrite(const nal::AlgebraOp& xi_op);

}  // namespace nalq::rewrite

#endif  // NALQ_REWRITE_EQUIVALENCES_H_
