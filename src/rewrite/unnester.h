// Orchestrates the unnesting rewrites over whole plans: locates χ-subscript
// and quantifier sites, fires the applicable equivalences ("whenever there
// are alternative applications, the most efficient plan should be chosen —
// this plan typically results from the equivalences with the most
// restrictive conditions attached", Sec. 4), chains the scan-saving Eqv. 8/9
// rewrites and the group-detecting Ξ introduction, and can enumerate every
// alternative for the benchmarks.
#ifndef NALQ_REWRITE_UNNESTER_H_
#define NALQ_REWRITE_UNNESTER_H_

#include <string>
#include <vector>

#include "rewrite/equivalences.h"

namespace nalq::rewrite {

class Unnester {
 public:
  explicit Unnester(const xml::DtdRegistry* dtds) : checker_(dtds) {}

  /// All alternative plans for `plan`, the original ("nested") first.
  /// Derived alternatives (counting/group-Ξ) carry chained rule names like
  /// "eqv7-antijoin+eqv9-counting".
  std::vector<Alternative> Alternatives(const nal::AlgebraPtr& plan);

  /// The preferred plan under the paper's policy (most restrictive
  /// applicable equivalence). Iterates until no site remains, so queries
  /// with several nested blocks get every block unnested; the rule name
  /// chains the applied equivalences. Falls back to the original plan.
  Alternative Best(const nal::AlgebraPtr& plan);

  /// Transitive closure of Alternatives(): every plan reachable by
  /// repeatedly rewriting remaining sites (queries with several nested
  /// blocks get their fully unnested combinations, rule names chained with
  /// ","). Deduplicated structurally; breadth-first, so single-rewrite
  /// alternatives precede chained ones and [0] stays the original nested
  /// plan. `max_plans` bounds the enumeration on pathological inputs. This
  /// is the search space of the cost-based chooser (opt/chooser.h).
  std::vector<Alternative> AllAlternatives(const nal::AlgebraPtr& plan,
                                           size_t max_plans = 48);

  /// Splits conjunctive selections σ_{p∧q} into σ_p(σ_q) so quantifier
  /// conjuncts become rewrite sites. Pure function, exposed for tests.
  static nal::AlgebraPtr SplitSelects(const nal::AlgebraPtr& plan);

 private:
  std::vector<Alternative> RewriteSubtree(const nal::AlgebraPtr& op,
                                          const nal::SymbolSet& required);

  ConditionChecker checker_;
};

/// Rule-name ranking used by Unnester::Best (smaller = better).
int RulePriority(const std::string& rule);

/// The paper's "factorize common subexpressions" at the algebra level:
/// assigns a shared cse_id to structurally identical, env-independent
/// subtrees that contain at least one document scan, so the evaluator
/// computes them once per run. Returns a rewritten clone.
nal::AlgebraPtr ShareCommonSubexpressions(const nal::AlgebraPtr& plan);

}  // namespace nalq::rewrite

#endif  // NALQ_REWRITE_UNNESTER_H_
