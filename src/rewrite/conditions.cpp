#include "rewrite/conditions.h"

namespace nalq::rewrite {

bool ConditionChecker::FreeOfOuter(const nal::AlgebraOp& e2,
                                   const nal::AlgebraOp& e1) {
  nal::SymbolSet free = nal::FreeVars(e2);
  nal::SymbolSet outer = nal::OutputAttrs(e1).attrs;
  return nal::Disjoint(free, outer);
}

bool ConditionChecker::DistinctSourceMatches(const nal::AlgebraOp& e1,
                                             nal::Symbol a1,
                                             const nal::AlgebraOp& e2,
                                             nal::Symbol a2,
                                             bool require_distinct_e1) const {
  if (dtds_ == nullptr) return false;
  ProvenanceMap p1 = DeriveProvenance(e1);
  ProvenanceMap p2 = DeriveProvenance(e2);
  auto it1 = p1.find(a1);
  auto it2 = p2.find(a2);
  if (it1 == p1.end() || it2 == p2.end()) return false;
  const AttrProvenance& prov1 = it1->second;
  const AttrProvenance& prov2 = it2->second;
  if (!prov1.known || !prov2.known) return false;
  if (require_distinct_e1 && !prov1.distinct) return false;
  if (!prov1.complete || !prov2.complete) return false;
  if (prov1.doc != prov2.doc) return false;
  if (prov2.is_nested) return false;  // nested case handled separately
  const xml::Dtd* dtd = dtds_->Find(prov1.doc);
  if (dtd == nullptr) return false;
  return dtd->PathsSelectSameNodes(prov1.path, prov2.path);
}

bool ConditionChecker::DistinctSourceMatchesNested(const nal::AlgebraOp& e1,
                                                   nal::Symbol a1,
                                                   const nal::AlgebraOp& e2,
                                                   nal::Symbol a2) const {
  if (dtds_ == nullptr) return false;
  ProvenanceMap p1 = DeriveProvenance(e1);
  ProvenanceMap p2 = DeriveProvenance(e2);
  auto it1 = p1.find(a1);
  auto it2 = p2.find(a2);
  if (it1 == p1.end() || it2 == p2.end()) return false;
  const AttrProvenance& prov1 = it1->second;
  const AttrProvenance& prov2 = it2->second;
  if (!prov1.known || !prov2.known) return false;
  if (!prov1.distinct) return false;
  if (!prov1.complete || !prov2.complete) return false;
  if (prov1.doc != prov2.doc) return false;
  if (!prov2.is_nested) return false;
  const xml::Dtd* dtd = dtds_->Find(prov1.doc);
  if (dtd == nullptr) return false;
  return dtd->PathsSelectSameNodes(prov1.path, prov2.path);
}

bool ConditionChecker::IsDuplicateFree(const nal::AlgebraOp& e1,
                                       nal::Symbol a1) const {
  ProvenanceMap p1 = DeriveProvenance(e1);
  auto it = p1.find(a1);
  if (it == p1.end() || !it->second.known) return false;
  // distinct-values output is duplicate-free by definition; a complete
  // node-path scan yields unique nodes but possibly duplicate *values*, so
  // only the distinct flag qualifies here.
  return it->second.distinct;
}

}  // namespace nalq::rewrite
