// Side-condition verification for the unnesting equivalences (paper Sec. 4).
//
// "Too often, incorrect unnesting procedures have appeared" — the paper's
// central criticism of prior work is missing side conditions (the condition
// e1 = ΠD_{A1:A2}(Π_{A2}(e2)) that escaped the authors of [31]). This module
// makes every condition an explicit, testable check.
#ifndef NALQ_REWRITE_CONDITIONS_H_
#define NALQ_REWRITE_CONDITIONS_H_

#include "nal/analysis.h"
#include "rewrite/provenance.h"
#include "xml/dtd.h"

namespace nalq::rewrite {

class ConditionChecker {
 public:
  /// `dtds` may be null; then every DTD-dependent condition fails (the
  /// conservative outcome: fewer rewrites, never a wrong one).
  explicit ConditionChecker(const xml::DtdRegistry* dtds) : dtds_(dtds) {}

  /// F(e2) ∩ A(e1) = ∅ — the inner expression must not reference the outer
  /// one once the correlation predicate has been removed.
  static bool FreeOfOuter(const nal::AlgebraOp& e2, const nal::AlgebraOp& e1);

  /// The paper's e1 = ΠD_{A1:A2}(Π_{A2}(e2)) check (Eqv. 3, and Eqv. 8/9's
  /// ΠD(e1) = ΠD_{A1:A2}(Π_{A2}(e2)) with `require_distinct_e1` = false):
  /// e1's attribute `a1` must hold the distinct atomized values of some
  /// absolute path P1, e2's attribute `a2` must enumerate all nodes of a
  /// path P2 in document order, and the DTD must prove both paths select
  /// the same node set.
  bool DistinctSourceMatches(const nal::AlgebraOp& e1, nal::Symbol a1,
                             const nal::AlgebraOp& e2, nal::Symbol a2,
                             bool require_distinct_e1 = true) const;

  /// Same for the nested case of Eqv. 5: `a2` is an e[a'] attribute of e2
  /// and the comparison is against its *items*
  /// (e1 = ΠD_{A1:A2}(Π_{A2}(μ_{a2}(e2)))).
  bool DistinctSourceMatchesNested(const nal::AlgebraOp& e1, nal::Symbol a1,
                                   const nal::AlgebraOp& e2,
                                   nal::Symbol a2) const;

  /// Eqv. 8/9 prerequisite ΠD(e1) = e1: `a1` is duplicate-free by
  /// construction (distinct-values output, or a complete node-path scan
  /// whose nodes are unique).
  bool IsDuplicateFree(const nal::AlgebraOp& e1, nal::Symbol a1) const;

  const xml::DtdRegistry* dtds() const { return dtds_; }

 private:
  const xml::DtdRegistry* dtds_;
};

}  // namespace nalq::rewrite

#endif  // NALQ_REWRITE_CONDITIONS_H_
