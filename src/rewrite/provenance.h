// Attribute provenance: which document/path an attribute's values range
// over, derived from the plan itself.
//
// The unnesting conditions of Eqv. 3/5/8/9 ("e1 = ΠD_{A1:A2}(Π_{A2}(e2))")
// cannot be checked by structural tree equality — the paper verifies them
// *semantically* against the DTD ("this condition holds if there are no
// author elements other than those directly under book elements"). This
// module reconstructs, for every attribute of a plan, the document and
// absolute path its values enumerate, whether the enumeration is complete
// (unfiltered, in document order) and whether the values are the atomized,
// duplicate-free output of distinct-values().
#ifndef NALQ_REWRITE_PROVENANCE_H_
#define NALQ_REWRITE_PROVENANCE_H_

#include <map>
#include <string>

#include "nal/algebra.h"
#include "xml/xpath.h"

namespace nalq::rewrite {

struct AttrProvenance {
  bool known = false;
  std::string doc;       ///< document name ("bib.xml")
  xml::Path path;        ///< absolute path of the attribute's values
  bool distinct = false; ///< values are distinct-values() output (atomized,
                         ///< duplicate-free, first-occurrence order)
  bool complete = true;  ///< enumerates ALL nodes selected by `path`, in
                         ///< document order (no filter in between)
  bool is_nested = false;      ///< e[a'] binding: value is a tuple sequence
  nal::Symbol nested_item;     ///< the inner attribute a'
};

using ProvenanceMap = std::map<nal::Symbol, AttrProvenance>;

/// Derives provenance for every output attribute of `op`.
ProvenanceMap DeriveProvenance(const nal::AlgebraOp& op);

}  // namespace nalq::rewrite

#endif  // NALQ_REWRITE_PROVENANCE_H_
