// Thread-safe metrics primitives for the service layer (src/obs/README.md).
//
// Three instrument kinds, all safe for concurrent update without holding a
// lock once obtained from the registry:
//
//   * Counter   — monotonically increasing uint64, relaxed atomic adds;
//   * Gauge     — a settable double (last write wins);
//   * Histogram — log-bucketed distribution of non-negative doubles with
//                 p50/p90/p99 extraction and Prometheus-style cumulative
//                 bucket exposition. Buckets follow a base-2 octave scheme
//                 with 4 linear sub-buckets per octave, so any reported
//                 quantile is within ~12.5% of the true value (the bucket
//                 upper bound is returned; see src/obs/README.md for the
//                 error argument). Observe() is wait-free: one frexp plus
//                 two relaxed atomic adds.
//
// MetricsRegistry interns instruments by name: the name → instrument maps
// are mutex-guarded (Get* is called once per metric per call site, the
// result cached by the caller), the instruments themselves are lock-free.
// Exposition renders every registered instrument as Prometheus text
// (counters as `_total`-suffixed samples if the caller named them so;
// histograms as cumulative `_bucket{le=...}`/`_sum`/`_count` families) or
// as one JSON object.
//
// This header depends on the standard library only — the engine and nal
// layers can use it without the service leaking back into them.
#ifndef NALQ_OBS_METRICS_H_
#define NALQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nalq::obs {

/// Monotonic counter. Add() is a relaxed atomic: counters are reconciled by
/// readers at exposition time, never used for synchronization.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double. Set/value are relaxed atomics (no read-modify-
/// write cycle, so no CAS loop needed).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over non-negative doubles (negative observations
/// clamp to the lowest bucket rather than being dropped — a clock that runs
/// backwards should be visible, not invisible).
class Histogram {
 public:
  /// 4 linear sub-buckets per base-2 octave: relative quantile error is
  /// bounded by the sub-bucket width, 1/(2·4) = 12.5%.
  static constexpr int kSubBuckets = 4;
  /// Octave range [2^kMinExp, 2^kMaxExp) covers 1e-9 .. 1e+12 — nanoseconds
  /// to terabytes in the same scheme; out-of-range values clamp to the
  /// first/last bucket.
  static constexpr int kMinExp = -30;
  static constexpr int kMaxExp = 40;
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSubBuckets + 2;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// The value at quantile `q` in [0, 1]: the upper bound of the bucket the
  /// rank falls in (0 when the histogram is empty). Monotone in q.
  double Quantile(double q) const;

  /// One non-empty bucket: its inclusive upper bound and its own (NOT
  /// cumulative) count. Snapshot order is ascending `le`.
  struct Bucket {
    double le = 0;
    uint64_t count = 0;
  };
  std::vector<Bucket> Snapshot() const;

  /// Inclusive upper bound of bucket `i` (exposed for tests).
  static double UpperBound(int i);
  /// Bucket index for value `v` (exposed for tests).
  static int BucketIndex(double v);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  /// Sum kept as a CAS loop over a double's bit pattern: atomic<double>::
  /// fetch_add is C++20 but not yet lock-free everywhere.
  std::atomic<uint64_t> sum_bits_{0};
};

/// Name-interned instruments + exposition. Thread-safe; references returned
/// by Get* stay valid for the registry's lifetime (instruments are never
/// removed).
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Prometheus text exposition: `# TYPE` comment per family; histograms as
  /// cumulative `_bucket{le="..."}` samples (non-empty buckets plus
  /// `+Inf`), `_sum` and `_count`.
  std::string PrometheusText() const;

  /// The same data as one JSON object:
  /// {"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum,p50,p90,p99},...}}.
  std::string Json() const;

 private:
  mutable std::mutex mu_;  ///< guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace nalq::obs

#endif  // NALQ_OBS_METRICS_H_
