// Per-operator query profiling (the EXPLAIN ANALYZE of this engine).
//
// A ProfileCollector is the per-evaluator sink: one OpMetrics slot per
// *tracked* node — the plan tree's own operators, registered up front by
// walking `children` (algebra nested inside subscript expressions is
// deliberately NOT tracked; its work attributes to the operator that
// evaluates it, identically in every executor, because nested algebra
// always evaluates through Evaluator::EvalOp).
//
// Attribution happens at the two existing tuples_produced count sites via
// the collector's scope pointer (`current`): the streaming ProfileCursor
// decorators (cursor.cpp) and the materializing EvalOp maintain it with
// stack discipline, so `rows` per operator is exact — it partitions
// EvalStats::tuples_produced — and byte-identical across the streaming,
// materializing and parallel executors at any thread count
// (tests/obs_profile_test.cpp asserts it). Wall time, spill bytes and the
// Open/Next/Close call counts are measured by the decorators and are
// executor-specific: wall/spill are INCLUSIVE of the subtree (summed over
// all threads under the exchange), and the materializing evaluator records
// one `open` per EvalOp with zero next/close.
//
// Exchange workers get their own collector over the same tracked node set
// (CloneEmpty) and the exchange folds them in saturating at Close — the
// same discipline as EvalStats.
//
// When profiling is off no collector exists: the executors' only cost is a
// null-pointer check per produced tuple / per operator evaluation.
#ifndef NALQ_OBS_PROFILE_H_
#define NALQ_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "nal/algebra.h"

namespace nalq::obs {

/// One tracked operator's counters.
struct OpMetrics {
  uint64_t open_calls = 0;
  uint64_t next_calls = 0;
  uint64_t close_calls = 0;
  /// Tuples this operator emitted (its share of EvalStats::tuples_produced;
  /// subscript-nested algebra emissions attribute to the owning operator).
  /// Part of the cross-executor identity contract; the fields above/below
  /// are not.
  uint64_t rows = 0;
  /// Wall time inside this operator's subtree, summed over all threads.
  uint64_t wall_ns = 0;
  /// Spool bytes spilled while inside this operator's subtree.
  uint64_t spill_bytes = 0;

  /// Saturating merge (like EvalStats), used when exchange workers fold.
  OpMetrics& operator+=(const OpMetrics& other);
};

/// Per-evaluator accumulation sink keyed by plan node. Single-threaded use
/// per instance; the parallel executor gives every worker its own clone.
class ProfileCollector {
 public:
  /// Registers every node of the plan tree rooted at `root` as tracked.
  explicit ProfileCollector(const nal::AlgebraOp& root);

  /// A collector with the same tracked node set and zeroed counters — the
  /// per-worker clone the exchange hands each worker evaluator.
  ProfileCollector CloneEmpty() const;

  /// The tracked slot for `op`, or null for untracked (subscript) nodes.
  OpMetrics* Find(const nal::AlgebraOp* op) {
    auto it = metrics_.find(op);
    return it == metrics_.end() ? nullptr : &it->second;
  }
  const OpMetrics* Find(const nal::AlgebraOp* op) const {
    auto it = metrics_.find(op);
    return it == metrics_.end() ? nullptr : &it->second;
  }

  /// The operator currently in scope — where CountProduced attributes rows.
  OpMetrics* current() const { return current_; }
  void set_current(OpMetrics* m) { current_ = m; }

  /// Folds a worker's counters in, slot by slot, saturating.
  void MergeFrom(const ProfileCollector& worker);

  /// Σ rows over every tracked slot (== EvalStats::tuples_produced after a
  /// completed run).
  uint64_t TotalRows() const;

 private:
  ProfileCollector() = default;

  std::unordered_map<const nal::AlgebraOp*, OpMetrics> metrics_;
  OpMetrics* current_ = nullptr;
};

/// One node of the serialized profile tree.
struct ProfileNode {
  std::string op;        ///< operator kind (nal::OpKindName)
  std::string headline;  ///< one-line rendering (nal/printer.h)
  double est_rows = -1;  ///< optimizer row estimate; -1 = unavailable
  OpMetrics metrics;
  std::vector<ProfileNode> children;
};

/// The profile a run returns (engine::RunResult::profile). `enabled` false
/// means profiling was off and everything else is default-initialized.
struct QueryProfile {
  bool enabled = false;
  ProfileNode root;
  /// Σ rows over the tree — equals the run's EvalStats::tuples_produced.
  uint64_t total_rows = 0;

  /// JSON tree: {"total_rows":N,"root":{"op":...,"headline":...,
  /// "est_rows":...,"rows":...,"wall_ns":...,"spill_bytes":...,
  /// "open_calls":...,"next_calls":...,"close_calls":...,
  /// "children":[...]}} — empty string when !enabled.
  std::string ToJson() const;
};

/// Assembles the profile tree from a finished run's collector. `est_rows`
/// maps plan nodes to the optimizer's row estimates (may be null).
QueryProfile BuildQueryProfile(
    const nal::AlgebraOp& root, const ProfileCollector& collector,
    const std::map<const nal::AlgebraOp*, double>* est_rows);

/// JSON string literal (quotes + escapes) — shared by the profile/trace
/// serializers and the service's slow-query log.
std::string JsonQuote(const std::string& s);

}  // namespace nalq::obs

#endif  // NALQ_OBS_PROFILE_H_
