// Query lifecycle tracing: per-query span logs exportable as Chrome
// trace_event JSON, plus the slow-query log sink.
//
// A TraceLog collects closed spans — {name, thread, start, duration} on the
// monotonic clock — from any thread (one mutex around a vector append; a
// span closes once, so contention is per-span, not per-tuple). The service
// opens one log per query when a trace directory is configured and records
// the submit→admit→compile/cache→execute lifecycle; the engine adds an
// execute span and the exchange adds one span per worker chunk / Γ
// partition task. Export is the Chrome trace_event "X" (complete event)
// format — load the file in chrome://tracing or Perfetto.
//
// When tracing is off no TraceLog exists and every recording site is a
// null-pointer check (TraceLog::Span on a null log reads no clock).
//
// This header depends on the standard library only.
#ifndef NALQ_OBS_TRACE_H_
#define NALQ_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace nalq::obs {

class TraceLog {
 public:
  using Clock = std::chrono::steady_clock;

  TraceLog() : epoch_(Clock::now()) {}

  /// Records one closed span. Thread-safe. `name` is copied.
  void AddSpan(const char* name, Clock::time_point begin,
               Clock::time_point end);

  /// RAII span: records [construction, destruction) on `log`, or nothing
  /// when `log` is null — the recording sites stay branch-cheap when
  /// tracing is off.
  class Span {
   public:
    Span(TraceLog* log, const char* name) : log_(log), name_(name) {
      if (log_ != nullptr) begin_ = Clock::now();
    }
    ~Span() {
      if (log_ != nullptr) log_->AddSpan(name_, begin_, Clock::now());
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    TraceLog* log_;
    const char* name_;
    Clock::time_point begin_;
  };

  size_t span_count() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}; ph:"X" complete
  /// events, timestamps in microseconds since the log's epoch).
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `dir`/`prefix`-<pid>-<seq>.json and returns
  /// the path, or an empty string on I/O failure — tracing must never fail
  /// a query.
  std::string WriteFile(const std::string& dir, const char* prefix) const;

 private:
  struct Rec {
    std::string name;
    uint64_t tid = 0;
    int64_t ts_us = 0;
    int64_t dur_us = 0;
  };

  mutable std::mutex mu_;
  Clock::time_point epoch_;
  std::vector<Rec> spans_;
};

/// Append-only JSONL sink for the service's slow-query log. Thread-safe;
/// each Append opens, writes one line, and closes (slow queries are rare by
/// definition — simplicity over a held descriptor).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::string path) : path_(std::move(path)) {}
  /// Appends one line (the caller passes a complete JSON object). Silently
  /// drops the record on I/O failure — observability never fails a query.
  void Append(const std::string& json_line);
  const std::string& path() const { return path_; }

 private:
  std::mutex mu_;
  std::string path_;
};

}  // namespace nalq::obs

#endif  // NALQ_OBS_TRACE_H_
