#include "obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "obs/profile.h"  // JsonQuote

namespace nalq::obs {

namespace {

uint64_t ThisThreadId() {
  // A stable small-ish id per thread; Chrome only needs distinctness.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff;
}

}  // namespace

void TraceLog::AddSpan(const char* name, Clock::time_point begin,
                       Clock::time_point end) {
  Rec rec;
  rec.name = name;
  rec.tid = ThisThreadId();
  rec.ts_us =
      std::chrono::duration_cast<std::chrono::microseconds>(begin - epoch_)
          .count();
  rec.dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

size_t TraceLog::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string TraceLog::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Rec& r = spans_[i];
    if (i != 0) out << ",";
    out << "{\"name\":" << JsonQuote(r.name)
        << ",\"ph\":\"X\",\"cat\":\"nalq\",\"pid\":1,\"tid\":" << r.tid
        << ",\"ts\":" << r.ts_us << ",\"dur\":" << r.dur_us << "}";
  }
  out << "]}";
  return out.str();
}

std::string TraceLog::WriteFile(const std::string& dir,
                                const char* prefix) const {
  static std::atomic<uint64_t> seq{0};
  std::string path = dir + "/" + prefix + "-" + std::to_string(getpid()) +
                     "-" + std::to_string(seq.fetch_add(1)) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return {};
  out << ToChromeJson() << "\n";
  return out ? path : std::string();
}

void SlowQueryLog::Append(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path_, std::ios::app);
  if (!out) return;
  out << json_line << "\n";
}

}  // namespace nalq::obs
