#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

namespace nalq::obs {

int Histogram::BucketIndex(double v) {
  if (!(v > 0) || std::isnan(v)) return 0;  // <= 0, NaN → lowest bucket
  int exp = 0;
  double frac = std::frexp(v, &exp);  // v = frac · 2^exp, frac ∈ [0.5, 1)
  if (exp < kMinExp) return 0;
  if (exp >= kMaxExp) return kBuckets - 1;
  int sub = static_cast<int>((frac - 0.5) * 2 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::UpperBound(int i) {
  if (i <= 0) return std::ldexp(0.5, kMinExp);  // everything at or below 2^min
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  int off = i - 1;
  int exp = kMinExp + off / kSubBuckets;
  int sub = off % kSubBuckets;
  return std::ldexp(0.5 + (sub + 1) / (2.0 * kSubBuckets), exp);
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double add = (!(v > 0) || std::isnan(v)) ? 0.0 : v;
  uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    double cur;
    static_assert(sizeof(cur) == sizeof(expected));
    std::memcpy(&cur, &expected, sizeof(cur));
    double next = cur + add;
    uint64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(expected, next_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based; q=0.5 over 10 observations
  // lands on the 5th.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * total + 0.5));
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) return UpperBound(i);
  }
  return UpperBound(kBuckets - 1);
}

std::vector<Histogram::Bucket> Histogram::Snapshot() const {
  std::vector<Bucket> out;
  for (int i = 0; i < kBuckets; ++i) {
    uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.push_back(Bucket{UpperBound(i), n});
  }
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << "# TYPE " << name << " counter\n"
        << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "# TYPE " << name << " gauge\n"
        << name << " " << FormatDouble(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "# TYPE " << name << " histogram\n";
    uint64_t cum = 0;
    for (const Histogram::Bucket& b : h->Snapshot()) {
      cum += b.count;
      out << name << "_bucket{le=\"" << FormatDouble(b.le) << "\"} " << cum
          << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h->count() << "\n"
        << name << "_sum " << FormatDouble(h->sum()) << "\n"
        << name << "_count " << h->count() << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::Json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\"" << name << "\":" << c->value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\"" << name
        << "\":" << FormatDouble(g->value());
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << "\"" << name << "\":{\"count\":" << h->count()
        << ",\"sum\":" << FormatDouble(h->sum())
        << ",\"p50\":" << FormatDouble(h->Quantile(0.5))
        << ",\"p90\":" << FormatDouble(h->Quantile(0.9))
        << ",\"p99\":" << FormatDouble(h->Quantile(0.99)) << "}";
    first = false;
  }
  out << "}}";
  return out.str();
}

}  // namespace nalq::obs
