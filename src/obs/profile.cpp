#include "obs/profile.h"

#include <cstdio>
#include <sstream>

#include "nal/printer.h"

namespace nalq::obs {

namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

}  // namespace

OpMetrics& OpMetrics::operator+=(const OpMetrics& other) {
  open_calls = SatAdd(open_calls, other.open_calls);
  next_calls = SatAdd(next_calls, other.next_calls);
  close_calls = SatAdd(close_calls, other.close_calls);
  rows = SatAdd(rows, other.rows);
  wall_ns = SatAdd(wall_ns, other.wall_ns);
  spill_bytes = SatAdd(spill_bytes, other.spill_bytes);
  return *this;
}

namespace {

void RegisterTree(const nal::AlgebraOp& op,
                  std::unordered_map<const nal::AlgebraOp*, OpMetrics>* out) {
  out->emplace(&op, OpMetrics{});
  for (const nal::AlgebraPtr& child : op.children) {
    if (child != nullptr) RegisterTree(*child, out);
  }
}

}  // namespace

ProfileCollector::ProfileCollector(const nal::AlgebraOp& root) {
  RegisterTree(root, &metrics_);
}

ProfileCollector ProfileCollector::CloneEmpty() const {
  ProfileCollector clone;
  for (const auto& [node, m] : metrics_) {
    clone.metrics_.emplace(node, OpMetrics{});
  }
  return clone;
}

void ProfileCollector::MergeFrom(const ProfileCollector& worker) {
  for (const auto& [node, m] : worker.metrics_) {
    metrics_[node] += m;
  }
}

uint64_t ProfileCollector::TotalRows() const {
  uint64_t total = 0;
  for (const auto& [node, m] : metrics_) total = SatAdd(total, m.rows);
  return total;
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

ProfileNode BuildNode(const nal::AlgebraOp& op,
                      const ProfileCollector& collector,
                      const std::map<const nal::AlgebraOp*, double>* est_rows) {
  ProfileNode node;
  node.op = nal::OpKindName(op.kind);
  node.headline = nal::OpHeadline(op);
  if (const OpMetrics* m = collector.Find(&op)) node.metrics = *m;
  if (est_rows != nullptr) {
    auto it = est_rows->find(&op);
    if (it != est_rows->end()) node.est_rows = it->second;
  }
  for (const nal::AlgebraPtr& child : op.children) {
    if (child != nullptr) {
      node.children.push_back(BuildNode(*child, collector, est_rows));
    }
  }
  return node;
}

void NodeToJson(const ProfileNode& n, std::ostringstream* out) {
  char est[64];
  std::snprintf(est, sizeof(est), "%.3f", n.est_rows);
  *out << "{\"op\":" << JsonQuote(n.op)
       << ",\"headline\":" << JsonQuote(n.headline) << ",\"est_rows\":" << est
       << ",\"rows\":" << n.metrics.rows
       << ",\"wall_ns\":" << n.metrics.wall_ns
       << ",\"spill_bytes\":" << n.metrics.spill_bytes
       << ",\"open_calls\":" << n.metrics.open_calls
       << ",\"next_calls\":" << n.metrics.next_calls
       << ",\"close_calls\":" << n.metrics.close_calls << ",\"children\":[";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (i != 0) *out << ",";
    NodeToJson(n.children[i], out);
  }
  *out << "]}";
}

}  // namespace

QueryProfile BuildQueryProfile(
    const nal::AlgebraOp& root, const ProfileCollector& collector,
    const std::map<const nal::AlgebraOp*, double>* est_rows) {
  QueryProfile profile;
  profile.enabled = true;
  profile.root = BuildNode(root, collector, est_rows);
  profile.total_rows = collector.TotalRows();
  return profile;
}

std::string QueryProfile::ToJson() const {
  if (!enabled) return {};
  std::ostringstream out;
  out << "{\"total_rows\":" << total_rows << ",\"root\":";
  NodeToJson(root, &out);
  out << "}";
  return out.str();
}

}  // namespace nalq::obs
