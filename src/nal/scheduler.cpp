#include "nal/scheduler.h"

#include <algorithm>
#include <system_error>

#include "engine/error.h"
#include "nal/fault_injection.h"

namespace nalq::nal {

Scheduler& Scheduler::Global() {
  // Leaked intentionally: worker threads may still be parked in the pool
  // when static destructors run; tearing the pool down underneath them is
  // a shutdown crash for no benefit.
  static Scheduler* pool = []() {
    unsigned hw = std::thread::hardware_concurrency();
    return new Scheduler(hw == 0 ? 1 : hw);
  }();
  return *pool;
}

Scheduler::Scheduler(unsigned initial_threads) {
  workers_.reserve(kMaxThreads);
  threads_.reserve(kMaxThreads);
  EnsureThreads(initial_threads == 0 ? 1 : initial_threads);
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Scheduler::EnsureThreads(unsigned n) {
  n = std::min(n, kMaxThreads);
  std::lock_guard<std::mutex> lock(pool_mu_);
  while (count_.load(std::memory_order_relaxed) < n) {
    if (int injected = FaultInjector::Current().MaybeFail(
            FaultSite::kSchedulerWorkerStart)) {
      throw engine::Error(engine::ErrorCode::kBudgetExhausted,
                          "scheduler: cannot start worker thread", injected,
                          {}, "scheduler.worker_start");
    }
    workers_.push_back(std::make_unique<Worker>());
    size_t self = workers_.size() - 1;
    // Publish the new slot before the thread (or any Submit) can index it.
    count_.store(workers_.size(), std::memory_order_release);
    try {
      threads_.emplace_back([this, self] { WorkerLoop(self); });
    } catch (const std::system_error& e) {
      // The slot stays published (already-running threads may be indexing
      // it, and its deque is stealable), but the pool stops growing. The
      // caller sees a structured resource error.
      throw engine::Error(engine::ErrorCode::kBudgetExhausted,
                          "scheduler: cannot start worker thread",
                          e.code().value(), {}, "scheduler.worker_start");
    }
  }
}

void Scheduler::Submit(std::function<void()> task) {
  size_t n = count_.load(std::memory_order_acquire);
  size_t target = next_.fetch_add(1, std::memory_order_relaxed) % n;
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  // The notify pairs with the idle wait below; taking pool_mu_ here closes
  // the window where a worker checks the deques, finds them empty, and
  // sleeps just as this task arrives.
  { std::lock_guard<std::mutex> lock(pool_mu_); }
  idle_cv_.notify_one();
}

bool Scheduler::TryPop(size_t self, std::function<void()>* task) {
  size_t n = count_.load(std::memory_order_acquire);
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  for (size_t i = 1; i < n; ++i) {
    Worker& victim = *workers_[(self + i) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool Scheduler::HasWork() {
  size_t n = count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    std::lock_guard<std::mutex> lock(workers_[i]->mu);
    if (!workers_[i]->tasks.empty()) return true;
  }
  return false;
}

void Scheduler::WorkerLoop(size_t self) {
  std::function<void()> task;
  while (true) {
    if (TryPop(self, &task)) {
      task();
      task = nullptr;
      executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(pool_mu_);
    if (stop_) return;
    idle_cv_.wait(lock, [this] { return stop_ || HasWork(); });
    if (stop_) return;
  }
}

}  // namespace nalq::nal
