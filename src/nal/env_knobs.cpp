#include "nal/env_knobs.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "engine/error.h"

namespace nalq::nal {

uint64_t EnvKnobU64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  // strtoull accepts leading whitespace, a sign, and hex prefixes, and it
  // wraps negatives; a knob wants none of that — digits only, fully
  // consumed.
  for (const char* p = s; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      throw engine::Error(
          engine::ErrorCode::kPlanError,
          std::string("malformed environment knob ") + name + "=\"" + s +
              "\" (expected a non-negative decimal integer)",
          0, {}, "env_knobs");
    }
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    throw engine::Error(
        engine::ErrorCode::kPlanError,
        std::string("malformed environment knob ") + name + "=\"" + s +
            "\" (out of range for a 64-bit value)",
        0, {}, "env_knobs");
  }
  return static_cast<uint64_t>(v);
}

bool EnvKnobBool(const char* name, bool fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  if (s[0] == '0' && s[1] == '\0') return false;
  if (s[0] == '1' && s[1] == '\0') return true;
  throw engine::Error(
      engine::ErrorCode::kPlanError,
      std::string("malformed environment knob ") + name + "=\"" + s +
          "\" (expected 0 or 1)",
      0, {}, "env_knobs");
}

std::string EnvKnobString(const char* name, std::string fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return s;
}

}  // namespace nalq::nal
