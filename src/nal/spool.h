// Memory-bounded execution: the spool/buffer layer under the streaming
// executor's pipeline breakers.
//
// The paper evaluates the unnested NAL plans inside Natix under real memory
// constraints and notes that its hash joins are Grace hash joins with order
// restoration (Sec. 2, "One word on implementation"). This layer supplies
// the machinery our cursors need to honor a memory budget the same way:
//
//   * MemoryBudget — a process-wide, thread-safe accountant every pipeline
//     breaker charges for what it keeps resident and releases when it
//     spills or closes (per-breaker reservations against one global limit);
//   * SpoolContext — per-run spool configuration: the budget plus lazy
//     creation and RAII cleanup of a private temp-file directory. Parallel
//     workers get private child contexts (own directory, sharing the run's
//     accountant), so spool files are worker-private by construction;
//   * a Tuple/Value codec — length-prefixed binary encoding of every Value
//     kind (nested sequences included) over the process-stable Symbol ids
//     and NodeRefs, so runs of tuples round-trip through temp files;
//   * ExternalSorter — run formation under the budget plus multi-pass
//     k-way merge with a bounded fan-in; backs the Sort breaker, and doubles
//     as the order-restoration sort of the grace joins and the grouped-Γ
//     output (records carry a (key, seq) pair the merge orders by);
//   * spill-aware breaker cursors — drop-in replacements for the Sort,
//     hash-join/semi/anti/outer/nest-join and unary-Γ cursors of cursor.cpp
//     that buffer in RAM while the budget allows and grace-partition /
//     external-sort once it runs out. With an unlimited budget the spill
//     cursors are never built; with a finite budget but inputs that fit,
//     they reproduce the in-memory cursors bit for bit (same output bytes,
//     same EvalStats, same StreamStats charges) — asserted differentially
//     by tests/spool_test.cpp.
//
// Order preservation under spilling: grace hash builds partition both sides
// by join-key hash, join each partition pair (recursively re-partitioning a
// build partition that still exceeds its load limit), and tag every match
// with (left position, right position); an external sort on that pair
// restores exactly the order the in-memory probe produces (probe in
// left-input order, bucket positions ascending), with duplicate pairs from
// multi-valued keys dropped at the merge — mirroring LookupInto's
// sort+unique. Residual predicates are evaluated after the restoration
// merge, in final output order, so predicate counts and Ξ-visible effects
// match the in-memory run. Γ tags each group with the sequence number of
// its first member (its first-occurrence rank) and restores the group
// output order the same way.
#ifndef NALQ_NAL_SPOOL_H_
#define NALQ_NAL_SPOOL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nal/cursor.h"
#include "nal/eval.h"

namespace nalq::nal {

class FaultInjector;  // deterministic fault injection (nal/fault_injection.h)

/// Thread-safe memory accountant. One instance bounds everything the
/// breakers of one execution keep resident; breakers TryCharge before
/// buffering and Release what they charged when they spill or close.
/// A limit of 0 means unlimited (every TryCharge succeeds).
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t limit_bytes) : limit_(limit_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  bool limited() const { return limit_ != 0; }
  uint64_t limit_bytes() const { return limit_; }
  uint64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }

  /// Reserves `bytes` if it fits under the limit; false (and no charge)
  /// otherwise.
  bool TryCharge(uint64_t bytes) {
    if (!limited()) return true;
    uint64_t used = used_.load(std::memory_order_relaxed);
    while (true) {
      if (used + bytes > limit_) return false;
      if (used_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Progress guarantee: charges unconditionally, over-committing the limit.
  /// Used for the single record a breaker must hold to keep moving when the
  /// budget is exhausted (the degenerate 1–2 tuple sort runs of a tiny
  /// budget come from exactly this).
  void ChargeUnchecked(uint64_t bytes) {
    if (limited()) used_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void Release(uint64_t bytes) {
    if (limited()) used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

 private:
  const uint64_t limit_;
  std::atomic<uint64_t> used_{0};
};

/// Per-run spool configuration: the budget plus the temp-file directory.
/// The directory is created lazily on the first spill and removed (with
/// anything left in it) by the destructor; every spool file additionally
/// removes itself when its owner dies, so both the success and the
/// thrown-error path leave no files behind (asserted by
/// tests/spool_test.cpp). A SpoolContext is used by one executor thread;
/// parallel workers each get their own.
class SpoolContext {
 public:
  /// `budget_bytes` of 0 disables spilling (the context is inert).
  /// `dir` overrides the automatic temp directory (tests).
  explicit SpoolContext(uint64_t budget_bytes, std::string dir = {});
  /// Worker form: shares `shared` — the run's global accountant — instead
  /// of owning a budget, while keeping its own (worker-private) temp
  /// directory. `shared` must outlive this context. Used by the exchange
  /// so one limit truly bounds the whole parallel run.
  explicit SpoolContext(MemoryBudget& shared, std::string dir = {});
  ~SpoolContext();
  SpoolContext(const SpoolContext&) = delete;
  SpoolContext& operator=(const SpoolContext&) = delete;

  MemoryBudget& budget() { return *budget_; }
  bool enabled() const { return budget_->limited(); }

  /// Fresh file path inside the spool directory (created on first call).
  std::string NewFilePath();

  const std::string& dir() const { return dir_; }
  bool dir_created() const { return created_; }

  /// Cancellation token for the run (nal/query_control.h), or null. The
  /// spool layer polls it per temp-file record (SpoolFile append/read), so
  /// external-sort merge passes and grace partition processing — loops that
  /// can run long without producing a root tuple — stay interruptible. The
  /// streaming/parallel entry points wire the evaluator's token in here;
  /// the token must outlive the context's use.
  void set_control(QueryControl* control) { control_ = control; }
  QueryControl* control() const { return control_; }
  /// Cancellation point (see QueryControl::Poll).
  void Poll() {
    if (control_ != nullptr) control_->Poll();
  }

  /// Estimated build-side rows per breaker node (opt/parallel.h fills this
  /// from the cardinality model). The grace cursors consult it when the
  /// budget overflows to size their level-0 partition count from the
  /// *expected* build volume instead of the static budget/32KB rule — see
  /// GracePartitionCount. Borrowed; must outlive the context's use. Null =
  /// no hints.
  void set_row_hints(const std::map<const AlgebraOp*, double>* hints) {
    row_hints_ = hints;
  }
  const std::map<const AlgebraOp*, double>* row_hints() const {
    return row_hints_;
  }
  /// Estimated input rows for `op`, or 0 when unknown.
  double RowHint(const AlgebraOp* op) const {
    if (row_hints_ == nullptr) return 0.0;
    auto it = row_hints_->find(op);
    return it == row_hints_->end() ? 0.0 : it->second;
  }

  /// Fault injector for this run's spool sites (nal/fault_injection.h).
  /// Captured as FaultInjector::Current() at construction — so a
  /// ScopedFaultInjector alive on the constructing thread scopes faults to
  /// exactly this run — and copied onto worker contexts by the exchange.
  /// Never null.
  void set_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* injector() const { return injector_; }

  /// Budget from the NALQ_MEMORY_BUDGET_BYTES environment variable (0 when
  /// unset; malformed values throw — see nal/env_knobs.h), read once per
  /// process. The streaming/parallel entry points fall back to it when no
  /// explicit spool is supplied, so every existing differential suite can
  /// run with spilling active under one environment setting (see
  /// .github/workflows/ci.yml).
  static uint64_t EnvBudgetBytes();

 private:
  std::unique_ptr<MemoryBudget> own_budget_;  ///< null in the worker form
  MemoryBudget* budget_;
  const std::map<const AlgebraOp*, double>* row_hints_ = nullptr;
  QueryControl* control_ = nullptr;
  FaultInjector* injector_;  ///< set by both constructors, never null
  std::string dir_;
  bool created_ = false;
  bool owns_dir_ = true;
  uint64_t next_file_ = 0;
};

// ---------------------------------------------------------------------------
// Tuple/Value codec (spool temp files are process-private: Symbol ids and
// NodeRefs are stable for exactly that lifetime)
// ---------------------------------------------------------------------------

void EncodeValue(const Value& v, std::string* out);
void EncodeTuple(const Tuple& t, std::string* out);

/// Bounds-checked decoding; false on a truncated/corrupt buffer (the spool
/// readers turn that into a std::runtime_error).
bool DecodeValue(const uint8_t** p, const uint8_t* end, Value* out);
bool DecodeTuple(const uint8_t** p, const uint8_t* end, Tuple* out);

/// Approximate resident size of a tuple (codec size plus container
/// overhead) — the unit the breakers charge against the budget.
uint64_t ApproximateTupleBytes(const Tuple& t);

// ---------------------------------------------------------------------------
// External merge sort
// ---------------------------------------------------------------------------

/// Sorts records of (key values, sequence number, tuple) by the key —
/// per-component Value::Compare with optional per-component descending
/// flags — with ties broken by the sequence number, which callers make
/// unique to keep the order deterministic (and equal to a stable in-memory
/// sort). Records accumulate in RAM while the budget allows; overflow sorts
/// and spills the buffer as a run. Finish() merges the spilled runs (and
/// the resident remainder) with a budget-derived fan-in, running extra
/// merge passes — counted in SpillStats::merge_passes — when there are more
/// runs than the fan-in allows.
class ExternalSorter {
 public:
  struct Record {
    std::vector<Value> key;
    uint64_t seq = 0;
    Tuple tuple;
  };

  ExternalSorter(SpoolContext* spool, SpillStats* stats,
                 std::vector<uint8_t> desc = {});
  ~ExternalSorter();
  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  void Add(std::vector<Value> key, uint64_t seq, Tuple tuple);
  /// No more Add()s; prepares the merge.
  void Finish();
  /// Records in (key, seq) order. Finish() must have been called.
  bool Next(Record* out);

  bool spilled() const { return spilled_runs_ != 0; }
  uint64_t size() const { return added_; }
  /// Records still resident (the in-memory run) after Finish().
  uint64_t memory_records() const;

 private:
  class Impl;
  friend class Impl;
  void Flush();

  SpoolContext* spool_;
  SpillStats* stats_;
  std::vector<uint8_t> desc_;
  uint64_t added_ = 0;
  uint64_t spilled_runs_ = 0;
  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// Spill-aware breaker cursors (built by cursor.cpp when the run carries a
// finite budget and the operator's subscripts are Ξ-free)
// ---------------------------------------------------------------------------

/// True when `ctx` opts cursors into memory-bounded execution.
bool SpillEnabled(const ExecContext& ctx);

/// Grace admission policy: the level-0 partition count a spilling breaker
/// opens. With no estimate (`est_build_bytes` <= 0, or larger than what a
/// double can usefully say) the static rule applies — budget/32KB clamped to
/// [4, 64]. With an estimate (optimizer row hint × observed average tuple
/// bytes at switch time) the count is sized so each partition is expected to
/// fit its load limit in one pass: ceil(est / (budget/2)) clamped to
/// [4, min(budget/16KB, 256)] — fewer open files for small overflows, no
/// recursive re-partitioning cascade for builds far beyond the budget.
size_t GracePartitionCount(uint64_t budget_limit_bytes,
                           double est_build_bytes);

/// External-merge-sort Sort breaker.
CursorPtr MakeSpillSortCursor(const AlgebraOp& op, ExecContext& ctx,
                              CursorPtr input);

/// Grace-partitioned unary Γ with first-occurrence order restoration
/// (θ-grouping spools its input and rescans it per key instead).
CursorPtr MakeSpillGroupUnaryCursor(const AlgebraOp& op, ExecContext& ctx,
                                    CursorPtr input);

/// Grace hash build for ⋈/⋉/▷/outer-join/binary-Γ (and ×): hybrid build
/// side, recursive re-partitioning, (left, right) position order
/// restoration; predicates without an equality conjunct fall back to a
/// block nested loop over the spooled build side.
CursorPtr MakeSpillJoinCursor(const AlgebraOp& op, ExecContext& ctx,
                              CursorPtr left, CursorPtr right);

/// Spool-backed replacement for the order-pinning BufferCursor: buffers in
/// RAM under the budget, overflows to a spool file, replays in order. Like
/// BufferCursor it re-emits already-counted tuples.
CursorPtr MakeSpoolBufferCursor(ExecContext& ctx, CursorPtr input);

}  // namespace nalq::nal

#endif  // NALQ_NAL_SPOOL_H_
