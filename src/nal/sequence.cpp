#include "nal/sequence.h"

namespace nalq::nal {

bool SequencesEqual(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

std::string DebugStringOf(const Sequence& s) {
  std::string out = "<";
  bool first = true;
  for (const Tuple& t : s) {
    if (!first) out += ", ";
    out += t.DebugString();
    first = false;
  }
  return out + ">";
}

Sequence TuplesFromItems(Symbol a, const ItemSeq& items) {
  Sequence out;
  out.Reserve(items.size());
  for (const Value& v : items) {
    Tuple t;
    t.Set(a, v);
    out.Append(std::move(t));
  }
  return out;
}

}  // namespace nalq::nal
