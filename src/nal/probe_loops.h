// Shared join/Γ probe loops for the streaming cursors (cursor.cpp) and the
// spill-aware cursors' fits-in-memory and spooled-nested-loop modes
// (spool.cpp).
//
// Before this header the spill cursors replicated the plain cursors' probe
// loops verbatim under a "mirror contract" comment — a semantic change to
// one side silently broke the byte-identity of budgeted-but-fitting runs.
// Now there is exactly one implementation of each loop, parameterized over
// an Access policy, and the identity holds by construction (still asserted
// differentially by tests/spool_test.cpp).
//
// Access policy — the cursor itself, exposing:
//
//   ExecContext& ctx();
//   const AlgebraOp& op() const;
//   bool LeftNext(Tuple* out);             // next probe-side tuple
//   bool use_index() const;                // hash path active
//   const HashIndex& hash_index() const;   // valid when use_index()
//   const Expr* residual() const;          // equi residual or null; "
//   std::span<const Symbol> probe_attrs() const;  // probe key attrs;  "
//   const Tuple& right_at(uint32_t pos) const;    // build-side tuple; "
//   void ScanRestart();                    // nested-loop scan of the build
//   bool ScanNext(const Tuple** r);        // side (in RAM or spooled)
//   // outer join only:
//   const std::vector<Symbol>& outer_null_attrs() const;
//   const Value& outer_default() const;
//
// The loops own the per-probe iteration state (current left tuple, lookup
// positions, key scratch), so a cursor embeds one JoinProbeLoops and
// forwards Next() to the member matching its operator kind.
#ifndef NALQ_NAL_PROBE_LOOPS_H_
#define NALQ_NAL_PROBE_LOOPS_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "engine/error.h"
#include "nal/algebra.h"
#include "nal/cursor.h"
#include "nal/physical.h"

namespace nalq::nal::probe {

inline void CountProducedTuple(ExecContext& ctx) {
  // Every operator of every executor funnels its emissions through this
  // counter (Evaluator::CountProduced also attributes the tuple to the
  // profiled operator in scope), which makes it the universal per-tuple
  // cancellation point.
  ctx.ev->CountProduced(1);
  ctx.ev->CheckInterrupt();
}

template <class Access>
class JoinProbeLoops {
 public:
  /// Forgets any in-flight probe state (call from Open).
  void Reset() {
    have_left_ = false;
    matched_ = false;
    lookup_.clear();
    lookup_pos_ = 0;
  }

  /// × and ⋈: emit every (residual-satisfying) combination.
  bool NextCrossJoin(Access& a, Tuple* out) {
    ExecContext& ctx = a.ctx();
    const AlgebraOp& op = a.op();
    while (true) {
      if (have_left_) {
        if (a.use_index()) {
          while (lookup_pos_ < lookup_.size()) {
            uint32_t rpos = lookup_[lookup_pos_++];
            Tuple combined = cur_left_.Concat(a.right_at(rpos));
            if (a.residual() == nullptr ||
                ctx.ev->EvalPred(*a.residual(), combined, *ctx.env)) {
              *out = std::move(combined);
              CountProducedTuple(ctx);
              return true;
            }
          }
        } else {
          const Tuple* r = nullptr;
          while (a.ScanNext(&r)) {
            Tuple combined = cur_left_.Concat(*r);
            if (op.kind == OpKind::kCross ||
                ctx.ev->EvalPred(*op.pred, combined, *ctx.env)) {
              *out = std::move(combined);
              CountProducedTuple(ctx);
              return true;
            }
          }
        }
        have_left_ = false;
      }
      if (!a.LeftNext(&cur_left_)) return false;
      have_left_ = true;
      lookup_pos_ = 0;
      a.ScanRestart();
      if (a.use_index()) {
        a.hash_index().LookupInto(cur_left_, a.probe_attrs(), ctx.ev->store(),
                                  &key_scratch_, &lookup_);
      }
    }
  }

  /// ⋉ and ▷: emit the left tuple on (mis)match, short-circuiting the
  /// residual after the first match.
  bool NextSemiAnti(Access& a, Tuple* out) {
    ExecContext& ctx = a.ctx();
    const AlgebraOp& op = a.op();
    const bool anti = op.kind == OpKind::kAntiJoin;
    Tuple l;
    while (a.LeftNext(&l)) {
      bool matched = false;
      if (a.use_index()) {
        a.hash_index().LookupInto(l, a.probe_attrs(), ctx.ev->store(),
                                  &key_scratch_, &lookup_);
        for (uint32_t pos : lookup_) {
          if (a.residual() == nullptr ||
              ctx.ev->EvalPred(*a.residual(), l.Concat(a.right_at(pos)),
                               *ctx.env)) {
            matched = true;
            break;
          }
        }
      } else {
        a.ScanRestart();
        const Tuple* r = nullptr;
        while (a.ScanNext(&r)) {
          if (ctx.ev->EvalPred(*op.pred, l.Concat(*r), *ctx.env)) {
            matched = true;
            break;
          }
        }
      }
      if (matched != anti) {
        *out = std::move(l);
        CountProducedTuple(ctx);
        return true;
      }
    }
    return false;
  }

  /// Left outer join: matches first, then the ⊥-padded tuple for an
  /// unmatched left.
  bool NextOuter(Access& a, Tuple* out) {
    ExecContext& ctx = a.ctx();
    const AlgebraOp& op = a.op();
    while (true) {
      if (have_left_) {
        if (a.use_index()) {
          while (lookup_pos_ < lookup_.size()) {
            uint32_t rpos = lookup_[lookup_pos_++];
            Tuple combined = cur_left_.Concat(a.right_at(rpos));
            if (a.residual() == nullptr ||
                ctx.ev->EvalPred(*a.residual(), combined, *ctx.env)) {
              matched_ = true;
              *out = std::move(combined);
              CountProducedTuple(ctx);
              return true;
            }
          }
        } else {
          const Tuple* r = nullptr;
          while (a.ScanNext(&r)) {
            Tuple combined = cur_left_.Concat(*r);
            if (ctx.ev->EvalPred(*op.pred, combined, *ctx.env)) {
              matched_ = true;
              *out = std::move(combined);
              CountProducedTuple(ctx);
              return true;
            }
          }
        }
        have_left_ = false;
        if (!matched_) {
          Tuple t = cur_left_.Concat(Tuple::Nulls(a.outer_null_attrs()));
          t.Set(op.attr, a.outer_default());
          *out = std::move(t);
          CountProducedTuple(ctx);
          return true;
        }
      }
      if (!a.LeftNext(&cur_left_)) return false;
      have_left_ = true;
      matched_ = false;
      lookup_pos_ = 0;
      a.ScanRestart();
      if (a.use_index()) {
        a.hash_index().LookupInto(cur_left_, a.probe_attrs(), ctx.ev->store(),
                                  &key_scratch_, &lookup_);
      }
    }
  }

  /// Binary Γ (nest-join): one output tuple per left tuple, carrying the
  /// aggregated group of matching right tuples.
  bool NextGroupBinary(Access& a, Tuple* out) {
    ExecContext& ctx = a.ctx();
    const AlgebraOp& op = a.op();
    Tuple l;
    if (!a.LeftNext(&l)) return false;
    Sequence group;
    if (a.use_index()) {
      a.hash_index().LookupInto(l, a.probe_attrs(), ctx.ev->store(),
                                &key_scratch_, &lookup_);
      for (uint32_t pos : lookup_) group.Append(a.right_at(pos));
    } else {
      a.ScanRestart();
      const Tuple* r = nullptr;
      while (a.ScanNext(&r)) {
        if (ctx.ev->GeneralCompare(op.theta, l.Get(op.left_attrs[0]),
                                   r->Get(op.right_attrs[0]))) {
          group.Append(*r);
        }
      }
    }
    Value agg = ctx.ev->ApplyAgg(op.agg, std::move(group), *ctx.env);
    l.Set(op.attr, std::move(agg));
    *out = std::move(l);
    CountProducedTuple(ctx);
    return true;
  }

 private:
  Tuple cur_left_;
  bool have_left_ = false;
  bool matched_ = false;
  std::vector<Key> key_scratch_;
  std::vector<uint32_t> lookup_;
  size_t lookup_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Unary Γ over '=' — first-occurrence bucketing and group emission, shared
// by GroupUnaryCursor (cursor.cpp) and the fits-in-memory mode of
// SpillGroupUnaryCursor (spool.cpp).
// ---------------------------------------------------------------------------

struct GammaBuckets {
  std::vector<Key> order;  ///< distinct keys, first-occurrence order (ΠD)
  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> buckets;
  /// A sequence-valued key put some tuple into several buckets, so group
  /// members must be copied, not moved.
  bool multi_key = false;
  size_t next_key = 0;

  void Build(const Sequence& input, std::span<const Symbol> attrs,
             const xml::Store& store) {
    std::vector<Key> keys;
    for (uint32_t i = 0; i < input.size(); ++i) {
      MakeKeysInto(input[i], attrs, store, &keys);
      if (keys.size() > 1) multi_key = true;
      for (Key& k : keys) {
        auto [it, inserted] = buckets.try_emplace(k);
        if (inserted) order.push_back(k);
        it->second.push_back(i);
      }
    }
    next_key = 0;
  }
};

/// Emits the next '='-group: unless a sequence-valued key fanned a tuple
/// into several buckets, each input tuple belongs to exactly one group and
/// is handed over by move.
inline bool NextEqGammaGroup(GammaBuckets& b, Sequence& input,
                             const AlgebraOp& op, ExecContext& ctx,
                             Tuple* out) {
  if (b.next_key >= b.order.size()) return false;
  const Key& key = b.order[b.next_key++];
  Sequence group;
  for (uint32_t pos : b.buckets[key]) {
    if (b.multi_key) {
      group.Append(input[pos]);
    } else {
      group.Append(std::move(input[pos]));
    }
  }
  Tuple result;
  for (size_t j = 0; j < op.left_attrs.size(); ++j) {
    result.Set(op.left_attrs[j], key.values[j]);
  }
  result.Set(op.attr, ctx.ev->ApplyAgg(op.agg, std::move(group), *ctx.env));
  *out = std::move(result);
  CountProducedTuple(ctx);
  return true;
}

/// Emits the next θ-group (group for key v = σ_{v θ A}(e)): `for_each_input`
/// re-presents every input tuple — an in-RAM sequence walk in cursor.cpp
/// (pass lvalues: the sequence is rescanned per key, so matches are
/// copied), a spool rescan in spool.cpp (pass rvalues: the deserialized
/// tuple is fresh, so matches are moved).
template <class ForEachInput>
bool NextThetaGammaGroup(const std::vector<Key>& order, size_t* next_key,
                         const AlgebraOp& op, ExecContext& ctx,
                         ForEachInput&& for_each_input, Tuple* out) {
  if (*next_key >= order.size()) return false;
  const Key& key = order[(*next_key)++];
  if (op.left_attrs.size() != 1) {
    throw engine::Error(engine::ErrorCode::kPlanError,
                        "theta-grouping requires a single attribute", 0, {},
                        "GroupUnary");
  }
  Sequence group;
  for_each_input([&](auto&& u) {
    if (ctx.ev->GeneralCompare(op.theta, key.values[0],
                               u.Get(op.left_attrs[0]))) {
      group.Append(std::forward<decltype(u)>(u));
    }
  });
  Tuple result;
  for (size_t j = 0; j < op.left_attrs.size(); ++j) {
    result.Set(op.left_attrs[j], key.values[j]);
  }
  result.Set(op.attr, ctx.ev->ApplyAgg(op.agg, std::move(group), *ctx.env));
  *out = std::move(result);
  CountProducedTuple(ctx);
  return true;
}

}  // namespace nalq::nal::probe

#endif  // NALQ_NAL_PROBE_LOOPS_H_
