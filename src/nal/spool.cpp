#include "nal/spool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "engine/error.h"
#include "nal/analysis.h"
#include "nal/codec.h"
#include "nal/env_knobs.h"
#include "nal/fault_injection.h"
#include "nal/physical.h"
#include "nal/probe_loops.h"
#include "xml/store.h"

namespace nalq::nal {

namespace {

// ---------------------------------------------------------------------------
// Tuning constants
// ---------------------------------------------------------------------------

/// Rough per-partition working-set granularity: partition fan-out and merge
/// fan-in both derive from budget / granularity, so a shrinking budget means
/// fewer simultaneously open spool files, not bigger resident chunks.
constexpr uint64_t kGranularityBytes = 32 * 1024;

/// A build/Γ partition at most this large is loaded and processed in RAM;
/// larger ones re-partition recursively (up to kMaxRepartitionDepth). The
/// floor is deliberately small so "budget below one partition" scenarios
/// really recurse instead of silently over-committing.
uint64_t PartitionLoadLimit(uint64_t budget_limit) {
  return std::max<uint64_t>(budget_limit / 2, 4 * 1024);
}

size_t Level0Partitions(uint64_t budget_limit) {
  uint64_t p = budget_limit / kGranularityBytes;
  return static_cast<size_t>(std::clamp<uint64_t>(p, 4, 64));
}

/// Recursive re-partition fan-out (small: the recursion already has a whole
/// level-0 partition's worth of locality, and every level multiplies).
constexpr size_t kSubPartitions = 4;

/// Bound on grace recursion. A partition that still exceeds its load limit
/// at this depth (an extreme key skew — every tuple sharing one key can
/// never be split by key hash) is processed in RAM regardless, over-
/// committing the budget; the repartitions counter records every split.
constexpr int kMaxRepartitionDepth = 6;

size_t MergeFanIn(uint64_t budget_limit) {
  uint64_t f = budget_limit / (16 * 1024);
  return static_cast<size_t>(std::clamp<uint64_t>(f, 2, 16));
}

/// Container overhead charged per buffered tuple on top of its payload.
constexpr uint64_t kTupleOverhead = 48;

/// Resident cost of one open spool write handle (the stdio buffer). A grace
/// partition set holds up to Level0Partitions() of these at once, which at
/// small budgets is a real fraction of the limit — so every SpoolFile
/// charges its buffer to the MemoryBudget while its write handle is open.
/// Charged via ChargeUnchecked: spilling is how breakers *release* memory,
/// so opening a spill file must never fail for lack of budget.
constexpr uint64_t kWriteBufferBytes = 8 * 1024;

}  // namespace

size_t GracePartitionCount(uint64_t budget_limit_bytes,
                           double est_build_bytes) {
  if (!(est_build_bytes > 0.0) ||
      est_build_bytes >= 9.0e18 /* past uint64 range: estimate is garbage */) {
    return Level0Partitions(budget_limit_bytes);
  }
  // Size the fan-out so each partition is expected to land under its load
  // limit in one pass. The ceiling grows with the budget (each open
  // partition holds a kWriteBufferBytes write handle resident) but is capped
  // harder than the merge fan-in since partitions are all open at once.
  const double limit = static_cast<double>(PartitionLoadLimit(
      budget_limit_bytes));
  uint64_t want = static_cast<uint64_t>(est_build_bytes / limit) + 1;
  uint64_t cap = std::clamp<uint64_t>(budget_limit_bytes / (16 * 1024), 4,
                                      256);
  return static_cast<size_t>(std::clamp<uint64_t>(want, 4, cap));
}

namespace {

// Framing primitives shared with the storage layer's page codec
// (nal/codec.h; extracted from here when src/storage/ landed).
using codec::ByteReader;
using codec::PutU32;
using codec::PutU64;

/// All codec counts/lengths are u32-framed; anything larger must fail
/// loudly instead of wrapping the length prefix and corrupting the spool.
uint32_t CheckedU32(size_t n) {
  if (n > UINT32_MAX) {
    throw engine::Error(engine::ErrorCode::kBudgetExhausted,
                        "spool: record component exceeds the 4 GiB frame "
                        "limit",
                        0, {}, "spool.encode");
  }
  return static_cast<uint32_t>(n);
}

[[noreturn]] void CorruptSpool() {
  throw engine::Error(engine::ErrorCode::kSpoolIo,
                      "spool: corrupt temp-file record", 0, {},
                      "spool.decode");
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNull:
      return;
    case ValueKind::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      return;
    case ValueKind::kInt: {
      int64_t i = v.AsInt();
      uint64_t u;
      std::memcpy(&u, &i, 8);
      PutU64(out, u);
      return;
    }
    case ValueKind::kDouble: {
      double d = v.AsDouble();
      uint64_t u;
      std::memcpy(&u, &d, 8);
      PutU64(out, u);
      return;
    }
    case ValueKind::kString: {
      const std::string& s = v.AsString();
      PutU32(out, CheckedU32(s.size()));
      out->append(s);
      return;
    }
    case ValueKind::kNode: {
      xml::NodeRef ref = v.AsNode();
      PutU32(out, ref.doc);
      PutU32(out, ref.id);
      return;
    }
    case ValueKind::kItemSeq: {
      const ItemSeq& items = v.AsItems();
      PutU32(out, CheckedU32(items.size()));
      for (const Value& item : items) EncodeValue(item, out);
      return;
    }
    case ValueKind::kTupleSeq: {
      const Sequence& tuples = v.AsTuples();
      PutU32(out, CheckedU32(tuples.size()));
      for (const Tuple& t : tuples) EncodeTuple(t, out);
      return;
    }
  }
}

void EncodeTuple(const Tuple& t, std::string* out) {
  PutU32(out, CheckedU32(t.size()));
  for (const auto& [a, v] : t.slots()) {
    PutU32(out, a.id());
    EncodeValue(v, out);
  }
}

namespace {

bool DecodeValueImpl(ByteReader* r, Value* out);

bool DecodeTupleImpl(ByteReader* r, Tuple* out) {
  uint32_t n;
  if (!r->U32(&n)) return false;
  Tuple t;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t sym;
    Value v;
    if (!r->U32(&sym) || !DecodeValueImpl(r, &v)) return false;
    t.Set(Symbol::FromId(sym), std::move(v));
  }
  *out = std::move(t);
  return true;
}

bool DecodeValueImpl(ByteReader* r, Value* out) {
  uint8_t kind;
  if (!r->U8(&kind)) return false;
  switch (static_cast<ValueKind>(kind)) {
    case ValueKind::kNull:
      *out = Value::Null();
      return true;
    case ValueKind::kBool: {
      uint8_t b;
      if (!r->U8(&b)) return false;
      *out = Value(b != 0);
      return true;
    }
    case ValueKind::kInt: {
      uint64_t u;
      if (!r->U64(&u)) return false;
      int64_t i;
      std::memcpy(&i, &u, 8);
      *out = Value(i);
      return true;
    }
    case ValueKind::kDouble: {
      uint64_t u;
      if (!r->U64(&u)) return false;
      double d;
      std::memcpy(&d, &u, 8);
      *out = Value(d);
      return true;
    }
    case ValueKind::kString: {
      uint32_t len;
      const uint8_t* bytes;
      if (!r->U32(&len) || !r->Bytes(len, &bytes)) return false;
      *out = Value(std::string_view(reinterpret_cast<const char*>(bytes), len));
      return true;
    }
    case ValueKind::kNode: {
      uint32_t doc, id;
      if (!r->U32(&doc) || !r->U32(&id)) return false;
      *out = Value(xml::NodeRef{doc, id});
      return true;
    }
    case ValueKind::kItemSeq: {
      uint32_t n;
      if (!r->U32(&n)) return false;
      ItemSeq items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Value v;
        if (!DecodeValueImpl(r, &v)) return false;
        items.push_back(std::move(v));
      }
      *out = Value::FromItems(std::move(items));
      return true;
    }
    case ValueKind::kTupleSeq: {
      uint32_t n;
      if (!r->U32(&n)) return false;
      Sequence tuples;
      tuples.Reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Tuple t;
        if (!DecodeTupleImpl(r, &t)) return false;
        tuples.Append(std::move(t));
      }
      *out = Value::FromTuples(std::move(tuples));
      return true;
    }
  }
  return false;
}

uint64_t ApproximateValueBytes(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kString:
      return 16 + v.AsString().size();
    case ValueKind::kItemSeq: {
      uint64_t b = 24;
      for (const Value& item : v.AsItems()) b += ApproximateValueBytes(item);
      return b;
    }
    case ValueKind::kTupleSeq: {
      uint64_t b = 24;
      for (const Tuple& t : v.AsTuples()) b += ApproximateTupleBytes(t);
      return b;
    }
    default:
      return 16;
  }
}

}  // namespace

bool DecodeValue(const uint8_t** p, const uint8_t* end, Value* out) {
  ByteReader r{*p, end};
  if (!DecodeValueImpl(&r, out)) return false;
  *p = r.p;
  return true;
}

bool DecodeTuple(const uint8_t** p, const uint8_t* end, Tuple* out) {
  ByteReader r{*p, end};
  if (!DecodeTupleImpl(&r, out)) return false;
  *p = r.p;
  return true;
}

uint64_t ApproximateTupleBytes(const Tuple& t) {
  uint64_t b = 24;
  for (const auto& [a, v] : t.slots()) {
    (void)a;
    b += 8 + ApproximateValueBytes(v);
  }
  return b;
}

// ---------------------------------------------------------------------------
// SpoolContext
// ---------------------------------------------------------------------------

namespace {

std::string AutoSpoolDir() {
  static std::atomic<uint64_t> counter{0};
  std::error_code ec;
  std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) base = ".";
  unsigned long long pid =
#ifdef _WIN32
      0;
#else
      static_cast<unsigned long long>(getpid());
#endif
  return (base / ("nalq-spool-" + std::to_string(pid) + "-" +
                  std::to_string(
                      counter.fetch_add(1, std::memory_order_relaxed))))
      .string();
}

}  // namespace

SpoolContext::SpoolContext(MemoryBudget& shared, std::string dir)
    : budget_(&shared),
      injector_(&FaultInjector::Current()),
      dir_(std::move(dir)),
      owns_dir_(dir_.empty()) {
  if (dir_.empty()) dir_ = AutoSpoolDir();
}

SpoolContext::SpoolContext(uint64_t budget_bytes, std::string dir)
    : own_budget_(std::make_unique<MemoryBudget>(budget_bytes)),
      budget_(own_budget_.get()),
      injector_(&FaultInjector::Current()),
      dir_(std::move(dir)),
      owns_dir_(dir_.empty()) {
  if (dir_.empty()) dir_ = AutoSpoolDir();
}

SpoolContext::~SpoolContext() {
  if (created_ && owns_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best effort
  }
}

std::string SpoolContext::NewFilePath() {
  if (!created_) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      throw engine::Error(engine::ErrorCode::kSpoolIo,
                          "spool: cannot create spool directory", ec.value(),
                          dir_, "spool.create_dir");
    }
    created_ = true;
  }
  return dir_ + "/s" + std::to_string(next_file_++);
}

uint64_t SpoolContext::EnvBudgetBytes() {
  static const uint64_t cached = EnvKnobU64("NALQ_MEMORY_BUDGET_BYTES", 0);
  return cached;
}

namespace {

// ---------------------------------------------------------------------------
// Spool files
// ---------------------------------------------------------------------------

/// Bounded retry with exponential backoff for spool-file open/reopen: a
/// transient create/reopen failure (EMFILE under descriptor pressure, an
/// injected one-shot fault) is retried a few times before the run is
/// failed. Only opens are retried — a short write or read means the file
/// is in an unknown state and retrying could silently corrupt records.
constexpr int kOpenAttempts = 4;  ///< 1 try + 3 retries
constexpr int kRetryBackoffBaseMs = 1;

FILE* OpenSpoolFileWithRetry(const std::string& path, const char* mode,
                             FaultSite site, FaultInjector& injector) {
  int last_err = 0;
  for (int attempt = 0; attempt < kOpenAttempts; ++attempt) {
    if (attempt != 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kRetryBackoffBaseMs << (attempt - 1)));
    }
    if (int injected = injector.MaybeFail(site)) {
      last_err = injected;
      continue;
    }
    errno = 0;
    FILE* f = std::fopen(path.c_str(), mode);
    if (f != nullptr) return f;
    last_err = errno;
  }
  throw engine::Error(engine::ErrorCode::kSpoolIo,
                      std::string("spool: cannot open temp file (mode ") +
                          mode + ") after " + std::to_string(kOpenAttempts) +
                          " attempts",
                      last_err, path, FaultSiteName(site));
}

/// One temp file of length-prefixed records. Write-then-read: Append while
/// writing, FinishWrites() once, then any number of sequential Readers.
/// The file is created lazily on the first Append and removed by the
/// destructor — RAII is what guarantees cleanup on the thrown-error path.
class SpoolFile {
 public:
  SpoolFile(SpoolContext* ctx, SpillStats* stats) : ctx_(ctx), stats_(stats) {}
  ~SpoolFile() {
    if (wf_ != nullptr) std::fclose(wf_);
    ReleaseBuffer();
    if (!path_.empty()) std::remove(path_.c_str());
  }
  SpoolFile(const SpoolFile&) = delete;
  SpoolFile& operator=(const SpoolFile&) = delete;

  void Append(std::string_view payload) {
    // Cancellation point: partition routing and run formation funnel every
    // record through here, so spill-heavy phases poll per record.
    ctx_->Poll();
    if (wf_ == nullptr) {
      path_ = ctx_->NewFilePath();
      try {
        wf_ = OpenSpoolFileWithRetry(path_, "wb", FaultSite::kSpoolOpenWrite,
                                     *ctx_->injector());
      } catch (...) {
        path_.clear();  // nothing on disk; the dtor must not remove it
        throw;
      }
      ctx_->budget().ChargeUnchecked(kWriteBufferBytes);
      buffer_charged_ = kWriteBufferBytes;
    }
    uint32_t len = CheckedU32(payload.size());
    int injected = ctx_->injector()->MaybeFail(FaultSite::kSpoolWrite);
    errno = 0;
    if (injected != 0 || std::fwrite(&len, 4, 1, wf_) != 1 ||
        (len != 0 && std::fwrite(payload.data(), len, 1, wf_) != 1)) {
      throw engine::Error(engine::ErrorCode::kSpoolIo, "spool: short write",
                          injected != 0 ? injected : errno, path_,
                          "spool.write");
    }
    bytes_ += 4 + len;
    ++records_;
  }

  /// Flushes and closes the write handle (releasing its buffer charge);
  /// accounts the file in SpillStats.
  void FinishWrites() {
    if (wf_ != nullptr) {
      int injected = ctx_->injector()->MaybeFail(FaultSite::kSpoolClose);
      errno = 0;
      int rc = std::fclose(wf_);  // real close even under injection: no leak
      wf_ = nullptr;
      ReleaseBuffer();
      if (injected != 0 || rc != 0) {
        throw engine::Error(engine::ErrorCode::kSpoolIo, "spool: close failed",
                            injected != 0 ? injected : errno, path_,
                            "spool.close");
      }
    }
    ReleaseBuffer();
    if (!accounted_ && records_ > 0 && stats_ != nullptr) {
      stats_->spilled_bytes = xml::SaturatingAdd(stats_->spilled_bytes, bytes_);
      stats_->spill_runs = xml::SaturatingAdd(stats_->spill_runs, 1);
    }
    accounted_ = true;
  }

  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }

  class Reader {
   public:
    explicit Reader(const SpoolFile& f) : ctx_(f.ctx_), path_(f.path_) {
      if (!path_.empty()) {
        rf_ = OpenSpoolFileWithRetry(path_, "rb", FaultSite::kSpoolOpenRead,
                                     *ctx_->injector());
      }
    }
    ~Reader() {
      if (rf_ != nullptr) std::fclose(rf_);
    }
    Reader(Reader&& o) noexcept
        : rf_(o.rf_), ctx_(o.ctx_), path_(std::move(o.path_)) {
      o.rf_ = nullptr;
    }
    Reader& operator=(Reader&& o) noexcept {
      if (this != &o) {
        if (rf_ != nullptr) std::fclose(rf_);
        rf_ = o.rf_;
        ctx_ = o.ctx_;
        path_ = std::move(o.path_);
        o.rf_ = nullptr;
      }
      return *this;
    }

    /// Back to the first record — for repeated sequential scans without
    /// reopening the file.
    void Rewind() {
      if (rf_ != nullptr) std::rewind(rf_);
    }

    bool Next(std::string* payload) {
      if (rf_ == nullptr) return false;
      // Cancellation point: merge passes and partition re-reads funnel
      // every record through here.
      if (ctx_ != nullptr) ctx_->Poll();
      FaultInjector& injector =
          ctx_ != nullptr ? *ctx_->injector() : FaultInjector::Current();
      if (int injected = injector.MaybeFail(FaultSite::kSpoolRead)) {
        throw engine::Error(engine::ErrorCode::kSpoolIo, "spool: read failed",
                            injected, path_, "spool.read");
      }
      uint32_t len;
      errno = 0;
      size_t got = std::fread(&len, 1, 4, rf_);
      // Clean end-of-stream is exactly "no bytes AND eof". Anything else —
      // a read error, or 1–3 bytes of a truncated length prefix — is an
      // I/O failure, not EOF.
      if (got == 0 && std::feof(rf_) != 0) return false;
      if (got != 4) {
        throw engine::Error(engine::ErrorCode::kSpoolIo,
                            got == 0
                                ? "spool: read failed at record header"
                                : "spool: truncated record header (partial "
                                  "length prefix)",
                            errno, path_, "spool.read");
      }
      payload->resize(len);
      errno = 0;
      if (len != 0 && std::fread(payload->data(), 1, len, rf_) != len) {
        throw engine::Error(engine::ErrorCode::kSpoolIo,
                            std::feof(rf_) != 0
                                ? "spool: truncated record payload"
                                : "spool: read failed mid-record",
                            errno, path_, "spool.read");
      }
      return true;
    }

   private:
    FILE* rf_ = nullptr;
    SpoolContext* ctx_ = nullptr;
    std::string path_;
  };

 private:
  void ReleaseBuffer() {
    if (buffer_charged_ != 0) {
      ctx_->budget().Release(buffer_charged_);
      buffer_charged_ = 0;
    }
  }

  SpoolContext* ctx_;
  SpillStats* stats_;
  std::string path_;
  FILE* wf_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
  uint64_t buffer_charged_ = 0;
  bool accounted_ = false;
};

/// RAII budget reservation: whatever is still charged when the guard dies is
/// released, so exceptions unwind the accountant correctly.
class ChargeGuard {
 public:
  explicit ChargeGuard(MemoryBudget* budget) : budget_(budget) {}
  ~ChargeGuard() { ReleaseAll(); }
  ChargeGuard(const ChargeGuard&) = delete;
  ChargeGuard& operator=(const ChargeGuard&) = delete;

  bool TryCharge(uint64_t bytes) {
    if (!budget_->TryCharge(bytes)) return false;
    charged_ += bytes;
    return true;
  }
  void ChargeUnchecked(uint64_t bytes) {
    budget_->ChargeUnchecked(bytes);
    charged_ += bytes;
  }
  void ReleaseAll() {
    budget_->Release(charged_);
    charged_ = 0;
  }
  uint64_t charged() const { return charged_; }

 private:
  MemoryBudget* budget_;
  uint64_t charged_ = 0;
};

// ---------------------------------------------------------------------------
// TupleSpool: hybrid in-memory / on-disk FIFO of tuples
// ---------------------------------------------------------------------------

class TupleSpool {
 public:
  TupleSpool(SpoolContext* ctx, SpillStats* stats)
      : ctx_(ctx), stats_(stats), charge_(&ctx->budget()) {}

  void Append(Tuple t) {
    if (file_ == nullptr) {
      uint64_t b = ApproximateTupleBytes(t) + kTupleOverhead;
      if (charge_.TryCharge(b)) {
        mem_.Append(std::move(t));
        ++n_;
        return;
      }
      SpillAll();
    }
    scratch_.clear();
    EncodeTuple(t, &scratch_);
    file_->Append(scratch_);
    ++n_;
  }

  void FinishWrites() {
    if (file_ != nullptr) file_->FinishWrites();
  }

  size_t size() const { return n_; }
  bool spilled() const { return file_ != nullptr; }
  size_t memory_size() const { return mem_.size(); }

  /// Sequential reader from the start; several may coexist. `consume` moves
  /// the in-memory tuples out (single-pass readers only).
  class Reader {
   public:
    Reader(TupleSpool* s, bool consume) : s_(s), consume_(consume) {
      if (s_->file_ != nullptr) file_.emplace(*s_->file_);
    }
    /// Back to the first tuple (multi-pass scans; not for consume mode).
    void Rewind() {
      if (file_.has_value()) file_->Rewind();
      pos_ = 0;
    }

    bool Next(Tuple* out) {
      if (file_.has_value()) {
        if (!file_->Next(&payload_)) return false;
        const uint8_t* p = reinterpret_cast<const uint8_t*>(payload_.data());
        if (!DecodeTuple(&p, p + payload_.size(), out)) CorruptSpool();
        return true;
      }
      if (pos_ >= s_->mem_.size()) return false;
      if (consume_) {
        *out = std::move(s_->mem_[pos_++]);
      } else {
        *out = s_->mem_[pos_++];
      }
      return true;
    }

   private:
    TupleSpool* s_;
    bool consume_;
    std::optional<SpoolFile::Reader> file_;
    std::string payload_;
    size_t pos_ = 0;
  };

  Reader NewReader(bool consume = false) { return Reader(this, consume); }

 private:
  void SpillAll() {
    file_ = std::make_unique<SpoolFile>(ctx_, stats_);
    for (Tuple& t : mem_) {
      scratch_.clear();
      EncodeTuple(t, &scratch_);
      file_->Append(scratch_);
    }
    mem_.Clear();
    charge_.ReleaseAll();
  }

  SpoolContext* ctx_;
  SpillStats* stats_;
  ChargeGuard charge_;
  Sequence mem_;
  std::unique_ptr<SpoolFile> file_;
  std::string scratch_;
  size_t n_ = 0;
};

// ---------------------------------------------------------------------------
// Key comparison / partition routing helpers
// ---------------------------------------------------------------------------

/// (key, seq) order: per-component Value::Compare with optional descending
/// flags, sequence number as the unique tiebreak.
bool RecordLess(const std::vector<Value>& ka, uint64_t sa,
                const std::vector<Value>& kb, uint64_t sb,
                const std::vector<uint8_t>& desc) {
  size_t n = std::min(ka.size(), kb.size());
  for (size_t j = 0; j < n; ++j) {
    auto c = Value::Compare(ka[j], kb[j]);
    if (c != std::strong_ordering::equal) {
      bool descending = j < desc.size() && desc[j] != 0;
      return descending ? c == std::strong_ordering::greater
                        : c == std::strong_ordering::less;
    }
  }
  if (ka.size() != kb.size()) return ka.size() < kb.size();
  return sa < sb;
}

/// Salted partition id: the per-level salt redistributes keys that
/// collided at the previous level (same-key skew is irreducible and handled
/// by the recursion depth cap instead).
size_t SaltedPartition(const Key& k, int level, size_t nparts) {
  uint64_t h = static_cast<uint64_t>(KeyHash{}(k));
  h ^= 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(level + 1);
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return static_cast<size_t>(h % nparts);
}

/// Distinct partition ids of a tuple's keys at `level` (insertion order).
void DistinctPartitionsOf(const std::vector<Key>& keys, int level,
                          size_t nparts, std::vector<size_t>* out) {
  out->clear();
  for (const Key& k : keys) {
    size_t p = SaltedPartition(k, level, nparts);
    if (std::find(out->begin(), out->end(), p) == out->end()) {
      out->push_back(p);
    }
  }
}

using PartitionSet = std::vector<std::unique_ptr<SpoolFile>>;

PartitionSet MakePartitionSet(SpoolContext* ctx, SpillStats* stats,
                              size_t n) {
  PartitionSet parts;
  parts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    parts.push_back(std::make_unique<SpoolFile>(ctx, stats));
  }
  return parts;
}

}  // namespace

// ---------------------------------------------------------------------------
// ExternalSorter
// ---------------------------------------------------------------------------

class ExternalSorter::Impl {
 public:
  Impl(SpoolContext* ctx, SpillStats* stats)
      : ctx_(ctx), stats_(stats), charge_(&ctx->budget()) {}

  SpoolContext* ctx_;
  SpillStats* stats_;
  ChargeGuard charge_;
  std::vector<Record> buffer_;
  std::vector<std::unique_ptr<SpoolFile>> runs_;
  std::string scratch_;

  // Merge state (after Finish).
  struct Source {
    std::optional<SpoolFile::Reader> reader;  // file-backed
    std::vector<Record>* mem = nullptr;       // memory-backed
    size_t mem_pos = 0;
    bool has = false;
    std::vector<Value> key;
    uint64_t seq = 0;
    std::string payload;      // file-backed: full raw record
    size_t tuple_offset = 0;  // where the tuple starts inside `payload`
  };
  std::vector<Source> sources_;
  bool finished_ = false;
  size_t mem_next_ = 0;  // emission when nothing spilled

  void EncodeRecord(const Record& r, std::string* out) {
    PutU32(out, static_cast<uint32_t>(r.key.size()));
    for (const Value& v : r.key) EncodeValue(v, out);
    PutU64(out, r.seq);
    EncodeTuple(r.tuple, out);
  }

  /// Decodes the (key, seq) prefix of a run record; `tail` is left at the
  /// tuple so the final merge can decode it lazily (intermediate merge
  /// passes copy the raw payload instead).
  void DecodePrefix(const std::string& payload, std::vector<Value>* key,
                    uint64_t* seq, const uint8_t** tail,
                    const uint8_t** end) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
    const uint8_t* e = p + payload.size();
    ByteReader r{p, e};
    uint32_t nkey;
    if (!r.U32(&nkey)) CorruptSpool();
    key->clear();
    key->reserve(nkey);
    for (uint32_t i = 0; i < nkey; ++i) {
      Value v;
      if (!DecodeValueImpl(&r, &v)) CorruptSpool();
      key->push_back(std::move(v));
    }
    if (!r.U64(seq)) CorruptSpool();
    *tail = r.p;
    *end = e;
  }

  bool AdvanceSource(Source* s) {
    if (s->mem != nullptr) {
      s->has = s->mem_pos < s->mem->size();
      return s->has;
    }
    if (!s->reader->Next(&s->payload)) {
      s->has = false;
      return false;
    }
    const uint8_t* tail;
    const uint8_t* end;
    DecodePrefix(s->payload, &s->key, &s->seq, &tail, &end);
    s->tuple_offset = static_cast<size_t>(
        tail - reinterpret_cast<const uint8_t*>(s->payload.data()));
    s->has = true;
    return true;
  }

  const std::vector<Value>& SourceKey(const Source& s) const {
    return s.mem != nullptr ? (*s.mem)[s.mem_pos].key : s.key;
  }
  uint64_t SourceSeq(const Source& s) const {
    return s.mem != nullptr ? (*s.mem)[s.mem_pos].seq : s.seq;
  }
};

ExternalSorter::ExternalSorter(SpoolContext* spool, SpillStats* stats,
                               std::vector<uint8_t> desc)
    : spool_(spool),
      stats_(stats),
      desc_(std::move(desc)),
      impl_(std::make_unique<Impl>(spool, stats)) {}

ExternalSorter::~ExternalSorter() = default;

void ExternalSorter::Add(std::vector<Value> key, uint64_t seq, Tuple tuple) {
  uint64_t bytes = kTupleOverhead + ApproximateTupleBytes(tuple);
  for (const Value& v : key) bytes += 16 + ApproximateValueBytes(v);
  if (!impl_->charge_.TryCharge(bytes)) {
    if (!impl_->buffer_.empty()) Flush();
    if (!impl_->charge_.TryCharge(bytes)) {
      // Progress guarantee: a single record may exceed what is left of the
      // budget (shared with other breakers); hold it anyway. With a budget
      // below one tuple this is what degenerates runs to 1–2 records.
      impl_->charge_.ChargeUnchecked(bytes);
    }
  }
  impl_->buffer_.push_back(
      Record{std::move(key), seq, std::move(tuple)});
  ++added_;
}

void ExternalSorter::Flush() {
  std::vector<Record>& buf = impl_->buffer_;
  std::stable_sort(buf.begin(), buf.end(),
                   [this](const Record& a, const Record& b) {
                     return RecordLess(a.key, a.seq, b.key, b.seq, desc_);
                   });
  auto run = std::make_unique<SpoolFile>(impl_->ctx_, impl_->stats_);
  for (const Record& r : buf) {
    impl_->scratch_.clear();
    impl_->EncodeRecord(r, &impl_->scratch_);
    run->Append(impl_->scratch_);
  }
  run->FinishWrites();
  impl_->runs_.push_back(std::move(run));
  ++spilled_runs_;
  buf.clear();
  impl_->charge_.ReleaseAll();
}

void ExternalSorter::Finish() {
  Impl& im = *impl_;
  std::stable_sort(im.buffer_.begin(), im.buffer_.end(),
                   [this](const Record& a, const Record& b) {
                     return RecordLess(a.key, a.seq, b.key, b.seq, desc_);
                   });
  im.finished_ = true;
  if (im.runs_.empty()) return;  // pure in-memory emission

  // Multi-pass merge: while more file runs than the fan-in, merge the
  // oldest fan-in runs into one longer run (raw payload copy — no tuple
  // decode). The resident buffer joins only the final merge.
  size_t fan_in = MergeFanIn(spool_->budget().limit_bytes());
  while (im.runs_.size() > fan_in) {
    if (stats_ != nullptr) {
      stats_->merge_passes = xml::SaturatingAdd(stats_->merge_passes, 1);
    }
    std::vector<std::unique_ptr<SpoolFile>> taken;
    for (size_t i = 0; i < fan_in; ++i) {
      taken.push_back(std::move(im.runs_[i]));
    }
    im.runs_.erase(im.runs_.begin(),
                   im.runs_.begin() + static_cast<ptrdiff_t>(fan_in));
    std::vector<Impl::Source> srcs(taken.size());
    for (size_t i = 0; i < taken.size(); ++i) {
      srcs[i].reader.emplace(*taken[i]);
      im.AdvanceSource(&srcs[i]);
    }
    auto merged = std::make_unique<SpoolFile>(im.ctx_, im.stats_);
    while (true) {
      int best = -1;
      for (size_t i = 0; i < srcs.size(); ++i) {
        if (!srcs[i].has) continue;
        if (best < 0 ||
            RecordLess(srcs[i].key, srcs[i].seq, srcs[best].key,
                       srcs[best].seq, desc_)) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      merged->Append(srcs[best].payload);
      im.AdvanceSource(&srcs[best]);
    }
    merged->FinishWrites();
    im.runs_.push_back(std::move(merged));
  }

  im.sources_.clear();
  im.sources_.resize(im.runs_.size() + 1);
  for (size_t i = 0; i < im.runs_.size(); ++i) {
    im.sources_[i].reader.emplace(*im.runs_[i]);
    im.AdvanceSource(&im.sources_[i]);
  }
  Impl::Source& mem = im.sources_.back();
  mem.mem = &im.buffer_;
  im.AdvanceSource(&mem);
}

bool ExternalSorter::Next(Record* out) {
  Impl& im = *impl_;
  if (im.runs_.empty()) {
    if (im.mem_next_ >= im.buffer_.size()) return false;
    *out = std::move(im.buffer_[im.mem_next_++]);
    return true;
  }
  int best = -1;
  for (size_t i = 0; i < im.sources_.size(); ++i) {
    if (!im.sources_[i].has) continue;
    if (best < 0 ||
        RecordLess(im.SourceKey(im.sources_[i]), im.SourceSeq(im.sources_[i]),
                   im.SourceKey(im.sources_[best]),
                   im.SourceSeq(im.sources_[best]), desc_)) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  Impl::Source& s = im.sources_[static_cast<size_t>(best)];
  if (s.mem != nullptr) {
    *out = std::move((*s.mem)[s.mem_pos++]);
    im.AdvanceSource(&s);
    return true;
  }
  out->key = std::move(s.key);
  out->seq = s.seq;
  const uint8_t* tail =
      reinterpret_cast<const uint8_t*>(s.payload.data()) + s.tuple_offset;
  const uint8_t* end =
      reinterpret_cast<const uint8_t*>(s.payload.data()) + s.payload.size();
  if (!DecodeTuple(&tail, end, &out->tuple)) CorruptSpool();
  im.AdvanceSource(&s);
  return true;
}

uint64_t ExternalSorter::memory_records() const {
  return impl_->buffer_.size() - impl_->mem_next_;
}

// ---------------------------------------------------------------------------
// Spill-aware cursors
// ---------------------------------------------------------------------------

namespace {

using probe::CountProducedTuple;

inline SpillStats* StatsOf(ExecContext& ctx) {
  return &ctx.ev->stats().spill;
}

/// Drains `input` Materialize-style (Open / Next* / Close) into `sink`.
template <typename Sink>
void DrainInto(Cursor& input, Sink&& sink) {
  input.Open();
  Tuple t;
  while (input.Next(&t)) sink(std::move(t));
  input.Close();
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

class SpillSortCursor final : public Cursor {
 public:
  SpillSortCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)) {}

  void Open() override {
    if (opened_) {
      // Unlike the in-memory cursors (which happen to tolerate it), the
      // spill cursors do not reset their partition/spool state on re-Open;
      // enforce the documented single-use cursor contract loudly.
      throw std::logic_error("spill cursor is single-use (cursor.h)");
    }
    opened_ = true;
    sorter_.emplace(ctx_.spool, StatsOf(ctx_),
                    std::vector<uint8_t>(op_.sort_desc));
    uint64_t seq = 0;
    const xml::Store& store = ctx_.ev->store();
    DrainInto(*input_, [&](Tuple t) {
      std::vector<Value> key;
      key.reserve(op_.attrs.size());
      for (Symbol a : op_.attrs) key.push_back(t.Get(a).Atomize(store));
      sorter_->Add(std::move(key), seq++, std::move(t));
    });
    sorter_->Finish();
    if (ctx_.stream != nullptr) {
      stream_charged_ = sorter_->memory_records();
      ctx_.stream->OnBuffer(stream_charged_);
    }
  }

  bool Next(Tuple* out) override {
    ExternalSorter::Record rec;
    if (!sorter_->Next(&rec)) return false;
    *out = std::move(rec.tuple);
    CountProducedTuple(ctx_);
    return true;
  }

  void Close() override {
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(stream_charged_);
    stream_charged_ = 0;
  }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  std::optional<ExternalSorter> sorter_;
  uint64_t stream_charged_ = 0;
  bool opened_ = false;
};

// ---------------------------------------------------------------------------
// Order-pinning buffer (spool-backed BufferCursor)
// ---------------------------------------------------------------------------

class SpoolBufferCursor final : public Cursor {
 public:
  SpoolBufferCursor(ExecContext& ctx, CursorPtr input)
      : ctx_(ctx), input_(std::move(input)) {}

  void Open() override {
    if (opened_) {
      // Unlike the in-memory cursors (which happen to tolerate it), the
      // spill cursors do not reset their partition/spool state on re-Open;
      // enforce the documented single-use cursor contract loudly.
      throw std::logic_error("spill cursor is single-use (cursor.h)");
    }
    opened_ = true;
    spool_.emplace(ctx_.spool, StatsOf(ctx_));
    DrainInto(*input_, [&](Tuple t) { spool_->Append(std::move(t)); });
    spool_->FinishWrites();
    if (ctx_.stream != nullptr) {
      stream_charged_ = spool_->memory_size();
      ctx_.stream->OnBuffer(stream_charged_);
    }
    reader_.emplace(spool_->NewReader(/*consume=*/true));
  }

  bool Next(Tuple* out) override {
    // Replays already-counted tuples: no tuples_produced.
    return reader_->Next(out);
  }

  void Close() override {
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(stream_charged_);
    stream_charged_ = 0;
  }

 private:
  ExecContext& ctx_;
  CursorPtr input_;
  std::optional<TupleSpool> spool_;
  std::optional<TupleSpool::Reader> reader_;
  uint64_t stream_charged_ = 0;
  bool opened_ = false;
};

// ---------------------------------------------------------------------------
// Unary Γ
// ---------------------------------------------------------------------------

class SpillGroupUnaryCursor final : public Cursor {
 public:
  SpillGroupUnaryCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)), charge_(BudgetOf(ctx)) {}

  void Open() override {
    if (opened_) {
      // Unlike the in-memory cursors (which happen to tolerate it), the
      // spill cursors do not reset their partition/spool state on re-Open;
      // enforce the documented single-use cursor contract loudly.
      throw std::logic_error("spill cursor is single-use (cursor.h)");
    }
    opened_ = true;
    if (op_.theta == CmpOp::kEq) {
      OpenEq();
    } else {
      OpenTheta();
    }
  }

  bool Next(Tuple* out) override {
    if (op_.theta != CmpOp::kEq) return NextTheta(out);
    if (spilled_) {
      ExternalSorter::Record rec;
      if (!sorter_->Next(&rec)) return false;
      *out = std::move(rec.tuple);
      CountProducedTuple(ctx_);
      return true;
    }
    return NextEqInMemory(out);
  }

  void Close() override {
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(stream_charged_);
    stream_charged_ = 0;
  }

 private:
  static MemoryBudget* BudgetOf(ExecContext& ctx) {
    return &ctx.spool->budget();
  }

  // ---- Γ over = : grace partitions + first-occurrence order restoration --

  /// Partition record: (seq, key ordinal within its tuple, routed key,
  /// tuple). Bucketing uses the ROUTED key, never recomputed keys — a
  /// recomputed key set would recreate foreign-partition groups here and
  /// split their membership.
  struct GammaRecord {
    uint64_t seq = 0;
    uint32_t ordinal = 0;
    Key key;
    Tuple tuple;
  };

  static void EncodeGamma(const GammaRecord& r, std::string* out) {
    PutU64(out, r.seq);
    PutU32(out, r.ordinal);
    PutU32(out, static_cast<uint32_t>(r.key.values.size()));
    for (const Value& v : r.key.values) EncodeValue(v, out);
    EncodeTuple(r.tuple, out);
  }

  static void DecodeGamma(const std::string& payload, GammaRecord* out) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
    const uint8_t* end = p + payload.size();
    ByteReader r{p, end};
    uint32_t nkey;
    if (!r.U64(&out->seq) || !r.U32(&out->ordinal) || !r.U32(&nkey)) {
      CorruptSpool();
    }
    out->key.values.clear();
    out->key.values.reserve(nkey);
    for (uint32_t i = 0; i < nkey; ++i) {
      Value v;
      if (!DecodeValueImpl(&r, &v)) CorruptSpool();
      out->key.values.push_back(std::move(v));
    }
    const uint8_t* q = r.p;
    if (!DecodeTuple(&q, end, &out->tuple)) CorruptSpool();
  }

  void OpenEq() {
    const xml::Store& store = ctx_.ev->store();
    std::vector<Key> keys;
    uint64_t seq = 0;
    DrainInto(*input_, [&](Tuple t) {
      if (!spilled_) {
        uint64_t b = ApproximateTupleBytes(t) + kTupleOverhead;
        if (charge_.TryCharge(b)) {
          input_seq_.Append(std::move(t));
          ++seq;
          return;
        }
        SwitchToPartitions();
      }
      RouteGamma(seq++, std::move(t), &keys);
    });

    if (!spilled_) {
      // In-memory: exactly the plain GroupUnaryCursor — literally, the
      // bucketing and emission are the shared nal/probe_loops.h helpers.
      gamma_.Build(input_seq_, op_.left_attrs, store);
      if (ctx_.stream != nullptr) {
        stream_charged_ = input_seq_.size();
        ctx_.stream->OnBuffer(stream_charged_);
      }
      return;
    }

    for (auto& part : partitions_) part->FinishWrites();
    sorter_.emplace(ctx_.spool, StatsOf(ctx_));
    uint64_t emit_seq = 0;
    for (auto& part : partitions_) {
      ProcessGammaPartition(*part, 0, &emit_seq);
    }
    partitions_.clear();
    sorter_->Finish();
  }

  void SwitchToPartitions() {
    spilled_ = true;
    // Admission policy: expected input volume = optimizer row hint × the
    // average resident tuple size observed up to the overflow. No hint (or
    // nothing buffered yet) falls back to the static budget rule.
    double avg = input_seq_.size() > 0
                     ? static_cast<double>(charge_.charged()) /
                           static_cast<double>(input_seq_.size())
                     : 0.0;
    partitions_ = MakePartitionSet(
        ctx_.spool, StatsOf(ctx_),
        GracePartitionCount(ctx_.spool->budget().limit_bytes(),
                            ctx_.spool->RowHint(&op_) * avg));
    std::vector<Key> keys;
    uint64_t seq = 0;
    for (Tuple& t : input_seq_) {
      RouteGamma(seq++, std::move(t), &keys);
    }
    input_seq_.Clear();
    charge_.ReleaseAll();
  }

  void RouteGamma(uint64_t seq, Tuple t, std::vector<Key>* keys) {
    const xml::Store& store = ctx_.ev->store();
    MakeKeysInto(t, op_.left_attrs, store, keys);
    GammaRecord rec;
    rec.seq = seq;
    for (uint32_t ordinal = 0; ordinal < keys->size(); ++ordinal) {
      rec.ordinal = ordinal;
      rec.key = (*keys)[ordinal];
      // One record per key of the tuple; the last one adopts the tuple.
      rec.tuple = (ordinal + 1 == keys->size()) ? std::move(t) : t;
      scratch_.clear();
      EncodeGamma(rec, &scratch_);
      size_t p = SaltedPartition(rec.key, 0, partitions_.size());
      partitions_[p]->Append(scratch_);
    }
  }

  void ProcessGammaPartition(SpoolFile& part, int depth, uint64_t* emit_seq) {
    if (part.records() == 0) return;
    uint64_t limit = ctx_.spool->budget().limit_bytes();
    if (part.bytes() > PartitionLoadLimit(limit) &&
        depth < kMaxRepartitionDepth) {
      SpillStats* stats = StatsOf(ctx_);
      stats->repartitions = xml::SaturatingAdd(stats->repartitions, 1);
      PartitionSet subs =
          MakePartitionSet(ctx_.spool, StatsOf(ctx_), kSubPartitions);
      {
        SpoolFile::Reader reader(part);
        std::string payload;
        GammaRecord rec;
        while (reader.Next(&payload)) {
          DecodeGamma(payload, &rec);
          size_t p = SaltedPartition(rec.key, depth + 1, subs.size());
          subs[p]->Append(payload);  // raw copy; routed key is inside
        }
      }
      for (auto& sub : subs) sub->FinishWrites();
      for (auto& sub : subs) {
        ProcessGammaPartition(*sub, depth + 1, emit_seq);
      }
      return;
    }

    // Load the partition; records arrive in (seq, ordinal) order, so
    // first-occurrence bucketing reproduces the global bucket order within
    // this partition's key subset.
    ChargeGuard charge(&ctx_.spool->budget());
    std::vector<GammaRecord> records;
    {
      SpoolFile::Reader reader(part);
      std::string payload;
      while (reader.Next(&payload)) {
        GammaRecord rec;
        DecodeGamma(payload, &rec);
        uint64_t b = ApproximateTupleBytes(rec.tuple) + kTupleOverhead;
        if (!charge.TryCharge(b)) charge.ChargeUnchecked(b);
        records.push_back(std::move(rec));
      }
    }
    std::unordered_map<Key, std::vector<size_t>, KeyHash> buckets;
    std::vector<const Key*> order;
    for (size_t i = 0; i < records.size(); ++i) {
      auto [it, inserted] = buckets.try_emplace(records[i].key);
      if (inserted) order.push_back(&records[i].key);
      it->second.push_back(i);
    }
    for (const Key* key : order) {
      std::vector<size_t>& members = buckets[*key];
      Sequence group;
      group.Reserve(members.size());
      for (size_t idx : members) {
        group.Append(std::move(records[idx].tuple));
      }
      const GammaRecord& first = records[members.front()];
      Tuple result;
      for (size_t j = 0; j < op_.left_attrs.size(); ++j) {
        result.Set(op_.left_attrs[j], key->values[j]);
      }
      result.Set(op_.attr,
                 ctx_.ev->ApplyAgg(op_.agg, std::move(group), *ctx_.env));
      sorter_->Add({Value(static_cast<int64_t>(first.seq)),
                    Value(static_cast<int64_t>(first.ordinal))},
                   (*emit_seq)++, std::move(result));
    }
  }

  bool NextEqInMemory(Tuple* out) {
    return probe::NextEqGammaGroup(gamma_, input_seq_, op_, ctx_, out);
  }

  // ---- θ-grouping: spooled input, rescanned per key ----------------------

  void OpenTheta() {
    const xml::Store& store = ctx_.ev->store();
    theta_spool_.emplace(ctx_.spool, StatsOf(ctx_));
    std::vector<Key> keys;
    std::unordered_set<Key, KeyHash> seen;
    DrainInto(*input_, [&](Tuple t) {
      MakeKeysInto(t, op_.left_attrs, store, &keys);
      for (Key& k : keys) {
        if (seen.insert(k).second) gamma_.order.push_back(k);
      }
      theta_spool_->Append(std::move(t));
    });
    theta_spool_->FinishWrites();
    gamma_.next_key = 0;
    if (ctx_.stream != nullptr) {
      stream_charged_ = theta_spool_->memory_size();
      ctx_.stream->OnBuffer(stream_charged_);
    }
  }

  bool NextTheta(Tuple* out) {
    // Group construction shared with GroupUnaryCursor (nal/probe_loops.h);
    // only the input rescan differs — a spool replay instead of an in-RAM
    // sequence walk.
    return probe::NextThetaGammaGroup(
        gamma_.order, &gamma_.next_key, op_, ctx_,
        [&](auto&& fn) {
          TupleSpool::Reader reader = theta_spool_->NewReader();
          Tuple u;
          // Rvalue: each deserialized tuple is fresh, so a match is moved
          // into the group (u is reassigned by the next Next()).
          while (reader.Next(&u)) fn(std::move(u));
        },
        out);
  }

  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  ChargeGuard charge_;

  bool spilled_ = false;
  Sequence input_seq_;       // in-memory mode
  probe::GammaBuckets gamma_;  // eq buckets; θ mode reuses order/next_key
  uint64_t stream_charged_ = 0;

  PartitionSet partitions_;
  std::optional<ExternalSorter> sorter_;
  std::optional<TupleSpool> theta_spool_;
  std::string scratch_;
  bool opened_ = false;
};

// ---------------------------------------------------------------------------
// Joins (⋈ / × / ⋉ / ▷ / outer / binary Γ)
// ---------------------------------------------------------------------------

class SpillJoinCursor final : public Cursor {
 public:
  SpillJoinCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr left,
                  CursorPtr right)
      : op_(op),
        ctx_(ctx),
        left_(std::move(left)),
        right_(std::move(right)),
        charge_(&ctx.spool->budget()) {
    if (op_.kind == OpKind::kOuterJoin) {
      AttrInfo info = OutputAttrs(*op_.child(1));
      for (Symbol a : info.attrs) {
        if (a != op_.attr) null_attrs_.push_back(a);
      }
    }
  }

  void Open() override {
    if (opened_) {
      // Unlike the in-memory cursors (which happen to tolerate it), the
      // spill cursors do not reset their partition/spool state on re-Open;
      // enforce the documented single-use cursor contract loudly.
      throw std::logic_error("spill cursor is single-use (cursor.h)");
    }
    opened_ = true;
    left_->Open();
    DetectEqui();
    BuildRight();
    // Post-build checks and constants, mirroring the in-memory cursors'
    // Open order.
    if (op_.kind == OpKind::kGroupBinary && op_.theta != CmpOp::kEq &&
        op_.left_attrs.size() != 1) {
      throw engine::Error(engine::ErrorCode::kPlanError,
                          "theta nest-join requires a single attribute", 0, {},
                          "SpillJoinCursor");
    }
    if (op_.kind == OpKind::kOuterJoin) {
      dflt_ = op_.expr != nullptr
                  ? ctx_.ev->EvalExpr(*op_.expr, Tuple(), *ctx_.env)
                  : Value::Null();
    }
    if (mode_ == Mode::kSpilledEqui) DrainLeftAndProbe();
  }

  bool Next(Tuple* out) override {
    switch (mode_) {
      case Mode::kInMemory:
      case Mode::kSpilledLoop:
        // In-memory and spooled-nested-loop probes share the plain cursors'
        // loops (nal/probe_loops.h); the access methods below read mode_.
        return NextProbeLoop(out);
      case Mode::kSpilledEqui:
        return NextSpilledEqui(out);
      case Mode::kBuilding:
        break;
    }
    return false;
  }

  // ---- probe::JoinProbeLoops access policy (nal/probe_loops.h) -----------

  ExecContext& ctx() { return ctx_; }
  const AlgebraOp& op() const { return op_; }
  bool LeftNext(Tuple* out) { return left_->Next(out); }
  bool use_index() const {
    return mode_ == Mode::kInMemory && equi_.has_value();
  }
  const HashIndex& hash_index() const { return index_; }
  const Expr* residual() const { return equi_->residual.get(); }
  std::span<const Symbol> probe_attrs() const {
    return equi_->left_attrs;
  }
  const Tuple& right_at(uint32_t pos) const { return right_seq_[pos]; }
  void ScanRestart() {
    if (mode_ == Mode::kInMemory) {
      scan_pos_ = 0;
    } else if (scan_reader_.has_value()) {
      // One cached handle, rewound per left tuple — N fopen/fclose pairs
      // for an N-tuple probe side would dominate the nested loop.
      scan_reader_->Rewind();
    } else {
      scan_reader_.emplace(right_spool_->NewReader());
    }
  }
  bool ScanNext(const Tuple** r) {
    if (mode_ == Mode::kInMemory) {
      if (scan_pos_ >= right_seq_.size()) return false;
      *r = &right_seq_[scan_pos_++];
      return true;
    }
    if (!scan_reader_->Next(&scan_tuple_)) return false;
    *r = &scan_tuple_;
    return true;
  }
  const std::vector<Symbol>& outer_null_attrs() const { return null_attrs_; }
  const Value& outer_default() const { return dflt_; }

  void Close() override {
    left_->Close();
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(stream_charged_);
    stream_charged_ = 0;
  }

 private:
  enum class Mode { kBuilding, kInMemory, kSpilledLoop, kSpilledEqui };

  std::span<const Symbol> build_attrs() const {
    return equi_->right_attrs;
  }

  void DetectEqui() {
    switch (op_.kind) {
      case OpKind::kJoin:
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
      case OpKind::kOuterJoin: {
        SymbolSet lattrs = OutputAttrs(*op_.child(0)).attrs;
        SymbolSet rattrs = OutputAttrs(*op_.child(1)).attrs;
        equi_ = ExtractEquiPredicate(op_.pred, lattrs, rattrs);
        break;
      }
      case OpKind::kGroupBinary:
        if (op_.theta == CmpOp::kEq) {
          EquiPredicate e;
          e.left_attrs = op_.left_attrs;
          e.right_attrs = op_.right_attrs;
          equi_ = std::move(e);
        }
        break;
      default:  // kCross: no predicate, nested loop by definition
        break;
    }
  }

  void BuildRight() {
    right_->Open();
    Tuple t;
    while (right_->Next(&t)) {
      if (mode_ == Mode::kBuilding) {
        uint64_t b = ApproximateTupleBytes(t) + kTupleOverhead;
        if (charge_.TryCharge(b)) {
          right_seq_.Append(std::move(t));
          continue;
        }
        SwitchToSpill();
      }
      RouteBuild(std::move(t));
    }
    right_->Close();
    if (mode_ == Mode::kBuilding) {
      mode_ = Mode::kInMemory;
      if (equi_.has_value()) {
        index_.Build(right_seq_, build_attrs(), ctx_.ev->store());
      }
      if (ctx_.stream != nullptr) {
        stream_charged_ = right_seq_.size();
        ctx_.stream->OnBuffer(stream_charged_);
      }
    } else if (mode_ == Mode::kSpilledLoop) {
      right_spool_->FinishWrites();
    } else {
      for (auto& part : build_parts_) part->FinishWrites();
    }
  }

  void SwitchToSpill() {
    if (equi_.has_value()) {
      mode_ = Mode::kSpilledEqui;
      // Admission policy: expected build volume = optimizer row hint for
      // this breaker × the average resident tuple size observed up to the
      // overflow (see GracePartitionCount).
      double avg = right_seq_.size() > 0
                       ? static_cast<double>(charge_.charged()) /
                             static_cast<double>(right_seq_.size())
                       : 0.0;
      build_parts_ = MakePartitionSet(
          ctx_.spool, StatsOf(ctx_),
          GracePartitionCount(ctx_.spool->budget().limit_bytes(),
                              ctx_.spool->RowHint(&op_) * avg));
      for (Tuple& u : right_seq_) RouteBuild(std::move(u));
    } else {
      mode_ = Mode::kSpilledLoop;
      right_spool_.emplace(ctx_.spool, StatsOf(ctx_));
      for (Tuple& u : right_seq_) {
        right_spool_->Append(std::move(u));
        ++rpos_next_;  // keep the arrival count (unused in loop mode)
      }
    }
    right_seq_.Clear();
    charge_.ReleaseAll();
  }

  /// Build record: (global right position, tuple). Written once per
  /// distinct key partition of the tuple; keyless tuples are unreachable by
  /// any probe and keep only their position number.
  void RouteBuild(Tuple t) {
    if (mode_ == Mode::kSpilledLoop) {
      right_spool_->Append(std::move(t));
      ++rpos_next_;
      return;
    }
    uint64_t rpos = rpos_next_++;
    MakeKeysInto(t, build_attrs(), ctx_.ev->store(), &key_scratch_);
    DistinctPartitionsOf(key_scratch_, 0, build_parts_.size(), &part_scratch_);
    if (part_scratch_.empty()) return;
    scratch_.clear();
    PutU64(&scratch_, rpos);
    EncodeTuple(t, &scratch_);
    for (size_t p : part_scratch_) build_parts_[p]->Append(scratch_);
  }

  // ---- spilled equi: probe routing, partition joins, order restoration --

  void DrainLeftAndProbe() {
    const xml::Store& store = ctx_.ev->store();
    left_spool_.emplace(ctx_.spool, StatsOf(ctx_));
    probe_parts_ = MakePartitionSet(ctx_.spool, StatsOf(ctx_),
                                    build_parts_.size());
    uint64_t lseq = 0;
    Tuple t;
    while (left_->Next(&t)) {
      MakeKeysInto(t, probe_attrs(), store, &key_scratch_);
      DistinctPartitionsOf(key_scratch_, 0, probe_parts_.size(),
                           &part_scratch_);
      if (!part_scratch_.empty()) {
        scratch_.clear();
        PutU64(&scratch_, lseq);
        EncodeTuple(t, &scratch_);
        for (size_t p : part_scratch_) probe_parts_[p]->Append(scratch_);
      }
      left_spool_->Append(std::move(t));
      ++lseq;
    }
    left_spool_->FinishWrites();
    for (auto& part : probe_parts_) part->FinishWrites();

    candidates_.emplace(ctx_.spool, StatsOf(ctx_));
    uint64_t cand_seq = 0;
    for (size_t i = 0; i < build_parts_.size(); ++i) {
      ProcessJoinPartition(*build_parts_[i], *probe_parts_[i], 0, &cand_seq);
    }
    build_parts_.clear();
    probe_parts_.clear();
    candidates_->Finish();

    left_reader_.emplace(left_spool_->NewReader(/*consume=*/true));
    next_lseq_ = 0;
    have_left_ = false;
    AdvanceCandidate();
  }

  void ProcessJoinPartition(SpoolFile& build, SpoolFile& probe, int depth,
                            uint64_t* cand_seq) {
    if (build.records() == 0 || probe.records() == 0) return;
    const xml::Store& store = ctx_.ev->store();
    uint64_t limit = ctx_.spool->budget().limit_bytes();
    if (build.bytes() > PartitionLoadLimit(limit) &&
        depth < kMaxRepartitionDepth) {
      SpillStats* stats = StatsOf(ctx_);
      stats->repartitions = xml::SaturatingAdd(stats->repartitions, 1);
      PartitionSet sub_build =
          MakePartitionSet(ctx_.spool, StatsOf(ctx_), kSubPartitions);
      PartitionSet sub_probe =
          MakePartitionSet(ctx_.spool, StatsOf(ctx_), kSubPartitions);
      // Re-route both sides by re-derived keys at the next salt level. A
      // record can fan out to several sub-partitions (multi-valued keys);
      // any resulting duplicate (lseq, rpos) match is dropped at the
      // restoration merge, exactly like LookupInto's sort+unique.
      RereadAndRoute(build, build_attrs(), depth + 1, &sub_build);
      RereadAndRoute(probe, probe_attrs(), depth + 1, &sub_probe);
      for (auto& sub : sub_build) sub->FinishWrites();
      for (auto& sub : sub_probe) sub->FinishWrites();
      for (size_t i = 0; i < sub_build.size(); ++i) {
        ProcessJoinPartition(*sub_build[i], *sub_probe[i], depth + 1,
                             cand_seq);
      }
      return;
    }

    // Load the build partition and index it. HashIndex recomputes every key
    // of every tuple — including keys whose home is another partition; a
    // probe can only reach such an entry through a key it genuinely shares
    // with the build tuple, so the extra entries produce at most duplicate
    // (lseq, rpos) pairs, which the merge drops.
    ChargeGuard charge(&ctx_.spool->budget());
    Sequence part;
    std::vector<uint64_t> rpos_map;
    {
      SpoolFile::Reader reader(build);
      std::string payload;
      while (reader.Next(&payload)) {
        const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
        const uint8_t* end = p + payload.size();
        ByteReader r{p, end};
        uint64_t rpos;
        if (!r.U64(&rpos)) CorruptSpool();
        Tuple t;
        const uint8_t* q = r.p;
        if (!DecodeTuple(&q, end, &t)) CorruptSpool();
        uint64_t b = ApproximateTupleBytes(t) + kTupleOverhead;
        if (!charge.TryCharge(b)) charge.ChargeUnchecked(b);
        rpos_map.push_back(rpos);
        part.Append(std::move(t));
      }
    }
    HashIndex index;
    index.Build(part, build_attrs(), store);

    SpoolFile::Reader reader(probe);
    std::string payload;
    std::vector<uint32_t> lookup;
    while (reader.Next(&payload)) {
      const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
      const uint8_t* end = p + payload.size();
      ByteReader r{p, end};
      uint64_t lseq;
      if (!r.U64(&lseq)) CorruptSpool();
      Tuple probe_tuple;
      const uint8_t* q = r.p;
      if (!DecodeTuple(&q, end, &probe_tuple)) CorruptSpool();
      index.LookupInto(probe_tuple, probe_attrs(), store, &key_scratch_,
                       &lookup);
      for (uint32_t pos : lookup) {
        candidates_->Add({Value(static_cast<int64_t>(lseq)),
                          Value(static_cast<int64_t>(rpos_map[pos]))},
                         (*cand_seq)++, part[pos]);
      }
    }
  }

  void RereadAndRoute(SpoolFile& file, std::span<const Symbol> attrs,
                      int level, PartitionSet* subs) {
    const xml::Store& store = ctx_.ev->store();
    SpoolFile::Reader reader(file);
    std::string payload;
    while (reader.Next(&payload)) {
      const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
      const uint8_t* end = p + payload.size();
      ByteReader r{p, end};
      uint64_t seq;
      if (!r.U64(&seq)) CorruptSpool();
      Tuple t;
      const uint8_t* q = r.p;
      if (!DecodeTuple(&q, end, &t)) CorruptSpool();
      MakeKeysInto(t, attrs, store, &key_scratch_);
      DistinctPartitionsOf(key_scratch_, level, subs->size(), &part_scratch_);
      for (size_t sp : part_scratch_) (*subs)[sp]->Append(payload);
    }
  }

  void AdvanceCandidate() {
    ExternalSorter::Record rec;
    if (candidates_->Next(&rec)) {
      cand_lseq_ = static_cast<uint64_t>(rec.key[0].AsInt());
      cand_rpos_ = static_cast<uint64_t>(rec.key[1].AsInt());
      cand_tuple_ = std::move(rec.tuple);
      cand_valid_ = true;
    } else {
      cand_valid_ = false;
    }
  }

  /// Pops the next candidate for the current left tuple, skipping
  /// duplicate (lseq, rpos) pairs (multi-valued keys matching through
  /// several partitions). False when the current lseq has no more.
  bool TakeCandidate(Tuple* right) {
    while (cand_valid_ && cand_lseq_ == cur_lseq_) {
      bool dup = have_last_ && last_rpos_ == cand_rpos_;
      if (dup) {
        AdvanceCandidate();
        continue;
      }
      have_last_ = true;
      last_rpos_ = cand_rpos_;
      *right = std::move(cand_tuple_);
      AdvanceCandidate();
      return true;
    }
    return false;
  }

  /// Drops the rest of the current left tuple's candidates without looking
  /// at them (semi/anti short-circuit parity: the in-memory probe stops
  /// evaluating the residual after the first match).
  void SkipCandidates() {
    while (cand_valid_ && cand_lseq_ == cur_lseq_) AdvanceCandidate();
  }

  bool NextSpilledEqui(Tuple* out) {
    const bool anti = op_.kind == OpKind::kAntiJoin;
    while (true) {
      if (!have_left_) {
        if (!left_reader_->Next(&cur_left_)) return false;
        cur_lseq_ = next_lseq_++;
        have_left_ = true;
        matched_ = false;
        have_last_ = false;
        group_.Clear();
      }
      Tuple right;
      switch (op_.kind) {
        case OpKind::kJoin: {
          while (TakeCandidate(&right)) {
            Tuple combined = cur_left_.Concat(right);
            if (equi_->residual == nullptr ||
                ctx_.ev->EvalPred(*equi_->residual, combined, *ctx_.env)) {
              *out = std::move(combined);
              CountProducedTuple(ctx_);
              return true;
            }
          }
          have_left_ = false;
          break;
        }
        case OpKind::kSemiJoin:
        case OpKind::kAntiJoin: {
          while (!matched_ && TakeCandidate(&right)) {
            if (equi_->residual == nullptr ||
                ctx_.ev->EvalPred(*equi_->residual, cur_left_.Concat(right),
                                  *ctx_.env)) {
              matched_ = true;
            }
          }
          SkipCandidates();
          bool emit = matched_ != anti;
          Tuple l = std::move(cur_left_);
          have_left_ = false;
          if (emit) {
            *out = std::move(l);
            CountProducedTuple(ctx_);
            return true;
          }
          break;
        }
        case OpKind::kOuterJoin: {
          while (TakeCandidate(&right)) {
            Tuple combined = cur_left_.Concat(right);
            if (equi_->residual == nullptr ||
                ctx_.ev->EvalPred(*equi_->residual, combined, *ctx_.env)) {
              matched_ = true;
              *out = std::move(combined);
              CountProducedTuple(ctx_);
              return true;
            }
          }
          bool pad = !matched_;
          Tuple l = std::move(cur_left_);
          have_left_ = false;
          if (pad) {
            Tuple t = l.Concat(Tuple::Nulls(null_attrs_));
            t.Set(op_.attr, dflt_);
            *out = std::move(t);
            CountProducedTuple(ctx_);
            return true;
          }
          break;
        }
        case OpKind::kGroupBinary: {
          while (TakeCandidate(&right)) group_.Append(std::move(right));
          Tuple l = std::move(cur_left_);
          have_left_ = false;
          Value agg =
              ctx_.ev->ApplyAgg(op_.agg, std::move(group_), *ctx_.env);
          group_ = Sequence();
          l.Set(op_.attr, std::move(agg));
          *out = std::move(l);
          CountProducedTuple(ctx_);
          return true;
        }
        default:
          return false;  // kCross never reaches the equi path
      }
    }
  }

  /// In-memory and spooled-nested-loop probes via the shared loops — the
  /// fits-in-memory byte-identity with the plain cursors holds because this
  /// IS the plain cursors' code (nal/probe_loops.h).
  bool NextProbeLoop(Tuple* out) {
    switch (op_.kind) {
      case OpKind::kCross:
      case OpKind::kJoin:
        return loops_.NextCrossJoin(*this, out);
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
        return loops_.NextSemiAnti(*this, out);
      case OpKind::kOuterJoin:
        return loops_.NextOuter(*this, out);
      case OpKind::kGroupBinary:
        return loops_.NextGroupBinary(*this, out);
      default:
        return false;
    }
  }

  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr left_;
  CursorPtr right_;
  ChargeGuard charge_;

  Mode mode_ = Mode::kBuilding;
  std::optional<EquiPredicate> equi_;
  Sequence right_seq_;  // in-memory build side
  HashIndex index_;
  uint64_t rpos_next_ = 0;
  uint64_t stream_charged_ = 0;

  std::vector<Symbol> null_attrs_;  // outer join
  Value dflt_;

  // Probe state: loops_ for the shared in-memory/nested-loop paths,
  // cur_left_/have_left_/matched_ for the spilled-equi restoration merge.
  probe::JoinProbeLoops<SpillJoinCursor> loops_;
  Tuple cur_left_;
  bool have_left_ = false;
  bool matched_ = false;
  std::vector<Key> key_scratch_;
  std::vector<size_t> part_scratch_;
  size_t scan_pos_ = 0;
  Tuple scan_tuple_;
  std::optional<TupleSpool> right_spool_;
  std::optional<TupleSpool::Reader> scan_reader_;

  // Spilled-equi state.
  PartitionSet build_parts_;
  PartitionSet probe_parts_;
  std::optional<TupleSpool> left_spool_;
  std::optional<TupleSpool::Reader> left_reader_;
  std::optional<ExternalSorter> candidates_;
  uint64_t next_lseq_ = 0;
  uint64_t cur_lseq_ = 0;
  bool cand_valid_ = false;
  uint64_t cand_lseq_ = 0;
  uint64_t cand_rpos_ = 0;
  Tuple cand_tuple_;
  bool have_last_ = false;
  uint64_t last_rpos_ = 0;
  Sequence group_;
  std::string scratch_;
  bool opened_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

namespace {

/// Decorates a spill cursor so any engine::Error escaping it is annotated
/// with the breaker's operator name — a low-level "spool.write" fault then
/// reports which operator it broke (the innermost annotation wins, so a
/// fault inside a nested spill cursor keeps that cursor's operator).
class OpContextCursor final : public Cursor {
 public:
  OpContextCursor(std::string op_name, CursorPtr inner)
      : op_name_(std::move(op_name)), inner_(std::move(inner)) {}

  void Open() override {
    Annotated([&] { inner_->Open(); });
  }
  bool Next(Tuple* out) override {
    return Annotated([&] { return inner_->Next(out); });
  }
  void Close() override {
    Annotated([&] { inner_->Close(); });
  }

 private:
  template <typename F>
  auto Annotated(F&& f) -> decltype(f()) {
    try {
      return f();
    } catch (engine::Error& e) {
      e.set_op_if_empty(op_name_);
      throw;
    }
  }

  std::string op_name_;
  CursorPtr inner_;
};

CursorPtr Annotate(std::string op_name, CursorPtr inner) {
  return std::make_unique<OpContextCursor>(std::move(op_name),
                                           std::move(inner));
}

}  // namespace

bool SpillEnabled(const ExecContext& ctx) {
  return ctx.spool != nullptr && ctx.spool->enabled();
}

CursorPtr MakeSpillSortCursor(const AlgebraOp& op, ExecContext& ctx,
                              CursorPtr input) {
  return Annotate(std::string(OpKindName(op.kind)),
                  std::make_unique<SpillSortCursor>(op, ctx, std::move(input)));
}

CursorPtr MakeSpillGroupUnaryCursor(const AlgebraOp& op, ExecContext& ctx,
                                    CursorPtr input) {
  return Annotate(
      std::string(OpKindName(op.kind)),
      std::make_unique<SpillGroupUnaryCursor>(op, ctx, std::move(input)));
}

CursorPtr MakeSpillJoinCursor(const AlgebraOp& op, ExecContext& ctx,
                              CursorPtr left, CursorPtr right) {
  return Annotate(std::string(OpKindName(op.kind)),
                  std::make_unique<SpillJoinCursor>(op, ctx, std::move(left),
                                                    std::move(right)));
}

CursorPtr MakeSpoolBufferCursor(ExecContext& ctx, CursorPtr input) {
  return Annotate("SpoolBuffer",
                  std::make_unique<SpoolBufferCursor>(ctx, std::move(input)));
}

}  // namespace nalq::nal
