#include "nal/analysis.h"

#include <algorithm>

namespace nalq::nal {

bool Disjoint(const SymbolSet& a, const SymbolSet& b) {
  for (Symbol s : a) {
    if (b.count(s) != 0) return false;
  }
  return true;
}

bool Subset(const SymbolSet& a, const SymbolSet& b) {
  for (Symbol s : a) {
    if (b.count(s) == 0) return false;
  }
  return true;
}

SymbolSet Union(const SymbolSet& a, const SymbolSet& b) {
  SymbolSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

SymbolSet Minus(const SymbolSet& a, const SymbolSet& b) {
  SymbolSet out;
  for (Symbol s : a) {
    if (b.count(s) == 0) out.insert(s);
  }
  return out;
}

namespace {

/// Nested shape of a χ/Υ-defining expression, if statically known.
void NestedShapeOf(const Expr& e, Symbol target, AttrInfo* info) {
  if (e.kind == ExprKind::kNestedAlg) {
    AttrInfo inner = OutputAttrs(*e.alg);
    info->nested[target] = inner.attrs;
  } else if (e.kind == ExprKind::kBindTuples) {
    info->nested[target] = SymbolSet{e.attr};
  } else if (e.kind == ExprKind::kConst &&
             e.literal.kind() == ValueKind::kTupleSeq) {
    // Literal relations (used heavily in tests and by hand-built plans)
    // expose the union of their tuples' attributes.
    SymbolSet attrs;
    for (const Tuple& t : e.literal.AsTuples()) {
      for (const auto& [a, v] : t.slots()) attrs.insert(a);
    }
    info->nested[target] = std::move(attrs);
  } else if (e.kind == ExprKind::kFnCall && e.children.size() == 1) {
    // Aggregates over nested algebra produce scalars; nothing nested.
  }
}

}  // namespace

AttrInfo OutputAttrs(const AlgebraOp& op) {
  AttrInfo info;
  switch (op.kind) {
    case OpKind::kSingleton:
      return info;
    case OpKind::kSelect:
    case OpKind::kSort:
    case OpKind::kXiSimple:
      return OutputAttrs(*op.child(0));
    case OpKind::kProject: {
      AttrInfo in = OutputAttrs(*op.child(0));
      // Apply renames first.
      for (const auto& [to, from] : op.renames) {
        if (in.attrs.erase(from) != 0) in.attrs.insert(to);
        auto it = in.nested.find(from);
        if (it != in.nested.end()) {
          in.nested[to] = it->second;
          in.nested.erase(from);
        }
      }
      if (op.pmode == ProjectMode::kDrop) {
        for (Symbol a : op.attrs) {
          in.attrs.erase(a);
          in.nested.erase(a);
        }
        return in;
      }
      if (!op.attrs.empty() || op.pmode == ProjectMode::kDistinct) {
        AttrInfo out;
        for (Symbol a : op.attrs) {
          out.attrs.insert(a);
          auto it = in.nested.find(a);
          if (it != in.nested.end()) out.nested[a] = it->second;
        }
        return out;
      }
      return in;  // rename-only projection
    }
    case OpKind::kMap: {
      info = OutputAttrs(*op.child(0));
      info.attrs.insert(op.attr);
      NestedShapeOf(*op.expr, op.attr, &info);
      return info;
    }
    case OpKind::kUnnestMap: {
      info = OutputAttrs(*op.child(0));
      info.attrs.insert(op.attr);
      return info;
    }
    case OpKind::kUnnest: {
      info = OutputAttrs(*op.child(0));
      info.attrs.erase(op.attr);
      auto it = info.nested.find(op.attr);
      if (it != info.nested.end()) {
        info.attrs.insert(it->second.begin(), it->second.end());
        info.nested.erase(op.attr);
      } else {
        // Shape unknown statically (e.g. item-sequence attribute): the
        // unnested attribute keeps its name.
        info.attrs.insert(op.attr);
      }
      return info;
    }
    case OpKind::kCross:
    case OpKind::kJoin:
    case OpKind::kOuterJoin: {
      AttrInfo l = OutputAttrs(*op.child(0));
      AttrInfo r = OutputAttrs(*op.child(1));
      l.attrs.insert(r.attrs.begin(), r.attrs.end());
      l.nested.insert(r.nested.begin(), r.nested.end());
      if (op.kind == OpKind::kOuterJoin) l.attrs.insert(op.attr);
      return l;
    }
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
      return OutputAttrs(*op.child(0));
    case OpKind::kGroupUnary: {
      for (Symbol a : op.left_attrs) info.attrs.insert(a);
      info.attrs.insert(op.attr);
      if (op.agg.kind == AggSpec::Kind::kId) {
        info.nested[op.attr] = OutputAttrs(*op.child(0)).attrs;
      }
      return info;
    }
    case OpKind::kGroupBinary: {
      info = OutputAttrs(*op.child(0));
      info.attrs.insert(op.attr);
      if (op.agg.kind == AggSpec::Kind::kId) {
        info.nested[op.attr] = OutputAttrs(*op.child(1)).attrs;
      }
      return info;
    }
    case OpKind::kXiGroup: {
      for (Symbol a : op.attrs) info.attrs.insert(a);
      return info;
    }
  }
  return info;
}

SymbolSet FreeVarsExpr(const Expr& e, const SymbolSet& bound) {
  SymbolSet out;
  switch (e.kind) {
    case ExprKind::kConst:
      return out;
    case ExprKind::kAttrRef:
      if (bound.count(e.attr) == 0) out.insert(e.attr);
      return out;
    case ExprKind::kNestedAlg: {
      SymbolSet inner = FreeVars(*e.alg);
      return Minus(inner, bound);
    }
    case ExprKind::kAgg: {
      SymbolSet out_free = FreeVarsExpr(*e.children[0], bound);
      if (e.agg.filter != nullptr) {
        SymbolSet inner_bound = bound;
        if (e.children[0]->kind == ExprKind::kNestedAlg) {
          AttrInfo info = OutputAttrs(*e.children[0]->alg);
          inner_bound.insert(info.attrs.begin(), info.attrs.end());
        }
        SymbolSet filter_free = FreeVarsExpr(*e.agg.filter, inner_bound);
        out_free.insert(filter_free.begin(), filter_free.end());
      }
      return out_free;
    }
    case ExprKind::kQuant: {
      SymbolSet range_free = Minus(FreeVars(*e.alg), bound);
      SymbolSet range_attrs = OutputAttrs(*e.alg).attrs;
      SymbolSet pred_bound = Union(bound, range_attrs);
      pred_bound.insert(e.quant_var);
      SymbolSet pred_free = FreeVarsExpr(*e.children[0], pred_bound);
      return Union(range_free, pred_free);
    }
    default: {
      for (const ExprPtr& c : e.children) {
        SymbolSet child_free = FreeVarsExpr(*c, bound);
        out.insert(child_free.begin(), child_free.end());
      }
      return out;
    }
  }
}

SymbolSet FreeVars(const AlgebraOp& op) {
  SymbolSet free;
  // Free vars of the children themselves.
  for (const AlgebraPtr& c : op.children) {
    SymbolSet child_free = FreeVars(*c);
    free.insert(child_free.begin(), child_free.end());
  }
  // Attributes available to this operator's subscripts.
  SymbolSet bound;
  for (const AlgebraPtr& c : op.children) {
    AttrInfo info = OutputAttrs(*c);
    bound.insert(info.attrs.begin(), info.attrs.end());
  }
  auto add_expr = [&](const ExprPtr& e) {
    if (e == nullptr) return;
    SymbolSet f = FreeVarsExpr(*e, bound);
    free.insert(f.begin(), f.end());
  };
  add_expr(op.pred);
  add_expr(op.expr);
  add_expr(op.agg.filter);
  for (const XiProgram* program : {&op.s1, &op.s2, &op.s3}) {
    for (const XiCommand& c : *program) {
      if (!c.is_literal) add_expr(c.expr);
    }
  }
  return free;
}

}  // namespace nalq::nal
