// Physical-algorithm building blocks.
//
// The paper notes that standard hash-based implementations do not preserve
// order and that it uses a Grace hash join plus order restoration (Sec. 2,
// "One word on implementation"). Our evaluator materializes inputs in order
// and probes hash structures in left-input order, with bucket lists kept in
// right-input order — which preserves the order of the defining nested-loop
// semantics exactly, so no separate restoration sort is needed. A Sort
// operator is provided anyway for experiments with order-destroying plans.
#ifndef NALQ_NAL_PHYSICAL_H_
#define NALQ_NAL_PHYSICAL_H_

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "nal/analysis.h"
#include "nal/sequence.h"

namespace nalq::xml {
class Store;
}

namespace nalq::nal {

/// An atomized, hashable grouping/join key.
struct Key {
  std::vector<Value> values;

  bool operator==(const Key& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!values[i].Equals(other.values[i])) return false;
    }
    return true;
  }
};

struct KeyHash {
  size_t operator()(const Key& k) const noexcept {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (const Value& v : k.values) h = h * 1099511628211ull + v.Hash();
    return h;
  }
};

/// Builds the atomized key of `tuple` over `attrs`. Nodes are atomized to
/// their string value; an item-sequence value yields one key per item
/// (XQuery general-comparison semantics) — only supported for single-attr
/// keys; multi-attribute keys require atomic values.
std::vector<Key> MakeKeys(const Tuple& tuple, std::span<const Symbol> attrs,
                          const xml::Store& store);

/// Allocation-reusing form: clears `*out` and fills it. A caller probing in
/// a loop keeps one scratch vector (and the Key vectors inside it) alive
/// across probes.
void MakeKeysInto(const Tuple& tuple, std::span<const Symbol> attrs,
                  const xml::Store& store, std::vector<Key>* out);

/// Hash index from key to input positions (positions kept in input order, so
/// probing preserves the right operand's order inside each bucket).
class HashIndex {
 public:
  void Build(const Sequence& input, std::span<const Symbol> attrs,
             const xml::Store& store);

  /// Positions matching any key of `probe` over `attrs` (deduplicated,
  /// ascending = right-input order).
  std::vector<uint32_t> Lookup(const Tuple& probe,
                               std::span<const Symbol> attrs,
                               const xml::Store& store) const;

  /// Allocation-reusing probe: `*scratch` and `*out` are cleared and reused
  /// across calls. `*out` holds the same positions Lookup would return.
  void LookupInto(const Tuple& probe, std::span<const Symbol> attrs,
                  const xml::Store& store, std::vector<Key>* scratch,
                  std::vector<uint32_t>* out) const;

  const std::vector<uint32_t>* LookupKey(const Key& k) const;

  size_t bucket_count() const { return map_.size(); }

 private:
  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> map_;
};

/// Decomposition of a join predicate into equality conjuncts between left
/// and right attributes plus a residual predicate.
struct EquiPredicate {
  std::vector<Symbol> left_attrs;
  std::vector<Symbol> right_attrs;
  ExprPtr residual;  ///< nullptr when the predicate is pure equi
};

/// Extracts `l.a = r.b ∧ ...` conjuncts from `pred` given the attribute sets
/// of the two operands. Returns nullopt if no equality conjunct exists (the
/// evaluator then falls back to the nested-loop definition).
std::optional<EquiPredicate> ExtractEquiPredicate(const ExprPtr& pred,
                                                  const SymbolSet& left,
                                                  const SymbolSet& right);

}  // namespace nalq::nal

#endif  // NALQ_NAL_PHYSICAL_H_
