// Process-wide interned identifiers for attribute and variable names.
//
// NAL works on sequences of unordered tuples whose attributes correspond to
// XQuery variables (paper Sec. 2). Interning makes attribute lookup, tuple
// concatenation and the A(e)/F(e) analyses cheap set operations over ids.
#ifndef NALQ_NAL_SYMBOL_H_
#define NALQ_NAL_SYMBOL_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace nalq::nal {

/// A cheap, copyable handle to an interned name. Symbol{} (id 0) is the
/// empty symbol.
class Symbol {
 public:
  Symbol() = default;
  /// Interns `name` in the process-wide table.
  explicit Symbol(std::string_view name);

  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }
  std::string_view str() const;

  friend bool operator==(Symbol, Symbol) = default;
  friend std::strong_ordering operator<=>(Symbol a, Symbol b) {
    return a.id_ <=> b.id_;
  }

  /// Generates a fresh symbol `<base>#<n>` not handed out before; used for
  /// the new attributes (g, a2', ...) the equivalences introduce.
  static Symbol Fresh(std::string_view base);

  /// Rebuilds a symbol from its interned id. Ids are stable for the process
  /// lifetime, which is exactly the lifetime of the spool temp files that
  /// persist them (nal/spool.h) — a spool file is never read by another
  /// process.
  static Symbol FromId(uint32_t id) {
    Symbol s;
    s.id_ = id;
    return s;
  }

 private:
  uint32_t id_ = 0;
};

struct SymbolHash {
  size_t operator()(Symbol s) const noexcept { return s.id(); }
};

}  // namespace nalq::nal

#endif  // NALQ_NAL_SYMBOL_H_
