// Cooperative cancellation and deadline token for one query run.
//
// The paper's NAL evaluator assumes an embedding system (Natix) that owns
// the query lifecycle; QueryControl is that lifecycle seam for our three
// executors. One token is shared — by plain pointer, the owner outlives the
// run — between the caller, the consumer thread and every exchange worker:
//
//   * the caller flips RequestCancel() (thread-safe, idempotent) or arms a
//     monotonic deadline (steady_clock, immune to wall-clock steps);
//   * every executor loop calls Poll() at bounded intervals — per operator
//     evaluation, per produced tuple, per spool-file record — and Poll()
//     throws engine::Error{kCancelled | kDeadlineExceeded} once the token
//     trips, unwinding through the RAII cleanup (spool files, budget
//     charges, worker packets) the cursors already guarantee.
//
// Poll() is built to sit on hot paths: the common case is one relaxed
// atomic load. The deadline clock is only consulted every
// kDeadlineCheckInterval polls (and on the very first poll, so an
// already-expired deadline trips before any work happens); once either
// condition fires the token latches the corresponding state, so every
// thread of the run reports the same code — the first trip wins, not the
// fastest thread.
#ifndef NALQ_NAL_QUERY_CONTROL_H_
#define NALQ_NAL_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace nalq::nal {

class QueryControl {
 public:
  using Clock = std::chrono::steady_clock;

  QueryControl() = default;
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// Asks the run to stop; the next Poll() on any participating thread
  /// throws engine::Error(kCancelled). Safe from any thread, any time.
  void RequestCancel() { Trip(State::kCancelled); }

  /// Arms (or re-arms) the deadline at now + `ms`. 0 means "already
  /// expired": the first deadline check trips. Not thread-safe against
  /// concurrent Poll()s — arm before the run starts.
  void SetDeadlineMs(uint64_t ms) {
    SetDeadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }

  bool cancel_requested() const {
    return state_.load(std::memory_order_relaxed) != State::kRunning;
  }
  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_relaxed);
  }
  /// The armed deadline instant. Meaningful only when has_deadline(); used
  /// by the query service to bound its admission-queue wait with the same
  /// deadline that bounds the run (service/query_service.h).
  Clock::time_point deadline() const {
    return Clock::time_point(
        Clock::duration(deadline_ns_.load(std::memory_order_relaxed)));
  }

  /// Deadline clock reads happen every this-many polls (plus the first).
  static constexpr uint64_t kDeadlineCheckInterval = 256;

  /// The cancellation point. Throws engine::Error(kCancelled) or
  /// engine::Error(kDeadlineExceeded); otherwise a near-free check.
  void Poll() {
    State s = state_.load(std::memory_order_relaxed);
    if (s != State::kRunning) ThrowTripped(s);
    if (has_deadline_.load(std::memory_order_relaxed) &&
        polls_.fetch_add(1, std::memory_order_relaxed) %
                kDeadlineCheckInterval ==
            0) {
      CheckDeadline();
    }
  }

  /// Deadline from the NALQ_DEADLINE_MS environment variable (0 when
  /// unset/invalid), read once per process. Engine::Run/RunQuery fall back
  /// to it when no explicit deadline_ms is supplied, mirroring
  /// SpoolContext::EnvBudgetBytes().
  static uint64_t EnvDeadlineMs();

 private:
  /// Latched trip state. Tripping is first-wins: once set, later trips
  /// (including the other kind) are ignored, so every thread reports the
  /// same error code for one run.
  enum class State : int { kRunning = 0, kCancelled, kDeadline };

  void Trip(State s) {
    State expected = State::kRunning;
    state_.compare_exchange_strong(expected, s, std::memory_order_relaxed);
  }
  void CheckDeadline();
  [[noreturn]] static void ThrowTripped(State s);

  std::atomic<State> state_{State::kRunning};
  std::atomic<bool> has_deadline_{false};
  std::atomic<int64_t> deadline_ns_{0};  ///< Clock duration since its epoch
  std::atomic<uint64_t> polls_{0};
};

}  // namespace nalq::nal

#endif  // NALQ_NAL_QUERY_CONTROL_H_
