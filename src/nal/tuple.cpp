#include "nal/tuple.h"

#include <algorithm>

namespace nalq::nal {

namespace {
const Value kNull;
}  // namespace

Tuple::Tuple(std::initializer_list<std::pair<Symbol, Value>> bindings) {
  for (const auto& [a, v] : bindings) Set(a, v);
}

bool Tuple::Has(Symbol a) const {
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), a,
      [](const auto& slot, Symbol s) { return slot.first < s; });
  return it != slots_.end() && it->first == a;
}

const Value& Tuple::Get(Symbol a) const {
  const Value* v = Find(a);
  return v != nullptr ? *v : kNull;
}

const Value* Tuple::Find(Symbol a) const {
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), a,
      [](const auto& slot, Symbol s) { return slot.first < s; });
  if (it != slots_.end() && it->first == a) return &it->second;
  return nullptr;
}

void Tuple::Set(Symbol a, Value v) {
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), a,
      [](const auto& slot, Symbol s) { return slot.first < s; });
  if (it != slots_.end() && it->first == a) {
    it->second = std::move(v);
  } else {
    slots_.insert(it, {a, std::move(v)});
  }
}

Tuple Tuple::Concat(const Tuple& other) const& {
  Tuple out;
  out.slots_.reserve(slots_.size() + other.slots_.size());
  auto a = slots_.begin();
  auto b = other.slots_.begin();
  while (a != slots_.end() && b != other.slots_.end()) {
    if (a->first < b->first) {
      out.slots_.push_back(*a++);
    } else if (b->first < a->first) {
      out.slots_.push_back(*b++);
    } else {
      // Collision: `other` wins (documented behaviour used by renaming).
      out.slots_.push_back(*b++);
      ++a;
    }
  }
  out.slots_.insert(out.slots_.end(), a, slots_.end());
  out.slots_.insert(out.slots_.end(), b, other.slots_.end());
  return out;
}

Tuple Tuple::Concat(const Tuple& other) && {
  if (other.slots_.empty()) return std::move(*this);
  if (slots_.empty() || slots_.back().first < other.slots_.front().first) {
    slots_.insert(slots_.end(), other.slots_.begin(), other.slots_.end());
    return std::move(*this);
  }
  return static_cast<const Tuple&>(*this).Concat(other);
}

Tuple Tuple::Project(std::span<const Symbol> attrs) const {
  Tuple out;
  for (Symbol a : attrs) {
    if (Has(a)) out.Set(a, Get(a));
  }
  return out;
}

Tuple Tuple::Drop(std::span<const Symbol> attrs) const& {
  Tuple out;
  out.slots_.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (std::find(attrs.begin(), attrs.end(), slot.first) == attrs.end()) {
      out.slots_.push_back(slot);
    }
  }
  return out;
}

Tuple Tuple::Drop(std::span<const Symbol> attrs) && {
  std::erase_if(slots_, [&](const auto& slot) {
    return std::find(attrs.begin(), attrs.end(), slot.first) != attrs.end();
  });
  return std::move(*this);
}

Tuple Tuple::Rename(Symbol from, Symbol to) const& {
  if (from == to || !Has(from)) return *this;
  Tuple out;
  for (const auto& [a, v] : slots_) {
    out.Set(a == from ? to : a, v);
  }
  return out;
}

Tuple Tuple::Rename(Symbol from, Symbol to) && {
  if (from == to || !Has(from)) return std::move(*this);
  if (Has(to)) return static_cast<const Tuple&>(*this).Rename(from, to);
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), from,
      [](const auto& slot, Symbol s) { return slot.first < s; });
  std::pair<Symbol, Value> moved = {to, std::move(it->second)};
  slots_.erase(it);
  auto pos = std::lower_bound(
      slots_.begin(), slots_.end(), to,
      [](const auto& slot, Symbol s) { return slot.first < s; });
  slots_.insert(pos, std::move(moved));
  return std::move(*this);
}

Tuple Tuple::Nulls(std::span<const Symbol> attrs) {
  Tuple out;
  for (Symbol a : attrs) out.Set(a, Value::Null());
  return out;
}

std::vector<Symbol> Tuple::Attributes() const {
  std::vector<Symbol> out;
  out.reserve(slots_.size());
  for (const auto& [a, v] : slots_) out.push_back(a);
  return out;
}

bool Tuple::Equals(const Tuple& other) const {
  if (slots_.size() != other.slots_.size()) return false;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].first != other.slots_[i].first) return false;
    if (!slots_[i].second.Equals(other.slots_[i].second)) return false;
  }
  return true;
}

size_t Tuple::Hash() const {
  size_t h = 0x811c9dc5;
  for (const auto& [a, v] : slots_) {
    h = h * 16777619 + a.id();
    h = h * 16777619 + v.Hash();
  }
  return h;
}

std::string Tuple::DebugString() const {
  std::string out = "[";
  bool first = true;
  for (const auto& [a, v] : slots_) {
    if (!first) out += ", ";
    out += std::string(a.str());
    out += ": ";
    out += v.DebugString();
    first = false;
  }
  return out + "]";
}

}  // namespace nalq::nal
