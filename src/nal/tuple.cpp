#include "nal/tuple.h"

#include <algorithm>

namespace nalq::nal {

namespace {
const Value kNull;
}  // namespace

Tuple::Tuple(std::initializer_list<std::pair<Symbol, Value>> bindings) {
  for (const auto& [a, v] : bindings) Set(a, v);
}

bool Tuple::Has(Symbol a) const {
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), a,
      [](const auto& slot, Symbol s) { return slot.first < s; });
  return it != slots_.end() && it->first == a;
}

const Value& Tuple::Get(Symbol a) const {
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), a,
      [](const auto& slot, Symbol s) { return slot.first < s; });
  if (it != slots_.end() && it->first == a) return it->second;
  return kNull;
}

void Tuple::Set(Symbol a, Value v) {
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), a,
      [](const auto& slot, Symbol s) { return slot.first < s; });
  if (it != slots_.end() && it->first == a) {
    it->second = std::move(v);
  } else {
    slots_.insert(it, {a, std::move(v)});
  }
}

Tuple Tuple::Concat(const Tuple& other) const {
  Tuple out = *this;
  for (const auto& [a, v] : other.slots_) out.Set(a, v);
  return out;
}

Tuple Tuple::Project(std::span<const Symbol> attrs) const {
  Tuple out;
  for (Symbol a : attrs) {
    if (Has(a)) out.Set(a, Get(a));
  }
  return out;
}

Tuple Tuple::Drop(std::span<const Symbol> attrs) const {
  Tuple out;
  for (const auto& [a, v] : slots_) {
    if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
      out.Set(a, v);
    }
  }
  return out;
}

Tuple Tuple::Rename(Symbol from, Symbol to) const {
  if (from == to || !Has(from)) return *this;
  Tuple out;
  for (const auto& [a, v] : slots_) {
    out.Set(a == from ? to : a, v);
  }
  return out;
}

Tuple Tuple::Nulls(std::span<const Symbol> attrs) {
  Tuple out;
  for (Symbol a : attrs) out.Set(a, Value::Null());
  return out;
}

std::vector<Symbol> Tuple::Attributes() const {
  std::vector<Symbol> out;
  out.reserve(slots_.size());
  for (const auto& [a, v] : slots_) out.push_back(a);
  return out;
}

bool Tuple::Equals(const Tuple& other) const {
  if (slots_.size() != other.slots_.size()) return false;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].first != other.slots_[i].first) return false;
    if (!slots_[i].second.Equals(other.slots_[i].second)) return false;
  }
  return true;
}

size_t Tuple::Hash() const {
  size_t h = 0x811c9dc5;
  for (const auto& [a, v] : slots_) {
    h = h * 16777619 + a.id();
    h = h * 16777619 + v.Hash();
  }
  return h;
}

std::string Tuple::DebugString() const {
  std::string out = "[";
  bool first = true;
  for (const auto& [a, v] : slots_) {
    if (!first) out += ", ";
    out += std::string(a.str());
    out += ": ";
    out += v.DebugString();
    first = false;
  }
  return out + "]";
}

}  // namespace nalq::nal
