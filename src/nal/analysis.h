// Static analyses over algebra trees:
//   A(e) — the attributes an expression produces (paper notation A(e)),
//          including the inner attributes of nested sequence-valued ones,
//   F(e) — free variables (paper notation F(e)),
// both required to verify the side conditions of the unnesting equivalences
// (e.g. Ai ⊆ A(ei), F(e2) ∩ A(e1) = ∅).
#ifndef NALQ_NAL_ANALYSIS_H_
#define NALQ_NAL_ANALYSIS_H_

#include <map>
#include <set>
#include <vector>

#include "nal/algebra.h"

namespace nalq::nal {

using SymbolSet = std::set<Symbol>;

/// A(e) plus, for tuple-sequence-valued attributes whose shape is statically
/// known (Γ with f = id, χ of a nested algebra or e[a] binding), the inner
/// attribute sets.
struct AttrInfo {
  SymbolSet attrs;
  std::map<Symbol, SymbolSet> nested;

  bool Has(Symbol a) const { return attrs.count(a) != 0; }
};

/// Computes A(op).
AttrInfo OutputAttrs(const AlgebraOp& op);

/// Computes F(op): attributes referenced anywhere in `op`'s subscripts that
/// no child of the referencing operator provides.
SymbolSet FreeVars(const AlgebraOp& op);

/// Free attributes of an expression given the attributes `bound` available
/// from the operator's input.
SymbolSet FreeVarsExpr(const Expr& e, const SymbolSet& bound);

/// Convenience set helpers.
bool Disjoint(const SymbolSet& a, const SymbolSet& b);
bool Subset(const SymbolSet& a, const SymbolSet& b);
SymbolSet Union(const SymbolSet& a, const SymbolSet& b);
SymbolSet Minus(const SymbolSet& a, const SymbolSet& b);

}  // namespace nalq::nal

#endif  // NALQ_NAL_ANALYSIS_H_
