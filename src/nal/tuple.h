// Unordered tuples of attribute/value bindings (paper Sec. 2).
//
// Attributes are kept sorted by Symbol id, making the tuple a canonical
// small map: lookup is a binary search, concatenation (the paper's ◦) a
// merge, and equality/hash independent of construction order — matching the
// paper's "sequences of *unordered* tuples".
#ifndef NALQ_NAL_TUPLE_H_
#define NALQ_NAL_TUPLE_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "nal/symbol.h"
#include "nal/value.h"

namespace nalq::nal {

class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<std::pair<Symbol, Value>> bindings);

  size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  /// True iff attribute `a` is bound (possibly to NULL).
  bool Has(Symbol a) const;
  /// Value of `a`; NULL if unbound.
  const Value& Get(Symbol a) const;
  /// Value of `a`, or nullptr if unbound (single lookup for the Has+Get
  /// pattern).
  const Value* Find(Symbol a) const;
  /// Binds `a` (replacing any existing binding).
  void Set(Symbol a, Value v);

  /// The paper's ◦ (tuple concatenation). Attributes of `other` must be
  /// disjoint from ours; in case of a collision `other` wins (documented
  /// behaviour used by renaming). A single sorted merge, O(|this|+|other|).
  Tuple Concat(const Tuple& other) const&;
  /// Move form: reuses this tuple's storage when `other` appends cleanly
  /// (all of its symbol ids are larger); otherwise falls back to the
  /// merge-copy of the const& overload.
  Tuple Concat(const Tuple& other) &&;

  /// Projection onto `attrs` (the paper's |A). Missing attributes are
  /// skipped.
  Tuple Project(std::span<const Symbol> attrs) const;

  /// Drops `attrs` (the paper's Π with an overline).
  Tuple Drop(std::span<const Symbol> attrs) const&;
  /// Move form: erases in place, no allocation.
  Tuple Drop(std::span<const Symbol> attrs) &&;

  /// Renames attribute `from` to `to` (other attributes untouched).
  Tuple Rename(Symbol from, Symbol to) const&;
  /// Move form: re-slots the renamed binding in place, no allocation (unless
  /// `to` is already bound, which falls back to the copying path).
  Tuple Rename(Symbol from, Symbol to) &&;

  /// The paper's ⊥_A: a tuple with every attribute of `attrs` bound to NULL.
  static Tuple Nulls(std::span<const Symbol> attrs);

  /// All bound attribute names, ascending by symbol id.
  std::vector<Symbol> Attributes() const;

  const std::vector<std::pair<Symbol, Value>>& slots() const { return slots_; }

  /// Structural equality over Value::Equals.
  bool Equals(const Tuple& other) const;
  size_t Hash() const;

  std::string DebugString() const;

 private:
  // Sorted by Symbol id.
  std::vector<std::pair<Symbol, Value>> slots_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const noexcept { return t.Hash(); }
};
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const noexcept {
    return a.Equals(b);
  }
};

}  // namespace nalq::nal

#endif  // NALQ_NAL_TUPLE_H_
