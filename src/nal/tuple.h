// Unordered tuples of attribute/value bindings (paper Sec. 2).
//
// Attributes are kept sorted by Symbol id, making the tuple a canonical
// small map: lookup is a binary search, concatenation (the paper's ◦) a
// merge, and equality/hash independent of construction order — matching the
// paper's "sequences of *unordered* tuples".
#ifndef NALQ_NAL_TUPLE_H_
#define NALQ_NAL_TUPLE_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "nal/symbol.h"
#include "nal/value.h"

namespace nalq::nal {

class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<std::pair<Symbol, Value>> bindings);

  size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  /// True iff attribute `a` is bound (possibly to NULL).
  bool Has(Symbol a) const;
  /// Value of `a`; NULL if unbound.
  const Value& Get(Symbol a) const;
  /// Binds `a` (replacing any existing binding).
  void Set(Symbol a, Value v);

  /// The paper's ◦ (tuple concatenation). Attributes of `other` must be
  /// disjoint from ours; in case of a collision `other` wins (documented
  /// behaviour used by renaming).
  Tuple Concat(const Tuple& other) const;

  /// Projection onto `attrs` (the paper's |A). Missing attributes are
  /// skipped.
  Tuple Project(std::span<const Symbol> attrs) const;

  /// Drops `attrs` (the paper's Π with an overline).
  Tuple Drop(std::span<const Symbol> attrs) const;

  /// Renames attribute `from` to `to` (other attributes untouched).
  Tuple Rename(Symbol from, Symbol to) const;

  /// The paper's ⊥_A: a tuple with every attribute of `attrs` bound to NULL.
  static Tuple Nulls(std::span<const Symbol> attrs);

  /// All bound attribute names, ascending by symbol id.
  std::vector<Symbol> Attributes() const;

  const std::vector<std::pair<Symbol, Value>>& slots() const { return slots_; }

  /// Structural equality over Value::Equals.
  bool Equals(const Tuple& other) const;
  size_t Hash() const;

  std::string DebugString() const;

 private:
  // Sorted by Symbol id.
  std::vector<std::pair<Symbol, Value>> slots_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const noexcept { return t.Hash(); }
};
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const noexcept {
    return a.Equals(b);
  }
};

}  // namespace nalq::nal

#endif  // NALQ_NAL_TUPLE_H_
