// Parallel partitioned execution for the NAL streaming executor — classical
// exchange-operator parallelism over the Volcano cursors of cursor.h.
//
// The plan is cut at a *partition point*: a maximal run of per-tuple
// streaming operators (σ, χ, Υ, μ, Π-keep/drop — see IsPartitionableOp)
// sitting above an expanding producer. The producer subtree runs serially on
// the consumer thread and its tuple stream is split into chunks ("morsels");
// each chunk becomes a task on the work-stealing scheduler (scheduler.h)
// that runs the chunk through a per-worker clone of the operator run — its
// own cursor chain over the shared plan, driven by its own Evaluator — and
// publishes the resulting packet under the chunk's ticket. The MergeCursor
// re-emits packets in strict ticket order, so the merged stream is
// tuple-for-tuple the serial streaming stream.
//
// Determinism guarantees, at any worker count and chunk size:
//   * output bytes — the worker segment never writes to the Ξ output stream
//     (enforced by IsPartitionableOp), everything above the exchange runs on
//     the consumer thread in merge order, and the producer subtree runs
//     serially on the consumer thread too, so every output write happens in
//     the serial order;
//   * merged EvalStats — every per-worker counter counts per-tuple events
//     exactly once, so the fold of worker stats into the main evaluator at
//     Close (EvalStats::operator+=) reproduces the serial totals.
// tests/exchange_exec_test.cpp asserts both differentially.
//
// Shared read paths that make this safe: the store's build-once index latch
// (xml/store.h), the mutex-guarded node string-value memo (xml/node.h) and
// the per-thread scratch buffers in xpath.cpp/physical.cpp.
#ifndef NALQ_NAL_EXCHANGE_H_
#define NALQ_NAL_EXCHANGE_H_

#include <map>
#include <optional>
#include <vector>

#include "nal/cursor.h"

namespace nalq::nal {

/// How source tuples are assigned to chunks.
enum class PartitionStrategy : uint8_t {
  /// Fixed-size chunks dispatched round-robin as the producer streams —
  /// bounded memory, overlap of production and processing.
  kRoundRobin,
  /// The producer is materialized and split into `threads` contiguous
  /// ranges, one chunk per worker — fewer, larger tasks; the classical
  /// range-partitioned exchange.
  kRange,
};

/// A chosen cut of the plan: `segment` (top-down, segment.front() == top)
/// is the run of partitionable operators every worker clones; `source` is
/// the producer subtree below it, evaluated serially. The segment may
/// contain probe-partitionable breakers (IsProbePartitionableOp): their
/// build sides are materialized once on the consumer and probed read-only
/// by every worker. `gamma`, when set, is a partitionable unary Γ sitting
/// directly above `top` (or directly above `source` when the segment is
/// empty) whose groups are hash-partitioned across workers and merged in
/// first-occurrence order.
struct PartitionPoint {
  const AlgebraOp* top = nullptr;
  std::vector<const AlgebraOp*> segment;
  const AlgebraOp* source = nullptr;
  const AlgebraOp* gamma = nullptr;

  /// The node MakeCursor's exchange injection replaces: the Γ when the
  /// point carries one, else the segment top.
  const AlgebraOp* injection() const { return gamma != nullptr ? gamma : top; }
};

struct ParallelOptions {
  /// Degree of parallelism (worker pipelines / concurrent chunk tasks).
  /// 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  PartitionStrategy strategy = PartitionStrategy::kRoundRobin;
  /// Morsel size for round-robin partitioning.
  uint32_t chunk_tuples = 64;
  /// Memory budget for the whole parallel run (0 = unlimited, falling back
  /// to NALQ_MEMORY_BUDGET_BYTES like the serial entry points). One
  /// MemoryBudget accountant carries the limit for every participant: the
  /// consumer pipeline (which runs every pipeline breaker) and all worker
  /// pipelines reserve against it, so the global bound holds without
  /// throttling the breakers to a fraction of it. Worker spool files live
  /// in worker-private directories, and the effective degree of
  /// parallelism is clamped (see kMinWorkerBudgetBytes) so a high thread
  /// count cannot over-commit the budget through per-worker in-flight
  /// state.
  uint64_t memory_budget_bytes = 0;
  /// Caller-chosen partition point (the cost-driven chooser in
  /// opt/parallel.h). Honored only when `point_resolved` is true; a
  /// resolved-but-empty point forces serial streaming. When unresolved the
  /// run picks its own point: the breaker-extended scan under an unlimited
  /// budget, the per-tuple legacy scan otherwise.
  std::optional<PartitionPoint> point;
  bool point_resolved = false;
  /// Estimated build-side rows per breaker node (opt/parallel.h), consumed
  /// by the spool layer's grace-partition admission policy. Borrowed; must
  /// outlive the run. Null = no hints (static partition-count rule).
  const std::map<const AlgebraOp*, double>* breaker_row_hints = nullptr;
};

/// Per-worker footprint the budget accountant cannot see — the dispatch-
/// window chunk and result packet in flight on each worker. The effective
/// worker count is clamped to budget / this (minimum one), keeping that
/// uncharged memory proportional to the budget.
inline constexpr uint64_t kMinWorkerBudgetBytes = 256 * 1024;

/// What FindPartitionPoint may put in a segment beyond the per-tuple
/// operators. Both extensions keep breaker state in RAM (the shared build /
/// the routed partitions), so callers enable them only on unlimited-budget
/// runs; under a finite budget the legacy per-tuple segment keeps every
/// breaker on the consumer where the spool layer bounds it.
struct PartitionScan {
  bool shared_probe = false;  ///< allow IsProbePartitionableOp breakers
  bool gamma = false;         ///< allow a Γ pre-aggregation extension
};

/// The effective degree of parallelism for a `threads` request: the request
/// itself when non-zero, else the NALQ_THREADS environment knob (malformed
/// values throw kPlanError — env_knobs.h), else one worker per hardware
/// core. `budget_bytes` != 0 additionally applies the kMinWorkerBudgetBytes
/// clamp. Exposed so the cost-driven placement chooser (opt/parallel.h)
/// prices exactly the worker count the exchange would run.
unsigned ResolveParallelThreads(unsigned threads, uint64_t budget_bytes);

/// Finds the deepest maximal run of partitionable operators on the plan's
/// child(0) spine whose producer is an expanding operator (Υ/μ), demoting
/// non-expanding spine tail ops into the source so the chunked stream has
/// real cardinality. nullopt if the plan has no such cut — the caller falls
/// back to serial streaming.
std::optional<PartitionPoint> FindPartitionPoint(const AlgebraOp& root);

/// Scan-controlled form: `scan.shared_probe` admits probe-partitionable
/// breakers into the segment, `scan.gamma` additionally attaches a
/// partitionable Γ directly above it (or alone when no segment exists).
/// FindPartitionPoint(root) == FindPartitionPoint(root, {}) — the legacy
/// per-tuple rule.
std::optional<PartitionPoint> FindPartitionPoint(const AlgebraOp& root,
                                                 const PartitionScan& scan);

/// Every distinct candidate placement the cost-driven chooser
/// (opt/parallel.h) prices: the legacy per-tuple point, the probe-extended
/// point, and their Γ-extended variants, deduplicated. Order is
/// deterministic; may be empty.
std::vector<PartitionPoint> EnumeratePartitionPoints(const AlgebraOp& root);

/// Pull-runs `op` with the partitionable segment executed in parallel,
/// discarding root tuples — the parallel counterpart of DrainStreaming.
/// Byte-identical output and identical (merged) EvalStats at any `threads`
/// and any memory budget. Falls back to serial streaming when no partition
/// point exists.
uint64_t DrainParallel(Evaluator& ev, const AlgebraOp& op,
                       const ParallelOptions& options = {},
                       StreamStats* stream = nullptr);

/// Pull-runs `op` in parallel and collects the root output — the parallel
/// counterpart of ExecuteStreaming, used by the differential tests.
Sequence ExecuteParallel(Evaluator& ev, const AlgebraOp& op,
                         const ParallelOptions& options = {},
                         StreamStats* stream = nullptr);

}  // namespace nalq::nal

#endif  // NALQ_NAL_EXCHANGE_H_
