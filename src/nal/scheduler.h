// Work-stealing thread pool for the parallel executor (exchange.h).
//
// A small, process-wide pool of worker threads, each with its own task
// deque. Submitted tasks are distributed round-robin across the deques;
// a worker pops its own deque LIFO (cache-warm, newest first) and, when
// empty, steals the OLDEST task from a sibling — the classic work-stealing
// discipline that keeps coarse-grained morsel tasks balanced without a
// central queue bottleneck.
//
// Tasks must be self-contained units of work: they may take mutexes and
// signal condition variables, but must never block waiting on another
// *task* (the pool makes no guarantee that any other task is running
// concurrently, so task-on-task waits can deadlock a small pool). The
// exchange operator obeys this by design — chunk tasks only compute and
// publish; all cross-task waiting happens on the consumer thread, which is
// never a pool thread.
#ifndef NALQ_NAL_SCHEDULER_H_
#define NALQ_NAL_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nalq::nal {

class Scheduler {
 public:
  /// The process-wide pool, created on first use with one thread per
  /// hardware core. Never destroyed before process exit.
  static Scheduler& Global();

  /// Grows the pool to at least `n` threads (never shrinks; capped at
  /// kMaxThreads). Called by the exchange with the requested degree of
  /// parallelism before submitting work.
  void EnsureThreads(unsigned n);

  /// Enqueues `task` for execution on some pool thread.
  void Submit(std::function<void()> task);

  unsigned thread_count() const {
    return static_cast<unsigned>(count_.load(std::memory_order_acquire));
  }
  /// Tasks a worker took from a sibling's deque (observability for tests).
  uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Tasks executed in total.
  uint64_t task_count() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Growing past this many threads is clamped (also the reserve() bound
  /// that keeps worker slots at stable addresses while the pool grows).
  static constexpr unsigned kMaxThreads = 256;

  explicit Scheduler(unsigned initial_threads);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops one task: own deque back (LIFO), else steal a sibling's front
  /// (FIFO). Returns false when every deque is empty.
  bool TryPop(size_t self, std::function<void()>* task);
  bool HasWork();

  // Worker slots are heap-allocated and the vector pre-reserved, so worker
  // threads may index workers_[0..count_) without synchronizing against
  // pool growth.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<size_t> count_{0};
  std::vector<std::thread> threads_;

  std::mutex pool_mu_;  ///< guards growth, shutdown and the idle wait
  std::condition_variable idle_cv_;
  bool stop_ = false;

  std::atomic<size_t> next_{0};  ///< round-robin submit target
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> executed_{0};
};

}  // namespace nalq::nal

#endif  // NALQ_NAL_SCHEDULER_H_
