// Ordered sequences of tuples — the carrier of every NAL operator.
#ifndef NALQ_NAL_SEQUENCE_H_
#define NALQ_NAL_SEQUENCE_H_

#include <string>
#include <vector>

#include "nal/tuple.h"

namespace nalq::nal {

/// A thin, ordered container of tuples with the paper's sequence vocabulary
/// (α = First, τ = Tail, ⊕ = Append/Extend, ε = empty).
class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {}

  bool empty() const { return tuples_.empty(); }
  size_t size() const { return tuples_.size(); }
  const Tuple& operator[](size_t i) const { return tuples_[i]; }
  Tuple& operator[](size_t i) { return tuples_[i]; }

  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }
  auto begin() { return tuples_.begin(); }
  auto end() { return tuples_.end(); }

  /// The paper's α(e): first element. Precondition: !empty().
  const Tuple& First() const { return tuples_.front(); }
  /// The paper's τ(e): everything but the first element (copies).
  Sequence Tail() const {
    return Sequence(std::vector<Tuple>(tuples_.begin() + 1, tuples_.end()));
  }

  void Append(Tuple t) { tuples_.push_back(std::move(t)); }
  void Extend(const Sequence& other) {
    tuples_.insert(tuples_.end(), other.tuples_.begin(), other.tuples_.end());
  }
  void Reserve(size_t n) { tuples_.reserve(n); }
  void Clear() { tuples_.clear(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& tuples() { return tuples_; }

 private:
  std::vector<Tuple> tuples_;
};

/// Order-sensitive structural equality (the property every equivalence in
/// the paper preserves).
bool SequencesEqual(const Sequence& a, const Sequence& b);

std::string DebugStringOf(const Sequence& s);

/// Builds the paper's e[a] from a sequence of non-tuple values: one tuple
/// per item, attribute `a` bound to the item.
Sequence TuplesFromItems(Symbol a, const ItemSeq& items);

}  // namespace nalq::nal

#endif  // NALQ_NAL_SEQUENCE_H_
