// Ordered sequences of tuples — the carrier of every NAL operator.
#ifndef NALQ_NAL_SEQUENCE_H_
#define NALQ_NAL_SEQUENCE_H_

#include <string>
#include <vector>

#include "nal/tuple.h"

namespace nalq::nal {

/// A thin, ordered container of tuples with the paper's sequence vocabulary
/// (α = First, τ = Tail, ⊕ = Append/Extend, ε = empty).
class Sequence {
 public:
  Sequence() = default;
  explicit Sequence(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {}

  bool empty() const { return tuples_.empty(); }
  size_t size() const { return tuples_.size(); }
  const Tuple& operator[](size_t i) const { return tuples_[i]; }
  Tuple& operator[](size_t i) { return tuples_[i]; }

  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }
  auto begin() { return tuples_.begin(); }
  auto end() { return tuples_.end(); }

  /// The paper's α(e): first element. Precondition: !empty().
  const Tuple& First() const { return tuples_.front(); }
  /// The paper's τ(e): everything but the first element (copies). Prefer
  /// SeqView::Tail() in recursive definitions — it is a pointer step, not a
  /// copy, turning the textual α/τ recursions from O(n²) space to O(n).
  Sequence Tail() const {
    return Sequence(std::vector<Tuple>(tuples_.begin() + 1, tuples_.end()));
  }

  void Append(Tuple t) { tuples_.push_back(std::move(t)); }
  void Extend(const Sequence& other) {
    tuples_.insert(tuples_.end(), other.tuples_.begin(), other.tuples_.end());
  }
  void Reserve(size_t n) { tuples_.reserve(n); }
  void Clear() { tuples_.clear(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& tuples() { return tuples_; }

 private:
  std::vector<Tuple> tuples_;
};

/// Non-owning view of a Sequence suffix, carrying the same α/τ vocabulary.
/// τ on a view is pointer arithmetic, so the head-tail recursions of the
/// paper's definitions (reference.cpp) keep their textual shape but run in
/// linear instead of quadratic space. The viewed Sequence must outlive the
/// view.
class SeqView {
 public:
  SeqView() = default;
  explicit SeqView(const Sequence& s)
      : data_(s.tuples().data()), size_(s.size()) {}
  SeqView(const Tuple* data, size_t size) : data_(data), size_(size) {}

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  const Tuple& operator[](size_t i) const { return data_[i]; }

  const Tuple* begin() const { return data_; }
  const Tuple* end() const { return data_ + size_; }

  /// The paper's α(e). Precondition: !empty().
  const Tuple& First() const { return data_[0]; }
  /// The paper's τ(e) — O(1), no copy.
  SeqView Tail() const { return SeqView(data_ + 1, size_ - 1); }

 private:
  const Tuple* data_ = nullptr;
  size_t size_ = 0;
};

/// Order-sensitive structural equality (the property every equivalence in
/// the paper preserves).
bool SequencesEqual(const Sequence& a, const Sequence& b);

std::string DebugStringOf(const Sequence& s);

/// Builds the paper's e[a] from a sequence of non-tuple values: one tuple
/// per item, attribute `a` bound to the item.
Sequence TuplesFromItems(Symbol a, const ItemSeq& items);

}  // namespace nalq::nal

#endif  // NALQ_NAL_SEQUENCE_H_
