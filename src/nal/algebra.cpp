#include "nal/algebra.h"

namespace nalq::nal {

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSingleton:
      return "Singleton";
    case OpKind::kSelect:
      return "Select";
    case OpKind::kProject:
      return "Project";
    case OpKind::kMap:
      return "Map";
    case OpKind::kUnnestMap:
      return "UnnestMap";
    case OpKind::kUnnest:
      return "Unnest";
    case OpKind::kCross:
      return "Cross";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kSemiJoin:
      return "SemiJoin";
    case OpKind::kAntiJoin:
      return "AntiJoin";
    case OpKind::kOuterJoin:
      return "OuterJoin";
    case OpKind::kGroupUnary:
      return "GroupUnary";
    case OpKind::kGroupBinary:
      return "GroupBinary";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kXiSimple:
      return "Xi";
    case OpKind::kXiGroup:
      return "XiGroup";
  }
  return "?";
}

AlgebraPtr AlgebraOp::Clone() const {
  auto out = std::make_shared<AlgebraOp>();
  out->kind = kind;
  out->children.reserve(children.size());
  for (const AlgebraPtr& c : children) out->children.push_back(c->Clone());
  if (pred != nullptr) out->pred = pred->Clone();
  out->attr = attr;
  if (expr != nullptr) out->expr = expr->Clone();
  out->pmode = pmode;
  out->attrs = attrs;
  out->renames = renames;
  out->sort_desc = sort_desc;
  out->theta = theta;
  out->left_attrs = left_attrs;
  out->right_attrs = right_attrs;
  out->agg = agg.CloneSpec();
  out->distinct = distinct;
  out->outer = outer;
  out->cse_id = cse_id;
  auto clone_program = [](const XiProgram& program) {
    XiProgram out_program;
    out_program.reserve(program.size());
    for (const XiCommand& c : program) {
      XiCommand copy = c;
      if (c.expr != nullptr) copy.expr = c.expr->Clone();
      out_program.push_back(std::move(copy));
    }
    return out_program;
  };
  out->s1 = clone_program(s1);
  out->s2 = clone_program(s2);
  out->s3 = clone_program(s3);
  return out;
}

namespace {

AlgebraPtr NewOp(OpKind kind, std::vector<AlgebraPtr> children) {
  auto op = std::make_shared<AlgebraOp>();
  op->kind = kind;
  op->children = std::move(children);
  return op;
}

}  // namespace

AlgebraPtr Singleton() { return NewOp(OpKind::kSingleton, {}); }

AlgebraPtr Select(ExprPtr pred, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kSelect, {std::move(input)});
  op->pred = std::move(pred);
  return op;
}

AlgebraPtr ProjectKeep(std::vector<Symbol> attrs, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kProject, {std::move(input)});
  op->pmode = ProjectMode::kKeep;
  op->attrs = std::move(attrs);
  return op;
}

AlgebraPtr ProjectDrop(std::vector<Symbol> attrs, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kProject, {std::move(input)});
  op->pmode = ProjectMode::kDrop;
  op->attrs = std::move(attrs);
  return op;
}

AlgebraPtr ProjectDistinct(std::vector<Symbol> attrs, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kProject, {std::move(input)});
  op->pmode = ProjectMode::kDistinct;
  op->attrs = std::move(attrs);
  return op;
}

AlgebraPtr ProjectRename(std::vector<std::pair<Symbol, Symbol>> renames,
                         AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kProject, {std::move(input)});
  op->pmode = ProjectMode::kKeep;
  // A rename-only projection keeps everything else: encode with empty attrs
  // and non-empty renames.
  op->renames = std::move(renames);
  return op;
}

AlgebraPtr Map(Symbol a, ExprPtr e, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kMap, {std::move(input)});
  op->attr = a;
  op->expr = std::move(e);
  return op;
}

AlgebraPtr UnnestMap(Symbol a, ExprPtr e, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kUnnestMap, {std::move(input)});
  op->attr = a;
  op->expr = std::move(e);
  op->outer = false;  // XQuery `for` semantics: empty range → no bindings
  return op;
}

AlgebraPtr Unnest(Symbol g, AlgebraPtr input, bool distinct, bool outer) {
  AlgebraPtr op = NewOp(OpKind::kUnnest, {std::move(input)});
  op->attr = g;
  op->distinct = distinct;
  op->outer = outer;
  return op;
}

AlgebraPtr Cross(AlgebraPtr lhs, AlgebraPtr rhs) {
  return NewOp(OpKind::kCross, {std::move(lhs), std::move(rhs)});
}

AlgebraPtr Join(ExprPtr pred, AlgebraPtr lhs, AlgebraPtr rhs) {
  AlgebraPtr op = NewOp(OpKind::kJoin, {std::move(lhs), std::move(rhs)});
  op->pred = std::move(pred);
  return op;
}

AlgebraPtr SemiJoin(ExprPtr pred, AlgebraPtr lhs, AlgebraPtr rhs) {
  AlgebraPtr op = NewOp(OpKind::kSemiJoin, {std::move(lhs), std::move(rhs)});
  op->pred = std::move(pred);
  return op;
}

AlgebraPtr AntiJoin(ExprPtr pred, AlgebraPtr lhs, AlgebraPtr rhs) {
  AlgebraPtr op = NewOp(OpKind::kAntiJoin, {std::move(lhs), std::move(rhs)});
  op->pred = std::move(pred);
  return op;
}

AlgebraPtr OuterJoin(ExprPtr pred, Symbol g, ExprPtr dflt, AlgebraPtr lhs,
                     AlgebraPtr rhs) {
  AlgebraPtr op = NewOp(OpKind::kOuterJoin, {std::move(lhs), std::move(rhs)});
  op->pred = std::move(pred);
  op->attr = g;
  op->expr = std::move(dflt);
  return op;
}

AlgebraPtr GroupUnary(Symbol g, CmpOp theta, std::vector<Symbol> attrs,
                      AggSpec f, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kGroupUnary, {std::move(input)});
  op->attr = g;
  op->theta = theta;
  op->left_attrs = attrs;
  op->right_attrs = std::move(attrs);
  op->agg = std::move(f);
  return op;
}

AlgebraPtr GroupBinary(Symbol g, std::vector<Symbol> a1, CmpOp theta,
                       std::vector<Symbol> a2, AggSpec f, AlgebraPtr lhs,
                       AlgebraPtr rhs) {
  AlgebraPtr op = NewOp(OpKind::kGroupBinary, {std::move(lhs), std::move(rhs)});
  op->attr = g;
  op->theta = theta;
  op->left_attrs = std::move(a1);
  op->right_attrs = std::move(a2);
  op->agg = std::move(f);
  return op;
}

AlgebraPtr SortBy(std::vector<Symbol> attrs, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kSort, {std::move(input)});
  op->attrs = std::move(attrs);
  return op;
}

AlgebraPtr SortByDir(std::vector<Symbol> attrs, std::vector<uint8_t> desc,
                     AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kSort, {std::move(input)});
  op->attrs = std::move(attrs);
  op->sort_desc = std::move(desc);
  return op;
}

AlgebraPtr XiSimple(XiProgram commands, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kXiSimple, {std::move(input)});
  op->s1 = std::move(commands);
  return op;
}

AlgebraPtr XiGroup(XiProgram s1, std::vector<Symbol> group_attrs, XiProgram s2,
                   XiProgram s3, AlgebraPtr input) {
  AlgebraPtr op = NewOp(OpKind::kXiGroup, {std::move(input)});
  op->s1 = std::move(s1);
  op->s2 = std::move(s2);
  op->s3 = std::move(s3);
  op->attrs = std::move(group_attrs);
  return op;
}

}  // namespace nalq::nal
