#include "nal/reference.h"

#include <stdexcept>
#include <unordered_set>

#include "nal/analysis.h"
#include "nal/physical.h"

namespace nalq::nal::reference {

namespace {

// The head-tail recursions below take SeqView, not Sequence: the paper's
// τ(e) is then a pointer step instead of a suffix copy, keeping the textual
// definitions but in linear instead of quadratic space.

/// σ_p(e) := α(e) ⊕ σ_p(τ(e)) if p(α(e)), else σ_p(τ(e)).
Sequence SelectRec(Evaluator& ev, const Expr& pred, SeqView e,
                   const Tuple& env) {
  if (e.empty()) return Sequence();
  Sequence out;
  if (ev.EvalPred(pred, e.First(), env)) out.Append(e.First());
  out.Extend(SelectRec(ev, pred, e.Tail(), env));
  return out;
}

/// e1 ×̂ e2 := ε if e2 = ε, else (e1 ∘ α(e2)) ⊕ (e1 ×̂ τ(e2))
/// (e1 is a single tuple here, per the paper's definition).
Sequence CrossHat(const Tuple& t, SeqView e2) {
  if (e2.empty()) return Sequence();
  Sequence out;
  out.Append(t.Concat(e2.First()));
  out.Extend(CrossHat(t, e2.Tail()));
  return out;
}

/// e1 × e2 := (α(e1) ×̂ e2) ⊕ (τ(e1) × e2).
Sequence CrossRec(SeqView e1, SeqView e2) {
  if (e1.empty()) return Sequence();
  Sequence out = CrossHat(e1.First(), e2);
  out.Extend(CrossRec(e1.Tail(), e2));
  return out;
}

bool ExistsMatch(Evaluator& ev, const Expr& pred, const Tuple& t,
                 SeqView e2, const Tuple& env) {
  for (const Tuple& x : e2) {
    if (ev.EvalPred(pred, t.Concat(x), env)) return true;
  }
  return false;
}

/// Semijoin / antijoin by their head-tail definitions.
Sequence SemiRec(Evaluator& ev, const Expr& pred, SeqView e1, SeqView e2,
                 const Tuple& env, bool anti) {
  if (e1.empty()) return Sequence();
  Sequence out;
  bool matched = ExistsMatch(ev, pred, e1.First(), e2, env);
  if (matched != anti) out.Append(e1.First());
  out.Extend(SemiRec(ev, pred, e1.Tail(), e2, env, anti));
  return out;
}

/// Atomized whole-tuple key for the deterministic ΠD.
Key TupleKey(Evaluator& ev, const Tuple& t) {
  Key k;
  for (const auto& [a, v] : t.slots()) {
    k.values.push_back(v.Atomize(ev.store()));
  }
  return k;
}

/// ΠD with distinct-values semantics: atomized values, first occurrence,
/// deterministic.
Sequence DistinctProject(Evaluator& ev, const Sequence& e,
                         const std::vector<Symbol>& attrs) {
  Sequence out;
  std::unordered_set<Key, KeyHash> seen;
  for (const Tuple& t : e) {
    Tuple projected = attrs.empty() ? t : t.Project(attrs);
    Tuple atomized;
    for (const auto& [a, v] : projected.slots()) {
      atomized.Set(a, v.Atomize(ev.store()));
    }
    if (seen.insert(TupleKey(ev, atomized)).second) {
      out.Append(std::move(atomized));
    }
  }
  return out;
}

/// Binary Γ by its definition: per e1 tuple, G(x) = f(σ_{x|A1 θ A2}(e2)).
Sequence GroupBinaryRec(Evaluator& ev, const AlgebraOp& op, SeqView e1,
                        SeqView e2, const Tuple& env) {
  if (e1.empty()) return Sequence();
  const Tuple& t = e1.First();
  Sequence group;
  for (const Tuple& u : e2) {
    // x|A1 θ A2 evaluated with general-comparison semantics like the
    // production evaluator (single grouping attribute in the θ case;
    // conjunction over the attribute lists for '=').
    bool matches = true;
    for (size_t i = 0; i < op.left_attrs.size(); ++i) {
      if (!ev.GeneralCompare(op.theta, t.Get(op.left_attrs[i]),
                             u.Get(op.right_attrs[i]))) {
        matches = false;
        break;
      }
    }
    if (matches) group.Append(u);
  }
  Sequence out;
  Tuple result = t;
  result.Set(op.attr, ev.ApplyAgg(op.agg, group, env));
  out.Append(std::move(result));
  out.Extend(GroupBinaryRec(ev, op, e1.Tail(), e2, env));
  return out;
}

/// μ_g by its definition, ⊥ convention included.
Sequence UnnestRec(Evaluator& ev, const AlgebraOp& op, SeqView e,
                   const std::vector<Symbol>& bot_attrs) {
  if (e.empty()) return Sequence();
  const Tuple& t = e.First();
  std::vector<Symbol> drop = {op.attr};
  Tuple base = t.Drop(drop);
  Sequence nested;
  const Value& v = t.Get(op.attr);
  if (v.kind() == ValueKind::kTupleSeq) {
    nested = v.AsTuples();
  } else {
    ItemSeq items;
    FlattenToItems(v, &items);
    nested = TuplesFromItems(op.attr, items);
  }
  if (op.distinct) nested = DistinctProject(ev, nested, {});
  Sequence out;
  if (nested.empty()) {
    if (op.outer) out.Append(base.Concat(Tuple::Nulls(bot_attrs)));
  } else {
    out.Extend(CrossHat(base, SeqView(nested)));
  }
  out.Extend(UnnestRec(ev, op, e.Tail(), bot_attrs));
  return out;
}

}  // namespace

Sequence Eval(Evaluator& ev, const AlgebraOp& op, const Tuple& env) {
  switch (op.kind) {
    case OpKind::kSingleton: {
      Sequence out;
      out.Append(Tuple());
      return out;
    }
    case OpKind::kSelect: {
      Sequence in = Eval(ev, *op.child(0), env);
      return SelectRec(ev, *op.pred, SeqView(in), env);
    }
    case OpKind::kProject: {
      Sequence in = Eval(ev, *op.child(0), env);
      Sequence renamed;
      for (const Tuple& t : in) {
        Tuple t2 = t;
        for (const auto& [to, from] : op.renames) t2 = t2.Rename(from, to);
        renamed.Append(std::move(t2));
      }
      switch (op.pmode) {
        case ProjectMode::kKeep: {
          if (op.attrs.empty()) return renamed;
          Sequence out;
          for (const Tuple& t : renamed) out.Append(t.Project(op.attrs));
          return out;
        }
        case ProjectMode::kDrop: {
          Sequence out;
          for (const Tuple& t : renamed) out.Append(t.Drop(op.attrs));
          return out;
        }
        case ProjectMode::kDistinct:
          return DistinctProject(ev, renamed, op.attrs);
      }
      return renamed;
    }
    case OpKind::kMap: {
      // χ_{a:e2}(e1) := α(e1) ∘ [a : e2(α(e1))] ⊕ χ_{a:e2}(τ(e1)).
      Sequence in = Eval(ev, *op.child(0), env);
      Sequence out;
      for (const Tuple& t : in) {
        Tuple extended = t;
        extended.Set(op.attr, ev.EvalExpr(*op.expr, t, env));
        out.Append(std::move(extended));
      }
      return out;
    }
    case OpKind::kUnnestMap: {
      // Υ_{a:e2}(e1) := μ_g(χ_{g:e2[a]}(e1)) — evaluated literally through
      // a synthesized χ and μ.
      Symbol g = Symbol::Fresh("upsilon_g");
      AlgebraPtr chi =
          nal::Map(g, MakeBindTuples(op.expr->Clone(), op.attr),
                   nal::Singleton());
      Sequence in = Eval(ev, *op.child(0), env);
      Sequence mapped;
      for (const Tuple& t : in) {
        Tuple extended = t;
        extended.Set(g, ev.EvalExpr(*chi->expr, t, env));
        mapped.Append(std::move(extended));
      }
      AlgebraOp mu;
      mu.kind = OpKind::kUnnest;
      mu.attr = g;
      mu.outer = op.outer;
      return UnnestRec(ev, mu, SeqView(mapped), {op.attr});
    }
    case OpKind::kUnnest: {
      std::vector<Symbol> bot_attrs;
      AttrInfo info = OutputAttrs(*op.child(0));
      auto it = info.nested.find(op.attr);
      if (it != info.nested.end()) {
        bot_attrs.assign(it->second.begin(), it->second.end());
      }
      Sequence in = Eval(ev, *op.child(0), env);
      return UnnestRec(ev, op, SeqView(in), bot_attrs);
    }
    case OpKind::kCross: {
      Sequence e1 = Eval(ev, *op.child(0), env);
      Sequence e2 = Eval(ev, *op.child(1), env);
      return CrossRec(SeqView(e1), SeqView(e2));
    }
    case OpKind::kJoin: {
      // e1 ⋈_p e2 := σ_p(e1 × e2).
      Sequence e1 = Eval(ev, *op.child(0), env);
      Sequence e2 = Eval(ev, *op.child(1), env);
      Sequence crossed = CrossRec(SeqView(e1), SeqView(e2));
      return SelectRec(ev, *op.pred, SeqView(crossed), env);
    }
    case OpKind::kSemiJoin: {
      Sequence e1 = Eval(ev, *op.child(0), env);
      Sequence e2 = Eval(ev, *op.child(1), env);
      return SemiRec(ev, *op.pred, SeqView(e1), SeqView(e2), env,
                     /*anti=*/false);
    }
    case OpKind::kAntiJoin: {
      Sequence e1 = Eval(ev, *op.child(0), env);
      Sequence e2 = Eval(ev, *op.child(1), env);
      return SemiRec(ev, *op.pred, SeqView(e1), SeqView(e2), env,
                     /*anti=*/true);
    }
    case OpKind::kOuterJoin: {
      Sequence e1 = Eval(ev, *op.child(0), env);
      Sequence e2 = Eval(ev, *op.child(1), env);
      std::vector<Symbol> null_attrs;
      AttrInfo info = OutputAttrs(*op.child(1));
      for (Symbol a : info.attrs) {
        if (a != op.attr) null_attrs.push_back(a);
      }
      Value dflt = op.expr != nullptr ? ev.EvalExpr(*op.expr, Tuple(), env)
                                      : Value::Null();
      Sequence out;
      for (const Tuple& t : e1) {
        // (α(e1) ⋈_p e2) or the ⊥/default row.
        Sequence matches;
        for (const Tuple& u : e2) {
          Tuple combined = t.Concat(u);
          if (ev.EvalPred(*op.pred, combined, env)) {
            matches.Append(std::move(combined));
          }
        }
        if (matches.empty()) {
          Tuple row = t.Concat(Tuple::Nulls(null_attrs));
          row.Set(op.attr, dflt);
          out.Append(std::move(row));
        } else {
          out.Extend(matches);
        }
      }
      return out;
    }
    case OpKind::kGroupUnary: {
      // Γ_{g;θA;f}(e) := Π_{A:A'}(ΠD_{A':A}(Π_A(e)) Γ_{g;A'θA;f} e).
      Sequence e = Eval(ev, *op.child(0), env);
      Sequence distinct = DistinctProject(ev, e, op.left_attrs);
      // Rename A → A' on the distinct side.
      std::vector<Symbol> primed;
      Sequence left;
      for (Symbol a : op.left_attrs) {
        primed.push_back(Symbol(std::string(a.str()) + "@ref'"));
      }
      for (const Tuple& t : distinct) {
        Tuple renamed;
        for (size_t i = 0; i < op.left_attrs.size(); ++i) {
          renamed.Set(primed[i], t.Get(op.left_attrs[i]));
        }
        left.Append(std::move(renamed));
      }
      AlgebraOp binary;
      binary.kind = OpKind::kGroupBinary;
      binary.attr = op.attr;
      binary.theta = op.theta;
      binary.left_attrs = primed;
      binary.right_attrs = op.left_attrs;
      binary.agg = op.agg.CloneSpec();
      Sequence grouped = GroupBinaryRec(ev, binary, SeqView(left), SeqView(e),
                                        env);
      // Π_{A:A'}: rename back.
      Sequence out;
      for (const Tuple& t : grouped) {
        Tuple renamed;
        for (size_t i = 0; i < op.left_attrs.size(); ++i) {
          renamed.Set(op.left_attrs[i], t.Get(primed[i]));
        }
        renamed.Set(op.attr, t.Get(op.attr));
        out.Append(std::move(renamed));
      }
      return out;
    }
    case OpKind::kGroupBinary: {
      Sequence e1 = Eval(ev, *op.child(0), env);
      Sequence e2 = Eval(ev, *op.child(1), env);
      return GroupBinaryRec(ev, op, SeqView(e1), SeqView(e2), env);
    }
    case OpKind::kSort:
    case OpKind::kXiSimple:
    case OpKind::kXiGroup:
      throw std::logic_error(
          "reference evaluator covers the Sec. 2 core operators only");
  }
  return Sequence();
}

}  // namespace nalq::nal::reference
