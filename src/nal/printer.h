// Pretty-printer for algebra plans, rendering the paper's notation in ASCII
// (sigma/pi/chi/upsilon/mu/gamma/join symbols spelled out). Used by the
// plan_explorer example and by test failure messages.
#ifndef NALQ_NAL_PRINTER_H_
#define NALQ_NAL_PRINTER_H_

#include <string>

#include "nal/algebra.h"

namespace nalq::nal {

/// One-line rendering of an operator (without children), e.g.
/// "Map[t1 := min(Pi_c2(Select[t1 = t2](..)))]".
std::string OpHeadline(const AlgebraOp& op);

/// Multi-line indented tree rendering of a whole plan.
std::string PrintPlan(const AlgebraOp& op);

}  // namespace nalq::nal

#endif  // NALQ_NAL_PRINTER_H_
