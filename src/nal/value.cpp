#include "nal/value.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <sstream>

#include "nal/sequence.h"
#include "xml/store.h"

namespace nalq::nal {

Value Value::FromItems(ItemSeq items) {
  return Value(std::make_shared<const ItemSeq>(std::move(items)));
}

Value Value::FromTuples(Sequence tuples) {
  return Value(std::make_shared<const Sequence>(std::move(tuples)));
}

size_t Value::SequenceLength() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kItemSeq:
      return AsItems().size();
    case ValueKind::kTupleSeq:
      return AsTuples().size();
    default:
      return 1;
  }
}

Value Value::Atomize(const xml::Store& store) const {
  if (kind() == ValueKind::kNode) {
    const xml::Document& doc = store.doc_of(AsNode());
    // Repeated atomizations of one node share the document's memoized
    // string — the hot path of key building and general comparisons.
    return Value(doc.SharedStringValue(AsNode().id));
  }
  if (kind() == ValueKind::kItemSeq) {
    // Atomize item-wise; a singleton sequence atomizes to its single item
    // (the common XPath-result case).
    const ItemSeq& items = AsItems();
    if (items.size() == 1) return items[0].Atomize(store);
    ItemSeq out;
    out.reserve(items.size());
    for (const Value& v : items) out.push_back(v.Atomize(store));
    return FromItems(std::move(out));
  }
  return *this;
}

std::string Value::ToString(const xml::Store& store) const {
  switch (kind()) {
    case ValueKind::kNull:
      return "";
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      double d = AsDouble();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        // Render integral doubles without trailing zeros, decimals with the
        // shortest round-trip representation.
        return std::to_string(static_cast<int64_t>(d));
      }
      std::ostringstream os;
      os << d;
      return os.str();
    }
    case ValueKind::kString:
      return AsString();
    case ValueKind::kNode: {
      const xml::Document& doc = store.doc_of(AsNode());
      return *doc.SharedStringValue(AsNode().id);
    }
    case ValueKind::kItemSeq: {
      std::string out;
      bool first = true;
      for (const Value& v : AsItems()) {
        if (!first) out += ' ';
        out += v.ToString(store);
        first = false;
      }
      return out;
    }
    case ValueKind::kTupleSeq:
      return "<tuple-sequence>";
  }
  return "";
}

std::optional<double> TryParseNumber(std::string_view s) {
  // Trim XML whitespace.
  size_t begin = s.find_first_not_of(" \t\n\r");
  if (begin == std::string_view::npos) return std::nullopt;
  size_t end = s.find_last_not_of(" \t\n\r");
  s = s.substr(begin, end - begin + 1);
  double out = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return out;
}

std::optional<double> Value::ToNumber(const xml::Store& store) const {
  switch (kind()) {
    case ValueKind::kInt:
      return static_cast<double>(AsInt());
    case ValueKind::kDouble:
      return AsDouble();
    case ValueKind::kBool:
      return AsBool() ? 1.0 : 0.0;
    case ValueKind::kString:
      return TryParseNumber(AsString());
    case ValueKind::kNode:
      return TryParseNumber(
          *store.doc_of(AsNode()).SharedStringValue(AsNode().id));
    case ValueKind::kItemSeq: {
      const ItemSeq& items = AsItems();
      if (items.size() == 1) return items[0].ToNumber(store);
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = kind() == ValueKind::kInt ? static_cast<double>(AsInt())
                                         : AsDouble();
    double b = other.kind() == ValueKind::kInt
                   ? static_cast<double>(other.AsInt())
                   : other.AsDouble();
    return a == b;
  }
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBool:
      return AsBool() == other.AsBool();
    case ValueKind::kInt:
      return AsInt() == other.AsInt();
    case ValueKind::kDouble:
      return AsDouble() == other.AsDouble();
    case ValueKind::kString: {
      // Atomized node values share one allocation per node (the document's
      // memoized string value), so identity settles most probe comparisons.
      const std::string* a = &AsString();
      const std::string* b = &other.AsString();
      return a == b || *a == *b;
    }
    case ValueKind::kNode:
      return AsNode() == other.AsNode();
    case ValueKind::kItemSeq: {
      const ItemSeq& a = AsItems();
      const ItemSeq& b = other.AsItems();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
    case ValueKind::kTupleSeq:
      return SequencesEqual(AsTuples(), other.AsTuples());
  }
  return false;
}

size_t Value::Hash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b9;
    case ValueKind::kBool:
      return AsBool() ? 2 : 1;
    case ValueKind::kInt: {
      // Hash ints as doubles so Equals-equal numerics hash alike.
      double d = static_cast<double>(AsInt());
      return std::hash<double>{}(d);
    }
    case ValueKind::kDouble:
      return std::hash<double>{}(AsDouble());
    case ValueKind::kString:
      return std::hash<std::string_view>{}(AsString());
    case ValueKind::kNode:
      return xml::NodeRefHash{}(AsNode());
    case ValueKind::kItemSeq: {
      size_t h = 0x517cc1b7;
      for (const Value& v : AsItems()) h = h * 31 + v.Hash();
      return h;
    }
    case ValueKind::kTupleSeq:
      return 0xdeadbeef ^ AsTuples().size();
  }
  return 0;
}

std::strong_ordering Value::Compare(const Value& a, const Value& b) {
  auto rank = [](const Value& v) -> int {
    switch (v.kind()) {
      case ValueKind::kNull:
        return 0;
      case ValueKind::kBool:
        return 1;
      case ValueKind::kInt:
      case ValueKind::kDouble:
        return 2;
      case ValueKind::kString:
        return 3;
      case ValueKind::kNode:
        return 4;
      case ValueKind::kItemSeq:
        return 5;
      case ValueKind::kTupleSeq:
        return 6;
    }
    return 7;
  };
  if (rank(a) != rank(b)) return rank(a) <=> rank(b);
  switch (a.kind()) {
    case ValueKind::kNull:
      return std::strong_ordering::equal;
    case ValueKind::kBool:
      return a.AsBool() <=> b.AsBool();
    case ValueKind::kInt:
    case ValueKind::kDouble: {
      double x = a.kind() == ValueKind::kInt ? static_cast<double>(a.AsInt())
                                             : a.AsDouble();
      double y = b.kind() == ValueKind::kInt ? static_cast<double>(b.AsInt())
                                             : b.AsDouble();
      if (x < y) return std::strong_ordering::less;
      if (x > y) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    case ValueKind::kString:
      return a.AsString() <=> b.AsString();
    case ValueKind::kNode:
      return a.AsNode() <=> b.AsNode();
    case ValueKind::kItemSeq: {
      const ItemSeq& x = a.AsItems();
      const ItemSeq& y = b.AsItems();
      size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        auto c = Compare(x[i], y[i]);
        if (c != std::strong_ordering::equal) return c;
      }
      return x.size() <=> y.size();
    }
    case ValueKind::kTupleSeq:
      return a.AsTuples().size() <=> b.AsTuples().size();
  }
  return std::strong_ordering::equal;
}

std::string Value::DebugString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueKind::kString:
      return "\"" + AsString() + "\"";
    case ValueKind::kNode:
      return "node(" + std::to_string(AsNode().doc) + ":" +
             std::to_string(AsNode().id) + ")";
    case ValueKind::kItemSeq: {
      std::string out = "(";
      bool first = true;
      for (const Value& v : AsItems()) {
        if (!first) out += ", ";
        out += v.DebugString();
        first = false;
      }
      return out + ")";
    }
    case ValueKind::kTupleSeq:
      return DebugStringOf(AsTuples());
  }
  return "?";
}

}  // namespace nalq::nal
