// Scalar / predicate expression trees.
//
// NAL allows algebraic expressions in operator subscripts ("a join within a
// selection predicate is possible", paper Sec. 2). Expressions therefore may
// contain whole algebra subtrees (kNestedAlg) and quantifiers over algebra
// subtrees (kQuant) — these are exactly what the unnesting equivalences
// eliminate.
#ifndef NALQ_NAL_EXPR_H_
#define NALQ_NAL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "nal/symbol.h"
#include "nal/value.h"
#include "xml/xpath.h"

namespace nalq::nal {

class AlgebraOp;
using AlgebraPtr = std::shared_ptr<AlgebraOp>;

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  kConst,      ///< literal value
  kAttrRef,    ///< attribute / variable reference
  kCmp,        ///< comparison with XQuery general-comparison semantics
  kAnd,
  kOr,
  kNot,
  kFnCall,     ///< built-in function call (doc, count, min, contains, ...)
  kPath,       ///< XPath evaluation: children[0] = context, `path` = steps
  kNestedAlg,  ///< nested algebraic expression producing a tuple sequence
  kBindTuples, ///< the paper's e[a]: item sequence -> tuple sequence
  kQuant,      ///< ∃x∈range p / ∀x∈range p with an algebraic range
  kAgg,        ///< f(e): aggregate spec applied to a tuple sequence
  kArith,      ///< numeric arithmetic (+ - * div mod)
  kCond,       ///< if (c) then e1 else e2
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };
std::string_view ArithOpName(ArithOp op);

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class QuantKind : uint8_t { kSome, kEvery };

CmpOp NegateCmp(CmpOp op);
std::string_view CmpOpName(CmpOp op);

/// Aggregate/accessor function `f` used by χ-subscripts (as kAgg), Γ and the
/// outer join default (paper: "function f assigns a meaningful value to
/// empty groups"). Composition f = agg ∘ σ_filter ∘ Π_project, matching the
/// shapes the paper uses (min ∘ Πc2, count ∘ σp, id, Πt2).
struct AggSpec {
  enum class Kind : uint8_t {
    kId,            ///< whole group as a nested tuple sequence
    kProjectItems,  ///< Π_a flattened to an item sequence (XQuery semantics)
    kCount,
    kMin,
    kMax,
    kSum,
    kAvg,
  };
  Kind kind = Kind::kId;
  Symbol project;   ///< attribute for kProjectItems / input of numeric aggs
  ExprPtr filter;   ///< optional σ applied to the group before aggregating

  bool has_filter() const { return filter != nullptr; }

  /// f may not depend on renamed/nested attributes it does not read — the
  /// paper's condition f(s) = f(Π_a2(s)) = f(Π_A2(s)) holds for every spec
  /// whose `project`/filter do not mention those attributes.
  bool DependsOn(Symbol a) const;

  AggSpec CloneSpec() const;
  std::string DebugString() const;
};

AggSpec AggId();
AggSpec AggProjectItems(Symbol a);
AggSpec AggCount();
AggSpec AggOf(AggSpec::Kind kind, Symbol input);

/// One expression node. A tagged struct (rather than a class hierarchy)
/// keeps deep-clone and structural comparison — which the rewriter leans on —
/// simple and in one place.
struct Expr {
  ExprKind kind = ExprKind::kConst;

  Value literal;                  // kConst
  Symbol attr;                    // kAttrRef; kBindTuples target attribute
  CmpOp cmp = CmpOp::kEq;         // kCmp
  std::string fn;                 // kFnCall
  xml::Path path;                 // kPath
  AlgebraPtr alg;                 // kNestedAlg, kQuant range
  QuantKind quant = QuantKind::kSome;  // kQuant
  Symbol quant_var;               // kQuant bound variable
  AggSpec agg;                    // kAgg: f applied to children[0]
  ArithOp arith = ArithOp::kAdd;  // kArith
  std::vector<ExprPtr> children;  // operands / arguments / quant predicate

  /// Deep copy (algebra subtrees cloned too).
  ExprPtr Clone() const;

  std::string DebugString() const;
};

// ---- constructors -----------------------------------------------------

ExprPtr MakeConst(Value v);
ExprPtr MakeAttrRef(Symbol a);
ExprPtr MakeCmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr e);
ExprPtr MakeFnCall(std::string fn, std::vector<ExprPtr> args);
ExprPtr MakePath(ExprPtr context, xml::Path path);
ExprPtr MakeNestedAlg(AlgebraPtr alg);
ExprPtr MakeBindTuples(ExprPtr items, Symbol attr);
ExprPtr MakeQuant(QuantKind kind, Symbol var, AlgebraPtr range, ExprPtr pred);
ExprPtr MakeAgg(AggSpec spec, ExprPtr input);
ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeCond(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);

/// Substitutes every reference to attribute `from` with a reference to `to`
/// (the paper's "p′ results from p by replacing x by x′"). Returns a new
/// tree; does not descend into nested algebra subtrees' *definitions* of
/// `from` (none exist in translated plans).
ExprPtr SubstituteAttr(const ExprPtr& e, Symbol from, Symbol to);

/// Collects attribute references in `e` that are not locally bound.
void CollectFreeAttrs(const Expr& e, std::vector<Symbol>* out);

}  // namespace nalq::nal

#endif  // NALQ_NAL_EXPR_H_
