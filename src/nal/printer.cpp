#include "nal/printer.h"

#include <sstream>

namespace nalq::nal {

namespace {

std::string JoinSymbols(const std::vector<Symbol>& symbols) {
  std::string out;
  bool first = true;
  for (Symbol s : symbols) {
    if (!first) out += ",";
    out += std::string(s.str());
    first = false;
  }
  return out;
}

std::string ProgramString(const XiProgram& program) {
  std::string out;
  bool first = true;
  for (const XiCommand& c : program) {
    if (!first) out += ";";
    if (c.is_literal) {
      std::string text = c.text;
      // Compact whitespace for readability.
      out += "\"" + text + "\"";
    } else {
      out += c.expr->DebugString();
    }
    first = false;
  }
  return out;
}

}  // namespace

std::string OpHeadline(const AlgebraOp& op) {
  std::ostringstream os;
  switch (op.kind) {
    case OpKind::kSingleton:
      os << "Singleton";
      break;
    case OpKind::kSelect:
      os << "Select[" << op.pred->DebugString() << "]";
      break;
    case OpKind::kProject: {
      switch (op.pmode) {
        case ProjectMode::kKeep:
          os << (op.renames.empty() ? "Project" : "ProjectRename");
          break;
        case ProjectMode::kDrop:
          os << "ProjectDrop";
          break;
        case ProjectMode::kDistinct:
          os << "ProjectDistinct";
          break;
      }
      os << "[" << JoinSymbols(op.attrs);
      for (const auto& [to, from] : op.renames) {
        os << " " << to.str() << ":=" << from.str();
      }
      os << "]";
      break;
    }
    case OpKind::kMap:
      os << "Map[" << op.attr.str() << " := " << op.expr->DebugString() << "]";
      break;
    case OpKind::kUnnestMap:
      os << "UnnestMap[" << op.attr.str() << " := " << op.expr->DebugString()
         << "]";
      break;
    case OpKind::kUnnest:
      os << (op.distinct ? "UnnestD[" : "Unnest[") << op.attr.str() << "]";
      break;
    case OpKind::kCross:
      os << "Cross";
      break;
    case OpKind::kJoin:
      os << "Join[" << op.pred->DebugString() << "]";
      break;
    case OpKind::kSemiJoin:
      os << "SemiJoin[" << op.pred->DebugString() << "]";
      break;
    case OpKind::kAntiJoin:
      os << "AntiJoin[" << op.pred->DebugString() << "]";
      break;
    case OpKind::kOuterJoin:
      os << "OuterJoin[" << op.pred->DebugString() << "; " << op.attr.str()
         << " := " << (op.expr != nullptr ? op.expr->DebugString() : "NULL")
         << "]";
      break;
    case OpKind::kGroupUnary:
      os << "GroupUnary[" << op.attr.str() << "; " << CmpOpName(op.theta)
         << JoinSymbols(op.left_attrs) << "; " << op.agg.DebugString() << "]";
      break;
    case OpKind::kGroupBinary:
      os << "GroupBinary[" << op.attr.str() << "; "
         << JoinSymbols(op.left_attrs) << CmpOpName(op.theta)
         << JoinSymbols(op.right_attrs) << "; " << op.agg.DebugString() << "]";
      break;
    case OpKind::kSort:
      os << "Sort[" << JoinSymbols(op.attrs) << "]";
      break;
    case OpKind::kXiSimple:
      os << "Xi[" << ProgramString(op.s1) << "]";
      break;
    case OpKind::kXiGroup:
      os << "XiGroup[" << ProgramString(op.s1) << " | "
         << JoinSymbols(op.attrs) << "; " << ProgramString(op.s2) << " | "
         << ProgramString(op.s3) << "]";
      break;
  }
  if (op.cse_id >= 0) os << " (cse#" << op.cse_id << ")";
  return os.str();
}

namespace {

void PrintRec(const AlgebraOp& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += OpHeadline(op);
  *out += '\n';
  for (const AlgebraPtr& c : op.children) {
    PrintRec(*c, depth + 1, out);
  }
  // Also show nested algebra inside subscripts — the whole point of the
  // unnesting story is where these live.
  auto print_nested = [&](const ExprPtr& e) {
    if (e == nullptr) return;
    std::vector<const Expr*> stack = {e.get()};
    while (!stack.empty()) {
      const Expr* cur = stack.back();
      stack.pop_back();
      if (cur->alg != nullptr) {
        out->append(static_cast<size_t>(depth + 1) * 2, ' ');
        *out += "(nested in subscript)\n";
        PrintRec(*cur->alg, depth + 2, out);
      }
      for (const ExprPtr& c : cur->children) stack.push_back(c.get());
    }
  };
  print_nested(op.pred);
  print_nested(op.expr);
}

}  // namespace

std::string PrintPlan(const AlgebraOp& op) {
  std::string out;
  PrintRec(op, 0, &out);
  return out;
}

}  // namespace nalq::nal
