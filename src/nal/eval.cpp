#include "nal/eval.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "engine/error.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace nalq::nal {

void FlattenToItems(const Value& v, ItemSeq* out) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return;
    case ValueKind::kItemSeq:
      for (const Value& item : v.AsItems()) FlattenToItems(item, out);
      return;
    case ValueKind::kTupleSeq:
      for (const Tuple& t : v.AsTuples()) {
        if (t.size() == 1) {
          FlattenToItems(t.slots()[0].second, out);
        } else {
          // Multi-attribute nested tuples do not flatten to items; keep the
          // tuple's values in attribute order.
          for (const auto& [a, value] : t.slots()) {
            FlattenToItems(value, out);
          }
        }
      }
      return;
    default:
      out->push_back(v);
  }
}

bool EffectiveBooleanValue(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kBool:
      return v.AsBool();
    case ValueKind::kInt:
      return v.AsInt() != 0;
    case ValueKind::kDouble:
      return v.AsDouble() != 0;
    case ValueKind::kString:
      return !v.AsString().empty();
    case ValueKind::kNode:
      return true;
    case ValueKind::kItemSeq:
      return !v.AsItems().empty();
    case ValueKind::kTupleSeq:
      return !v.AsTuples().empty();
  }
  return false;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value Evaluator::EvalExpr(const Expr& e, const Tuple& local,
                          const Tuple& env) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.literal;
    case ExprKind::kAttrRef:
      if (const Value* v = local.Find(e.attr)) return *v;
      return env.Get(e.attr);
    case ExprKind::kCmp: {
      Value lhs = EvalExpr(*e.children[0], local, env);
      Value rhs = EvalExpr(*e.children[1], local, env);
      return Value(GeneralCompare(e.cmp, lhs, rhs));
    }
    case ExprKind::kAnd:
      return Value(EvalPred(*e.children[0], local, env) &&
                   EvalPred(*e.children[1], local, env));
    case ExprKind::kOr:
      return Value(EvalPred(*e.children[0], local, env) ||
                   EvalPred(*e.children[1], local, env));
    case ExprKind::kNot:
      return Value(!EvalPred(*e.children[0], local, env));
    case ExprKind::kFnCall:
      return EvalFnCall(e, local, env);
    case ExprKind::kPath:
      return EvalPathExpr(e, local, env);
    case ExprKind::kNestedAlg: {
      ++stats_.nested_alg_evals;
      Tuple inner_env = env.Concat(local);
      Sequence s = EvalOp(*e.alg, inner_env);
      return Value::FromTuples(std::move(s));
    }
    case ExprKind::kBindTuples: {
      Value v = EvalExpr(*e.children[0], local, env);
      ItemSeq items;
      FlattenToItems(v, &items);
      return Value::FromTuples(TuplesFromItems(e.attr, items));
    }
    case ExprKind::kArith: {
      std::optional<double> lhs =
          EvalExpr(*e.children[0], local, env).ToNumber(store_);
      std::optional<double> rhs =
          EvalExpr(*e.children[1], local, env).ToNumber(store_);
      if (!lhs.has_value() || !rhs.has_value()) return Value::Null();
      switch (e.arith) {
        case ArithOp::kAdd:
          return Value(*lhs + *rhs);
        case ArithOp::kSub:
          return Value(*lhs - *rhs);
        case ArithOp::kMul:
          return Value(*lhs * *rhs);
        case ArithOp::kDiv:
          if (*rhs == 0) return Value::Null();
          return Value(*lhs / *rhs);
        case ArithOp::kMod:
          if (*rhs == 0) return Value::Null();
          return Value(std::fmod(*lhs, *rhs));
      }
      return Value::Null();
    }
    case ExprKind::kCond:
      return EvalPred(*e.children[0], local, env)
                 ? EvalExpr(*e.children[1], local, env)
                 : EvalExpr(*e.children[2], local, env);
    case ExprKind::kAgg: {
      Value v = EvalExpr(*e.children[0], local, env);
      if (v.kind() == ValueKind::kTupleSeq) {
        return ApplyAgg(e.agg, v.AsTuples(), env.Concat(local));
      }
      // Non-tuple input: wrap items as single-attribute tuples named by the
      // spec's project attribute.
      ItemSeq items;
      FlattenToItems(v, &items);
      return ApplyAgg(e.agg, TuplesFromItems(e.agg.project, items),
                      env.Concat(local));
    }
    case ExprKind::kQuant: {
      ++stats_.nested_alg_evals;
      Tuple inner_env = env.Concat(local);
      Sequence range = EvalOp(*e.alg, inner_env);
      const Expr& pred = *e.children[0];
      for (const Tuple& u : range) {
        Tuple binding = u;
        if (u.size() == 1 && !u.Has(e.quant_var)) {
          binding.Set(e.quant_var, u.slots()[0].second);
        }
        bool holds = EvalPred(pred, binding, inner_env);
        if (e.quant == QuantKind::kSome && holds) return Value(true);
        if (e.quant == QuantKind::kEvery && !holds) return Value(false);
      }
      return Value(e.quant == QuantKind::kEvery);
    }
  }
  return Value::Null();
}

bool Evaluator::EvalPred(const Expr& e, const Tuple& local, const Tuple& env) {
  ++stats_.predicate_evals;
  // Cancellation point: selections over wide inputs evaluate predicates far
  // more often than they produce tuples, so the bounded-interval guarantee
  // needs a check here too.
  CheckInterrupt();
  return EffectiveBooleanValue(EvalExpr(e, local, env));
}

bool Evaluator::AtomicCompare(CmpOp op, const Value& lhs, const Value& rhs) {
  Value a = lhs.Atomize(store_);
  Value b = rhs.Atomize(store_);
  // Numeric comparison when at least one side is genuinely numeric and the
  // other converts; otherwise fall back to string/typed comparison. Typed
  // values of the same kind compare directly.
  bool numeric = false;
  double x = 0;
  double y = 0;
  if (a.is_numeric() || b.is_numeric()) {
    std::optional<double> na = a.ToNumber(store_);
    std::optional<double> nb = b.ToNumber(store_);
    if (na.has_value() && nb.has_value()) {
      numeric = true;
      x = *na;
      y = *nb;
    }
  }
  if (numeric) {
    switch (op) {
      case CmpOp::kEq:
        return x == y;
      case CmpOp::kNe:
        return x != y;
      case CmpOp::kLt:
        return x < y;
      case CmpOp::kLe:
        return x <= y;
      case CmpOp::kGt:
        return x > y;
      case CmpOp::kGe:
        return x >= y;
    }
  }
  if (op == CmpOp::kEq) return a.Equals(b);
  if (op == CmpOp::kNe) return !a.Equals(b);
  // Ordered comparison: numeric if both convert, else lexicographic.
  std::optional<double> na = a.ToNumber(store_);
  std::optional<double> nb = b.ToNumber(store_);
  if (na.has_value() && nb.has_value()) {
    switch (op) {
      case CmpOp::kLt:
        return *na < *nb;
      case CmpOp::kLe:
        return *na <= *nb;
      case CmpOp::kGt:
        return *na > *nb;
      case CmpOp::kGe:
        return *na >= *nb;
      default:
        break;
    }
  }
  std::string sa = a.ToString(store_);
  std::string sb = b.ToString(store_);
  switch (op) {
    case CmpOp::kLt:
      return sa < sb;
    case CmpOp::kLe:
      return sa <= sb;
    case CmpOp::kGt:
      return sa > sb;
    case CmpOp::kGe:
      return sa >= sb;
    default:
      return false;
  }
}

bool Evaluator::GeneralCompare(CmpOp op, const Value& lhs, const Value& rhs) {
  // XQuery general comparison: existential over both operand sequences.
  ItemSeq left;
  ItemSeq right;
  FlattenToItems(lhs, &left);
  FlattenToItems(rhs, &right);
  for (const Value& a : left) {
    for (const Value& b : right) {
      if (AtomicCompare(op, a, b)) return true;
    }
  }
  return false;
}

namespace {

/// Aggregates a flat list of atomized values.
Value AggregateItems(AggSpec::Kind kind, const std::vector<Value>& items,
                     const xml::Store& store) {
  if (items.empty()) {
    return kind == AggSpec::Kind::kCount ? Value(static_cast<int64_t>(0))
                                         : Value::Null();
  }
  switch (kind) {
    case AggSpec::Kind::kCount:
      return Value(static_cast<int64_t>(items.size()));
    case AggSpec::Kind::kMin:
    case AggSpec::Kind::kMax: {
      bool all_numeric = true;
      for (const Value& v : items) {
        if (!v.ToNumber(store).has_value()) {
          all_numeric = false;
          break;
        }
      }
      if (all_numeric) {
        double best = *items[0].ToNumber(store);
        for (const Value& v : items) {
          double d = *v.ToNumber(store);
          if (kind == AggSpec::Kind::kMin ? d < best : d > best) best = d;
        }
        return Value(best);
      }
      std::string best = items[0].ToString(store);
      for (const Value& v : items) {
        std::string s = v.ToString(store);
        if (kind == AggSpec::Kind::kMin ? s < best : s > best) {
          best = std::move(s);
        }
      }
      return Value(best);
    }
    case AggSpec::Kind::kSum:
    case AggSpec::Kind::kAvg: {
      double sum = 0;
      size_t n = 0;
      for (const Value& v : items) {
        std::optional<double> d = v.ToNumber(store);
        if (d.has_value()) {
          sum += *d;
          ++n;
        }
      }
      if (n == 0) return Value::Null();
      return Value(kind == AggSpec::Kind::kSum ? sum
                                               : sum / static_cast<double>(n));
    }
    default:
      return Value::Null();
  }
}

}  // namespace

Value Evaluator::ApplyAgg(const AggSpec& agg, const Sequence& group,
                          const Tuple& env) {
  const Sequence* source = &group;
  Sequence filtered;
  if (agg.has_filter()) {
    for (const Tuple& t : group) {
      if (EvalPred(*agg.filter, t, env)) filtered.Append(t);
    }
    source = &filtered;
  }
  switch (agg.kind) {
    case AggSpec::Kind::kId:
      return Value::FromTuples(*source);
    case AggSpec::Kind::kCount:
      if (agg.project.empty()) {
        // count over the group itself (count(FLWR) counts returned tuples).
        return Value(static_cast<int64_t>(source->size()));
      }
      break;  // item-wise counting of a projected attribute, below
    case AggSpec::Kind::kProjectItems: {
      ItemSeq items;
      for (const Tuple& t : *source) {
        FlattenToItems(t.Get(agg.project), &items);
      }
      return Value::FromItems(std::move(items));
    }
    default:
      break;
  }
  std::vector<Value> items;
  for (const Tuple& t : *source) {
    ItemSeq flat;
    FlattenToItems(t.Get(agg.project), &flat);
    for (const Value& v : flat) items.push_back(v.Atomize(store_));
  }
  return AggregateItems(agg.kind, items, store_);
}

Value Evaluator::AggEmptyValue(const AggSpec& agg) {
  switch (agg.kind) {
    case AggSpec::Kind::kId:
      return Value::FromTuples(Sequence());
    case AggSpec::Kind::kProjectItems:
      return Value::FromItems(ItemSeq());
    case AggSpec::Kind::kCount:
      return Value(static_cast<int64_t>(0));
    default:
      return Value::Null();
  }
}

Value Evaluator::EvalFnCall(const Expr& e, const Tuple& local,
                            const Tuple& env) {
  auto arg = [&](size_t i) { return EvalExpr(*e.children[i], local, env); };
  const std::string& fn = e.fn;
  if (fn == "doc" || fn == "document") {
    std::string name = arg(0).ToString(store_);
    std::optional<xml::DocId> id = store_.Find(name);
    if (!id.has_value()) {
      throw std::runtime_error("document not found in store: " + name);
    }
    return Value(xml::NodeRef{*id, store_.document(*id).root()});
  }
  if (fn == "count") {
    ItemSeq items;
    FlattenToItems(arg(0), &items);
    return Value(static_cast<int64_t>(items.size()));
  }
  if (fn == "min" || fn == "max" || fn == "sum" || fn == "avg") {
    ItemSeq items;
    FlattenToItems(arg(0), &items);
    std::vector<Value> atomized;
    atomized.reserve(items.size());
    for (const Value& v : items) atomized.push_back(v.Atomize(store_));
    AggSpec::Kind kind = fn == "min"   ? AggSpec::Kind::kMin
                         : fn == "max" ? AggSpec::Kind::kMax
                         : fn == "sum" ? AggSpec::Kind::kSum
                                       : AggSpec::Kind::kAvg;
    return AggregateItems(kind, atomized, store_);
  }
  if (fn == "decimal" || fn == "number") {
    std::optional<double> d = arg(0).ToNumber(store_);
    return d.has_value() ? Value(*d) : Value::Null();
  }
  if (fn == "contains") {
    std::string s = arg(0).ToString(store_);
    std::string sub = arg(1).ToString(store_);
    return Value(s.find(sub) != std::string::npos);
  }
  if (fn == "starts-with") {
    std::string s = arg(0).ToString(store_);
    std::string prefix = arg(1).ToString(store_);
    return Value(s.rfind(prefix, 0) == 0);
  }
  if (fn == "empty") {
    ItemSeq items;
    FlattenToItems(arg(0), &items);
    return Value(items.empty());
  }
  if (fn == "exists") {
    ItemSeq items;
    FlattenToItems(arg(0), &items);
    return Value(!items.empty());
  }
  if (fn == "not") {
    return Value(!EffectiveBooleanValue(arg(0)));
  }
  if (fn == "true") return Value(true);
  if (fn == "false") return Value(false);
  if (fn == "string") return Value(arg(0).ToString(store_));
  if (fn == "string-length") {
    return Value(static_cast<int64_t>(arg(0).ToString(store_).size()));
  }
  if (fn == "distinct-values") {
    ItemSeq items;
    FlattenToItems(arg(0), &items);
    ItemSeq out;
    std::unordered_set<Value, ValueHash, ValueEq> seen;
    for (const Value& v : items) {
      Value atom = v.Atomize(store_);
      if (seen.insert(atom).second) out.push_back(std::move(atom));
    }
    return Value::FromItems(std::move(out));
  }
  if (fn == "concat") {
    std::string out;
    for (size_t i = 0; i < e.children.size(); ++i) out += arg(i).ToString(store_);
    return Value(out);
  }
  throw std::runtime_error("unknown function: " + fn);
}

Value Evaluator::EvalPathExpr(const Expr& e, const Tuple& local,
                              const Tuple& env) {
  Value base = EvalExpr(*e.children[0], local, env);
  std::vector<xml::NodeRef> contexts;
  if (base.kind() == ValueKind::kNode) {
    // Single-node context — the per-tuple hot path; skip the flatten.
    contexts.push_back(base.AsNode());
  } else {
    ItemSeq items;
    FlattenToItems(base, &items);
    for (const Value& v : items) {
      if (v.kind() == ValueKind::kNode) contexts.push_back(v.AsNode());
    }
  }
  // Count document scans: a descendant-axis step evaluated from a document
  // root visits (a superset of) the whole document.
  for (const xml::NodeRef& ref : contexts) {
    if (ref.id == 0) {
      for (const xml::Step& step : e.path.steps()) {
        if (step.axis == xml::Axis::kDescendant) {
          ++stats_.doc_scans;
          break;
        }
      }
    }
  }
  static thread_local std::vector<xml::NodeRef> result;
  if (contexts.size() == 1) {
    xml::EvalPathInto(store_, e.path, contexts[0], &stats_.xpath, &result,
                      path_mode_);
  } else {
    result = xml::EvalPath(store_, e.path,
                           std::span<const xml::NodeRef>(contexts),
                           &stats_.xpath, path_mode_);
  }
  ItemSeq out;
  out.reserve(result.size());
  for (const xml::NodeRef& ref : result) out.push_back(Value(ref));
  return Value::FromItems(std::move(out));
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

Sequence Evaluator::EvalOp(const AlgebraOp& op, const Tuple& env) {
  // Cancellation point: nested subscripts re-enter EvalOp once per outer
  // tuple, so a runaway nested-loop plan in the materializing evaluator
  // polls here even when its operators produce nothing.
  CheckInterrupt();
  if (op.cse_id >= 0 && env.empty()) {
    if (const Sequence* cached = CseFind(op.cse_id)) return *cached;
  }
  // Profile scope (obs/profile.h): a tracked plan node attributes its
  // emissions — and those of any untracked subscript algebra it evaluates —
  // to itself; untracked nested algebra inherits the enclosing scope. This
  // mirrors the streaming ProfileCursor's stack discipline, which is what
  // makes per-operator rows identical across executors. Wall time here is
  // inclusive of children, like the decorator's; one EvalOp counts as one
  // "open". The guard restores the scope even when an operator throws
  // (cancellation, deadline) so a caller that catches and continues never
  // sees a dangling scope.
  struct ProfileScope {
    obs::ProfileCollector* collector = nullptr;
    obs::OpMetrics* mine = nullptr;
    obs::OpMetrics* saved = nullptr;
    std::chrono::steady_clock::time_point begin;
    ~ProfileScope() {
      if (mine != nullptr) {
        mine->wall_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count());
        collector->set_current(saved);
      }
    }
  } scope;
  if (profile_ != nullptr) {
    scope.mine = profile_->Find(&op);
    if (scope.mine != nullptr) {
      scope.collector = profile_;
      scope.saved = profile_->current();
      profile_->set_current(scope.mine);
      ++scope.mine->open_calls;
      scope.begin = std::chrono::steady_clock::now();
    }
  }
  Sequence out;
  switch (op.kind) {
    case OpKind::kSingleton:
      out.Append(Tuple());
      break;
    case OpKind::kSelect:
      out = EvalSelect(op, env);
      break;
    case OpKind::kProject:
      out = EvalProject(op, env);
      break;
    case OpKind::kMap:
      out = EvalMap(op, env);
      break;
    case OpKind::kUnnestMap:
      out = EvalUnnestMap(op, env);
      break;
    case OpKind::kUnnest:
      out = EvalUnnest(op, env);
      break;
    case OpKind::kCross:
    case OpKind::kJoin:
      out = EvalCrossJoin(op, env);
      break;
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
      out = EvalSemiAntiJoin(op, env);
      break;
    case OpKind::kOuterJoin:
      out = EvalOuterJoin(op, env);
      break;
    case OpKind::kGroupUnary:
      out = EvalGroupUnary(op, env);
      break;
    case OpKind::kGroupBinary:
      out = EvalGroupBinary(op, env);
      break;
    case OpKind::kSort:
      out = EvalSort(op, env);
      break;
    case OpKind::kXiSimple:
      out = EvalXi(op, env);
      break;
    case OpKind::kXiGroup:
      out = EvalXiGroup(op, env);
      break;
  }
  CountProduced(out.size());
  if (op.cse_id >= 0 && env.empty()) {
    // Move into the cache, hand the caller a copy: one copy on the cold
    // path instead of two.
    return CseStore(op.cse_id, std::move(out));
  }
  return out;
}

Sequence Evaluator::EvalSelect(const AlgebraOp& op, const Tuple& env) {
  Sequence input = EvalOp(*op.child(0), env);
  Sequence out;
  for (Tuple& t : input) {
    if (EvalPred(*op.pred, t, env)) out.Append(std::move(t));
  }
  return out;
}

Sequence Evaluator::EvalProject(const AlgebraOp& op, const Tuple& env) {
  Sequence input = EvalOp(*op.child(0), env);
  Sequence out;
  std::unordered_set<Key, KeyHash> seen;
  for (Tuple& t : input) {
    Tuple t2 = std::move(t);
    for (const auto& [to, from] : op.renames) {
      t2 = std::move(t2).Rename(from, to);
    }
    switch (op.pmode) {
      case ProjectMode::kKeep:
        if (!op.attrs.empty()) t2 = t2.Project(op.attrs);
        out.Append(std::move(t2));
        break;
      case ProjectMode::kDrop:
        out.Append(std::move(t2).Drop(op.attrs));
        break;
      case ProjectMode::kDistinct: {
        if (!op.attrs.empty()) t2 = t2.Project(op.attrs);
        // ΠD has distinct-values semantics (paper Sec. 2): deterministic,
        // idempotent, values atomized; we emit first occurrences in input
        // order, which is deterministic.
        Tuple atomized;
        for (const auto& [a, v] : t2.slots()) {
          atomized.Set(a, v.Atomize(store_));
        }
        Key key;
        for (const auto& [a, v] : atomized.slots()) key.values.push_back(v);
        if (seen.insert(std::move(key)).second) {
          out.Append(std::move(atomized));
        }
        break;
      }
    }
  }
  return out;
}

Sequence Evaluator::EvalMap(const AlgebraOp& op, const Tuple& env) {
  Sequence input = EvalOp(*op.child(0), env);
  Sequence out;
  out.Reserve(input.size());
  for (Tuple& t : input) {
    Value v = EvalExpr(*op.expr, t, env);
    t.Set(op.attr, std::move(v));
    out.Append(std::move(t));
  }
  return out;
}

Sequence Evaluator::EvalUnnestMap(const AlgebraOp& op, const Tuple& env) {
  Sequence input = EvalOp(*op.child(0), env);
  Sequence out;
  for (Tuple& t : input) {
    Value v = EvalExpr(*op.expr, t, env);
    ItemSeq items;
    FlattenToItems(v, &items);
    if (items.empty() && op.outer) {
      t.Set(op.attr, Value::Null());
      out.Append(std::move(t));
      continue;
    }
    for (size_t i = 0; i < items.size(); ++i) {
      if (i + 1 == items.size()) {
        // Last expansion: the input tuple is ours to reuse.
        t.Set(op.attr, std::move(items[i]));
        out.Append(std::move(t));
      } else {
        Tuple extended = t;
        extended.Set(op.attr, items[i]);
        out.Append(std::move(extended));
      }
    }
  }
  return out;
}

Sequence Evaluator::EvalUnnest(const AlgebraOp& op, const Tuple& env) {
  Sequence input = EvalOp(*op.child(0), env);
  // ⊥-shape for the outer variant: the nested attributes, if statically
  // known.
  std::vector<Symbol> bot_attrs;
  {
    AttrInfo info = OutputAttrs(*op.child(0));
    auto it = info.nested.find(op.attr);
    if (it != info.nested.end()) {
      bot_attrs.assign(it->second.begin(), it->second.end());
    }
  }
  std::vector<Symbol> drop = {op.attr};
  Sequence out;
  for (Tuple& t : input) {
    Value v = t.Get(op.attr);
    Tuple base = std::move(t).Drop(drop);
    // Read the nested sequence in place (no copy) when it is already
    // tuple-shaped and needs no dedup.
    std::shared_ptr<const Sequence> held;
    Sequence owned;
    const Sequence* nested = nullptr;
    if (v.kind() == ValueKind::kTupleSeq) {
      held = v.SharedTuples();
      nested = held.get();
    } else {
      ItemSeq items;
      FlattenToItems(v, &items);
      owned = TuplesFromItems(op.attr, items);
      nested = &owned;
    }
    if (op.distinct) {
      // μD: value-based dedup of the nested sequence (paper: ΠD(g)).
      Sequence deduped;
      std::unordered_set<Key, KeyHash> seen;
      for (const Tuple& u : *nested) {
        Key key;
        for (const auto& [a, value] : u.slots()) {
          key.values.push_back(value.Atomize(store_));
        }
        if (seen.insert(std::move(key)).second) deduped.Append(u);
      }
      owned = std::move(deduped);
      nested = &owned;
    }
    if (nested->empty()) {
      if (op.outer) {
        // Paper μ: emit ⊥_{A(e.g)}.
        out.Append(base.Concat(Tuple::Nulls(bot_attrs)));
      }
      continue;
    }
    for (const Tuple& u : *nested) out.Append(base.Concat(u));
  }
  return out;
}

Sequence Evaluator::EvalCrossJoin(const AlgebraOp& op, const Tuple& env) {
  Sequence left = EvalOp(*op.child(0), env);
  Sequence right = EvalOp(*op.child(1), env);
  Sequence out;
  if (op.kind == OpKind::kJoin) {
    SymbolSet lattrs = OutputAttrs(*op.child(0)).attrs;
    SymbolSet rattrs = OutputAttrs(*op.child(1)).attrs;
    std::optional<EquiPredicate> equi =
        ExtractEquiPredicate(op.pred, lattrs, rattrs);
    if (equi.has_value()) {
      HashIndex index;
      index.Build(right, equi->right_attrs, store_);
      std::vector<Key> keys;
      std::vector<uint32_t> lookup;
      for (const Tuple& l : left) {
        index.LookupInto(l, equi->left_attrs, store_, &keys, &lookup);
        for (uint32_t pos : lookup) {
          Tuple combined = l.Concat(right[pos]);
          if (equi->residual == nullptr ||
              EvalPred(*equi->residual, combined, env)) {
            out.Append(std::move(combined));
          }
        }
      }
      return out;
    }
  }
  for (const Tuple& l : left) {
    for (const Tuple& r : right) {
      Tuple combined = l.Concat(r);
      if (op.kind == OpKind::kCross ||
          EvalPred(*op.pred, combined, env)) {
        out.Append(std::move(combined));
      }
    }
  }
  return out;
}

Sequence Evaluator::EvalSemiAntiJoin(const AlgebraOp& op, const Tuple& env) {
  Sequence left = EvalOp(*op.child(0), env);
  Sequence right = EvalOp(*op.child(1), env);
  bool anti = op.kind == OpKind::kAntiJoin;
  Sequence out;
  SymbolSet lattrs = OutputAttrs(*op.child(0)).attrs;
  SymbolSet rattrs = OutputAttrs(*op.child(1)).attrs;
  std::optional<EquiPredicate> equi =
      ExtractEquiPredicate(op.pred, lattrs, rattrs);
  if (equi.has_value()) {
    HashIndex index;
    index.Build(right, equi->right_attrs, store_);
    std::vector<Key> keys;
    std::vector<uint32_t> lookup;
    for (Tuple& l : left) {
      bool matched = false;
      index.LookupInto(l, equi->left_attrs, store_, &keys, &lookup);
      for (uint32_t pos : lookup) {
        if (equi->residual == nullptr ||
            EvalPred(*equi->residual, l.Concat(right[pos]), env)) {
          matched = true;
          break;
        }
      }
      if (matched != anti) out.Append(std::move(l));
    }
    return out;
  }
  for (Tuple& l : left) {
    bool matched = false;
    for (const Tuple& r : right) {
      if (EvalPred(*op.pred, l.Concat(r), env)) {
        matched = true;
        break;
      }
    }
    if (matched != anti) out.Append(std::move(l));
  }
  return out;
}

Sequence Evaluator::EvalOuterJoin(const AlgebraOp& op, const Tuple& env) {
  Sequence left = EvalOp(*op.child(0), env);
  Sequence right = EvalOp(*op.child(1), env);
  Sequence out;
  // ⊥ shape: A(e2) \ {g}.
  std::vector<Symbol> null_attrs;
  {
    AttrInfo info = OutputAttrs(*op.child(1));
    for (Symbol a : info.attrs) {
      if (a != op.attr) null_attrs.push_back(a);
    }
  }
  Value dflt = op.expr != nullptr ? EvalExpr(*op.expr, Tuple(), env)
                                  : Value::Null();
  auto emit_unmatched = [&](const Tuple& l) {
    Tuple t = l.Concat(Tuple::Nulls(null_attrs));
    t.Set(op.attr, dflt);
    out.Append(std::move(t));
  };
  SymbolSet lattrs = OutputAttrs(*op.child(0)).attrs;
  SymbolSet rattrs = OutputAttrs(*op.child(1)).attrs;
  std::optional<EquiPredicate> equi =
      ExtractEquiPredicate(op.pred, lattrs, rattrs);
  if (equi.has_value()) {
    HashIndex index;
    index.Build(right, equi->right_attrs, store_);
    std::vector<Key> keys;
    std::vector<uint32_t> lookup;
    for (const Tuple& l : left) {
      bool matched = false;
      index.LookupInto(l, equi->left_attrs, store_, &keys, &lookup);
      for (uint32_t pos : lookup) {
        Tuple combined = l.Concat(right[pos]);
        if (equi->residual == nullptr ||
            EvalPred(*equi->residual, combined, env)) {
          matched = true;
          out.Append(std::move(combined));
        }
      }
      if (!matched) emit_unmatched(l);
    }
    return out;
  }
  for (const Tuple& l : left) {
    bool matched = false;
    for (const Tuple& r : right) {
      Tuple combined = l.Concat(r);
      if (EvalPred(*op.pred, combined, env)) {
        matched = true;
        out.Append(std::move(combined));
      }
    }
    if (!matched) emit_unmatched(l);
  }
  return out;
}

Sequence Evaluator::EvalGroupUnary(const AlgebraOp& op, const Tuple& env) {
  Sequence input = EvalOp(*op.child(0), env);
  Sequence out;
  // Distinct keys in first-occurrence order (ΠD semantics: deterministic).
  std::vector<Key> order;
  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> buckets;
  std::vector<Key> keys;
  bool multi_key = false;
  for (uint32_t i = 0; i < input.size(); ++i) {
    MakeKeysInto(input[i], op.left_attrs, store_, &keys);
    if (keys.size() > 1) multi_key = true;
    for (Key& k : keys) {
      auto [it, inserted] = buckets.try_emplace(k);
      if (inserted) order.push_back(k);
      it->second.push_back(i);
    }
  }
  for (const Key& key : order) {
    Sequence group;
    if (op.theta == CmpOp::kEq) {
      // Unless a sequence-valued key put a tuple into several buckets, each
      // input tuple belongs to exactly one group: hand it over.
      for (uint32_t pos : buckets[key]) {
        if (multi_key) {
          group.Append(input[pos]);
        } else {
          group.Append(std::move(input[pos]));
        }
      }
    } else {
      // θ-grouping: group for key v = σ_{v θ A}(e).
      if (op.left_attrs.size() != 1) {
        throw engine::Error(engine::ErrorCode::kPlanError,
                            "theta-grouping requires a single attribute", 0,
                            {}, "GroupUnary");
      }
      for (const Tuple& u : input) {
        if (GeneralCompare(op.theta, key.values[0], u.Get(op.left_attrs[0]))) {
          group.Append(u);
        }
      }
    }
    Tuple result;
    for (size_t j = 0; j < op.left_attrs.size(); ++j) {
      result.Set(op.left_attrs[j], key.values[j]);
    }
    result.Set(op.attr, ApplyAgg(op.agg, std::move(group), env));
    out.Append(std::move(result));
  }
  return out;
}

Sequence Evaluator::EvalGroupBinary(const AlgebraOp& op, const Tuple& env) {
  Sequence left = EvalOp(*op.child(0), env);
  Sequence right = EvalOp(*op.child(1), env);
  Sequence out;
  out.Reserve(left.size());
  if (op.theta == CmpOp::kEq) {
    HashIndex index;
    index.Build(right, op.right_attrs, store_);
    std::vector<Key> keys;
    std::vector<uint32_t> lookup;
    for (Tuple& l : left) {
      Sequence group;
      index.LookupInto(l, op.left_attrs, store_, &keys, &lookup);
      for (uint32_t pos : lookup) {
        group.Append(right[pos]);
      }
      l.Set(op.attr, ApplyAgg(op.agg, std::move(group), env));
      out.Append(std::move(l));
    }
    return out;
  }
  if (op.left_attrs.size() != 1) {
    throw engine::Error(engine::ErrorCode::kPlanError,
                        "theta nest-join requires a single attribute", 0, {},
                        "GroupBinary");
  }
  for (Tuple& l : left) {
    Sequence group;
    for (const Tuple& r : right) {
      if (GeneralCompare(op.theta, l.Get(op.left_attrs[0]),
                         r.Get(op.right_attrs[0]))) {
        group.Append(r);
      }
    }
    l.Set(op.attr, ApplyAgg(op.agg, std::move(group), env));
    out.Append(std::move(l));
  }
  return out;
}

Sequence Evaluator::EvalSort(const AlgebraOp& op, const Tuple& env) {
  Sequence input = EvalOp(*op.child(0), env);
  std::vector<uint32_t> idx(input.size());
  for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::vector<std::vector<Value>> keys(input.size());
  for (uint32_t i = 0; i < input.size(); ++i) {
    for (Symbol a : op.attrs) {
      keys[i].push_back(input[i].Get(a).Atomize(store_));
    }
  }
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    for (size_t j = 0; j < op.attrs.size(); ++j) {
      auto c = Value::Compare(keys[a][j], keys[b][j]);
      if (c != std::strong_ordering::equal) {
        bool descending = j < op.sort_desc.size() && op.sort_desc[j] != 0;
        return descending ? c == std::strong_ordering::greater
                          : c == std::strong_ordering::less;
      }
    }
    return false;
  });
  Sequence out;
  out.Reserve(input.size());
  for (uint32_t i : idx) out.Append(std::move(input[i]));
  return out;
}

const std::string& Evaluator::RenderedNode(xml::NodeRef ref) const {
  auto [it, inserted] = render_cache_.try_emplace(ref);
  if (inserted) {
    const xml::Document& doc = store_.doc_of(ref);
    if (doc.kind(ref.id) == xml::NodeKind::kElement) {
      xml::SerializeTo(doc, ref.id, &it->second);
    } else {
      it->second = xml::EncodeEntities(*doc.SharedStringValue(ref.id));
    }
  }
  return it->second;
}

void Evaluator::RenderValue(const Value& v, std::string* out) const {
  switch (v.kind()) {
    case ValueKind::kNull:
      return;
    case ValueKind::kNode: {
      *out += RenderedNode(v.AsNode());
      return;
    }
    case ValueKind::kString:
      *out += xml::EncodeEntities(v.AsString());
      return;
    case ValueKind::kItemSeq: {
      bool prev_atomic = false;
      for (const Value& item : v.AsItems()) {
        bool atomic = item.kind() != ValueKind::kNode &&
                      !item.is_sequence() && !item.is_null();
        if (atomic && prev_atomic) *out += ' ';
        RenderValue(item, out);
        prev_atomic = atomic;
      }
      return;
    }
    case ValueKind::kTupleSeq: {
      for (const Tuple& t : v.AsTuples()) {
        for (const auto& [a, value] : t.slots()) RenderValue(value, out);
      }
      return;
    }
    default:
      *out += v.ToString(store_);
  }
}

void Evaluator::RunXiProgram(const XiProgram& program, const Tuple& t,
                             const Tuple& env) {
  for (const XiCommand& c : program) {
    if (c.is_literal) {
      output_ += c.text;
    } else {
      Value v = EvalExpr(*c.expr, t, env);
      RenderValue(v, &output_);
    }
  }
}

Sequence Evaluator::EvalXi(const AlgebraOp& op, const Tuple& env) {
  Sequence input = EvalOp(*op.child(0), env);
  for (const Tuple& t : input) RunXiProgram(op.s1, t, env);
  return input;
}

Sequence Evaluator::EvalXiGroup(const AlgebraOp& op, const Tuple& env) {
  // Defined as Ξ(s1;Ξs2;s3)(Γ_{g;=A;id}(e)) with an order-preserving
  // duplicate operation: evaluate directly with first-occurrence grouping.
  Sequence input = EvalOp(*op.child(0), env);
  std::vector<Key> order;
  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> buckets;
  std::vector<Key> keys;
  for (uint32_t i = 0; i < input.size(); ++i) {
    MakeKeysInto(input[i], op.attrs, store_, &keys);
    for (Key& k : keys) {
      auto [it, inserted] = buckets.try_emplace(k);
      if (inserted) order.push_back(k);
      it->second.push_back(i);
    }
  }
  Sequence out;
  for (const Key& key : order) {
    const std::vector<uint32_t>& members = buckets[key];
    Tuple rep;
    for (size_t j = 0; j < op.attrs.size(); ++j) {
      rep.Set(op.attrs[j], key.values[j]);
    }
    // The group attributes carry the atomized key (ΠD semantics); they win
    // over the inner tuple's original values in s1/s3.
    RunXiProgram(op.s1, input[members.front()].Concat(rep), env);
    for (uint32_t pos : members) RunXiProgram(op.s2, input[pos], env);
    RunXiProgram(op.s3, input[members.back()].Concat(rep), env);
    out.Append(std::move(rep));
  }
  return out;
}

}  // namespace nalq::nal
