// Deterministic fault injection for the spill/exchange layers.
//
// The grace-hash/external-sort machinery (nal/spool.h) and the scheduler
// are riddled with I/O and resource failure paths that no workload can
// exercise on purpose. This harness makes them deterministic: each
// instrumented call site asks the process-wide FaultInjector whether to
// fail before touching the OS, and tests program "fail the Nth call at
// site S with errno E" (transient, one-shot) or "fail every call at S"
// (persistent). The instrumented sites are:
//
//   kSpoolOpenWrite       SpoolFile: fopen("wb") of a fresh temp file
//   kSpoolWrite           SpoolFile::Append: the record fwrite
//   kSpoolClose           SpoolFile::FinishWrites: the fclose
//   kSpoolOpenRead        SpoolFile::Reader: fopen("rb") reopen
//   kSpoolRead            SpoolFile::Reader::Next: the record fread
//   kSchedulerWorkerStart Scheduler::EnsureThreads: pool growth
//   kStoreOpenWrite       storage::PageFileWriter: fopen of a store file
//   kStoreWrite           storage::PageFileWriter: a page fwrite
//   kStoreClose           storage::PageFileWriter: fclose / commit rename
//   kStoreOpenRead        storage::PageFileReader / ValidateFileHeader:
//                         fopen of a store file
//   kStoreRead            storage page decode (per page-in)
//
// When disarmed (the default, and always in production) the hook is one
// relaxed atomic load. Call counting only happens while armed, so "the Nth
// call" means the Nth call after arming — tests Reset() around each case.
//
// The NALQ_FAULT_SPEC environment variable arms the injector at first use
// ("site:nth[:errno[:every]]", e.g. "spool.write:3" or
// "spool.open_read:1:5:every"), so whole test binaries can be re-run with
// a standing fault without code changes (see .github/workflows/ci.yml).
//
// Scoping (concurrent-query tests): sites consult FaultInjector::Current(),
// which is the process-wide Global() unless a ScopedFaultInjector is alive
// on the calling thread. SpoolContext captures Current() at construction
// and every spool site consults the context's injector, and the exchange
// copies the parent context's injector onto its worker contexts — so a
// scope installed around one query's Engine::Run covers every thread of
// that run (consumer and workers) while concurrent queries on other threads
// keep consulting Global(). The query service's soak tests fault one
// query's spool sites this way and assert its neighbors finish
// byte-identical (tests/service_test.cpp).
#ifndef NALQ_NAL_FAULT_INJECTION_H_
#define NALQ_NAL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace nalq::nal {

enum class FaultSite : int {
  kSpoolOpenWrite = 0,
  kSpoolWrite,
  kSpoolClose,
  kSpoolOpenRead,
  kSpoolRead,
  kSchedulerWorkerStart,
  kStoreOpenWrite,
  kStoreWrite,
  kStoreClose,
  kStoreOpenRead,
  kStoreRead,
  kSiteCount,  // sentinel
};

inline constexpr int kFaultSiteCount = static_cast<int>(FaultSite::kSiteCount);

/// Stable site name ("spool.open_write", ...) — used in error contexts and
/// accepted by the NALQ_FAULT_SPEC parser.
const char* FaultSiteName(FaultSite site);

class FaultInjector {
 public:
  /// The process-wide injector. Armed from NALQ_FAULT_SPEC at first use.
  static FaultInjector& Global();

  /// The injector the instrumented sites consult: the calling thread's
  /// ScopedFaultInjector when one is alive, Global() otherwise.
  static FaultInjector& Current();

  /// A fresh, disarmed injector for scoped use (never armed from the
  /// environment — scoped faults are programmed explicitly by the test).
  FaultInjector() = default;

  // -- Test programming (thread-safe) ---------------------------------------

  /// Clears all rules and counters; disarms the fast path.
  void Reset();

  /// Fails the `nth` (1-based) call at `site` observed after this rule is
  /// set, with `err` as the errno. `every` false = transient (that one call
  /// only, later calls succeed — the retry-recovery case); true = that call
  /// and every later one (persistent — the disk-stays-full case).
  void FailNth(FaultSite site, uint64_t nth, int err, bool every = false);

  /// Persistent fault from the first call on.
  void FailAlways(FaultSite site, int err) { FailNth(site, 1, err, true); }

  /// Calls observed at `site` while armed (diagnostic: lets a test assert
  /// the site it programmed was actually reached).
  uint64_t CallCount(FaultSite site) const;
  /// Failures actually injected (all sites).
  uint64_t InjectedFailures() const;

  // -- The hook -------------------------------------------------------------

  /// Consulted by the instrumented sites: 0 = proceed, else the errno to
  /// fail with. Disarmed cost: one relaxed load.
  int MaybeFail(FaultSite site) {
    if (!armed_.load(std::memory_order_relaxed)) return 0;
    return MaybeFailSlow(site);
  }

 private:
  int MaybeFailSlow(FaultSite site);
  void ArmFromEnv();

  struct Rule {
    bool active = false;
    uint64_t nth = 0;  ///< 1-based trigger call number
    int err = 0;
    bool every = false;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  Rule rules_[kFaultSiteCount];
  uint64_t calls_[kFaultSiteCount] = {};
  uint64_t injected_ = 0;
};

/// RAII thread-scoped injector override: while alive, Current() on the
/// installing thread returns injector() instead of Global(). Scopes nest
/// (the previous override is restored on destruction); install and destroy
/// on the same thread. Because SpoolContext and the exchange propagate the
/// captured pointer (see the file comment), the scope must outlive every
/// run started under it.
class ScopedFaultInjector {
 public:
  ScopedFaultInjector();
  ~ScopedFaultInjector();
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
  FaultInjector* prev_;
};

}  // namespace nalq::nal

#endif  // NALQ_NAL_FAULT_INJECTION_H_
