#include "nal/symbol.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

namespace nalq::nal {

namespace {

/// Process-wide symbol table guarded by a mutex. Unlike a Document's
/// xml::StringInterner (single-writer by contract), this table IS interned
/// into concurrently — the query service compiles queries on many threads
/// — and str() hands the interned bytes out as a string_view that outlives
/// the lock. The strings therefore live in a deque: growth never relocates
/// existing elements, so a view returned by str() stays valid for the
/// process lifetime no matter how many symbols later compiles intern (a
/// vector<string> would move its strings on reallocation, rewriting
/// small-string bytes another thread is reading — a data race TSan catches
/// in the concurrent storage/service suites).
struct GlobalTable {
  std::mutex mu;
  std::deque<std::string> strings;
  std::unordered_map<std::string_view, uint32_t> ids;

  GlobalTable() {
    strings.emplace_back();  // id 0 is always the empty symbol
    ids.emplace(strings.back(), 0);
  }

  uint32_t Intern(std::string_view s) {
    auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(strings.size());
    strings.emplace_back(s);
    ids.emplace(strings.back(), id);  // key views the deque's stable copy
    return id;
  }
};

GlobalTable& Table() {
  static GlobalTable* table = new GlobalTable();
  return *table;
}

}  // namespace

Symbol::Symbol(std::string_view name) {
  if (name.empty()) {
    id_ = 0;
    return;
  }
  GlobalTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  id_ = table.Intern(name);
}

std::string_view Symbol::str() const {
  GlobalTable& table = Table();
  // The lock covers the deque indexing (concurrent growth mutates deque
  // bookkeeping); the returned view itself is stable — deque elements are
  // never relocated and interned strings are never mutated or freed.
  std::lock_guard<std::mutex> lock(table.mu);
  return table.strings[id_];
}

Symbol Symbol::Fresh(std::string_view base) {
  static std::atomic<uint64_t> counter{0};
  uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  std::string name = std::string(base) + "#" + std::to_string(n);
  return Symbol(name);
}

}  // namespace nalq::nal
