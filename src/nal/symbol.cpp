#include "nal/symbol.h"

#include <atomic>
#include <mutex>

#include "xml/arena.h"

namespace nalq::nal {

namespace {

/// Process-wide interner guarded by a mutex. Query compilation and the
/// benchmarks are single-threaded, so contention is not a concern; the lock
/// keeps multi-threaded test runners safe.
struct GlobalTable {
  std::mutex mu;
  xml::StringInterner interner;
};

GlobalTable& Table() {
  static GlobalTable* table = new GlobalTable();
  return *table;
}

}  // namespace

Symbol::Symbol(std::string_view name) {
  if (name.empty()) {
    id_ = 0;
    return;
  }
  GlobalTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  id_ = table.interner.Intern(name);
}

std::string_view Symbol::str() const {
  GlobalTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mu);
  return table.interner.Get(id_);
}

Symbol Symbol::Fresh(std::string_view base) {
  static std::atomic<uint64_t> counter{0};
  uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  std::string name = std::string(base) + "#" + std::to_string(n);
  return Symbol(name);
}

}  // namespace nalq::nal
