// The NAL evaluator.
//
// Implements every operator of Sec. 2 with order-preserving semantics.
// Nested algebraic expressions in subscripts are re-evaluated per input
// tuple — precisely the nested-loop strategy whose cost the unnesting
// equivalences eliminate — and the evaluator counts those re-evaluations and
// document scans so the benchmarks can report them.
#ifndef NALQ_NAL_EVAL_H_
#define NALQ_NAL_EVAL_H_

#include <string>
#include <unordered_map>

#include "nal/algebra.h"
#include "nal/physical.h"
#include "nal/query_control.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "xml/store.h"
#include "xml/xpath.h"

namespace nalq::nal {

/// Counters for the memory-bounded execution layer (nal/spool.h). Unlike
/// every other EvalStats field these are NOT part of the executors'
/// determinism contract: a budgeted run spills, an unlimited run does not,
/// and the differential suites compare "non-spill" stats only while
/// asserting on these separately (tests/spool_test.cpp).
struct SpillStats {
  uint64_t spilled_bytes = 0;  ///< bytes written to spool temp files
  uint64_t spill_runs = 0;     ///< sorted runs / partition files written
  uint64_t repartitions = 0;   ///< recursive grace re-partition steps
  uint64_t merge_passes = 0;   ///< extra external-sort merge passes (fan-in)

  /// Saturating merge (see xml::SaturatingAdd), used when the parallel
  /// executor folds per-worker spill counters into the main evaluator.
  SpillStats& operator+=(const SpillStats& other) {
    spilled_bytes = xml::SaturatingAdd(spilled_bytes, other.spilled_bytes);
    spill_runs = xml::SaturatingAdd(spill_runs, other.spill_runs);
    repartitions = xml::SaturatingAdd(repartitions, other.repartitions);
    merge_passes = xml::SaturatingAdd(merge_passes, other.merge_passes);
    return *this;
  }

  bool any() const {
    return spilled_bytes != 0 || spill_runs != 0 || repartitions != 0 ||
           merge_passes != 0;
  }
};

/// Counters accumulated during evaluation.
struct EvalStats {
  uint64_t nested_alg_evals = 0;  ///< nested algebra subscript evaluations
  uint64_t doc_scans = 0;         ///< descendant-axis walks from a doc root
  uint64_t tuples_produced = 0;   ///< tuples emitted by all operators
  uint64_t predicate_evals = 0;
  xml::XPathStats xpath;
  SpillStats spill;  ///< memory-bounded execution only; zero when unlimited

  void Reset() { *this = EvalStats(); }

  /// Merges a per-worker counter set (saturating — see xml::SaturatingAdd —
  /// so a merge can never wrap a counter back to a small value). Every
  /// counter is a pure sum of per-tuple events, which is what makes the
  /// parallel executor's merged stats identical to a serial run.
  EvalStats& operator+=(const EvalStats& other) {
    nested_alg_evals =
        xml::SaturatingAdd(nested_alg_evals, other.nested_alg_evals);
    doc_scans = xml::SaturatingAdd(doc_scans, other.doc_scans);
    tuples_produced =
        xml::SaturatingAdd(tuples_produced, other.tuples_produced);
    predicate_evals =
        xml::SaturatingAdd(predicate_evals, other.predicate_evals);
    xpath += other.xpath;
    spill += other.spill;
    return *this;
  }
};

/// Evaluates algebra trees against a document store. The evaluator owns the
/// Ξ output stream; a full query run is Eval() followed by output().
class Evaluator {
 public:
  explicit Evaluator(const xml::Store& store) : store_(store) {}
  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Evaluates `op` with no outer bindings. Clears the common-subexpression
  /// cache first (each top-level run re-reads the documents).
  Sequence Eval(const AlgebraOp& op) {
    xml::StoreReadLease lease(store_);  // single-writer contract (store.h)
    ClearCse();
    return EvalOp(op, Tuple());
  }

  /// Evaluates `op` with outer variable bindings `env` (used for nested
  /// algebraic expressions).
  Sequence EvalOp(const AlgebraOp& op, const Tuple& env);

  /// Evaluates a scalar expression. `local` is the current tuple (shadows
  /// `env`).
  Value EvalExpr(const Expr& e, const Tuple& local, const Tuple& env);

  /// Effective boolean value of an expression.
  bool EvalPred(const Expr& e, const Tuple& local, const Tuple& env);

  /// Applies an aggregate spec to a group (with outer bindings for its
  /// filter predicate).
  Value ApplyAgg(const AggSpec& agg, const Sequence& group, const Tuple& env);

  /// Move form: f = id without a filter adopts the group sequence instead of
  /// copying it (the hot path of Γ with grouping-based plans).
  Value ApplyAgg(const AggSpec& agg, Sequence&& group, const Tuple& env) {
    if (agg.kind == AggSpec::Kind::kId && !agg.has_filter()) {
      return Value::FromTuples(std::move(group));
    }
    return ApplyAgg(agg, group, env);
  }

  /// f(ε): the meaningful value f assigns to the empty group.
  Value AggEmptyValue(const AggSpec& agg);

  /// Renders a value onto the Ξ output stream the way result construction
  /// does: nodes serialize as subtrees, atomics as encoded text, sequences
  /// item-wise.
  void RenderValue(const Value& v, std::string* out) const;

  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  EvalStats& stats() { return stats_; }
  const xml::Store& store() const { return store_; }

  /// Opt-in per-operator profiling sink (obs/profile.h), or null = off —
  /// the only hot-path cost of "off" is the null check in CountProduced.
  /// Shared by pointer like the control token; must outlive the run. The
  /// exchange gives each worker evaluator its own clone and folds at Close.
  void set_profile(obs::ProfileCollector* profile) { profile_ = profile; }
  obs::ProfileCollector* profile() const { return profile_; }

  /// Lifecycle span sink (obs/trace.h), or null = off. Thread-safe, so the
  /// exchange shares the run's one log with every worker evaluator.
  void set_trace(obs::TraceLog* trace) { trace_ = trace; }
  obs::TraceLog* trace() const { return trace_; }

  /// THE count site: every tuple any operator of any executor emits funnels
  /// through here (probe::CountProducedTuple per streamed tuple, EvalOp per
  /// materialized batch), which is what lets profiling attribute rows to
  /// the operator in scope exactly — per-operator rows partition
  /// tuples_produced and match across executors by construction.
  void CountProduced(uint64_t n) {
    stats_.tuples_produced += n;
    if (profile_ != nullptr && profile_->current() != nullptr) {
      profile_->current()->rows += n;
    }
  }

  /// Cancellation/deadline token for the run (nal/query_control.h), or null
  /// for an uncontrolled run. Shared by pointer: Engine::Run wires one token
  /// into the main evaluator and the exchange clones it onto every worker
  /// evaluator, so a single RequestCancel stops all of them. The token must
  /// outlive the run.
  void set_control(QueryControl* control) { control_ = control; }
  QueryControl* control() const { return control_; }

  /// Cancellation point: throws engine::Error{kCancelled|kDeadlineExceeded}
  /// once the run's token trips; near-free otherwise. Called per operator
  /// evaluation, per predicate, and — via probe::CountProducedTuple — per
  /// produced tuple, which bounds the interval between checks on every
  /// executor (see src/nal/README.md, "Query lifecycle").
  void CheckInterrupt() {
    if (control_ != nullptr) control_->Poll();
  }

  /// How path expressions resolve their steps (xml/xpath.h). Shared by both
  /// executors — the streaming cursors evaluate their path nodes through
  /// this evaluator's EvalExpr, so one setting governs a whole run. Results
  /// are mode-independent; only the XPathStats counters differ.
  void set_path_mode(xml::PathEvalMode mode) { path_mode_ = mode; }
  xml::PathEvalMode path_mode() const { return path_mode_; }

  /// XQuery general comparison between two (possibly sequence) values.
  bool GeneralCompare(CmpOp op, const Value& lhs, const Value& rhs);

  /// Runs one Ξ command program for tuple `t` (appends to the output
  /// stream). Public so the streaming executor (cursor.h) shares the exact
  /// result-construction path.
  void RunXiProgram(const XiProgram& program, const Tuple& t,
                    const Tuple& env);

  // Common-subexpression cache access, shared with the streaming executor so
  // both execution paths (and nested subscript evaluations) see one cache.
  const Sequence* CseFind(int id) const {
    auto it = cse_cache_.find(id);
    return it == cse_cache_.end() ? nullptr : &it->second;
  }
  const Sequence& CseStore(int id, Sequence s) {
    return cse_cache_[id] = std::move(s);
  }
  void ClearCse() {
    cse_cache_.clear();
    cse_cache_.reserve(16);
  }

 private:
  Sequence EvalSelect(const AlgebraOp& op, const Tuple& env);
  Sequence EvalProject(const AlgebraOp& op, const Tuple& env);
  Sequence EvalMap(const AlgebraOp& op, const Tuple& env);
  Sequence EvalUnnestMap(const AlgebraOp& op, const Tuple& env);
  Sequence EvalUnnest(const AlgebraOp& op, const Tuple& env);
  Sequence EvalCrossJoin(const AlgebraOp& op, const Tuple& env);
  Sequence EvalSemiAntiJoin(const AlgebraOp& op, const Tuple& env);
  Sequence EvalOuterJoin(const AlgebraOp& op, const Tuple& env);
  Sequence EvalGroupUnary(const AlgebraOp& op, const Tuple& env);
  Sequence EvalGroupBinary(const AlgebraOp& op, const Tuple& env);
  Sequence EvalSort(const AlgebraOp& op, const Tuple& env);
  Sequence EvalXi(const AlgebraOp& op, const Tuple& env);
  Sequence EvalXiGroup(const AlgebraOp& op, const Tuple& env);

  Value EvalFnCall(const Expr& e, const Tuple& local, const Tuple& env);
  Value EvalPathExpr(const Expr& e, const Tuple& local, const Tuple& env);
  bool AtomicCompare(CmpOp op, const Value& lhs, const Value& rhs);

  /// Rendered form of a node on the Ξ stream (serialized subtree for
  /// elements, entity-encoded string value otherwise), memoized because
  /// grouping queries render the same subtree once per group it appears in.
  const std::string& RenderedNode(xml::NodeRef ref) const;

  const xml::Store& store_;
  EvalStats stats_;
  QueryControl* control_ = nullptr;
  obs::ProfileCollector* profile_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  xml::PathEvalMode path_mode_ = xml::PathEvalMode::kIndexed;
  std::string output_;
  std::unordered_map<int, Sequence> cse_cache_;
  mutable std::unordered_map<xml::NodeRef, std::string, xml::NodeRefHash>
      render_cache_;
};

/// Flattens a value to its item sequence (null → empty, atomic/node →
/// singleton, item-seq → items, tuple-seq → single-attribute values).
void FlattenToItems(const Value& v, ItemSeq* out);

/// Effective boolean value per the XQuery rules the paper assumes.
bool EffectiveBooleanValue(const Value& v);

}  // namespace nalq::nal

#endif  // NALQ_NAL_EVAL_H_
