#include "nal/fault_injection.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace nalq::nal {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSpoolOpenWrite:
      return "spool.open_write";
    case FaultSite::kSpoolWrite:
      return "spool.write";
    case FaultSite::kSpoolClose:
      return "spool.close";
    case FaultSite::kSpoolOpenRead:
      return "spool.open_read";
    case FaultSite::kSpoolRead:
      return "spool.read";
    case FaultSite::kSchedulerWorkerStart:
      return "scheduler.worker_start";
    case FaultSite::kStoreOpenWrite:
      return "store.open_write";
    case FaultSite::kStoreWrite:
      return "store.write";
    case FaultSite::kStoreClose:
      return "store.close";
    case FaultSite::kStoreOpenRead:
      return "store.open_read";
    case FaultSite::kStoreRead:
      return "store.read";
    case FaultSite::kSiteCount:
      break;
  }
  return "unknown";
}

namespace {

/// The calling thread's scoped override (ScopedFaultInjector), or null.
thread_local FaultInjector* tls_injector = nullptr;

}  // namespace

FaultInjector& FaultInjector::Global() {
  // Leaked intentionally, like Scheduler::Global(): instrumented sites may
  // run from pool threads that outlive static destruction.
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    fi->ArmFromEnv();
    return fi;
  }();
  return *injector;
}

FaultInjector& FaultInjector::Current() {
  return tls_injector != nullptr ? *tls_injector : Global();
}

ScopedFaultInjector::ScopedFaultInjector() : prev_(tls_injector) {
  tls_injector = &injector_;
}

ScopedFaultInjector::~ScopedFaultInjector() { tls_injector = prev_; }

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Rule& r : rules_) r = Rule{};
  for (uint64_t& c : calls_) c = 0;
  injected_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::FailNth(FaultSite site, uint64_t nth, int err, bool every) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule& r = rules_[static_cast<int>(site)];
  r.active = true;
  r.nth = nth == 0 ? 1 : nth;
  r.err = err == 0 ? EIO : err;
  r.every = every;
  calls_[static_cast<int>(site)] = 0;
  armed_.store(true, std::memory_order_relaxed);
}

uint64_t FaultInjector::CallCount(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return calls_[static_cast<int>(site)];
}

uint64_t FaultInjector::InjectedFailures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

int FaultInjector::MaybeFailSlow(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t call = ++calls_[static_cast<int>(site)];
  Rule& r = rules_[static_cast<int>(site)];
  if (!r.active) return 0;
  bool fire = r.every ? call >= r.nth : call == r.nth;
  if (!fire) return 0;
  ++injected_;
  return r.err;
}

void FaultInjector::ArmFromEnv() {
  // "site:nth[:errno[:every]]" — e.g. "spool.write:3:28" or
  // "spool.open_read:1:5:every". Malformed specs are ignored (the injector
  // stays disarmed) so a typo can never fail real runs.
  const char* spec = std::getenv("NALQ_FAULT_SPEC");
  if (spec == nullptr || *spec == '\0') return;
  std::string s(spec);
  size_t colon = s.find(':');
  if (colon == std::string::npos) return;
  std::string site_name = s.substr(0, colon);
  FaultSite site = FaultSite::kSiteCount;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    if (site_name == FaultSiteName(static_cast<FaultSite>(i))) {
      site = static_cast<FaultSite>(i);
      break;
    }
  }
  if (site == FaultSite::kSiteCount) return;
  std::string rest = s.substr(colon + 1);
  char* end = nullptr;
  unsigned long long nth = std::strtoull(rest.c_str(), &end, 10);
  if (end == rest.c_str() || nth == 0) return;
  int err = EIO;
  bool every = false;
  if (*end == ':') {
    char* end2 = nullptr;
    long e = std::strtol(end + 1, &end2, 10);
    if (end2 != end + 1 && e > 0) err = static_cast<int>(e);
    if (end2 != nullptr && std::strcmp(end2, ":every") == 0) every = true;
  }
  FailNth(site, nth, err, every);
}

}  // namespace nalq::nal
