// Definitional reference evaluator.
//
// Implements every operator by the *literal recursive equation* of paper
// Sec. 2 (α/τ head-tail recursion, × via the auxiliary ×̂, Υ as μ(χ_{g:e[a]}),
// unary Γ via ΠD and binary Γ, ...). It is asymptotically naive (quadratic
// copies) and exists purely as an executable specification: the production
// evaluator (eval.h) with its hash-based physical algorithms is
// property-tested against it on randomized inputs.
#ifndef NALQ_NAL_REFERENCE_H_
#define NALQ_NAL_REFERENCE_H_

#include "nal/eval.h"

namespace nalq::nal::reference {

/// Evaluates `op` by the textbook equations. Expression/aggregate semantics
/// are shared with the production evaluator (`eval` supplies EvalExpr /
/// ApplyAgg), so any divergence found by the comparison tests isolates a
/// physical-algorithm bug.
Sequence Eval(Evaluator& eval, const AlgebraOp& op, const Tuple& env);

inline Sequence Eval(Evaluator& eval, const AlgebraOp& op) {
  return Eval(eval, op, Tuple());
}

}  // namespace nalq::nal::reference

#endif  // NALQ_NAL_REFERENCE_H_
