// Streaming, Volcano-style pull executor for the NAL algebra.
//
// One cursor per operator with the classic Open/Next/Close protocol.
// Tuples flow one at a time from the leaves to the root; a full intermediate
// Sequence is materialized only at the true pipeline breakers:
//
//   * Sort            — needs its whole input before the first output tuple,
//   * hash build sides — the right operand of ⋈/⋉/▷/outer-join/binary-Γ,
//   * Γ group construction — unary Γ and the group-detecting Ξ bucket their
//                       whole input by key,
//   * CSE nodes       — a shared subtree is computed once and its result
//                       re-read, which requires the result to exist,
//   * Ξ over Ξ        — a Ξ cursor materializes its input iff the subtree
//                       below it contains another Ξ, so interleaving pulls
//                       can never reorder writes on the shared output stream.
//
// Everything else (σ, Π, χ, Υ, μ, the probe side of every join, Ξ) streams.
//
// Order preservation: probes run in left-input order and hash buckets keep
// positions in right-input order (physical.h), exactly like the materializing
// evaluator — so the streamed output is tuple-for-tuple identical to
// Evaluator::Eval, and the EvalStats counters (nested_alg_evals, doc_scans,
// tuples_produced, predicate_evals, xpath) count identically. The
// differential suite in tests/streaming_exec_test.cpp asserts both.
//
// Path nodes: the cursors that evaluate path expressions (χ/Υ via
// Evaluator::EvalExpr) inherit the evaluator's PathEvalMode, so one
// set_path_mode() call governs indexed-vs-scan path resolution for a whole
// streaming run exactly as it does for a materializing run — the executors
// stay stat-identical under either mode.
#ifndef NALQ_NAL_CURSOR_H_
#define NALQ_NAL_CURSOR_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "nal/algebra.h"
#include "nal/eval.h"

namespace nalq::nal {

class SpoolContext;  // memory-bounded execution (nal/spool.h)

/// Streaming-executor bookkeeping, independent of EvalStats (which must stay
/// byte-identical across executors). Tracks how much the pipeline buffers so
/// tests can assert that pipelineable plans never materialize an
/// intermediate.
struct StreamStats {
  uint64_t buffered_tuples = 0;   ///< currently live in breaker buffers
  uint64_t peak_buffered = 0;     ///< high-water mark of the above
  uint64_t materialized_nodes = 0;  ///< breaker nodes that actually buffered
  uint64_t exchange_chunks = 0;   ///< morsels dispatched by an exchange

  // Parallel-breaker bookkeeping (exchange.h): which breakers the run
  // managed to parallelize and at what width. Executor-private like the
  // rest of StreamStats — EvalStats stays byte-identical across executors.
  uint64_t shared_probe_breakers = 0;  ///< joins probed through a shared build
  uint64_t gamma_partitions = 0;  ///< Γ partitions aggregated by workers
  uint64_t exchange_dop = 0;      ///< widest exchange degree of parallelism

  void OnBuffer(uint64_t n) {
    buffered_tuples += n;
    if (buffered_tuples > peak_buffered) peak_buffered = buffered_tuples;
    ++materialized_nodes;
  }
  void OnRelease(uint64_t n) { buffered_tuples -= n; }
  /// Exchange in-flight accounting: a chunk is buffered between dispatch and
  /// consumption of its result packet, but the exchange is not a breaker
  /// node, so materialized_nodes stays untouched.
  void OnChunkDispatch(uint64_t n) {
    buffered_tuples += n;
    if (buffered_tuples > peak_buffered) peak_buffered = buffered_tuples;
    ++exchange_chunks;
  }
};

/// The Volcano iterator protocol. Cursors are single-use: Open once, Next
/// until false, Close. Each cursor owns its children.
class Cursor {
 public:
  virtual ~Cursor() = default;
  virtual void Open() = 0;
  /// Produces the next tuple into `*out`; false at end of stream.
  virtual bool Next(Tuple* out) = 0;
  virtual void Close() = 0;
};

using CursorPtr = std::unique_ptr<Cursor>;

/// Shared state of one streaming execution: the evaluator supplies
/// expression evaluation, statistics, the Ξ output stream and the CSE cache;
/// `env` is the (top-level, empty) outer binding every operator sees.
///
/// The plan/state split that makes operators per-worker clonable: a cursor
/// holds only a `const AlgebraOp&` into the shared plan plus its own mutable
/// iteration state, and every expression evaluation goes through `ev`. The
/// parallel exchange (exchange.h) instantiates one cursor chain — with its
/// own ExecContext and Evaluator — per worker over the one shared plan.
struct ExecContext {
  Evaluator* ev = nullptr;
  const Tuple* env = nullptr;
  StreamStats* stream = nullptr;  ///< optional

  /// Memory-bounded execution (nal/spool.h): when set and carrying a finite
  /// budget, the pipeline breakers buffer through the spool layer — grace
  /// partitioning for hash builds, external merge sort for Sort/Γ — instead
  /// of materializing fully in RAM. Null or unlimited preserves the plain
  /// in-memory breakers bit for bit.
  SpoolContext* spool = nullptr;

  /// Exchange injection point (exchange.h): when MakeCursor reaches the
  /// plan node `exchange_op`, it returns make_exchange(ctx) — the exchange
  /// cursor spanning that node's partitionable segment — instead of the
  /// serial operator cursor. One-shot; null in plain streaming execution.
  const AlgebraOp* exchange_op = nullptr;
  std::function<CursorPtr(ExecContext&)> make_exchange;
};

/// Builds the cursor tree for `op`. `ctx` must outlive the cursor.
CursorPtr MakeCursor(const AlgebraOp& op, ExecContext& ctx);

/// True if `op`'s cursor processes input tuples one at a time with no state
/// spanning tuples, no CSE caching and no Ξ output writes — anywhere,
/// including algebra nested in its subscript expressions. Exactly these
/// operators may be instantiated once per worker over a partition of their
/// input without changing output bytes or merged EvalStats (exchange.h):
/// σ, χ, Υ, μ/μD and Π in keep/drop/rename form.
bool IsPartitionableOp(const AlgebraOp& op);

/// Builds the operator cursor for the unary, partitionable `op` reading
/// from `input` instead of building `op.child(0)` — the per-worker clone
/// path of the exchange. Precondition: IsPartitionableOp(op).
CursorPtr MakeCursorOver(const AlgebraOp& op, ExecContext& ctx,
                         CursorPtr input);

// ---------------------------------------------------------------------------
// Shared-build parallel probe (exchange.h tentpole): the build side of a
// join-family breaker is materialized ONCE on the consumer thread and
// published read-only; each exchange worker then probes it through its own
// JoinProbeLoops over its partition of the probe stream. Safe because the
// probe loops keep no state across left tuples, the HashIndex/Sequence are
// immutable after Build, and the atomize/string-value memo paths they read
// are already thread-safe (the guarantees exchange.h lists).
// ---------------------------------------------------------------------------

/// The consumer-built, read-only right side of one probe-partitionable
/// breaker: the materialized build sequence, its hash index (when the
/// predicate has equality conjuncts), and the outer join's ⊥-padding
/// attributes and default value. Defined in cursor.cpp; shared_ptr keeps
/// the type opaque to exchange.cpp.
struct SharedJoinBuild;
using SharedJoinBuildPtr = std::shared_ptr<SharedJoinBuild>;

/// True if `op` is a join-family breaker (⋈/×/⋉/▷/outer-join/binary-Γ)
/// whose PROBE side may be partitioned across workers against a shared
/// build: the node is not CSE-shared, its subscripts neither write Ξ output
/// nor evaluate CSE-carrying algebra (workers evaluate them), and the build
/// subtree (child(1)) is Ξ-free — it runs once on the consumer, but out of
/// serial write order relative to nothing, so any Ξ inside would still be
/// consumer-serial; the restriction keeps the build's evaluation point
/// unobservable.
bool IsProbePartitionableOp(const AlgebraOp& op);

/// True if `op` is a unary Γ over '=' whose group construction may be
/// hash-partitioned across workers (exchange.h pre-aggregation): every
/// group lives entirely in one partition, so any aggregate works without a
/// partial-state merge. Same subscript restrictions as the probe case.
bool IsGammaPartitionableOp(const AlgebraOp& op);

/// Materializes `op`'s build side through `ctx` (consumer thread): the
/// exact work the serial cursor's Open would do, including the StreamStats
/// buffer charge and the outer join's default-value evaluation.
/// Precondition: IsProbePartitionableOp(op).
SharedJoinBuildPtr BuildSharedJoin(const AlgebraOp& op, ExecContext& ctx);

/// Releases the build's StreamStats buffer charge (idempotent; call from
/// the exchange's Close).
void ReleaseSharedJoin(SharedJoinBuild& build, ExecContext& ctx);

/// Builds the probe-side cursor of `op` for one worker: reads the worker's
/// partition from `input` and probes `build` read-only. Precondition:
/// `build` was built for this same `op` and outlives the cursor.
CursorPtr MakeProbeCursorOver(const AlgebraOp& op, ExecContext& ctx,
                              CursorPtr input, const SharedJoinBuild& build);

/// Pull-runs `op` to exhaustion, discarding root tuples (Ξ side effects
/// accumulate on the evaluator's output stream). Clears the CSE cache first,
/// mirroring Evaluator::Eval. Returns the number of root tuples.
///
/// `spool` opts the run into memory-bounded execution (nal/spool.h). When
/// null, the NALQ_MEMORY_BUDGET_BYTES environment variable — read once per
/// process — supplies a default budget, so existing differential suites can
/// be re-run with spilling active without code changes.
uint64_t DrainStreaming(Evaluator& ev, const AlgebraOp& op,
                        StreamStats* stream = nullptr,
                        SpoolContext* spool = nullptr);

/// Pull-runs `op` and collects the root output — the streaming counterpart
/// of Evaluator::Eval, used by the differential tests.
Sequence ExecuteStreaming(Evaluator& ev, const AlgebraOp& op,
                          StreamStats* stream = nullptr,
                          SpoolContext* spool = nullptr);

}  // namespace nalq::nal

#endif  // NALQ_NAL_CURSOR_H_
