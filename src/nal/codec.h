// Length-prefixed binary codec primitives shared by the spool layer
// (nal/spool.cpp — the Tuple/Value temp-file codec) and the persistent
// store's page codec (src/storage/). Extracted from spool.cpp when the
// storage layer extended the same framing to on-disk pages; both formats
// are built from exactly these pieces, so a framing bug can only exist in
// one place.
//
// Integers are encoded in the host's native byte order (both consumers are
// process- or machine-local: spool files never outlive the process, store
// directories never leave the machine that wrote them — the store manifest
// additionally records an endianness tag and fails closed on a mismatch).
#ifndef NALQ_NAL_CODEC_H_
#define NALQ_NAL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace nalq::nal::codec {

inline void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

/// Length-prefixed byte string (u32 frame).
inline void PutBytes(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader over an encoded buffer. Every accessor
/// returns false instead of reading past `end`, so a truncated or corrupt
/// buffer can never become out-of-bounds access — the callers turn a false
/// into their own structured error (spool: kSpoolIo; storage:
/// kStoreCorrupt).
struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;

  bool U8(uint8_t* v) {
    if (end - p < 1) return false;
    *v = *p++;
    return true;
  }
  bool U32(uint32_t* v) {
    if (end - p < 4) return false;
    std::memcpy(v, p, 4);
    p += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (end - p < 8) return false;
    std::memcpy(v, p, 8);
    p += 8;
    return true;
  }
  bool Bytes(size_t n, const uint8_t** out) {
    if (static_cast<size_t>(end - p) < n) return false;
    *out = p;
    p += n;
    return true;
  }
  /// u32-framed byte string; the returned view aliases the buffer.
  bool LengthPrefixed(std::string_view* out) {
    uint32_t n;
    const uint8_t* bytes;
    if (!U32(&n) || !Bytes(n, &bytes)) return false;
    *out = std::string_view(reinterpret_cast<const char*>(bytes), n);
    return true;
  }
  size_t remaining() const { return static_cast<size_t>(end - p); }
};

}  // namespace nalq::nal::codec

#endif  // NALQ_NAL_CODEC_H_
