// Centralized parsing for the NALQ_* environment knobs.
//
// Every runtime knob with an environment default — NALQ_MEMORY_BUDGET_BYTES,
// NALQ_DEADLINE_MS, the query-service knobs (NALQ_MAX_CONCURRENT,
// NALQ_QUEUE_DEPTH, NALQ_QUEUE_DEADLINE_MS) — funnels through one validated
// parser instead of a per-call-site strtoull. The contract:
//
//   * unset or empty       → the caller's fallback (the knob stays soft);
//   * a decimal integer    → its value;
//   * anything else        → engine::Error(kPlanError) carrying the variable
//                            name and the offending text. A typo'd knob used
//                            to silently become 0 ("unlimited budget", "no
//                            deadline") — the most dangerous possible
//                            misread; now the first query that resolves the
//                            knob fails loudly instead.
//
// NALQ_FAULT_SPEC keeps its own parser (fault_injection.cpp) and its own
// deliberate ignore-on-malformed policy: the injector is a test harness, and
// a typo there must never be able to fail production runs.
#ifndef NALQ_NAL_ENV_KNOBS_H_
#define NALQ_NAL_ENV_KNOBS_H_

#include <cstdint>
#include <string>

namespace nalq::nal {

/// Reads environment variable `name` as a non-negative decimal integer.
/// Returns `fallback` when unset/empty; throws engine::Error(kPlanError)
/// naming the variable and its malformed value otherwise. Reads the
/// environment on every call — callers that want once-per-process semantics
/// cache the result in a function-local static (the existing idiom).
uint64_t EnvKnobU64(const char* name, uint64_t fallback = 0);

/// Boolean knob, strictly "0" or "1" (NALQ_PROFILE and friends). Unset or
/// empty returns `fallback`; anything else — including "true", "yes", "2" —
/// throws engine::Error(kPlanError) naming the variable, for the same
/// reason as the numeric knobs: a typo'd knob silently meaning "off" is the
/// most dangerous possible misread.
bool EnvKnobBool(const char* name, bool fallback = false);

/// String knob (NALQ_TRACE_DIR). Unset or empty returns `fallback`; every
/// non-empty value is returned verbatim — semantic validation (is this a
/// usable directory?) is the consumer's job, which raises kPlanError naming
/// the variable when it fails (engine/engine.cpp).
std::string EnvKnobString(const char* name, std::string fallback = {});

}  // namespace nalq::nal

#endif  // NALQ_NAL_ENV_KNOBS_H_
