#include "nal/query_control.h"

#include <cstdlib>
#include <string>

#include "engine/error.h"

namespace nalq::nal {

void QueryControl::CheckDeadline() {
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  int64_t now = Clock::now().time_since_epoch().count();
  if (now < deadline) return;
  Trip(State::kDeadline);
  // Re-read: a concurrent RequestCancel may have won the latch.
  ThrowTripped(state_.load(std::memory_order_relaxed));
}

void QueryControl::ThrowTripped(State s) {
  if (s == State::kDeadline) {
    throw engine::Error(engine::ErrorCode::kDeadlineExceeded,
                        "query deadline exceeded", 0, {}, "QueryControl");
  }
  throw engine::Error(engine::ErrorCode::kCancelled, "query cancelled", 0, {},
                      "QueryControl");
}

uint64_t QueryControl::EnvDeadlineMs() {
  static const uint64_t cached = [] {
    const char* s = std::getenv("NALQ_DEADLINE_MS");
    if (s == nullptr || *s == '\0') return uint64_t{0};
    char* end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end == nullptr || *end != '\0') return uint64_t{0};
    return static_cast<uint64_t>(v);
  }();
  return cached;
}

}  // namespace nalq::nal
