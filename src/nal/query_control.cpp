#include "nal/query_control.h"

#include <string>

#include "engine/error.h"
#include "nal/env_knobs.h"

namespace nalq::nal {

void QueryControl::CheckDeadline() {
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  int64_t now = Clock::now().time_since_epoch().count();
  if (now < deadline) return;
  Trip(State::kDeadline);
  // Re-read: a concurrent RequestCancel may have won the latch.
  ThrowTripped(state_.load(std::memory_order_relaxed));
}

void QueryControl::ThrowTripped(State s) {
  if (s == State::kDeadline) {
    throw engine::Error(engine::ErrorCode::kDeadlineExceeded,
                        "query deadline exceeded", 0, {}, "QueryControl");
  }
  throw engine::Error(engine::ErrorCode::kCancelled, "query cancelled", 0, {},
                      "QueryControl");
}

uint64_t QueryControl::EnvDeadlineMs() {
  static const uint64_t cached = EnvKnobU64("NALQ_DEADLINE_MS", 0);
  return cached;
}

}  // namespace nalq::nal
