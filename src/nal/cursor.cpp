#include "nal/cursor.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/error.h"
#include "nal/analysis.h"
#include "nal/physical.h"
#include "nal/probe_loops.h"
#include "nal/spool.h"

namespace nalq::nal {

namespace {

/// Builds the operator cursor for `op`, ignoring its cse_id (the CSE wrapper
/// is applied by MakeCursor).
CursorPtr MakeOpCursor(const AlgebraOp& op, ExecContext& ctx);

/// Counts one emitted tuple for the operator that owns `ctx` — the streaming
/// equivalent of the materializing evaluator's per-node
/// `stats_.tuples_produced += out.size()`. One definition, shared with the
/// spill cursors (nal/probe_loops.h).
using probe::CountProducedTuple;

/// Fully drains `c` into a Sequence (used by pipeline breakers; charged to
/// StreamStats by the caller).
Sequence Materialize(Cursor& c) {
  Sequence out;
  Tuple t;
  c.Open();
  while (c.Next(&t)) out.Append(std::move(t));
  c.Close();
  return out;
}

// True if evaluating the subtree / expression can write to the Ξ output
// stream (used to decide whether a cursor must buffer an input to keep
// output writes in evaluator order). Walks expression subscripts too: a Ξ
// can hide inside a nested algebra expression.
bool ContainsXi(const AlgebraOp& op);

bool ContainsXiExpr(const Expr& e) {
  if (e.alg != nullptr && ContainsXi(*e.alg)) return true;
  if (e.agg.filter != nullptr && ContainsXiExpr(*e.agg.filter)) return true;
  for (const ExprPtr& child : e.children) {
    if (ContainsXiExpr(*child)) return true;
  }
  return false;
}

bool ContainsXiProgram(const XiProgram& program) {
  for (const XiCommand& c : program) {
    if (c.expr != nullptr && ContainsXiExpr(*c.expr)) return true;
  }
  return false;
}

// ContainsXi restricted to `op`'s own subscripts — the spine children are
// checked separately by the partition-point analysis. This is the single
// place that enumerates every subscript slot of an operator; the full
// subtree walks below build on it, so a future subscript field only needs
// to be added here.
bool SubscriptsContainXi(const AlgebraOp& op) {
  if (op.pred != nullptr && ContainsXiExpr(*op.pred)) return true;
  if (op.expr != nullptr && ContainsXiExpr(*op.expr)) return true;
  if (op.agg.filter != nullptr && ContainsXiExpr(*op.agg.filter)) return true;
  return ContainsXiProgram(op.s1) || ContainsXiProgram(op.s2) ||
         ContainsXiProgram(op.s3);
}

bool ContainsXi(const AlgebraOp& op) {
  if (op.kind == OpKind::kXiSimple || op.kind == OpKind::kXiGroup) return true;
  if (SubscriptsContainXi(op)) return true;
  for (const AlgebraPtr& child : op.children) {
    if (ContainsXi(*child)) return true;
  }
  return false;
}

// True if any operator in the subtree (or in algebra nested inside its
// subscript expressions) carries a CSE id. A per-worker evaluation of such
// a node would populate the worker's private CSE cache instead of the
// shared one — diverging both work and the merged stats from a serial run.
bool ContainsCse(const AlgebraOp& op);

bool ContainsCseExpr(const Expr& e) {
  if (e.alg != nullptr && ContainsCse(*e.alg)) return true;
  if (e.agg.filter != nullptr && ContainsCseExpr(*e.agg.filter)) return true;
  for (const ExprPtr& child : e.children) {
    if (ContainsCseExpr(*child)) return true;
  }
  return false;
}

bool ContainsCseProgram(const XiProgram& program) {
  for (const XiCommand& c : program) {
    if (c.expr != nullptr && ContainsCseExpr(*c.expr)) return true;
  }
  return false;
}

// Subscript-only form, mirroring SubscriptsContainXi.
bool SubscriptsContainCse(const AlgebraOp& op) {
  if (op.pred != nullptr && ContainsCseExpr(*op.pred)) return true;
  if (op.expr != nullptr && ContainsCseExpr(*op.expr)) return true;
  if (op.agg.filter != nullptr && ContainsCseExpr(*op.agg.filter)) return true;
  return ContainsCseProgram(op.s1) || ContainsCseProgram(op.s2) ||
         ContainsCseProgram(op.s3);
}

bool ContainsCse(const AlgebraOp& op) {
  if (op.cse_id >= 0) return true;
  if (SubscriptsContainCse(op)) return true;
  for (const AlgebraPtr& child : op.children) {
    if (ContainsCse(*child)) return true;
  }
  return false;
}

/// Pass-through cursor that fully materializes its input on Open and then
/// streams from the buffer. Not an operator: it re-emits already-counted
/// tuples, so Next does not touch tuples_produced. Used to pin evaluation
/// order where lazy pulls would reorder Ξ writes on the shared output
/// stream.
class BufferCursor final : public Cursor {
 public:
  BufferCursor(ExecContext& ctx, CursorPtr input)
      : ctx_(ctx), input_(std::move(input)) {}
  void Open() override {
    seq_ = Materialize(*input_);
    if (ctx_.stream != nullptr) ctx_.stream->OnBuffer(seq_.size());
    pos_ = 0;
  }
  bool Next(Tuple* out) override {
    if (pos_ >= seq_.size()) return false;
    *out = std::move(seq_[pos_++]);
    return true;
  }
  void Close() override {
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(seq_.size());
  }

 private:
  ExecContext& ctx_;
  CursorPtr input_;
  Sequence seq_;
  size_t pos_ = 0;
};

/// Left input of a binary operator. The materializing evaluator runs the
/// left child to completion before the right one; the streaming cursors
/// build the right (hash) side in Open and pull the left lazily afterwards.
/// That flip is observable only when BOTH subtrees write to the Ξ output
/// stream, in which case the left is buffered up front (its Open precedes
/// the right-side build) to restore the evaluator's write order. Under a
/// finite memory budget the buffer is spool-backed (nal/spool.h) so the
/// pinned stream can exceed RAM.
CursorPtr MakeLeftCursor(const AlgebraOp& op, ExecContext& ctx) {
  CursorPtr left = MakeCursor(*op.child(0), ctx);
  if (ContainsXi(*op.child(0)) && ContainsXi(*op.child(1))) {
    if (SpillEnabled(ctx)) {
      return MakeSpoolBufferCursor(ctx, std::move(left));
    }
    return std::make_unique<BufferCursor>(ctx, std::move(left));
  }
  return left;
}

/// True when `op`'s cursor should be the spill-aware variant from
/// nal/spool.h: the run carries a finite budget and the operator's own
/// subscripts are Ξ-free. A Ξ hidden in a subscript (never produced by the
/// translator, but expressible) pins the exact interleaving of subscript
/// evaluation with input pulls, which the spill cursors' deferred
/// evaluation would reorder — such nodes keep the plain in-memory breaker.
bool UseSpillCursor(const AlgebraOp& op, ExecContext& ctx) {
  return SpillEnabled(ctx) && !SubscriptsContainXi(op);
}

// ---------------------------------------------------------------------------
// Pipelining cursors
// ---------------------------------------------------------------------------

class SingletonCursor final : public Cursor {
 public:
  explicit SingletonCursor(ExecContext& ctx) : ctx_(ctx) {}
  void Open() override { done_ = false; }
  bool Next(Tuple* out) override {
    if (done_) return false;
    done_ = true;
    *out = Tuple();
    CountProducedTuple(ctx_);
    return true;
  }
  void Close() override {}

 private:
  ExecContext& ctx_;
  bool done_ = false;
};

class SelectCursor final : public Cursor {
 public:
  SelectCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)) {}
  void Open() override { input_->Open(); }
  bool Next(Tuple* out) override {
    Tuple t;
    while (input_->Next(&t)) {
      if (ctx_.ev->EvalPred(*op_.pred, t, *ctx_.env)) {
        *out = std::move(t);
        CountProducedTuple(ctx_);
        return true;
      }
    }
    return false;
  }
  void Close() override { input_->Close(); }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
};

class ProjectCursor final : public Cursor {
 public:
  ProjectCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)) {}
  void Open() override {
    input_->Open();
    seen_.clear();
  }
  bool Next(Tuple* out) override {
    Tuple t;
    while (input_->Next(&t)) {
      for (const auto& [to, from] : op_.renames) {
        t = std::move(t).Rename(from, to);
      }
      switch (op_.pmode) {
        case ProjectMode::kKeep:
          if (!op_.attrs.empty()) t = t.Project(op_.attrs);
          break;
        case ProjectMode::kDrop:
          t = std::move(t).Drop(op_.attrs);
          break;
        case ProjectMode::kDistinct: {
          if (!op_.attrs.empty()) t = t.Project(op_.attrs);
          Tuple atomized;
          for (const auto& [a, v] : t.slots()) {
            atomized.Set(a, v.Atomize(ctx_.ev->store()));
          }
          Key key;
          for (const auto& [a, v] : atomized.slots()) key.values.push_back(v);
          if (!seen_.insert(std::move(key)).second) continue;
          t = std::move(atomized);
          break;
        }
      }
      *out = std::move(t);
      CountProducedTuple(ctx_);
      return true;
    }
    return false;
  }
  void Close() override { input_->Close(); }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  std::unordered_set<Key, KeyHash> seen_;
};

class MapCursor final : public Cursor {
 public:
  MapCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)) {}
  void Open() override { input_->Open(); }
  bool Next(Tuple* out) override {
    Tuple t;
    if (!input_->Next(&t)) return false;
    Value v = ctx_.ev->EvalExpr(*op_.expr, t, *ctx_.env);
    t.Set(op_.attr, std::move(v));
    *out = std::move(t);
    CountProducedTuple(ctx_);
    return true;
  }
  void Close() override { input_->Close(); }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
};

class UnnestMapCursor final : public Cursor {
 public:
  UnnestMapCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)) {}
  void Open() override {
    input_->Open();
    items_.clear();
    pos_ = 0;
  }
  bool Next(Tuple* out) override {
    while (true) {
      if (pos_ < items_.size()) {
        if (pos_ + 1 == items_.size()) {
          // Last expansion of this input tuple: hand over our copy.
          current_.Set(op_.attr, std::move(items_[pos_]));
          *out = std::move(current_);
        } else {
          Tuple extended = current_;
          extended.Set(op_.attr, items_[pos_]);
          *out = std::move(extended);
        }
        ++pos_;
        CountProducedTuple(ctx_);
        return true;
      }
      if (!input_->Next(&current_)) return false;
      Value v = ctx_.ev->EvalExpr(*op_.expr, current_, *ctx_.env);
      items_.clear();
      pos_ = 0;
      FlattenToItems(v, &items_);
      if (items_.empty()) {
        if (!op_.outer) continue;
        current_.Set(op_.attr, Value::Null());
        *out = std::move(current_);
        CountProducedTuple(ctx_);
        return true;
      }
    }
  }
  void Close() override { input_->Close(); }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  Tuple current_;
  ItemSeq items_;
  size_t pos_ = 0;
};

class UnnestCursor final : public Cursor {
 public:
  UnnestCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)), drop_{op.attr} {
    AttrInfo info = OutputAttrs(*op_.child(0));
    auto it = info.nested.find(op_.attr);
    if (it != info.nested.end()) {
      bot_attrs_.assign(it->second.begin(), it->second.end());
    }
  }
  void Open() override {
    input_->Open();
    nested_ = nullptr;
    pos_ = 0;
  }
  bool Next(Tuple* out) override {
    while (true) {
      if (nested_ != nullptr && pos_ < nested_->size()) {
        *out = base_.Concat((*nested_)[pos_]);
        ++pos_;
        CountProducedTuple(ctx_);
        return true;
      }
      nested_ = nullptr;
      Tuple t;
      if (!input_->Next(&t)) return false;
      Value v = t.Get(op_.attr);
      base_ = std::move(t).Drop(drop_);
      if (v.kind() == ValueKind::kTupleSeq) {
        // Keep the nested sequence alive without copying it.
        held_ = v.SharedTuples();
        nested_ = held_.get();
      } else {
        ItemSeq items;
        FlattenToItems(v, &items);
        owned_ = TuplesFromItems(op_.attr, items);
        nested_ = &owned_;
      }
      if (op_.distinct) {
        // μD: value-based dedup of the nested sequence (paper: ΠD(g)).
        Sequence deduped;
        std::unordered_set<Key, KeyHash> seen;
        for (const Tuple& u : *nested_) {
          Key key;
          for (const auto& [a, value] : u.slots()) {
            key.values.push_back(value.Atomize(ctx_.ev->store()));
          }
          if (seen.insert(std::move(key)).second) deduped.Append(u);
        }
        owned_ = std::move(deduped);
        nested_ = &owned_;
        held_.reset();
      }
      pos_ = 0;
      if (nested_->empty()) {
        nested_ = nullptr;
        if (op_.outer) {
          // Paper μ: emit ⊥_{A(e.g)}.
          *out = base_.Concat(Tuple::Nulls(bot_attrs_));
          CountProducedTuple(ctx_);
          return true;
        }
      }
    }
  }
  void Close() override {
    input_->Close();
    nested_ = nullptr;
    held_.reset();
  }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  const std::vector<Symbol> drop_;
  std::vector<Symbol> bot_attrs_;
  Tuple base_;
  std::shared_ptr<const Sequence> held_;
  Sequence owned_;
  const Sequence* nested_ = nullptr;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Join cursors (right side materialized = hash build side; left side streams)
//
// The probe loops themselves live in nal/probe_loops.h, shared with the
// spill-aware cursors' fits-in-memory mode (spool.cpp) — one implementation
// instead of the former verbatim mirror, so budgeted-but-fitting runs match
// the unlimited executor by construction (tests/spool_test.cpp still
// asserts the identity differentially).
// ---------------------------------------------------------------------------

/// Shared helper: materializes the right operand and, when the predicate has
/// equality conjuncts, builds the hash index over it.
class JoinRightSide {
 public:
  void Build(const AlgebraOp& op, ExecContext& ctx, Cursor& right_cursor,
             bool try_equi) {
    right_ = Materialize(right_cursor);
    if (ctx.stream != nullptr) ctx.stream->OnBuffer(right_.size());
    if (try_equi) {
      SymbolSet lattrs = OutputAttrs(*op.child(0)).attrs;
      SymbolSet rattrs = OutputAttrs(*op.child(1)).attrs;
      equi_ = ExtractEquiPredicate(op.pred, lattrs, rattrs);
      if (equi_.has_value()) {
        index_.Build(right_, equi_->right_attrs, ctx.ev->store());
      }
    }
  }
  void Release(ExecContext& ctx) {
    if (released_) return;
    released_ = true;
    if (ctx.stream != nullptr) ctx.stream->OnRelease(right_.size());
  }

  const Sequence& right() const { return right_; }
  bool has_equi() const { return equi_.has_value(); }
  const EquiPredicate& equi() const { return *equi_; }
  const HashIndex& index() const { return index_; }

 private:
  Sequence right_;
  std::optional<EquiPredicate> equi_;
  HashIndex index_;
  bool released_ = false;
};

/// Common shape of the ⋈/×/⋉/▷/outer cursors: materialized right side
/// (JoinRightSide) plus the shared probe loops. The derived classes only
/// differ in Open extras and which loop Next forwards to.
class HashJoinCursorBase : public Cursor {
 public:
  HashJoinCursorBase(const AlgebraOp& op, ExecContext& ctx, CursorPtr left,
                     CursorPtr right)
      : op_(op), ctx_(ctx), left_(std::move(left)), right_(std::move(right)) {}
  void Close() override {
    left_->Close();
    rhs_.Release(ctx_);
  }

  // probe::JoinProbeLoops access policy (nal/probe_loops.h).
  ExecContext& ctx() { return ctx_; }
  const AlgebraOp& op() const { return op_; }
  bool LeftNext(Tuple* out) { return left_->Next(out); }
  bool use_index() const { return rhs_.has_equi(); }
  const HashIndex& hash_index() const { return rhs_.index(); }
  const Expr* residual() const { return rhs_.equi().residual.get(); }
  std::span<const Symbol> probe_attrs() const {
    return rhs_.equi().left_attrs;
  }
  const Tuple& right_at(uint32_t pos) const { return rhs_.right()[pos]; }
  void ScanRestart() { scan_pos_ = 0; }
  bool ScanNext(const Tuple** r) {
    if (scan_pos_ >= rhs_.right().size()) return false;
    *r = &rhs_.right()[scan_pos_++];
    return true;
  }
  const std::vector<Symbol>& outer_null_attrs() const { return null_attrs_; }
  const Value& outer_default() const { return dflt_; }

 protected:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr left_;
  CursorPtr right_;
  JoinRightSide rhs_;
  std::vector<Symbol> null_attrs_;  // outer join
  Value dflt_;                      // outer join
  probe::JoinProbeLoops<HashJoinCursorBase> loops_;
  size_t scan_pos_ = 0;
};

class CrossJoinCursor final : public HashJoinCursorBase {
 public:
  using HashJoinCursorBase::HashJoinCursorBase;
  void Open() override {
    left_->Open();
    rhs_.Build(op_, ctx_, *right_, /*try_equi=*/op_.kind == OpKind::kJoin);
    loops_.Reset();
  }
  bool Next(Tuple* out) override { return loops_.NextCrossJoin(*this, out); }
};

class SemiAntiJoinCursor final : public HashJoinCursorBase {
 public:
  using HashJoinCursorBase::HashJoinCursorBase;
  void Open() override {
    left_->Open();
    rhs_.Build(op_, ctx_, *right_, /*try_equi=*/true);
    loops_.Reset();
  }
  bool Next(Tuple* out) override { return loops_.NextSemiAnti(*this, out); }
};

class OuterJoinCursor final : public HashJoinCursorBase {
 public:
  OuterJoinCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr left,
                  CursorPtr right)
      : HashJoinCursorBase(op, ctx, std::move(left), std::move(right)) {
    AttrInfo info = OutputAttrs(*op_.child(1));
    for (Symbol a : info.attrs) {
      if (a != op_.attr) null_attrs_.push_back(a);
    }
  }
  void Open() override {
    left_->Open();
    rhs_.Build(op_, ctx_, *right_, /*try_equi=*/true);
    dflt_ = op_.expr != nullptr
                ? ctx_.ev->EvalExpr(*op_.expr, Tuple(), *ctx_.env)
                : Value::Null();
    loops_.Reset();
  }
  bool Next(Tuple* out) override { return loops_.NextOuter(*this, out); }
};

class GroupBinaryCursor final : public Cursor {
 public:
  GroupBinaryCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr left,
                    CursorPtr right)
      : op_(op), ctx_(ctx), left_(std::move(left)), right_(std::move(right)) {}
  void Open() override {
    left_->Open();
    right_seq_ = Materialize(*right_);
    if (ctx_.stream != nullptr) ctx_.stream->OnBuffer(right_seq_.size());
    if (op_.theta == CmpOp::kEq) {
      index_.Build(right_seq_, op_.right_attrs, ctx_.ev->store());
    } else if (op_.left_attrs.size() != 1) {
      throw engine::Error(engine::ErrorCode::kPlanError,
                          "theta nest-join requires a single attribute", 0, {},
                          "GroupBinary");
    }
    loops_.Reset();
  }
  bool Next(Tuple* out) override {
    return loops_.NextGroupBinary(*this, out);
  }
  void Close() override {
    left_->Close();
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(right_seq_.size());
  }

  // probe::JoinProbeLoops access policy (nal/probe_loops.h).
  ExecContext& ctx() { return ctx_; }
  const AlgebraOp& op() const { return op_; }
  bool LeftNext(Tuple* out) { return left_->Next(out); }
  bool use_index() const { return op_.theta == CmpOp::kEq; }
  const HashIndex& hash_index() const { return index_; }
  const Expr* residual() const { return nullptr; }
  std::span<const Symbol> probe_attrs() const { return op_.left_attrs; }
  const Tuple& right_at(uint32_t pos) const { return right_seq_[pos]; }
  void ScanRestart() { scan_pos_ = 0; }
  bool ScanNext(const Tuple** r) {
    if (scan_pos_ >= right_seq_.size()) return false;
    *r = &right_seq_[scan_pos_++];
    return true;
  }
  const std::vector<Symbol>& outer_null_attrs() const { return op_.attrs; }
  const Value& outer_default() const { return dflt_; }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr left_;
  CursorPtr right_;
  Sequence right_seq_;
  HashIndex index_;
  Value dflt_;  // unused (outer-join hook of the access policy)
  probe::JoinProbeLoops<GroupBinaryCursor> loops_;
  size_t scan_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Full pipeline breakers
// ---------------------------------------------------------------------------

class GroupUnaryCursor final : public Cursor {
 public:
  GroupUnaryCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)) {}
  void Open() override {
    input_seq_ = Materialize(*input_);
    if (ctx_.stream != nullptr) ctx_.stream->OnBuffer(input_seq_.size());
    // Distinct keys in first-occurrence order (ΠD semantics: deterministic);
    // bucketing and group emission shared with the spill cursor
    // (nal/probe_loops.h).
    gamma_.Build(input_seq_, op_.left_attrs, ctx_.ev->store());
  }
  bool Next(Tuple* out) override {
    if (op_.theta == CmpOp::kEq) {
      return probe::NextEqGammaGroup(gamma_, input_seq_, op_, ctx_, out);
    }
    // θ-grouping: group for key v = σ_{v θ A}(e), rescanning the input.
    return probe::NextThetaGammaGroup(
        gamma_.order, &gamma_.next_key, op_, ctx_,
        [&](auto&& fn) {
          for (const Tuple& u : input_seq_) fn(u);
        },
        out);
  }
  void Close() override {
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(input_seq_.size());
  }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  Sequence input_seq_;
  probe::GammaBuckets gamma_;
};

class SortCursor final : public Cursor {
 public:
  SortCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)) {}
  void Open() override {
    input_seq_ = Materialize(*input_);
    if (ctx_.stream != nullptr) ctx_.stream->OnBuffer(input_seq_.size());
    idx_.resize(input_seq_.size());
    for (uint32_t i = 0; i < idx_.size(); ++i) idx_[i] = i;
    std::vector<std::vector<Value>> keys(input_seq_.size());
    for (uint32_t i = 0; i < input_seq_.size(); ++i) {
      for (Symbol a : op_.attrs) {
        keys[i].push_back(input_seq_[i].Get(a).Atomize(ctx_.ev->store()));
      }
    }
    std::stable_sort(idx_.begin(), idx_.end(), [&](uint32_t a, uint32_t b) {
      for (size_t j = 0; j < op_.attrs.size(); ++j) {
        auto c = Value::Compare(keys[a][j], keys[b][j]);
        if (c != std::strong_ordering::equal) {
          bool descending = j < op_.sort_desc.size() && op_.sort_desc[j] != 0;
          return descending ? c == std::strong_ordering::greater
                            : c == std::strong_ordering::less;
        }
      }
      return false;
    });
    pos_ = 0;
  }
  bool Next(Tuple* out) override {
    if (pos_ >= idx_.size()) return false;
    *out = std::move(input_seq_[idx_[pos_++]]);
    CountProducedTuple(ctx_);
    return true;
  }
  void Close() override {
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(input_seq_.size());
  }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  Sequence input_seq_;
  std::vector<uint32_t> idx_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Result construction
// ---------------------------------------------------------------------------

class XiSimpleCursor final : public Cursor {
 public:
  /// `buffer_input` — a Ξ below us would interleave its output writes with
  /// ours under tuple-at-a-time pulls; buffering our input restores the
  /// materializing evaluator's "child first, then us" write order. Under a
  /// memory budget, MakeOpCursor passes false and pre-wraps the input in a
  /// spool-backed buffer instead.
  XiSimpleCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input,
                 bool buffer_input)
      : op_(op),
        ctx_(ctx),
        input_(std::move(input)),
        buffer_input_(buffer_input) {}
  void Open() override {
    if (buffer_input_) {
      input_seq_ = Materialize(*input_);
      if (ctx_.stream != nullptr) ctx_.stream->OnBuffer(input_seq_.size());
      pos_ = 0;
    } else {
      input_->Open();
    }
  }
  bool Next(Tuple* out) override {
    Tuple t;
    if (buffer_input_) {
      if (pos_ >= input_seq_.size()) return false;
      t = std::move(input_seq_[pos_++]);
    } else if (!input_->Next(&t)) {
      return false;
    }
    ctx_.ev->RunXiProgram(op_.s1, t, *ctx_.env);
    *out = std::move(t);
    CountProducedTuple(ctx_);
    return true;
  }
  void Close() override {
    if (buffer_input_) {
      if (ctx_.stream != nullptr) ctx_.stream->OnRelease(input_seq_.size());
    } else {
      input_->Close();
    }
  }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  bool buffer_input_;
  Sequence input_seq_;
  size_t pos_ = 0;
};

class XiGroupCursor final : public Cursor {
 public:
  XiGroupCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input)
      : op_(op), ctx_(ctx), input_(std::move(input)) {}
  void Open() override {
    input_seq_ = Materialize(*input_);
    if (ctx_.stream != nullptr) ctx_.stream->OnBuffer(input_seq_.size());
    std::vector<Key> keys;
    for (uint32_t i = 0; i < input_seq_.size(); ++i) {
      MakeKeysInto(input_seq_[i], op_.attrs, ctx_.ev->store(), &keys);
      for (Key& k : keys) {
        auto [it, inserted] = buckets_.try_emplace(k);
        if (inserted) order_.push_back(k);
        it->second.push_back(i);
      }
    }
    next_key_ = 0;
  }
  bool Next(Tuple* out) override {
    if (next_key_ >= order_.size()) return false;
    const Key& key = order_[next_key_++];
    const std::vector<uint32_t>& members = buckets_[key];
    Tuple rep;
    for (size_t j = 0; j < op_.attrs.size(); ++j) {
      rep.Set(op_.attrs[j], key.values[j]);
    }
    // The group attributes carry the atomized key (ΠD semantics); they win
    // over the inner tuple's original values in s1/s3.
    ctx_.ev->RunXiProgram(op_.s1, input_seq_[members.front()].Concat(rep),
                          *ctx_.env);
    for (uint32_t pos : members) {
      ctx_.ev->RunXiProgram(op_.s2, input_seq_[pos], *ctx_.env);
    }
    ctx_.ev->RunXiProgram(op_.s3, input_seq_[members.back()].Concat(rep),
                          *ctx_.env);
    *out = std::move(rep);
    CountProducedTuple(ctx_);
    return true;
  }
  void Close() override {
    if (ctx_.stream != nullptr) ctx_.stream->OnRelease(input_seq_.size());
  }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  Sequence input_seq_;
  std::vector<Key> order_;
  std::unordered_map<Key, std::vector<uint32_t>, KeyHash> buckets_;
  size_t next_key_ = 0;
};

// ---------------------------------------------------------------------------
// Common-subexpression sharing
// ---------------------------------------------------------------------------

/// Wraps the operator cursor of a node with cse_id >= 0: on first Open the
/// node is computed once (through its own counting cursor tree) and stored in
/// the evaluator's CSE cache; every consumer — including nested subscript
/// evaluations going through Evaluator::EvalOp — then streams from the
/// cached sequence without re-computing or re-counting, exactly like the
/// materializing evaluator's cache-hit path.
class CseCursor final : public Cursor {
 public:
  CseCursor(const AlgebraOp& op, ExecContext& ctx)
      : op_(op), ctx_(ctx) {}
  void Open() override {
    const Sequence* cached = ctx_.ev->CseFind(op_.cse_id);
    if (cached == nullptr) {
      CursorPtr inner = MakeOpCursor(op_, ctx_);
      cached = &ctx_.ev->CseStore(op_.cse_id, Materialize(*inner));
      // The cache retains the sequence for the rest of the run; charge it as
      // buffered without release.
      if (ctx_.stream != nullptr) ctx_.stream->OnBuffer(cached->size());
    }
    cached_ = cached;
    pos_ = 0;
  }
  bool Next(Tuple* out) override {
    if (pos_ >= cached_->size()) return false;
    *out = (*cached_)[pos_++];
    return true;  // cache hits are not re-counted (parity with EvalOp)
  }
  void Close() override {}

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  const Sequence* cached_ = nullptr;
  size_t pos_ = 0;
};

CursorPtr MakeOpCursor(const AlgebraOp& op, ExecContext& ctx) {
  switch (op.kind) {
    case OpKind::kSingleton:
      return std::make_unique<SingletonCursor>(ctx);
    case OpKind::kSelect:
      return std::make_unique<SelectCursor>(op, ctx,
                                            MakeCursor(*op.child(0), ctx));
    case OpKind::kProject:
      return std::make_unique<ProjectCursor>(op, ctx,
                                             MakeCursor(*op.child(0), ctx));
    case OpKind::kMap:
      return std::make_unique<MapCursor>(op, ctx,
                                         MakeCursor(*op.child(0), ctx));
    case OpKind::kUnnestMap:
      return std::make_unique<UnnestMapCursor>(op, ctx,
                                               MakeCursor(*op.child(0), ctx));
    case OpKind::kUnnest:
      return std::make_unique<UnnestCursor>(op, ctx,
                                            MakeCursor(*op.child(0), ctx));
    case OpKind::kCross:
    case OpKind::kJoin:
      if (UseSpillCursor(op, ctx)) {
        return MakeSpillJoinCursor(op, ctx, MakeLeftCursor(op, ctx),
                                   MakeCursor(*op.child(1), ctx));
      }
      return std::make_unique<CrossJoinCursor>(
          op, ctx, MakeLeftCursor(op, ctx), MakeCursor(*op.child(1), ctx));
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
      if (UseSpillCursor(op, ctx)) {
        return MakeSpillJoinCursor(op, ctx, MakeLeftCursor(op, ctx),
                                   MakeCursor(*op.child(1), ctx));
      }
      return std::make_unique<SemiAntiJoinCursor>(
          op, ctx, MakeLeftCursor(op, ctx), MakeCursor(*op.child(1), ctx));
    case OpKind::kOuterJoin:
      if (UseSpillCursor(op, ctx)) {
        return MakeSpillJoinCursor(op, ctx, MakeLeftCursor(op, ctx),
                                   MakeCursor(*op.child(1), ctx));
      }
      return std::make_unique<OuterJoinCursor>(
          op, ctx, MakeLeftCursor(op, ctx), MakeCursor(*op.child(1), ctx));
    case OpKind::kGroupUnary:
      if (UseSpillCursor(op, ctx)) {
        return MakeSpillGroupUnaryCursor(op, ctx,
                                         MakeCursor(*op.child(0), ctx));
      }
      return std::make_unique<GroupUnaryCursor>(op, ctx,
                                                MakeCursor(*op.child(0), ctx));
    case OpKind::kGroupBinary:
      if (UseSpillCursor(op, ctx)) {
        return MakeSpillJoinCursor(op, ctx, MakeLeftCursor(op, ctx),
                                   MakeCursor(*op.child(1), ctx));
      }
      return std::make_unique<GroupBinaryCursor>(
          op, ctx, MakeLeftCursor(op, ctx), MakeCursor(*op.child(1), ctx));
    case OpKind::kSort:
      if (UseSpillCursor(op, ctx)) {
        return MakeSpillSortCursor(op, ctx, MakeCursor(*op.child(0), ctx));
      }
      return std::make_unique<SortCursor>(op, ctx,
                                          MakeCursor(*op.child(0), ctx));
    case OpKind::kXiSimple: {
      CursorPtr input = MakeCursor(*op.child(0), ctx);
      bool buffer_input = ContainsXi(*op.child(0));
      if (buffer_input && SpillEnabled(ctx)) {
        // Spool-backed order pinning: same write order, bounded memory.
        input = MakeSpoolBufferCursor(ctx, std::move(input));
        buffer_input = false;
      }
      return std::make_unique<XiSimpleCursor>(op, ctx, std::move(input),
                                              buffer_input);
    }
    case OpKind::kXiGroup:
      return std::make_unique<XiGroupCursor>(op, ctx,
                                             MakeCursor(*op.child(0), ctx));
  }
  throw std::logic_error("unknown operator kind");
}

/// Per-operator profiling decorator (obs/profile.h) — the OpContextCursor
/// pattern from the spool layer: created only when the run's evaluator
/// carries a ProfileCollector, so profiling off costs nothing here. Counts
/// Open/Next/Close calls, accrues wall time and spill-byte deltas inclusive
/// of the subtree, and holds the collector's attribution scope around every
/// inner call so the universal count site (Evaluator::CountProduced) books
/// this operator's emissions — including those of algebra nested in its
/// subscripts — against it.
class ProfileCursor final : public Cursor {
 public:
  ProfileCursor(ExecContext& ctx, obs::ProfileCollector* collector,
                obs::OpMetrics* metrics, CursorPtr inner)
      : ctx_(ctx),
        collector_(collector),
        metrics_(metrics),
        inner_(std::move(inner)) {}

  void Open() override {
    ++metrics_->open_calls;
    Measured scope(this);
    inner_->Open();
  }
  bool Next(Tuple* out) override {
    ++metrics_->next_calls;
    Measured scope(this);
    return inner_->Next(out);
  }
  void Close() override {
    ++metrics_->close_calls;
    Measured scope(this);
    inner_->Close();
  }

 private:
  /// Scope guard: swaps the attribution scope to this operator and accrues
  /// wall/spill on exit — exception-safe, so an unwinding cancellation
  /// still restores the enclosing operator's scope.
  struct Measured {
    explicit Measured(ProfileCursor* c)
        : cursor(c),
          saved(c->collector_->current()),
          spill_before(c->ctx_.ev->stats().spill.spilled_bytes),
          begin(std::chrono::steady_clock::now()) {
      c->collector_->set_current(c->metrics_);
    }
    ~Measured() {
      cursor->metrics_->wall_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - begin)
              .count());
      cursor->metrics_->spill_bytes +=
          cursor->ctx_.ev->stats().spill.spilled_bytes - spill_before;
      cursor->collector_->set_current(saved);
    }
    ProfileCursor* cursor;
    obs::OpMetrics* saved;
    uint64_t spill_before;
    std::chrono::steady_clock::time_point begin;
  };

  ExecContext& ctx_;
  obs::ProfileCollector* collector_;
  obs::OpMetrics* metrics_;
  CursorPtr inner_;
};

/// Wraps `inner` in a ProfileCursor when profiling is on AND `op` is a
/// tracked plan node (untracked shapes — e.g. cursors over subscript
/// algebra — keep their enclosing operator's scope).
CursorPtr MaybeProfileCursor(const AlgebraOp& op, ExecContext& ctx,
                             CursorPtr inner) {
  obs::ProfileCollector* collector = ctx.ev->profile();
  if (collector == nullptr) return inner;
  obs::OpMetrics* metrics = collector->Find(&op);
  if (metrics == nullptr) return inner;
  return std::make_unique<ProfileCursor>(ctx, collector, metrics,
                                         std::move(inner));
}

}  // namespace

CursorPtr MakeCursor(const AlgebraOp& op, ExecContext& ctx) {
  if (ctx.exchange_op == &op && ctx.make_exchange != nullptr) {
    // Fire the injection once; the exchange builds its own source cursor
    // through this same context, and must not recurse into itself. The
    // decorator wraps the exchange cursor itself, so the injection node's
    // profile covers source drain + worker wait + merge (its workers' own
    // processing is folded in from the worker collectors at Close).
    std::function<CursorPtr(ExecContext&)> factory =
        std::move(ctx.make_exchange);
    ctx.make_exchange = nullptr;
    return MaybeProfileCursor(op, ctx, factory(ctx));
  }
  if (op.cse_id >= 0 && ctx.env->empty()) {
    return MaybeProfileCursor(op, ctx,
                              std::make_unique<CseCursor>(op, ctx));
  }
  return MaybeProfileCursor(op, ctx, MakeOpCursor(op, ctx));
}

// ---------------------------------------------------------------------------
// Shared-build parallel probe (cursor.h): consumer-built read-only right
// sides + the per-worker probe cursor over them.
// ---------------------------------------------------------------------------

struct SharedJoinBuild {
  const AlgebraOp* op = nullptr;
  Sequence right;
  std::optional<EquiPredicate> equi;  ///< join family; binary-Γ uses op attrs
  HashIndex index;
  bool indexed = false;             ///< index built (equi join or '='-nest)
  std::vector<Symbol> null_attrs;   ///< outer join ⊥ padding
  Value dflt;                       ///< outer join default
  bool released = false;
};

namespace {

bool IsProbeKind(OpKind kind) {
  switch (kind) {
    case OpKind::kCross:
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kOuterJoin:
    case OpKind::kGroupBinary:
      return true;
    default:
      return false;
  }
}

/// One worker's probe cursor: the JoinProbeLoops access policy backed by a
/// shared, immutable build instead of a privately materialized one. The
/// loops' per-left-tuple state lives in the cursor (worker-private); the
/// build is only ever read.
class SharedProbeCursor final : public Cursor {
 public:
  SharedProbeCursor(const AlgebraOp& op, ExecContext& ctx, CursorPtr input,
                    const SharedJoinBuild& build)
      : op_(op), ctx_(ctx), input_(std::move(input)), build_(build) {}
  void Open() override {
    input_->Open();
    loops_.Reset();
    scan_pos_ = 0;
  }
  bool Next(Tuple* out) override {
    switch (op_.kind) {
      case OpKind::kCross:
      case OpKind::kJoin:
        return loops_.NextCrossJoin(*this, out);
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
        return loops_.NextSemiAnti(*this, out);
      case OpKind::kOuterJoin:
        return loops_.NextOuter(*this, out);
      case OpKind::kGroupBinary:
        return loops_.NextGroupBinary(*this, out);
      default:
        throw std::logic_error("SharedProbeCursor: not a probe operator");
    }
  }
  void Close() override { input_->Close(); }

  // probe::JoinProbeLoops access policy (nal/probe_loops.h).
  ExecContext& ctx() { return ctx_; }
  const AlgebraOp& op() const { return op_; }
  bool LeftNext(Tuple* out) { return input_->Next(out); }
  bool use_index() const { return build_.indexed; }
  const HashIndex& hash_index() const { return build_.index; }
  const Expr* residual() const {
    return build_.equi.has_value() ? build_.equi->residual.get() : nullptr;
  }
  std::span<const Symbol> probe_attrs() const {
    return op_.kind == OpKind::kGroupBinary
               ? std::span<const Symbol>(op_.left_attrs)
               : std::span<const Symbol>(build_.equi->left_attrs);
  }
  const Tuple& right_at(uint32_t pos) const { return build_.right[pos]; }
  void ScanRestart() { scan_pos_ = 0; }
  bool ScanNext(const Tuple** r) {
    if (scan_pos_ >= build_.right.size()) return false;
    *r = &build_.right[scan_pos_++];
    return true;
  }
  const std::vector<Symbol>& outer_null_attrs() const {
    return op_.kind == OpKind::kGroupBinary ? op_.attrs : build_.null_attrs;
  }
  const Value& outer_default() const { return build_.dflt; }

 private:
  const AlgebraOp& op_;
  ExecContext& ctx_;
  CursorPtr input_;
  const SharedJoinBuild& build_;
  probe::JoinProbeLoops<SharedProbeCursor> loops_;
  size_t scan_pos_ = 0;
};

}  // namespace

bool IsProbePartitionableOp(const AlgebraOp& op) {
  if (!IsProbeKind(op.kind)) return false;
  // Same worker-safety conditions as IsPartitionableOp — workers evaluate
  // the residual/θ predicates — plus a Ξ-free build subtree: the build runs
  // once on the consumer during exchange Open, which matches the serial
  // cursor's Open cascade only when that evaluation writes no output.
  return op.cse_id < 0 && !SubscriptsContainXi(op) &&
         !SubscriptsContainCse(op) && !ContainsXi(*op.child(1));
}

bool IsGammaPartitionableOp(const AlgebraOp& op) {
  if (op.kind != OpKind::kGroupUnary) return false;
  // θ-grouping rescans the whole input per key — no partitioning. Under
  // '=', hash-partitioning by the full group key puts every group entirely
  // in one partition, so any aggregate (min/max/sum/count/id...) works
  // without partial-state merging.
  if (op.theta != CmpOp::kEq) return false;
  return op.cse_id < 0 && !SubscriptsContainXi(op) &&
         !SubscriptsContainCse(op);
}

SharedJoinBuildPtr BuildSharedJoin(const AlgebraOp& op, ExecContext& ctx) {
  auto b = std::make_shared<SharedJoinBuild>();
  b->op = &op;
  CursorPtr right = MakeCursor(*op.child(1), ctx);
  b->right = Materialize(*right);
  if (ctx.stream != nullptr) ctx.stream->OnBuffer(b->right.size());
  if (op.kind == OpKind::kGroupBinary) {
    if (op.theta == CmpOp::kEq) {
      b->index.Build(b->right, op.right_attrs, ctx.ev->store());
      b->indexed = true;
    } else if (op.left_attrs.size() != 1) {
      throw engine::Error(engine::ErrorCode::kPlanError,
                          "theta nest-join requires a single attribute", 0, {},
                          "GroupBinary");
    }
  } else if (op.kind != OpKind::kCross) {
    SymbolSet lattrs = OutputAttrs(*op.child(0)).attrs;
    SymbolSet rattrs = OutputAttrs(*op.child(1)).attrs;
    b->equi = ExtractEquiPredicate(op.pred, lattrs, rattrs);
    if (b->equi.has_value()) {
      b->index.Build(b->right, b->equi->right_attrs, ctx.ev->store());
      b->indexed = true;
    }
  }
  if (op.kind == OpKind::kOuterJoin) {
    AttrInfo info = OutputAttrs(*op.child(1));
    for (Symbol a : info.attrs) {
      if (a != op.attr) b->null_attrs.push_back(a);
    }
    b->dflt = op.expr != nullptr
                  ? ctx.ev->EvalExpr(*op.expr, Tuple(), *ctx.env)
                  : Value::Null();
  }
  return b;
}

void ReleaseSharedJoin(SharedJoinBuild& build, ExecContext& ctx) {
  if (build.released) return;
  build.released = true;
  if (ctx.stream != nullptr) ctx.stream->OnRelease(build.right.size());
}

CursorPtr MakeProbeCursorOver(const AlgebraOp& op, ExecContext& ctx,
                              CursorPtr input, const SharedJoinBuild& build) {
  return MaybeProfileCursor(
      op, ctx,
      std::make_unique<SharedProbeCursor>(op, ctx, std::move(input), build));
}

bool IsPartitionableOp(const AlgebraOp& op) {
  switch (op.kind) {
    case OpKind::kSelect:
    case OpKind::kMap:
    case OpKind::kUnnestMap:
    case OpKind::kUnnest:
      break;
    case OpKind::kProject:
      // ΠD deduplicates across the whole input — state spans tuples.
      if (op.pmode == ProjectMode::kDistinct) return false;
      break;
    default:
      return false;
  }
  // The node itself must not be shared (CSE computes once per run), and its
  // subscripts must neither write to the Ξ output stream (workers have no
  // output ordering) nor evaluate CSE-carrying algebra (workers have
  // private caches).
  return op.cse_id < 0 && !SubscriptsContainXi(op) &&
         !SubscriptsContainCse(op);
}

CursorPtr MakeCursorOver(const AlgebraOp& op, ExecContext& ctx,
                         CursorPtr input) {
  CursorPtr c;
  switch (op.kind) {
    case OpKind::kSelect:
      c = std::make_unique<SelectCursor>(op, ctx, std::move(input));
      break;
    case OpKind::kProject:
      c = std::make_unique<ProjectCursor>(op, ctx, std::move(input));
      break;
    case OpKind::kMap:
      c = std::make_unique<MapCursor>(op, ctx, std::move(input));
      break;
    case OpKind::kUnnestMap:
      c = std::make_unique<UnnestMapCursor>(op, ctx, std::move(input));
      break;
    case OpKind::kUnnest:
      c = std::make_unique<UnnestCursor>(op, ctx, std::move(input));
      break;
    default:
      throw std::logic_error("MakeCursorOver: operator is not partitionable");
  }
  return MaybeProfileCursor(op, ctx, std::move(c));
}

namespace {

/// Env-default spool for runs that did not pass one explicitly: a local
/// SpoolContext carrying NALQ_MEMORY_BUDGET_BYTES. Construction is cheap
/// (no filesystem work until the first spill), so paying it per run keeps
/// temp-file lifetime tied to the run.
std::optional<SpoolContext> MakeEnvSpool(SpoolContext* explicit_spool) {
  if (explicit_spool != nullptr) return std::nullopt;
  uint64_t budget = SpoolContext::EnvBudgetBytes();
  if (budget == 0) return std::nullopt;
  return std::optional<SpoolContext>(std::in_place, budget);
}

}  // namespace

uint64_t DrainStreaming(Evaluator& ev, const AlgebraOp& op,
                        StreamStats* stream, SpoolContext* spool) {
  xml::StoreReadLease lease(ev.store());
  ev.ClearCse();
  std::optional<SpoolContext> env_spool = MakeEnvSpool(spool);
  if (env_spool.has_value()) spool = &*env_spool;
  // The spool layer polls the run's cancellation token per temp-file record
  // (spool.h); wire the evaluator's token in unless the caller set its own.
  if (spool != nullptr && spool->control() == nullptr) {
    spool->set_control(ev.control());
  }
  Tuple env;
  ExecContext ctx{&ev, &env, stream,
                  spool != nullptr && spool->enabled() ? spool : nullptr};
  CursorPtr root = MakeCursor(op, ctx);
  uint64_t count = 0;
  Tuple t;
  root->Open();
  while (root->Next(&t)) ++count;
  root->Close();
  return count;
}

Sequence ExecuteStreaming(Evaluator& ev, const AlgebraOp& op,
                          StreamStats* stream, SpoolContext* spool) {
  xml::StoreReadLease lease(ev.store());
  ev.ClearCse();
  std::optional<SpoolContext> env_spool = MakeEnvSpool(spool);
  if (env_spool.has_value()) spool = &*env_spool;
  if (spool != nullptr && spool->control() == nullptr) {
    spool->set_control(ev.control());
  }
  Tuple env;
  ExecContext ctx{&ev, &env, stream,
                  spool != nullptr && spool->enabled() ? spool : nullptr};
  CursorPtr root = MakeCursor(op, ctx);
  Sequence out;
  Tuple t;
  root->Open();
  while (root->Next(&t)) out.Append(std::move(t));
  root->Close();
  return out;
}

}  // namespace nalq::nal
