#include "nal/physical.h"

#include <algorithm>

#include "xml/store.h"

namespace nalq::nal {

namespace {

/// Atomizes one value; item sequences are returned item-wise.
void AtomizedItems(const Value& v, const xml::Store& store,
                   std::vector<Value>* out) {
  switch (v.kind()) {
    case ValueKind::kItemSeq:
      for (const Value& item : v.AsItems()) {
        out->push_back(item.Atomize(store));
      }
      return;
    case ValueKind::kTupleSeq: {
      // Single-attribute tuple sequences behave like item sequences.
      for (const Tuple& t : v.AsTuples()) {
        if (t.size() == 1) {
          out->push_back(t.slots()[0].second.Atomize(store));
        }
      }
      return;
    }
    default:
      out->push_back(v.Atomize(store));
  }
}

}  // namespace

void MakeKeysInto(const Tuple& tuple, std::span<const Symbol> attrs,
                  const xml::Store& store, std::vector<Key>* out) {
  // Overwrite `out` in place so a probe loop reuses both the outer vector
  // and the per-key value vectors instead of reallocating per probe.
  size_t used = 0;
  auto slot = [&]() -> Key& {
    if (used == out->size()) out->emplace_back();
    Key& k = (*out)[used++];
    k.values.clear();
    return k;
  };
  if (attrs.size() == 1) {
    static thread_local std::vector<Value> items;
    items.clear();
    AtomizedItems(tuple.Get(attrs[0]), store, &items);
    for (Value& v : items) {
      Key& k = slot();
      k.values.push_back(std::move(v));
      // Deduplicate: the same value occurring twice in one sequence must not
      // yield the tuple twice in a bucket.
      bool seen = false;
      for (size_t i = 0; i + 1 < used; ++i) {
        if ((*out)[i] == k) {
          seen = true;
          break;
        }
      }
      if (seen) --used;  // drop the duplicate; its slot is reused next
    }
    out->resize(used);
    return;
  }
  Key& k = slot();
  k.values.reserve(attrs.size());
  for (Symbol a : attrs) {
    k.values.push_back(tuple.Get(a).Atomize(store));
  }
  out->resize(used);
}

std::vector<Key> MakeKeys(const Tuple& tuple, std::span<const Symbol> attrs,
                          const xml::Store& store) {
  std::vector<Key> keys;
  MakeKeysInto(tuple, attrs, store, &keys);
  return keys;
}

void HashIndex::Build(const Sequence& input, std::span<const Symbol> attrs,
                      const xml::Store& store) {
  map_.clear();
  map_.reserve(input.size());
  std::vector<Key> keys;
  for (uint32_t i = 0; i < input.size(); ++i) {
    MakeKeysInto(input[i], attrs, store, &keys);
    for (Key& k : keys) {
      map_[std::move(k)].push_back(i);
    }
  }
}

void HashIndex::LookupInto(const Tuple& probe, std::span<const Symbol> attrs,
                           const xml::Store& store, std::vector<Key>* scratch,
                           std::vector<uint32_t>* out) const {
  out->clear();
  MakeKeysInto(probe, attrs, store, scratch);
  for (const Key& k : *scratch) {
    auto it = map_.find(k);
    if (it == map_.end()) continue;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  if (scratch->size() > 1) {
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
}

std::vector<uint32_t> HashIndex::Lookup(const Tuple& probe,
                                        std::span<const Symbol> attrs,
                                        const xml::Store& store) const {
  std::vector<uint32_t> out;
  std::vector<Key> keys;
  LookupInto(probe, attrs, store, &keys, &out);
  return out;
}

const std::vector<uint32_t>* HashIndex::LookupKey(const Key& k) const {
  auto it = map_.find(k);
  return it == map_.end() ? nullptr : &it->second;
}

namespace {

void FlattenConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out) {
  if (pred->kind == ExprKind::kAnd) {
    FlattenConjuncts(pred->children[0], out);
    FlattenConjuncts(pred->children[1], out);
  } else {
    out->push_back(pred);
  }
}

}  // namespace

std::optional<EquiPredicate> ExtractEquiPredicate(const ExprPtr& pred,
                                                  const SymbolSet& left,
                                                  const SymbolSet& right) {
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  EquiPredicate out;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kCmp && c->cmp == CmpOp::kEq &&
        c->children[0]->kind == ExprKind::kAttrRef &&
        c->children[1]->kind == ExprKind::kAttrRef) {
      Symbol a = c->children[0]->attr;
      Symbol b = c->children[1]->attr;
      if (left.count(a) != 0 && right.count(b) != 0) {
        out.left_attrs.push_back(a);
        out.right_attrs.push_back(b);
        continue;
      }
      if (left.count(b) != 0 && right.count(a) != 0) {
        out.left_attrs.push_back(b);
        out.right_attrs.push_back(a);
        continue;
      }
    }
    residual.push_back(c);
  }
  if (out.left_attrs.empty()) return std::nullopt;
  for (const ExprPtr& r : residual) {
    out.residual = out.residual == nullptr ? r : MakeAnd(out.residual, r);
  }
  return out;
}

}  // namespace nalq::nal
