#include "nal/exchange.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "nal/scheduler.h"
#include "nal/spool.h"

namespace nalq::nal {

namespace {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Budget-aware degree of parallelism. Workers share the run's accountant
/// for anything they would buffer, but each worker also carries in-flight
/// state the accountant never sees — its dispatch-window chunk and result
/// packet. Clamping the worker count to budget / kMinWorkerBudgetBytes
/// keeps that uncharged per-worker footprint proportional to the budget,
/// so a high `threads` request cannot over-commit it.
unsigned ResolveBudgetedThreads(unsigned requested, uint64_t budget_bytes) {
  unsigned dop = ResolveThreads(requested);
  if (budget_bytes != 0) {
    uint64_t cap = budget_bytes / kMinWorkerBudgetBytes;
    if (cap == 0) cap = 1;
    if (dop > cap) dop = static_cast<unsigned>(cap);
  }
  return dop;
}

bool IsExpanding(const AlgebraOp& op) {
  return op.kind == OpKind::kUnnestMap || op.kind == OpKind::kUnnest;
}

/// The leaf of a worker's cursor chain: replays the tuples of the chunk
/// currently assigned to the pipeline. Like BufferCursor it re-emits
/// already-counted tuples (the producer's operator counted them), so Next
/// never touches tuples_produced.
class PartitionCursor final : public Cursor {
 public:
  void Reset(std::vector<Tuple> tuples) {
    tuples_ = std::move(tuples);
    pos_ = 0;
  }
  void Open() override { pos_ = 0; }
  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = std::move(tuples_[pos_++]);
    return true;
  }
  void Close() override {
    tuples_.clear();
    pos_ = 0;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// One worker's clone of the partitionable segment: a private Evaluator
/// (own EvalStats, own scratch caches, same store and path mode) driving a
/// private cursor chain over the shared plan nodes. Heap-allocated and
/// never moved, because ctx points into the object. Under a memory budget
/// the worker also carries a private SpoolContext — its own temp-file
/// directory (spool files stay worker-private) sharing the run's global
/// MemoryBudget accountant.
struct WorkerPipeline {
  std::unique_ptr<Evaluator> ev;
  Tuple env;  ///< the top-level empty outer binding
  ExecContext ctx;
  PartitionCursor* leaf = nullptr;  ///< borrowed from `pipeline`
  CursorPtr pipeline;
  std::unique_ptr<SpoolContext> spool;
};

/// State shared between the consumer thread and the chunk tasks. Owned by a
/// shared_ptr so in-flight tasks stay valid even if the cursor is destroyed
/// early (the destructor additionally waits for them, protecting the
/// store/plan references inside the pipelines).
struct ExchangeState {
  std::mutex mu;
  std::condition_variable cv;

  /// Result packets by ticket; consumed strictly in ticket order.
  std::map<uint64_t, std::vector<Tuple>> completed;
  uint64_t dispatched = 0;
  uint64_t finished = 0;
  /// Per-ticket worker exceptions. The consumer rethrows the error of the
  /// LOWEST ticket it reaches — ticket order, not wall-clock arrival order —
  /// so which of several concurrent worker failures surfaces is
  /// deterministic (stable under TSan/any interleaving).
  std::map<uint64_t, std::exception_ptr> errors;
  /// Latched on the first worker failure: stops chunk dispatch, and tasks
  /// that have not started yet skip their work (they still publish an empty
  /// packet so the ticket/finished accounting closes and nothing hangs).
  std::atomic<bool> abort{false};

  /// Pipeline pool. The dispatch window (dispatched - finished < dop)
  /// guarantees a starting task always finds an idle pipeline.
  std::vector<std::unique_ptr<WorkerPipeline>> pipelines;
  std::vector<WorkerPipeline*> idle;
};

void RunChunkTask(const std::shared_ptr<ExchangeState>& state, uint64_t ticket,
                  std::vector<Tuple> tuples) {
  WorkerPipeline* wp = nullptr;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    wp = state->idle.back();
    state->idle.pop_back();
  }
  std::vector<Tuple> packet;
  std::exception_ptr error;
  if (!state->abort.load(std::memory_order_acquire)) {
    try {
      wp->leaf->Reset(std::move(tuples));
      // Re-opening per chunk is sound precisely because segment operators
      // are per-tuple: their Open only resets within-tuple iteration state,
      // so the concatenation of per-chunk runs equals one run over the
      // whole stream.
      wp->pipeline->Open();
      Tuple t;
      while (wp->pipeline->Next(&t)) packet.push_back(std::move(t));
      wp->pipeline->Close();
    } catch (...) {
      // A failed chunk still runs the full cleanup path: the exception
      // unwound through the cursor chain's RAII (spool files, budget
      // charges), and the packet/idle bookkeeping below closes normally.
      error = std::current_exception();
      packet.clear();
      state->abort.store(true, std::memory_order_release);
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->idle.push_back(wp);
    if (error != nullptr) state->errors.emplace(ticket, error);
    state->completed.emplace(ticket, std::move(packet));
    ++state->finished;
  }
  state->cv.notify_all();
}

/// The order-preserving merge side of the exchange, and the cursor the rest
/// of the (serial) plan sees in place of the segment. Next() interleaves
/// three roles on the consumer thread: pull the producer and dispatch
/// chunks, wait for workers, and re-emit completed packets in ticket order.
/// All main-Evaluator use (producer subtree, operators above the exchange)
/// therefore stays on one thread; workers only ever touch their own
/// evaluators.
class MergeCursor final : public Cursor {
 public:
  MergeCursor(const PartitionPoint& point, ExecContext& ctx,
              const ParallelOptions& options)
      : point_(point), ctx_(ctx), options_(options) {}

  ~MergeCursor() override { WaitForTasks(); }

  void Open() override {
    dop_ = ResolveBudgetedThreads(options_.threads,
                                  options_.memory_budget_bytes);
    Scheduler::Global().EnsureThreads(dop_);
    state_ = std::make_shared<ExchangeState>();
    for (unsigned w = 0; w < dop_; ++w) {
      auto wp = std::make_unique<WorkerPipeline>();
      wp->ev = std::make_unique<Evaluator>(ctx_.ev->store());
      wp->ev->set_path_mode(ctx_.ev->path_mode());
      // Workers share the run's cancellation token: one RequestCancel (or
      // the deadline tripping on any thread) stops every chunk task at its
      // next poll.
      wp->ev->set_control(ctx_.ev->control());
      // Workers reserve against the SAME accountant as the consumer (the
      // MemoryBudget is thread-safe), so one limit bounds the whole run —
      // the consumer pipeline, which runs every breaker, is not throttled
      // to a fraction of it. Worker spool files stay worker-private via a
      // per-worker directory. (Today a worker segment holds only
      // per-tuple operators — IsPartitionableOp — so worker charges are
      // theoretical until segments ever gain stateful operators.)
      if (ctx_.spool != nullptr) {
        wp->spool = std::make_unique<SpoolContext>(ctx_.spool->budget());
        wp->spool->set_control(ctx_.ev->control());
        // Workers inherit the parent run's fault injector, not the ambient
        // one: Open() runs on the consumer thread, but the worker contexts
        // must fault (or not) with the run they belong to.
        wp->spool->set_injector(ctx_.spool->injector());
      }
      wp->ctx = ExecContext{wp->ev.get(), &wp->env, nullptr,
                            wp->spool != nullptr && wp->spool->enabled()
                                ? wp->spool.get()
                                : nullptr};
      auto leaf = std::make_unique<PartitionCursor>();
      wp->leaf = leaf.get();
      CursorPtr chain = std::move(leaf);
      for (auto it = point_.segment.rbegin(); it != point_.segment.rend();
           ++it) {
        chain = MakeCursorOver(**it, wp->ctx, std::move(chain));
      }
      wp->pipeline = std::move(chain);
      state_->idle.push_back(wp.get());
      state_->pipelines.push_back(std::move(wp));
    }
    source_ = MakeCursor(*point_.source, ctx_);
    source_->Open();
    source_open_ = true;
    source_done_ = false;
    next_ticket_ = 0;
    total_dispatched_ = 0;
    current_.clear();
    cpos_ = 0;
    if (options_.strategy == PartitionStrategy::kRange) MaterializeRanges();
  }

  bool Next(Tuple* out) override {
    while (true) {
      if (cpos_ < current_.size()) {
        *out = std::move(current_[cpos_++]);
        return true;
      }
      if (!FetchNextPacket()) return false;
    }
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    WaitForTasks();
    CloseSource();
    if (ctx_.stream != nullptr) {
      for (const auto& [ticket, n] : chunk_input_sizes_) {
        ctx_.stream->OnRelease(n);
      }
      // Range chunks never dispatched were charged by the materialization
      // but have no per-ticket entry yet.
      for (const std::vector<Tuple>& chunk : pending_) {
        ctx_.stream->OnRelease(chunk.size());
      }
    }
    chunk_input_sizes_.clear();
    pending_.clear();
    if (state_ != nullptr) {
      // Fold every worker's counters into the main evaluator — the merged
      // stats are what makes a parallel run report exactly like a serial
      // one.
      for (const auto& wp : state_->pipelines) {
        ctx_.ev->stats() += wp->ev->stats();
      }
    }
  }

 private:
  void WaitForTasks() {
    if (state_ == nullptr) return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock,
                    [&] { return state_->finished == state_->dispatched; });
  }

  void CloseSource() {
    if (source_open_) {
      source_->Close();
      source_open_ = false;
    }
  }

  /// Range strategy: materialize the producer and pre-split it into one
  /// contiguous chunk per worker.
  void MaterializeRanges() {
    std::vector<Tuple> all;
    Tuple t;
    while (source_->Next(&t)) all.push_back(std::move(t));
    CloseSource();
    source_done_ = true;
    if (ctx_.stream != nullptr && !all.empty()) {
      ctx_.stream->OnBuffer(all.size());
    }
    if (all.empty()) return;
    size_t per = (all.size() + dop_ - 1) / dop_;
    for (size_t begin = 0; begin < all.size(); begin += per) {
      size_t end = std::min(begin + per, all.size());
      pending_.emplace_back(
          std::make_move_iterator(all.begin() + static_cast<ptrdiff_t>(begin)),
          std::make_move_iterator(all.begin() + static_cast<ptrdiff_t>(end)));
    }
  }

  bool SourceExhausted() const {
    return source_done_ && pending_.empty();
  }

  /// Pulls the next chunk (from the producer or the pre-split ranges) and
  /// submits it to the scheduler. False if the source just ran dry.
  bool DispatchOne() {
    std::vector<Tuple> tuples;
    if (options_.strategy == PartitionStrategy::kRange) {
      if (pending_.empty()) return false;
      tuples = std::move(pending_.front());
      pending_.pop_front();
      // Buffering was charged by the materialization; count the morsel.
      if (ctx_.stream != nullptr) ++ctx_.stream->exchange_chunks;
    } else {
      Tuple t;
      uint32_t chunk = options_.chunk_tuples == 0 ? 1 : options_.chunk_tuples;
      bool more = true;
      while (tuples.size() < chunk && (more = source_->Next(&t))) {
        tuples.push_back(std::move(t));
      }
      if (!more) {
        // Record exhaustion the moment Next returns false — cursors are
        // single-use (cursor.h) and must not be pulled past their end on a
        // later DispatchOne.
        source_done_ = true;
        CloseSource();
      }
      if (tuples.empty()) return false;
      if (ctx_.stream != nullptr) ctx_.stream->OnChunkDispatch(tuples.size());
    }
    uint64_t ticket = total_dispatched_++;
    chunk_input_sizes_[ticket] = tuples.size();
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      ++state_->dispatched;
    }
    std::shared_ptr<ExchangeState> state = state_;
    Scheduler::Global().Submit(
        [state, ticket, chunk = std::move(tuples)]() mutable {
          RunChunkTask(state, ticket, std::move(chunk));
        });
    return true;
  }

  /// Advances to the packet of next_ticket_, producing/dispatching or
  /// waiting as needed. False when every ticket has been consumed.
  bool FetchNextPacket() {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(state_->mu);
        // The error check precedes the packet check, and both go strictly
        // by next_ticket_: packets before the first failing ticket are
        // emitted normally, then that ticket's error is rethrown —
        // regardless of which worker failed first on the wall clock.
        auto eit = state_->errors.find(next_ticket_);
        if (eit != state_->errors.end()) {
          std::exception_ptr error = eit->second;
          lock.unlock();
          std::rethrow_exception(error);
        }
        auto it = state_->completed.find(next_ticket_);
        if (it != state_->completed.end()) {
          current_ = std::move(it->second);
          state_->completed.erase(it);
          lock.unlock();
          cpos_ = 0;
          auto size_it = chunk_input_sizes_.find(next_ticket_);
          if (size_it != chunk_input_sizes_.end()) {
            if (ctx_.stream != nullptr) ctx_.stream->OnRelease(size_it->second);
            chunk_input_sizes_.erase(size_it);
          }
          ++next_ticket_;
          return true;
        }
      }
      // A latched abort stops dispatch: the failing ticket is already in
      // flight and the consumer only needs to drain up to it.
      bool aborted = state_->abort.load(std::memory_order_acquire);
      if (!aborted && !SourceExhausted()) {
        bool room;
        {
          std::lock_guard<std::mutex> lock(state_->mu);
          room = state_->dispatched - state_->finished < dop_;
        }
        if (room) {
          DispatchOne();
          continue;
        }
      } else if (next_ticket_ >= total_dispatched_) {
        return false;
      }
      // Workers are busy on every pipeline (or hold the ticket we need):
      // wait for a completion, which frees a pipeline and may be ours.
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->cv.wait(lock, [&] {
        return state_->completed.count(next_ticket_) != 0 ||
               (!state_->abort.load(std::memory_order_relaxed) &&
                !SourceExhausted() &&
                state_->dispatched - state_->finished < dop_);
      });
    }
  }

  const PartitionPoint point_;
  ExecContext& ctx_;
  const ParallelOptions options_;
  unsigned dop_ = 1;

  std::shared_ptr<ExchangeState> state_;
  CursorPtr source_;
  bool source_open_ = false;
  bool source_done_ = false;
  bool closed_ = false;

  std::deque<std::vector<Tuple>> pending_;  ///< range mode: pre-split chunks

  // Consumer-thread bookkeeping (never touched by tasks).
  uint64_t total_dispatched_ = 0;
  uint64_t next_ticket_ = 0;
  std::map<uint64_t, uint64_t> chunk_input_sizes_;
  std::vector<Tuple> current_;
  size_t cpos_ = 0;
};

}  // namespace

std::optional<PartitionPoint> FindPartitionPoint(const AlgebraOp& root) {
  std::vector<const AlgebraOp*> spine;
  for (const AlgebraOp* op = &root; op != nullptr;
       op = op->children.empty() ? nullptr : op->child(0).get()) {
    spine.push_back(op);
  }
  // Deepest partitionable operator, extended upward to a maximal run —
  // deepest because that is where the tuple stream is widest (right above
  // the unnest that expands the document scan).
  int bottom = -1;
  for (int i = static_cast<int>(spine.size()) - 1; i >= 0; --i) {
    if (IsPartitionableOp(*spine[i])) {
      bottom = i;
      break;
    }
  }
  if (bottom < 0) return std::nullopt;
  int top = bottom;
  while (top > 0 && IsPartitionableOp(*spine[top - 1])) --top;
  // Every partitionable op is unary, so the spine continues below `bottom`.
  int src = bottom + 1;
  // Demote non-expanding tail operators (□, the doc() binding χ, σ...) into
  // the source until it is Υ/μ-rooted: chunking only pays on a producer
  // that actually fans out into many tuples.
  while (!IsExpanding(*spine[src])) {
    if (bottom < top) return std::nullopt;
    src = bottom;
    --bottom;
  }
  if (bottom < top) return std::nullopt;
  PartitionPoint point;
  point.top = spine[top];
  point.segment.assign(spine.begin() + top, spine.begin() + bottom + 1);
  point.source = spine[src];
  return point;
}

namespace {

template <typename Emit>
uint64_t RunParallel(Evaluator& ev, const AlgebraOp& op,
                     const ParallelOptions& options, StreamStats* stream,
                     Emit&& emit) {
  std::optional<PartitionPoint> point = FindPartitionPoint(op);
  xml::StoreReadLease lease(ev.store());
  ev.ClearCse();
  // Budget resolution mirrors DrainStreaming: an explicit option wins, the
  // NALQ_MEMORY_BUDGET_BYTES environment default applies otherwise. One
  // accountant carries the whole limit; the exchange's worker contexts
  // share it (MergeCursor::Open), so the consumer pipeline — which runs
  // every pipeline breaker — sees the full budget while the global bound
  // still holds across every participant.
  ParallelOptions eff = options;
  if (eff.memory_budget_bytes == 0) {
    eff.memory_budget_bytes = SpoolContext::EnvBudgetBytes();
  }
  std::optional<SpoolContext> consumer_spool;
  if (eff.memory_budget_bytes != 0) {
    eff.threads = ResolveBudgetedThreads(eff.threads, eff.memory_budget_bytes);
    consumer_spool.emplace(eff.memory_budget_bytes);
    consumer_spool->set_control(ev.control());
  }
  Tuple env;
  ExecContext ctx{&ev, &env, stream,
                  consumer_spool.has_value() && consumer_spool->enabled()
                      ? &*consumer_spool
                      : nullptr};
  if (point.has_value()) {
    ctx.exchange_op = point->top;
    const PartitionPoint* pp = &*point;
    ctx.make_exchange = [pp, &eff](ExecContext& c) -> CursorPtr {
      return std::make_unique<MergeCursor>(*pp, c, eff);
    };
  }
  CursorPtr root = MakeCursor(op, ctx);
  uint64_t count = 0;
  Tuple t;
  try {
    root->Open();
    while (root->Next(&t)) {
      emit(std::move(t));
      ++count;
    }
  } catch (...) {
    root->Close();
    throw;
  }
  root->Close();
  return count;
}

}  // namespace

uint64_t DrainParallel(Evaluator& ev, const AlgebraOp& op,
                       const ParallelOptions& options, StreamStats* stream) {
  return RunParallel(ev, op, options, stream, [](Tuple&&) {});
}

Sequence ExecuteParallel(Evaluator& ev, const AlgebraOp& op,
                         const ParallelOptions& options, StreamStats* stream) {
  Sequence out;
  RunParallel(ev, op, options, stream,
              [&out](Tuple&& t) { out.Append(std::move(t)); });
  return out;
}

}  // namespace nalq::nal
