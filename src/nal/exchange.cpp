#include "nal/exchange.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nal/env_knobs.h"
#include "nal/physical.h"
#include "nal/probe_loops.h"
#include "nal/scheduler.h"
#include "nal/spool.h"

namespace nalq::nal {

namespace {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  // NALQ_THREADS supplies the degree-of-parallelism default the same way
  // NALQ_MEMORY_BUDGET_BYTES supplies the budget: unset/empty falls through
  // to one worker per hardware core, a malformed value fails loudly with
  // kPlanError (env_knobs.h) instead of silently becoming "serial". Read
  // per call (not cached) so tests can vary it within one process.
  uint64_t env = EnvKnobU64("NALQ_THREADS", 0);
  if (env != 0) {
    return static_cast<unsigned>(
        std::min<uint64_t>(env, std::numeric_limits<unsigned>::max()));
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Budget-aware degree of parallelism. Workers share the run's accountant
/// for anything they would buffer, but each worker also carries in-flight
/// state the accountant never sees — its dispatch-window chunk and result
/// packet. Clamping the worker count to budget / kMinWorkerBudgetBytes
/// keeps that uncharged per-worker footprint proportional to the budget,
/// so a high `threads` request cannot over-commit it.
unsigned ResolveBudgetedThreads(unsigned requested, uint64_t budget_bytes) {
  unsigned dop = ResolveThreads(requested);
  if (budget_bytes != 0) {
    uint64_t cap = budget_bytes / kMinWorkerBudgetBytes;
    if (cap == 0) cap = 1;
    if (dop > cap) dop = static_cast<unsigned>(cap);
  }
  return dop;
}

bool IsExpanding(const AlgebraOp& op) {
  return op.kind == OpKind::kUnnestMap || op.kind == OpKind::kUnnest;
}

/// The leaf of a worker's cursor chain: replays the tuples of the chunk
/// currently assigned to the pipeline. Like BufferCursor it re-emits
/// already-counted tuples (the producer's operator counted them), so Next
/// never touches tuples_produced.
class PartitionCursor final : public Cursor {
 public:
  void Reset(std::vector<Tuple> tuples) {
    tuples_ = std::move(tuples);
    pos_ = 0;
  }
  void Open() override { pos_ = 0; }
  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = std::move(tuples_[pos_++]);
    return true;
  }
  void Close() override {
    tuples_.clear();
    pos_ = 0;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// One worker's clone of the partitionable segment: a private Evaluator
/// (own EvalStats, own scratch caches, same store and path mode) driving a
/// private cursor chain over the shared plan nodes. Heap-allocated and
/// never moved, because ctx points into the object. Under a memory budget
/// the worker also carries a private SpoolContext — its own temp-file
/// directory (spool files stay worker-private) sharing the run's global
/// MemoryBudget accountant.
struct WorkerPipeline {
  std::unique_ptr<Evaluator> ev;
  Tuple env;  ///< the top-level empty outer binding
  ExecContext ctx;
  PartitionCursor* leaf = nullptr;  ///< borrowed from `pipeline`
  CursorPtr pipeline;
  std::unique_ptr<SpoolContext> spool;
  /// Worker-private profile clone (merged by MergeCursor::Close alongside
  /// the stats fold); null when the run is not profiling.
  std::unique_ptr<obs::ProfileCollector> profile;
};

/// State shared between the consumer thread and the chunk tasks. Owned by a
/// shared_ptr so in-flight tasks stay valid even if the cursor is destroyed
/// early (the destructor additionally waits for them, protecting the
/// store/plan references inside the pipelines).
struct ExchangeState {
  std::mutex mu;
  std::condition_variable cv;

  /// Result packets by ticket; consumed strictly in ticket order.
  std::map<uint64_t, std::vector<Tuple>> completed;
  uint64_t dispatched = 0;
  uint64_t finished = 0;
  /// Per-ticket worker exceptions. The consumer rethrows the error of the
  /// LOWEST ticket it reaches — ticket order, not wall-clock arrival order —
  /// so which of several concurrent worker failures surfaces is
  /// deterministic (stable under TSan/any interleaving).
  std::map<uint64_t, std::exception_ptr> errors;
  /// Latched on the first worker failure: stops chunk dispatch, and tasks
  /// that have not started yet skip their work (they still publish an empty
  /// packet so the ticket/finished accounting closes and nothing hangs).
  std::atomic<bool> abort{false};

  /// Pipeline pool. The dispatch window (dispatched - finished < dop)
  /// guarantees a starting task always finds an idle pipeline.
  std::vector<std::unique_ptr<WorkerPipeline>> pipelines;
  std::vector<WorkerPipeline*> idle;
};

void RunChunkTask(const std::shared_ptr<ExchangeState>& state, uint64_t ticket,
                  std::vector<Tuple> tuples) {
  WorkerPipeline* wp = nullptr;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    wp = state->idle.back();
    state->idle.pop_back();
  }
  std::vector<Tuple> packet;
  std::exception_ptr error;
  if (!state->abort.load(std::memory_order_acquire)) {
    obs::TraceLog::Span span(wp->ev->trace(), "exchange.chunk");
    try {
      wp->leaf->Reset(std::move(tuples));
      // Re-opening per chunk is sound precisely because segment operators
      // are per-tuple: their Open only resets within-tuple iteration state,
      // so the concatenation of per-chunk runs equals one run over the
      // whole stream.
      wp->pipeline->Open();
      Tuple t;
      while (wp->pipeline->Next(&t)) packet.push_back(std::move(t));
      wp->pipeline->Close();
    } catch (...) {
      // A failed chunk still runs the full cleanup path: the exception
      // unwound through the cursor chain's RAII (spool files, budget
      // charges), and the packet/idle bookkeeping below closes normally.
      error = std::current_exception();
      packet.clear();
      state->abort.store(true, std::memory_order_release);
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->idle.push_back(wp);
    if (error != nullptr) state->errors.emplace(ticket, error);
    state->completed.emplace(ticket, std::move(packet));
    ++state->finished;
  }
  state->cv.notify_all();
}

/// The order-preserving merge side of the exchange, and the cursor the rest
/// of the (serial) plan sees in place of the segment. Next() interleaves
/// three roles on the consumer thread: pull the producer and dispatch
/// chunks, wait for workers, and re-emit completed packets in ticket order.
/// All main-Evaluator use (producer subtree, operators above the exchange)
/// therefore stays on one thread; workers only ever touch their own
/// evaluators.
class MergeCursor final : public Cursor {
 public:
  MergeCursor(const PartitionPoint& point, ExecContext& ctx,
              const ParallelOptions& options)
      : point_(point), ctx_(ctx), options_(options) {}

  ~MergeCursor() override { WaitForTasks(); }

  void Open() override {
    dop_ = ResolveBudgetedThreads(options_.threads,
                                  options_.memory_budget_bytes);
    Scheduler::Global().EnsureThreads(dop_);
    state_ = std::make_shared<ExchangeState>();
    // The source subtree opens BEFORE any shared build, and the builds run
    // deepest-first — exactly the serial Open cascade (recursion reaches
    // the deepest child, then unwinds building each breaker on the way
    // up), so Ξ writes and CSE materializations inside the source subtree
    // keep their serial positions relative to the builds.
    source_ = MakeCursor(*point_.source, ctx_);
    source_->Open();
    source_open_ = true;
    source_done_ = false;
    shared_builds_.assign(point_.segment.size(), nullptr);
    for (size_t i = point_.segment.size(); i-- > 0;) {
      const AlgebraOp& seg_op = *point_.segment[i];
      if (!IsPartitionableOp(seg_op)) {
        shared_builds_[i] = BuildSharedJoin(seg_op, ctx_);
      }
    }
    if (ctx_.stream != nullptr) {
      if (dop_ > ctx_.stream->exchange_dop) ctx_.stream->exchange_dop = dop_;
      for (const SharedJoinBuildPtr& b : shared_builds_) {
        if (b != nullptr) ++ctx_.stream->shared_probe_breakers;
      }
    }
    for (unsigned w = 0; w < dop_; ++w) {
      auto wp = std::make_unique<WorkerPipeline>();
      wp->ev = std::make_unique<Evaluator>(ctx_.ev->store());
      wp->ev->set_path_mode(ctx_.ev->path_mode());
      // Workers share the run's cancellation token: one RequestCancel (or
      // the deadline tripping on any thread) stops every chunk task at its
      // next poll.
      wp->ev->set_control(ctx_.ev->control());
      // Each worker profiles into a private clone of the run's collector
      // (folded at Close, like the stats), so workers never contend on the
      // profile. The trace log is one shared thread-safe sink.
      if (ctx_.ev->profile() != nullptr) {
        wp->profile = std::make_unique<obs::ProfileCollector>(
            ctx_.ev->profile()->CloneEmpty());
        wp->ev->set_profile(wp->profile.get());
      }
      wp->ev->set_trace(ctx_.ev->trace());
      // Workers reserve against the SAME accountant as the consumer (the
      // MemoryBudget is thread-safe), so one limit bounds the whole run —
      // the consumer pipeline, which runs every breaker, is not throttled
      // to a fraction of it. Worker spool files stay worker-private via a
      // per-worker directory. (Today a worker segment holds only
      // per-tuple operators — IsPartitionableOp — so worker charges are
      // theoretical until segments ever gain stateful operators.)
      if (ctx_.spool != nullptr) {
        wp->spool = std::make_unique<SpoolContext>(ctx_.spool->budget());
        wp->spool->set_control(ctx_.ev->control());
        // Workers inherit the parent run's fault injector, not the ambient
        // one: Open() runs on the consumer thread, but the worker contexts
        // must fault (or not) with the run they belong to.
        wp->spool->set_injector(ctx_.spool->injector());
        // And its grace-admission row hints, keyed by shared plan nodes.
        if (ctx_.spool->row_hints() != nullptr) {
          wp->spool->set_row_hints(ctx_.spool->row_hints());
        }
      }
      wp->ctx = ExecContext{wp->ev.get(), &wp->env, nullptr,
                            wp->spool != nullptr && wp->spool->enabled()
                                ? wp->spool.get()
                                : nullptr};
      auto leaf = std::make_unique<PartitionCursor>();
      wp->leaf = leaf.get();
      CursorPtr chain = std::move(leaf);
      for (size_t i = point_.segment.size(); i-- > 0;) {
        const AlgebraOp& seg_op = *point_.segment[i];
        if (shared_builds_[i] != nullptr) {
          chain = MakeProbeCursorOver(seg_op, wp->ctx, std::move(chain),
                                      *shared_builds_[i]);
        } else {
          chain = MakeCursorOver(seg_op, wp->ctx, std::move(chain));
        }
      }
      wp->pipeline = std::move(chain);
      state_->idle.push_back(wp.get());
      state_->pipelines.push_back(std::move(wp));
    }
    next_ticket_ = 0;
    total_dispatched_ = 0;
    current_.clear();
    cpos_ = 0;
    if (options_.strategy == PartitionStrategy::kRange) MaterializeRanges();
  }

  bool Next(Tuple* out) override {
    while (true) {
      if (cpos_ < current_.size()) {
        *out = std::move(current_[cpos_++]);
        return true;
      }
      if (!FetchNextPacket()) return false;
    }
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    WaitForTasks();
    CloseSource();
    if (ctx_.stream != nullptr) {
      for (const auto& [ticket, n] : chunk_input_sizes_) {
        ctx_.stream->OnRelease(n);
      }
      // Range chunks never dispatched were charged by the materialization
      // but have no per-ticket entry yet.
      for (const std::vector<Tuple>& chunk : pending_) {
        ctx_.stream->OnRelease(chunk.size());
      }
    }
    chunk_input_sizes_.clear();
    pending_.clear();
    if (state_ != nullptr) {
      // Fold every worker's counters into the main evaluator — the merged
      // stats are what makes a parallel run report exactly like a serial
      // one.
      for (const auto& wp : state_->pipelines) {
        ctx_.ev->stats() += wp->ev->stats();
        if (wp->profile != nullptr && ctx_.ev->profile() != nullptr) {
          ctx_.ev->profile()->MergeFrom(*wp->profile);
        }
      }
    }
    for (const SharedJoinBuildPtr& b : shared_builds_) {
      if (b != nullptr) ReleaseSharedJoin(*b, ctx_);
    }
  }

 private:
  void WaitForTasks() {
    if (state_ == nullptr) return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock,
                    [&] { return state_->finished == state_->dispatched; });
  }

  void CloseSource() {
    if (source_open_) {
      source_->Close();
      source_open_ = false;
    }
  }

  /// Range strategy: materialize the producer and pre-split it into one
  /// contiguous chunk per worker.
  void MaterializeRanges() {
    std::vector<Tuple> all;
    Tuple t;
    while (source_->Next(&t)) all.push_back(std::move(t));
    CloseSource();
    source_done_ = true;
    if (ctx_.stream != nullptr && !all.empty()) {
      ctx_.stream->OnBuffer(all.size());
    }
    if (all.empty()) return;
    size_t per = (all.size() + dop_ - 1) / dop_;
    for (size_t begin = 0; begin < all.size(); begin += per) {
      size_t end = std::min(begin + per, all.size());
      pending_.emplace_back(
          std::make_move_iterator(all.begin() + static_cast<ptrdiff_t>(begin)),
          std::make_move_iterator(all.begin() + static_cast<ptrdiff_t>(end)));
    }
  }

  bool SourceExhausted() const {
    return source_done_ && pending_.empty();
  }

  /// Pulls the next chunk (from the producer or the pre-split ranges) and
  /// submits it to the scheduler. False if the source just ran dry.
  bool DispatchOne() {
    std::vector<Tuple> tuples;
    if (options_.strategy == PartitionStrategy::kRange) {
      if (pending_.empty()) return false;
      tuples = std::move(pending_.front());
      pending_.pop_front();
      // Buffering was charged by the materialization; count the morsel.
      if (ctx_.stream != nullptr) ++ctx_.stream->exchange_chunks;
    } else {
      Tuple t;
      uint32_t chunk = options_.chunk_tuples == 0 ? 1 : options_.chunk_tuples;
      bool more = true;
      while (tuples.size() < chunk && (more = source_->Next(&t))) {
        tuples.push_back(std::move(t));
      }
      if (!more) {
        // Record exhaustion the moment Next returns false — cursors are
        // single-use (cursor.h) and must not be pulled past their end on a
        // later DispatchOne.
        source_done_ = true;
        CloseSource();
      }
      if (tuples.empty()) return false;
      if (ctx_.stream != nullptr) ctx_.stream->OnChunkDispatch(tuples.size());
    }
    uint64_t ticket = total_dispatched_++;
    chunk_input_sizes_[ticket] = tuples.size();
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      ++state_->dispatched;
    }
    std::shared_ptr<ExchangeState> state = state_;
    Scheduler::Global().Submit(
        [state, ticket, chunk = std::move(tuples)]() mutable {
          RunChunkTask(state, ticket, std::move(chunk));
        });
    return true;
  }

  /// Advances to the packet of next_ticket_, producing/dispatching or
  /// waiting as needed. False when every ticket has been consumed.
  bool FetchNextPacket() {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(state_->mu);
        // The error check precedes the packet check, and both go strictly
        // by next_ticket_: packets before the first failing ticket are
        // emitted normally, then that ticket's error is rethrown —
        // regardless of which worker failed first on the wall clock.
        auto eit = state_->errors.find(next_ticket_);
        if (eit != state_->errors.end()) {
          std::exception_ptr error = eit->second;
          lock.unlock();
          std::rethrow_exception(error);
        }
        auto it = state_->completed.find(next_ticket_);
        if (it != state_->completed.end()) {
          current_ = std::move(it->second);
          state_->completed.erase(it);
          lock.unlock();
          cpos_ = 0;
          auto size_it = chunk_input_sizes_.find(next_ticket_);
          if (size_it != chunk_input_sizes_.end()) {
            if (ctx_.stream != nullptr) ctx_.stream->OnRelease(size_it->second);
            chunk_input_sizes_.erase(size_it);
          }
          ++next_ticket_;
          return true;
        }
      }
      // A latched abort stops dispatch: the failing ticket is already in
      // flight and the consumer only needs to drain up to it.
      bool aborted = state_->abort.load(std::memory_order_acquire);
      if (!aborted && !SourceExhausted()) {
        bool room;
        {
          std::lock_guard<std::mutex> lock(state_->mu);
          room = state_->dispatched - state_->finished < dop_;
        }
        if (room) {
          DispatchOne();
          continue;
        }
      } else if (next_ticket_ >= total_dispatched_) {
        return false;
      }
      // Workers are busy on every pipeline (or hold the ticket we need):
      // wait for a completion, which frees a pipeline and may be ours.
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->cv.wait(lock, [&] {
        return state_->completed.count(next_ticket_) != 0 ||
               (!state_->abort.load(std::memory_order_relaxed) &&
                !SourceExhausted() &&
                state_->dispatched - state_->finished < dop_);
      });
    }
  }

  const PartitionPoint point_;
  ExecContext& ctx_;
  const ParallelOptions options_;
  unsigned dop_ = 1;

  /// Consumer-built read-only build sides, aligned with point_.segment
  /// (null for per-tuple segment operators). Declared before state_ so the
  /// worker pipelines (in state_) are destroyed first.
  std::vector<SharedJoinBuildPtr> shared_builds_;

  std::shared_ptr<ExchangeState> state_;
  CursorPtr source_;
  bool source_open_ = false;
  bool source_done_ = false;
  bool closed_ = false;

  std::deque<std::vector<Tuple>> pending_;  ///< range mode: pre-split chunks

  // Consumer-thread bookkeeping (never touched by tasks).
  uint64_t total_dispatched_ = 0;
  uint64_t next_ticket_ = 0;
  std::map<uint64_t, uint64_t> chunk_input_sizes_;
  std::vector<Tuple> current_;
  size_t cpos_ = 0;
};

/// One routed Γ input record: the tuple, its group key, and its global
/// position — `seq` over input tuples, `ordinal` over that tuple's keys
/// (a sequence-valued key fans one tuple into several groups; GammaBuckets
/// visits them in key order, so (seq, ordinal) is the serial
/// first-occurrence order of groups).
struct GammaRec {
  uint64_t seq;
  uint32_t ordinal;
  Key key;
  Tuple tuple;
};

/// One partition's aggregation worker: a private Evaluator (stats folded at
/// Close) producing (first_seq, first_ordinal, result) triples.
struct GammaWorker {
  std::unique_ptr<Evaluator> ev;
  Tuple env;
  std::vector<GammaRec> part;  ///< input records, global order
  struct Result {
    uint64_t first_seq;
    uint32_t first_ordinal;
    Tuple tuple;
  };
  std::vector<Result> results;
  std::exception_ptr error;
  /// Worker-private profile clone (folded at Close); null when off.
  std::unique_ptr<obs::ProfileCollector> profile;
};

struct GammaState {
  std::mutex mu;
  std::condition_variable cv;
  size_t dispatched = 0;
  size_t finished = 0;
  std::atomic<bool> abort{false};
};

void RunGammaTask(const std::shared_ptr<GammaState>& state, GammaWorker* w,
                  const AlgebraOp* g) {
  if (!state->abort.load(std::memory_order_acquire)) {
    obs::TraceLog::Span span(w->ev->trace(), "exchange.gamma");
    try {
      // Bucket in local first-occurrence order. Records are partition-
      // private copies, so members always move (value-equal to the serial
      // cursor's move-unless-multi-key policy).
      struct LocalGroup {
        uint64_t first_seq;
        uint32_t first_ordinal;
        Sequence members;
      };
      std::unordered_map<Key, size_t, KeyHash> idx;
      std::vector<Key> order;
      std::vector<LocalGroup> groups;
      for (GammaRec& r : w->part) {
        auto [it, inserted] = idx.try_emplace(r.key, groups.size());
        if (inserted) {
          groups.push_back(LocalGroup{r.seq, r.ordinal, {}});
          order.push_back(std::move(r.key));
        }
        groups[it->second].members.Append(std::move(r.tuple));
      }
      w->part.clear();
      ExecContext wctx{w->ev.get(), &w->env, nullptr, nullptr};
      // Group emissions belong to the Γ node; the worker has no cursor
      // chain (so no ProfileCursor scope), set the scope by hand.
      if (w->profile != nullptr) w->profile->set_current(w->profile->Find(g));
      for (size_t i = 0; i < groups.size(); ++i) {
        Tuple result;
        for (size_t j = 0; j < g->left_attrs.size(); ++j) {
          result.Set(g->left_attrs[j], order[i].values[j]);
        }
        result.Set(g->attr, w->ev->ApplyAgg(g->agg, std::move(groups[i].members),
                                            w->env));
        probe::CountProducedTuple(wctx);
        w->results.push_back(GammaWorker::Result{
            groups[i].first_seq, groups[i].first_ordinal, std::move(result)});
      }
    } catch (...) {
      w->error = std::current_exception();
      w->results.clear();
      state->abort.store(true, std::memory_order_release);
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->finished;
  }
  state->cv.notify_all();
}

/// Partitioned pre-aggregation for the `gamma` of a PartitionPoint (a unary
/// Γ over '='). The consumer drains the Γ input — through a MergeCursor
/// when the point also carries a partitionable segment — and routes each
/// tuple to one of `dop` partitions by group-key hash, so every group lives
/// entirely in one partition and ANY aggregate works without partial-state
/// merging. One scheduler task per non-empty partition buckets and
/// aggregates with a private Evaluator; the consumer merges results by
/// global first-occurrence position, which reproduces the serial ΠD
/// emission order byte for byte. Workers count ApplyAgg work and produced
/// groups on their own stats, folded at Close — merged EvalStats equal the
/// serial run's.
class GammaExchangeCursor final : public Cursor {
 public:
  GammaExchangeCursor(const PartitionPoint& point, ExecContext& ctx,
                      const ParallelOptions& options)
      : point_(point), ctx_(ctx), options_(options) {}

  ~GammaExchangeCursor() override { WaitForTasks(); }

  void Open() override {
    const AlgebraOp& g = *point_.gamma;
    dop_ = ResolveBudgetedThreads(options_.threads,
                                  options_.memory_budget_bytes);
    Scheduler::Global().EnsureThreads(dop_);
    CursorPtr input;
    if (point_.top != nullptr) {
      PartitionPoint inner = point_;
      inner.gamma = nullptr;
      input = std::make_unique<MergeCursor>(inner, ctx_, options_);
    } else {
      input = MakeCursor(*point_.source, ctx_);
    }
    workers_.clear();
    for (unsigned p = 0; p < dop_; ++p) {
      workers_.push_back(std::make_unique<GammaWorker>());
    }
    {
      Tuple t;
      std::vector<Key> keys;
      uint64_t seq = 0;
      input->Open();
      while (input->Next(&t)) {
        MakeKeysInto(t, g.left_attrs, ctx_.ev->store(), &keys);
        for (size_t k = 0; k < keys.size(); ++k) {
          size_t p = KeyHash{}(keys[k]) % dop_;
          ++routed_;
          // The last key takes the tuple by move; earlier keys (a
          // sequence-valued key fanning into several groups) copy it, like
          // GammaBuckets' multi-key path.
          workers_[p]->part.push_back(
              GammaRec{seq, static_cast<uint32_t>(k), std::move(keys[k]),
                       k + 1 == keys.size() ? std::move(t) : t});
        }
        ++seq;
      }
      input->Close();
    }
    if (ctx_.stream != nullptr) {
      if (routed_ > 0) {
        ctx_.stream->OnBuffer(routed_);
        routed_charged_ = true;
      }
      if (dop_ > ctx_.stream->exchange_dop) ctx_.stream->exchange_dop = dop_;
    }
    state_ = std::make_shared<GammaState>();
    for (unsigned p = 0; p < dop_; ++p) {
      GammaWorker* w = workers_[p].get();
      if (w->part.empty()) continue;
      w->ev = std::make_unique<Evaluator>(ctx_.ev->store());
      w->ev->set_path_mode(ctx_.ev->path_mode());
      w->ev->set_control(ctx_.ev->control());
      if (ctx_.ev->profile() != nullptr) {
        w->profile = std::make_unique<obs::ProfileCollector>(
            ctx_.ev->profile()->CloneEmpty());
        w->ev->set_profile(w->profile.get());
      }
      w->ev->set_trace(ctx_.ev->trace());
      ++state_->dispatched;
      std::shared_ptr<GammaState> state = state_;
      const AlgebraOp* gp = &g;
      Scheduler::Global().Submit([state, w, gp] { RunGammaTask(state, w, gp); });
    }
    if (ctx_.stream != nullptr) {
      ctx_.stream->gamma_partitions += state_->dispatched;
    }
    WaitForTasks();
    // Deterministic error propagation: the lowest partition index wins,
    // independent of wall-clock completion order.
    for (const auto& w : workers_) {
      if (w->error != nullptr) std::rethrow_exception(w->error);
    }
    merged_.clear();
    for (auto& w : workers_) {
      for (GammaWorker::Result& r : w->results) merged_.push_back(std::move(r));
      w->results.clear();
    }
    std::sort(merged_.begin(), merged_.end(),
              [](const GammaWorker::Result& a, const GammaWorker::Result& b) {
                return a.first_seq != b.first_seq
                           ? a.first_seq < b.first_seq
                           : a.first_ordinal < b.first_ordinal;
              });
    pos_ = 0;
  }

  bool Next(Tuple* out) override {
    if (pos_ >= merged_.size()) return false;
    // Workers already counted each group (CountProducedTuple); re-emitting
    // must not recount.
    *out = std::move(merged_[pos_++].tuple);
    return true;
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    WaitForTasks();
    if (routed_charged_ && ctx_.stream != nullptr) {
      ctx_.stream->OnRelease(routed_);
      routed_charged_ = false;
    }
    for (const auto& w : workers_) {
      if (w->ev != nullptr) ctx_.ev->stats() += w->ev->stats();
      if (w->profile != nullptr && ctx_.ev->profile() != nullptr) {
        ctx_.ev->profile()->MergeFrom(*w->profile);
      }
    }
  }

 private:
  void WaitForTasks() {
    if (state_ == nullptr) return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock,
                    [&] { return state_->finished == state_->dispatched; });
  }

  const PartitionPoint point_;
  ExecContext& ctx_;
  const ParallelOptions options_;
  unsigned dop_ = 1;
  uint64_t routed_ = 0;
  bool routed_charged_ = false;
  bool closed_ = false;
  std::vector<std::unique_ptr<GammaWorker>> workers_;
  std::shared_ptr<GammaState> state_;
  std::vector<GammaWorker::Result> merged_;
  size_t pos_ = 0;
};

}  // namespace

unsigned ResolveParallelThreads(unsigned threads, uint64_t budget_bytes) {
  return budget_bytes != 0 ? ResolveBudgetedThreads(threads, budget_bytes)
                           : ResolveThreads(threads);
}

std::optional<PartitionPoint> FindPartitionPoint(const AlgebraOp& root) {
  return FindPartitionPoint(root, PartitionScan{});
}

std::optional<PartitionPoint> FindPartitionPoint(const AlgebraOp& root,
                                                 const PartitionScan& scan) {
  std::vector<const AlgebraOp*> spine;
  for (const AlgebraOp* op = &root; op != nullptr;
       op = op->children.empty() ? nullptr : op->child(0).get()) {
    spine.push_back(op);
  }
  auto segmentable = [&scan](const AlgebraOp& op) {
    return IsPartitionableOp(op) ||
           (scan.shared_probe && IsProbePartitionableOp(op));
  };
  // Deepest partitionable operator, extended upward to a maximal run —
  // deepest because that is where the tuple stream is widest (right above
  // the unnest that expands the document scan).
  int bottom = -1;
  for (int i = static_cast<int>(spine.size()) - 1; i >= 0; --i) {
    if (segmentable(*spine[i])) {
      bottom = i;
      break;
    }
  }
  std::optional<PartitionPoint> point;
  int top = 0;
  if (bottom >= 0) {
    top = bottom;
    while (top > 0 && segmentable(*spine[top - 1])) --top;
    // Every segment op keeps the spine on child(0) (probe side for the
    // breakers), so the spine continues below `bottom`.
    int src = bottom + 1;
    // Demote non-expanding tail operators (□, the doc() binding χ, σ...)
    // into the source until it is Υ/μ-rooted: chunking only pays on a
    // producer that actually fans out into many tuples.
    bool viable = true;
    while (!IsExpanding(*spine[src])) {
      if (bottom < top) {
        viable = false;
        break;
      }
      src = bottom;
      --bottom;
    }
    if (viable && bottom >= top) {
      point.emplace();
      point->top = spine[top];
      point->segment.assign(spine.begin() + top, spine.begin() + bottom + 1);
      point->source = spine[src];
    }
  }
  if (scan.gamma) {
    if (point.has_value()) {
      // A partitionable Γ directly above the segment extends the same
      // exchange: workers stream the segment AND pre-aggregate.
      if (top > 0 && IsGammaPartitionableOp(*spine[top - 1])) {
        point->gamma = spine[top - 1];
      }
    } else {
      // No partitionable segment — a Γ alone still parallelizes: its input
      // runs serially on the consumer, the aggregation is partitioned.
      // Deepest first (widest input).
      for (int i = static_cast<int>(spine.size()) - 1; i >= 0; --i) {
        if (IsGammaPartitionableOp(*spine[i])) {
          point.emplace();
          point->gamma = spine[i];
          point->source = spine[i + 1];
          break;
        }
      }
    }
  }
  return point;
}

std::vector<PartitionPoint> EnumeratePartitionPoints(const AlgebraOp& root) {
  std::vector<PartitionPoint> out;
  auto add = [&out](std::optional<PartitionPoint> p) {
    if (!p.has_value()) return;
    for (const PartitionPoint& q : out) {
      if (q.top == p->top && q.source == p->source && q.gamma == p->gamma &&
          q.segment == p->segment) {
        return;
      }
    }
    out.push_back(std::move(*p));
  };
  add(FindPartitionPoint(root, PartitionScan{false, false}));
  add(FindPartitionPoint(root, PartitionScan{true, false}));
  add(FindPartitionPoint(root, PartitionScan{false, true}));
  add(FindPartitionPoint(root, PartitionScan{true, true}));
  return out;
}

namespace {

template <typename Emit>
uint64_t RunParallel(Evaluator& ev, const AlgebraOp& op,
                     const ParallelOptions& options, StreamStats* stream,
                     Emit&& emit) {
  xml::StoreReadLease lease(ev.store());
  ev.ClearCse();
  // Budget resolution mirrors DrainStreaming: an explicit option wins, the
  // NALQ_MEMORY_BUDGET_BYTES environment default applies otherwise. One
  // accountant carries the whole limit; the exchange's worker contexts
  // share it (MergeCursor::Open), so the consumer pipeline — which runs
  // every pipeline breaker — sees the full budget while the global bound
  // still holds across every participant.
  ParallelOptions eff = options;
  if (eff.memory_budget_bytes == 0) {
    eff.memory_budget_bytes = SpoolContext::EnvBudgetBytes();
  }
  std::optional<SpoolContext> consumer_spool;
  if (eff.memory_budget_bytes != 0) {
    eff.threads = ResolveBudgetedThreads(eff.threads, eff.memory_budget_bytes);
    consumer_spool.emplace(eff.memory_budget_bytes);
    consumer_spool->set_control(ev.control());
    if (eff.breaker_row_hints != nullptr) {
      consumer_spool->set_row_hints(eff.breaker_row_hints);
    }
  }
  // Placement: a resolved caller choice (the cost-driven chooser,
  // opt/parallel.h) is honored as-is; an unresolved run scans for itself —
  // breaker-extended only when the whole run is unlimited, because the
  // extended breakers (shared builds, routed Γ partitions) buffer in RAM.
  // Under a finite budget the legacy per-tuple segment keeps every breaker
  // on the consumer, where the spool layer bounds it.
  std::optional<PartitionPoint> point;
  if (eff.point_resolved) {
    point = eff.point;
  } else {
    const bool unlimited = eff.memory_budget_bytes == 0;
    point = FindPartitionPoint(op, PartitionScan{unlimited, unlimited});
  }
  Tuple env;
  ExecContext ctx{&ev, &env, stream,
                  consumer_spool.has_value() && consumer_spool->enabled()
                      ? &*consumer_spool
                      : nullptr};
  if (point.has_value() && point->injection() != nullptr) {
    ctx.exchange_op = point->injection();
    const PartitionPoint* pp = &*point;
    ctx.make_exchange = [pp, &eff](ExecContext& c) -> CursorPtr {
      if (pp->gamma != nullptr) {
        return std::make_unique<GammaExchangeCursor>(*pp, c, eff);
      }
      return std::make_unique<MergeCursor>(*pp, c, eff);
    };
  }
  CursorPtr root = MakeCursor(op, ctx);
  uint64_t count = 0;
  Tuple t;
  try {
    root->Open();
    while (root->Next(&t)) {
      emit(std::move(t));
      ++count;
    }
  } catch (...) {
    root->Close();
    throw;
  }
  root->Close();
  return count;
}

}  // namespace

uint64_t DrainParallel(Evaluator& ev, const AlgebraOp& op,
                       const ParallelOptions& options, StreamStats* stream) {
  return RunParallel(ev, op, options, stream, [](Tuple&&) {});
}

Sequence ExecuteParallel(Evaluator& ev, const AlgebraOp& op,
                         const ParallelOptions& options, StreamStats* stream) {
  Sequence out;
  RunParallel(ev, op, options, stream,
              [&out](Tuple&& t) { out.Append(std::move(t)); });
  return out;
}

}  // namespace nalq::nal
