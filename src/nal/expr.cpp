#include "nal/expr.h"

#include "nal/algebra.h"

namespace nalq::nal {

CmpOp NegateCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return CmpOp::kEq;
}

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool AggSpec::DependsOn(Symbol a) const {
  if (project == a) return true;
  if (filter != nullptr) {
    std::vector<Symbol> refs;
    CollectFreeAttrs(*filter, &refs);
    for (Symbol s : refs) {
      if (s == a) return true;
    }
  }
  return false;
}

AggSpec AggSpec::CloneSpec() const {
  AggSpec out = *this;
  if (filter != nullptr) out.filter = filter->Clone();
  return out;
}

std::string AggSpec::DebugString() const {
  std::string out;
  switch (kind) {
    case Kind::kId:
      out = "id";
      break;
    case Kind::kProjectItems:
      out = "Pi_" + std::string(project.str());
      break;
    case Kind::kCount:
      out = "count";
      break;
    case Kind::kMin:
      out = "min(" + std::string(project.str()) + ")";
      break;
    case Kind::kMax:
      out = "max(" + std::string(project.str()) + ")";
      break;
    case Kind::kSum:
      out = "sum(" + std::string(project.str()) + ")";
      break;
    case Kind::kAvg:
      out = "avg(" + std::string(project.str()) + ")";
      break;
  }
  if (filter != nullptr) out += " o sigma[" + filter->DebugString() + "]";
  return out;
}

AggSpec AggId() {
  AggSpec a;
  a.kind = AggSpec::Kind::kId;
  return a;
}

AggSpec AggProjectItems(Symbol attr) {
  AggSpec a;
  a.kind = AggSpec::Kind::kProjectItems;
  a.project = attr;
  return a;
}

AggSpec AggCount() {
  AggSpec a;
  a.kind = AggSpec::Kind::kCount;
  return a;
}

AggSpec AggOf(AggSpec::Kind kind, Symbol input) {
  AggSpec a;
  a.kind = kind;
  a.project = input;
  return a;
}

ExprPtr Expr::Clone() const {
  auto out = std::make_shared<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->attr = attr;
  out->cmp = cmp;
  out->fn = fn;
  out->path = path;
  out->quant = quant;
  out->quant_var = quant_var;
  out->agg = agg.CloneSpec();
  out->arith = arith;
  if (alg != nullptr) out->alg = alg->Clone();
  out->children.reserve(children.size());
  for (const ExprPtr& c : children) out->children.push_back(c->Clone());
  return out;
}

std::string Expr::DebugString() const {
  switch (kind) {
    case ExprKind::kConst:
      return literal.DebugString();
    case ExprKind::kAttrRef:
      return std::string(attr.str());
    case ExprKind::kCmp:
      return children[0]->DebugString() + " " + std::string(CmpOpName(cmp)) +
             " " + children[1]->DebugString();
    case ExprKind::kAnd:
      return "(" + children[0]->DebugString() + " and " +
             children[1]->DebugString() + ")";
    case ExprKind::kOr:
      return "(" + children[0]->DebugString() + " or " +
             children[1]->DebugString() + ")";
    case ExprKind::kNot:
      return "not(" + children[0]->DebugString() + ")";
    case ExprKind::kFnCall: {
      std::string out = fn + "(";
      bool first = true;
      for (const ExprPtr& c : children) {
        if (!first) out += ", ";
        out += c->DebugString();
        first = false;
      }
      return out + ")";
    }
    case ExprKind::kPath:
      return children[0]->DebugString() + "/" + path.ToString();
    case ExprKind::kNestedAlg:
      return "<alg:" + std::string(OpKindName(alg->kind)) + ">";
    case ExprKind::kBindTuples:
      return children[0]->DebugString() + "[" + std::string(attr.str()) + "]";
    case ExprKind::kQuant:
      return std::string(quant == QuantKind::kSome ? "some " : "every ") +
             std::string(quant_var.str()) + " in <alg> satisfies " +
             children[0]->DebugString();
    case ExprKind::kAgg:
      return agg.DebugString() + "(" + children[0]->DebugString() + ")";
    case ExprKind::kArith:
      return "(" + children[0]->DebugString() + " " +
             std::string(ArithOpName(arith)) + " " +
             children[1]->DebugString() + ")";
    case ExprKind::kCond:
      return "if (" + children[0]->DebugString() + ") then " +
             children[1]->DebugString() + " else " +
             children[2]->DebugString();
  }
  return "?";
}

ExprPtr MakeConst(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeAttrRef(Symbol a) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAttrRef;
  e->attr = a;
  return e;
}

ExprPtr MakeCmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCmp;
  e->cmp = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  if (lhs == nullptr) return rhs;
  if (rhs == nullptr) return lhs;
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAnd;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kOr;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr MakeNot(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->children = {std::move(inner)};
  return e;
}

ExprPtr MakeFnCall(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFnCall;
  e->fn = std::move(fn);
  e->children = std::move(args);
  return e;
}

ExprPtr MakePath(ExprPtr context, xml::Path path) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kPath;
  e->children = {std::move(context)};
  e->path = std::move(path);
  return e;
}

ExprPtr MakeNestedAlg(AlgebraPtr alg) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNestedAlg;
  e->alg = std::move(alg);
  return e;
}

ExprPtr MakeBindTuples(ExprPtr items, Symbol attr) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBindTuples;
  e->children = {std::move(items)};
  e->attr = attr;
  return e;
}

ExprPtr MakeQuant(QuantKind kind, Symbol var, AlgebraPtr range, ExprPtr pred) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kQuant;
  e->quant = kind;
  e->quant_var = var;
  e->alg = std::move(range);
  e->children = {std::move(pred)};
  return e;
}

ExprPtr MakeAgg(AggSpec spec, ExprPtr input) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAgg;
  e->agg = std::move(spec);
  e->children = {std::move(input)};
  return e;
}

std::string_view ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "div";
    case ArithOp::kMod:
      return "mod";
  }
  return "?";
}

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kArith;
  e->arith = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr MakeCond(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCond;
  e->children = {std::move(cond), std::move(then_e), std::move(else_e)};
  return e;
}

ExprPtr SubstituteAttr(const ExprPtr& e, Symbol from, Symbol to) {
  ExprPtr out = e->Clone();
  // Post-order walk replacing kAttrRef nodes in place.
  std::vector<Expr*> stack = {out.get()};
  while (!stack.empty()) {
    Expr* cur = stack.back();
    stack.pop_back();
    if (cur->kind == ExprKind::kAttrRef && cur->attr == from) {
      cur->attr = to;
    }
    if (cur->agg.filter != nullptr) stack.push_back(cur->agg.filter.get());
    if (cur->agg.project == from) cur->agg.project = to;
    for (const ExprPtr& c : cur->children) stack.push_back(c.get());
    // Nested algebra subtrees in translated plans never *bind* the variable
    // being substituted, but their subscripts may reference it.
    if (cur->alg != nullptr) {
      std::vector<AlgebraOp*> ops = {cur->alg.get()};
      while (!ops.empty()) {
        AlgebraOp* op = ops.back();
        ops.pop_back();
        for (const AlgebraPtr& c : op->children) ops.push_back(c.get());
        for (ExprPtr sub : {op->pred, op->expr}) {
          if (sub != nullptr) stack.push_back(sub.get());
        }
        if (op->agg.filter != nullptr) stack.push_back(op->agg.filter.get());
      }
    }
  }
  return out;
}

void CollectFreeAttrs(const Expr& e, std::vector<Symbol>* out) {
  if (e.kind == ExprKind::kAttrRef) {
    out->push_back(e.attr);
    return;
  }
  for (const ExprPtr& c : e.children) CollectFreeAttrs(*c, out);
  // Free attrs of nested algebra are handled by the analysis module, which
  // knows the algebra's own bound attributes; CollectFreeAttrs is the purely
  // syntactic helper.
}

}  // namespace nalq::nal
