// The NAL algebra operator IR (paper Sec. 2).
//
// Every operator is order-preserving and defined recursively on its input
// sequence; the evaluator (eval.h) implements those definitions directly and
// physical.h supplies equivalent hash-based algorithms for the `=` cases.
// Nested algebraic expressions occur in operator subscripts via expr.h.
#ifndef NALQ_NAL_ALGEBRA_H_
#define NALQ_NAL_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "nal/expr.h"
#include "nal/sequence.h"

namespace nalq::nal {

enum class OpKind : uint8_t {
  kSingleton,    ///< □ — singleton sequence of the empty tuple
  kSelect,       ///< σ_p
  kProject,      ///< Π variants: keep / drop / distinct / rename
  kMap,          ///< χ_{a:e}
  kUnnestMap,    ///< Υ_{a:e} = μ(χ_{g:e[a]})
  kUnnest,       ///< μ_g / μD_g
  kCross,        ///< ×
  kJoin,         ///< ⋈_p
  kSemiJoin,     ///< ⋉_p
  kAntiJoin,     ///< ▷_p
  kOuterJoin,    ///< left outer join with default for g
  kGroupUnary,   ///< Γ_{g;θA;f}
  kGroupBinary,  ///< e1 Γ_{g;A1θA2;f} e2 (nest-join)
  kSort,         ///< stable sort on attrs (order restoration)
  kXiSimple,     ///< Ξ_{commands} — result construction, identity + side effect
  kXiGroup,      ///< s1 Ξ^{s3}_{A;s2} — group-detecting result construction
};

std::string_view OpKindName(OpKind kind);

enum class ProjectMode : uint8_t {
  kKeep,      ///< Π_A
  kDrop,      ///< Π with overline: eliminate A
  kDistinct,  ///< ΠD_A — deterministic, idempotent, NOT order-preserving
              ///< (first-occurrence order, value-based after atomization)
};

/// One command of a Ξ operator: either a literal string copied to the output
/// or an expression (usually an attribute) whose value is rendered.
struct XiCommand {
  bool is_literal = true;
  std::string text;  // literal
  ExprPtr expr;      // rendered value

  static XiCommand Literal(std::string s) {
    XiCommand c;
    c.is_literal = true;
    c.text = std::move(s);
    return c;
  }
  static XiCommand Var(Symbol a) {
    XiCommand c;
    c.is_literal = false;
    c.expr = MakeAttrRef(a);
    return c;
  }
  static XiCommand Eval(ExprPtr e) {
    XiCommand c;
    c.is_literal = false;
    c.expr = std::move(e);
    return c;
  }
};

using XiProgram = std::vector<XiCommand>;

/// One algebra operator node. Like Expr, a tagged struct: the unnesting
/// rewriter pattern-matches and rebuilds these trees, which a flat
/// representation keeps straightforward.
struct AlgebraOp {
  OpKind kind = OpKind::kSingleton;
  std::vector<AlgebraPtr> children;

  ExprPtr pred;   ///< σ / joins
  Symbol attr;    ///< χ/Υ target, μ source, outer-join & Γ group attribute g
  ExprPtr expr;   ///< χ/Υ value; outer-join default (evaluated on empty env)

  // Π parameters.
  ProjectMode pmode = ProjectMode::kKeep;
  std::vector<Symbol> attrs;                       ///< Π_A / sort keys / Ξ A
  std::vector<std::pair<Symbol, Symbol>> renames;  ///< Π_{A':A}: (to, from)
  std::vector<uint8_t> sort_desc;  ///< Sort: per-key descending flags

  // Γ parameters.
  CmpOp theta = CmpOp::kEq;
  std::vector<Symbol> left_attrs;   ///< A1 (binary Γ) / A (unary Γ)
  std::vector<Symbol> right_attrs;  ///< A2
  AggSpec agg;

  // μ parameters.
  bool distinct = false;  ///< μD: value-dedup of the nested sequence
  bool outer = true;      ///< paper μ: ⊥-tuple on empty nested sequence

  // Ξ parameters.
  XiProgram s1, s2, s3;  ///< simple Ξ uses s1 only

  /// Common-subexpression id: operators sharing a non-negative cse_id are
  /// evaluated once per top-level Eval() (the "save scanning the same
  /// document twice" effect of Eqv. 8/9, Sec. 4). Only valid on
  /// env-independent subtrees.
  int cse_id = -1;

  AlgebraPtr Clone() const;
  const AlgebraPtr& child(size_t i) const { return children[i]; }
};

// ---- constructors -----------------------------------------------------

AlgebraPtr Singleton();
AlgebraPtr Select(ExprPtr pred, AlgebraPtr input);
AlgebraPtr ProjectKeep(std::vector<Symbol> attrs, AlgebraPtr input);
AlgebraPtr ProjectDrop(std::vector<Symbol> attrs, AlgebraPtr input);
AlgebraPtr ProjectDistinct(std::vector<Symbol> attrs, AlgebraPtr input);
/// Π_{A':A} — renames `from` attributes to `to` (pairs are (to, from)).
AlgebraPtr ProjectRename(std::vector<std::pair<Symbol, Symbol>> renames,
                         AlgebraPtr input);
AlgebraPtr Map(Symbol a, ExprPtr e, AlgebraPtr input);
AlgebraPtr UnnestMap(Symbol a, ExprPtr e, AlgebraPtr input);
AlgebraPtr Unnest(Symbol g, AlgebraPtr input, bool distinct = false,
                  bool outer = true);
AlgebraPtr Cross(AlgebraPtr lhs, AlgebraPtr rhs);
AlgebraPtr Join(ExprPtr pred, AlgebraPtr lhs, AlgebraPtr rhs);
AlgebraPtr SemiJoin(ExprPtr pred, AlgebraPtr lhs, AlgebraPtr rhs);
AlgebraPtr AntiJoin(ExprPtr pred, AlgebraPtr lhs, AlgebraPtr rhs);
/// Left outer join: unmatched left tuples get A(rhs)\{g} set to NULL and
/// g = `dflt` (evaluated without bindings).
AlgebraPtr OuterJoin(ExprPtr pred, Symbol g, ExprPtr dflt, AlgebraPtr lhs,
                     AlgebraPtr rhs);
AlgebraPtr GroupUnary(Symbol g, CmpOp theta, std::vector<Symbol> attrs,
                      AggSpec f, AlgebraPtr input);
AlgebraPtr GroupBinary(Symbol g, std::vector<Symbol> a1, CmpOp theta,
                       std::vector<Symbol> a2, AggSpec f, AlgebraPtr lhs,
                       AlgebraPtr rhs);
AlgebraPtr SortBy(std::vector<Symbol> attrs, AlgebraPtr input);
/// Sort with per-key direction (true = descending). `desc` may be shorter
/// than `attrs`; missing entries default to ascending.
AlgebraPtr SortByDir(std::vector<Symbol> attrs, std::vector<uint8_t> desc,
                     AlgebraPtr input);
AlgebraPtr XiSimple(XiProgram commands, AlgebraPtr input);
AlgebraPtr XiGroup(XiProgram s1, std::vector<Symbol> group_attrs, XiProgram s2,
                   XiProgram s3, AlgebraPtr input);

}  // namespace nalq::nal

#endif  // NALQ_NAL_ALGEBRA_H_
