// The NAL value domain.
//
// Attribute values are atomic values (null, boolean, integer, double,
// string), node handles pointing into stored documents (the paper restricts
// tree-valued attributes "to node handles pointing to nodes in trees stored
// in the database", Sec. 1), sequences of items (XPath results, let-bound
// item sequences) or nested sequences of tuples (group attributes created by
// Γ and χ).
#ifndef NALQ_NAL_VALUE_H_
#define NALQ_NAL_VALUE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "xml/node.h"

namespace nalq::xml {
class Store;
}  // namespace nalq::xml

namespace nalq::nal {

class Sequence;  // sequence of tuples (sequence.h)
class Value;

/// Sequence of items — the XQuery data model's flat item sequence, used for
/// XPath results and let-bound values before tuple construction (e[a]).
using ItemSeq = std::vector<Value>;

enum class ValueKind : uint8_t {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kNode,
  kItemSeq,
  kTupleSeq,
};

/// Immutable, cheaply copyable value (strings and sequences are shared).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(bool b) : rep_(b) {}
  explicit Value(int64_t i) : rep_(i) {}
  explicit Value(double d) : rep_(d) {}
  explicit Value(std::string s)
      : rep_(std::make_shared<const std::string>(std::move(s))) {}
  explicit Value(std::string_view s)
      : rep_(std::make_shared<const std::string>(s)) {}
  explicit Value(const char* s)
      : rep_(std::make_shared<const std::string>(s)) {}
  explicit Value(xml::NodeRef n) : rep_(n) {}
  /// Shares an existing string allocation (e.g. a document's memoized node
  /// string value) instead of copying it.
  explicit Value(std::shared_ptr<const std::string> s) : rep_(std::move(s)) {}
  explicit Value(std::shared_ptr<const ItemSeq> items)
      : rep_(std::move(items)) {}
  explicit Value(std::shared_ptr<const Sequence> tuples)
      : rep_(std::move(tuples)) {}

  static Value Null() { return Value(); }
  static Value FromItems(ItemSeq items);
  static Value FromTuples(Sequence tuples);

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_numeric() const {
    return kind() == ValueKind::kInt || kind() == ValueKind::kDouble;
  }
  bool is_sequence() const {
    return kind() == ValueKind::kItemSeq || kind() == ValueKind::kTupleSeq;
  }

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const {
    return *std::get<std::shared_ptr<const std::string>>(rep_);
  }
  xml::NodeRef AsNode() const { return std::get<xml::NodeRef>(rep_); }
  const ItemSeq& AsItems() const {
    return *std::get<std::shared_ptr<const ItemSeq>>(rep_);
  }
  const Sequence& AsTuples() const {
    return *std::get<std::shared_ptr<const Sequence>>(rep_);
  }
  std::shared_ptr<const Sequence> SharedTuples() const {
    return std::get<std::shared_ptr<const Sequence>>(rep_);
  }
  std::shared_ptr<const ItemSeq> SharedItems() const {
    return std::get<std::shared_ptr<const ItemSeq>>(rep_);
  }

  /// Number of items when viewed as a sequence; atomic values and nodes count
  /// as singletons, null as the empty sequence.
  size_t SequenceLength() const;

  /// Atomization: nodes become their string value, everything atomic stays.
  /// Sequences atomize item-wise (returned via out-param overload in expr).
  Value Atomize(const xml::Store& store) const;

  /// String conversion (atomizing nodes through `store`).
  std::string ToString(const xml::Store& store) const;

  /// Numeric conversion; nullopt if not convertible.
  std::optional<double> ToNumber(const xml::Store& store) const;

  /// Deep structural equality for *atomized* values (null==null). Used for
  /// grouping keys and result comparison; numeric values compare across
  /// int/double.
  bool Equals(const Value& other) const;

  /// Hash consistent with Equals for atomic values.
  size_t Hash() const;

  /// Total order over atomic values for deterministic output: nulls first,
  /// then bools, numbers, strings, nodes. Sequences compare by length then
  /// element-wise (only meaningful in tests).
  static std::strong_ordering Compare(const Value& a, const Value& b);

  /// Debug rendering without a store (nodes print as doc:id).
  std::string DebugString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double,
               std::shared_ptr<const std::string>, xml::NodeRef,
               std::shared_ptr<const ItemSeq>,
               std::shared_ptr<const Sequence>>
      rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const noexcept { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const noexcept {
    return a.Equals(b);
  }
};

/// Parses a string as a number if it looks like one (used when comparing
/// untyped XML text against numeric literals, e.g. @year > 1993).
std::optional<double> TryParseNumber(std::string_view s);

}  // namespace nalq::nal

#endif  // NALQ_NAL_VALUE_H_
