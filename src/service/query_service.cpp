#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <thread>
#include <utility>

#include "nal/env_knobs.h"
#include "obs/profile.h"

namespace nalq::service {

namespace {

using Clock = nal::QueryControl::Clock;

/// Queued waiters re-check cancellation/deadlines at this tick, so a
/// RequestCancel with no admission event still lands promptly.
constexpr auto kQueueTick = std::chrono::milliseconds(10);

/// Ceiling on the minimum admission grant: even a huge budget split across
/// few slots never demands more than this to admit (the spool layer makes
/// real progress at 64 KiB — it just spills a lot).
constexpr uint64_t kMinGrantCeilingBytes = 64 * 1024;

/// Headroom multiplier over the cost model's peak-resident estimate; the
/// estimate is a model, not a bound, and under-granting merely forces
/// spilling, so 2× keeps well-estimated queries resident without
/// reserving the whole budget for one of them.
constexpr uint64_t kFootprintHeadroom = 2;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

QueryService::QueryService(engine::Engine& engine, ServiceOptions options)
    : engine_(engine), options_(options) {
  using nal::EnvKnobU64;
  if (options_.memory_budget_bytes == 0) {
    options_.memory_budget_bytes = EnvKnobU64("NALQ_MEMORY_BUDGET_BYTES", 0);
  }
  if (options_.max_concurrent == 0) {
    options_.max_concurrent = static_cast<unsigned>(
        EnvKnobU64("NALQ_MAX_CONCURRENT", 0));
  }
  if (options_.max_concurrent == 0) {
    options_.max_concurrent = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.queue_depth == 0) {
    options_.queue_depth =
        static_cast<unsigned>(EnvKnobU64("NALQ_QUEUE_DEPTH", 16));
  }
  if (options_.queue_deadline_ms == 0) {
    options_.queue_deadline_ms = EnvKnobU64("NALQ_QUEUE_DEADLINE_MS", 1000);
  }
  if (options_.default_deadline_ms == 0) {
    options_.default_deadline_ms = nal::QueryControl::EnvDeadlineMs();
  }
  if (options_.slow_query_ms == 0) {
    options_.slow_query_ms = EnvKnobU64("NALQ_SLOW_QUERY_MS", 0);
  }
  if (options_.trace_dir.empty()) {
    options_.trace_dir = nal::EnvKnobString("NALQ_TRACE_DIR");
  }
  if (!options_.trace_dir.empty() &&
      !std::filesystem::is_directory(options_.trace_dir)) {
    throw engine::Error(engine::ErrorCode::kPlanError,
                        "malformed environment knob NALQ_TRACE_DIR=\"" +
                            options_.trace_dir + "\" (not a usable directory)",
                        0, options_.trace_dir, "query_service");
  }
  if (options_.store_dir.empty()) {
    options_.store_dir = engine::Engine::EnvStoreDir();
  }
  if (!options_.store_dir.empty() && engine_.store().size() == 0) {
    // Warm attach (cold start = the caller loading documents itself): the
    // persisted store backs the engine's store lazily, so the service is
    // queryable without re-parsing or materializing the corpus. Fails
    // closed here — a service configured against an unusable store should
    // not come up.
    engine_.AttachStore(options_.store_dir);
  }
  if (options_.slow_query_ms != 0) {
    if (options_.slow_query_log_path.empty()) {
      options_.slow_query_log_path =
          options_.trace_dir.empty()
              ? "nalq_slow_queries.jsonl"
              : options_.trace_dir + "/nalq_slow_queries.jsonl";
    }
    slow_log_ =
        std::make_unique<obs::SlowQueryLog>(options_.slow_query_log_path);
  }
  // Pre-register every metric family the service publishes so the
  // exposition is complete (all zeros) from the first scrape — a counter
  // that only appears once its event fires is indistinguishable from a
  // counter that doesn't exist.
  for (const char* name :
       {"nalq_queries_submitted_total", "nalq_queries_admitted_total",
        "nalq_queries_completed_total", "nalq_queries_failed_total",
        "nalq_queries_shed_total", "nalq_queries_degraded_total",
        "nalq_queries_cancelled_total", "nalq_queries_deadline_expired_total",
        "nalq_plan_cache_hits_total", "nalq_plan_cache_misses_total",
        "nalq_spill_bytes_total"}) {
    metrics_.GetCounter(name);
  }
  metrics_.GetGauge("nalq_plan_cache_hit_ratio");
  for (const char* name : {"nalq_queue_seconds", "nalq_run_seconds",
                           "nalq_query_seconds", "nalq_grant_bytes"}) {
    metrics_.GetHistogram(name);
  }
}

QueryService::~QueryService() { Drain(); }

uint64_t QueryService::Footprint(const engine::CompiledQuery& compiled) {
  if (compiled.estimates.empty()) return 0;
  // `best` is a copy of one alternative; the AlgebraPtr is shared, so
  // pointer identity recovers its index (estimates are parallel to
  // alternatives). Fall back to the cost winner.
  for (size_t i = 0; i < compiled.alternatives.size(); ++i) {
    if (compiled.alternatives[i].plan == compiled.best.plan &&
        i < compiled.estimates.size()) {
      return compiled.estimates[i].peak_breaker_bytes;
    }
  }
  if (compiled.cost_choice < compiled.estimates.size()) {
    return compiled.estimates[compiled.cost_choice].peak_breaker_bytes;
  }
  return 0;
}

std::shared_ptr<const engine::CompiledQuery> QueryService::CompileCached(
    const std::string& query_text, engine::PlanChoice choice,
    bool* cache_hit) {
  *cache_hit = false;
  const uint64_t version = engine_.store().version();
  // \x1f (unit separator) cannot appear in the enum digit, so the key is
  // collision-free.
  const std::string key =
      std::to_string(static_cast<int>(choice)) + '\x1f' + query_text;
  if (options_.plan_cache_capacity != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.store_version == version) {
      ++stats_.cache_hits;
      it->second.last_used = ++cache_tick_;
      *cache_hit = true;
      return it->second.compiled;
    }
    ++stats_.cache_misses;
  }
  // Compile outside the lock: compilation reads the store (a reader under
  // the single-writer contract) and can be slow; concurrent misses on the
  // same text just compile twice and the second insert wins.
  auto compiled = std::make_shared<const engine::CompiledQuery>(
      engine_.Compile(query_text, choice, options_.memory_budget_bytes));
  if (options_.plan_cache_capacity != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.size() >= options_.plan_cache_capacity &&
        cache_.find(key) == cache_.end()) {
      auto oldest = cache_.begin();
      for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (it->second.last_used < oldest->second.last_used) oldest = it;
      }
      cache_.erase(oldest);
    }
    cache_[key] = CacheEntry{compiled, version, ++cache_tick_};
  }
  return compiled;
}

QueryService::Admission QueryService::Admit(
    uint64_t footprint, unsigned requested_threads, nal::QueryControl* control,
    Clock::time_point queue_deadline) {
  Admission adm;
  const uint64_t budget = options_.memory_budget_bytes;

  // Grant size under the current ledger, or nullopt when inadmissible now.
  // Called with mu_ held.
  auto try_grant = [&](bool* degraded) -> bool {
    if (active_ >= options_.max_concurrent) return false;
    if (budget == 0) {
      adm.grant = 0;  // unlimited memory: concurrency cap only
      return true;
    }
    const uint64_t min_grant =
        std::min(kMinGrantCeilingBytes,
                 std::max<uint64_t>(budget / options_.max_concurrent, 1));
    const uint64_t cap = std::max(budget / 2, min_grant);
    const uint64_t scaled =
        footprint > cap / kFootprintHeadroom ? cap
                                             : footprint * kFootprintHeadroom;
    const uint64_t desired = std::clamp(scaled, min_grant, cap);
    const uint64_t free = budget - reserved_;
    if (free >= desired) {
      adm.grant = desired;
      return true;
    }
    if (free >= min_grant) {
      adm.grant = free;  // shrink before shed: admit with what's left
      *degraded = true;
      return true;
    }
    return false;
  };
  auto clamp_threads = [&](bool contended) -> unsigned {
    if (adm.degraded || contended) return 1;
    if (options_.max_threads_per_query == 0) return requested_threads;
    return requested_threads == 0
               ? options_.max_threads_per_query
               : std::min(requested_threads, options_.max_threads_per_query);
  };
  auto finish_admit = [&](std::unique_lock<std::mutex>& lock) {
    ++active_;
    reserved_ += adm.grant;
    adm.admitted = true;
    adm.threads = clamp_threads(!queue_.empty());
    ++stats_.admitted;
    if (adm.degraded) ++stats_.degraded;
    if (adm.queued) ++stats_.queued;
    stats_.peak_in_flight = std::max<uint64_t>(stats_.peak_in_flight, active_);
    stats_.peak_reserved_bytes =
        std::max(stats_.peak_reserved_bytes, reserved_);
    lock.unlock();
    cv_.notify_all();
  };

  std::unique_lock<std::mutex> lock(mu_);
  // Fast path: nothing ahead of us and a grant is available.
  if (queue_.empty() && try_grant(&adm.degraded)) {
    finish_admit(lock);
    return adm;
  }
  // Bounded queue: past the depth we shed instead of building an unbounded
  // convoy of blocked callers.
  if (queue_.size() >= options_.queue_depth) {
    ++stats_.rejected_queue_full;
    adm.reject_code = engine::ErrorCode::kAdmissionRejected;
    adm.reject_what = "admission queue full (depth " +
                      std::to_string(options_.queue_depth) + ")";
    return adm;
  }
  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  adm.queued = true;
  auto leave_queue = [&] {
    queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
    lock.unlock();
    cv_.notify_all();  // the next head may now be admissible
  };
  while (true) {
    // FIFO: only the head may take a grant — no overtaking, so a large
    // query at the head degrades (or times out) instead of starving.
    if (queue_.front() == ticket && try_grant(&adm.degraded)) {
      queue_.pop_front();
      finish_admit(lock);
      return adm;
    }
    const auto now = Clock::now();
    if (control != nullptr && control->cancel_requested()) {
      ++stats_.cancelled;
      adm.reject_code = engine::ErrorCode::kCancelled;
      adm.reject_what = "cancelled while queued for admission";
      leave_queue();
      return adm;
    }
    if (control != nullptr && control->has_deadline() &&
        now >= control->deadline()) {
      ++stats_.deadline_expired;
      adm.reject_code = engine::ErrorCode::kDeadlineExceeded;
      adm.reject_what = "deadline expired while queued for admission";
      leave_queue();
      return adm;
    }
    if (now >= queue_deadline) {
      ++stats_.rejected_queue_deadline;
      adm.reject_code = engine::ErrorCode::kAdmissionRejected;
      adm.reject_what = "admission queue deadline (" +
                        std::to_string(options_.queue_deadline_ms) +
                        " ms) expired";
      leave_queue();
      return adm;
    }
    cv_.wait_until(lock, now + kQueueTick);
  }
}

void QueryService::Release(uint64_t grant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    reserved_ -= grant;
  }
  cv_.notify_all();
}

QueryResult QueryService::Execute(const std::string& query_text,
                                  QueryOptions q) {
  QueryResult r;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }
  metrics_.GetCounter("nalq_queries_submitted_total").Add();
  const auto submit_time = Clock::now();
  // One trace log per query when tracing is on: its spans cover the whole
  // lifecycle — compile, admission wait, the engine's execute span and the
  // exchange's per-worker spans — and it is written as one Chrome
  // trace_event file per query at the end (including shed/failed queries:
  // those traces are the interesting ones).
  std::optional<obs::TraceLog> trace;
  if (!options_.trace_dir.empty()) trace.emplace();
  obs::TraceLog* trace_ptr = trace.has_value() ? &*trace : nullptr;
  auto write_trace = [&] {
    if (trace.has_value()) {
      trace->WriteFile(options_.trace_dir, "nalq-query");
    }
  };

  std::shared_ptr<const engine::CompiledQuery> compiled;
  try {
    obs::TraceLog::Span span(trace_ptr, "compile");
    compiled = CompileCached(query_text, q.choice, &r.cache_hit);
  } catch (const engine::Error& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failed;
    }
    metrics_.GetCounter("nalq_queries_failed_total").Add();
    r.error_code = e.code();
    r.error_what = e.what();
    write_trace();
    return r;
  } catch (const std::exception& e) {
    // Parse/translate errors surface as std::runtime_error; the service
    // contract is structured results, so fold them into the plan-error
    // bucket rather than throwing at a concurrent caller.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failed;
    }
    metrics_.GetCounter("nalq_queries_failed_total").Add();
    r.error_code = engine::ErrorCode::kPlanError;
    r.error_what = e.what();
    write_trace();
    return r;
  }
  metrics_
      .GetCounter(r.cache_hit ? "nalq_plan_cache_hits_total"
                              : "nalq_plan_cache_misses_total")
      .Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double lookups =
        static_cast<double>(stats_.cache_hits + stats_.cache_misses);
    if (lookups > 0) {
      metrics_.GetGauge("nalq_plan_cache_hit_ratio")
          .Set(static_cast<double>(stats_.cache_hits) / lookups);
    }
  }

  // One deadline spans queue wait + run: arm the token now, before
  // admission can block. Engine::Run sees the armed token and leaves it
  // alone (it only applies the environment default to bare tokens).
  nal::QueryControl local_control;
  nal::QueryControl* control = q.control != nullptr ? q.control
                                                    : &local_control;
  const uint64_t deadline_ms =
      q.deadline_ms != 0 ? q.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms != 0) control->SetDeadlineMs(deadline_ms);

  const auto queue_deadline =
      submit_time + std::chrono::milliseconds(options_.queue_deadline_ms);
  Admission adm;
  {
    obs::TraceLog::Span span(trace_ptr, "admit");
    adm = Admit(Footprint(*compiled), q.threads, control, queue_deadline);
  }
  const auto admit_time = Clock::now();
  r.queued = adm.queued;
  r.degraded = adm.degraded;
  r.queue_seconds = Seconds(submit_time, admit_time);
  metrics_.GetHistogram("nalq_queue_seconds").Observe(r.queue_seconds);
  if (!adm.admitted) {
    switch (adm.reject_code) {
      case engine::ErrorCode::kCancelled:
        metrics_.GetCounter("nalq_queries_cancelled_total").Add();
        break;
      case engine::ErrorCode::kDeadlineExceeded:
        metrics_.GetCounter("nalq_queries_deadline_expired_total").Add();
        break;
      default:
        metrics_.GetCounter("nalq_queries_shed_total").Add();
        break;
    }
    r.error_code = adm.reject_code;
    r.error_what = std::move(adm.reject_what);
    write_trace();
    return r;
  }
  r.threads_granted = adm.threads;
  r.budget_granted = adm.grant;
  metrics_.GetCounter("nalq_queries_admitted_total").Add();
  if (adm.degraded) metrics_.GetCounter("nalq_queries_degraded_total").Add();
  metrics_.GetHistogram("nalq_grant_bytes")
      .Observe(static_cast<double>(adm.grant));

  // Profiling is on when the caller asked, when NALQ_PROFILE=1 (the engine
  // ORs that in), or when a slow-query threshold is armed — the profile
  // must already exist by the time the threshold trips.
  engine::RunInstrumentation instr;
  instr.profile = q.profile || options_.slow_query_ms != 0;
  instr.trace = trace_ptr;
  try {
    engine::RunResult run = engine_.Run(compiled->best.plan, q.mode,
                                        q.path_mode, adm.threads, adm.grant,
                                        /*deadline_ms=*/0, control, &instr);
    r.ok = true;
    r.output = std::move(run.output);
    r.stats = run.stats;
    r.profile_json = run.profile.ToJson();
    metrics_.GetCounter("nalq_queries_completed_total").Add();
    metrics_.GetCounter("nalq_spill_bytes_total")
        .Add(run.stats.spill.spilled_bytes);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
  } catch (const engine::Error& e) {
    r.error_code = e.code();
    r.error_what = e.what();
    switch (e.code()) {
      case engine::ErrorCode::kCancelled:
        metrics_.GetCounter("nalq_queries_cancelled_total").Add();
        break;
      case engine::ErrorCode::kDeadlineExceeded:
        metrics_.GetCounter("nalq_queries_deadline_expired_total").Add();
        break;
      default:
        metrics_.GetCounter("nalq_queries_failed_total").Add();
        break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    switch (e.code()) {
      case engine::ErrorCode::kCancelled:
        ++stats_.cancelled;
        break;
      case engine::ErrorCode::kDeadlineExceeded:
        ++stats_.deadline_expired;
        break;
      default:
        ++stats_.failed;
        break;
    }
  } catch (const std::exception& e) {
    r.error_code = engine::ErrorCode::kPlanError;
    r.error_what = e.what();
    metrics_.GetCounter("nalq_queries_failed_total").Add();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
  }
  Release(adm.grant);
  const auto end_time = Clock::now();
  r.run_seconds = Seconds(admit_time, end_time);
  const double total_seconds = Seconds(submit_time, end_time);
  metrics_.GetHistogram("nalq_run_seconds").Observe(r.run_seconds);
  metrics_.GetHistogram("nalq_query_seconds").Observe(total_seconds);
  if (slow_log_ != nullptr &&
      total_seconds * 1000.0 >= static_cast<double>(options_.slow_query_ms)) {
    // One JSON line per slow query, profile embedded verbatim (it is
    // already a JSON object; "null" when the run never started or
    // profiling was somehow off).
    std::string line = "{\"query\":" + obs::JsonQuote(query_text) +
                       ",\"ok\":" + (r.ok ? "true" : "false") +
                       ",\"total_seconds\":" + std::to_string(total_seconds) +
                       ",\"queue_seconds\":" + std::to_string(r.queue_seconds) +
                       ",\"run_seconds\":" + std::to_string(r.run_seconds) +
                       ",\"profile\":" +
                       (r.profile_json.empty() ? "null" : r.profile_json) + "}";
    slow_log_->Append(line);
  }
  write_trace();
  return r;
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return active_ == 0 && queue_.empty(); });
}

void QueryService::InvalidateCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

unsigned QueryService::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

uint64_t QueryService::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

}  // namespace nalq::service
