// Concurrent query service: admission control, graceful overload
// degradation, and plan caching over the single-query Engine façade.
//
// The paper's experiments run one query at a time inside Natix; a real
// embedding serves many clients against one store and one memory budget.
// QueryService is that front-end. It owns nothing the Engine doesn't
// already have — it partitions the global MemoryBudget across in-flight
// queries, shares the process-wide scheduler pool, and composes the
// lifecycle primitives (QueryControl deadlines/cancellation, spool-backed
// spilling, structured engine::Error) into a thread-safe Execute() that
// never OOMs and never crashes under overload. Overload degrades in a
// fixed ladder (see "Admission" below): first new queries lose budget
// headroom (forcing them to spill) and parallelism, then they queue, and
// only then are they shed with ErrorCode::kAdmissionRejected.
//
// Threading model. Execute() is safe from any number of threads. A query
// runs on its caller's thread after admission — the service adds no runner
// pool of its own; parallelism inside a run still comes from the one
// process-wide work-stealing scheduler (nal/scheduler.h), bounded per
// query by the granted worker cap. Admission state (the reservation
// ledger, the FIFO queue, the plan cache) lives behind one mutex; waits
// tick every ~10ms so a queued query observes RequestCancel and deadline
// expiry promptly.
//
// Admission. Each submission is compiled first (a cache hit makes this
// free) and its cost-model footprint — the best plan's
// PlanEstimate::peak_breaker_bytes — asks the ledger for a budget grant:
//
//   min_grant = min(64 KiB, max(B / max_concurrent, 1))      B = budget
//   desired   = clamp(2 × footprint, min_grant, max(B/2, min_grant))
//
//   free >= desired     -> admit with the full grant
//   free >= min_grant   -> admit with `free` (degraded: the shrunken
//                          grant forces the run to spill instead of
//                          keeping its breakers resident — shrink before
//                          shed)
//   otherwise           -> queue, FIFO, up to queue_depth deep
//
// The ledger invariant Σ grants ≤ B holds at every instant, so the
// aggregate resident memory of all admitted queries never exceeds the
// global budget (each run gets a private accountant of exactly its grant).
// B = 0 means unlimited memory: admission bounds concurrency only.
// Queued submissions are admitted in FIFO order (no overtaking); a
// submission that would exceed queue_depth, or that waits past its queue
// deadline, is shed with kAdmissionRejected — a structured result, never
// an exception, never an OOM. Degraded admissions also drop to one worker
// thread, as do admissions made while anyone queues behind them.
//
// Deadlines compose with queue time: the effective deadline (per-query
// option, else the service default, else NALQ_DEADLINE_MS) is armed on the
// run's QueryControl token at submission, so one budget of milliseconds
// covers wait + run. A caller deadline that expires while queued returns
// kDeadlineExceeded; the queue deadline (a service policy, default 1 s)
// returns kAdmissionRejected; RequestCancel while queued returns
// kCancelled. Engine::Run never re-arms a token that already carries a
// deadline, so the environment default cannot silently refund queue time.
//
// Plan cache. Keyed on (query text, plan choice) and validated against
// Store::version() — every AddDocument / RegisterDtd bumps the version
// through the single-writer contract, so a hit is provably compiled
// against the current documents and statistics. Entries hold the full
// CompiledQuery by shared_ptr (concurrent hits share it; Engine::Run only
// reads the plan). Capacity-bounded, least-recently-used eviction.
// Compilation uses the service-wide budget (not the per-query grant) so
// cost-based plan choice is deterministic across admissions and the cache
// key stays budget-free.
//
// Store writes. Loading documents is NOT serialized by the service: the
// store's single-writer contract stands. Load through engine().AddDocument
// before serving, or Drain() first; Debug builds assert on violation
// exactly as before.
#ifndef NALQ_SERVICE_QUERY_SERVICE_H_
#define NALQ_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/engine.h"
#include "engine/error.h"
#include "nal/query_control.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nalq::service {

/// Service-wide policy. Fields left at 0 resolve, in order, to the named
/// environment knob and then the built-in default (resolution happens once
/// in the constructor; malformed knob text throws engine::Error(kPlanError)
/// — see nal/env_knobs.h).
struct ServiceOptions {
  /// Global memory budget partitioned across in-flight queries.
  /// 0 -> NALQ_MEMORY_BUDGET_BYTES -> unlimited.
  uint64_t memory_budget_bytes = 0;
  /// Maximum queries running at once. 0 -> NALQ_MAX_CONCURRENT ->
  /// hardware_concurrency.
  unsigned max_concurrent = 0;
  /// Maximum queued (admitted-pending) submissions beyond the running set;
  /// a submission past this depth is shed immediately.
  /// 0 -> NALQ_QUEUE_DEPTH -> 16.
  unsigned queue_depth = 0;
  /// How long a submission may wait in the queue before it is shed with
  /// kAdmissionRejected. 0 -> NALQ_QUEUE_DEADLINE_MS -> 1000.
  uint64_t queue_deadline_ms = 0;
  /// Worker-thread cap per query under ExecMode::kParallel (degraded and
  /// contended admissions are further forced to 1). 0 = the engine's own
  /// default (one per hardware core, budget-clamped by the exchange).
  unsigned max_threads_per_query = 0;
  /// Deadline applied to queries that don't carry their own.
  /// 0 -> NALQ_DEADLINE_MS -> none.
  uint64_t default_deadline_ms = 0;
  /// Plan-cache capacity in entries; 0 disables caching.
  size_t plan_cache_capacity = 64;
  /// Persisted store directory to warm-attach at construction
  /// (Engine::AttachStore: documents page in lazily instead of being
  /// re-parsed from text; see src/storage/README.md). Only applied when
  /// the engine's store is still empty — an engine already holding
  /// documents keeps them. Empty -> NALQ_STORE_DIR -> no attach. A
  /// missing, corrupt or foreign-version store fails construction with
  /// the structured store error (kStoreIo / kStoreCorrupt /
  /// kStoreVersionMismatch) — fail closed at startup, not at first query.
  std::string store_dir;

  // ---- observability (src/obs/) ------------------------------------------
  /// Queries whose end-to-end latency (queue wait + run) reaches this many
  /// milliseconds are appended — with their full per-operator profile — to
  /// the slow-query log. Arming this implies profiling for every query, so
  /// the profile is there when the threshold trips.
  /// 0 -> NALQ_SLOW_QUERY_MS -> off.
  uint64_t slow_query_ms = 0;
  /// Directory for per-query Chrome trace_event JSON files (one file per
  /// query, covering submit -> compile -> admit -> execute plus per-worker
  /// exchange spans). Must exist. Empty -> NALQ_TRACE_DIR -> tracing off.
  std::string trace_dir;
  /// Slow-query log file (JSON lines). Empty -> `<trace_dir>/
  /// nalq_slow_queries.jsonl`, or `./nalq_slow_queries.jsonl` when tracing
  /// is off. Only used when slow_query_ms is armed.
  std::string slow_query_log_path;
};

/// Per-submission options.
struct QueryOptions {
  engine::ExecMode mode = engine::ExecMode::kStreaming;
  engine::PathMode path_mode = engine::PathMode::kIndexed;
  engine::PlanChoice choice = engine::PlanChoice::kCost;
  /// Requested worker threads (parallel mode); clamped by the service.
  unsigned threads = 0;
  /// Deadline covering queue wait + run; 0 = the service default.
  uint64_t deadline_ms = 0;
  /// Caller-owned cancellation token, honored while queued and while
  /// running; must outlive Execute(). Null = the service uses its own.
  nal::QueryControl* control = nullptr;
  /// Collect a per-operator profile for this query (QueryResult::
  /// profile_json). Never changes the output bytes; also switched on
  /// globally by NALQ_PROFILE=1 or by arming ServiceOptions::slow_query_ms.
  bool profile = false;
};

/// Structured outcome. Failures are results, not exceptions: Execute()
/// only throws for misuse the engine would also throw for on a serial run
/// (e.g. a malformed environment knob at construction).
struct QueryResult {
  bool ok = false;
  std::string output;       ///< byte-identical to a serial Engine run
  nal::EvalStats stats;     ///< meaningful when ok

  /// Failure taxonomy (meaningful when !ok).
  engine::ErrorCode error_code = engine::ErrorCode::kPlanError;
  std::string error_what;   ///< full engine::Error::what() text

  // Admission diagnostics (always filled).
  bool cache_hit = false;   ///< plan came from the cache
  bool queued = false;      ///< waited in the admission queue
  bool degraded = false;    ///< shrunken budget grant and/or forced serial
  unsigned threads_granted = 0;   ///< 0 = engine default
  uint64_t budget_granted = 0;    ///< private accountant limit; 0 = unlimited
  double queue_seconds = 0.0;
  double run_seconds = 0.0;

  /// Per-operator profile tree as JSON (obs::QueryProfile::ToJson); empty
  /// unless profiling was on for this query (QueryOptions::profile,
  /// NALQ_PROFILE=1, or an armed slow-query threshold) and the run started.
  std::string profile_json;
};

/// Monotonic service counters (snapshot; see QueryService::stats()).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;        ///< actually started running
  uint64_t completed = 0;       ///< ran to success
  uint64_t failed = 0;          ///< ran and raised (spool fault, ...)
  uint64_t rejected_queue_full = 0;      ///< shed at submission
  uint64_t rejected_queue_deadline = 0;  ///< shed while waiting
  uint64_t cancelled = 0;       ///< kCancelled (queued or running)
  uint64_t deadline_expired = 0;///< kDeadlineExceeded (queued or running)
  uint64_t degraded = 0;        ///< admitted with a shrunken grant
  uint64_t queued = 0;          ///< admissions that waited at all
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t peak_in_flight = 0;
  uint64_t peak_reserved_bytes = 0;
  /// rejected_queue_full + rejected_queue_deadline.
  uint64_t shed() const {
    return rejected_queue_full + rejected_queue_deadline;
  }
};

class QueryService {
 public:
  /// `engine` must outlive the service. Resolves every 0-valued option
  /// from the environment (throws engine::Error(kPlanError) on malformed
  /// knob text, naming the variable and the offending value).
  explicit QueryService(engine::Engine& engine, ServiceOptions options = {});
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Compiles (or cache-hits), admits, runs, and returns a structured
  /// result. Blocking; safe from any number of threads concurrently.
  QueryResult Execute(const std::string& query_text, QueryOptions q = {});

  /// Blocks until no query is running or queued. With the ledger invariant
  /// this is the quiescent point where reserved_bytes() == 0 and the spool
  /// layer has deleted every temp file (asserted by tests/service_test.cpp).
  void Drain();

  /// Drops every cached plan (version mismatches already self-invalidate;
  /// this reclaims the memory too).
  void InvalidateCache();

  engine::Engine& engine() { return engine_; }
  const ServiceOptions& options() const { return options_; }
  ServiceStats stats() const;

  /// The service's metrics registry (live; updated by every Execute).
  /// Families: nalq_queue_seconds / nalq_run_seconds / nalq_query_seconds /
  /// nalq_grant_bytes histograms, nalq_queries_*_total outcome counters,
  /// nalq_plan_cache_{hits,misses}_total + nalq_plan_cache_hit_ratio, and
  /// nalq_spill_bytes_total (see src/obs/README.md).
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Prometheus text exposition of every registered metric.
  std::string MetricsText() const { return metrics_.PrometheusText(); }
  /// The same data as one JSON object.
  std::string MetricsJson() const { return metrics_.Json(); }
  /// Currently admitted (running) queries.
  unsigned in_flight() const;
  /// Sum of outstanding budget grants (≤ options().memory_budget_bytes).
  uint64_t reserved_bytes() const;

 private:
  struct CacheEntry {
    std::shared_ptr<const engine::CompiledQuery> compiled;
    uint64_t store_version = 0;
    uint64_t last_used = 0;  ///< LRU tick
  };
  struct Admission {
    bool admitted = false;
    bool degraded = false;
    bool queued = false;
    uint64_t grant = 0;
    unsigned threads = 0;
    engine::ErrorCode reject_code = engine::ErrorCode::kAdmissionRejected;
    std::string reject_what;
  };

  std::shared_ptr<const engine::CompiledQuery> CompileCached(
      const std::string& query_text, engine::PlanChoice choice,
      bool* cache_hit);
  /// Footprint of `compiled.best` per the cost model (0 when estimates are
  /// unavailable — the plan is then admitted at min_grant).
  static uint64_t Footprint(const engine::CompiledQuery& compiled);
  Admission Admit(uint64_t footprint, unsigned requested_threads,
                  nal::QueryControl* control,
                  nal::QueryControl::Clock::time_point queue_deadline);
  void Release(uint64_t grant);

  engine::Engine& engine_;
  ServiceOptions options_;  ///< fully resolved (no zeros with env defaults)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  unsigned active_ = 0;
  uint64_t reserved_ = 0;
  uint64_t next_ticket_ = 0;
  std::deque<uint64_t> queue_;  ///< FIFO of waiting tickets

  std::unordered_map<std::string, CacheEntry> cache_;
  uint64_t cache_tick_ = 0;

  ServiceStats stats_;  ///< guarded by mu_

  /// Internally thread-safe (atomic instruments); not guarded by mu_.
  mutable obs::MetricsRegistry metrics_;
  /// Non-null iff slow_query_ms is armed; internally mutex-guarded.
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
};

}  // namespace nalq::service

#endif  // NALQ_SERVICE_QUERY_SERVICE_H_
