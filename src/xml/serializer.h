// Serializes document subtrees back to XML text. Used by result construction
// (copying selected subtrees to the output stream) and by tests.
#ifndef NALQ_XML_SERIALIZER_H_
#define NALQ_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace nalq::xml {

struct SerializeOptions {
  bool indent = false;       ///< pretty-print with two-space indentation
  int indent_level = 0;      ///< starting depth when indenting
};

/// Serializes the subtree rooted at `id` (element, text or attribute node).
/// Attribute nodes serialize as their value text.
std::string Serialize(const Document& doc, NodeId id,
                      const SerializeOptions& options = {});

/// Appends the serialization of `id` to `out`.
void SerializeTo(const Document& doc, NodeId id, std::string* out,
                 const SerializeOptions& options = {});

/// Serializes the whole document (children of the document node).
std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options = {});

}  // namespace nalq::xml

#endif  // NALQ_XML_SERIALIZER_H_
