// Per-document cardinality statistics for the cost-based optimizer
// (src/opt/): how many elements/attributes each name has, how parent and
// child names fan out, and how many distinct values the leaf elements and
// attributes carry.
//
// Everything is derived in one pass from the node vector plus the
// occurrence-list index (index.h) — the structural numbering makes the
// ancestor walk a stack of [pre, pre+size) extents. Statistics are owned,
// cached and invalidated by the Store exactly like the index (store.h):
// built lazily on first use, dropped when the document is replaced or
// mutated.
//
// The counts are exact for the document state at build time; the optimizer
// treats them as estimates anyway (a plan choice survives slightly stale
// statistics, it just gets a little worse).
#ifndef NALQ_XML_STATS_H_
#define NALQ_XML_STATS_H_

#include <cstdint>
#include <unordered_map>

#include "xml/index.h"
#include "xml/node.h"

namespace nalq::storage {
class StoreCodec;
}

namespace nalq::xml {

class DocumentStats {
 public:
  /// Builds the statistics with one pass over `doc`'s node vector (the
  /// index supplies the per-name occurrence lists for the value scans).
  DocumentStats(const Document& doc, const DocumentIndex& index);

  // ---- totals ------------------------------------------------------------
  uint64_t element_count() const { return element_count_; }
  uint64_t attribute_count() const { return attribute_count_; }
  uint64_t text_node_count() const { return text_node_count_; }

  // ---- per-name occurrence counts ---------------------------------------
  /// Number of elements named `name_id` in the whole document — the exact
  /// cardinality of the //name step from the document root.
  uint64_t ElementCount(uint32_t name_id) const;
  uint64_t AttributeCount(uint32_t name_id) const;

  // ---- fan-out -----------------------------------------------------------
  /// Number of parent→child element edges (parent named `parent_name`,
  /// child named `child_name`) — the exact cardinality of the child step
  /// `child_name` summed over every `parent_name` context.
  uint64_t ChildEdges(uint32_t parent_name, uint32_t child_name) const;
  /// Number of `parent_name` elements with at least one `child_name` child
  /// (selectivity of "has a `child_name`" predicates).
  uint64_t ParentsWithChild(uint32_t parent_name, uint32_t child_name) const;
  /// Σ over elements named `anc_name` of the `desc_name` elements in their
  /// subtree — the exact cardinality of the descendant step `//desc_name`
  /// summed over every `anc_name` context (nested same-name ancestors count
  /// their descendants once per enclosing context, mirroring evaluation).
  uint64_t DescendantEdges(uint32_t anc_name, uint32_t desc_name) const;
  /// Number of `attr_name` attributes attached to elements named
  /// `elem_name` (cardinality of the @attr step).
  uint64_t AttrEdges(uint32_t elem_name, uint32_t attr_name) const;

  // ---- distinct values ---------------------------------------------------
  /// Distinct string values of the elements named `name_id`. Exact for leaf
  /// elements (no element children — the ones equality predicates compare);
  /// for non-leaf elements the value scan is skipped and every occurrence
  /// is assumed distinct.
  uint64_t DistinctElementValues(uint32_t name_id) const;
  /// Distinct values of the attributes named `name_id`.
  uint64_t DistinctAttrValues(uint32_t name_id) const;

  /// The document's node count at build time; the Store rebuilds stale
  /// statistics the same way it rebuilds a stale index.
  size_t built_node_count() const { return built_node_count_; }

 private:
  /// Persistence codec (src/storage/): serializes and reconstructs the
  /// count maps directly, bypassing the build pass. The deserializing path
  /// is the only user of the default constructor.
  friend class nalq::storage::StoreCodec;
  DocumentStats() = default;

  static uint64_t PairKey(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  static uint64_t FindOr0(const std::unordered_map<uint64_t, uint64_t>& m,
                          uint64_t key) {
    auto it = m.find(key);
    return it == m.end() ? 0 : it->second;
  }

  uint64_t element_count_ = 0;
  uint64_t attribute_count_ = 0;
  uint64_t text_node_count_ = 0;
  std::unordered_map<uint32_t, uint64_t> elements_;
  std::unordered_map<uint32_t, uint64_t> attributes_;
  std::unordered_map<uint64_t, uint64_t> child_edges_;
  std::unordered_map<uint64_t, uint64_t> parents_with_child_;
  std::unordered_map<uint64_t, uint64_t> desc_edges_;
  std::unordered_map<uint64_t, uint64_t> attr_edges_;
  std::unordered_map<uint32_t, uint64_t> distinct_element_values_;
  std::unordered_map<uint32_t, uint64_t> distinct_attr_values_;
  size_t built_node_count_ = 0;
};

}  // namespace nalq::xml

#endif  // NALQ_XML_STATS_H_
