#include "xml/node.h"

namespace nalq::xml {

Document::Document(std::string name)
    : name_(std::move(name)),
      string_value_cache_(std::make_unique<StringValueCache>()) {
  Node doc;
  doc.kind = NodeKind::kDocument;
  doc.subtree_end = 1;
  nodes_.push_back(doc);
}

NodeId Document::NewNode(NodeKind kind, NodeId parent) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  // Depth-first construction means every append targets the rightmost open
  // node, whose extent currently ends exactly at the new id. Appending
  // anywhere else would silently corrupt the structural numbering (an
  // ancestor's extent would swallow its later siblings), so fail fast in
  // Debug builds rather than let indexed path evaluation return wrong
  // results.
  assert(parent == kNoNode || nodes_[parent].subtree_end == id);
  Node n;
  n.kind = kind;
  n.parent = parent;
  n.subtree_end = id + 1;
  nodes_.push_back(n);
  // Extending every ancestor's extent over the new node keeps all subtree
  // extents contiguous — the [pre, pre+size) structural numbering. O(depth)
  // per append (the same depth the building recursion already carries);
  // the paper's documents are a handful of levels deep.
  for (NodeId a = parent; a != kNoNode; a = nodes_[a].parent) {
    nodes_[a].subtree_end = id + 1;
  }
  return id;
}

void Document::AppendChild(NodeId parent, NodeId child) {
  Node& p = nodes_[parent];
  if (p.first_child == kNoNode) {
    p.first_child = child;
  } else {
    nodes_[p.last_child].next_sibling = child;
  }
  p.last_child = child;
}

NodeId Document::AddElement(NodeId parent, std::string_view tag) {
  NodeId id = NewNode(NodeKind::kElement, parent);
  nodes_[id].name = names_.Intern(tag);
  AppendChild(parent, id);
  return id;
}

NodeId Document::AddText(NodeId parent, std::string_view text) {
  NodeId id = NewNode(NodeKind::kText, parent);
  nodes_[id].text = static_cast<uint32_t>(texts_.size());
  texts_.emplace_back(text);
  AppendChild(parent, id);
  return id;
}

NodeId Document::AddAttribute(NodeId element, std::string_view name,
                              std::string_view value) {
  assert(nodes_[element].kind == NodeKind::kElement);
  NodeId id = NewNode(NodeKind::kAttribute, element);
  nodes_[id].name = names_.Intern(name);
  nodes_[id].text = static_cast<uint32_t>(texts_.size());
  texts_.emplace_back(value);
  // Chain onto the element's attribute list (order of declaration).
  Node& el = nodes_[element];
  if (el.first_attr == kNoNode) {
    el.first_attr = id;
  } else {
    NodeId a = el.first_attr;
    while (nodes_[a].next_sibling != kNoNode) a = nodes_[a].next_sibling;
    nodes_[a].next_sibling = id;
  }
  return id;
}

std::string Document::StringValue(NodeId id) const {
  const Node& n = nodes_[id];
  if (n.kind == NodeKind::kText || n.kind == NodeKind::kAttribute) {
    return std::string(texts_[n.text]);
  }
  // Element/document: concatenate text of all descendants, in order.
  // Allocation-free pre-order walk via the child/sibling chains (ids are in
  // document order but the chain walk is robust even if they were not).
  std::string out;
  NodeId cur = n.first_child;
  while (cur != kNoNode) {
    const Node& c = nodes_[cur];
    if (c.kind == NodeKind::kText) {
      out += texts_[c.text];
    }
    NodeId child =
        c.kind == NodeKind::kElement ? c.first_child : kNoNode;
    if (child != kNoNode) {
      cur = child;
      continue;
    }
    while (cur != kNoNode) {
      NodeId sibling = nodes_[cur].next_sibling;
      if (sibling != kNoNode) {
        cur = sibling;
        break;
      }
      NodeId parent = nodes_[cur].parent;
      cur = parent == id ? kNoNode : parent;
    }
  }
  return out;
}

void Document::PrepareSharedReads() const {
  StringValueCache& cache = *string_value_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.slots.size() < nodes_.size()) cache.slots.resize(nodes_.size());
}

std::shared_ptr<const std::string> Document::SharedStringValue(
    NodeId id) const {
  StringValueCache& cache = *string_value_cache_;
  if (cache.slots.size() <= id) {
    // Lazy growth for documents used outside a Store (single-threaded by
    // the xml/store.h contract; store-held documents are pre-sized at load
    // time and at every StoreReadLease boundary, so they never take this
    // relocating branch while concurrent readers exist).
    PrepareSharedReads();
  }
  StringValueCache::Slot& slot = cache.slots[id];
  // Hot path: lock-free hit.
  if (slot.ready.load(std::memory_order_acquire) != nullptr) {
    return slot.value;
  }
  // Compute outside the lock: string-value walks can be long, and two
  // workers racing on the same cold node both compute — the first publish
  // wins and the loser's copy is dropped.
  auto value = std::make_shared<const std::string>(StringValue(id));
  std::lock_guard<std::mutex> lock(cache.mu);
  if (slot.ready.load(std::memory_order_relaxed) == nullptr) {
    slot.value = std::move(value);
    slot.ready.store(slot.value.get(), std::memory_order_release);
  }
  return slot.value;
}

size_t Document::CountElements(std::string_view tag) const {
  uint32_t id = names_.Find(tag);
  if (id == UINT32_MAX) return 0;
  size_t count = 0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kElement && n.name == id) ++count;
  }
  return count;
}

size_t Document::ApproximateSerializedBytes() const {
  size_t bytes = 0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.kind) {
      case NodeKind::kElement:
        // <tag></tag>
        bytes += 2 * names_.Get(n.name).size() + 5;
        break;
      case NodeKind::kText:
        bytes += texts_[n.text].size();
        break;
      case NodeKind::kAttribute:
        // name="value"
        bytes += names_.Get(n.name).size() + texts_[n.text].size() + 4;
        break;
      case NodeKind::kDocument:
        break;
    }
  }
  return bytes;
}

}  // namespace nalq::xml
