// String interning arena used by XML documents and the NAL symbol table.
//
// Tag and attribute names repeat heavily inside a document; interning them
// turns name tests during XPath evaluation into integer comparisons.
#ifndef NALQ_XML_ARENA_H_
#define NALQ_XML_ARENA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace nalq::xml {

/// Transparent hash so the intern map can be probed with string_view without
/// materializing a std::string per lookup.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Interns strings, handing out dense uint32 ids. Id 0 is always the empty
/// string. Not thread-safe; each Document owns its own interner.
class StringInterner {
 public:
  StringInterner() { Intern(""); }

  /// Returns the id for `s`, inserting it on first sight.
  uint32_t Intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `s` if already interned, or UINT32_MAX.
  uint32_t Find(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? UINT32_MAX : it->second;
  }

  std::string_view Get(uint32_t id) const { return strings_[id]; }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t, TransparentStringHash,
                     std::equal_to<>>
      ids_;
};

}  // namespace nalq::xml

#endif  // NALQ_XML_ARENA_H_
