#include "xml/stats.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace nalq::xml {

namespace {

/// True iff `id` has no element children (its string value is the cheap
/// concatenation of its immediate text children — the shape of the leaf
/// fields equality predicates compare).
bool IsLeafElement(const Document& doc, NodeId id) {
  for (NodeId c = doc.first_child(id); c != kNoNode; c = doc.next_sibling(c)) {
    if (doc.kind(c) == NodeKind::kElement) return false;
  }
  return true;
}

}  // namespace

DocumentStats::DocumentStats(const Document& doc, const DocumentIndex& index)
    : built_node_count_(doc.node_count()) {
  // One preorder pass. The stack holds the open element ancestors of the
  // current node as (name_id, subtree_end) — ascending NodeId is preorder,
  // so an ancestor stays on the stack exactly while ids lie in its extent.
  struct Open {
    uint32_t name;
    NodeId subtree_end;
  };
  std::vector<Open> ancestors;
  for (NodeId id = 0; id < built_node_count_; ++id) {
    while (!ancestors.empty() && id >= ancestors.back().subtree_end) {
      ancestors.pop_back();
    }
    switch (doc.kind(id)) {
      case NodeKind::kElement: {
        uint32_t name = doc.name_id(id);
        ++element_count_;
        ++elements_[name];
        NodeId parent = doc.parent(id);
        if (parent != kNoNode && doc.kind(parent) == NodeKind::kElement) {
          uint64_t key = PairKey(doc.name_id(parent), name);
          uint64_t& edges = child_edges_[key];
          if (edges == 0) parents_with_child_[key] = 0;
          ++edges;
        }
        for (const Open& anc : ancestors) {
          ++desc_edges_[PairKey(anc.name, name)];
        }
        ancestors.push_back({name, doc.subtree_end(id)});
        break;
      }
      case NodeKind::kAttribute: {
        ++attribute_count_;
        ++attributes_[doc.name_id(id)];
        NodeId parent = doc.parent(id);
        if (parent != kNoNode) {
          ++attr_edges_[PairKey(doc.name_id(parent), doc.name_id(id))];
        }
        break;
      }
      case NodeKind::kText:
        ++text_node_count_;
        break;
      case NodeKind::kDocument:
        break;
    }
  }

  // ParentsWithChild: count parents contributing ≥1 edge. A second pass per
  // distinct (parent, child) pair over the parent's occurrence list would be
  // quadratic in pathological documents; instead walk every element once and
  // collect its distinct child names.
  {
    std::vector<uint32_t> child_names;
    for (NodeId id : index.AllElements()) {
      child_names.clear();
      for (NodeId c = doc.first_child(id); c != kNoNode;
           c = doc.next_sibling(c)) {
        if (doc.kind(c) != NodeKind::kElement) continue;
        uint32_t n = doc.name_id(c);
        bool seen = false;
        for (uint32_t s : child_names) seen = seen || s == n;
        if (!seen) {
          child_names.push_back(n);
          ++parents_with_child_[PairKey(doc.name_id(id), n)];
        }
      }
    }
  }

  // Distinct values: exact for leaf elements, skipped (assumed all-distinct)
  // for names that ever occur as inner nodes — their string values are whole
  // subtrees nobody compares for equality, and concatenating them would turn
  // this pass quadratic.
  {
    std::unordered_set<std::string> values;
    std::string value;
    for (const auto& [name, count] : elements_) {
      std::span<const NodeId> occ = index.Elements(name);
      bool all_leaves = true;
      for (NodeId id : occ) {
        if (!IsLeafElement(doc, id)) {
          all_leaves = false;
          break;
        }
      }
      if (!all_leaves) {
        distinct_element_values_[name] = count;
        continue;
      }
      values.clear();
      for (NodeId id : occ) {
        value.clear();
        for (NodeId c = doc.first_child(id); c != kNoNode;
             c = doc.next_sibling(c)) {
          if (doc.kind(c) == NodeKind::kText) value += doc.raw_text(c);
        }
        values.insert(value);
      }
      distinct_element_values_[name] = values.size();
    }
    for (const auto& [name, count] : attributes_) {
      (void)count;
      values.clear();
      for (NodeId id : index.Attributes(name)) {
        values.insert(std::string(doc.raw_text(id)));
      }
      distinct_attr_values_[name] = values.size();
    }
  }
}

uint64_t DocumentStats::ElementCount(uint32_t name_id) const {
  auto it = elements_.find(name_id);
  return it == elements_.end() ? 0 : it->second;
}

uint64_t DocumentStats::AttributeCount(uint32_t name_id) const {
  auto it = attributes_.find(name_id);
  return it == attributes_.end() ? 0 : it->second;
}

uint64_t DocumentStats::ChildEdges(uint32_t parent_name,
                                   uint32_t child_name) const {
  return FindOr0(child_edges_, PairKey(parent_name, child_name));
}

uint64_t DocumentStats::ParentsWithChild(uint32_t parent_name,
                                         uint32_t child_name) const {
  return FindOr0(parents_with_child_, PairKey(parent_name, child_name));
}

uint64_t DocumentStats::DescendantEdges(uint32_t anc_name,
                                        uint32_t desc_name) const {
  return FindOr0(desc_edges_, PairKey(anc_name, desc_name));
}

uint64_t DocumentStats::AttrEdges(uint32_t elem_name,
                                  uint32_t attr_name) const {
  return FindOr0(attr_edges_, PairKey(elem_name, attr_name));
}

uint64_t DocumentStats::DistinctElementValues(uint32_t name_id) const {
  auto it = distinct_element_values_.find(name_id);
  return it == distinct_element_values_.end() ? 0 : it->second;
}

uint64_t DocumentStats::DistinctAttrValues(uint32_t name_id) const {
  auto it = distinct_attr_values_.find(name_id);
  return it == distinct_attr_values_.end() ? 0 : it->second;
}

}  // namespace nalq::xml
