// Arena-allocated XML document trees with document-order node ids.
//
// This is the storage substrate standing in for the Natix engine used in the
// paper. Nodes live in a flat vector; a NodeId is an index into it. Documents
// must be built depth-first (the parser and the data generator both do), so
// NodeId order coincides with document order — the property the paper's
// order-preserving operators rely on ("the Υ operator generates its output in
// document order").
//
// Depth-first construction also gives every node a structural numbering for
// free: its NodeId is its preorder rank `pre`, and its whole subtree
// (attributes included) occupies the contiguous id interval
// [pre, subtree_end(pre)). The extents are maintained incrementally while
// the tree is built, so ancestor tests and descendant-range lookups are O(1)
// integer comparisons — the basis of the per-document structural index
// (xml/index.h) and the index-backed XPath evaluation (xml/xpath.h).
#ifndef NALQ_XML_NODE_H_
#define NALQ_XML_NODE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "xml/arena.h"

namespace nalq::xml {

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = UINT32_MAX;

enum class NodeKind : uint8_t { kDocument, kElement, kText, kAttribute };

/// POD node record. Attribute nodes hang off `first_attr` of their element
/// and are chained through `next_sibling`; they do not appear in the child
/// chain.
struct Node {
  NodeKind kind = NodeKind::kElement;
  uint32_t name = 0;   ///< interned tag/attribute name; 0 for text/document
  uint32_t text = 0;   ///< index into Document texts for text/attribute nodes
  NodeId parent = kNoNode;
  NodeId first_child = kNoNode;
  NodeId last_child = kNoNode;
  NodeId next_sibling = kNoNode;
  NodeId first_attr = kNoNode;
  /// Exclusive end of the subtree extent: the structural interval
  /// [id, subtree_end) holds exactly this node's subtree — itself, its
  /// attributes and all descendants. Valid at all times during depth-first
  /// construction (see Document::NewNode).
  NodeId subtree_end = kNoNode;
};

/// One XML document. Node 0 is the document node.
class Document {
 public:
  explicit Document(std::string name);

  // ---- construction (depth-first order required) -----------------------
  /// Appends an element as the last child of `parent`. Returns its id.
  NodeId AddElement(NodeId parent, std::string_view tag);
  /// Appends a text node as the last child of `parent`.
  NodeId AddText(NodeId parent, std::string_view text);
  /// Attaches an attribute to `element`.
  NodeId AddAttribute(NodeId element, std::string_view name,
                      std::string_view value);

  // ---- accessors --------------------------------------------------------
  const std::string& name() const { return name_; }
  NodeId root() const { return 0; }
  size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }
  NodeId first_attr(NodeId id) const { return nodes_[id].first_attr; }

  // ---- structural numbering ---------------------------------------------
  /// Preorder rank of `id` (depth-first construction makes this the id
  /// itself; exposed under its paper name for readability at call sites).
  NodeId pre(NodeId id) const { return id; }
  /// Exclusive end of `id`'s subtree extent [pre, pre+size).
  NodeId subtree_end(NodeId id) const { return nodes_[id].subtree_end; }
  /// Number of nodes in `id`'s subtree, itself and attributes included.
  uint32_t subtree_size(NodeId id) const { return nodes_[id].subtree_end - id; }
  /// True iff `descendant` lies strictly inside `ancestor`'s subtree
  /// (attributes count as descendants of their element).
  bool IsDescendant(NodeId ancestor, NodeId descendant) const {
    return descendant > ancestor && descendant < nodes_[ancestor].subtree_end;
  }

  /// Interned id of the element/attribute name (0 for text/document nodes).
  uint32_t name_id(NodeId id) const { return nodes_[id].name; }
  std::string_view node_name(NodeId id) const {
    return names_.Get(nodes_[id].name);
  }
  /// Raw text content of a text or attribute node.
  std::string_view raw_text(NodeId id) const { return texts_[nodes_[id].text]; }

  /// XPath string value: concatenation of all descendant text (for elements),
  /// the text itself (text/attribute nodes), or the whole document's text.
  std::string StringValue(NodeId id) const;

  /// Memoized shared form of StringValue: the first call per node computes
  /// and caches the string, later calls (and every Value atomized from the
  /// node) share the one allocation. Safe under concurrent readers (the
  /// parallel executor's workers share one document store): hits read an
  /// atomically published slot with no lock — this is the Atomize hot path,
  /// a per-document mutex here convoys badly under contention — and cold
  /// fills compute outside a build mutex, first publisher wins. The cache
  /// is per-document and lives until the document is dropped.
  std::shared_ptr<const std::string> SharedStringValue(NodeId id) const;

  /// Pre-sizes the string-value memo to node_count() so concurrent readers
  /// never race a lazy grow. Called by Store::AddDocument and at every
  /// StoreReadLease boundary (both reader-free points by the single-writer
  /// contract in xml/store.h, so the relocating resize cannot run under a
  /// concurrent lock-free hit); documents used outside a Store grow the
  /// memo lazily, which is safe single-threaded.
  void PrepareSharedReads() const;

  /// Number of element nodes named `tag` in the whole document.
  size_t CountElements(std::string_view tag) const;

  const StringInterner& names() const { return names_; }
  StringInterner& names() { return names_; }

  /// Attached DOCTYPE internal subset, if the parser saw one.
  const std::string& dtd_text() const { return dtd_text_; }
  void set_dtd_text(std::string dtd) { dtd_text_ = std::move(dtd); }

  /// Approximate serialized size in bytes (used by the Fig. 6 bench).
  size_t ApproximateSerializedBytes() const;

 private:
  NodeId NewNode(NodeKind kind, NodeId parent);
  void AppendChild(NodeId parent, NodeId child);

  /// String-value memo. Heap-allocated so Document stays movable (the mutex
  /// and atomics are not); eagerly created in the constructor, so
  /// concurrent readers never race on the pointer itself. Slots are flat —
  /// the hot hit path is one array load plus one acquire-load, no hashing,
  /// no lock. `ready` republishes `value` after the one-time fill; once
  /// non-null, `value` is never written again, so concurrent shared_ptr
  /// copies (atomic refcount) are safe.
  struct StringValueCache {
    struct Slot {
      std::shared_ptr<const std::string> value;
      std::atomic<const std::string*> ready{nullptr};

      Slot() = default;
      // Used only by single-threaded growth under `mu` (see
      // PrepareSharedReads); slots are never moved while readers exist.
      Slot(Slot&& other) noexcept
          : value(std::move(other.value)),
            ready(other.ready.load(std::memory_order_relaxed)) {}
    };
    std::mutex mu;
    std::vector<Slot> slots;
  };

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::string> texts_;
  StringInterner names_;
  std::string dtd_text_;
  mutable std::unique_ptr<StringValueCache> string_value_cache_;
};

using DocId = uint32_t;

/// Handle to a node in some document of a Store. Ordering = document order
/// (within one document) / document id order (across documents).
struct NodeRef {
  DocId doc = 0;
  NodeId id = kNoNode;

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
  friend auto operator<=>(const NodeRef&, const NodeRef&) = default;
};

struct NodeRefHash {
  size_t operator()(const NodeRef& r) const noexcept {
    return (static_cast<size_t>(r.doc) << 32) ^ r.id;
  }
};

}  // namespace nalq::xml

#endif  // NALQ_XML_NODE_H_
