// DTD parser and constraint reasoner.
//
// The unnesting conditions of Eqv. 3, 5, 8 and 9 require knowledge the paper
// extracts from the DTD ("we know from the DTD that every book contains only
// a single title element", "itemno elements appear only directly beneath
// bidtuple elements", "there are no author elements other than those directly
// under book elements"). This module parses <!ELEMENT> declarations, analyzes
// content models and answers exactly those questions.
#ifndef NALQ_XML_DTD_H_
#define NALQ_XML_DTD_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "xml/xpath.h"

namespace nalq::xml {

/// Occurrence bounds of a child name within a content model.
struct Cardinality {
  int min = 0;             ///< 0 or 1 (we only need "required or not")
  bool unbounded = false;  ///< true if the child can occur more than once
  int max = 0;             ///< meaningful when !unbounded

  bool exactly_one() const { return min == 1 && !unbounded && max == 1; }
  bool at_most_one() const { return !unbounded && max <= 1; }
  bool required() const { return min >= 1; }
};

/// Content model AST (parsed from e.g. "(title, (author+ | editor+),
/// publisher, price)").
struct ContentModel {
  enum class Kind { kPcdata, kEmpty, kAny, kName, kSeq, kChoice };
  Kind kind = Kind::kEmpty;
  std::string name;                                   // kName
  std::vector<std::unique_ptr<ContentModel>> children;  // kSeq/kChoice
  char repetition = 0;  ///< 0, '?', '*', '+'

  /// Occurrence bounds of `child_name` anywhere in this model.
  Cardinality CardinalityOf(std::string_view child_name) const;
  /// All element names mentioned.
  void CollectNames(std::set<std::string>* out) const;
};

struct ElementDecl {
  std::string name;
  ContentModel model;
  std::vector<std::string> attributes;  ///< declared attribute names
};

/// A parsed DTD plus derived structural facts.
class Dtd {
 public:
  /// Parses the internal subset text (the part between '[' and ']' of a
  /// DOCTYPE, or a standalone sequence of declarations). Throws
  /// std::invalid_argument on malformed declarations.
  static Dtd Parse(std::string_view text);

  bool HasElement(std::string_view name) const;
  const ElementDecl* Find(std::string_view name) const;

  /// The root element: declared first (XQuery use-case DTDs follow this
  /// convention) and never mentioned in another content model.
  const std::string& root() const { return root_; }

  /// Elements whose content model mentions `child`.
  std::vector<std::string> ParentsOf(std::string_view child) const;

  /// True iff every element named `child` can only occur as a direct child
  /// of an element named `parent`. This is the paper's "X elements appear
  /// only directly beneath Y elements" condition.
  bool OccursOnlyUnder(std::string_view child, std::string_view parent) const;

  /// Occurrence bounds of `child` within `parent`'s content model
  /// (nullopt if `parent` is undeclared).
  std::optional<Cardinality> ChildCardinality(std::string_view parent,
                                              std::string_view child) const;

  /// True iff every `parent` element has exactly one `child` child — the
  /// condition allowing `$b/title` to be treated as a singleton (paper
  /// Sec. 5.2: "every book element has exactly one title child element").
  bool ExactlyOneChild(std::string_view parent, std::string_view child) const;

  /// True iff the node set selected by `general` (e.g. //author) is always
  /// equal to the node set selected by `specific` (e.g. //book/author): the
  /// condition e1 = ΠD_{A1:A2}(Π_{A2}(e2)) hinges on this (paper Sec. 5.1).
  ///
  /// Supported shapes: both paths absolute, `general` = //X, `specific` a
  /// path ending in X. True when every DTD-derivable ancestor chain of X
  /// matches `specific`.
  bool PathsSelectSameNodes(const Path& general, const Path& specific) const;

  /// True iff `path` selects every element named by its final step (i.e.
  /// adding the ancestor steps loses nothing).
  bool PathSelectsAllOf(const Path& path) const;

  /// True iff `element` declares an attribute named `attr`.
  bool HasAttribute(std::string_view element, std::string_view attr) const;

 private:
  std::map<std::string, ElementDecl, std::less<>> elements_;
  std::string root_;
  std::string first_declared_;
};

/// Maps document names to their DTDs; consulted by the translator (singleton
/// decisions) and by the unnesting condition checker.
class DtdRegistry {
 public:
  void Register(std::string doc_name, Dtd dtd) {
    by_doc_[std::move(doc_name)] = std::move(dtd);
  }
  const Dtd* Find(std::string_view doc_name) const {
    auto it = by_doc_.find(std::string(doc_name));
    return it == by_doc_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, Dtd> by_doc_;
};

}  // namespace nalq::xml

#endif  // NALQ_XML_DTD_H_
