#include "xml/parser.h"

#include <cctype>

namespace nalq::xml {

namespace {

bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

/// Recursive-descent XML parser. Builds the Document depth-first — elements
/// before their attributes, attributes before child content — so node ids
/// coincide with document order and every subtree gets its contiguous
/// [pre, pre+size) structural extent at parse time (see node.h).
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options, Document* doc)
      : in_(input), options_(options), doc_(doc) {}

  void Parse() {
    SkipProlog();
    if (Eof()) Fail("empty document");
    ParseElement(doc_->root());
    SkipMisc();
    if (!Eof()) Fail("trailing content after root element");
  }

 private:
  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool StartsWith(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void Expect(char c) {
    if (Eof() || Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message, pos_);
  }
  void SkipWs() {
    while (!Eof() && IsXmlWhitespace(Peek())) ++pos_;
  }

  void SkipProlog() {
    for (;;) {
      SkipWs();
      if (StartsWith("<?")) {
        SkipUntil("?>");
      } else if (StartsWith("<!--")) {
        SkipUntil("-->");
      } else if (StartsWith("<!DOCTYPE")) {
        ParseDoctype();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWs();
      if (StartsWith("<?")) {
        SkipUntil("?>");
      } else if (StartsWith("<!--")) {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    size_t found = in_.find(terminator, pos_);
    if (found == std::string_view::npos) Fail("unterminated construct");
    pos_ = found + terminator.size();
  }

  void ParseDoctype() {
    pos_ += 9;  // "<!DOCTYPE"
    // Scan to '>' honoring one level of [...] internal subset.
    size_t subset_begin = std::string_view::npos;
    size_t subset_end = std::string_view::npos;
    int bracket = 0;
    while (!Eof()) {
      char c = Peek();
      if (c == '[') {
        if (bracket == 0) subset_begin = pos_ + 1;
        ++bracket;
      } else if (c == ']') {
        --bracket;
        if (bracket == 0) subset_end = pos_;
      } else if (c == '>' && bracket == 0) {
        ++pos_;
        if (subset_begin != std::string_view::npos &&
            subset_end != std::string_view::npos) {
          doc_->set_dtd_text(std::string(
              in_.substr(subset_begin, subset_end - subset_begin)));
        }
        return;
      }
      ++pos_;
    }
    Fail("unterminated DOCTYPE");
  }

  std::string_view ParseName() {
    if (Eof() || !IsNameStart(Peek())) Fail("expected name");
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return in_.substr(start, pos_ - start);
  }

  void ParseElement(NodeId parent) {
    Expect('<');
    std::string_view tag = ParseName();
    NodeId el = doc_->AddElement(parent, tag);
    // Attributes.
    for (;;) {
      SkipWs();
      if (Eof()) Fail("unterminated start tag");
      char c = Peek();
      if (c == '>') {
        ++pos_;
        break;
      }
      if (c == '/') {
        ++pos_;
        Expect('>');
        return;  // empty element
      }
      std::string_view name = ParseName();
      SkipWs();
      Expect('=');
      SkipWs();
      char quote = Peek();
      if (quote != '"' && quote != '\'') Fail("expected quoted attribute");
      ++pos_;
      size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) Fail("unterminated attribute value");
      std::string value = DecodeEntities(in_.substr(start, pos_ - start));
      ++pos_;
      doc_->AddAttribute(el, name, value);
    }
    // Content.
    for (;;) {
      if (Eof()) Fail("unterminated element");
      if (StartsWith("</")) {
        pos_ += 2;
        std::string_view close = ParseName();
        if (close != tag) Fail("mismatched end tag </" + std::string(close) +
                               "> for <" + std::string(tag) + ">");
        SkipWs();
        Expect('>');
        return;
      }
      if (StartsWith("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (StartsWith("<![CDATA[")) {
        pos_ += 9;
        size_t end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) Fail("unterminated CDATA");
        doc_->AddText(el, in_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (StartsWith("<?")) {
        SkipUntil("?>");
        continue;
      }
      if (Peek() == '<') {
        ParseElement(el);
        continue;
      }
      // Character data.
      size_t start = pos_;
      while (!Eof() && Peek() != '<') ++pos_;
      std::string_view raw = in_.substr(start, pos_ - start);
      bool all_ws = true;
      for (char c : raw) {
        if (!IsXmlWhitespace(c)) {
          all_ws = false;
          break;
        }
      }
      if (all_ws && options_.strip_whitespace_text) continue;
      doc_->AddText(el, DecodeEntities(raw));
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  ParseOptions options_;
  Document* doc_;
};

}  // namespace

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] != '&') {
      out += s[i++];
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos) {
      out += s[i++];
      continue;
    }
    std::string_view entity = s.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      int code = 0;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (char c : entity.substr(2)) {
          code = code * 16 + (std::isdigit(static_cast<unsigned char>(c))
                                  ? c - '0'
                                  : (std::tolower(c) - 'a' + 10));
        }
      } else {
        for (char c : entity.substr(1)) code = code * 10 + (c - '0');
      }
      if (code > 0 && code < 128) {
        out += static_cast<char>(code);
      } else {
        // Pass through non-ASCII references untouched.
        out += s.substr(i, semi - i + 1);
      }
    } else {
      out += s.substr(i, semi - i + 1);
    }
    i = semi + 1;
  }
  return out;
}

std::string EncodeEntities(std::string_view s, bool for_attribute) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (for_attribute) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

Document ParseDocument(std::string doc_name, std::string_view input,
                       const ParseOptions& options) {
  Document doc(std::move(doc_name));
  Parser parser(input, options, &doc);
  parser.Parse();
  return doc;
}

}  // namespace nalq::xml
