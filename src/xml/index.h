// Per-document structural index: for each interned element name the
// preorder-sorted list of its occurrences, mirrored for attribute names,
// plus the list of all text nodes.
//
// Combined with the [pre, pre+size) structural numbering of node.h this
// turns a descendant step into two binary searches on the name's occurrence
// list: the slice of occurrences inside the context's subtree extent IS the
// step result, already in document order and duplicate-free — the same
// "resolve a path step against the physical store instead of walking the
// subtree" shortcut the paper's Natix testbed provides its unnested plans.
//
// Indexes are owned and invalidated by the Store (store.h) and built lazily
// on first indexed path evaluation; one O(n) scan of the node vector, since
// ascending NodeId already is preorder.
#ifndef NALQ_XML_INDEX_H_
#define NALQ_XML_INDEX_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "xml/node.h"

namespace nalq::storage {
class StoreCodec;
}

namespace nalq::xml {

class DocumentIndex {
 public:
  /// Builds the index with one pass over `doc`'s node vector.
  explicit DocumentIndex(const Document& doc);

  /// Preorder-sorted ids of the elements named `name_id` (empty span if the
  /// name never occurs; `UINT32_MAX` — an un-interned name — is always
  /// empty).
  std::span<const NodeId> Elements(uint32_t name_id) const;
  /// Preorder-sorted ids of every element (wildcard steps).
  std::span<const NodeId> AllElements() const { return all_elements_; }
  /// Preorder-sorted ids of the attributes named `name_id`.
  std::span<const NodeId> Attributes(uint32_t name_id) const;
  /// Preorder-sorted ids of every text node.
  std::span<const NodeId> TextNodes() const { return text_nodes_; }

  /// The document's node count at build time. The Store rebuilds the index
  /// when this no longer matches (a document mutated after indexing).
  size_t built_node_count() const { return built_node_count_; }

 private:
  /// Persistence codec (src/storage/): serializes and reconstructs the
  /// occurrence lists directly, bypassing the build pass. The deserializing
  /// path is the only user of the default constructor.
  friend class nalq::storage::StoreCodec;
  DocumentIndex() = default;

  std::unordered_map<uint32_t, std::vector<NodeId>> elements_;
  std::unordered_map<uint32_t, std::vector<NodeId>> attributes_;
  std::vector<NodeId> all_elements_;
  std::vector<NodeId> text_nodes_;
  size_t built_node_count_ = 0;
};

}  // namespace nalq::xml

#endif  // NALQ_XML_INDEX_H_
