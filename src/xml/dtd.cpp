#include "xml/dtd.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace nalq::xml {

namespace {

Cardinality ApplyRepetition(Cardinality c, char rep) {
  switch (rep) {
    case '?':
      c.min = 0;
      break;
    case '*':
      c.min = 0;
      if (c.max > 0 || c.unbounded) c.unbounded = true;
      break;
    case '+':
      if (c.max > 0 || c.unbounded) c.unbounded = true;
      break;
    default:
      break;
  }
  return c;
}

/// Parser for content-model text, e.g. "(title, (author+ | editor+),
/// publisher, price)" or "(#PCDATA)".
class ModelParser {
 public:
  explicit ModelParser(std::string_view text) : in_(text) {}

  ContentModel Parse() {
    SkipWs();
    if (StartsWith("EMPTY")) {
      ContentModel m;
      m.kind = ContentModel::Kind::kEmpty;
      return m;
    }
    if (StartsWith("ANY")) {
      ContentModel m;
      m.kind = ContentModel::Kind::kAny;
      return m;
    }
    ContentModel m = ParseGroup();
    SkipWs();
    if (pos_ != in_.size()) Fail("trailing content-model text");
    return m;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) {
    throw std::invalid_argument("DTD content model error: " + message +
                                " in '" + std::string(in_) + "'");
  }
  void SkipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }
  bool StartsWith(std::string_view s) {
    if (in_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }
  char PeekRep() {
    if (pos_ < in_.size() &&
        (in_[pos_] == '?' || in_[pos_] == '*' || in_[pos_] == '+')) {
      return in_[pos_++];
    }
    return 0;
  }

  ContentModel ParseGroup() {
    SkipWs();
    if (pos_ >= in_.size() || in_[pos_] != '(') Fail("expected '('");
    ++pos_;
    std::vector<std::unique_ptr<ContentModel>> items;
    char separator = 0;
    for (;;) {
      items.push_back(std::make_unique<ContentModel>(ParseItem()));
      SkipWs();
      if (pos_ >= in_.size()) Fail("unterminated group");
      char c = in_[pos_];
      if (c == ')') {
        ++pos_;
        break;
      }
      if (c != ',' && c != '|') Fail("expected ',' '|' or ')'");
      if (separator != 0 && separator != c) {
        Fail("mixed ',' and '|' at one level");
      }
      separator = c;
      ++pos_;
    }
    ContentModel group;
    if (items.size() == 1 && separator == 0) {
      group = std::move(*items[0]);
      // A repetition on the group wraps the single item's own repetition;
      // fold conservatively by keeping the stronger (outer) one below.
    } else {
      group.kind = separator == '|' ? ContentModel::Kind::kChoice
                                    : ContentModel::Kind::kSeq;
      group.children = std::move(items);
    }
    char rep = PeekRep();
    if (rep != 0) {
      if (group.repetition != 0) {
        // e.g. ((a+))* — compose: anything under '*' or with inner '+' and
        // outer '?' etc. Simplify to '*' when both present.
        group.repetition = '*';
      } else {
        group.repetition = rep;
      }
    }
    return group;
  }

  ContentModel ParseItem() {
    SkipWs();
    if (pos_ < in_.size() && in_[pos_] == '(') return ParseGroup();
    if (StartsWith("#PCDATA")) {
      ContentModel m;
      m.kind = ContentModel::Kind::kPcdata;
      return m;
    }
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_' || in_[pos_] == '-' || in_[pos_] == '.' ||
            in_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected element name");
    ContentModel m;
    m.kind = ContentModel::Kind::kName;
    m.name = std::string(in_.substr(start, pos_ - start));
    m.repetition = PeekRep();
    return m;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Cardinality ContentModel::CardinalityOf(std::string_view child_name) const {
  Cardinality c;
  switch (kind) {
    case Kind::kPcdata:
    case Kind::kEmpty:
      return c;
    case Kind::kAny:
      c.min = 0;
      c.unbounded = true;
      return c;
    case Kind::kName:
      if (name == child_name) {
        c.min = 1;
        c.max = 1;
      }
      return ApplyRepetition(c, repetition);
    case Kind::kSeq: {
      for (const auto& item : children) {
        Cardinality ci = item->CardinalityOf(child_name);
        c.min += ci.min;
        c.max += ci.max;
        c.unbounded = c.unbounded || ci.unbounded;
      }
      return ApplyRepetition(c, repetition);
    }
    case Kind::kChoice: {
      bool first = true;
      for (const auto& item : children) {
        Cardinality ci = item->CardinalityOf(child_name);
        if (first) {
          c = ci;
          first = false;
        } else {
          c.min = std::min(c.min, ci.min);
          c.max = std::max(c.max, ci.max);
          c.unbounded = c.unbounded || ci.unbounded;
        }
      }
      return ApplyRepetition(c, repetition);
    }
  }
  return c;
}

void ContentModel::CollectNames(std::set<std::string>* out) const {
  if (kind == Kind::kName) out->insert(name);
  for (const auto& child : children) child->CollectNames(out);
}

Dtd Dtd::Parse(std::string_view text) {
  Dtd dtd;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t open = text.find("<!", pos);
    if (open == std::string_view::npos) break;
    size_t close = text.find('>', open);
    if (close == std::string_view::npos) {
      throw std::invalid_argument("unterminated DTD declaration");
    }
    std::string_view decl = text.substr(open + 2, close - open - 2);
    pos = close + 1;
    auto read_name = [](std::string_view s, size_t* i) {
      while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i])))
        ++*i;
      size_t start = *i;
      while (*i < s.size() &&
             !std::isspace(static_cast<unsigned char>(s[*i]))) {
        ++*i;
      }
      return std::string(s.substr(start, *i - start));
    };
    if (decl.substr(0, 7) == "ELEMENT") {
      size_t i = 7;
      std::string name = read_name(decl, &i);
      while (i < decl.size() &&
             std::isspace(static_cast<unsigned char>(decl[i]))) {
        ++i;
      }
      ElementDecl element;
      element.name = name;
      element.model = ModelParser(decl.substr(i)).Parse();
      if (dtd.first_declared_.empty()) dtd.first_declared_ = name;
      dtd.elements_[name] = std::move(element);
    } else if (decl.substr(0, 7) == "ATTLIST") {
      size_t i = 7;
      std::string element_name = read_name(decl, &i);
      // Each attribute declaration: name TYPE default.
      while (i < decl.size()) {
        std::string attr = read_name(decl, &i);
        if (attr.empty()) break;
        std::string type = read_name(decl, &i);
        std::string dflt = read_name(decl, &i);
        (void)type;
        (void)dflt;
        auto it = dtd.elements_.find(element_name);
        if (it != dtd.elements_.end()) {
          it->second.attributes.push_back(attr);
        } else {
          ElementDecl element;
          element.name = element_name;
          element.attributes.push_back(attr);
          dtd.elements_[element_name] = std::move(element);
        }
      }
    }
    // Other declarations (ENTITY, NOTATION) ignored.
  }
  // Root: declared element not mentioned in any content model; fall back to
  // the first declaration.
  std::set<std::string> mentioned;
  for (const auto& [name, element] : dtd.elements_) {
    element.model.CollectNames(&mentioned);
  }
  dtd.root_ = dtd.first_declared_;
  for (const auto& [name, element] : dtd.elements_) {
    if (mentioned.count(name) == 0) {
      dtd.root_ = name;
      break;
    }
  }
  return dtd;
}

bool Dtd::HasElement(std::string_view name) const {
  return elements_.find(name) != elements_.end();
}

const ElementDecl* Dtd::Find(std::string_view name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : &it->second;
}

std::vector<std::string> Dtd::ParentsOf(std::string_view child) const {
  std::vector<std::string> parents;
  for (const auto& [name, element] : elements_) {
    std::set<std::string> names;
    element.model.CollectNames(&names);
    if (names.count(std::string(child)) != 0) parents.push_back(name);
  }
  return parents;
}

bool Dtd::OccursOnlyUnder(std::string_view child,
                          std::string_view parent) const {
  std::vector<std::string> parents = ParentsOf(child);
  if (parents.empty()) return false;
  return parents.size() == 1 && parents[0] == parent;
}

std::optional<Cardinality> Dtd::ChildCardinality(std::string_view parent,
                                                 std::string_view child) const {
  const ElementDecl* decl = Find(parent);
  if (decl == nullptr) return std::nullopt;
  return decl->model.CardinalityOf(child);
}

bool Dtd::ExactlyOneChild(std::string_view parent,
                          std::string_view child) const {
  auto c = ChildCardinality(parent, child);
  return c.has_value() && c->exactly_one();
}

bool Dtd::HasAttribute(std::string_view element, std::string_view attr) const {
  const ElementDecl* decl = Find(element);
  if (decl == nullptr) return false;
  for (const std::string& a : decl->attributes) {
    if (a == attr) return true;
  }
  return false;
}

namespace {

/// Does the step sequence steps[si..] match the name chain chain[ci..]
/// (chain runs root-to-target)? Descendant steps may skip ancestors.
bool MatchSteps(const std::vector<Step>& steps, size_t si,
                const std::vector<std::string>& chain, size_t ci) {
  if (si == steps.size()) return ci == chain.size();
  if (ci == chain.size()) return false;
  const Step& step = steps[si];
  bool name_ok = step.wildcard() || step.name == chain[ci];
  switch (step.axis) {
    case Axis::kChild:
      return name_ok && MatchSteps(steps, si + 1, chain, ci + 1);
    case Axis::kDescendant:
      // Either this chain element satisfies the step, or skip it.
      if (name_ok && MatchSteps(steps, si + 1, chain, ci + 1)) return true;
      return MatchSteps(steps, si, chain, ci + 1);
    case Axis::kAttribute:
    case Axis::kText:
      return false;  // handled by callers before chain matching
  }
  return false;
}

}  // namespace

bool Dtd::PathSelectsAllOf(const Path& path) const {
  if (!path.absolute() || path.empty()) return false;
  const Step& last = path.steps().back();
  if (last.axis == Axis::kAttribute || last.axis == Axis::kText ||
      last.wildcard()) {
    return false;
  }
  const std::string& target = last.name;
  if (!HasElement(target)) return false;
  // Enumerate every DTD-derivable ancestor chain root → ... → target and
  // check the path matches each. Cycle-guard: bail out (false) on recursive
  // DTDs deeper than kMaxDepth.
  constexpr size_t kMaxDepth = 32;
  bool all_match = true;
  std::vector<std::string> chain;  // built target-to-root, reversed to match
  auto recurse = [&](auto&& self, const std::string& element) -> void {
    if (!all_match) return;
    if (chain.size() > kMaxDepth) {
      all_match = false;
      return;
    }
    chain.push_back(element);
    if (element == root_) {
      std::vector<std::string> top_down(chain.rbegin(), chain.rend());
      if (!MatchSteps(path.steps(), 0, top_down, 0)) all_match = false;
    } else {
      std::vector<std::string> parents = ParentsOf(element);
      if (parents.empty()) {
        // Unreachable element: no instances, vacuously fine.
      }
      for (const std::string& parent : parents) {
        self(self, parent);
        if (!all_match) break;
      }
    }
    chain.pop_back();
  };
  recurse(recurse, target);
  return all_match;
}

bool Dtd::PathsSelectSameNodes(const Path& general,
                               const Path& specific) const {
  if (!general.absolute() || !specific.absolute()) return false;
  if (general.empty() || specific.empty()) return false;
  const Step& g = general.steps().back();
  const Step& s = specific.steps().back();
  if (g.name != s.name || g.axis == Axis::kAttribute ||
      s.axis == Axis::kAttribute) {
    return false;
  }
  // Both must select all occurrences of the shared target name.
  return PathSelectsAllOf(general) && PathSelectsAllOf(specific);
}

}  // namespace nalq::xml
