// Lazy document provider behind xml::Store — the seam that lets the
// persistent on-disk store (src/storage/) back a Store without the xml
// layer depending on the storage layer.
//
// A Store with an attached source registers one slot per source document
// but materializes nothing: the first access to a document faults it in
// through LoadDocument, and the Store may evict resident documents again
// at reader-free lease boundaries when the source reports residency above
// its cache limit (see Store::PrepareForRead). The contract that makes
// eviction safe is reconstruction determinism: LoadDocument(i) must
// rebuild a Document that is field-for-field identical to every earlier
// load — same node records, same interned name ids — so structural
// indexes and statistics built against one incarnation stay valid for the
// next (the storage layer guarantees this by replaying persisted preorder
// node records through the depth-first construction API and validating
// the result; see src/storage/README.md).
//
// Thread-safety: the Store serializes all calls on one source behind its
// fault-in mutex, so implementations need no internal locking for the
// Load/Unload paths; the residency accessors must tolerate concurrent
// readers (an atomic counter suffices).
#ifndef NALQ_XML_DOCUMENT_SOURCE_H_
#define NALQ_XML_DOCUMENT_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "xml/index.h"
#include "xml/node.h"
#include "xml/stats.h"

namespace nalq::xml {

class DocumentSource {
 public:
  virtual ~DocumentSource() = default;

  /// Number of documents this source provides. Fixed for the source's
  /// lifetime (a persisted store is immutable once opened).
  virtual size_t document_count() const = 0;

  /// Name document `i` is registered under (doc() resolution).
  virtual const std::string& document_name(size_t i) const = 0;

  /// DOCTYPE internal subset persisted with document `i`, or empty.
  /// Available without faulting the document in — the engine registers
  /// DTDs at attach time, before any query touches the store.
  virtual const std::string& document_dtd(size_t i) const = 0;

  /// Materializes document `i`, charging its footprint against the
  /// source's residency accounting. Throws engine::Error (kStoreIo /
  /// kStoreCorrupt / kStoreVersionMismatch) — the Store propagates it to
  /// the evaluation that triggered the fault-in.
  virtual Document LoadDocument(size_t i) = 0;

  /// Releases the residency accounting of an evicted document `i`.
  virtual void UnloadDocument(size_t i) = 0;

  /// Prebuilt structural index for document `i`, or null when the source
  /// has none persisted (the Store then builds one from `doc`). A
  /// persisted index whose built_node_count does not match `doc` fails
  /// closed (kStoreCorrupt) instead of returning.
  virtual std::unique_ptr<DocumentIndex> LoadIndex(size_t i,
                                                   const Document& doc) = 0;

  /// Prebuilt cardinality statistics, same contract as LoadIndex.
  virtual std::unique_ptr<DocumentStats> LoadStats(size_t i,
                                                   const Document& doc) = 0;

  /// Bytes currently charged for resident documents.
  virtual uint64_t resident_bytes() const = 0;

  /// Residency target the Store evicts down to at lease boundaries;
  /// 0 = unlimited (no eviction).
  virtual uint64_t cache_limit_bytes() const = 0;

  /// Where this source's backing data lives (the persisted store's
  /// directory), or empty for sources with no on-disk location. Persist
  /// compares it against its target directory to detect a store being
  /// re-persisted over its own attachment — deleting the old epoch there
  /// would break the live source's lazy refaults (storage/README.md).
  virtual std::string location() const { return {}; }
};

}  // namespace nalq::xml

#endif  // NALQ_XML_DOCUMENT_SOURCE_H_
