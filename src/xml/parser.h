// Minimal, dependency-free XML parser sufficient for the XQuery use-case
// documents: elements, attributes, character data with the five predefined
// entities, comments, processing instructions and a DOCTYPE declaration whose
// internal subset is captured verbatim for the DTD reasoner.
#ifndef NALQ_XML_PARSER_H_
#define NALQ_XML_PARSER_H_

#include <stdexcept>
#include <string>
#include <string_view>

#include "xml/node.h"

namespace nalq::xml {

/// Error with byte offset into the input.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  size_t offset() const { return offset_; }

 private:
  size_t offset_;
};

struct ParseOptions {
  /// Drop text nodes that consist only of XML whitespace (indentation).
  bool strip_whitespace_text = true;
};

/// Parses `input` into a Document named `doc_name`. Throws ParseError.
Document ParseDocument(std::string doc_name, std::string_view input,
                       const ParseOptions& options = {});

/// Decodes the five predefined entities and numeric character references
/// (&#NN; / &#xNN; limited to ASCII) in `s`.
std::string DecodeEntities(std::string_view s);

/// Encodes &, <, > (always) and quotes (if `for_attribute`).
std::string EncodeEntities(std::string_view s, bool for_attribute = false);

}  // namespace nalq::xml

#endif  // NALQ_XML_PARSER_H_
