#include "xml/index.h"

#include <stdexcept>

namespace nalq::xml {

DocumentIndex::DocumentIndex(const Document& doc)
    : built_node_count_(doc.node_count()) {
  elements_.reserve(doc.names().size());
  for (NodeId id = 0; id < built_node_count_; ++id) {
    // Validate the structural numbering while we are touching every node
    // anyway: a sibling starting inside the previous sibling's extent means
    // the document was not built depth-first (Document::NewNode asserts
    // this in Debug builds; in Release the corruption would otherwise make
    // indexed range scans silently return wrong results).
    NodeId sibling = doc.next_sibling(id);
    if (sibling != kNoNode && sibling < doc.subtree_end(id)) {
      throw std::logic_error(
          "document '" + doc.name() +
          "' was not built depth-first: subtree extents overlap");
    }
    switch (doc.kind(id)) {
      case NodeKind::kElement:
        elements_[doc.name_id(id)].push_back(id);
        all_elements_.push_back(id);
        break;
      case NodeKind::kAttribute:
        attributes_[doc.name_id(id)].push_back(id);
        break;
      case NodeKind::kText:
        text_nodes_.push_back(id);
        break;
      case NodeKind::kDocument:
        break;
    }
  }
}

std::span<const NodeId> DocumentIndex::Elements(uint32_t name_id) const {
  auto it = elements_.find(name_id);
  return it == elements_.end() ? std::span<const NodeId>() : it->second;
}

std::span<const NodeId> DocumentIndex::Attributes(uint32_t name_id) const {
  auto it = attributes_.find(name_id);
  return it == attributes_.end() ? std::span<const NodeId>() : it->second;
}

}  // namespace nalq::xml
