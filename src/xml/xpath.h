// XPath-lite: the path fragment used by the paper's queries.
//
//   path     ::= ('/' | '//')? step (('/' | '//') step)*
//   step     ::= name | '*' | '@' name | 'text()'
//
// Predicates ([...]) are *not* evaluated here; the XQuery normalizer moves
// them into where clauses (paper Sec. 3 step 4) before translation. Results
// are duplicate-free and in document order, the property the paper relies on
// for the Υ operator ("Υ generates its output in document order").
#ifndef NALQ_XML_XPATH_H_
#define NALQ_XML_XPATH_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "xml/store.h"

namespace nalq::xml {

enum class Axis : uint8_t { kChild, kDescendant, kAttribute, kText };

struct Step {
  Axis axis = Axis::kChild;
  std::string name;  ///< name test; "*" matches any element
  bool wildcard() const { return name == "*"; }

  friend bool operator==(const Step&, const Step&) = default;
};

/// A parsed path. `absolute` paths start at the document node of each context
/// node's document; relative paths start at the context nodes themselves.
class Path {
 public:
  Path() = default;
  Path(bool absolute, std::vector<Step> steps)
      : absolute_(absolute), steps_(std::move(steps)) {}

  /// Parses the textual form, e.g. "//book/title", "author", "@year",
  /// "bidtuple/itemno". Throws std::invalid_argument on malformed input.
  static Path Parse(std::string_view text);

  bool absolute() const { return absolute_; }
  const std::vector<Step>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// Concatenation: `this` then `rest` (rest must be relative).
  Path Concat(const Path& rest) const;

  std::string ToString() const;

  friend bool operator==(const Path&, const Path&) = default;

 private:
  bool absolute_ = false;
  std::vector<Step> steps_;
};

/// Counters the evaluator exposes so the benchmarks can report how often the
/// nested plan rescans a document (the paper's "|author|+1 scans" argument).
struct XPathStats {
  uint64_t steps_evaluated = 0;
  uint64_t nodes_visited = 0;
};

/// Evaluates `path` from a single context node. Results are in document
/// order and duplicate-free.
std::vector<NodeRef> EvalPath(const Store& store, const Path& path,
                              NodeRef context, XPathStats* stats = nullptr);

/// Allocation-reusing form of the single-context EvalPath: fills `*out`
/// (cleared first) instead of returning a fresh vector — for per-tuple path
/// evaluation loops.
void EvalPathInto(const Store& store, const Path& path, NodeRef context,
                  XPathStats* stats, std::vector<NodeRef>* out);

/// Evaluates `path` from a sequence of context nodes (result merged into
/// document order, duplicates removed).
std::vector<NodeRef> EvalPath(const Store& store, const Path& path,
                              std::span<const NodeRef> context,
                              XPathStats* stats = nullptr);

}  // namespace nalq::xml

#endif  // NALQ_XML_XPATH_H_
