// XPath-lite: the path fragment used by the paper's queries.
//
//   path     ::= ('/' | '//')? step (('/' | '//') step)*
//   step     ::= name | '*' | '@' name | 'text()'
//
// Predicates ([...]) are *not* evaluated here; the XQuery normalizer moves
// them into where clauses (paper Sec. 3 step 4) before translation. Results
// are duplicate-free and in document order, the property the paper relies on
// for the Υ operator ("Υ generates its output in document order").
#ifndef NALQ_XML_XPATH_H_
#define NALQ_XML_XPATH_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "xml/store.h"

namespace nalq::xml {

enum class Axis : uint8_t { kChild, kDescendant, kAttribute, kText };

struct Step {
  Axis axis = Axis::kChild;
  std::string name;  ///< name test; "*" matches any element
  bool wildcard() const { return name == "*"; }

  friend bool operator==(const Step&, const Step&) = default;
};

/// A parsed path. `absolute` paths start at the document node of each context
/// node's document; relative paths start at the context nodes themselves.
class Path {
 public:
  Path() = default;
  Path(bool absolute, std::vector<Step> steps)
      : absolute_(absolute), steps_(std::move(steps)) {}

  /// Parses the textual form, e.g. "//book/title", "author", "@year",
  /// "bidtuple/itemno". Throws std::invalid_argument on malformed input.
  static Path Parse(std::string_view text);

  bool absolute() const { return absolute_; }
  const std::vector<Step>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// Concatenation: `this` then `rest` (rest must be relative). The
  /// rvalue overload extends this path's step vector in place instead of
  /// copying it.
  Path Concat(const Path& rest) const&;
  Path Concat(const Path& rest) &&;

  std::string ToString() const;

  friend bool operator==(const Path&, const Path&) = default;

 private:
  bool absolute_ = false;
  std::vector<Step> steps_;
};

/// Which strategy resolves path steps. Both produce identical results on
/// every path and context (asserted by tests/xpath_index_test.cpp).
enum class PathEvalMode : uint8_t {
  /// Steps resolve against the per-document structural index (xml/index.h):
  /// a descendant step is a binary-search range scan of the name's
  /// occurrence list restricted to the context's [pre, pre+size) extent —
  /// document order for free, no subtree walk. Child/attribute/text steps
  /// keep the direct chain walk with an occurrence-slice fast path when the
  /// name is rare under the context.
  kIndexed,
  /// Chain-walk of the subtree per step — the pre-index behavior; kept as
  /// the differential-testing reference and for freshly mutated documents.
  kScan,
};

/// Saturating add for statistics counters: a merge of per-worker counters
/// (or a counter running for a very long process) pins at UINT64_MAX
/// instead of wrapping to a small number that would silently corrupt
/// reports and differential comparisons.
inline uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;
  return sum < a ? UINT64_MAX : sum;
}

/// Counters the evaluator exposes so the benchmarks can report how often the
/// nested plan rescans a document (the paper's "|author|+1 scans" argument)
/// and how much of that walking the structural index avoids.
struct XPathStats {
  uint64_t steps_evaluated = 0;
  /// Nodes touched: chain-walk visits in scan mode, occurrence-list
  /// candidates in indexed mode.
  uint64_t nodes_visited = 0;
  /// Occurrence-list probes (one per binary-searched lookup).
  uint64_t index_lookups = 0;
  /// Probes the index answered outright (slice emitted, or provably empty);
  /// the remainder fell back to the chain walk.
  uint64_t index_hits = 0;
  /// Subtree nodes a scan-mode walk would have visited that the indexed
  /// range scan never touched. An upper bound: extents count attributes
  /// (which the chain walk skips), and nested contexts count their extent
  /// once per context — mirroring the scan walk, which re-walks an inner
  /// context's subtree for every enclosing context.
  uint64_t index_nodes_skipped = 0;

  /// Merges a per-worker counter set (saturating, see SaturatingAdd). The
  /// parallel executor gives every worker its own stats and folds them into
  /// the main evaluator's when the exchange closes.
  XPathStats& operator+=(const XPathStats& other) {
    steps_evaluated = SaturatingAdd(steps_evaluated, other.steps_evaluated);
    nodes_visited = SaturatingAdd(nodes_visited, other.nodes_visited);
    index_lookups = SaturatingAdd(index_lookups, other.index_lookups);
    index_hits = SaturatingAdd(index_hits, other.index_hits);
    index_nodes_skipped =
        SaturatingAdd(index_nodes_skipped, other.index_nodes_skipped);
    return *this;
  }
};

/// Evaluates `path` from a single context node. Results are in document
/// order and duplicate-free.
std::vector<NodeRef> EvalPath(const Store& store, const Path& path,
                              NodeRef context, XPathStats* stats = nullptr,
                              PathEvalMode mode = PathEvalMode::kIndexed);

/// Allocation-reusing form of the single-context EvalPath: fills `*out`
/// (cleared first) instead of returning a fresh vector — for per-tuple path
/// evaluation loops.
void EvalPathInto(const Store& store, const Path& path, NodeRef context,
                  XPathStats* stats, std::vector<NodeRef>* out,
                  PathEvalMode mode = PathEvalMode::kIndexed);

/// Evaluates `path` from a sequence of context nodes (result merged into
/// document order, duplicates removed).
std::vector<NodeRef> EvalPath(const Store& store, const Path& path,
                              std::span<const NodeRef> context,
                              XPathStats* stats = nullptr,
                              PathEvalMode mode = PathEvalMode::kIndexed);

}  // namespace nalq::xml

#endif  // NALQ_XML_XPATH_H_
