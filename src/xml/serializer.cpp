#include "xml/serializer.h"

#include "xml/parser.h"

namespace nalq::xml {

namespace {

void Indent(std::string* out, int level) {
  out->append(static_cast<size_t>(level) * 2, ' ');
}

void SerializeRec(const Document& doc, NodeId id, std::string* out,
                  const SerializeOptions& options, int level) {
  const Node& n = doc.node(id);
  switch (n.kind) {
    case NodeKind::kText:
      if (options.indent) Indent(out, level);
      *out += EncodeEntities(doc.raw_text(id));
      if (options.indent) *out += '\n';
      return;
    case NodeKind::kAttribute:
      *out += EncodeEntities(doc.raw_text(id), /*for_attribute=*/true);
      return;
    case NodeKind::kDocument:
      for (NodeId c = n.first_child; c != kNoNode;
           c = doc.next_sibling(c)) {
        SerializeRec(doc, c, out, options, level);
      }
      return;
    case NodeKind::kElement:
      break;
  }
  if (options.indent) Indent(out, level);
  *out += '<';
  *out += doc.node_name(id);
  for (NodeId a = n.first_attr; a != kNoNode; a = doc.next_sibling(a)) {
    *out += ' ';
    *out += doc.node_name(a);
    *out += "=\"";
    *out += EncodeEntities(doc.raw_text(a), /*for_attribute=*/true);
    *out += '"';
  }
  if (n.first_child == kNoNode) {
    *out += "/>";
    if (options.indent) *out += '\n';
    return;
  }
  *out += '>';
  // Elements with a single text child render inline even when indenting.
  bool single_text = doc.kind(n.first_child) == NodeKind::kText &&
                     doc.next_sibling(n.first_child) == kNoNode;
  if (options.indent && !single_text) *out += '\n';
  for (NodeId c = n.first_child; c != kNoNode; c = doc.next_sibling(c)) {
    if (single_text) {
      *out += EncodeEntities(doc.raw_text(c));
    } else {
      SerializeRec(doc, c, out, options, level + 1);
    }
  }
  if (options.indent && !single_text) Indent(out, level);
  *out += "</";
  *out += doc.node_name(id);
  *out += '>';
  if (options.indent) *out += '\n';
}

}  // namespace

void SerializeTo(const Document& doc, NodeId id, std::string* out,
                 const SerializeOptions& options) {
  SerializeRec(doc, id, out, options, options.indent_level);
}

std::string Serialize(const Document& doc, NodeId id,
                      const SerializeOptions& options) {
  std::string out;
  SerializeTo(doc, id, &out, options);
  return out;
}

std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options) {
  return Serialize(doc, doc.root(), options);
}

}  // namespace nalq::xml
