#include "xml/arena.h"

// Header-only; this translation unit exists so the build has a stable home
// for future out-of-line members of StringInterner.
