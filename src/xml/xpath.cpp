#include "xml/xpath.h"

#include <algorithm>
#include <stdexcept>

namespace nalq::xml {

namespace {

bool IsStepChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

}  // namespace

Path Path::Parse(std::string_view text) {
  std::vector<Step> steps;
  bool absolute = false;
  size_t i = 0;
  auto fail = [&](const std::string& message) {
    throw std::invalid_argument("bad path '" + std::string(text) +
                                "': " + message);
  };
  Axis pending = Axis::kChild;
  if (text.substr(0, 2) == "//") {
    absolute = true;
    pending = Axis::kDescendant;
    i = 2;
  } else if (!text.empty() && text[0] == '/') {
    absolute = true;
    i = 1;
  }
  for (;;) {
    if (i >= text.size()) fail("trailing separator or empty path");
    Step step;
    step.axis = pending;
    if (text[i] == '@') {
      if (pending == Axis::kDescendant) fail("//@ not supported");
      step.axis = Axis::kAttribute;
      ++i;
    }
    if (i < text.size() && text[i] == '*') {
      step.name = "*";
      ++i;
    } else {
      size_t start = i;
      while (i < text.size() && IsStepChar(text[i])) ++i;
      if (i == start) fail("expected step name");
      step.name = std::string(text.substr(start, i - start));
      if (step.name == "text" && text.substr(i, 2) == "()") {
        step.axis = pending == Axis::kDescendant ? Axis::kDescendant
                                                 : Axis::kText;
        if (pending == Axis::kDescendant) fail("//text() not supported");
        i += 2;
      }
    }
    steps.push_back(std::move(step));
    if (i >= text.size()) break;
    if (text.substr(i, 2) == "//") {
      pending = Axis::kDescendant;
      i += 2;
    } else if (text[i] == '/') {
      pending = Axis::kChild;
      ++i;
    } else {
      fail("unexpected character");
    }
  }
  return Path(absolute, std::move(steps));
}

Path Path::Concat(const Path& rest) const {
  Path out = *this;
  out.steps_.insert(out.steps_.end(), rest.steps_.begin(), rest.steps_.end());
  return out;
}

std::string Path::ToString() const {
  std::string out;
  bool first = true;
  for (const Step& s : steps_) {
    if (s.axis == Axis::kDescendant) {
      out += "//";
    } else if (!first || absolute_) {
      out += "/";
    }
    if (s.axis == Axis::kAttribute) out += '@';
    out += s.axis == Axis::kText ? "text()" : s.name;
    first = false;
  }
  return out;
}

namespace {

/// Appends all matching nodes for one step from `from`, in document order.
/// `name_id` is the step name resolved against `doc`'s interner (resolved
/// once per step by the caller, not per context node).
void ApplyStep(const Document& doc, DocId doc_id, const Step& step,
               uint32_t name_id, NodeId from, std::vector<NodeRef>* out,
               XPathStats* stats) {
  auto matches = [&](NodeId id) {
    if (stats != nullptr) ++stats->nodes_visited;
    const Node& n = doc.node(id);
    switch (step.axis) {
      case Axis::kText:
        return n.kind == NodeKind::kText;
      case Axis::kAttribute:
        return false;  // attributes handled separately
      default:
        return n.kind == NodeKind::kElement &&
               (step.wildcard() || n.name == name_id);
    }
  };
  switch (step.axis) {
    case Axis::kAttribute: {
      if (doc.kind(from) != NodeKind::kElement) return;
      if (name_id == UINT32_MAX && !step.wildcard()) return;
      for (NodeId a = doc.first_attr(from); a != kNoNode;
           a = doc.next_sibling(a)) {
        if (stats != nullptr) ++stats->nodes_visited;
        if (step.wildcard() || doc.name_id(a) == name_id) {
          out->push_back(NodeRef{doc_id, a});
        }
      }
      return;
    }
    case Axis::kChild:
    case Axis::kText: {
      if (name_id == UINT32_MAX && !step.wildcard() &&
          step.axis != Axis::kText) {
        return;  // name never occurs in this document
      }
      for (NodeId c = doc.first_child(from); c != kNoNode;
           c = doc.next_sibling(c)) {
        if (matches(c)) out->push_back(NodeRef{doc_id, c});
      }
      return;
    }
    case Axis::kDescendant: {
      if (name_id == UINT32_MAX && !step.wildcard()) return;
      // Allocation-free pre-order walk of the subtree via the child/sibling
      // chains; emission order = document order.
      NodeId cur = doc.first_child(from);
      while (cur != kNoNode) {
        if (matches(cur)) out->push_back(NodeRef{doc_id, cur});
        NodeId child = doc.kind(cur) == NodeKind::kElement
                           ? doc.first_child(cur)
                           : kNoNode;
        if (child != kNoNode) {
          cur = child;
          continue;
        }
        while (cur != kNoNode) {
          NodeId sibling = doc.next_sibling(cur);
          if (sibling != kNoNode) {
            cur = sibling;
            break;
          }
          NodeId parent = doc.parent(cur);
          cur = parent == from ? kNoNode : parent;
        }
      }
      return;
    }
  }
}

}  // namespace

void EvalPathInto(const Store& store, const Path& path, NodeRef context,
                  XPathStats* stats, std::vector<NodeRef>* out) {
  // Scratch reused across the (very frequent) per-tuple path evaluations.
  // EvalPathInto never re-enters itself, so the thread-local scratch cannot
  // be aliased.
  static thread_local std::vector<NodeRef> current;
  static thread_local std::vector<NodeRef> next;
  current.clear();
  if (path.absolute()) {
    current.push_back(NodeRef{context.doc, store.document(context.doc).root()});
  } else {
    current.push_back(context);
  }
  for (const Step& step : path.steps()) {
    if (stats != nullptr) ++stats->steps_evaluated;
    next.clear();
    // Resolve the step name against each document's interner once, not per
    // context node.
    DocId last_doc = UINT32_MAX;
    uint32_t name_id = UINT32_MAX;
    for (const NodeRef& ref : current) {
      const Document& doc = store.document(ref.doc);
      if (ref.doc != last_doc) {
        last_doc = ref.doc;
        name_id = step.wildcard() ? UINT32_MAX : doc.names().Find(step.name);
      }
      ApplyStep(doc, ref.doc, step, name_id, ref.id, &next, stats);
    }
    // Starting from a single context node, child/attribute steps keep
    // document order and produce no duplicates. A descendant step applied to
    // several context nodes can produce out-of-order duplicates (ancestor
    // and descendant both in `current`); normalize.
    if (current.size() > 1 && step.axis == Axis::kDescendant) {
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
    }
    current.swap(next);
  }
  out->assign(current.begin(), current.end());
}

std::vector<NodeRef> EvalPath(const Store& store, const Path& path,
                              NodeRef context, XPathStats* stats) {
  std::vector<NodeRef> out;
  EvalPathInto(store, path, context, stats, &out);
  return out;
}

std::vector<NodeRef> EvalPath(const Store& store, const Path& path,
                              std::span<const NodeRef> context,
                              XPathStats* stats) {
  std::vector<NodeRef> out;
  for (const NodeRef& ref : context) {
    std::vector<NodeRef> one = EvalPath(store, path, ref, stats);
    out.insert(out.end(), one.begin(), one.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace nalq::xml
