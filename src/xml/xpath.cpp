#include "xml/xpath.h"

#include <algorithm>
#include <stdexcept>

namespace nalq::xml {

namespace {

bool IsStepChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

}  // namespace

Path Path::Parse(std::string_view text) {
  std::vector<Step> steps;
  bool absolute = false;
  size_t i = 0;
  auto fail = [&](const std::string& message) {
    throw std::invalid_argument("bad path '" + std::string(text) +
                                "': " + message);
  };
  Axis pending = Axis::kChild;
  if (text.substr(0, 2) == "//") {
    absolute = true;
    pending = Axis::kDescendant;
    i = 2;
  } else if (!text.empty() && text[0] == '/') {
    absolute = true;
    i = 1;
  }
  for (;;) {
    if (i >= text.size()) fail("trailing separator or empty path");
    Step step;
    step.axis = pending;
    if (text[i] == '@') {
      if (pending == Axis::kDescendant) fail("//@ not supported");
      step.axis = Axis::kAttribute;
      ++i;
    }
    if (i < text.size() && text[i] == '*') {
      step.name = "*";
      ++i;
    } else {
      size_t start = i;
      while (i < text.size() && IsStepChar(text[i])) ++i;
      if (i == start) fail("expected step name");
      step.name = std::string(text.substr(start, i - start));
      if (step.name == "text" && text.substr(i, 2) == "()") {
        step.axis = pending == Axis::kDescendant ? Axis::kDescendant
                                                 : Axis::kText;
        if (pending == Axis::kDescendant) fail("//text() not supported");
        i += 2;
      }
    }
    steps.push_back(std::move(step));
    if (i >= text.size()) break;
    if (text.substr(i, 2) == "//") {
      pending = Axis::kDescendant;
      i += 2;
    } else if (text[i] == '/') {
      pending = Axis::kChild;
      ++i;
    } else {
      fail("unexpected character");
    }
  }
  return Path(absolute, std::move(steps));
}

Path Path::Concat(const Path& rest) const& {
  Path out;
  out.absolute_ = absolute_;
  out.steps_.reserve(steps_.size() + rest.steps_.size());
  out.steps_.insert(out.steps_.end(), steps_.begin(), steps_.end());
  out.steps_.insert(out.steps_.end(), rest.steps_.begin(), rest.steps_.end());
  return out;
}

Path Path::Concat(const Path& rest) && {
  steps_.reserve(steps_.size() + rest.steps_.size());
  steps_.insert(steps_.end(), rest.steps_.begin(), rest.steps_.end());
  return std::move(*this);
}

std::string Path::ToString() const {
  std::string out;
  bool first = true;
  for (const Step& s : steps_) {
    if (s.axis == Axis::kDescendant) {
      out += "//";
    } else if (!first || absolute_) {
      out += "/";
    }
    if (s.axis == Axis::kAttribute) out += '@';
    out += s.axis == Axis::kText ? "text()" : s.name;
    first = false;
  }
  return out;
}

namespace {

/// Appends all matching nodes for one step from `from`, in document order,
/// by walking the child/sibling chains (PathEvalMode::kScan, and the
/// chain-walk side of the indexed child/attribute fast path). `name_id` is
/// the step name resolved against `doc`'s interner (resolved once per step
/// by the caller, not per context node).
void ApplyStep(const Document& doc, DocId doc_id, const Step& step,
               uint32_t name_id, NodeId from, std::vector<NodeRef>* out,
               XPathStats* stats) {
  auto matches = [&](NodeId id) {
    if (stats != nullptr) ++stats->nodes_visited;
    const Node& n = doc.node(id);
    switch (step.axis) {
      case Axis::kText:
        return n.kind == NodeKind::kText;
      case Axis::kAttribute:
        return false;  // attributes handled separately
      default:
        return n.kind == NodeKind::kElement &&
               (step.wildcard() || n.name == name_id);
    }
  };
  switch (step.axis) {
    case Axis::kAttribute: {
      if (doc.kind(from) != NodeKind::kElement) return;
      if (name_id == UINT32_MAX && !step.wildcard()) return;
      for (NodeId a = doc.first_attr(from); a != kNoNode;
           a = doc.next_sibling(a)) {
        if (stats != nullptr) ++stats->nodes_visited;
        if (step.wildcard() || doc.name_id(a) == name_id) {
          out->push_back(NodeRef{doc_id, a});
        }
      }
      return;
    }
    case Axis::kChild:
    case Axis::kText: {
      if (name_id == UINT32_MAX && !step.wildcard() &&
          step.axis != Axis::kText) {
        return;  // name never occurs in this document
      }
      for (NodeId c = doc.first_child(from); c != kNoNode;
           c = doc.next_sibling(c)) {
        if (matches(c)) out->push_back(NodeRef{doc_id, c});
      }
      return;
    }
    case Axis::kDescendant: {
      if (name_id == UINT32_MAX && !step.wildcard()) return;
      // Allocation-free pre-order walk of the subtree via the child/sibling
      // chains; emission order = document order.
      NodeId cur = doc.first_child(from);
      while (cur != kNoNode) {
        if (matches(cur)) out->push_back(NodeRef{doc_id, cur});
        NodeId child = doc.kind(cur) == NodeKind::kElement
                           ? doc.first_child(cur)
                           : kNoNode;
        if (child != kNoNode) {
          cur = child;
          continue;
        }
        while (cur != kNoNode) {
          NodeId sibling = doc.next_sibling(cur);
          if (sibling != kNoNode) {
            cur = sibling;
            break;
          }
          NodeId parent = doc.parent(cur);
          cur = parent == from ? kNoNode : parent;
        }
      }
      return;
    }
  }
}

/// True if the sorted, duplicate-free preorder list `refs` contains an
/// ancestor-descendant pair. In preorder, when refs[i] is an ancestor of any
/// later entry it is an ancestor of refs[i+1] in particular (everything
/// between them lies inside refs[i]'s extent), so adjacent checks suffice.
bool HasNestedPair(const Document& doc, const std::vector<NodeRef>& refs) {
  for (size_t i = 0; i + 1 < refs.size(); ++i) {
    if (refs[i + 1].id < doc.subtree_end(refs[i].id)) return true;
  }
  return false;
}

/// Indexed descendant step over the whole context list: one merged pass over
/// the name's occurrence list. The contexts arrive sorted in document order
/// with laminar subtree extents, so a monotone cursor into the occurrence
/// list both restarts each range scan where the previous one ended and skips
/// ranges already covered by an enclosing context — the output is in
/// document order and duplicate-free with no sort+unique normalization.
void IndexedDescendantStep(const Document& doc, DocId doc_id,
                           const DocumentIndex& index, const Step& step,
                           uint32_t name_id,
                           const std::vector<NodeRef>& contexts,
                           std::vector<NodeRef>* out, XPathStats* stats) {
  std::span<const NodeId> list =
      step.wildcard() ? index.AllElements() : index.Elements(name_id);
  size_t cursor = 0;
  for (const NodeRef& ref : contexts) {
    NodeId lo = ref.id + 1;  // strict descendants: the extent minus self
    NodeId hi = doc.subtree_end(ref.id);
    if (stats != nullptr) {
      ++stats->index_lookups;
      ++stats->index_hits;
      // The scan walk would have visited the whole extent per context
      // (nested contexts re-walk their subtree), minus the attributes it
      // never descends into... the extent count is the upper bound we
      // report.
      stats->index_nodes_skipped += hi - lo;
    }
    if (cursor >= list.size()) continue;
    auto first = std::lower_bound(list.begin() + cursor, list.end(), lo);
    auto last = std::lower_bound(first, list.end(), hi);
    size_t k = static_cast<size_t>(last - first);
    if (stats != nullptr) {
      stats->nodes_visited += k;
      stats->index_nodes_skipped -= k;
    }
    out->reserve(out->size() + k);
    for (auto it = first; it != last; ++it) {
      out->push_back(NodeRef{doc_id, *it});
    }
    cursor = static_cast<size_t>(last - list.begin());
  }
}

/// Child/attribute/text step from one context via the occurrence list:
/// binary-search the slice inside the context's extent and keep the entries
/// whose parent is the context. Returns false when the chain walk is the
/// better plan (wildcard step, or the slice is not much smaller than the
/// subtree — the ancestor-check filter would touch more nodes than the
/// child chain).
bool TryIndexedDirectStep(const Document& doc, DocId doc_id,
                          const DocumentIndex& index, const Step& step,
                          uint32_t name_id, NodeId from,
                          std::vector<NodeRef>* out, XPathStats* stats) {
  if (step.wildcard()) return false;  // no single occurrence list to slice
  std::span<const NodeId> list;
  switch (step.axis) {
    case Axis::kChild:
      list = index.Elements(name_id);
      break;
    case Axis::kText:
      list = index.TextNodes();
      break;
    case Axis::kAttribute:
      if (doc.kind(from) != NodeKind::kElement) return true;  // no attrs
      list = index.Attributes(name_id);
      break;
    default:
      return false;
  }
  NodeId lo = from + 1;
  NodeId hi = doc.subtree_end(from);
  // Small subtree: the chain walk touches at most `extent` nodes
  // sequentially, cheaper than two binary searches over a document-wide
  // occurrence list (the per-tuple hot case — child steps from one small
  // element).
  if (hi - lo <= 64) return false;
  if (stats != nullptr) ++stats->index_lookups;
  auto first = std::lower_bound(list.begin(), list.end(), lo);
  auto last = std::lower_bound(first, list.end(), hi);
  size_t k = static_cast<size_t>(last - first);
  if (k == 0) {
    // The name never occurs below the context: provably empty, no walk.
    if (stats != nullptr) ++stats->index_hits;
    return true;
  }
  // The slice holds every occurrence in the whole subtree; filtering it on
  // parent == context only beats walking the child chain when the slice is
  // much smaller than the subtree (the extent is the proxy for the chain
  // length we would walk).
  if (k * 8 > static_cast<size_t>(hi - lo)) return false;
  if (stats != nullptr) {
    ++stats->index_hits;
    stats->nodes_visited += k;
  }
  out->reserve(out->size() + k);
  for (auto it = first; it != last; ++it) {
    if (doc.parent(*it) == from) out->push_back(NodeRef{doc_id, *it});
  }
  return true;
}

}  // namespace

void EvalPathInto(const Store& store, const Path& path, NodeRef context,
                  XPathStats* stats, std::vector<NodeRef>* out,
                  PathEvalMode mode) {
  // Scratch reused across the (very frequent) per-tuple path evaluations.
  // EvalPathInto never re-enters itself, so the thread-local scratch cannot
  // be aliased.
  static thread_local std::vector<NodeRef> current;
  static thread_local std::vector<NodeRef> next;
  current.clear();
  // Every node reachable from the single context (or its document root)
  // stays in the context's document, so documents, step names and the index
  // resolve once per step instead of per context node.
  const DocId doc_id = context.doc;
  const Document& doc = store.document(doc_id);
  current.push_back(path.absolute() ? NodeRef{doc_id, doc.root()} : context);
  const DocumentIndex* index =
      mode == PathEvalMode::kIndexed ? &store.index(doc_id) : nullptr;
  // Invariant at every step boundary: `current` is sorted in document order
  // and duplicate-free. `nested` tracks whether it may contain an
  // ancestor-descendant pair — the only configuration whose step outputs
  // can come out of order or duplicated and need re-normalizing.
  bool nested = false;
  const std::vector<Step>& steps = path.steps();
  for (size_t si = 0; si < steps.size(); ++si) {
    const Step& step = steps[si];
    if (stats != nullptr) ++stats->steps_evaluated;
    next.clear();
    uint32_t name_id =
        step.wildcard() ? UINT32_MAX : doc.names().Find(step.name);
    if (index != nullptr && step.axis == Axis::kDescendant) {
      // Range scans emit document order duplicate-free by construction,
      // even from nested contexts (the monotone list cursor).
      IndexedDescendantStep(doc, doc_id, *index, step, name_id, current,
                            &next, stats);
    } else {
      for (const NodeRef& ref : current) {
        if (index != nullptr &&
            TryIndexedDirectStep(doc, doc_id, *index, step, name_id, ref.id,
                                 &next, stats)) {
          continue;
        }
        ApplyStep(doc, doc_id, step, name_id, ref.id, &next, stats);
      }
      if (current.size() > 1 && nested) {
        // Nested contexts: a descendant chain walk re-emits the inner
        // context's matches (duplicates), and child/attribute/text outputs
        // of the ancestor interleave around the inner context's outputs
        // (order). Disjoint contexts need neither — their outputs
        // concatenate in document order.
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
      }
    }
    if (si + 1 < steps.size()) {
      // Only a descendant step, or any step from already-nested contexts,
      // can introduce an ancestor-descendant pair.
      bool could_nest = step.axis == Axis::kDescendant || nested;
      nested = could_nest && next.size() > 1 && HasNestedPair(doc, next);
    }
    current.swap(next);
  }
  out->assign(current.begin(), current.end());
}

std::vector<NodeRef> EvalPath(const Store& store, const Path& path,
                              NodeRef context, XPathStats* stats,
                              PathEvalMode mode) {
  std::vector<NodeRef> out;
  EvalPathInto(store, path, context, stats, &out, mode);
  return out;
}

std::vector<NodeRef> EvalPath(const Store& store, const Path& path,
                              std::span<const NodeRef> context,
                              XPathStats* stats, PathEvalMode mode) {
  std::vector<NodeRef> out;
  std::vector<NodeRef> one;
  for (const NodeRef& ref : context) {
    EvalPathInto(store, path, ref, stats, &one, mode);
    out.insert(out.end(), one.begin(), one.end());
  }
  // Each per-context result is sorted and duplicate-free already; the merge
  // is only needed when concatenation broke strict document order
  // (overlapping context subtrees, or contexts given out of order).
  bool ordered = true;
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    if (!(out[i] < out[i + 1])) {
      ordered = false;
      break;
    }
  }
  if (!ordered) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

}  // namespace nalq::xml
