// In-memory document store: the "database" documents are loaded into and the
// resolver behind the XQuery doc()/document() functions.
#ifndef NALQ_XML_STORE_H_
#define NALQ_XML_STORE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/index.h"
#include "xml/node.h"

namespace nalq::xml {

/// Owns a set of named documents. Document handles (DocId) are stable for the
/// lifetime of the store.
class Store {
 public:
  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Adds (or replaces) a document under its own name. Returns its id.
  DocId AddDocument(Document doc);

  /// Parses `xml_text` and adds it under `name`.
  DocId AddDocumentText(std::string name, std::string_view xml_text);

  /// Looks a document up by name.
  std::optional<DocId> Find(std::string_view name) const;

  const Document& document(DocId id) const { return *documents_[id]; }
  Document& document(DocId id) { return *documents_[id]; }
  size_t size() const { return documents_.size(); }

  /// Resolves a NodeRef to its document.
  const Document& doc_of(const NodeRef& ref) const {
    return *documents_[ref.doc];
  }

  /// The document's structural index (xml/index.h), built lazily on first
  /// use. AddDocument invalidates the slot when it replaces a document, and
  /// a stale index (document mutated after the build) is rebuilt here.
  /// Evaluation is single-threaded (see Document::SharedStringValue), so the
  /// mutable lazy build needs no synchronization.
  const DocumentIndex& index(DocId id) const;

 private:
  std::vector<std::unique_ptr<Document>> documents_;
  std::unordered_map<std::string, DocId> by_name_;
  mutable std::vector<std::unique_ptr<DocumentIndex>> indexes_;
};

}  // namespace nalq::xml

#endif  // NALQ_XML_STORE_H_
