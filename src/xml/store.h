// In-memory document store: the "database" documents are loaded into and the
// resolver behind the XQuery doc()/document() functions.
//
// Concurrency contract (single writer, many readers): loading or mutating
// documents and evaluating queries never overlap. AddDocument /
// AddDocumentText / AttachSource / in-place mutation through the non-const
// document() accessor may only run while no evaluation is in flight; during
// an evaluation any number of threads (the parallel executor's workers,
// nal/exchange.h) may read documents and indexes concurrently. Readers
// announce themselves through BeginRead/EndRead — every evaluation entry
// point holds a StoreReadLease for the duration of the run (Evaluator::Eval,
// the streaming Drain/Execute helpers, the parallel exchange) — and
// AddDocument asserts in Debug builds that no reader is open, catching the
// use-after-invalidate where a cursor still iterates an index slot that
// AddDocument is about to reset.
//
// Stale-state repair (a document mutated in place since its index or
// string-value memo was built) happens at the lease boundary, where the
// contract guarantees writer-exclusivity relative to *new* readers: the
// lease pre-sizes every resident document's string-value memo and drops
// stale index slots, so during evaluation the lock-free read paths only
// ever observe null→published transitions, never frees or relocations.
//
// Lazy residency (persistent stores, src/storage/): a Store may be backed
// by a DocumentSource (xml/document_source.h). Attached documents start
// non-resident and fault in on first access — node reads, indexed XPath
// and the stats-backed optimizer all work without materializing the whole
// corpus — and are evicted back out at reader-free lease boundaries when
// the source's residency exceeds its cache limit. Eviction never bumps
// version(): the source's reconstruction-determinism contract means a
// refault rebuilds a field-for-field identical document, so indexes,
// statistics and compiled plans stay valid across it.
#ifndef NALQ_XML_STORE_H_
#define NALQ_XML_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/document_source.h"
#include "xml/index.h"
#include "xml/node.h"
#include "xml/stats.h"

namespace nalq::xml {

/// Owns a set of named documents. Document handles (DocId) are stable for the
/// lifetime of the store.
class Store {
 public:
  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Adds (or replaces) a document under its own name. Returns its id.
  /// Writer-side of the single-writer contract: must not run while any
  /// reader is registered (Debug builds assert). Replacing a lazily
  /// attached document detaches that slot from the source — the in-memory
  /// document wins from then on and is never evicted.
  DocId AddDocument(Document doc);

  /// Parses `xml_text` and adds it under `name`.
  DocId AddDocumentText(std::string name, std::string_view xml_text);

  /// Attaches a lazy document source (a persisted store): registers one
  /// slot per source document without materializing any of them. Writer
  /// side of the single-writer contract. A source document whose name
  /// collides with an existing document replaces it. At most one source
  /// may be attached per Store.
  void AttachSource(std::unique_ptr<DocumentSource> source);

  /// The attached source, or null.
  const DocumentSource* source() const { return source_.get(); }

  /// Looks a document up by name.
  std::optional<DocId> Find(std::string_view name) const;

  /// Document access. Resident documents are one acquire-load; a
  /// non-resident (lazily attached) document faults in through the source
  /// first, which may throw engine::Error on a corrupt or unreadable
  /// persisted store. The non-const form pins the document resident (an
  /// in-place mutation could not survive eviction).
  const Document& document(DocId id) const {
    const Document* doc = docs_[id]->ready.load(std::memory_order_acquire);
    return doc != nullptr ? *doc : FaultIn(id);
  }
  Document& document(DocId id) {
    DocSlot& slot = *docs_[id];
    if (slot.ready.load(std::memory_order_acquire) == nullptr) FaultIn(id);
    slot.pinned = true;
    return *slot.doc;
  }
  size_t size() const { return docs_.size(); }

  /// Name document `id` is registered under (available without faulting
  /// the document in).
  const std::string& document_name(DocId id) const { return docs_[id]->name; }

  /// True iff `id` is currently materialized in memory.
  bool resident(DocId id) const {
    return docs_[id]->ready.load(std::memory_order_acquire) != nullptr;
  }

  /// Resolves a NodeRef to its document.
  const Document& doc_of(const NodeRef& ref) const {
    return document(ref.doc);
  }

  /// The document's structural index (xml/index.h), built lazily on first
  /// use. AddDocument invalidates the slot when it replaces a document, and
  /// a stale index (document mutated after the build) is rebuilt here.
  /// Safe under concurrent readers: the built index is published through an
  /// atomic pointer (one acquire-load on the hot path) and cold builds are
  /// serialized by a build mutex — a build-once latch per document. The
  /// stale-rebuild path retires (never frees) the previous index, so a
  /// reader that loaded the old pointer just before the rebuild still
  /// dereferences live memory; retired indexes are reclaimed by the next
  /// writer (AddDocument) or lease boundary, both reader-free by contract.
  /// For lazily attached documents the cold path first asks the source for
  /// a persisted index and only falls back to building one.
  const DocumentIndex& index(DocId id) const;

  /// The document's cardinality statistics (xml/stats.h), built lazily on
  /// first use by the cost-based optimizer (src/opt/) and cached alongside
  /// the index with the same lifecycle: AddDocument invalidates the slot,
  /// a stale build (document mutated afterwards) is rebuilt here, the built
  /// statistics are published through an atomic pointer and cold builds are
  /// serialized by a build mutex. Building statistics forces the index
  /// build first (the value scans walk the occurrence lists). Lazily
  /// attached documents load persisted statistics when the source has them.
  const DocumentStats& stats(DocId id) const;

  /// Lease-boundary stale repair (see the file comment): pre-sizes every
  /// resident document's string-value memo, drops stale index slots,
  /// reclaims retired indexes, and — when a source is attached, no reader
  /// is open and residency exceeds the source's cache limit — evicts
  /// resident unpinned documents in fault-in order until it fits. Called
  /// by StoreReadLease; must not run concurrently with document mutation
  /// (single-writer contract).
  void PrepareForRead() const;

  /// Reader registration for the single-writer contract (see file comment).
  /// Pair every BeginRead with one EndRead (or use StoreReadLease below).
  /// Held for the duration of an evaluation — while cursors are open — not
  /// for the lifetime of an Evaluator, so a test may still construct an
  /// evaluator first and load documents afterwards. Both ends register
  /// under reader_reg_mu_, the lock eviction re-verifies reader-freedom
  /// under. BeginRead needs it so a reader cannot register (and start
  /// dereferencing a resident document) between EvictOverLimit's
  /// reader-free check and the free — a use-after-free. EndRead needs it
  /// for the memory-model edge in the other direction: the mutex makes a
  /// finished reader's document accesses happen-before any eviction that
  /// later observes the store reader-free. A lock-free relaxed decrement
  /// is logically ordered but carries no such edge — the reader's last
  /// loads may be reordered past it, racing the free (TSan flags it).
  void BeginRead() const {
    std::lock_guard<std::mutex> lock(reader_reg_mu_);
    open_readers_.fetch_add(1, std::memory_order_relaxed);
  }
  void EndRead() const {
    std::lock_guard<std::mutex> lock(reader_reg_mu_);
    open_readers_.fetch_sub(1, std::memory_order_relaxed);
  }
  int open_readers() const {
    return open_readers_.load(std::memory_order_relaxed);
  }

  /// Monotonic content version: bumped by every AddDocument and
  /// AttachSource (and by BumpVersion for out-of-store changes that affect
  /// compilation, e.g. a DTD registration — Engine::RegisterDtd calls it).
  /// Anything derived from store contents or statistics — the query
  /// service's plan cache in particular — keys on this and treats a
  /// mismatch as stale. Eviction and refault of a lazily attached document
  /// deliberately do NOT bump it: content is unchanged, so cached plans
  /// stay valid. Writes ride the single-writer contract; reads are a
  /// relaxed load.
  uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }
  void BumpVersion() { version_.fetch_add(1, std::memory_order_relaxed); }

 private:
  /// One document slot. `ready` publishes the resident document to readers
  /// (acquire-load hot path); `doc` owns it. Lazily attached slots start
  /// with `ready == nullptr` and fault in through the source; eviction
  /// (only ever at reader-free lease boundaries) resets `ready` and frees
  /// `doc`. `pinned` marks documents that must stay resident: everything
  /// added eagerly through AddDocument, and any attached document handed
  /// out mutably.
  struct DocSlot {
    std::string name;
    std::unique_ptr<Document> doc;
    std::atomic<const Document*> ready{nullptr};
    bool lazy = false;         ///< backed by source_ (source_index valid)
    bool pinned = false;       ///< never evict
    size_t source_index = 0;
    uint64_t last_fault = 0;   ///< fault-in order, eviction victims oldest-first
  };

  /// One lazily built index. The unique_ptr owns the storage; `ready`
  /// republishes it to readers without taking the build mutex on hits.
  /// `retired` keeps replaced stale indexes alive until a reader-free
  /// point (AddDocument / PrepareForRead) reclaims them.
  struct IndexSlot {
    std::unique_ptr<DocumentIndex> index;
    std::atomic<const DocumentIndex*> ready{nullptr};
    std::vector<std::unique_ptr<DocumentIndex>> retired;
  };

  /// One lazily built statistics set, same publication discipline as
  /// IndexSlot (atomic ready pointer, retirement until a reader-free point).
  struct StatsSlot {
    std::unique_ptr<DocumentStats> stats;
    std::atomic<const DocumentStats*> ready{nullptr};
    std::vector<std::unique_ptr<DocumentStats>> retired;
  };

  /// Slow path of document(): materializes a lazily attached document
  /// through the source (build-once under fault_mu_, atomic publication).
  const Document& FaultIn(DocId id) const;

  /// Registers (or replaces) the slot for a document named `name`,
  /// invalidating its index and stats slots. Returns its id.
  DocId UpsertSlot(const std::string& name);

  /// Evicts resident unpinned lazy documents, oldest fault first, until the
  /// source's residency fits its cache limit. Holds reader_reg_mu_ for the
  /// duration and re-verifies open_readers()==0 under it, so a concurrent
  /// lease entering through BeginRead either registers before the check
  /// (eviction skipped) or blocks until eviction finishes (and then faults
  /// evicted documents back in) — never observes a mid-free document. The
  /// same lock in EndRead orders a finished reader's accesses before the
  /// frees here (see BeginRead/EndRead).
  void EvictOverLimit() const;

  // Slot pointers are stable; the vectors themselves only grow inside
  // AddDocument / AttachSource (writer-exclusive), so readers may index
  // them freely. `docs_` is mutable because fault-in happens on the const
  // read path.
  mutable std::vector<std::unique_ptr<DocSlot>> docs_;
  std::unordered_map<std::string, DocId> by_name_;
  std::unique_ptr<DocumentSource> source_;
  mutable std::vector<std::unique_ptr<IndexSlot>> indexes_;
  mutable std::vector<std::unique_ptr<StatsSlot>> stats_;
  mutable std::mutex fault_mu_;
  mutable std::mutex index_build_mu_;
  mutable std::mutex stats_build_mu_;
  /// Serializes reader registration (BeginRead) with eviction
  /// (EvictOverLimit); see BeginRead. Lock order where nested:
  /// reader_reg_mu_ before fault_mu_; never held with the build mutexes.
  mutable std::mutex reader_reg_mu_;
  mutable uint64_t fault_clock_ = 0;
  mutable std::atomic<int> open_readers_{0};
  std::atomic<uint64_t> version_{0};
};

/// RAII reader registration: every evaluation entry point (Evaluator::Eval,
/// the streaming Drain/Execute helpers, the parallel exchange) holds one of
/// these while its cursors are open.
class StoreReadLease {
 public:
  explicit StoreReadLease(const Store& store) : store_(&store) {
    store_->PrepareForRead();
    store_->BeginRead();
  }
  ~StoreReadLease() { store_->EndRead(); }
  StoreReadLease(const StoreReadLease&) = delete;
  StoreReadLease& operator=(const StoreReadLease&) = delete;

 private:
  const Store* store_;
};

}  // namespace nalq::xml

#endif  // NALQ_XML_STORE_H_
