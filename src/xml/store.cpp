#include "xml/store.h"

#include "xml/parser.h"

namespace nalq::xml {

DocId AddDocumentImpl(std::vector<std::unique_ptr<Document>>* documents,
                      std::unordered_map<std::string, DocId>* by_name,
                      Document doc) {
  const std::string name = doc.name();  // copied: doc is moved away below
  auto it = by_name->find(name);
  if (it != by_name->end()) {
    (*documents)[it->second] = std::make_unique<Document>(std::move(doc));
    return it->second;
  }
  DocId id = static_cast<DocId>(documents->size());
  documents->push_back(std::make_unique<Document>(std::move(doc)));
  by_name->emplace(name, id);
  return id;
}

DocId Store::AddDocument(Document doc) {
  DocId id = AddDocumentImpl(&documents_, &by_name_, std::move(doc));
  // Invalidate the structural index: the slot either belongs to the replaced
  // document or is fresh. Rebuilt lazily by index().
  if (indexes_.size() <= id) indexes_.resize(id + 1);
  indexes_[id].reset();
  return id;
}

const DocumentIndex& Store::index(DocId id) const {
  if (indexes_.size() <= id) indexes_.resize(id + 1);
  const Document& doc = *documents_[id];
  std::unique_ptr<DocumentIndex>& slot = indexes_[id];
  if (slot == nullptr || slot->built_node_count() != doc.node_count()) {
    slot = std::make_unique<DocumentIndex>(doc);
  }
  return *slot;
}

DocId Store::AddDocumentText(std::string name, std::string_view xml_text) {
  return AddDocument(ParseDocument(std::move(name), xml_text));
}

std::optional<DocId> Store::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? std::nullopt
                              : std::optional<DocId>(it->second);
}

}  // namespace nalq::xml
