#include "xml/store.h"

#include <cassert>

#include "xml/parser.h"

namespace nalq::xml {

DocId AddDocumentImpl(std::vector<std::unique_ptr<Document>>* documents,
                      std::unordered_map<std::string, DocId>* by_name,
                      Document doc) {
  const std::string name = doc.name();  // copied: doc is moved away below
  auto it = by_name->find(name);
  if (it != by_name->end()) {
    (*documents)[it->second] = std::make_unique<Document>(std::move(doc));
    return it->second;
  }
  DocId id = static_cast<DocId>(documents->size());
  documents->push_back(std::make_unique<Document>(std::move(doc)));
  by_name->emplace(name, id);
  return id;
}

DocId Store::AddDocument(Document doc) {
  // Single-writer contract: replacing a document resets its index slot, so
  // a concurrently open cursor could keep scanning a freed index. Catch the
  // misuse in Debug builds; the contract itself is documented in store.h.
  assert(open_readers() == 0 &&
         "Store::AddDocument while cursors are open: loading and evaluation "
         "must not overlap (see single-writer contract in xml/store.h)");
  DocId id = AddDocumentImpl(&documents_, &by_name_, std::move(doc));
  // Pre-size the string-value memo while we are still writer-exclusive, so
  // parallel readers never race a lazy grow (xml/node.h).
  documents_[id]->PrepareSharedReads();
  // Invalidate the structural index: the slot either belongs to the replaced
  // document or is fresh. Rebuilt lazily by index().
  if (indexes_.size() <= id) {
    indexes_.reserve(documents_.size());
    while (indexes_.size() <= id) {
      indexes_.push_back(std::make_unique<IndexSlot>());
    }
  }
  indexes_[id]->ready.store(nullptr, std::memory_order_release);
  indexes_[id]->index.reset();
  indexes_[id]->retired.clear();  // writer-exclusive: no reader holds them
  // Statistics (xml/stats.h) share the index's lifecycle.
  if (stats_.size() <= id) {
    stats_.reserve(documents_.size());
    while (stats_.size() <= id) {
      stats_.push_back(std::make_unique<StatsSlot>());
    }
  }
  stats_[id]->ready.store(nullptr, std::memory_order_release);
  stats_[id]->stats.reset();
  stats_[id]->retired.clear();
  BumpVersion();
  return id;
}

void Store::PrepareForRead() const {
  // Lease-boundary stale repair (see the file comment in store.h). Other
  // evaluations may already be running; for them every document is
  // unchanged since their own lease (mutation asserts reader-free), so
  // everything below is a no-op for their state — sizes already match,
  // no slot tests stale, nothing to reclaim — and never disturbs their
  // lock-free read paths.
  std::lock_guard<std::mutex> lock(index_build_mu_);
  for (DocId id = 0; id < documents_.size(); ++id) {
    documents_[id]->PrepareSharedReads();
    if (id >= indexes_.size()) continue;
    IndexSlot& slot = *indexes_[id];
    const DocumentIndex* ready = slot.ready.load(std::memory_order_acquire);
    if (ready != nullptr &&
        ready->built_node_count() != documents_[id]->node_count()) {
      // Mutated since the build: drop the stale index now, while no new
      // reader has started, so index() below only ever performs
      // null → build-once transitions during evaluation.
      slot.ready.store(nullptr, std::memory_order_release);
      slot.retired.push_back(std::move(slot.index));
    }
    if (open_readers() == 0) slot.retired.clear();
  }
  std::lock_guard<std::mutex> stats_lock(stats_build_mu_);
  for (DocId id = 0; id < documents_.size() && id < stats_.size(); ++id) {
    StatsSlot& slot = *stats_[id];
    const DocumentStats* ready = slot.ready.load(std::memory_order_acquire);
    if (ready != nullptr &&
        ready->built_node_count() != documents_[id]->node_count()) {
      slot.ready.store(nullptr, std::memory_order_release);
      slot.retired.push_back(std::move(slot.stats));
    }
    if (open_readers() == 0) slot.retired.clear();
  }
}

const DocumentIndex& Store::index(DocId id) const {
  assert(id < indexes_.size());
  IndexSlot& slot = *indexes_[id];
  const Document& doc = *documents_[id];
  // Hot path: one acquire-load. The node-count check catches a document
  // mutated in place after the build (grown via the non-const accessor);
  // under the single-writer contract every reader of the mutated document
  // sees the mismatch and funnels into the rebuild below.
  const DocumentIndex* ready = slot.ready.load(std::memory_order_acquire);
  if (ready != nullptr && ready->built_node_count() == doc.node_count()) {
    return *ready;
  }
  std::lock_guard<std::mutex> lock(index_build_mu_);
  ready = slot.ready.load(std::memory_order_acquire);
  if (ready == nullptr || ready->built_node_count() != doc.node_count()) {
    // Retire (don't free) a stale index: a concurrent reader may have
    // loaded the old pointer just before we got here. Under the lease
    // discipline this branch only sees `ready == nullptr` during an
    // evaluation (PrepareForRead dropped stale slots at the boundary), so
    // retirement is a safety net for leaseless single-threaded use.
    if (slot.index != nullptr) slot.retired.push_back(std::move(slot.index));
    slot.index = std::make_unique<DocumentIndex>(doc);
    ready = slot.index.get();
    slot.ready.store(ready, std::memory_order_release);
  }
  return *ready;
}

const DocumentStats& Store::stats(DocId id) const {
  assert(id < stats_.size());
  StatsSlot& slot = *stats_[id];
  const Document& doc = *documents_[id];
  const DocumentStats* ready = slot.ready.load(std::memory_order_acquire);
  if (ready != nullptr && ready->built_node_count() == doc.node_count()) {
    return *ready;
  }
  // Force the index build before taking the stats mutex (index() takes its
  // own build mutex; nesting the two would order them arbitrarily across
  // call sites).
  const DocumentIndex& idx = index(id);
  std::lock_guard<std::mutex> lock(stats_build_mu_);
  ready = slot.ready.load(std::memory_order_acquire);
  if (ready == nullptr || ready->built_node_count() != doc.node_count()) {
    if (slot.stats != nullptr) slot.retired.push_back(std::move(slot.stats));
    slot.stats = std::make_unique<DocumentStats>(doc, idx);
    ready = slot.stats.get();
    slot.ready.store(ready, std::memory_order_release);
  }
  return *ready;
}

DocId Store::AddDocumentText(std::string name, std::string_view xml_text) {
  return AddDocument(ParseDocument(std::move(name), xml_text));
}

std::optional<DocId> Store::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? std::nullopt
                              : std::optional<DocId>(it->second);
}

}  // namespace nalq::xml
