#include "xml/store.h"

#include <cassert>
#include <utility>

#include "xml/parser.h"

namespace nalq::xml {

DocId Store::UpsertSlot(const std::string& name) {
  DocId id;
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    id = it->second;
  } else {
    id = static_cast<DocId>(docs_.size());
    docs_.push_back(std::make_unique<DocSlot>());
    docs_[id]->name = name;
    by_name_.emplace(name, id);
  }
  // Invalidate the structural index: the slot either belongs to the replaced
  // document or is fresh. Rebuilt lazily by index().
  if (indexes_.size() <= id) {
    indexes_.reserve(docs_.size());
    while (indexes_.size() <= id) {
      indexes_.push_back(std::make_unique<IndexSlot>());
    }
  }
  indexes_[id]->ready.store(nullptr, std::memory_order_release);
  indexes_[id]->index.reset();
  indexes_[id]->retired.clear();  // writer-exclusive: no reader holds them
  // Statistics (xml/stats.h) share the index's lifecycle.
  if (stats_.size() <= id) {
    stats_.reserve(docs_.size());
    while (stats_.size() <= id) {
      stats_.push_back(std::make_unique<StatsSlot>());
    }
  }
  stats_[id]->ready.store(nullptr, std::memory_order_release);
  stats_[id]->stats.reset();
  stats_[id]->retired.clear();
  return id;
}

DocId Store::AddDocument(Document doc) {
  // Single-writer contract: replacing a document resets its index slot, so
  // a concurrently open cursor could keep scanning a freed index. Catch the
  // misuse in Debug builds; the contract itself is documented in store.h.
  assert(open_readers() == 0 &&
         "Store::AddDocument while cursors are open: loading and evaluation "
         "must not overlap (see single-writer contract in xml/store.h)");
  DocId id = UpsertSlot(doc.name());
  DocSlot& slot = *docs_[id];
  // An eagerly added document detaches the slot from any lazy source: the
  // in-memory content wins and must never be evicted back to disk state.
  slot.ready.store(nullptr, std::memory_order_release);
  slot.doc = std::make_unique<Document>(std::move(doc));
  slot.lazy = false;
  slot.pinned = true;
  // Pre-size the string-value memo while we are still writer-exclusive, so
  // parallel readers never race a lazy grow (xml/node.h).
  slot.doc->PrepareSharedReads();
  slot.ready.store(slot.doc.get(), std::memory_order_release);
  BumpVersion();
  return id;
}

void Store::AttachSource(std::unique_ptr<DocumentSource> source) {
  assert(open_readers() == 0 &&
         "Store::AttachSource while cursors are open: loading and evaluation "
         "must not overlap (see single-writer contract in xml/store.h)");
  assert(source_ == nullptr && "a Store holds at most one DocumentSource");
  source_ = std::move(source);
  for (size_t i = 0; i < source_->document_count(); ++i) {
    DocId id = UpsertSlot(source_->document_name(i));
    DocSlot& slot = *docs_[id];
    slot.ready.store(nullptr, std::memory_order_release);
    slot.doc.reset();
    slot.lazy = true;
    slot.pinned = false;
    slot.source_index = i;
  }
  BumpVersion();
}

const Document& Store::FaultIn(DocId id) const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  DocSlot& slot = *docs_[id];
  const Document* doc = slot.ready.load(std::memory_order_acquire);
  if (doc != nullptr) return *doc;  // lost the race: already resident
  assert(slot.lazy && source_ != nullptr &&
         "non-resident document without a source to fault it in from");
  auto loaded =
      std::make_unique<Document>(source_->LoadDocument(slot.source_index));
  // Pre-size the string-value memo before publication so concurrent
  // readers of the freshly faulted document never race a lazy grow.
  loaded->PrepareSharedReads();
  slot.doc = std::move(loaded);
  slot.last_fault = ++fault_clock_;
  slot.ready.store(slot.doc.get(), std::memory_order_release);
  return *slot.doc;
}

void Store::EvictOverLimit() const {
  const uint64_t limit = source_->cache_limit_bytes();
  if (limit == 0) return;
  // Excluding reader registration for the duration makes the reader-free
  // check authoritative: the caller's unlocked open_readers() probe is only
  // a fast path, because a concurrent StoreReadLease could complete
  // BeginRead between that probe and the frees below and start
  // dereferencing a document this loop is about to destroy. Under the
  // lock, a racing lease either registered first (the re-check sees it and
  // skips eviction) or blocks in BeginRead until eviction finishes and
  // faults evicted documents back in. Lock order: reader_reg_mu_ then
  // fault_mu_ (FaultIn takes fault_mu_ alone, BeginRead reader_reg_mu_
  // alone — no cycle).
  std::lock_guard<std::mutex> reg_lock(reader_reg_mu_);
  if (open_readers() != 0) return;
  std::lock_guard<std::mutex> lock(fault_mu_);
  while (source_->resident_bytes() > limit) {
    DocSlot* victim = nullptr;
    for (const auto& slot : docs_) {
      if (!slot->lazy || slot->pinned) continue;
      if (slot->ready.load(std::memory_order_acquire) == nullptr) continue;
      if (victim == nullptr || slot->last_fault < victim->last_fault) {
        victim = slot.get();
      }
    }
    if (victim == nullptr) break;  // everything left is pinned or gone
    // Reader-free (re-verified under reader_reg_mu_ above, which BeginRead
    // also takes), so the document can be freed outright — no retirement
    // needed. The index and statistics
    // slots stay published: reconstruction determinism (document_source.h)
    // keeps them valid for the refaulted incarnation, and version() is
    // deliberately not bumped (content unchanged, cached plans stay good).
    victim->ready.store(nullptr, std::memory_order_release);
    victim->doc.reset();
    source_->UnloadDocument(victim->source_index);
  }
}

void Store::PrepareForRead() const {
  // Lease-boundary stale repair (see the file comment in store.h). Other
  // evaluations may already be running; for them every document is
  // unchanged since their own lease (mutation asserts reader-free), so
  // everything below is a no-op for their state — sizes already match,
  // no slot tests stale, nothing to reclaim — and never disturbs their
  // lock-free read paths. Non-resident documents are skipped throughout:
  // they cannot be stale (eviction requires an unmutated, unpinned slot)
  // and faulting them in just to check would defeat lazy residency.
  {
    std::lock_guard<std::mutex> lock(index_build_mu_);
    for (DocId id = 0; id < docs_.size(); ++id) {
      const Document* doc = docs_[id]->ready.load(std::memory_order_acquire);
      if (doc != nullptr) doc->PrepareSharedReads();
      if (id >= indexes_.size()) continue;
      IndexSlot& slot = *indexes_[id];
      const DocumentIndex* ready = slot.ready.load(std::memory_order_acquire);
      if (doc != nullptr && ready != nullptr &&
          ready->built_node_count() != doc->node_count()) {
        // Mutated since the build: drop the stale index now, while no new
        // reader has started, so index() below only ever performs
        // null → build-once transitions during evaluation.
        slot.ready.store(nullptr, std::memory_order_release);
        slot.retired.push_back(std::move(slot.index));
      }
      if (open_readers() == 0) slot.retired.clear();
    }
    std::lock_guard<std::mutex> stats_lock(stats_build_mu_);
    for (DocId id = 0; id < docs_.size() && id < stats_.size(); ++id) {
      const Document* doc = docs_[id]->ready.load(std::memory_order_acquire);
      StatsSlot& slot = *stats_[id];
      const DocumentStats* ready = slot.ready.load(std::memory_order_acquire);
      if (doc != nullptr && ready != nullptr &&
          ready->built_node_count() != doc->node_count()) {
        slot.ready.store(nullptr, std::memory_order_release);
        slot.retired.push_back(std::move(slot.stats));
      }
      if (open_readers() == 0) slot.retired.clear();
    }
  }
  // The open_readers() probe is only a fast path — EvictOverLimit
  // re-verifies it under reader_reg_mu_, which BeginRead also takes, so a
  // lease completing registration concurrently can never lose a resident
  // document it is about to read.
  if (source_ != nullptr && open_readers() == 0) EvictOverLimit();
}

const DocumentIndex& Store::index(DocId id) const {
  assert(id < indexes_.size());
  IndexSlot& slot = *indexes_[id];
  const Document& doc = document(id);  // faults in if lazily attached
  // Hot path: one acquire-load. The node-count check catches a document
  // mutated in place after the build (grown via the non-const accessor);
  // under the single-writer contract every reader of the mutated document
  // sees the mismatch and funnels into the rebuild below.
  const DocumentIndex* ready = slot.ready.load(std::memory_order_acquire);
  if (ready != nullptr && ready->built_node_count() == doc.node_count()) {
    return *ready;
  }
  std::lock_guard<std::mutex> lock(index_build_mu_);
  ready = slot.ready.load(std::memory_order_acquire);
  if (ready == nullptr || ready->built_node_count() != doc.node_count()) {
    // Retire (don't free) a stale index: a concurrent reader may have
    // loaded the old pointer just before we got here. Under the lease
    // discipline this branch only sees `ready == nullptr` during an
    // evaluation (PrepareForRead dropped stale slots at the boundary), so
    // retirement is a safety net for leaseless single-threaded use.
    if (slot.index != nullptr) slot.retired.push_back(std::move(slot.index));
    // A persisted index beats an O(n) build. Only unpinned lazy slots
    // qualify — a pinned slot may have been mutated since persist.
    std::unique_ptr<DocumentIndex> loaded;
    const DocSlot& dslot = *docs_[id];
    if (source_ != nullptr && dslot.lazy && !dslot.pinned) {
      loaded = source_->LoadIndex(dslot.source_index, doc);
    }
    slot.index = loaded != nullptr ? std::move(loaded)
                                   : std::make_unique<DocumentIndex>(doc);
    ready = slot.index.get();
    slot.ready.store(ready, std::memory_order_release);
  }
  return *ready;
}

const DocumentStats& Store::stats(DocId id) const {
  assert(id < stats_.size());
  StatsSlot& slot = *stats_[id];
  const Document& doc = document(id);  // faults in if lazily attached
  const DocumentStats* ready = slot.ready.load(std::memory_order_acquire);
  if (ready != nullptr && ready->built_node_count() == doc.node_count()) {
    return *ready;
  }
  // Force the index build before taking the stats mutex (index() takes its
  // own build mutex; nesting the two would order them arbitrarily across
  // call sites).
  const DocumentIndex& idx = index(id);
  std::lock_guard<std::mutex> lock(stats_build_mu_);
  ready = slot.ready.load(std::memory_order_acquire);
  if (ready == nullptr || ready->built_node_count() != doc.node_count()) {
    if (slot.stats != nullptr) slot.retired.push_back(std::move(slot.stats));
    std::unique_ptr<DocumentStats> loaded;
    const DocSlot& dslot = *docs_[id];
    if (source_ != nullptr && dslot.lazy && !dslot.pinned) {
      loaded = source_->LoadStats(dslot.source_index, doc);
    }
    slot.stats = loaded != nullptr ? std::move(loaded)
                                   : std::make_unique<DocumentStats>(doc, idx);
    ready = slot.stats.get();
    slot.ready.store(ready, std::memory_order_release);
  }
  return *ready;
}

DocId Store::AddDocumentText(std::string name, std::string_view xml_text) {
  return AddDocument(ParseDocument(std::move(name), xml_text));
}

std::optional<DocId> Store::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? std::nullopt
                              : std::optional<DocId>(it->second);
}

}  // namespace nalq::xml
