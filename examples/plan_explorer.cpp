// Plan explorer: feed any query of the supported XQuery subset through the
// pipeline and inspect every stage — the tool to poke at the rewriter with.
//
//   $ ./examples/plan_explorer                     # built-in demo query
//   $ echo 'for $b in doc("bib.xml")//book ...' | ./examples/plan_explorer -
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "nal/printer.h"

int main(int argc, char** argv) {
  using namespace nalq;
  std::string query;
  if (argc > 1 && std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    query = buffer.str();
  } else {
    query = R"(
      let $d1 := doc("bib.xml")
      for $a1 in distinct-values($d1//author)
      where every $b2 in doc("bib.xml")//book[author = $a1]
            satisfies $b2/@year > 1993
      return <new-author>{ $a1 }</new-author>
    )";
  }

  engine::Engine engine;
  datagen::BibOptions bib;
  bib.books = 20;
  engine.AddDocument("bib.xml", datagen::GenerateBib(bib));
  engine.RegisterDtd("bib.xml", datagen::kBibDtd);
  engine.AddDocument("reviews.xml", datagen::GenerateReviews(20));
  engine.RegisterDtd("reviews.xml", datagen::kReviewsDtd);
  engine.AddDocument("prices.xml", datagen::GeneratePrices(20));
  engine.RegisterDtd("prices.xml", datagen::kPricesDtd);
  datagen::AuctionOptions auction;
  auction.bids = 30;
  engine.AddDocument("bids.xml", datagen::GenerateBids(auction));
  engine.RegisterDtd("bids.xml", datagen::kBidsDtd);
  engine.AddDocument("items.xml", datagen::GenerateItems(auction));
  engine.RegisterDtd("items.xml", datagen::kItemsDtd);
  engine.AddDocument("users.xml", datagen::GenerateUsers(auction));
  engine.RegisterDtd("users.xml", datagen::kUsersDtd);

  try {
    engine::CompiledQuery q = engine.Compile(query);
    std::printf("--- query -------------------------------------------\n%s\n",
                query.c_str());
    std::printf("--- normalized (Sec. 3) -----------------------------\n%s\n",
                q.normalized->ToString().c_str());
    std::printf("\n--- nested plan (Fig. 3 translation) --------------\n%s",
                nal::PrintPlan(*q.nested_plan).c_str());
    for (size_t i = 0; i < q.alternatives.size(); ++i) {
      const rewrite::Alternative& alt = q.alternatives[i];
      if (alt.rule == "nested") continue;
      std::printf("\n--- alternative: %s\n%s", alt.rule.c_str(),
                  nal::PrintPlan(*alt.plan).c_str());
      if (i < q.estimates.size()) {
        std::printf("    estimate: cost %.1f, rows %.1f%s\n",
                    q.estimates[i].total_cost(), q.estimates[i].rows,
                    i == q.cost_choice ? "  <- cost choice" : "");
      }
    }
    std::printf("\n--- chosen (cost-based, opt/chooser.h): %s ----------\n",
                q.best.rule.c_str());
    engine::RunResult r = engine.Run(q.best.plan);
    std::printf("%s\n", r.output.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
