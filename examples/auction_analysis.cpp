// Auction analytics on the XQuery use case R documents (users, items,
// bids): three nested queries exercising having-style aggregation,
// existential and universal quantification on a multi-document store.
//
//   $ ./examples/auction_analysis [bids]
#include <cstdio>
#include <cstdlib>

#include "datagen/datagen.h"
#include "engine/engine.h"

namespace {

void RunAndReport(const nalq::engine::Engine& engine, const char* headline,
                  const char* query) {
  using namespace nalq;
  engine::CompiledQuery q = engine.Compile(query);
  engine::RunResult best = engine.Run(q.best.plan);
  engine::RunResult nested = engine.Run(q.nested_plan);
  std::printf("== %s\n", headline);
  std::printf("   plan: %s | doc scans %llu (nested plan: %llu)\n",
              q.best.rule.c_str(),
              static_cast<unsigned long long>(best.stats.doc_scans),
              static_cast<unsigned long long>(nested.stats.doc_scans));
  if (best.output != nested.output) {
    std::printf("   OUTPUT MISMATCH between nested and unnested plan!\n");
    std::exit(1);
  }
  std::string preview = best.output.substr(0, 160);
  std::printf("   %s%s\n\n", preview.c_str(),
              best.output.size() > 160 ? "..." : "");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nalq;
  size_t bids = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 300;

  engine::Engine engine;
  datagen::AuctionOptions options;
  options.bids = bids;
  engine.AddDocument("users.xml", datagen::GenerateUsers(options));
  engine.AddDocument("items.xml", datagen::GenerateItems(options));
  engine.AddDocument("bids.xml", datagen::GenerateBids(options));
  engine.RegisterDtd("users.xml", datagen::kUsersDtd);
  engine.RegisterDtd("items.xml", datagen::kItemsDtd);
  engine.RegisterDtd("bids.xml", datagen::kBidsDtd);

  std::printf("auction store: %zu bids, %zu items\n\n", bids, bids / 5);

  // 1. Popular items — the paper's Query 1.4.4.14 (having).
  RunAndReport(engine, "items with at least 3 bids (grouping rewrite)", R"(
    let $d1 := document("bids.xml")
    for $i1 in distinct-values($d1//itemno)
    where count($d1//bidtuple[itemno = $i1]) >= 3
    return <popular-item>{ $i1 }</popular-item>
  )");

  // 2. Items that received a high bid — existential quantification across
  //    documents (semijoin rewrite).
  RunAndReport(engine, "items with some bid over 900 (semijoin rewrite)", R"(
    let $d1 := document("items.xml")
    for $i1 in $d1//itemtuple/itemno
    where some $b2 in document("bids.xml")//bidtuple
          satisfies $i1 = $b2/itemno and $b2/bid > 900
    return <high-bid-item>{ $i1 }</high-bid-item>
  )");

  // 3. Offered items whose bids are all small — universal quantification
  //    (anti-semijoin rewrite).
  RunAndReport(engine,
               "bid-on items with every bid below 500 (antijoin rewrite)",
               R"(
    let $d1 := document("bids.xml")
    for $i1 in distinct-values($d1//itemno)
    where every $b2 in document("bids.xml")//bidtuple[itemno = $i1]
          satisfies $b2/bid < 500
    return <small-bids-item>{ $i1 }</small-bids-item>
  )");

  return 0;
}
