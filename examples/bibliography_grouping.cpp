// Bibliography restructuring — the paper's motivating scenario (Sec. 5.1)
// on generated data, comparing every plan the rewriter produces.
//
//   $ ./examples/bibliography_grouping [books] [authors_per_book]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "datagen/datagen.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace nalq;
  size_t books = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 500;
  int authors_per_book = argc > 2 ? std::atoi(argv[2]) : 3;

  engine::Engine engine;
  datagen::BibOptions options;
  options.books = books;
  options.authors_per_book = authors_per_book;
  engine.AddDocument("bib.xml", datagen::GenerateBib(options));
  engine.RegisterDtd("bib.xml", datagen::kBibDtd);

  engine::CompiledQuery q = engine.Compile(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author>
        <name>{ $a1 }</name>
        {
          let $d2 := doc("bib.xml")
          for $b2 in $d2//book[$a1 = author]
          return $b2/title
        }
      </author>
  )");

  std::printf("bib.xml: %zu books, %d authors/book\n\n", books,
              authors_per_book);
  std::printf("%-36s %12s %12s %10s\n", "plan", "time", "doc scans",
              "output B");
  std::string reference;
  for (const rewrite::Alternative& alt : q.alternatives) {
    auto start = std::chrono::steady_clock::now();
    engine::RunResult r = engine.Run(alt.plan);
    double s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    std::printf("%-36s %10.4f s %12llu %10zu\n", alt.rule.c_str(), s,
                static_cast<unsigned long long>(r.stats.doc_scans),
                r.output.size());
    if (reference.empty()) {
      reference = r.output;
    } else if (r.output != reference) {
      std::printf("  ^^ OUTPUT MISMATCH against the nested plan!\n");
      return 1;
    }
  }
  std::printf("\nAll plans produced identical output (%zu bytes).\n",
              reference.size());
  return 0;
}
