// Quickstart: load a document, run an XQuery, inspect the chosen plan.
//
//   $ ./examples/quickstart
//
// Demonstrates the three-line happy path of the public API (Engine:
// AddDocument → Compile/RunQuery) and what the unnesting rewriter did.
#include <cstdio>

#include "engine/engine.h"
#include "nal/printer.h"

int main() {
  using namespace nalq;

  engine::Engine engine;
  // Documents can carry their DTD inline; the engine registers it and the
  // optimizer uses it to verify unnesting side conditions.
  engine.AddDocument("bib.xml", R"(<!DOCTYPE bib [
    <!ELEMENT bib (book*)>
    <!ELEMENT book (title, (author+ | editor+), publisher, price)>
    <!ATTLIST book year CDATA #REQUIRED>
    <!ELEMENT author (last, first)>
    <!ELEMENT editor (last, first, affiliation)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT last (#PCDATA)> <!ELEMENT first (#PCDATA)>
    <!ELEMENT affiliation (#PCDATA)>
    <!ELEMENT publisher (#PCDATA)> <!ELEMENT price (#PCDATA)>
  ]>
  <bib>
    <book year="1994">
      <title>TCP/IP Illustrated</title>
      <author><last>Stevens</last><first>W.</first></author>
      <publisher>Addison-Wesley</publisher><price>65.95</price>
    </book>
    <book year="2000">
      <title>Data on the Web</title>
      <author><last>Abiteboul</last><first>Serge</first></author>
      <author><last>Buneman</last><first>Peter</first></author>
      <author><last>Suciu</last><first>Dan</first></author>
      <publisher>Morgan Kaufmann</publisher><price>39.95</price>
    </book>
    <book year="1999">
      <title>The Economics of Technology</title>
      <author><last>Stevens</last><first>W.</first></author>
      <publisher>Kluwer</publisher><price>129.95</price>
    </book>
  </bib>)");

  // The paper's grouping query (Sec. 5.1): titles grouped by author.
  const char* query = R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author>
        <name>{ $a1 }</name>
        {
          let $d2 := doc("bib.xml")
          for $b2 in $d2//book[$a1 = author]
          return $b2/title
        }
      </author>
  )";

  engine::CompiledQuery compiled = engine.Compile(query);
  std::printf("Plan alternatives found by the unnesting rewriter:\n");
  for (const rewrite::Alternative& alt : compiled.alternatives) {
    std::printf("  - %s\n", alt.rule.c_str());
  }
  std::printf("\nChosen plan (%s):\n%s\n", compiled.best.rule.c_str(),
              nal::PrintPlan(*compiled.best.plan).c_str());

  engine::RunResult result = engine.Run(compiled.best.plan);
  std::printf("Result:\n%s\n\n", result.output.c_str());
  std::printf("Document scans: %llu (the nested plan would need %llu)\n",
              static_cast<unsigned long long>(result.stats.doc_scans),
              static_cast<unsigned long long>(
                  engine.Run(compiled.nested_plan).stats.doc_scans));
  return 0;
}
