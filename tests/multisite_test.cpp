// Multi-site unnesting and common-subexpression sharing.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "nal/printer.h"
#include "rewrite/unnester.h"

namespace nalq {
namespace {

class MultiSiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::BibOptions bib;
    bib.books = 25;
    engine_.AddDocument("bib.xml", datagen::GenerateBib(bib));
    engine_.RegisterDtd("bib.xml", datagen::kBibDtd);
    engine_.AddDocument("prices.xml", datagen::GeneratePrices(25));
    engine_.RegisterDtd("prices.xml", datagen::kPricesDtd);
  }
  engine::Engine engine_;
};

TEST_F(MultiSiteTest, TwoNestedBlocksBothUnnest) {
  // Two independent nested aggregates per outer tuple: the count of a
  // title's price entries and the count of its review-shaped duplicates in
  // bib itself. Best() must chain two grouping/outer-join rewrites.
  engine::CompiledQuery q = engine_.Compile(R"(
    let $d1 := doc("bib.xml")
    for $t1 in distinct-values($d1//book/title)
    let $p1 := count(for $b2 in doc("prices.xml")//book
                     for $t2 in $b2/title
                     where $t1 = $t2
                     return $b2)
    let $c1 := count(for $b3 in doc("bib.xml")//book
                     for $t3 in $b3/title
                     where $t1 = $t3
                     return $b3)
    return <t title="{ $t1 }" prices="{ $p1 }" copies="{ $c1 }"/>)");
  // Both sites rewritten: the chained rule name mentions two equivalences.
  EXPECT_NE(q.best.rule.find(","), std::string::npos) << q.best.rule;
  // And the outputs agree.
  std::string nested = engine_.Run(q.nested_plan).output;
  std::string best = engine_.Run(q.best.plan).output;
  EXPECT_EQ(nested, best);
  EXPECT_FALSE(nested.empty());
  // The fully unnested plan evaluates no nested subscripts at all.
  EXPECT_EQ(engine_.Run(q.best.plan).stats.nested_alg_evals, 0u);
  EXPECT_GT(engine_.Run(q.nested_plan).stats.nested_alg_evals, 0u);
}

TEST_F(MultiSiteTest, ShareCommonSubexpressionsMarksDuplicates) {
  // Hand-built plan with two identical document scans.
  using nal::Symbol;
  auto scan = [] {
    return nal::UnnestMap(
        Symbol("t"),
        nal::MakePath(
            nal::MakeFnCall("doc", {nal::MakeConst(nal::Value("bib.xml"))}),
            xml::Path::Parse("//book/title")),
        nal::Singleton());
  };
  nal::AlgebraPtr plan = nal::Cross(
      scan(), nal::ProjectRename({{Symbol("t2"), Symbol("t")}}, scan()));
  nal::AlgebraPtr shared = rewrite::ShareCommonSubexpressions(plan);
  // Both scan subtrees carry the same non-negative cse id.
  int id_left = shared->child(0)->cse_id;
  int id_right = shared->child(1)->child(0)->cse_id;
  EXPECT_GE(id_left, 0);
  EXPECT_EQ(id_left, id_right);
  // Evaluation: one scan instead of two, same result as the unshared plan.
  nal::Evaluator ev(engine_.store());
  nal::Sequence unshared_result = ev.Eval(*plan);
  uint64_t unshared_scans = ev.stats().doc_scans;
  ev.stats().Reset();
  nal::Sequence shared_result = ev.Eval(*shared);
  uint64_t shared_scans = ev.stats().doc_scans;
  EXPECT_TRUE(nal::SequencesEqual(unshared_result, shared_result));
  EXPECT_EQ(shared_scans, unshared_scans / 2);
}

TEST_F(MultiSiteTest, ShareLeavesCorrelatedSubtreesAlone) {
  using nal::Symbol;
  // Subtrees referencing outer attributes must not be cached.
  auto correlated = [] {
    return nal::Select(
        nal::MakeCmp(nal::CmpOp::kEq, nal::MakeAttrRef(Symbol("outer")),
                     nal::MakeAttrRef(Symbol("t"))),
        nal::UnnestMap(
            Symbol("t"),
            nal::MakePath(
                nal::MakeFnCall("doc", {nal::MakeConst(nal::Value("bib.xml"))}),
                xml::Path::Parse("//book/title")),
            nal::Singleton()));
  };
  nal::AlgebraPtr plan = nal::Cross(correlated(), correlated());
  nal::AlgebraPtr shared = rewrite::ShareCommonSubexpressions(plan);
  EXPECT_LT(shared->child(0)->cse_id, 0);
  EXPECT_LT(shared->child(1)->cse_id, 0);
  // The inner (uncorrelated) scans below the selects may still share.
  EXPECT_GE(shared->child(0)->child(0)->cse_id, 0);
}

}  // namespace
}  // namespace nalq
