// Edge-case and failure-path coverage across modules: empty documents,
// empty operator inputs, evaluator error paths, degenerate queries.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "nal/reference.h"
#include "test_util.h"

namespace nalq {
namespace {

using nal::CmpOp;
using nal::Sequence;
using nal::Symbol;
using testutil::I;
using testutil::T;
using testutil::Table;

TEST(RobustnessTest, EmptyDocumentsYieldEmptyResultsOnEveryPlan) {
  engine::Engine engine;
  engine.AddDocument("bib.xml", "<bib/>");
  engine.RegisterDtd("bib.xml", datagen::kBibDtd);
  engine::CompiledQuery q = engine.Compile(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return <author>{
      let $d2 := doc("bib.xml")
      for $b2 in $d2//book[$a1 = author]
      return $b2/title }</author>)");
  EXPECT_GE(q.alternatives.size(), 3u);
  for (const rewrite::Alternative& alt : q.alternatives) {
    EXPECT_TRUE(engine.Run(alt.plan).output.empty()) << alt.rule;
  }
}

TEST(RobustnessTest, SingleBookDocument) {
  engine::Engine engine;
  datagen::BibOptions bib;
  bib.books = 1;
  bib.authors_per_book = 1;
  engine.AddDocument("bib.xml", datagen::GenerateBib(bib));
  engine.RegisterDtd("bib.xml", datagen::kBibDtd);
  engine::CompiledQuery q = engine.Compile(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return <a>{ $a1 }</a>)");
  std::string reference = engine.Run(q.nested_plan).output;
  for (const rewrite::Alternative& alt : q.alternatives) {
    EXPECT_EQ(engine.Run(alt.plan).output, reference) << alt.rule;
  }
  EXPECT_NE(reference.find("<a>"), std::string::npos);
}

TEST(RobustnessTest, ThetaGroupingRequiresSingleAttribute) {
  xml::Store store;
  nal::Evaluator ev(store);
  Sequence rows;
  rows.Append(T({{"a", I(1)}, {"b", I(2)}}));
  auto plan = nal::GroupUnary(Symbol("g"), CmpOp::kLt,
                              {Symbol("a"), Symbol("b")}, nal::AggCount(),
                              Table(rows));
  EXPECT_THROW(ev.Eval(*plan), std::runtime_error);
  auto binary = nal::GroupBinary(Symbol("g"), {Symbol("a"), Symbol("b")},
                                 CmpOp::kLt, {Symbol("a"), Symbol("b")},
                                 nal::AggCount(), Table(rows), Table(rows));
  EXPECT_THROW(ev.Eval(*binary), std::runtime_error);
}

TEST(RobustnessTest, ReferenceEvaluatorRejectsXi) {
  xml::Store store;
  nal::Evaluator ev(store);
  auto plan = nal::XiSimple({nal::XiCommand::Literal("x")}, nal::Singleton());
  EXPECT_THROW(nal::reference::Eval(ev, *plan), std::logic_error);
}

TEST(RobustnessTest, OperatorsOnEmptyInputs) {
  xml::Store store;
  nal::Evaluator ev(store);
  Sequence empty;
  Sequence one;
  one.Append(T({{"a", I(1)}}));
  // Binary operators with an empty operand.
  EXPECT_TRUE(ev.Eval(*nal::Cross(Table(empty), Table(one))).empty());
  EXPECT_TRUE(ev.Eval(*nal::Cross(Table(one), Table(empty))).empty());
  EXPECT_TRUE(ev.Eval(*nal::SemiJoin(nal::MakeConst(nal::Value(true)),
                                     Table(empty), Table(one)))
                  .empty());
  // Antijoin with empty right side keeps everything.
  EXPECT_EQ(ev.Eval(*nal::AntiJoin(nal::MakeConst(nal::Value(true)),
                                   Table(one), Table(empty)))
                .size(),
            1u);
  // Outer join with empty right side: default row per left tuple.
  Sequence oj = ev.Eval(*nal::OuterJoin(
      nal::MakeConst(nal::Value(true)), Symbol("g"), nal::MakeConst(I(0)),
      Table(one), Table(empty)));
  ASSERT_EQ(oj.size(), 1u);
  EXPECT_EQ(oj[0].Get(Symbol("g")).AsInt(), 0);
  // Grouping the empty sequence.
  EXPECT_TRUE(ev.Eval(*nal::GroupUnary(Symbol("g"), CmpOp::kEq, {Symbol("a")},
                                       nal::AggCount(), Table(empty)))
                  .empty());
  // Ξ over the empty sequence writes nothing.
  ev.ClearOutput();
  ev.Eval(*nal::XiSimple({nal::XiCommand::Literal("never")}, Table(empty)));
  EXPECT_TRUE(ev.output().empty());
}

TEST(RobustnessTest, DeepPathAndLongEntityText) {
  std::string xml = "<r>";
  for (int i = 0; i < 40; ++i) xml += "<d>";
  xml += "leaf &amp;&lt;&gt; text";
  for (int i = 0; i < 40; ++i) xml += "</d>";
  xml += "</r>";
  engine::Engine engine;
  engine.AddDocument("deep.xml", xml);
  engine::RunResult r = engine.RunQuery(R"(
    for $x in doc("deep.xml")//d/text()
    return <t>{ $x }</t>)");
  EXPECT_EQ(r.output, "<t>leaf &amp;&lt;&gt; text</t>");
}

TEST(RobustnessTest, QuantifierOverMissingElements) {
  engine::Engine engine;
  engine.AddDocument("bib.xml", "<bib><book year=\"2001\"><title>X</title>"
                                "<author><last>L</last><first>F</first>"
                                "</author><publisher>P</publisher>"
                                "<price>1</price></book></bib>");
  engine.RegisterDtd("bib.xml", datagen::kBibDtd);
  // every over an empty range is true: books with no editor qualify.
  engine::RunResult r = engine.RunQuery(R"(
    for $b in doc("bib.xml")//book
    where every $e in $b/editor satisfies $e = "nobody"
    return <ok>{ $b/title }</ok>)");
  EXPECT_EQ(r.output, "<ok><title>X</title></ok>");
}

TEST(RobustnessTest, WhitespaceAndCommentsInQueries) {
  engine::Engine engine;
  engine.AddDocument("bib.xml", "<bib><book year=\"2001\"><title>X</title>"
                                "<author><last>L</last><first>F</first>"
                                "</author><publisher>P</publisher>"
                                "<price>1</price></book></bib>");
  engine::RunResult r = engine.RunQuery(
      "(: leading comment :)\n"
      "for $b in doc(\"bib.xml\")//book (: mid comment :)\n"
      "return <t>{ $b/title }</t>");
  EXPECT_EQ(r.output, "<t><title>X</title></t>");
}

TEST(RobustnessTest, AttributeValueEscaping) {
  engine::Engine engine;
  engine.AddDocument("d.xml", "<r><v>a&amp;b \"quoted\"</v></r>");
  engine::RunResult r = engine.RunQuery(R"(
    for $v in doc("d.xml")//v
    return <out val="{ string($v) }"/>)");
  EXPECT_NE(r.output.find("a&amp;b"), std::string::npos);
}

TEST(RobustnessTest, RunIsRepeatableAndStatsAccumulate) {
  engine::Engine engine;
  datagen::BibOptions bib;
  bib.books = 5;
  engine.AddDocument("bib.xml", datagen::GenerateBib(bib));
  engine::CompiledQuery q = engine.Compile(
      R"(for $b in doc("bib.xml")//book return <t>{ $b/title }</t>)");
  engine::RunResult a = engine.Run(q.nested_plan);
  engine::RunResult b = engine.Run(q.nested_plan);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.stats.doc_scans, b.stats.doc_scans);
}

}  // namespace
}  // namespace nalq
