// End-to-end tests: the six queries of the paper's Sec. 5 run through the
// full pipeline (parse → normalize → translate → unnest → evaluate) and
// every plan alternative must produce byte-identical output — including
// order, the property the paper's equivalences preserve.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "nal/printer.h"

namespace nalq {
namespace {

class PaperQueriesTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    size_t n = GetParam();
    datagen::BibOptions bib;
    bib.books = n;
    bib.authors_per_book = 3;
    engine_.AddDocument("bib.xml", datagen::GenerateBib(bib));
    engine_.RegisterDtd("bib.xml", datagen::kBibDtd);
    engine_.AddDocument("reviews.xml", datagen::GenerateReviews(n));
    engine_.RegisterDtd("reviews.xml", datagen::kReviewsDtd);
    engine_.AddDocument("prices.xml", datagen::GeneratePrices(n));
    engine_.RegisterDtd("prices.xml", datagen::kPricesDtd);
    datagen::AuctionOptions auction;
    auction.bids = n + n / 2;
    engine_.AddDocument("bids.xml", datagen::GenerateBids(auction));
    engine_.RegisterDtd("bids.xml", datagen::kBidsDtd);
  }

  /// Compiles `query`, checks `expected_rules` all fired, and verifies every
  /// alternative produces the nested plan's exact output.
  engine::CompiledQuery CheckAllPlansAgree(
      const std::string& query, const std::vector<std::string>& expected_rules) {
    engine::CompiledQuery q = engine_.Compile(query);
    std::string reference = engine_.Run(q.nested_plan).output;
    EXPECT_FALSE(reference.empty()) << "nested plan produced no output";
    for (const std::string& rule : expected_rules) {
      EXPECT_NE(q.Find(rule), nullptr) << "expected rule did not fire: " << rule
                                       << "\nnested plan:\n"
                                       << nal::PrintPlan(*q.nested_plan);
    }
    for (const rewrite::Alternative& alt : q.alternatives) {
      std::string output = engine_.Run(alt.plan).output;
      EXPECT_EQ(output, reference)
          << "plan disagrees: " << alt.rule << "\n"
          << nal::PrintPlan(*alt.plan);
    }
    return q;
  }

  engine::Engine engine_;
};

// Query 1.1.9.4 (Sec. 5.1): grouping books by author.
TEST_P(PaperQueriesTest, Q1Grouping) {
  const std::string query = R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author>
        <name>{ $a1 }</name>
        {
          let $d2 := doc("bib.xml")
          for $b2 in $d2//book[$a1 = author]
          return $b2/title
        }
      </author>
  )";
  engine::CompiledQuery q = CheckAllPlansAgree(
      query, {"eqv4-outerjoin", "eqv5-grouping", "group-xi"});
  EXPECT_GE(q.alternatives.size(), 4u);
}

// Query 1.1.9.10 (Sec. 5.2): aggregation (min price per title).
TEST_P(PaperQueriesTest, Q2Aggregation) {
  const std::string query = R"(
    let $d1 := doc("prices.xml")
    for $t1 in distinct-values($d1//book/title)
    let $p1 := let $d2 := doc("prices.xml")
               for $b2 in $d2//book
               let $t2 := $b2/title
               let $p2 := $b2/price
               let $c2 := decimal($p2)
               where $t1 = $t2
               return $c2
    return
      <minprice title="{ $t1 }"><price>{ min($p1) }</price></minprice>
  )";
  CheckAllPlansAgree(query, {"eqv3-grouping", "eqv2-outerjoin"});
}

// Query 1.1.9.5 (Sec. 5.3): existential quantification.
TEST_P(PaperQueriesTest, Q3Existential) {
  const std::string query = R"(
    let $d1 := document("bib.xml")
    for $t1 in $d1//book/title
    where some $t2 in document("reviews.xml")//entry/title
          satisfies $t1 = $t2
    return
      <book-with-review>{ $t1 }</book-with-review>
  )";
  CheckAllPlansAgree(query, {"eqv6-semijoin"});
}

// Sec. 5.4: existential quantification via exists().
TEST_P(PaperQueriesTest, Q4ExistsCount) {
  const std::string query = R"(
    let $d1 := doc("bib.xml")
    for $b1 in $d1//book,
        $a1 in $b1/author
    where exists(
      for $b2 in $d1//book
      for $a2 in $b2/author
      where contains($a2, "Suciu") and $b1 = $b2
      return $b2)
    return
      <book>{ $a1 }</book>
  )";
  CheckAllPlansAgree(query, {"eqv6-semijoin"});
}

// Sec. 5.5: universal quantification.
TEST_P(PaperQueriesTest, Q5Universal) {
  const std::string query = R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    where every $b2 in doc("bib.xml")//book[author = $a1]
          satisfies $b2/@year > 1993
    return
      <new-author>{ $a1 }</new-author>
  )";
  CheckAllPlansAgree(query, {"eqv7-antijoin", "eqv9-counting"});
}

// Query 1.4.4.14 (Sec. 5.6): aggregation in the where clause.
TEST_P(PaperQueriesTest, Q6Having) {
  const std::string query = R"(
    let $d1 := document("bids.xml")
    for $i1 in distinct-values($d1//itemno)
    where count($d1//bidtuple[itemno = $i1]) >= 3
    return
      <popular-item>{ $i1 }</popular-item>
  )";
  CheckAllPlansAgree(query, {"eqv3-grouping"});
}

// Sizes start at 25 so every query has matches (the "Suciu" author of
// Sec. 5.4 appears once per 20 pool authors).
INSTANTIATE_TEST_SUITE_P(Sizes, PaperQueriesTest,
                         ::testing::Values(25u, 60u, 150u));

}  // namespace
}  // namespace nalq
