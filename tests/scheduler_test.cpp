// Unit tests for the work-stealing thread pool (src/nal/scheduler.h).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "nal/scheduler.h"

namespace nalq::nal {
namespace {

/// Waits until `n` tasks have signalled completion.
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  int remaining;

  explicit Latch(int n) : remaining(n) {}
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining == 0; });
  }
};

TEST(SchedulerTest, RunsEverySubmittedTask) {
  Scheduler& pool = Scheduler::Global();
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      done.fetch_add(1, std::memory_order_relaxed);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(SchedulerTest, EnsureThreadsGrowsAndNeverShrinks) {
  Scheduler& pool = Scheduler::Global();
  unsigned before = pool.thread_count();
  EXPECT_GE(before, 1u);
  pool.EnsureThreads(before + 3);
  EXPECT_GE(pool.thread_count(), before + 3);
  pool.EnsureThreads(1);  // no shrink
  EXPECT_GE(pool.thread_count(), before + 3);

  // The grown pool still runs everything (including tasks submitted from a
  // pool thread itself, the self-deque LIFO path).
  Latch latch(20);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      Scheduler::Global().Submit([&] { latch.CountDown(); });
      latch.CountDown();
    });
  }
  latch.Wait();
}

TEST(SchedulerTest, ClampsToMaxThreads) {
  Scheduler& pool = Scheduler::Global();
  pool.EnsureThreads(Scheduler::kMaxThreads + 100);
  EXPECT_LE(pool.thread_count(), Scheduler::kMaxThreads);
}

TEST(SchedulerTest, CountersAreMonotone) {
  Scheduler& pool = Scheduler::Global();
  uint64_t executed_before = pool.task_count();
  Latch latch(50);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { latch.CountDown(); });
  }
  latch.Wait();
  // task_count is incremented after the task body runs; give the last
  // worker a moment to pass the counter line.
  for (int spin = 0;
       pool.task_count() < executed_before + 50 && spin < 1000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.task_count(), executed_before + 50);
  EXPECT_GE(pool.steal_count(), 0u);
}

}  // namespace
}  // namespace nalq::nal
