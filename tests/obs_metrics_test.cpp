// Metrics-registry tests (src/obs/metrics.h): histogram bucketing and
// quantile error bounds, Prometheus exposition format (cumulative,
// monotone), JSON exposition, and concurrent instrument updates — the last
// is the test the CI TSan lane leans on.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace nalq {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

TEST(HistogramTest, BucketIndexRoundTripsThroughUpperBound) {
  // Every observed value must land in a bucket whose upper bound is >= the
  // value and whose predecessor's upper bound is <= the value (frexp-based
  // indexing is floor-inclusive: a value exactly on a bucket boundary opens
  // the next bucket rather than closing the previous one).
  for (double v : {1e-9, 0.001, 0.5, 1.0, 1.5, 3.0, 64.0, 1e6, 1e12}) {
    int i = Histogram::BucketIndex(v);
    ASSERT_GE(i, 0) << v;
    ASSERT_LT(i, Histogram::kBuckets) << v;
    EXPECT_LE(v, Histogram::UpperBound(i)) << v;
    if (i > 0 && i < Histogram::kBuckets - 1) {
      EXPECT_GE(v, Histogram::UpperBound(i - 1)) << v;
    }
  }
  // Non-positive and NaN observations clamp to the first bucket.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
}

TEST(HistogramTest, QuantilesWithinBucketErrorBound) {
  // Uniform 1..1000: a quantile estimate is the upper bound of the ranked
  // value's bucket, so it can overshoot the true value by at most one
  // sub-bucket width (≤ 25% at a bucket floor) and never undershoots it by
  // more than the rank rounding.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), 1000.0 * 1001.0 / 2, 1e-6);
  for (double q : {0.5, 0.9, 0.99}) {
    const double truth = q * 1000.0;
    const double est = h.Quantile(q);
    EXPECT_GE(est, truth * (1.0 - 0.125)) << "q=" << q;
    EXPECT_LE(est, truth * (1.0 + 0.125) * (1.0 + 1.0 / (2 * 4))) << "q=" << q;
  }
  // Monotone in q.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));
}

TEST(HistogramTest, SingleValueQuantiles) {
  Histogram h;
  h.Observe(0.25);
  // Every quantile of a single observation is that observation's bucket
  // upper bound — a value at a bucket floor can be reported up to one
  // sub-bucket width (25% of the floor) high, never low.
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.Quantile(q), 0.25) << q;
    EXPECT_LE(h.Quantile(q), 0.25 * 1.26) << q;
  }
  Histogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SnapshotCountsSumToTotal) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(0.001 * (i + 1));
  uint64_t total = 0;
  double prev_le = -1;
  for (const Histogram::Bucket& b : h.Snapshot()) {
    EXPECT_GT(b.le, prev_le);  // ascending, no duplicates
    prev_le = b.le;
    total += b.count;
  }
  EXPECT_EQ(total, 100u);
}

TEST(MetricsRegistryTest, PrometheusTextIsCumulativeAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("nalq_queries_submitted_total").Add(7);
  reg.GetGauge("nalq_plan_cache_hit_ratio").Set(0.5);
  Histogram& h = reg.GetHistogram("nalq_run_seconds");
  for (double v : {0.001, 0.002, 0.004, 0.1, 2.0}) h.Observe(v);

  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE nalq_queries_submitted_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nalq_queries_submitted_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nalq_plan_cache_hit_ratio gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nalq_run_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("nalq_run_seconds_count 5"), std::string::npos);
  EXPECT_NE(text.find("nalq_run_seconds_bucket{le=\"+Inf\"} 5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("nalq_run_seconds_sum "), std::string::npos);

  // Cumulative bucket counts must be monotone non-decreasing in le order.
  uint64_t prev = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("nalq_run_seconds_bucket{le=", pos)) !=
         std::string::npos) {
    size_t brace = text.find("} ", pos);
    ASSERT_NE(brace, std::string::npos);
    uint64_t count = std::stoull(text.substr(brace + 2));
    EXPECT_GE(count, prev);
    prev = count;
    ++buckets_seen;
    pos = brace;
  }
  EXPECT_GE(buckets_seen, 2);  // at least one real bucket plus +Inf
  EXPECT_EQ(prev, 5u);         // +Inf bucket equals the total count
}

TEST(MetricsRegistryTest, JsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("c").Add(3);
  reg.GetGauge("g").Set(1.5);
  reg.GetHistogram("h").Observe(2.0);
  const std::string json = reg.Json();
  EXPECT_NE(json.find("\"counters\":{\"c\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g\":1.5}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreExact) {
  // 8 threads × 10k updates per instrument: counters must not lose a
  // single increment and the histogram must not lose an observation. Run
  // under TSan in CI, this is also the registry's data-race certificate.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Counter& c = reg.GetCounter("hits");
      Histogram& h = reg.GetHistogram("lat");
      Gauge& g = reg.GetGauge("level");
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Observe(0.001 * ((t * kPerThread + i) % 100 + 1));
        g.Set(static_cast<double>(i));
        if (i % 1000 == 0) {
          // Exposition concurrent with updates must be safe too.
          (void)reg.PrometheusText();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("hits").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.GetHistogram("lat").count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace nalq
