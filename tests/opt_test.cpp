// Cost-based optimizer tests: statistics exactness, estimator properties
// (exact cardinalities on index-resolvable paths, monotonicity under
// selections, budget awareness) and the PlanChoice differential — kCost
// output must stay byte-identical to kRulePriority on every paper query
// under every executor.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "opt/cardinality.h"
#include "opt/chooser.h"
#include "xml/stats.h"

namespace nalq {
namespace {

// ---------------------------------------------------------------------------
// DocumentStats
// ---------------------------------------------------------------------------

TEST(DocumentStatsTest, CountsAndFanOutAreExact) {
  xml::Store store;
  xml::DocId id = store.AddDocumentText("t.xml", R"(
    <bib>
      <book year="1994"><title>A</title><author>x</author><author>y</author></book>
      <book year="2000"><title>B</title><author>x</author></book>
      <note>misc</note>
    </bib>)");
  const xml::Document& doc = store.document(id);
  const xml::DocumentStats& stats = store.stats(id);

  auto name = [&](const char* s) { return doc.names().Find(s); };
  EXPECT_EQ(stats.ElementCount(name("book")), 2u);
  EXPECT_EQ(stats.ElementCount(name("author")), 3u);
  EXPECT_EQ(stats.ElementCount(name("nope")), 0u);
  EXPECT_EQ(stats.element_count(), 9u);  // bib + 2 book + 2 title + 3 author + note

  // Child fan-out: author children of book elements.
  EXPECT_EQ(stats.ChildEdges(name("book"), name("author")), 3u);
  EXPECT_EQ(stats.ParentsWithChild(name("book"), name("author")), 2u);
  EXPECT_EQ(stats.ChildEdges(name("bib"), name("book")), 2u);
  EXPECT_EQ(stats.ChildEdges(name("bib"), name("author")), 0u);

  // Descendant fan-out counts through intermediate levels.
  EXPECT_EQ(stats.DescendantEdges(name("bib"), name("author")), 3u);
  EXPECT_EQ(stats.DescendantEdges(name("book"), name("title")), 2u);

  // Attributes.
  EXPECT_EQ(stats.AttributeCount(name("year")), 2u);
  EXPECT_EQ(stats.AttrEdges(name("book"), name("year")), 2u);
  EXPECT_EQ(stats.DistinctAttrValues(name("year")), 2u);

  // Distinct leaf-element values: author ∈ {x, y}.
  EXPECT_EQ(stats.DistinctElementValues(name("author")), 2u);
  EXPECT_EQ(stats.DistinctElementValues(name("title")), 2u);
}

TEST(DocumentStatsTest, ElementCountFixup) {
  // The count above spelled out: bib + 2·book + 2·title + 3·author + note.
  xml::Store store;
  xml::DocId id = store.AddDocumentText("t.xml", "<a><b/><b/></a>");
  EXPECT_EQ(store.stats(id).element_count(), 3u);
}

TEST(DocumentStatsTest, StoreCachesAndInvalidates) {
  xml::Store store;
  xml::DocId id = store.AddDocumentText("t.xml", "<a><b/></a>");
  const xml::DocumentStats* first = &store.stats(id);
  EXPECT_EQ(first, &store.stats(id)) << "second access must hit the cache";
  // Replacing the document drops the slot and rebuilds.
  store.AddDocumentText("t.xml", "<a><b/><b/><b/></a>");
  const xml::DocumentStats& rebuilt = store.stats(id);
  EXPECT_EQ(rebuilt.ElementCount(store.document(id).names().Find("b")), 3u);
}

// ---------------------------------------------------------------------------
// Cardinality estimator
// ---------------------------------------------------------------------------

class EstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::BibOptions bib;
    bib.books = 120;
    bib.authors_per_book = 3;
    engine_.AddDocument("bib.xml", datagen::GenerateBib(bib));
    engine_.RegisterDtd("bib.xml", datagen::kBibDtd);
  }

  double EstimateRows(const std::string& query) {
    engine::CompiledQuery q = engine_.Compile(query);
    opt::CostModel model;
    opt::CardinalityEstimator estimator(engine_.store(), model);
    return estimator.EstimatePlan(*q.nested_plan).rows;
  }

  size_t Count(const char* tag) {
    xml::DocId id = *engine_.store().Find("bib.xml");
    return engine_.store().document(id).CountElements(tag);
  }

  engine::Engine engine_;
};

TEST_F(EstimatorTest, DescendantStepFromDocRootIsExact) {
  double rows = EstimateRows(R"(
    let $d := doc("bib.xml")
    for $b in $d//book
    return $b)");
  EXPECT_DOUBLE_EQ(rows, static_cast<double>(Count("book")));
}

TEST_F(EstimatorTest, ChainedChildStepIsExact) {
  // Every author element in bib.xml is a child of a book, so the chained
  // //book/author walk resolves to the exact author count.
  double rows = EstimateRows(R"(
    let $d := doc("bib.xml")
    for $b in $d//book
    for $a in $b/author
    return $a)");
  EXPECT_DOUBLE_EQ(rows, static_cast<double>(Count("author")));
}

TEST_F(EstimatorTest, MissingNameEstimatesZero) {
  EXPECT_DOUBLE_EQ(EstimateRows(R"(
    let $d := doc("bib.xml")
    for $x in $d//no-such-element
    return $x)"),
                   0.0);
}

TEST_F(EstimatorTest, SelectionIsMonotone) {
  const char* base = R"(
    let $d := doc("bib.xml")
    for $b in $d//book
    return $b)";
  const char* filtered = R"(
    let $d := doc("bib.xml")
    for $b in $d//book
    where $b/@year > 1993
    return $b)";
  double all = EstimateRows(base);
  double some = EstimateRows(filtered);
  EXPECT_GT(all, 0);
  EXPECT_LE(some, all) << "σ must never increase the row estimate";
  EXPECT_GT(some, 0) << "default selectivities must not zero the stream";
}

TEST_F(EstimatorTest, BudgetChargesSpillIo) {
  engine::CompiledQuery q = engine_.Compile(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author><name>{ $a1 }</name>
      { let $d2 := doc("bib.xml")
        for $b2 in $d2//book[$a1 = author]
        return $b2/title }
      </author>)");
  const rewrite::Alternative* grouping = q.Find("eqv5-grouping");
  ASSERT_NE(grouping, nullptr);

  opt::CostModel unlimited(0);
  opt::CardinalityEstimator e1(engine_.store(), unlimited);
  opt::PlanEstimate free = e1.EstimatePlan(*grouping->plan);
  EXPECT_DOUBLE_EQ(free.io_cost, 0.0);
  EXPECT_GT(free.peak_breaker_bytes, 0.0);

  // A budget below the estimated breaker footprint must charge I/O and
  // raise the total cost.
  opt::CostModel tiny(1024);
  opt::CardinalityEstimator e2(engine_.store(), tiny);
  opt::PlanEstimate spilling = e2.EstimatePlan(*grouping->plan);
  EXPECT_GT(spilling.io_cost, 0.0);
  EXPECT_GT(spilling.total_cost(), free.total_cost());
  EXPECT_DOUBLE_EQ(spilling.rows, free.rows)
      << "the budget affects cost, never cardinality";
}

TEST_F(EstimatorTest, NestedPlanCostsMoreThanUnnested) {
  engine::CompiledQuery q = engine_.Compile(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author><name>{ $a1 }</name>
      { let $d2 := doc("bib.xml")
        for $b2 in $d2//book[$a1 = author]
        return $b2/title }
      </author>)");
  ASSERT_GE(q.alternatives.size(), 2u);
  ASSERT_EQ(q.estimates.size(), q.alternatives.size());
  double nested = q.estimates[0].total_cost();
  for (size_t i = 1; i < q.estimates.size(); ++i) {
    EXPECT_LT(q.estimates[i].total_cost(), nested)
        << "unnested alternative not cheaper: " << q.alternatives[i].rule;
  }
  EXPECT_NE(q.cost_choice, 0u) << "cost choice must not pick the nested plan";
}

// ---------------------------------------------------------------------------
// PlanChoice differential: Q1–Q6 × policies × executors, byte-identical
// ---------------------------------------------------------------------------

class PlanChoiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    size_t n = 40;
    datagen::BibOptions bib;
    bib.books = n;
    bib.authors_per_book = 3;
    engine_.AddDocument("bib.xml", datagen::GenerateBib(bib));
    engine_.RegisterDtd("bib.xml", datagen::kBibDtd);
    engine_.AddDocument("reviews.xml", datagen::GenerateReviews(n));
    engine_.RegisterDtd("reviews.xml", datagen::kReviewsDtd);
    engine_.AddDocument("prices.xml", datagen::GeneratePrices(n));
    engine_.RegisterDtd("prices.xml", datagen::kPricesDtd);
    datagen::AuctionOptions auction;
    auction.bids = n + n / 2;
    engine_.AddDocument("bids.xml", datagen::GenerateBids(auction));
    engine_.RegisterDtd("bids.xml", datagen::kBidsDtd);
  }

  void CheckChoicesAgree(const std::string& query) {
    engine::CompiledQuery cost =
        engine_.Compile(query, engine::PlanChoice::kCost);
    engine::CompiledQuery prio =
        engine_.Compile(query, engine::PlanChoice::kRulePriority);
    engine::CompiledQuery manual =
        engine_.Compile(query, engine::PlanChoice::kManual);
    EXPECT_EQ(manual.best.rule, "nested");
    ASSERT_EQ(cost.estimates.size(), cost.alternatives.size());

    std::string reference = engine_.Run(manual.best.plan).output;
    ASSERT_FALSE(reference.empty());
    for (engine::ExecMode mode :
         {engine::ExecMode::kStreaming, engine::ExecMode::kMaterializing,
          engine::ExecMode::kParallel}) {
      EXPECT_EQ(engine_.Run(cost.best.plan, mode).output, reference)
          << "kCost diverged (" << cost.best.rule << ")";
      EXPECT_EQ(engine_.Run(prio.best.plan, mode).output, reference)
          << "kRulePriority diverged (" << prio.best.rule << ")";
    }
    // Both policies must unnest: the estimator exists to avoid the nested
    // plan's quadratic subscript evaluation.
    EXPECT_NE(cost.best.rule, "nested");
    EXPECT_EQ(engine_.Run(cost.best.plan).stats.nested_alg_evals, 0u);
  }

  engine::Engine engine_;
};

TEST_F(PlanChoiceTest, Q1Grouping) {
  CheckChoicesAgree(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author><name>{ $a1 }</name>
      { let $d2 := doc("bib.xml")
        for $b2 in $d2//book[$a1 = author]
        return $b2/title }
      </author>)");
}

TEST_F(PlanChoiceTest, Q2Aggregation) {
  CheckChoicesAgree(R"(
    let $d1 := doc("prices.xml")
    for $t1 in distinct-values($d1//book/title)
    let $p1 := let $d2 := doc("prices.xml")
               for $b2 in $d2//book
               let $t2 := $b2/title
               let $p2 := $b2/price
               let $c2 := decimal($p2)
               where $t1 = $t2
               return $c2
    return <minprice title="{ $t1 }"><price>{ min($p1) }</price></minprice>)");
}

TEST_F(PlanChoiceTest, Q3Existential) {
  CheckChoicesAgree(R"(
    let $d1 := document("bib.xml")
    for $t1 in $d1//book/title
    where some $t2 in document("reviews.xml")//entry/title
          satisfies $t1 = $t2
    return <book-with-review>{ $t1 }</book-with-review>)");
}

TEST_F(PlanChoiceTest, Q4ExistsCount) {
  CheckChoicesAgree(R"(
    let $d1 := doc("bib.xml")
    for $b1 in $d1//book,
        $a1 in $b1/author
    where exists(
      for $b2 in $d1//book
      for $a2 in $b2/author
      where contains($a2, "Suciu") and $b1 = $b2
      return $b2)
    return <book>{ $a1 }</book>)");
}

TEST_F(PlanChoiceTest, Q5Universal) {
  CheckChoicesAgree(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    where every $b2 in doc("bib.xml")//book[author = $a1]
          satisfies $b2/@year > 1993
    return <new-author>{ $a1 }</new-author>)");
}

TEST_F(PlanChoiceTest, Q6Having) {
  CheckChoicesAgree(R"(
    let $d1 := document("bids.xml")
    for $i1 in distinct-values($d1//itemno)
    where count($d1//bidtuple[itemno = $i1]) >= 3
    return <popular-item>{ $i1 }</popular-item>)");
}

TEST_F(PlanChoiceTest, ChooserTieBreaksByRulePriority) {
  // An empty store gives every alternative a default-built estimate, so the
  // chooser must degrade to exactly the rule-priority policy.
  engine::Engine empty;
  const std::string query = R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author><name>{ $a1 }</name>
      { let $d2 := doc("bib.xml")
        for $b2 in $d2//book[$a1 = author]
        return $b2/title }
      </author>)";
  engine::CompiledQuery cost = empty.Compile(query, engine::PlanChoice::kCost);
  EXPECT_NE(cost.best.rule, "nested");
}

TEST_F(PlanChoiceTest, RunQueryUsesCostChoiceByDefault) {
  engine::RunResult r = engine_.RunQuery(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author><name>{ $a1 }</name>
      { let $d2 := doc("bib.xml")
        for $b2 in $d2//book[$a1 = author]
        return $b2/title }
      </author>)");
  EXPECT_FALSE(r.output.empty());
  EXPECT_EQ(r.stats.nested_alg_evals, 0u);
}

}  // namespace
}  // namespace nalq
