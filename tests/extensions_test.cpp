// Tests for the language extensions beyond the paper's core: arithmetic,
// if/then/else, and the order by clause (which the paper explicitly leaves
// out and which compiles to the stable Sort operator).
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "engine/engine.h"

namespace nalq {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_.AddDocument("shop.xml", R"(<shop>
      <item><name>pen</name><price>2</price><qty>10</qty></item>
      <item><name>ink</name><price>8</price><qty>3</qty></item>
      <item><name>pad</name><price>5</price><qty>3</qty></item>
      <item><name>cap</name><price>2</price><qty>7</qty></item>
    </shop>)");
  }

  std::string Run(const char* query) {
    return engine_.RunQuery(query).output;
  }

  engine::Engine engine_;
};

TEST_F(ExtensionsTest, ArithmeticInWhere) {
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    where $i/price * $i/qty >= 20
    return <x>{ $i/name }</x>)"),
            "<x><name>pen</name></x><x><name>ink</name></x>");
}

TEST_F(ExtensionsTest, ArithmeticOperatorsAndPrecedence) {
  // 2 + 3 * 4 = 14 (not 20); div and mod.
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    where $i/name = "pen"
    return <x>{ 2 + 3 * 4 }</x>)"),
            "<x>14</x>");
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    where $i/name = "pen"
    return <x>{ 7 div 2 }:{ 7 mod 2 }</x>)"),
            "<x>3.5:1</x>");
}

TEST_F(ExtensionsTest, UnaryMinus) {
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    where $i/name = "pen"
    return <x>{ -3 + 5 }</x>)"),
            "<x>2</x>");
}

TEST_F(ExtensionsTest, ArithmeticOnNonNumbersIsEmpty) {
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    where $i/name = "pen"
    return <x>{ $i/name + 1 }</x>)"),
            "<x></x>");
}

TEST_F(ExtensionsTest, Conditional) {
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    return <x>{ if ($i/price > 4) then "dear" else "cheap" }</x>)"),
            "<x>cheap</x><x>dear</x><x>dear</x><x>cheap</x>");
}

TEST_F(ExtensionsTest, OrderByAscending) {
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    order by $i/name
    return <x>{ $i/name }</x>)"),
            "<x><name>cap</name></x><x><name>ink</name></x>"
            "<x><name>pad</name></x><x><name>pen</name></x>");
}

TEST_F(ExtensionsTest, OrderByNumericDescending) {
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    order by decimal($i/price) descending
    return <x>{ $i/name }</x>)"),
            "<x><name>ink</name></x><x><name>pad</name></x>"
            "<x><name>pen</name></x><x><name>cap</name></x>");
}

TEST_F(ExtensionsTest, OrderByIsStableAndSupportsMultipleKeys) {
  // Equal prices keep document order under a stable single-key sort...
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    stable order by decimal($i/price)
    return <x>{ $i/name }</x>)"),
            "<x><name>pen</name></x><x><name>cap</name></x>"
            "<x><name>pad</name></x><x><name>ink</name></x>");
  // ... and a second key breaks the tie explicitly.
  EXPECT_EQ(Run(R"(
    for $i in doc("shop.xml")//item
    order by decimal($i/price), $i/name descending
    return <x>{ $i/name }</x>)"),
            "<x><name>pen</name></x><x><name>cap</name></x>"
            "<x><name>pad</name></x><x><name>ink</name></x>");
}

TEST_F(ExtensionsTest, OrderByKeysDoNotLeakIntoOutput) {
  // The sort-key attributes are projected away before Ξ.
  engine::CompiledQuery q = engine_.Compile(R"(
    for $i in doc("shop.xml")//item
    order by $i/name
    return <x>{ $i/name }</x>)");
  nal::AttrInfo info = nal::OutputAttrs(*q.nested_plan);
  for (nal::Symbol a : info.attrs) {
    EXPECT_EQ(std::string(a.str()).find("sortkey"), std::string::npos);
  }
}

TEST_F(ExtensionsTest, OrderByComposesWithUnnesting) {
  // order by on the outer block must not break the unnesting rewrites of
  // the nested block (the Sort sits above the rewritten site).
  engine_.AddDocument("bib.xml", datagen::GenerateBib({}));
  engine_.RegisterDtd("bib.xml", datagen::kBibDtd);
  engine::CompiledQuery q = engine_.Compile(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    order by $a1 descending
    return <author><name>{ $a1 }</name>{
      let $d2 := doc("bib.xml")
      for $b2 in $d2//book[$a1 = author]
      return $b2/title }</author>)");
  ASSERT_NE(q.Find("eqv4-outerjoin"), nullptr);
  std::string nested = engine_.Run(q.nested_plan).output;
  std::string unnested = engine_.Run(q.Find("eqv4-outerjoin")->plan).output;
  EXPECT_EQ(nested, unnested);
  EXPECT_FALSE(nested.empty());
}

}  // namespace
}  // namespace nalq
