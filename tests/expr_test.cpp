// Expression evaluation tests: general comparisons (existential semantics),
// built-in functions, quantifier expressions, aggregates, effective boolean
// values — plus Clone/SubstituteAttr used by the rewriter.
#include <gtest/gtest.h>

#include "nal/eval.h"
#include "test_util.h"
#include "xml/store.h"

namespace nalq::nal {
namespace {

using testutil::I;
using testutil::S;
using testutil::T;
using testutil::Table;

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() : eval_(store_) {
    store_.AddDocumentText("bib.xml", R"(
      <bib>
        <book year="1994"><title>T1</title><price>39.95</price></book>
        <book year="2000"><title>T2</title><price>12.50</price></book>
      </bib>)");
  }

  Value E(const ExprPtr& e, const Tuple& local = Tuple()) {
    return eval_.EvalExpr(*e, local, Tuple());
  }

  xml::Store store_;
  Evaluator eval_;
};

TEST_F(ExprTest, ConstAndAttrRef) {
  EXPECT_EQ(E(MakeConst(I(5))).AsInt(), 5);
  Tuple t = T({{"a", S("hello")}});
  EXPECT_EQ(E(MakeAttrRef(Symbol("a")), t).AsString(), "hello");
  EXPECT_TRUE(E(MakeAttrRef(Symbol("zz")), t).is_null());
}

TEST_F(ExprTest, LocalShadowsEnv) {
  Tuple local = T({{"a", I(1)}});
  Tuple env = T({{"a", I(2)}, {"b", I(3)}});
  EXPECT_EQ(eval_.EvalExpr(*MakeAttrRef(Symbol("a")), local, env).AsInt(), 1);
  EXPECT_EQ(eval_.EvalExpr(*MakeAttrRef(Symbol("b")), local, env).AsInt(), 3);
}

TEST_F(ExprTest, AtomicComparisons) {
  auto cmp = [&](CmpOp op, Value l, Value r) {
    return E(MakeCmp(op, MakeConst(l), MakeConst(r))).AsBool();
  };
  EXPECT_TRUE(cmp(CmpOp::kEq, I(3), Value(3.0)));
  EXPECT_TRUE(cmp(CmpOp::kLt, I(3), Value(3.5)));
  EXPECT_TRUE(cmp(CmpOp::kEq, S("x"), S("x")));
  EXPECT_FALSE(cmp(CmpOp::kEq, S("x"), S("y")));
  EXPECT_TRUE(cmp(CmpOp::kNe, S("x"), S("y")));
  // Untyped text against a numeric literal compares numerically.
  EXPECT_TRUE(cmp(CmpOp::kGt, S("1995"), I(1993)));
  EXPECT_TRUE(cmp(CmpOp::kLe, S("1992"), I(1993)));
  // Lexicographic fallback for non-numeric ordered comparison.
  EXPECT_TRUE(cmp(CmpOp::kLt, S("abc"), S("abd")));
}

TEST_F(ExprTest, GeneralComparisonIsExistential) {
  Value seq = Value::FromItems({I(1), I(5), I(9)});
  EXPECT_TRUE(E(MakeCmp(CmpOp::kEq, MakeConst(seq), MakeConst(I(5)))).AsBool());
  EXPECT_FALSE(
      E(MakeCmp(CmpOp::kEq, MakeConst(seq), MakeConst(I(4)))).AsBool());
  // Both sides sequences: any pair.
  Value seq2 = Value::FromItems({I(4), I(9)});
  EXPECT_TRUE(
      E(MakeCmp(CmpOp::kEq, MakeConst(seq), MakeConst(seq2))).AsBool());
  // Empty sequence never compares true (even with !=).
  Value empty = Value::FromItems({});
  EXPECT_FALSE(
      E(MakeCmp(CmpOp::kNe, MakeConst(empty), MakeConst(I(1)))).AsBool());
}

TEST_F(ExprTest, BooleanConnectives) {
  ExprPtr t = MakeConst(Value(true));
  ExprPtr f = MakeConst(Value(false));
  EXPECT_TRUE(E(MakeAnd(t->Clone(), t->Clone())).AsBool());
  EXPECT_FALSE(E(MakeAnd(t->Clone(), f->Clone())).AsBool());
  EXPECT_TRUE(E(MakeOr(f->Clone(), t->Clone())).AsBool());
  EXPECT_TRUE(E(MakeNot(f->Clone())).AsBool());
}

TEST_F(ExprTest, EffectiveBooleanValue) {
  EXPECT_FALSE(EffectiveBooleanValue(Value()));
  EXPECT_TRUE(EffectiveBooleanValue(Value(int64_t{1})));
  EXPECT_FALSE(EffectiveBooleanValue(Value(int64_t{0})));
  EXPECT_TRUE(EffectiveBooleanValue(Value("x")));
  EXPECT_FALSE(EffectiveBooleanValue(Value("")));
  EXPECT_FALSE(EffectiveBooleanValue(Value::FromItems({})));
  EXPECT_TRUE(EffectiveBooleanValue(Value::FromItems({I(0)})));
}

TEST_F(ExprTest, DocAndPathFunctions) {
  ExprPtr doc = MakeFnCall("doc", {MakeConst(S("bib.xml"))});
  Value root = E(doc);
  ASSERT_EQ(root.kind(), ValueKind::kNode);
  ExprPtr titles = MakePath(doc->Clone(), xml::Path::Parse("//book/title"));
  Value items = E(titles);
  ASSERT_EQ(items.kind(), ValueKind::kItemSeq);
  EXPECT_EQ(items.AsItems().size(), 2u);
  EXPECT_EQ(items.AsItems()[0].ToString(store_), "T1");
  EXPECT_THROW(E(MakeFnCall("doc", {MakeConst(S("missing.xml"))})),
               std::runtime_error);
}

TEST_F(ExprTest, AggregateFunctions) {
  Value prices = Value::FromItems({S("39.95"), S("12.50")});
  EXPECT_EQ(E(MakeFnCall("count", {MakeConst(prices)})).AsInt(), 2);
  EXPECT_EQ(E(MakeFnCall("min", {MakeConst(prices)})).AsDouble(), 12.50);
  EXPECT_EQ(E(MakeFnCall("max", {MakeConst(prices)})).AsDouble(), 39.95);
  EXPECT_DOUBLE_EQ(E(MakeFnCall("sum", {MakeConst(prices)})).AsDouble(),
                   52.45);
  EXPECT_DOUBLE_EQ(E(MakeFnCall("avg", {MakeConst(prices)})).AsDouble(),
                   26.225);
  // Aggregates over the empty sequence.
  Value empty = Value::FromItems({});
  EXPECT_EQ(E(MakeFnCall("count", {MakeConst(empty)})).AsInt(), 0);
  EXPECT_TRUE(E(MakeFnCall("min", {MakeConst(empty)})).is_null());
  // min over non-numeric strings is lexicographic.
  Value words = Value::FromItems({S("pear"), S("apple")});
  EXPECT_EQ(E(MakeFnCall("min", {MakeConst(words)})).AsString(), "apple");
}

TEST_F(ExprTest, StringAndTestFunctions) {
  EXPECT_TRUE(E(MakeFnCall("contains", {MakeConst(S("Dan Suciu")),
                                        MakeConst(S("Suciu"))}))
                  .AsBool());
  EXPECT_FALSE(E(MakeFnCall("contains",
                            {MakeConst(S("nobody")), MakeConst(S("Suciu"))}))
                   .AsBool());
  EXPECT_TRUE(E(MakeFnCall("starts-with", {MakeConst(S("abcdef")),
                                           MakeConst(S("abc"))}))
                  .AsBool());
  EXPECT_TRUE(
      E(MakeFnCall("empty", {MakeConst(Value::FromItems({}))})).AsBool());
  EXPECT_TRUE(
      E(MakeFnCall("exists", {MakeConst(Value::FromItems({I(1)}))})).AsBool());
  EXPECT_EQ(E(MakeFnCall("decimal", {MakeConst(S(" 39.95 "))})).AsDouble(),
            39.95);
  EXPECT_TRUE(E(MakeFnCall("decimal", {MakeConst(S("n/a"))})).is_null());
  EXPECT_EQ(E(MakeFnCall("string-length", {MakeConst(S("abc"))})).AsInt(), 3);
  EXPECT_EQ(E(MakeFnCall("concat", {MakeConst(S("a")), MakeConst(S("b")),
                                    MakeConst(I(1))}))
                .AsString(),
            "ab1");
  EXPECT_THROW(E(MakeFnCall("no-such-fn", {})), std::runtime_error);
}

TEST_F(ExprTest, DistinctValuesAtomizesAndDeduplicates) {
  Value seq = Value::FromItems({S("a"), S("b"), S("a"), I(2), Value(2.0)});
  Value out = E(MakeFnCall("distinct-values", {MakeConst(seq)}));
  ASSERT_EQ(out.kind(), ValueKind::kItemSeq);
  // "a", "b", 2 — first occurrences, deterministic.
  ASSERT_EQ(out.AsItems().size(), 3u);
  EXPECT_EQ(out.AsItems()[0].AsString(), "a");
  EXPECT_EQ(out.AsItems()[1].AsString(), "b");
}

TEST_F(ExprTest, BindTuplesBuildsNamedTupleSequence) {
  Value seq = Value::FromItems({I(1), I(2)});
  Value out = E(MakeBindTuples(MakeConst(seq), Symbol("a'")));
  ASSERT_EQ(out.kind(), ValueKind::kTupleSeq);
  ASSERT_EQ(out.AsTuples().size(), 2u);
  EXPECT_EQ(out.AsTuples()[1].Get(Symbol("a'")).AsInt(), 2);
}

TEST_F(ExprTest, QuantifierExpressions) {
  Sequence range;
  range.Append(T({{"v", I(1)}}));
  range.Append(T({{"v", I(5)}}));
  auto some = MakeQuant(
      QuantKind::kSome, Symbol("x"), Table(range),
      MakeCmp(CmpOp::kGt, MakeAttrRef(Symbol("x")), MakeConst(I(3))));
  EXPECT_TRUE(E(some).AsBool());
  auto every = MakeQuant(
      QuantKind::kEvery, Symbol("x"), Table(range),
      MakeCmp(CmpOp::kGt, MakeAttrRef(Symbol("x")), MakeConst(I(3))));
  EXPECT_FALSE(E(every).AsBool());
  // Quantifiers over the empty range: ∃ false, ∀ true.
  auto some_empty = MakeQuant(
      QuantKind::kSome, Symbol("x"), Table(Sequence()),
      MakeConst(Value(true)));
  EXPECT_FALSE(E(some_empty).AsBool());
  auto every_empty = MakeQuant(
      QuantKind::kEvery, Symbol("x"), Table(Sequence()),
      MakeConst(Value(false)));
  EXPECT_TRUE(E(every_empty).AsBool());
}

TEST_F(ExprTest, AggExprAppliesSpecToNestedAlgebra) {
  Sequence rows;
  rows.Append(T({{"b", I(3)}}));
  rows.Append(T({{"b", I(7)}}));
  auto agg = MakeAgg(AggOf(AggSpec::Kind::kSum, Symbol("b")),
                     MakeNestedAlg(Table(rows)));
  EXPECT_DOUBLE_EQ(E(agg).AsDouble(), 10.0);
  auto count = MakeAgg(AggCount(), MakeNestedAlg(Table(rows)));
  EXPECT_EQ(E(count).AsInt(), 2);
  auto items = MakeAgg(AggProjectItems(Symbol("b")), MakeNestedAlg(Table(rows)));
  EXPECT_EQ(E(items).AsItems().size(), 2u);
}

TEST_F(ExprTest, SubstituteAttrReplacesReferences) {
  ExprPtr pred = MakeAnd(
      MakeCmp(CmpOp::kEq, MakeAttrRef(Symbol("x")), MakeAttrRef(Symbol("y"))),
      MakeFnCall("contains", {MakeAttrRef(Symbol("x")), MakeConst(S("s"))}));
  ExprPtr sub = SubstituteAttr(pred, Symbol("x"), Symbol("z"));
  std::vector<Symbol> refs;
  CollectFreeAttrs(*sub, &refs);
  for (Symbol s : refs) EXPECT_NE(s, Symbol("x"));
  // Original untouched.
  refs.clear();
  CollectFreeAttrs(*pred, &refs);
  EXPECT_NE(std::find(refs.begin(), refs.end(), Symbol("x")), refs.end());
}

TEST_F(ExprTest, CloneIsDeep) {
  ExprPtr original = MakeCmp(CmpOp::kLt, MakeAttrRef(Symbol("a")),
                             MakeConst(I(1)));
  ExprPtr copy = original->Clone();
  copy->children[0]->attr = Symbol("changed");
  EXPECT_EQ(original->children[0]->attr, Symbol("a"));
}

TEST_F(ExprTest, NegateCmpRoundTrip) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    EXPECT_EQ(NegateCmp(NegateCmp(op)), op);
  }
  EXPECT_EQ(NegateCmp(CmpOp::kGt), CmpOp::kLe);
}

}  // namespace
}  // namespace nalq::nal
