// Unit tests for the XPath-lite evaluator: axes, document order,
// duplicate-freeness, parsing.
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/xpath.h"

namespace nalq::xml {
namespace {

class XPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_id_ = store_.AddDocumentText("bib.xml", R"(
      <bib>
        <book year="1994">
          <title>T1</title>
          <author><last>L1</last><first>F1</first></author>
          <author><last>L2</last><first>F2</first></author>
        </book>
        <book year="2000">
          <title>T2</title>
          <author><last>L3</last><first>F3</first></author>
        </book>
      </bib>)");
  }

  NodeRef Root() const { return NodeRef{doc_id_, 0}; }
  const Document& Doc() const { return store_.document(doc_id_); }

  std::vector<std::string> Names(const std::vector<NodeRef>& refs) {
    std::vector<std::string> out;
    for (const NodeRef& r : refs) {
      out.push_back(std::string(Doc().node_name(r.id)));
    }
    return out;
  }

  std::vector<std::string> Values(const std::vector<NodeRef>& refs) {
    std::vector<std::string> out;
    for (const NodeRef& r : refs) out.push_back(Doc().StringValue(r.id));
    return out;
  }

  Store store_;
  DocId doc_id_ = 0;
};

TEST_F(XPathTest, ParseRoundTrip) {
  EXPECT_EQ(Path::Parse("//book/title").ToString(), "//book/title");
  EXPECT_EQ(Path::Parse("author").ToString(), "author");
  EXPECT_EQ(Path::Parse("@year").ToString(), "@year");
  EXPECT_EQ(Path::Parse("/bib/book").ToString(), "/bib/book");
  EXPECT_EQ(Path::Parse("//book//last").ToString(), "//book//last");
  EXPECT_EQ(Path::Parse("*").ToString(), "*");
}

TEST_F(XPathTest, ParseRejectsMalformed) {
  EXPECT_THROW(Path::Parse(""), std::invalid_argument);
  EXPECT_THROW(Path::Parse("a/"), std::invalid_argument);
  EXPECT_THROW(Path::Parse("a//"), std::invalid_argument);
  EXPECT_THROW(Path::Parse("//@year"), std::invalid_argument);
}

TEST_F(XPathTest, DescendantAxisInDocumentOrder) {
  auto titles = EvalPath(store_, Path::Parse("//title"), Root());
  EXPECT_EQ(Values(titles), (std::vector<std::string>{"T1", "T2"}));
  auto lasts = EvalPath(store_, Path::Parse("//last"), Root());
  EXPECT_EQ(Values(lasts), (std::vector<std::string>{"L1", "L2", "L3"}));
}

TEST_F(XPathTest, MixedDescendantChildSteps) {
  auto authors = EvalPath(store_, Path::Parse("//book/author"), Root());
  EXPECT_EQ(authors.size(), 3u);
  auto firsts = EvalPath(store_, Path::Parse("//book//first"), Root());
  EXPECT_EQ(Values(firsts), (std::vector<std::string>{"F1", "F2", "F3"}));
}

TEST_F(XPathTest, AttributeAxis) {
  auto books = EvalPath(store_, Path::Parse("//book"), Root());
  ASSERT_EQ(books.size(), 2u);
  auto year = EvalPath(store_, Path::Parse("@year"), books[0]);
  ASSERT_EQ(year.size(), 1u);
  EXPECT_EQ(Doc().StringValue(year[0].id), "1994");
}

TEST_F(XPathTest, RelativePathsFromContextNode) {
  auto books = EvalPath(store_, Path::Parse("//book"), Root());
  auto authors = EvalPath(store_, Path::Parse("author"), books[0]);
  EXPECT_EQ(authors.size(), 2u);
  auto authors2 = EvalPath(store_, Path::Parse("author"), books[1]);
  EXPECT_EQ(authors2.size(), 1u);
}

TEST_F(XPathTest, AbsolutePathIgnoresContextPosition) {
  auto books = EvalPath(store_, Path::Parse("//book"), Root());
  auto all_titles = EvalPath(store_, Path::Parse("//title"), books[1]);
  EXPECT_EQ(all_titles.size(), 2u);  // absolute: starts at document root
}

TEST_F(XPathTest, MultiContextEvaluationDeduplicatesAndSorts) {
  auto books = EvalPath(store_, Path::Parse("//book"), Root());
  // Evaluate from both books AND from the root (overlapping result sets).
  std::vector<NodeRef> contexts = {Root(), books[0], books[1]};
  // Relative descendant from multiple contexts.
  Path rel(false, {Step{Axis::kDescendant, "last"}});
  auto lasts = EvalPath(store_, rel, std::span<const NodeRef>(contexts));
  EXPECT_EQ(Values(lasts), (std::vector<std::string>{"L1", "L2", "L3"}));
}

TEST_F(XPathTest, WildcardStep) {
  auto kids = EvalPath(store_, Path::Parse("//book/*"), Root());
  // title + 2 authors + title + author = 5 element children.
  EXPECT_EQ(kids.size(), 5u);
}

TEST_F(XPathTest, TextStep) {
  auto books = EvalPath(store_, Path::Parse("//title"), Root());
  auto text = EvalPath(store_, Path::Parse("text()"), books[0]);
  ASSERT_EQ(text.size(), 1u);
  EXPECT_EQ(Doc().StringValue(text[0].id), "T1");
}

TEST_F(XPathTest, MissingNameYieldsEmpty) {
  auto nothing = EvalPath(store_, Path::Parse("//nonexistent"), Root());
  EXPECT_TRUE(nothing.empty());
}

TEST_F(XPathTest, StatsCountVisitsAndSteps) {
  XPathStats stats;
  EvalPath(store_, Path::Parse("//book/title"), Root(), &stats);
  EXPECT_EQ(stats.steps_evaluated, 2u);
  EXPECT_GT(stats.nodes_visited, 0u);
}

TEST_F(XPathTest, ConcatPaths) {
  Path a = Path::Parse("//book");
  Path b = Path::Parse("author/last");
  EXPECT_EQ(a.Concat(b).ToString(), "//book/author/last");
}

}  // namespace
}  // namespace nalq::xml
