// Lexer and parser tests for the XQuery subset.
#include <gtest/gtest.h>

#include "xquery/lexer.h"
#include "xquery/parser.h"

namespace nalq::xquery {
namespace {

TEST(LexerTest, BasicTokens) {
  Lexer lex("let $x := doc(\"a.xml\") //book[3.5] >= != . *");
  EXPECT_EQ(lex.Next().text, "let");
  Token var = lex.Next();
  EXPECT_EQ(var.kind, TokKind::kVar);
  EXPECT_EQ(var.text, "x");
  EXPECT_EQ(lex.Next().kind, TokKind::kAssign);
  EXPECT_EQ(lex.Next().text, "doc");
  EXPECT_EQ(lex.Next().kind, TokKind::kLParen);
  Token s = lex.Next();
  EXPECT_EQ(s.kind, TokKind::kString);
  EXPECT_EQ(s.text, "a.xml");
  EXPECT_EQ(lex.Next().kind, TokKind::kRParen);
  EXPECT_EQ(lex.Next().kind, TokKind::kSlashSlash);
  EXPECT_EQ(lex.Next().text, "book");
  EXPECT_EQ(lex.Next().kind, TokKind::kLBracket);
  Token n = lex.Next();
  EXPECT_EQ(n.kind, TokKind::kNumber);
  EXPECT_EQ(n.number, 3.5);
  EXPECT_FALSE(n.is_integer);
  EXPECT_EQ(lex.Next().kind, TokKind::kRBracket);
  EXPECT_EQ(lex.Next().kind, TokKind::kGe);
  EXPECT_EQ(lex.Next().kind, TokKind::kNe);
  EXPECT_EQ(lex.Next().kind, TokKind::kDot);
  EXPECT_EQ(lex.Next().kind, TokKind::kStar);
  EXPECT_EQ(lex.Next().kind, TokKind::kEof);
}

TEST(LexerTest, CommentsAndHyphenatedNames) {
  Lexer lex("(: a comment :) distinct-values");
  Token t = lex.Next();
  EXPECT_EQ(t.kind, TokKind::kName);
  EXPECT_EQ(t.text, "distinct-values");
}

TEST(LexerTest, Errors) {
  EXPECT_THROW(Lexer("$").Next(), LexError);
  EXPECT_THROW(Lexer("\"abc").Next(), LexError);
  EXPECT_THROW(Lexer("!x").Next(), LexError);
  EXPECT_THROW(Lexer("(: unterminated").Next(), LexError);
}

TEST(ParserTest, SimpleFlwr) {
  AstPtr q = ParseQuery(
      "for $b in doc(\"bib.xml\")//book where $b/@year > 1993 return $b");
  ASSERT_EQ(q->kind, AstKind::kFlwr);
  ASSERT_EQ(q->clauses.size(), 2u);
  EXPECT_EQ(q->clauses[0].kind, Clause::Kind::kFor);
  EXPECT_EQ(q->clauses[0].var, "b");
  EXPECT_EQ(q->clauses[1].kind, Clause::Kind::kWhere);
  ASSERT_NE(q->ret, nullptr);
  EXPECT_EQ(q->ret->kind, AstKind::kVarRef);
}

TEST(ParserTest, MultipleBindingsPerClause) {
  AstPtr q = ParseQuery(
      "for $a in doc(\"x\")//a, $b in $a/b let $c := $b/c, $d := $b/d "
      "return $c");
  ASSERT_EQ(q->clauses.size(), 4u);
  EXPECT_EQ(q->clauses[1].var, "b");
  EXPECT_EQ(q->clauses[2].kind, Clause::Kind::kLet);
  EXPECT_EQ(q->clauses[3].var, "d");
}

TEST(ParserTest, PathWithPredicateAndAttribute) {
  AstPtr q = ParseQuery("for $b in $d//book[author = $a1] return $b/@year");
  const Clause& c = q->clauses[0];
  ASSERT_EQ(c.expr->kind, AstKind::kPathExpr);
  ASSERT_EQ(c.expr->steps.size(), 1u);
  EXPECT_EQ(c.expr->steps[0].axis, xml::Axis::kDescendant);
  ASSERT_NE(c.expr->steps[0].predicate, nullptr);
  // Predicate: relative path `author` = $a1.
  const Ast& pred = *c.expr->steps[0].predicate;
  ASSERT_EQ(pred.kind, AstKind::kCmp);
  EXPECT_EQ(pred.children[0]->kind, AstKind::kPathExpr);
  EXPECT_EQ(pred.children[0]->children[0]->kind, AstKind::kContextRef);
  // Return: attribute step.
  EXPECT_EQ(q->ret->steps.back().axis, xml::Axis::kAttribute);
  EXPECT_EQ(q->ret->steps.back().name, "year");
}

TEST(ParserTest, Quantifiers) {
  AstPtr q = ParseQuery(
      "for $t in $d//title where some $t2 in $e//title satisfies $t = $t2 "
      "return $t");
  const Clause& where = q->clauses[1];
  ASSERT_EQ(where.expr->kind, AstKind::kQuantified);
  EXPECT_EQ(where.expr->quant, nal::QuantKind::kSome);
  EXPECT_EQ(where.expr->qvar, "t2");
  AstPtr q2 = ParseQuery(
      "for $t in $d//title where every $y in $t/@a satisfies $y > 1 "
      "return $t");
  EXPECT_EQ(q2->clauses[1].expr->quant, nal::QuantKind::kEvery);
}

TEST(ParserTest, BooleanPrecedence) {
  AstPtr q = ParseQuery("for $x in $d//a where $x = 1 and $x = 2 or $x = 3 "
                        "return $x");
  // or binds weakest: (and) or (=).
  const Ast& pred = *q->clauses[1].expr;
  ASSERT_EQ(pred.kind, AstKind::kOr);
  EXPECT_EQ(pred.children[0]->kind, AstKind::kAnd);
  EXPECT_EQ(pred.children[1]->kind, AstKind::kCmp);
}

TEST(ParserTest, WordComparisonOperators) {
  AstPtr q = ParseQuery("for $x in $d//a where $x ge 3 return $x");
  EXPECT_EQ(q->clauses[1].expr->cmp, nal::CmpOp::kGe);
}

TEST(ParserTest, ElementConstructorWithEnclosedExprs) {
  AstPtr q = ParseQuery(R"(
    for $a in $d//author
    return <author><name>{ $a }</name><tag>static</tag></author>)");
  const Ast& ctor = *q->ret;
  ASSERT_EQ(ctor.kind, AstKind::kElementCtor);
  EXPECT_EQ(ctor.tag, "author");
  // Content: nested <name> ctor part + nested <tag> ctor part.
  ASSERT_EQ(ctor.content.size(), 2u);
  ASSERT_FALSE(ctor.content[0].is_literal);
  const Ast& name = *ctor.content[0].expr;
  EXPECT_EQ(name.kind, AstKind::kElementCtor);
  ASSERT_EQ(name.content.size(), 1u);
  EXPECT_EQ(name.content[0].expr->kind, AstKind::kVarRef);
}

TEST(ParserTest, ConstructorAttributesWithEnclosedExprs) {
  AstPtr q = ParseQuery(
      R"(for $t in $d//title return <minprice title="{ $t }" fixed="x"/>)");
  const Ast& ctor = *q->ret;
  ASSERT_EQ(ctor.attributes.size(), 2u);
  EXPECT_EQ(ctor.attributes[0].first, "title");
  ASSERT_EQ(ctor.attributes[0].second.size(), 1u);
  EXPECT_FALSE(ctor.attributes[0].second[0].is_literal);
  EXPECT_TRUE(ctor.attributes[1].second[0].is_literal);
  EXPECT_EQ(ctor.attributes[1].second[0].text, "x");
}

TEST(ParserTest, NestedFlwrInsideConstructor) {
  AstPtr q = ParseQuery(R"(
    for $a in $d//author
    return <author>{ for $b in $d//book return $b/title }</author>)");
  const Ast& ctor = *q->ret;
  ASSERT_EQ(ctor.content.size(), 1u);
  EXPECT_EQ(ctor.content[0].expr->kind, AstKind::kFlwr);
}

TEST(ParserTest, ParenthesizedFlwrAsExpression) {
  AstPtr q = ParseQuery(
      "let $x := (for $b in $d//book return $b) return <r>{ $x }</r>");
  EXPECT_EQ(q->clauses[0].expr->kind, AstKind::kFlwr);
}

TEST(ParserTest, EmptySequenceLiteral) {
  AstPtr q = ParseQuery("let $x := () return <r>{ $x }</r>");
  EXPECT_EQ(q->clauses[0].expr->kind, AstKind::kLiteral);
  EXPECT_EQ(q->clauses[0].expr->literal.SequenceLength(), 0u);
}

TEST(ParserTest, Errors) {
  EXPECT_THROW(ParseQuery("for $x return $x"), ParseError);
  EXPECT_THROW(ParseQuery("for $x in $d//a"), ParseError);      // no return
  EXPECT_THROW(ParseQuery("let $x = 1 return $x"), ParseError); // = not :=
  EXPECT_THROW(ParseQuery("for $x in $d//a return <a></b>"), ParseError);
  EXPECT_THROW(ParseQuery("for $x in $d//a return $x extra"), ParseError);
  EXPECT_THROW(ParseQuery("some $x in $d//a"), ParseError);  // no satisfies
}

TEST(ParserTest, ToStringRoundTripsThroughParser) {
  const char* queries[] = {
      "for $b in doc(\"bib.xml\")//book where $b/@year > 1993 return $b",
      "let $x := count(for $b in $d//book return $b) return <r>{ $x }</r>",
      "for $t in $d//title where some $u in $e//title satisfies $t = $u "
      "return <m>{ $t }</m>",
  };
  for (const char* text : queries) {
    AstPtr first = ParseQuery(text);
    AstPtr second = ParseQuery(first->ToString());
    EXPECT_EQ(first->ToString(), second->ToString()) << text;
  }
}

TEST(AstTest, CloneIsDeep) {
  AstPtr q = ParseQuery("for $b in $d//book[author = $x] return <r>{$b}</r>");
  AstPtr copy = q->Clone();
  copy->clauses[0].var = "changed";
  copy->clauses[0].expr->steps[0].predicate = nullptr;
  EXPECT_EQ(q->clauses[0].var, "b");
  EXPECT_NE(q->clauses[0].expr->steps[0].predicate, nullptr);
}

}  // namespace
}  // namespace nalq::xquery
