// Differential suite for the parallel partitioned executor
// (src/nal/exchange.h): at every worker count, chunk size and partition
// strategy, a parallel run must produce the byte-identical Ξ output, the
// identical root tuple sequence and the identical merged EvalStats of the
// serial streaming executor — on operator pipelines over random relations,
// on randomized plan × document × thread-count sweeps, and on every plan
// alternative of the paper's Q1–Q6. Plus partition-point analysis checks
// and exchange edge cases (empty producers, more workers than tuples,
// nested Ξ under a would-be partition boundary).
#include <gtest/gtest.h>

#include <thread>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "nal/cursor.h"
#include "nal/eval.h"
#include "nal/exchange.h"
#include "test_util.h"
#include "xml/store.h"

namespace nalq::nal {
namespace {

using testutil::I;
using testutil::S;
using testutil::SeqEq;
using testutil::Table;

unsigned Hardware() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Worker counts the acceptance criteria name: {1, 2, 4, hw}, deduplicated.
std::vector<unsigned> ThreadSweep() {
  std::vector<unsigned> sweep = {1, 2, 4};
  unsigned hw = Hardware();
  if (hw != 1 && hw != 2 && hw != 4) sweep.push_back(hw);
  return sweep;
}

::testing::AssertionResult StatsEq(const EvalStats& expected,
                                   const EvalStats& actual) {
  if (expected.nested_alg_evals == actual.nested_alg_evals &&
      expected.doc_scans == actual.doc_scans &&
      expected.tuples_produced == actual.tuples_produced &&
      expected.predicate_evals == actual.predicate_evals &&
      expected.xpath.steps_evaluated == actual.xpath.steps_evaluated &&
      expected.xpath.nodes_visited == actual.xpath.nodes_visited &&
      expected.xpath.index_lookups == actual.xpath.index_lookups &&
      expected.xpath.index_hits == actual.xpath.index_hits &&
      expected.xpath.index_nodes_skipped ==
          actual.xpath.index_nodes_skipped) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "EvalStats differ:\n  nested_alg_evals "
         << expected.nested_alg_evals << " vs " << actual.nested_alg_evals
         << "\n  doc_scans " << expected.doc_scans << " vs "
         << actual.doc_scans << "\n  tuples_produced "
         << expected.tuples_produced << " vs " << actual.tuples_produced
         << "\n  predicate_evals " << expected.predicate_evals << " vs "
         << actual.predicate_evals << "\n  xpath.steps "
         << expected.xpath.steps_evaluated << " vs "
         << actual.xpath.steps_evaluated << "\n  xpath.nodes "
         << expected.xpath.nodes_visited << " vs "
         << actual.xpath.nodes_visited << "\n  xpath.index_lookups "
         << expected.xpath.index_lookups << " vs "
         << actual.xpath.index_lookups;
}

/// Runs `plan` serially (streaming) and in parallel with `options`, and
/// asserts identical tuple sequence, Ξ output and merged EvalStats.
void ExpectParallelAgrees(const xml::Store& store, const AlgebraPtr& plan,
                          const ParallelOptions& options) {
  Evaluator streaming(store);
  Sequence expected = ExecuteStreaming(streaming, *plan);

  Evaluator parallel(store);
  Sequence actual = ExecuteParallel(parallel, *plan, options);

  EXPECT_TRUE(SeqEq(expected, actual));
  EXPECT_EQ(streaming.output(), parallel.output());
  EXPECT_TRUE(StatsEq(streaming.stats(), parallel.stats()));
}

void ExpectParallelAgreesAllConfigs(const xml::Store& store,
                                    const AlgebraPtr& plan) {
  for (unsigned threads : ThreadSweep()) {
    for (PartitionStrategy strategy :
         {PartitionStrategy::kRoundRobin, PartitionStrategy::kRange}) {
      for (uint32_t chunk : {1u, 3u, 64u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " strategy=" +
                     (strategy == PartitionStrategy::kRange ? "range"
                                                            : "round-robin") +
                     " chunk=" + std::to_string(chunk));
        ParallelOptions options;
        options.threads = threads;
        options.strategy = strategy;
        options.chunk_tuples = chunk;
        ExpectParallelAgrees(store, plan, options);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Partition-point analysis
// ---------------------------------------------------------------------------

TEST(PartitionPointTest, PipelineOverUnnestSplitsAboveTheExpander) {
  testutil::RandomRelation rng(1);
  Sequence rows = rng.MakeWithNested({"A"}, "G", Symbol("V"), 16, 3, 3);
  // σ(χ(μ_G(table))) — table itself is μ(χ(□)).
  AlgebraPtr plan = Select(
      MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("A")), MakeConst(I(0))),
      Map(Symbol("M"), MakeConst(S("x")),
          Unnest(Symbol("G"), Table(std::move(rows)))));
  std::optional<PartitionPoint> point = FindPartitionPoint(*plan);
  ASSERT_TRUE(point.has_value());
  // The producer must be expander-rooted so chunks carry real cardinality.
  EXPECT_TRUE(point->source->kind == OpKind::kUnnest ||
              point->source->kind == OpKind::kUnnestMap);
  EXPECT_FALSE(point->segment.empty());
  EXPECT_EQ(point->segment.front(), point->top);
  for (const AlgebraOp* op : point->segment) {
    EXPECT_TRUE(IsPartitionableOp(*op));
  }
}

TEST(PartitionPointTest, XiIsNeverInsideTheSegment) {
  testutil::RandomRelation rng(2);
  Sequence rows = rng.Make({"A"}, 12, 3);
  XiProgram s1;
  s1.push_back(XiCommand::Var(Symbol("A")));
  AlgebraPtr plan =
      XiSimple(std::move(s1),
               Select(MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("A")),
                              MakeConst(I(0))),
                      Table(std::move(rows))));
  std::optional<PartitionPoint> point = FindPartitionPoint(*plan);
  ASSERT_TRUE(point.has_value());
  for (const AlgebraOp* op : point->segment) {
    EXPECT_NE(op->kind, OpKind::kXiSimple);
    EXPECT_NE(op->kind, OpKind::kXiGroup);
  }
}

TEST(PartitionPointTest, NoPartitionableRunMeansNoPoint) {
  // Γ directly over the table leaves nothing per-tuple above an expander.
  testutil::RandomRelation rng(3);
  Sequence rows = rng.Make({"A", "B"}, 12, 3);
  AggSpec agg;
  agg.kind = AggSpec::Kind::kCount;
  agg.project = Symbol("B");
  AlgebraPtr plan = GroupUnary(Symbol("G"), CmpOp::kEq, {Symbol("A")},
                               std::move(agg), Table(std::move(rows)));
  EXPECT_FALSE(FindPartitionPoint(*plan).has_value());
}

TEST(PartitionPointTest, SubscriptXiAndDistinctAreNotPartitionable) {
  testutil::RandomRelation rng(4);
  XiProgram s1;
  s1.push_back(XiCommand::Literal("x"));
  AlgebraPtr inner = XiSimple(std::move(s1), Table(rng.Make({"X"}, 4, 2)));
  AlgebraPtr with_xi = Map(Symbol("M"), MakeNestedAlg(std::move(inner)),
                           Table(rng.Make({"A"}, 8, 2)));
  EXPECT_FALSE(IsPartitionableOp(*with_xi));

  AlgebraPtr distinct =
      ProjectDistinct({Symbol("A")}, Table(rng.Make({"A"}, 8, 2)));
  EXPECT_FALSE(IsPartitionableOp(*distinct));

  AlgebraPtr keep = ProjectKeep({Symbol("A")}, Table(rng.Make({"A", "B"}, 8, 2)));
  EXPECT_TRUE(IsPartitionableOp(*keep));
}

// ---------------------------------------------------------------------------
// Operator-pipeline differential tests over random relations
// ---------------------------------------------------------------------------

class ExchangeOperatorTest : public ::testing::Test {
 protected:
  xml::Store store_;
  testutil::RandomRelation rng_{20260730};
};

TEST_F(ExchangeOperatorTest, SelectMapUnnestPipeline) {
  Sequence rows = rng_.MakeWithNested({"A", "B"}, "G", Symbol("V"), 60, 4, 3);
  AlgebraPtr plan = Select(
      MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("A")), MakeConst(I(0))),
      Map(Symbol("M"), MakeConst(S("x")),
          Unnest(Symbol("G"),
                 ProjectDrop({Symbol("B")}, Table(std::move(rows))))));
  ExpectParallelAgreesAllConfigs(store_, plan);
}

TEST_F(ExchangeOperatorTest, MapWithNestedAlgebraSubscript) {
  // χ with a nested algebraic subscript: each worker re-evaluates the
  // subscript per tuple on its own evaluator; merged nested_alg_evals must
  // equal the serial count.
  Sequence outer = rng_.MakeWithNested({"A"}, "G", Symbol("V"), 24, 3, 3);
  Sequence inner = rng_.Make({"X", "Y"}, 8, 3);
  AlgebraPtr nested =
      Select(MakeCmp(CmpOp::kEq, MakeAttrRef(Symbol("A")),
                     MakeAttrRef(Symbol("X"))),
             Table(std::move(inner)));
  AlgebraPtr plan =
      Map(Symbol("R"), MakeNestedAlg(std::move(nested)),
          Unnest(Symbol("G"), Table(std::move(outer))));
  ExpectParallelAgreesAllConfigs(store_, plan);
}

TEST_F(ExchangeOperatorTest, UnnestDistinctAndOuterInsideSegment) {
  for (bool outer : {false, true}) {
    Sequence rows =
        rng_.MakeWithNested({"A"}, "G", Symbol("V"), 30, 2, 4);
    Sequence outer_rows =
        rng_.MakeWithNested({"B"}, "H", Symbol("W"), 30, 2, 3);
    // μD_G over the expander μ_H — both in the worker segment.
    AlgebraPtr plan =
        Unnest(Symbol("G"),
               Map(Symbol("G"), MakeConst(Value::FromTuples(std::move(rows))),
                   Unnest(Symbol("H"), Table(std::move(outer_rows)),
                          /*distinct=*/false, outer)),
               /*distinct=*/true, outer);
    ExpectParallelAgreesAllConfigs(store_, plan);
  }
}

TEST_F(ExchangeOperatorTest, BreakersAboveTheExchange) {
  // Sort ∘ Γ above the parallel segment: the serial part consumes the
  // merged stream.
  Sequence rows = rng_.MakeWithNested({"A", "B"}, "G", Symbol("V"), 40, 3, 3);
  AggSpec agg;
  agg.kind = AggSpec::Kind::kCount;
  agg.project = Symbol("V");
  AlgebraPtr plan = SortBy(
      {Symbol("A")},
      GroupUnary(Symbol("N"), CmpOp::kEq, {Symbol("A")}, std::move(agg),
                 Select(MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("V")),
                                MakeConst(I(0))),
                        Unnest(Symbol("G"), Table(std::move(rows))))));
  ExpectParallelAgreesAllConfigs(store_, plan);
}

TEST_F(ExchangeOperatorTest, XiRootAboveTheExchange) {
  Sequence rows = rng_.MakeWithNested({"A"}, "G", Symbol("V"), 32, 3, 3);
  XiProgram s1;
  s1.push_back(XiCommand::Literal("<r>"));
  s1.push_back(XiCommand::Var(Symbol("V")));
  s1.push_back(XiCommand::Literal("</r>"));
  AlgebraPtr plan =
      XiSimple(std::move(s1),
               Select(MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("V")),
                              MakeConst(I(0))),
                      Unnest(Symbol("G"), Table(std::move(rows)))));
  ExpectParallelAgreesAllConfigs(store_, plan);
}

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

TEST_F(ExchangeOperatorTest, ZeroTupleProducer) {
  // The nested sequences are all empty and the unnest is inner: the
  // producer emits nothing, no chunk is ever dispatched.
  Sequence rows = rng_.MakeWithNested({"A"}, "G", Symbol("V"), 10, 3, 0);
  AlgebraPtr plan = Select(
      MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("A")), MakeConst(I(0))),
      Unnest(Symbol("G"), Table(std::move(rows)), /*distinct=*/false,
             /*outer=*/false));
  ExpectParallelAgreesAllConfigs(store_, plan);
}

TEST_F(ExchangeOperatorTest, EmptyTable) {
  AlgebraPtr plan = Select(
      MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("A")), MakeConst(I(0))),
      Unnest(Symbol("G"), Table(Sequence()), /*distinct=*/false,
             /*outer=*/false));
  ExpectParallelAgreesAllConfigs(store_, plan);
}

TEST_F(ExchangeOperatorTest, MoreWorkersThanTuples) {
  Sequence rows = rng_.MakeWithNested({"A"}, "G", Symbol("V"), 2, 3, 2);
  AlgebraPtr plan = Map(Symbol("M"), MakeConst(I(7)),
                        Unnest(Symbol("G"), Table(std::move(rows))));
  ParallelOptions options;
  options.threads = 16;
  options.chunk_tuples = 1;
  ExpectParallelAgrees(store_, plan, options);
  options.strategy = PartitionStrategy::kRange;
  ExpectParallelAgrees(store_, plan, options);
}

TEST_F(ExchangeOperatorTest, SingleTupleProducer) {
  Sequence rows = rng_.MakeWithNested({"A"}, "G", Symbol("V"), 1, 3, 3);
  AlgebraPtr plan = Select(
      MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("V")), MakeConst(I(99))),
      Unnest(Symbol("G"), Table(std::move(rows))));
  ExpectParallelAgreesAllConfigs(store_, plan);
}

TEST_F(ExchangeOperatorTest, NestedXiUnderAPartitionBoundary) {
  // A Ξ hiding inside a χ subscript right above the expander: the op is
  // not partitionable, so it must stay on the consumer thread and the
  // output bytes must still match serial streaming exactly.
  Sequence outer = rng_.MakeWithNested({"A"}, "G", Symbol("V"), 12, 3, 2);
  Sequence inner = rng_.Make({"X"}, 3, 2);
  XiProgram s1;
  s1.push_back(XiCommand::Literal("i"));
  AlgebraPtr xi_inner = XiSimple(std::move(s1), Table(std::move(inner)));
  AlgebraPtr plan = Map(
      Symbol("M"), MakeNestedAlg(std::move(xi_inner)),
      Select(MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("V")), MakeConst(I(0))),
             Unnest(Symbol("G"), Table(std::move(outer)))));
  ASSERT_FALSE(IsPartitionableOp(*plan));
  ExpectParallelAgreesAllConfigs(store_, plan);
}

TEST_F(ExchangeOperatorTest, NonPartitionablePlanFallsBackToSerial) {
  testutil::RandomRelation rng(5);
  Sequence rows = rng.Make({"A", "B"}, 20, 3);
  AggSpec agg;
  agg.kind = AggSpec::Kind::kId;
  AlgebraPtr plan = GroupUnary(Symbol("G"), CmpOp::kEq, {Symbol("A")},
                               std::move(agg), Table(std::move(rows)));
  ASSERT_FALSE(FindPartitionPoint(*plan).has_value());
  ParallelOptions options;
  options.threads = 4;
  ExpectParallelAgrees(store_, plan, options);
}

TEST_F(ExchangeOperatorTest, ErrorInWorkerPropagates) {
  // theta-grouping inside a χ subscript with a multi-attribute key throws
  // at evaluation time; the exception must surface from the parallel run.
  Sequence rows = rng_.MakeWithNested({"A"}, "G", Symbol("V"), 8, 3, 2);
  AggSpec agg;
  agg.kind = AggSpec::Kind::kCount;
  agg.project = Symbol("X");
  AlgebraPtr bad_inner =
      GroupUnary(Symbol("N"), CmpOp::kLt, {Symbol("X"), Symbol("Y")},
                 std::move(agg), Table(rng_.Make({"X", "Y"}, 4, 2)));
  AlgebraPtr plan = Map(Symbol("M"), MakeNestedAlg(std::move(bad_inner)),
                        Unnest(Symbol("G"), Table(std::move(rows))));
  Evaluator parallel(store_);
  ParallelOptions options;
  options.threads = 3;
  options.chunk_tuples = 1;
  EXPECT_THROW(ExecuteParallel(parallel, *plan, options), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Randomized differential sweep: plans × relations × thread counts
// ---------------------------------------------------------------------------

TEST(ExchangeRandomizedTest, PlansByRelationsByThreads) {
  testutil::RandomRelation rng(987654);
  for (int round = 0; round < 12; ++round) {
    // Vary cardinalities through the interesting regimes: empty, one tuple,
    // fewer tuples than workers, many chunks.
    size_t rows = static_cast<size_t>(round % 4 == 0 ? round / 4
                                                     : 3 * round + 1);
    Sequence data =
        rng.MakeWithNested({"A", "B"}, "G", Symbol("V"), rows, 3, 3);
    AlgebraPtr plan;
    switch (round % 3) {
      case 0:
        plan = Select(MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("V")),
                              MakeConst(I(1))),
                      Unnest(Symbol("G"), Table(std::move(data))));
        break;
      case 1:
        plan = Map(Symbol("M"),
                   MakeCmp(CmpOp::kLt, MakeAttrRef(Symbol("A")),
                           MakeAttrRef(Symbol("B"))),
                   Unnest(Symbol("G"), Table(std::move(data)),
                          /*distinct=*/false, /*outer=*/true));
        break;
      default:
        plan = ProjectDrop(
            {Symbol("B")},
            Select(MakeCmp(CmpOp::kNe, MakeAttrRef(Symbol("A")),
                           MakeConst(I(0))),
                   Unnest(Symbol("G"), Table(std::move(data)),
                          /*distinct=*/true)));
        break;
    }
    xml::Store store;
    SCOPED_TRACE("round " + std::to_string(round) + " rows " +
                 std::to_string(rows));
    for (unsigned threads : {1u, 2u, 5u}) {
      ParallelOptions options;
      options.threads = threads;
      options.chunk_tuples = 1 + static_cast<uint32_t>(round % 5);
      options.strategy = round % 2 == 0 ? PartitionStrategy::kRoundRobin
                                        : PartitionStrategy::kRange;
      ExpectParallelAgrees(store, plan, options);
    }
  }
}

// ---------------------------------------------------------------------------
// Full-query differential tests: Q1–Q6, every alternative, thread sweep
// ---------------------------------------------------------------------------

class ExchangeQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    size_t n = 25;
    datagen::BibOptions bib;
    bib.books = n;
    bib.authors_per_book = 3;
    engine_.AddDocument("bib.xml", datagen::GenerateBib(bib));
    engine_.RegisterDtd("bib.xml", datagen::kBibDtd);
    engine_.AddDocument("reviews.xml", datagen::GenerateReviews(n));
    engine_.RegisterDtd("reviews.xml", datagen::kReviewsDtd);
    engine_.AddDocument("prices.xml", datagen::GeneratePrices(n));
    engine_.RegisterDtd("prices.xml", datagen::kPricesDtd);
    datagen::AuctionOptions auction;
    auction.bids = n + n / 2;
    engine_.AddDocument("bids.xml", datagen::GenerateBids(auction));
    engine_.RegisterDtd("bids.xml", datagen::kBidsDtd);
  }

  /// Every plan alternative of `query` must agree between serial streaming
  /// and parallel execution at every worker count of the sweep.
  void CheckQuery(const std::string& query) {
    engine::CompiledQuery q = engine_.Compile(query);
    ASSERT_FALSE(q.alternatives.empty());
    for (const rewrite::Alternative& alt : q.alternatives) {
      SCOPED_TRACE("plan: " + alt.rule);
      for (unsigned threads : ThreadSweep()) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ParallelOptions options;
        options.threads = threads;
        options.chunk_tuples = 8;  // small chunks: many tickets even at n=25
        ExpectParallelAgrees(engine_.store(), alt.plan, options);
      }
      // Range partitioning once per alternative (at the widest sweep point).
      ParallelOptions range;
      range.threads = ThreadSweep().back();
      range.strategy = PartitionStrategy::kRange;
      ExpectParallelAgrees(engine_.store(), alt.plan, range);
    }
  }

  engine::Engine engine_;
};

TEST_F(ExchangeQueryTest, Q1Grouping) {
  CheckQuery(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author>
        <name>{ $a1 }</name>
        {
          let $d2 := doc("bib.xml")
          for $b2 in $d2//book[$a1 = author]
          return $b2/title
        }
      </author>
  )");
}

TEST_F(ExchangeQueryTest, Q2Aggregation) {
  CheckQuery(R"(
    let $d1 := doc("prices.xml")
    for $t1 in distinct-values($d1//book/title)
    let $p1 := let $d2 := doc("prices.xml")
               for $b2 in $d2//book
               let $t2 := $b2/title
               let $p2 := $b2/price
               let $c2 := decimal($p2)
               where $t1 = $t2
               return $c2
    return
      <minprice title="{ $t1 }"><price>{ min($p1) }</price></minprice>
  )");
}

TEST_F(ExchangeQueryTest, Q3Exists) {
  CheckQuery(R"(
    let $d1 := document("bib.xml")
    for $t1 in $d1//book/title
    where some $t2 in document("reviews.xml")//entry/title
          satisfies $t1 = $t2
    return
      <book-with-review>{ $t1 }</book-with-review>
  )");
}

TEST_F(ExchangeQueryTest, Q4ExistsCount) {
  CheckQuery(R"(
    let $d1 := doc("bib.xml")
    for $b1 in $d1//book,
        $a1 in $b1/author
    where exists(
      for $b2 in $d1//book
      for $a2 in $b2/author
      where contains($a2, "Suciu") and $b1 = $b2
      return $b2)
    return
      <book>{ $a1 }</book>
  )");
}

TEST_F(ExchangeQueryTest, Q5Universal) {
  CheckQuery(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    where every $b2 in doc("bib.xml")//book[author = $a1]
          satisfies $b2/@year > 1993
    return
      <new-author>{ $a1 }</new-author>
  )");
}

TEST_F(ExchangeQueryTest, Q6Having) {
  CheckQuery(R"(
    let $d1 := document("bids.xml")
    for $i1 in distinct-values($d1//itemno)
    where count($d1//bidtuple[itemno = $i1]) >= 3
    return
      <popular-item>{ $i1 }</popular-item>
  )");
}

TEST_F(ExchangeQueryTest, BothPathModesAgreeUnderParallel) {
  const char kQuery[] = R"(
    for $b in doc("bib.xml")//book
    where count($b/author) >= 2
    return <multi>{ $b/title }</multi>
  )";
  for (engine::PathMode path :
       {engine::PathMode::kIndexed, engine::PathMode::kScan}) {
    engine::RunResult serial =
        engine_.RunQuery(kQuery, engine::ExecMode::kStreaming, path);
    for (unsigned threads : ThreadSweep()) {
      engine::RunResult parallel = engine_.RunQuery(
          kQuery, engine::ExecMode::kParallel, path, threads);
      EXPECT_EQ(serial.output, parallel.output);
      EXPECT_TRUE(StatsEq(serial.stats, parallel.stats));
    }
  }
}

TEST_F(ExchangeQueryTest, EngineParallelModeMatchesStreaming) {
  const char kQuery[] = R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return <a>{ $a1 }</a>
  )";
  engine::RunResult s = engine_.RunQuery(kQuery, engine::ExecMode::kStreaming);
  engine::RunResult p = engine_.RunQuery(kQuery, engine::ExecMode::kParallel,
                                         engine::PathMode::kIndexed,
                                         /*threads=*/4);
  EXPECT_EQ(s.output, p.output);
  EXPECT_TRUE(StatsEq(s.stats, p.stats));
}

// ---------------------------------------------------------------------------
// Concurrent shared-read paths (also exercised under TSan in CI)
// ---------------------------------------------------------------------------

TEST(SharedStoreTest, ConcurrentStringValueAndIndexReaders) {
  engine::Engine engine;
  datagen::BibOptions bib;
  bib.books = 40;
  bib.authors_per_book = 3;
  engine.AddDocument("bib.xml", datagen::GenerateBib(bib));
  const xml::Store& store = engine.store();
  xml::StoreReadLease lease(store);

  std::vector<std::string> first(8);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < first.size(); ++i) {
    threads.emplace_back([&store, &first, i] {
      const xml::DocumentIndex& index = store.index(0);
      const xml::Document& doc = store.document(0);
      std::string all;
      for (xml::NodeId id : index.AllElements()) {
        all += *doc.SharedStringValue(id);
      }
      first[i] = std::move(all);
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 1; i < first.size(); ++i) EXPECT_EQ(first[0], first[i]);
}

}  // namespace
}  // namespace nalq::nal
