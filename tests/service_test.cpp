// Concurrent query service tests (src/service/query_service.h): admission
// control, overload shedding, budget partitioning, deadline/cancellation
// composition with queue time, plan-cache versioning, per-run fault
// scoping, and the mixed-workload soak the PR's acceptance criteria name.
//
// Byte-identity discipline: every expected output is computed once by a
// serial, unlimited-budget engine run before the service is exercised;
// concurrent completions must match those bytes exactly, whatever the
// grant, degradation, executor mode, or neighboring faults.
//
// Environment tolerance: the CI sanitize lane re-runs the whole suite with
// NALQ_MEMORY_BUDGET_BYTES=1 MiB and the fault lane with a standing
// transient NALQ_FAULT_SPEC (first spool open-write fails once, then the
// retry succeeds) — so these tests always pass explicit service budgets
// and program scoped injectors explicitly instead of assuming a clean
// environment.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "engine/error.h"
#include "nal/fault_injection.h"
#include "nal/query_control.h"
#include "service/query_service.h"

namespace nalq {
namespace {

using engine::ErrorCode;
using service::QueryOptions;
using service::QueryResult;
using service::QueryService;
using service::ServiceOptions;

// The paper's six queries (Sec. 5), verbatim from tests/e2e_queries_test.cpp.
const char* kQ1 = R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return
      <author>
        <name>{ $a1 }</name>
        {
          let $d2 := doc("bib.xml")
          for $b2 in $d2//book[$a1 = author]
          return $b2/title
        }
      </author>
  )";
const char* kQ2 = R"(
    let $d1 := doc("prices.xml")
    for $t1 in distinct-values($d1//book/title)
    let $p1 := let $d2 := doc("prices.xml")
               for $b2 in $d2//book
               let $t2 := $b2/title
               let $p2 := $b2/price
               let $c2 := decimal($p2)
               where $t1 = $t2
               return $c2
    return
      <minprice title="{ $t1 }"><price>{ min($p1) }</price></minprice>
  )";
const char* kQ3 = R"(
    let $d1 := document("bib.xml")
    for $t1 in $d1//book/title
    where some $t2 in document("reviews.xml")//entry/title
          satisfies $t1 = $t2
    return
      <book-with-review>{ $t1 }</book-with-review>
  )";
const char* kQ4 = R"(
    let $d1 := doc("bib.xml")
    for $b1 in $d1//book,
        $a1 in $b1/author
    where exists(
      for $b2 in $d1//book
      for $a2 in $b2/author
      where contains($a2, "Suciu") and $b1 = $b2
      return $b2)
    return
      <book>{ $a1 }</book>
  )";
const char* kQ5 = R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    where every $b2 in doc("bib.xml")//book[author = $a1]
          satisfies $b2/@year > 1993
    return
      <new-author>{ $a1 }</new-author>
  )";
const char* kQ6 = R"(
    let $d1 := document("bids.xml")
    for $i1 in distinct-values($d1//itemno)
    where count($d1//bidtuple[itemno = $i1]) >= 3
    return
      <popular-item>{ $i1 }</popular-item>
  )";

const char* kAllQueries[] = {kQ1, kQ2, kQ3, kQ4, kQ5, kQ6};

void LoadDocuments(engine::Engine* engine, size_t n) {
  datagen::BibOptions bib;
  bib.books = n;
  bib.authors_per_book = 3;
  engine->AddDocument("bib.xml", datagen::GenerateBib(bib));
  engine->RegisterDtd("bib.xml", datagen::kBibDtd);
  engine->AddDocument("reviews.xml", datagen::GenerateReviews(n));
  engine->RegisterDtd("reviews.xml", datagen::kReviewsDtd);
  engine->AddDocument("prices.xml", datagen::GeneratePrices(n));
  engine->RegisterDtd("prices.xml", datagen::kPricesDtd);
  datagen::AuctionOptions auction;
  auction.bids = n + n / 2;
  engine->AddDocument("bids.xml", datagen::GenerateBids(auction));
  engine->RegisterDtd("bids.xml", datagen::kBidsDtd);
}

/// Spool directories of THIS process currently under the system temp dir
/// (same probe as tests/fault_injection_test.cpp) — the soak asserts no new
/// ones survive a drain.
std::set<std::string> SpoolDirsInTemp() {
  std::set<std::string> dirs;
  std::error_code ec;
  std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) return dirs;
  std::string prefix = "nalq-spool-" + std::to_string(getpid()) + "-";
  for (const auto& entry : std::filesystem::directory_iterator(base, ec)) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) {
      dirs.insert(entry.path().string());
    }
  }
  return dirs;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUpEngine(size_t n) {
    LoadDocuments(&engine_, n);
    for (const char* q : kAllQueries) {
      reference_.push_back(engine_.RunQuery(q).output);
      ASSERT_FALSE(reference_.back().empty());
    }
  }

  engine::Engine engine_;
  std::vector<std::string> reference_;  ///< serial unlimited-budget outputs
};

// Concurrent callers over one service: every completion is byte-identical
// to the serial reference and the ledger drains to zero.
TEST_F(ServiceTest, ConcurrentQueriesMatchSerialOutput) {
  SetUpEngine(25);
  ServiceOptions opt;
  opt.memory_budget_bytes = 64ull << 20;
  opt.max_concurrent = 4;
  opt.queue_depth = 64;
  opt.queue_deadline_ms = 60'000;
  QueryService svc(engine_, opt);

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 6;
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        size_t q = (t + i) % 6;
        QueryOptions qo;
        if (i % 2 == 1) {
          qo.mode = engine::ExecMode::kParallel;
          qo.threads = 2;
        }
        QueryResult r = svc.Execute(kAllQueries[q], qo);
        if (!r.ok || r.output != reference_[q]) ++mismatches;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  svc.Drain();
  EXPECT_EQ(svc.reserved_bytes(), 0u);
  EXPECT_EQ(svc.in_flight(), 0u);
  service::ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(s.completed, s.submitted);
  EXPECT_GT(s.cache_hits, 0u);  // six texts, forty-eight submissions
}

// Acceptance criterion: at 4x capacity the service sheds the excess with
// kAdmissionRejected (or the caller's deadline) while every admitted query
// completes byte-identical. Capacity = max_concurrent + queue_depth = 4;
// 16 concurrent submissions is 4x. PlanChoice::kManual runs the nested
// (quadratic) plan — tens of milliseconds at this size, so the flood
// genuinely overlaps — and the paper's equivalences make its bytes
// identical to the unnested reference.
TEST_F(ServiceTest, OverloadShedsWithStructuredErrors) {
  SetUpEngine(150);
  ServiceOptions opt;
  opt.memory_budget_bytes = 1 << 20;
  opt.max_concurrent = 2;
  opt.queue_depth = 2;
  opt.queue_deadline_ms = 30'000;  // queue never sheds by time here
  QueryService svc(engine_, opt);
  QueryOptions nested;
  nested.choice = engine::PlanChoice::kManual;  // best = the nested plan
  // Warm the plan cache so the flood below hits admission near-simultaneously
  // instead of being staggered by sixteen compiles.
  ASSERT_TRUE(svc.Execute(kQ1, nested).ok);

  constexpr int kSubmissions = 16;
  std::vector<QueryResult> results(kSubmissions);
  std::vector<std::thread> callers;
  for (int i = 0; i < kSubmissions; ++i) {
    callers.emplace_back(
        [&, i] { results[i] = svc.Execute(kQ1, nested); });
  }
  for (auto& c : callers) c.join();

  int ok = 0, rejected = 0;
  for (const QueryResult& r : results) {
    if (r.ok) {
      ++ok;
      EXPECT_EQ(r.output, reference_[0]);
    } else {
      EXPECT_TRUE(r.error_code == ErrorCode::kAdmissionRejected ||
                  r.error_code == ErrorCode::kDeadlineExceeded)
          << r.error_what;
      EXPECT_FALSE(r.error_what.empty());
      if (r.error_code == ErrorCode::kAdmissionRejected) ++rejected;
    }
  }
  // The four capacity slots always complete; with 16 simultaneous callers
  // at least one must have found both the slots and the queue taken.
  EXPECT_GE(ok, 4);
  EXPECT_GE(rejected, 1);
  svc.Drain();
  EXPECT_EQ(svc.reserved_bytes(), 0u);
  service::ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed + s.failed + s.cancelled + s.deadline_expired +
                s.shed(),
            s.submitted);
}

// The aggregate of outstanding grants never exceeds the global budget, and
// no single grant exceeds half of it.
TEST_F(ServiceTest, AggregateReservationNeverExceedsBudget) {
  SetUpEngine(60);
  const uint64_t kBudget = 1 << 20;
  ServiceOptions opt;
  opt.memory_budget_bytes = kBudget;
  opt.max_concurrent = 4;
  opt.queue_depth = 16;
  opt.queue_deadline_ms = 60'000;
  QueryService svc(engine_, opt);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> peak_seen{0};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_relaxed)) {
      uint64_t now = svc.reserved_bytes();
      uint64_t peak = peak_seen.load(std::memory_order_relaxed);
      while (now > peak &&
             !peak_seen.compare_exchange_weak(peak, now,
                                              std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> callers;
  std::vector<QueryResult> results(8);
  for (int i = 0; i < 8; ++i) {
    callers.emplace_back([&, i] {
      results[i] = svc.Execute(kAllQueries[i % 6], QueryOptions{});
    });
  }
  for (auto& c : callers) c.join();
  done.store(true, std::memory_order_relaxed);
  sampler.join();

  EXPECT_LE(peak_seen.load(), kBudget);
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.ok) << r.error_what;
    EXPECT_LE(r.budget_granted, kBudget / 2);
    EXPECT_GT(r.budget_granted, 0u);
  }
  svc.Drain();
  EXPECT_EQ(svc.reserved_bytes(), 0u);
  EXPECT_LE(svc.stats().peak_reserved_bytes, kBudget);
}

// Shrink before shed: when the ledger can't fund a full grant but can fund
// the minimum, the next admission proceeds degraded (smaller budget, one
// worker) instead of queueing — and still produces identical bytes.
TEST_F(ServiceTest, DegradedAdmissionStillCorrect) {
  SetUpEngine(60);
  // Adaptive sizing: pick the budget from the cost model's own footprint
  // so the third concurrent admission lands in [min_grant, desired).
  engine::CompiledQuery probe = engine_.Compile(kQ1);
  uint64_t fp = 0;
  if (probe.cost_choice < probe.estimates.size()) {
    fp = probe.estimates[probe.cost_choice].peak_breaker_bytes;
  }
  if (fp < (128 << 10)) fp = 128 << 10;  // keep grants comfortably > min
  const uint64_t desired = 2 * fp;       // what a full grant would be
  ServiceOptions opt;
  opt.memory_budget_bytes = desired * 2 + (desired * 3) / 4;
  opt.max_concurrent = 8;  // min_grant = budget/8 < 3/4 * desired
  opt.queue_depth = 8;
  opt.queue_deadline_ms = 60'000;
  QueryService svc(engine_, opt);
  // Warm the cache so the concurrent submissions go straight to admission.
  ASSERT_TRUE(svc.Execute(kQ1, QueryOptions{}).ok);

  std::vector<QueryResult> results(3);
  std::vector<std::thread> callers;
  for (int i = 0; i < 3; ++i) {
    callers.emplace_back(
        [&, i] { results[i] = svc.Execute(kQ1, QueryOptions{}); });
  }
  for (auto& c : callers) c.join();

  int degraded = 0;
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.ok) << r.error_what;
    EXPECT_EQ(r.output, reference_[0]);
    if (r.degraded) {
      ++degraded;
      EXPECT_EQ(r.threads_granted, 1u);
      EXPECT_LT(r.budget_granted, desired);
    }
  }
  EXPECT_EQ(svc.stats().degraded, static_cast<uint64_t>(degraded));
  svc.Drain();
  EXPECT_EQ(svc.reserved_bytes(), 0u);
}

// One deadline budget covers queue wait plus run: a query whose deadline
// expires while it waits behind a long-running neighbor fails with
// kDeadlineExceeded without ever executing.
TEST_F(ServiceTest, DeadlineCoversQueueTime) {
  SetUpEngine(300);
  ServiceOptions opt;
  opt.memory_budget_bytes = 1 << 20;
  opt.max_concurrent = 1;
  opt.queue_depth = 4;
  opt.queue_deadline_ms = 60'000;
  QueryService svc(engine_, opt);
  // The holder runs the nested (quadratic) plan — >100 ms at this size —
  // so the slot stays taken while the waiter's deadline burns down. Warm
  // its cache entry so the holder's admission is immediate.
  QueryOptions nested;
  nested.choice = engine::PlanChoice::kManual;
  ASSERT_TRUE(svc.Execute(kQ1, nested).ok);

  std::thread holder([&] {
    QueryResult r = svc.Execute(kQ1, nested);
    EXPECT_TRUE(r.ok) << r.error_what;
    EXPECT_EQ(r.output, reference_[0]);
  });
  // Give the holder the slot, then submit with a deadline far shorter than
  // the holder's runtime.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  QueryOptions qo;
  qo.deadline_ms = 1;
  QueryResult r = svc.Execute(kQ1, qo);
  holder.join();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error_code, ErrorCode::kDeadlineExceeded) << r.error_what;
  svc.Drain();
  EXPECT_EQ(svc.reserved_bytes(), 0u);
}

// RequestCancel reaches a query that is still queued for admission.
TEST_F(ServiceTest, CancelWhileQueued) {
  SetUpEngine(300);
  ServiceOptions opt;
  opt.memory_budget_bytes = 1 << 20;
  opt.max_concurrent = 1;
  opt.queue_depth = 4;
  opt.queue_deadline_ms = 60'000;
  QueryService svc(engine_, opt);
  QueryOptions nested;
  nested.choice = engine::PlanChoice::kManual;  // slow holder, same bytes
  ASSERT_TRUE(svc.Execute(kQ1, nested).ok);

  std::thread holder([&] {
    QueryResult r = svc.Execute(kQ1, nested);
    EXPECT_TRUE(r.ok) << r.error_what;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  nal::QueryControl control;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    control.RequestCancel();
  });
  QueryOptions qo;
  qo.control = &control;
  QueryResult r = svc.Execute(kQ1, qo);
  canceller.join();
  holder.join();
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error_code, ErrorCode::kCancelled) << r.error_what;
  svc.Drain();
  EXPECT_EQ(svc.reserved_bytes(), 0u);
}

// Plan-cache versioning: hits while the store is unchanged, self-invalidates
// on AddDocument and RegisterDtd (both bump Store::version()), and the
// recompiled plan reflects the new documents.
TEST_F(ServiceTest, PlanCacheInvalidatesOnStoreVersion) {
  SetUpEngine(25);
  ServiceOptions opt;
  opt.memory_budget_bytes = 64ull << 20;
  QueryService svc(engine_, opt);

  QueryResult r1 = svc.Execute(kQ1, QueryOptions{});
  ASSERT_TRUE(r1.ok);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_EQ(r1.output, reference_[0]);
  QueryResult r2 = svc.Execute(kQ1, QueryOptions{});
  ASSERT_TRUE(r2.ok);
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.output, reference_[0]);

  // Reload bib.xml with different contents (store writes require
  // quiescence — Drain() is that point).
  svc.Drain();
  uint64_t version_before = engine_.store().version();
  datagen::BibOptions bib;
  bib.books = 40;
  bib.authors_per_book = 2;
  engine_.AddDocument("bib.xml", datagen::GenerateBib(bib));
  EXPECT_GT(engine_.store().version(), version_before);
  std::string fresh_reference = engine_.RunQuery(kQ1).output;

  QueryResult r3 = svc.Execute(kQ1, QueryOptions{});
  ASSERT_TRUE(r3.ok);
  EXPECT_FALSE(r3.cache_hit);  // version mismatch forced a recompile
  EXPECT_EQ(r3.output, fresh_reference);
  EXPECT_NE(r3.output, reference_[0]);

  // DTD registration also invalidates (DTDs feed translation).
  svc.Drain();
  version_before = engine_.store().version();
  engine_.RegisterDtd("bib.xml", datagen::kBibDtd);
  EXPECT_GT(engine_.store().version(), version_before);
  QueryResult r4 = svc.Execute(kQ1, QueryOptions{});
  ASSERT_TRUE(r4.ok);
  EXPECT_FALSE(r4.cache_hit);
}

// Parse errors come back as structured results, not exceptions.
TEST_F(ServiceTest, MalformedQueryReturnsStructuredError) {
  SetUpEngine(25);
  QueryService svc(engine_, ServiceOptions{});
  QueryResult r = svc.Execute("for $x in ((( nonsense", QueryOptions{});
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error_what.empty());
}

// Satellite: a ScopedFaultInjector faults exactly one query's spool sites.
// The faulted query fails with a structured kSpoolIo; a concurrent
// neighbor on another thread — same service, same spilling pressure —
// completes byte-identical, and no temp files survive.
TEST_F(ServiceTest, ScopedFaultHitsOnlyItsOwnQuery) {
  SetUpEngine(150);
  std::set<std::string> dirs_before = SpoolDirsInTemp();
  ServiceOptions opt;
  // Grants bottom out at budget/max_concurrent = 8 KiB — far below Q2's
  // breaker state at this size, so both queries must spill (calibrated:
  // Q2 at n=150 spills from 16 KiB down).
  opt.memory_budget_bytes = 16 << 10;
  opt.max_concurrent = 2;
  opt.queue_depth = 8;
  opt.queue_deadline_ms = 60'000;
  QueryService svc(engine_, opt);
  ASSERT_TRUE(svc.Execute(kQ2, QueryOptions{}).ok);

  for (int round = 0; round < 3; ++round) {
    QueryResult faulted, neighbor;
    std::thread victim([&] {
      nal::ScopedFaultInjector scoped;
      scoped.injector().FailAlways(nal::FaultSite::kSpoolWrite, ENOSPC);
      faulted = svc.Execute(kQ2, QueryOptions{});
    });
    std::thread bystander([&] { neighbor = svc.Execute(kQ2, QueryOptions{}); });
    victim.join();
    bystander.join();
    ASSERT_FALSE(faulted.ok);
    EXPECT_EQ(faulted.error_code, ErrorCode::kSpoolIo) << faulted.error_what;
    EXPECT_FALSE(faulted.error_what.empty());
    ASSERT_TRUE(neighbor.ok) << neighbor.error_what;
    EXPECT_EQ(neighbor.output, reference_[1]);
  }
  svc.Drain();
  EXPECT_EQ(svc.reserved_bytes(), 0u);
  EXPECT_EQ(SpoolDirsInTemp(), dirs_before);
}

// Satellite: the TSan/ASan soak. Eight threads, mixed Q1-Q6, randomized
// budgets (via mode mix), deadlines, mid-run cancels and scoped spool
// faults. Every completion is byte-identical to serial; every failure
// carries a structured code; the drain point has zero reserved bytes and
// zero surviving temp files.
TEST_F(ServiceTest, MixedWorkloadSoak) {
  SetUpEngine(150);
  std::set<std::string> dirs_before = SpoolDirsInTemp();
  ServiceOptions opt;
  // Grants land in [8 KiB, 16 KiB]: Q2/Q3/Q6 spill at this size (so the
  // injected spool faults actually reach their sites) while Q1/Q4/Q5 stay
  // resident — a genuinely mixed workload.
  opt.memory_budget_bytes = 32 << 10;
  opt.max_concurrent = 4;
  opt.queue_depth = 8;
  opt.queue_deadline_ms = 10'000;
  QueryService svc(engine_, opt);

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 12;
  std::atomic<int> bad_outputs{0};
  std::atomic<int> bad_errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(1234 + t);  // deterministic per thread
      for (int i = 0; i < kItersPerThread; ++i) {
        size_t q = rng() % 6;
        QueryOptions qo;
        if (rng() % 3 == 0) {
          qo.mode = engine::ExecMode::kParallel;
          qo.threads = 1 + rng() % 3;
        }
        // Occasionally run the nested (quadratic) plan: slow runs keep the
        // service genuinely concurrent, so cancels and deadlines land
        // mid-run, not just mid-queue. Same bytes by the paper's
        // equivalences.
        if (rng() % 6 == 0) qo.choice = engine::PlanChoice::kManual;
        bool with_deadline = rng() % 5 == 0;
        if (with_deadline) qo.deadline_ms = 1 + rng() % 20;
        bool with_cancel = rng() % 5 == 1;
        nal::QueryControl control;
        std::thread canceller;
        if (with_cancel) {
          qo.control = &control;
          canceller = std::thread([&control, delay = rng() % 8] {
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
            control.RequestCancel();
          });
        }
        bool with_fault = rng() % 4 == 0;
        QueryResult r;
        if (with_fault) {
          nal::ScopedFaultInjector scoped;
          scoped.injector().FailNth(nal::FaultSite::kSpoolWrite,
                                    1 + rng() % 50, ENOSPC,
                                    /*every=*/rng() % 2 == 0);
          r = svc.Execute(kAllQueries[q], qo);
        } else {
          r = svc.Execute(kAllQueries[q], qo);
        }
        if (canceller.joinable()) canceller.join();
        if (r.ok) {
          if (r.output != reference_[q]) ++bad_outputs;
        } else {
          bool structured = r.error_code == ErrorCode::kSpoolIo ||
                            r.error_code == ErrorCode::kCancelled ||
                            r.error_code == ErrorCode::kDeadlineExceeded ||
                            r.error_code == ErrorCode::kAdmissionRejected ||
                            r.error_code == ErrorCode::kBudgetExhausted;
          if (!structured || r.error_what.empty()) ++bad_errors;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(bad_outputs.load(), 0);
  EXPECT_EQ(bad_errors.load(), 0);

  svc.Drain();
  EXPECT_EQ(svc.reserved_bytes(), 0u);
  EXPECT_EQ(svc.in_flight(), 0u);
  EXPECT_EQ(SpoolDirsInTemp(), dirs_before);
  service::ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(s.completed + s.failed + s.cancelled + s.deadline_expired +
                s.shed(),
            s.submitted);
  EXPECT_GT(s.completed, 0u);
}

// Satellite: malformed NALQ_* knob text raises kPlanError naming the
// variable and the offending value instead of silently becoming 0.
TEST(EnvKnobTest, MalformedKnobRaisesPlanError) {
  setenv("NALQ_QUEUE_DEPTH", "12abc", 1);
  engine::Engine engine;
  try {
    QueryService svc(engine, ServiceOptions{});
    unsetenv("NALQ_QUEUE_DEPTH");
    FAIL() << "malformed NALQ_QUEUE_DEPTH was accepted";
  } catch (const engine::Error& e) {
    unsetenv("NALQ_QUEUE_DEPTH");
    EXPECT_EQ(e.code(), ErrorCode::kPlanError);
    EXPECT_NE(std::string(e.what()).find("NALQ_QUEUE_DEPTH"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12abc"), std::string::npos);
  }
}

// Valid and unset knobs resolve as documented.
TEST(EnvKnobTest, WellFormedKnobsResolve) {
  setenv("NALQ_QUEUE_DEPTH", "7", 1);
  engine::Engine engine;
  QueryService svc(engine, ServiceOptions{});
  EXPECT_EQ(svc.options().queue_depth, 7u);
  unsetenv("NALQ_QUEUE_DEPTH");

  ServiceOptions explicit_opt;
  explicit_opt.queue_depth = 3;
  explicit_opt.max_concurrent = 2;
  QueryService svc2(engine, explicit_opt);
  EXPECT_EQ(svc2.options().queue_depth, 3u);
  EXPECT_EQ(svc2.options().max_concurrent, 2u);
}

}  // namespace
}  // namespace nalq
