// Tests for the unnesting rewriter: provenance derivation, condition
// checking (including the DBLP rejection), matcher behaviour, rule ranking
// and the alternative enumeration.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "nal/printer.h"
#include "rewrite/unnester.h"
#include "test_util.h"
#include "xquery/normalize.h"
#include "xquery/parser.h"
#include "xquery/translate.h"

namespace nalq::rewrite {
namespace {

using nal::AlgebraPtr;
using nal::CmpOp;
using nal::OpKind;
using nal::Symbol;

AlgebraPtr DocScan(const char* doc, const char* path, const char* attr) {
  return nal::UnnestMap(
      Symbol(attr),
      nal::MakePath(nal::MakeFnCall("doc", {nal::MakeConst(nal::Value(doc))}),
                    xml::Path::Parse(path)),
      nal::Singleton());
}

class ProvenanceTest : public ::testing::Test {};

TEST_F(ProvenanceTest, DocScanYieldsAbsolutePath) {
  AlgebraPtr plan = DocScan("bib.xml", "//book", "b");
  ProvenanceMap prov = DeriveProvenance(*plan);
  ASSERT_TRUE(prov[Symbol("b")].known);
  EXPECT_EQ(prov[Symbol("b")].doc, "bib.xml");
  EXPECT_EQ(prov[Symbol("b")].path.ToString(), "//book");
  EXPECT_TRUE(prov[Symbol("b")].complete);
  EXPECT_FALSE(prov[Symbol("b")].distinct);
}

TEST_F(ProvenanceTest, DistinctValuesSetsDistinctFlag) {
  AlgebraPtr plan = nal::UnnestMap(
      Symbol("a"),
      nal::MakeFnCall(
          "distinct-values",
          {nal::MakePath(
              nal::MakeFnCall("doc", {nal::MakeConst(nal::Value("bib.xml"))}),
              xml::Path::Parse("//author"))}),
      nal::Singleton());
  ProvenanceMap prov = DeriveProvenance(*plan);
  EXPECT_TRUE(prov[Symbol("a")].distinct);
  EXPECT_TRUE(prov[Symbol("a")].complete);
}

TEST_F(ProvenanceTest, SelectBreaksCompleteness) {
  AlgebraPtr plan = nal::Select(
      nal::MakeCmp(CmpOp::kEq, nal::MakeAttrRef(Symbol("b")),
                   nal::MakeConst(nal::Value("x"))),
      DocScan("bib.xml", "//book", "b"));
  ProvenanceMap prov = DeriveProvenance(*plan);
  EXPECT_FALSE(prov[Symbol("b")].complete);
}

TEST_F(ProvenanceTest, BindTuplesTracksNestedItemAttr) {
  AlgebraPtr plan = nal::Map(
      Symbol("a"),
      nal::MakeBindTuples(nal::MakePath(nal::MakeAttrRef(Symbol("b")),
                                        xml::Path::Parse("author")),
                          Symbol("a'")),
      DocScan("bib.xml", "//book", "b"));
  ProvenanceMap prov = DeriveProvenance(*plan);
  ASSERT_TRUE(prov[Symbol("a")].known);
  EXPECT_TRUE(prov[Symbol("a")].is_nested);
  EXPECT_EQ(prov[Symbol("a")].nested_item, Symbol("a'"));
  EXPECT_EQ(prov[Symbol("a")].path.ToString(), "//book/author");
  // After unnesting, the item attribute inherits the provenance.
  AlgebraPtr mu = nal::Unnest(Symbol("a"), plan, true, false);
  ProvenanceMap prov2 = DeriveProvenance(*mu);
  ASSERT_TRUE(prov2[Symbol("a'")].known);
  EXPECT_EQ(prov2[Symbol("a'")].path.ToString(), "//book/author");
}

TEST_F(ProvenanceTest, RenameCarriesProvenance) {
  AlgebraPtr plan = nal::ProjectRename({{Symbol("z"), Symbol("b")}},
                                       DocScan("bib.xml", "//book", "b"));
  ProvenanceMap prov = DeriveProvenance(*plan);
  EXPECT_TRUE(prov[Symbol("z")].known);
  EXPECT_EQ(prov.count(Symbol("b")), 0u);
}

class ConditionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dtds_.Register("bib.xml", xml::Dtd::Parse(datagen::kBibDtd));
    dtds_.Register("dblp.xml", xml::Dtd::Parse(datagen::kDblpDtd));
  }
  xml::DtdRegistry dtds_;
};

TEST_F(ConditionsTest, DistinctSourceMatchHoldsOnBib) {
  ConditionChecker checker(&dtds_);
  AlgebraPtr e1 = nal::UnnestMap(
      Symbol("a1"),
      nal::MakeFnCall(
          "distinct-values",
          {nal::MakePath(
              nal::MakeFnCall("doc", {nal::MakeConst(nal::Value("bib.xml"))}),
              xml::Path::Parse("//author"))}),
      nal::Singleton());
  AlgebraPtr e2 = nal::UnnestMap(
      Symbol("a2"),
      nal::MakePath(nal::MakeAttrRef(Symbol("b2")),
                    xml::Path::Parse("author")),
      DocScan("bib.xml", "//book", "b2"));
  EXPECT_TRUE(
      checker.DistinctSourceMatches(*e1, Symbol("a1"), *e2, Symbol("a2")));
  EXPECT_TRUE(checker.IsDuplicateFree(*e1, Symbol("a1")));
  EXPECT_FALSE(checker.IsDuplicateFree(*e2, Symbol("a2")));
}

TEST_F(ConditionsTest, DistinctSourceMatchFailsOnDblp) {
  ConditionChecker checker(&dtds_);
  AlgebraPtr e1 = nal::UnnestMap(
      Symbol("a1"),
      nal::MakeFnCall(
          "distinct-values",
          {nal::MakePath(
              nal::MakeFnCall("doc", {nal::MakeConst(nal::Value("dblp.xml"))}),
              xml::Path::Parse("//author"))}),
      nal::Singleton());
  AlgebraPtr e2 = nal::UnnestMap(
      Symbol("a2"),
      nal::MakePath(nal::MakeAttrRef(Symbol("b2")),
                    xml::Path::Parse("author")),
      DocScan("dblp.xml", "//book", "b2"));
  // Authors occur under articles and theses too: the condition must fail.
  EXPECT_FALSE(
      checker.DistinctSourceMatches(*e1, Symbol("a1"), *e2, Symbol("a2")));
}

TEST_F(ConditionsTest, DifferentDocumentsNeverMatch) {
  ConditionChecker checker(&dtds_);
  AlgebraPtr e1 = nal::UnnestMap(
      Symbol("a1"),
      nal::MakeFnCall(
          "distinct-values",
          {nal::MakePath(
              nal::MakeFnCall("doc", {nal::MakeConst(nal::Value("bib.xml"))}),
              xml::Path::Parse("//author"))}),
      nal::Singleton());
  AlgebraPtr e2 = DocScan("dblp.xml", "//author", "a2");
  EXPECT_FALSE(
      checker.DistinctSourceMatches(*e1, Symbol("a1"), *e2, Symbol("a2")));
}

TEST_F(ConditionsTest, NullRegistryFailsConservatively) {
  ConditionChecker checker(nullptr);
  AlgebraPtr e1 = DocScan("bib.xml", "//author", "a1");
  AlgebraPtr e2 = DocScan("bib.xml", "//author", "a2");
  EXPECT_FALSE(
      checker.DistinctSourceMatches(*e1, Symbol("a1"), *e2, Symbol("a2")));
}

TEST_F(ConditionsTest, FreeOfOuter) {
  AlgebraPtr e1 = DocScan("bib.xml", "//book", "b1");
  AlgebraPtr e2_clean = DocScan("bib.xml", "//book", "b2");
  EXPECT_TRUE(ConditionChecker::FreeOfOuter(*e2_clean, *e1));
  AlgebraPtr e2_corr = nal::Select(
      nal::MakeCmp(CmpOp::kEq, nal::MakeAttrRef(Symbol("b1")),
                   nal::MakeAttrRef(Symbol("b2"))),
      DocScan("bib.xml", "//book", "b2"));
  EXPECT_FALSE(ConditionChecker::FreeOfOuter(*e2_corr, *e1));
}

class UnnesterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dtds_.Register("bib.xml", xml::Dtd::Parse(datagen::kBibDtd));
    dtds_.Register("dblp.xml", xml::Dtd::Parse(datagen::kDblpDtd));
  }

  std::vector<Alternative> Compile(const char* query) {
    AlgebraPtr nested = xquery::Translate(
        xquery::Normalize(xquery::ParseQuery(query)), &dtds_);
    Unnester unnester(&dtds_);
    return unnester.Alternatives(nested);
  }

  static bool Has(const std::vector<Alternative>& alts, const char* rule) {
    for (const Alternative& a : alts) {
      if (a.rule.find(rule) != std::string::npos) return true;
    }
    return false;
  }

  xml::DtdRegistry dtds_;
};

TEST_F(UnnesterTest, Q1StyleQueryGetsAllFourPlans) {
  auto alts = Compile(R"(
    let $d1 := doc("bib.xml")
    for $a1 in distinct-values($d1//author)
    return <author>{
      let $d2 := doc("bib.xml")
      for $b2 in $d2//book[$a1 = author]
      return $b2/title }</author>)");
  EXPECT_TRUE(Has(alts, "nested"));
  EXPECT_TRUE(Has(alts, "eqv4-outerjoin"));
  EXPECT_TRUE(Has(alts, "eqv5-grouping"));
  EXPECT_TRUE(Has(alts, "eqv1-nestjoin"));
  EXPECT_TRUE(Has(alts, "group-xi"));
}

TEST_F(UnnesterTest, Eqv5RejectedOnDblp) {
  auto alts = Compile(R"(
    let $d1 := doc("dblp.xml")
    for $a1 in distinct-values($d1//author)
    return <author>{
      let $d2 := doc("dblp.xml")
      for $b2 in $d2//book[$a1 = author]
      return $b2/title }</author>)");
  EXPECT_FALSE(Has(alts, "eqv5-grouping"));  // the Paparizos trap
  EXPECT_TRUE(Has(alts, "eqv4-outerjoin"));  // the general plan remains
}

TEST_F(UnnesterTest, BestPrefersMostRestrictiveRule) {
  AlgebraPtr nested = xquery::Translate(
      xquery::Normalize(xquery::ParseQuery(R"(
        let $d1 := doc("bib.xml")
        for $a1 in distinct-values($d1//author)
        return <author>{
          let $d2 := doc("bib.xml")
          for $b2 in $d2//book[$a1 = author]
          return $b2/title }</author>)")),
      &dtds_);
  Unnester unnester(&dtds_);
  Alternative best = unnester.Best(nested);
  EXPECT_NE(best.rule.find("group-xi"), std::string::npos) << best.rule;
}

TEST_F(UnnesterTest, RulePriorityOrdering) {
  EXPECT_LT(RulePriority("eqv5-grouping+group-xi"),
            RulePriority("eqv5-grouping"));
  EXPECT_LT(RulePriority("eqv5-grouping"), RulePriority("eqv4-outerjoin"));
  EXPECT_LT(RulePriority("eqv7-antijoin+eqv9-counting"),
            RulePriority("eqv7-antijoin"));
  EXPECT_LT(RulePriority("eqv6-semijoin"), RulePriority("nested"));
}

TEST_F(UnnesterTest, UncorrelatedQuantifierLeftAlone) {
  auto alts = Compile(R"(
    let $d1 := doc("bib.xml")
    for $t1 in $d1//book/title
    where some $t2 in doc("bib.xml")//book/title satisfies $t2 = "fixed"
    return <r>{ $t1 }</r>)");
  // No correlation between inner and outer: Eqv. 6 brings no benefit and
  // the matcher must not fire.
  EXPECT_FALSE(Has(alts, "eqv6-semijoin"));
}

TEST_F(UnnesterTest, SplitSelectsSplitsConjunctions) {
  AlgebraPtr plan = nal::Select(
      nal::MakeAnd(nal::MakeCmp(CmpOp::kEq, nal::MakeAttrRef(Symbol("b")),
                                nal::MakeConst(nal::Value("x"))),
                   nal::MakeCmp(CmpOp::kNe, nal::MakeAttrRef(Symbol("b")),
                                nal::MakeConst(nal::Value("y")))),
      DocScan("bib.xml", "//book", "b"));
  AlgebraPtr split = Unnester::SplitSelects(plan);
  EXPECT_EQ(split->kind, OpKind::kSelect);
  EXPECT_EQ(split->child(0)->kind, OpKind::kSelect);
  EXPECT_EQ(split->child(0)->child(0)->kind, OpKind::kUnnestMap);
}

TEST_F(UnnesterTest, RequiredAttributesBlockEqv3) {
  // The Ξ program references the outer document variable d1 in addition to
  // a1 — so the grouping plan (which drops e1 entirely) must be rejected
  // while the outer-join plan (which keeps e1) must survive.
  AlgebraPtr e1 = nal::UnnestMap(
      Symbol("a1"),
      nal::MakeFnCall(
          "distinct-values",
          {nal::MakePath(
              nal::MakeFnCall("doc", {nal::MakeConst(nal::Value("bib.xml"))}),
              xml::Path::Parse("//book/title"))}),
      nal::Singleton());
  AlgebraPtr e2 = nal::UnnestMap(
      Symbol("a2"),
      nal::MakePath(nal::MakeAttrRef(Symbol("b2")),
                    xml::Path::Parse("title")),
      DocScan("bib.xml", "//book", "b2"));
  auto make_plan = [&](nal::XiProgram program) {
    AlgebraPtr map = nal::Map(
        Symbol("g"),
        nal::MakeAgg(nal::AggCount(),
                     nal::MakeNestedAlg(nal::Select(
                         nal::MakeCmp(CmpOp::kEq, nal::MakeAttrRef(Symbol("a1")),
                                      nal::MakeAttrRef(Symbol("a2"))),
                         e2->Clone()))),
        e1->Clone());
    return nal::XiSimple(std::move(program), std::move(map));
  };
  Unnester unnester(&dtds_);
  // Ξ references only a1 and g: Eqv. 3 applicable.
  auto alts_ok = unnester.Alternatives(make_plan(
      {nal::XiCommand::Var(Symbol("a1")), nal::XiCommand::Var(Symbol("g"))}));
  EXPECT_TRUE(Has(alts_ok, "eqv3-grouping"));
  // Ξ additionally references b1-side attribute a1 AND something only e1
  // provides (here: a fabricated extra attribute via a Map on e1).
  AlgebraPtr e1_extra =
      nal::Map(Symbol("extra"), nal::MakeConst(nal::Value(int64_t{1})),
               e1->Clone());
  AlgebraPtr map = nal::Map(
      Symbol("g"),
      nal::MakeAgg(nal::AggCount(),
                   nal::MakeNestedAlg(nal::Select(
                       nal::MakeCmp(CmpOp::kEq, nal::MakeAttrRef(Symbol("a1")),
                                    nal::MakeAttrRef(Symbol("a2"))),
                       e2->Clone()))),
      e1_extra);
  AlgebraPtr plan = nal::XiSimple(
      {nal::XiCommand::Var(Symbol("a1")), nal::XiCommand::Var(Symbol("g")),
       nal::XiCommand::Var(Symbol("extra"))},
      map);
  auto alts_blocked = unnester.Alternatives(plan);
  EXPECT_FALSE(Has(alts_blocked, "eqv3-grouping"));
  EXPECT_TRUE(Has(alts_blocked, "eqv2-outerjoin"));
}

TEST_F(UnnesterTest, NoSiteMeansOnlyNestedPlan) {
  auto alts = Compile(
      R"(for $b in doc("bib.xml")//book return <r>{ $b }</r>)");
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0].rule, "nested");
}

}  // namespace
}  // namespace nalq::rewrite
